#!/bin/sh
# Tier-1 gate: everything must build (including the bench executable)
# and every test suite must pass.  Run before every commit; CI runs
# exactly this.
set -eux

dune build @all
dune runtest

# --- crash-consistency gate --------------------------------------------
# Deterministic fault matrix: enumerate the fault points of a seeded
# transactional workload and crash at >=50 of them (plus transient I/O
# errors), requiring recovery to a checker-accepted state every time.
# A failure prints the (seed, point, hit) plan and the one-line command
# that reproduces it.
dune exec bin/lsm_repro.exe -- faultsim --seed 1 --points 60 --io 12
dune exec bin/lsm_repro.exe -- faultsim --seed 1 --points 60 --io 12 --validation

# --- advisory bench check (non-gating) ---------------------------------
# Compare a quick microbench run against the committed baseline.  Host
# timings on CI machines are too noisy to gate on, so regressions here
# only print; the exit status of this block is always ignored.
if [ -f BENCH_micro.json ]; then
  (
    set +e
    echo "### advisory bench compare (not a gate; failures do not fail CI)"
    dune exec bench/main.exe -- micro --quota 0.05 --json /tmp/bench_new.json \
      > /dev/null 2>&1
    dune exec bench/main.exe -- compare BENCH_micro.json /tmp/bench_new.json \
      --threshold 0.5
    echo "### advisory bench compare done (ignored either way)"
  ) || true
fi
