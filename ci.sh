#!/bin/sh
# Tier-1 gate: everything must build (including the bench executable)
# and every test suite must pass.  Run before every commit; CI runs
# exactly this.
set -eux

dune build @all
dune runtest

# --- crash + resilience gate -------------------------------------------
# Deterministic mixed fault matrix: enumerate the fault points of a
# seeded transactional workload and run >=50 plans per strategy mixing
# crashes, one-shot transient I/O errors, silent page corruption, and
# intermittent "fail k times" windows (some absorbed by retry/backoff,
# some exhausting the budget).  Every plan must recover or degrade to a
# checker-accepted state that also heals fully.  A failure prints the
# (seed, point, hit, fails) plan and the one-line command that
# reproduces it.
dune exec bin/lsm_repro.exe -- faultsim --seed 1 --points 60 --io 12 \
  --corrupt 12 --intermittent 8
dune exec bin/lsm_repro.exe -- faultsim --seed 1 --points 60 --io 12 \
  --corrupt 12 --intermittent 8 --validation

# Same matrices with group commit and overlapping maintenance enabled:
# the WAL's seal/fsync/ack windows (torn group tail) and the scheduler's
# job start/install boundaries become enumerable crash points and every
# plan must still land checker-accepted.
dune exec bin/lsm_repro.exe -- faultsim --seed 1 --points 60 --io 12 \
  --corrupt 12 --intermittent 8 --group-commit 4 --maint-workers 2
dune exec bin/lsm_repro.exe -- faultsim --seed 1 --points 60 --io 12 \
  --corrupt 12 --intermittent 8 --group-commit 4 --maint-workers 2 \
  --validation

# Same matrices with sharded memtables: the drive phase rotates
# per-shard flushes, so every per-shard flush window (dataset pair and
# tree seal/install) is an enumerable crash point — a crash with one
# shard durable and its siblings still in memory must recover under
# both strategies.
dune exec bin/lsm_repro.exe -- faultsim --seed 1 --points 60 --io 12 \
  --corrupt 12 --intermittent 8 --mem-shards 4
dune exec bin/lsm_repro.exe -- faultsim --seed 1 --points 60 --io 12 \
  --corrupt 12 --intermittent 8 --mem-shards 4 --validation

# --- serving-layer smoke ----------------------------------------------
# One tiny open-loop run with a fixed seed: the command must exit 0 and
# emit a schema-valid JSON document (test_cli.ml checks the schema; this
# checks the binary end to end, including the budget coordinator).
dune exec bin/lsm_repro.exe -- serve -s tiny --duration 0.2 --rate 1000 \
  --seed 7 --json /tmp/serve_smoke.json
grep -q '"schema": "lsm-repro-serve/1"' /tmp/serve_smoke.json

# --- timeline determinism ---------------------------------------------
# The same seeded run collected twice must export byte-identical timeline
# documents (JSON and CSV): the telemetry path reads the simulated clock
# and never perturbs it, so any diff here is nondeterminism leaking into
# the serving layer or its instrumentation.
dune exec bin/lsm_repro.exe -- serve -s tiny --duration 0.2 --rate 1000 \
  --seed 7 --slo 'point:p99<1500us' --timeline /tmp/serve_tl_a.json \
  --timeline-csv /tmp/serve_tl_a.csv
dune exec bin/lsm_repro.exe -- serve -s tiny --duration 0.2 --rate 1000 \
  --seed 7 --slo 'point:p99<1500us' --timeline /tmp/serve_tl_b.json \
  --timeline-csv /tmp/serve_tl_b.csv
grep -q '"schema": "lsm-repro-timeline/1"' /tmp/serve_tl_a.json
cmp /tmp/serve_tl_a.json /tmp/serve_tl_b.json
cmp /tmp/serve_tl_a.csv /tmp/serve_tl_b.csv

# --- chaos gate --------------------------------------------------------
# The serving layer under a deterministic partition-fault matrix (crash
# + intermittent I/O + slow disk, one partition each) must keep serving,
# pass the degraded-correctness checker (exit 0 is the checker verdict),
# and stay byte-identical across two same-seed runs — fault injection,
# breakers, hedging, and shedding all run on the simulated clock, so any
# timeline diff is nondeterminism in the chaos path.  Both WAL-backed
# strategies are exercised.
for strategy in validation bitmap; do
  dune exec bin/lsm_repro.exe -- serve -s tiny --duration 0.3 --rate 1500 \
    --seed 7 --strategy "$strategy" \
    --chaos 'crash@p1@t60ms;io@p2@t30ms+30ms!6;slow@p3@t40ms+40ms*8' \
    --deadline-us 8000 --shed-backlog 30000 \
    --timeline /tmp/chaos_tl_a.json --json /tmp/chaos_a.json
  dune exec bin/lsm_repro.exe -- serve -s tiny --duration 0.3 --rate 1500 \
    --seed 7 --strategy "$strategy" \
    --chaos 'crash@p1@t60ms;io@p2@t30ms+30ms!6;slow@p3@t40ms+40ms*8' \
    --deadline-us 8000 --shed-backlog 30000 \
    --timeline /tmp/chaos_tl_b.json --json /tmp/chaos_b.json
  grep -q '"mode": "chaos"' /tmp/chaos_a.json
  grep -q '"ok": true' /tmp/chaos_a.json
  cmp /tmp/chaos_tl_a.json /tmp/chaos_tl_b.json
  cmp /tmp/chaos_a.json /tmp/chaos_b.json
done

# --- bench checks ------------------------------------------------------
# One quick microbench run feeds two comparisons against the committed
# baseline:
#   1. GATE: the sim.range_scan, sim.serve, sim.serve.chaos,
#      sim.group_commit, sim.parallel_maint, and sim.shard series are
#      pure simulated cost (deterministic,
#      single-sample), so a >10% change is a real algorithmic or
#      cost-model regression and fails CI.
#   2. Advisory: host timings on CI machines are too noisy to gate on,
#      so regressions in the full set only print.
if [ -f BENCH_micro.json ]; then
  dune exec bench/main.exe -- micro --quota 0.05 --json /tmp/bench_new.json \
    > /dev/null 2>&1
  dune exec bench/main.exe -- compare BENCH_micro.json /tmp/bench_new.json \
    --threshold 0.10 --only sim.range_scan
  dune exec bench/main.exe -- compare BENCH_micro.json /tmp/bench_new.json \
    --threshold 0.10 --only sim.serve
  dune exec bench/main.exe -- compare BENCH_micro.json /tmp/bench_new.json \
    --threshold 0.10 --only sim.serve.chaos
  dune exec bench/main.exe -- compare BENCH_micro.json /tmp/bench_new.json \
    --threshold 0.10 --only sim.group_commit
  dune exec bench/main.exe -- compare BENCH_micro.json /tmp/bench_new.json \
    --threshold 0.10 --only sim.parallel_maint
  dune exec bench/main.exe -- compare BENCH_micro.json /tmp/bench_new.json \
    --threshold 0.10 --only sim.shard
  (
    set +e
    echo "### advisory bench compare (not a gate; failures do not fail CI)"
    dune exec bench/main.exe -- compare BENCH_micro.json /tmp/bench_new.json \
      --threshold 0.5
    echo "### advisory bench compare done (ignored either way)"
  ) || true
fi
