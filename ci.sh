#!/bin/sh
# Tier-1 gate: everything must build (including the bench executable)
# and every test suite must pass.  Run before every commit; CI runs
# exactly this.
set -eux

dune build @all
dune runtest

# --- crash + resilience gate -------------------------------------------
# Deterministic mixed fault matrix: enumerate the fault points of a
# seeded transactional workload and run >=50 plans per strategy mixing
# crashes, one-shot transient I/O errors, silent page corruption, and
# intermittent "fail k times" windows (some absorbed by retry/backoff,
# some exhausting the budget).  Every plan must recover or degrade to a
# checker-accepted state that also heals fully.  A failure prints the
# (seed, point, hit, fails) plan and the one-line command that
# reproduces it.
dune exec bin/lsm_repro.exe -- faultsim --seed 1 --points 60 --io 12 \
  --corrupt 12 --intermittent 8
dune exec bin/lsm_repro.exe -- faultsim --seed 1 --points 60 --io 12 \
  --corrupt 12 --intermittent 8 --validation

# --- advisory bench check (non-gating) ---------------------------------
# Compare a quick microbench run against the committed baseline.  Host
# timings on CI machines are too noisy to gate on, so regressions here
# only print; the exit status of this block is always ignored.
if [ -f BENCH_micro.json ]; then
  (
    set +e
    echo "### advisory bench compare (not a gate; failures do not fail CI)"
    dune exec bench/main.exe -- micro --quota 0.05 --json /tmp/bench_new.json \
      > /dev/null 2>&1
    dune exec bench/main.exe -- compare BENCH_micro.json /tmp/bench_new.json \
      --threshold 0.5
    echo "### advisory bench compare done (ignored either way)"
  ) || true
fi
