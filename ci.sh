#!/bin/sh
# Tier-1 gate: everything must build and every test suite must pass.
# Run before every commit; CI runs exactly this.
set -eux

dune build
dune runtest
