(* The benchmark harness.

   Two layers:
   1. The paper-figure suite: regenerates the rows/series of every table
      and figure in the paper's evaluation (Sec. 6) from the experiment
      registry — this is the reproduction artifact.
   2. Bechamel microbenchmarks of the engine's core operations (memory
      B+-tree, Bloom filters, disk B+-tree search paths, LSM writes,
      per-strategy upserts), measuring real host-CPU cost.

   Usage:
     dune exec bench/main.exe                 # figures (small) + micro
     dune exec bench/main.exe -- figures tiny # figures only, given scale
     dune exec bench/main.exe -- micro        # microbenches only *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Microbenchmarks *)

module Mbt = Lsm_btree.Mem_btree.Make (Lsm_util.Keys.Int_key)
module Dbt = Lsm_btree.Disk_btree.Make (Lsm_util.Keys.Int_key)
module L = Lsm_tree.Make (Lsm_util.Keys.Int_key) (Lsm_util.Keys.Int_value)
open Lsm_harness.Setup

let quiet_env () =
  (* Costs are simulated anyway — bechamel measures the host CPU driving
     the engine. *)
  Lsm_sim.Env.create ~cache_bytes:(4 * 1024 * 1024) Lsm_harness.Scale.hdd_device

let test_mem_btree_put =
  Test.make ~name:"mem_btree.put(1k)"
    (Staged.stage (fun () ->
         let t = Mbt.create () in
         for i = 0 to 999 do
           ignore (Mbt.put t ((i * 7919) land 0xfffff) i)
         done))

let test_mem_btree_find =
  let t = Mbt.create () in
  let () =
    for i = 0 to 9_999 do
      ignore (Mbt.put t ((i * 7919) land 0xfffff) i)
    done
  in
  Test.make ~name:"mem_btree.find(10k)"
    (Staged.stage (fun () -> ignore (Mbt.find t ((4242 * 7919) land 0xfffff))))

let test_bloom_std =
  let f = Lsm_bloom.Bloom.create ~expected:100_000 ~fpr:0.01 in
  let () =
    for i = 0 to 99_999 do
      Lsm_bloom.Bloom.add f (Lsm_bloom.Hashing.mix64 i)
    done
  in
  let i = ref 0 in
  Test.make ~name:"bloom.contains(std)"
    (Staged.stage (fun () ->
         incr i;
         ignore (Lsm_bloom.Bloom.contains f (Lsm_bloom.Hashing.mix64 !i))))

let test_bloom_blocked =
  let f = Lsm_bloom.Blocked_bloom.create ~expected:100_000 ~fpr:0.01 in
  let () =
    for i = 0 to 99_999 do
      Lsm_bloom.Blocked_bloom.add f (Lsm_bloom.Hashing.mix64 i)
    done
  in
  let i = ref 0 in
  Test.make ~name:"bloom.contains(blocked)"
    (Staged.stage (fun () ->
         incr i;
         ignore (Lsm_bloom.Blocked_bloom.contains f (Lsm_bloom.Hashing.mix64 !i))))

let disk_tree () =
  let env = quiet_env () in
  let rows = Array.init 100_000 (fun i -> (i * 2, i)) in
  (env, Dbt.build env ~key_of:fst ~size_of:(fun _ -> 24) rows)

let test_dbt_find =
  let env, t = disk_tree () in
  let i = ref 0 in
  Test.make ~name:"disk_btree.find(100k)"
    (Staged.stage (fun () ->
         i := (!i + 7919) mod 100_000;
         ignore (Dbt.find env t (!i * 2))))

let test_dbt_cursor =
  let env, t = disk_tree () in
  let c = Dbt.Cursor.create t in
  let i = ref 0 in
  Test.make ~name:"disk_btree.cursor_find(ascending)"
    (Staged.stage (fun () ->
         i := (!i + 3) mod 100_000;
         ignore (Dbt.Cursor.find env c (!i * 2))))

let test_lsm_write =
  Test.make ~name:"lsm.write+flush(1k)"
    (Staged.stage (fun () ->
         let env = quiet_env () in
         let t =
           L.create env
             (Lsm_tree.Config.make ~bloom:(Some Lsm_tree.Config.default_bloom)
                "bench")
         in
         for i = 1 to 1000 do
           L.write t ~key:(i * 17 mod 1009) ~ts:i (Lsm_tree.Entry.Put i)
         done;
         L.flush t))

let upsert_bench name strategy =
  Test.make ~name
    (Staged.stage (fun () ->
         let env = quiet_env () in
         let d =
           dataset ~strategy ~mem_budget:(64 * 1024) env Lsm_harness.Scale.tiny
         in
         let stream =
           Streams.upsert_stream ~seed:1 ~update_ratio:0.5
             ~distribution:`Uniform ()
         in
         for _ = 1 to 2_000 do
           apply_op d (Streams.next stream)
         done))

let test_lsm_scan =
  let env = quiet_env () in
  let t =
    L.create env
      (Lsm_tree.Config.make ~bloom:(Some Lsm_tree.Config.default_bloom) "bench")
  in
  let () =
    for i = 1 to 10_000 do
      L.write t ~key:i ~ts:i (Lsm_tree.Entry.Put i);
      if i mod 2_500 = 0 then L.flush t
    done;
    L.flush t
  in
  Test.make ~name:"lsm.reconciling_scan(10k,4comps)"
    (Staged.stage (fun () ->
         let n = ref 0 in
         L.scan t L.full_scan_spec ~f:(fun _ ~src_repaired:_ -> incr n)))

let test_lsm_merge =
  Test.make ~name:"lsm.merge(2x2.5k)"
    (Staged.stage (fun () ->
         let env = quiet_env () in
         let t =
           L.create env
             (Lsm_tree.Config.make ~bloom:(Some Lsm_tree.Config.default_bloom)
                "bench")
         in
         for i = 1 to 5_000 do
           L.write t ~key:i ~ts:i (Lsm_tree.Entry.Put i);
           if i = 2_500 then L.flush t
         done;
         L.flush t;
         ignore (L.merge t ~first:0 ~last:1)))

(* Range-scan benches: the same overlapping-component tree served by the
   k-way heap merge vs the REMIX sorted view.  One fixture per side so
   toggling never happens inside a measured run. *)
let scan_tree ~views ~ncomps =
  let env = quiet_env () in
  let t =
    L.create env
      (Lsm_tree.Config.make ~bloom:(Some Lsm_tree.Config.default_bloom) "bench")
  in
  let ts = ref 0 in
  for c = 0 to ncomps - 1 do
    for i = 0 to 1_999 do
      incr ts;
      (* ~50% of keys collide across components, so reconciliation works *)
      let key = ((i * 4) + (c * 2)) mod 4_000 in
      L.write t ~key ~ts:!ts (Lsm_tree.Entry.Put ((key * 1000) + !ts))
    done;
    L.flush t
  done;
  L.set_sorted_views t views;
  (* Warm the cache and, on the view side, build the view: steady-state
     is what both the bechamel and the sim series measure. *)
  L.scan t L.full_scan_spec ~f:(fun _ ~src_repaired:_ -> ());
  (env, t)

let range_fixture_heap = lazy (scan_tree ~views:false ~ncomps:8)
let range_fixture_view = lazy (scan_tree ~views:true ~ncomps:8)

let range_scan_bench name fixture =
  Test.make ~name
    (Staged.stage (fun () ->
         let _env, t = Lazy.force fixture in
         let n = ref 0 in
         L.scan t L.full_scan_spec ~f:(fun _ ~src_repaired:_ -> incr n)))

(* The simulated-cost series the CI gates on: deterministic (engine cost
   model only, no host timing), one sample per entry, so a >10% change
   is a real cost-model or algorithm change, not noise. *)
let sim_range_scan_entries () =
  let measure ~views ~ncomps =
    let env, t = scan_tree ~views ~ncomps in
    let before_cmp = (Lsm_sim.Env.stats env).Lsm_sim.Io_stats.comparisons in
    let before_us = Lsm_sim.Env.now_us env in
    let rows = ref 0 in
    L.scan t L.full_scan_spec ~f:(fun _ ~src_repaired:_ -> incr rows);
    ( !rows,
      (Lsm_sim.Env.stats env).Lsm_sim.Io_stats.comparisons - before_cmp,
      Lsm_sim.Env.now_us env -. before_us )
  in
  List.concat_map
    (fun ncomps ->
      let rows_h, cmp_h, us_h = measure ~views:false ~ncomps in
      let rows_v, cmp_v, us_v = measure ~views:true ~ncomps in
      assert (rows_h = rows_v);
      Printf.printf
        "sim.range_scan c%d: heap %7.0fus %7d cmp | view %7.0fus %7d cmp  \
         (%.1fx / %.1fx)\n"
        ncomps us_h cmp_h us_v cmp_v (us_h /. us_v)
        (float_of_int cmp_h /. float_of_int cmp_v);
      let e name unit_ v =
        { Lsm_harness.Bench_json.name; unit_; samples = [| v |] }
      in
      [
        e (Printf.sprintf "sim.range_scan.c%d.heap.sim_us" ncomps) "us/scan" us_h;
        e
          (Printf.sprintf "sim.range_scan.c%d.heap.comparisons" ncomps)
          "cmp/scan" (float_of_int cmp_h);
        e (Printf.sprintf "sim.range_scan.c%d.view.sim_us" ncomps) "us/scan" us_v;
        e
          (Printf.sprintf "sim.range_scan.c%d.view.comparisons" ncomps)
          "cmp/scan" (float_of_int cmp_v);
      ])
    [ 8; 16 ]

(* Serving-layer latency series, same contract as sim.range_scan: the
   engine cost model is deterministic for a fixed seed, so single-sample
   entries gate real latency changes, not host noise.  A fixed offered
   rate well below the tiny-scale knee keeps p99 service-dominated and
   stable run to run. *)
let sim_serve_entries () =
  let cfg = Lsm_serve.Driver.config ~partitions:4 Lsm_harness.Scale.tiny in
  let cfg =
    { cfg with Lsm_serve.Driver.rate_rps = 1000.0; duration_s = 0.3; seed = 11 }
  in
  let r = Lsm_serve.Driver.run cfg in
  let e name unit_ v = { Lsm_harness.Bench_json.name; unit_; samples = [| v |] } in
  List.concat_map
    (fun (c : Lsm_serve.Driver.class_stats) ->
      Printf.printf "sim.serve %-9s n=%-4d p99 %8.0fus  svc %8.0fus\n"
        c.Lsm_serve.Driver.cls c.Lsm_serve.Driver.count
        c.Lsm_serve.Driver.p99_us c.Lsm_serve.Driver.mean_service_us;
      [
        e
          (Printf.sprintf "sim.serve.%s.p99_us" c.Lsm_serve.Driver.cls)
          "us/req" c.Lsm_serve.Driver.p99_us;
        e
          (Printf.sprintf "sim.serve.%s.service_mean_us" c.Lsm_serve.Driver.cls)
          "us/req" c.Lsm_serve.Driver.mean_service_us;
      ])
    r.Lsm_serve.Driver.classes

(* Chaos serving series, same contract: a fixed fault matrix (crash +
   intermittent I/O + slow disk, one partition each) under a fixed
   offered rate.  The gated numbers are the degradation envelope —
   availability, per-phase p99, error/shed counts, and the crash's
   modeled outage — so a cost-model or front-door policy change that
   shifts graceful degradation by >10% fails CI. *)
let sim_serve_chaos_entries () =
  let module Dr = Lsm_serve.Driver in
  let cfg = Dr.config ~partitions:4 Lsm_harness.Scale.tiny in
  let faults =
    match
      Lsm_serve.Chaos.parse
        "crash@p1@t60ms;io@p2@t120ms+80ms!6;slow@p3@t220ms+80ms*8"
    with
    | Ok fs -> fs
    | Error e -> failwith ("sim.serve.chaos: " ^ e)
  in
  let cfg =
    {
      cfg with
      Dr.rate_rps = 1600.0;
      duration_s = 0.4;
      seed = 11;
      mix = Dr.chaos_mix;
      chaos = faults;
      policy =
        {
          Lsm_serve.Chaos.deadline_us = 8_000.0;
          retries = 1;
          hedge_us = 0.0;
          shed_backlog_us = 30_000.0;
        };
    }
  in
  let c = Dr.run_chaos cfg in
  let phase_p99 ph =
    match List.assoc_opt ph c.Dr.phase_classes with
    | Some classes -> (
        match List.find_opt (fun (cl : Dr.class_stats) -> cl.Dr.cls = "all") classes with
        | Some cl -> cl.Dr.p99_us
        | None -> 0.0)
    | None -> 0.0
  in
  Printf.printf
    "sim.serve.chaos availability %.4f  healthy p99 %8.0fus  degraded p99 \
     %8.0fus  errors %d  down %.1fms\n"
    c.Dr.availability (phase_p99 "healthy") (phase_p99 "degraded") c.Dr.failures
    (c.Dr.down_us /. 1000.0);
  let e name unit_ v = { Lsm_harness.Bench_json.name; unit_; samples = [| v |] } in
  [
    (* The compare gate flags increases (lower is better), so snapshot
       the unavailable fraction: an availability drop raises it. *)
    e "sim.serve.chaos.unavailability" "frac" (1.0 -. c.Dr.availability);
    e "sim.serve.chaos.healthy.p99_us" "us/req" (phase_p99 "healthy");
    e "sim.serve.chaos.degraded.p99_us" "us/req" (phase_p99 "degraded");
    e "sim.serve.chaos.errors" "req" (Float.of_int c.Dr.failures);
    e "sim.serve.chaos.shed" "req" (Float.of_int c.Dr.shed);
    e "sim.serve.chaos.down_ms" "ms" (c.Dr.down_us /. 1000.0);
  ]

(* Group-commit series, same contract as sim.range_scan: identical
   seeded transaction workloads with the WAL batching 1 (serial), 4, and
   8 commits per fsync.  The gated claim is fsync amortization: simulated
   WAL sync cost per committed transaction falls strictly below the
   serial baseline from batch 4 up (one group fsync covers the whole
   batch; the serial WAL charges one per commit). *)
module Txn = Lsm_core.Txn_dataset.Make (Lsm_workload.Tweet.Record) (D)

let sim_group_commit_entries () =
  let measure batch =
    let env = quiet_env () in
    let d =
      dataset ~strategy:Strategy.validation ~mem_budget:(256 * 1024) env
        Lsm_harness.Scale.tiny
    in
    let t = Txn.create d in
    if batch > 1 then Txn.set_group_commit t ~batch;
    let gen = Tweet.create_gen ~seed:21 () in
    let id = ref 0 in
    for i = 1 to 300 do
      let txn = Txn.begin_txn t in
      for _ = 1 to 4 do
        incr id;
        Txn.upsert t txn (Tweet.with_id gen (!id mod 2_000))
      done;
      Txn.commit t txn;
      (* Periodic flushes seal any open group (WAL-before-data). *)
      if i mod 60 = 0 then Txn.flush t
    done;
    Txn.flush t;
    Lsm_txn.Wal.sync_stats (Txn.wal t)
  in
  let e name unit_ v = { Lsm_harness.Bench_json.name; unit_; samples = [| v |] } in
  List.concat_map
    (fun batch ->
      let s = measure batch in
      let per_txn =
        s.Lsm_txn.Wal.fsync_time_us
        /. float_of_int (max 1 s.Lsm_txn.Wal.durable_commits)
      in
      Printf.printf
        "sim.group_commit b%d: %4d fsyncs, %4d durable commits, %6.1f us/txn\n"
        batch s.Lsm_txn.Wal.fsyncs s.Lsm_txn.Wal.durable_commits per_txn;
      [
        e
          (Printf.sprintf "sim.group_commit.b%d.fsync_us_per_txn" batch)
          "us/txn" per_txn;
        e
          (Printf.sprintf "sim.group_commit.b%d.fsyncs" batch)
          "fsyncs" (float_of_int s.Lsm_txn.Wal.fsyncs);
      ])
    [ 1; 4; 8 ]

(* Overlapping-maintenance series: one seeded update-heavy ingest run per
   worker count.  The two schedulers produce byte-identical trees (the
   differential suite proves it); what this series gates is the modeled
   wall-clock spent inside the merge scheduler — with 2 workers the
   clock is rewound from each round's serial sum to its list-scheduled
   makespan, so merge_us must not exceed the serial run's. *)
let sim_parallel_maint_entries () =
  let measure workers =
    let env = quiet_env () in
    let d =
      dataset ~strategy:Strategy.validation ~mem_budget:(64 * 1024)
        ~maint_workers:workers env Lsm_harness.Scale.tiny
    in
    let stream =
      Streams.upsert_stream ~seed:17 ~update_ratio:0.5 ~distribution:`Uniform ()
    in
    for _ = 1 to 12_000 do
      apply_op d (Streams.next stream)
    done;
    D.flush_now d;
    (D.total_disk_bytes d, (D.stats d).D.merge_us, D.maint_stats d)
  in
  let bytes1, merge1, _ = measure 1 in
  let bytes2, merge2, m2 = measure 2 in
  (* The schedulers must agree on the physical result. *)
  assert (bytes1 = bytes2);
  let speedup =
    m2.Lsm_core.Dataset.maint_serial_us
    /. Float.max 1.0 m2.Lsm_core.Dataset.maint_makespan_us
  in
  Printf.printf
    "sim.parallel_maint: w1 %8.0fus | w2 %8.0fus (%d rounds, %d jobs, \
     overlap %d, %.2fx)\n"
    merge1 merge2 m2.Lsm_core.Dataset.maint_rounds
    m2.Lsm_core.Dataset.maint_jobs m2.Lsm_core.Dataset.maint_max_overlap
    speedup;
  let e name unit_ v = { Lsm_harness.Bench_json.name; unit_; samples = [| v |] } in
  [
    e "sim.parallel_maint.w1.merge_us" "us/run" merge1;
    e "sim.parallel_maint.w2.merge_us" "us/run" merge2;
    e "sim.parallel_maint.w2.speedup" "x" speedup;
  ]

(* Sharded-memtable series, same contract: two open-loop runs at the
   same offered rate — 0.8x of one capacity estimate made on the
   unsharded config — differing only in mem_shards.  The budget is 2x
   the tiny-scale default so each partition's memtable sits just under
   the max-mergeable cap: flushed components are meaty enough that
   quartering them does not multiply the tiering policy's rewrite count
   (at the default budget a shard flush is ~3 pages and the policy
   re-merges the tiny components to death, drowning the stall win).  At
   this load the budget evicts throughout the run; the unsharded tail
   is whole-memtable flush stalls, while 4 shards flush a quarter at a
   time and siblings keep absorbing writes.  The gated claims: sharded
   ingest p99 strictly below unsharded, and the pre-enforcement peak —
   the budget plus the triggering write — within one record's jitter of
   the unsharded baseline (shard eviction must not change when
   enforcement trips). *)
let sim_shard_entries () =
  let module Dr = Lsm_serve.Driver in
  let base = Dr.config ~partitions:4 Lsm_harness.Scale.tiny in
  let cap = Dr.estimate_capacity base in
  let measure shards =
    let cfg =
      {
        base with
        Dr.rate_rps = 0.8 *. cap;
        duration_s = 0.3;
        seed = 11;
        maint_workers = 2;
        mem_shards = shards;
        budget_bytes = 2 * base.Dr.budget_bytes;
      }
    in
    let r = Dr.run cfg in
    let ingest =
      List.find (fun (c : Dr.class_stats) -> c.Dr.cls = "ingest") r.Dr.classes
    in
    (ingest.Dr.p99_us, r.Dr.peak_pre_mem_bytes, r.Dr.evictions)
  in
  let p99_1, pre1, ev1 = measure 1 in
  let p99_4, pre4, ev4 = measure 4 in
  Printf.printf
    "sim.shard (%.0f rps): n1 ingest p99 %7.0fus peak_pre %7d (%d ev) | n4 \
     ingest p99 %7.0fus peak_pre %7d (%d ev)\n"
    (0.8 *. cap) p99_1 pre1 ev1 p99_4 pre4 ev4;
  (* The acceptance claims, enforced at generation time: losing either
     means sharding stopped paying for itself.  The pre-enforcement
     peak is the budget plus whichever write tripped it, so it may
     wobble by one record's footprint between configurations. *)
  assert (ev1 > 0 && ev4 > 0);
  assert (p99_4 < p99_1);
  assert (pre4 <= pre1 + 512);
  let e name unit_ v = { Lsm_harness.Bench_json.name; unit_; samples = [| v |] } in
  [
    e "sim.shard.n1.ingest_p99_us" "us/req" p99_1;
    e "sim.shard.n1.peak_pre_bytes" "bytes" (float_of_int pre1);
    e "sim.shard.n4.ingest_p99_us" "us/req" p99_4;
    e "sim.shard.n4.peak_pre_bytes" "bytes" (float_of_int pre4);
  ]

(* Query-plan benches share one prepared update-heavy dataset. *)
let query_fixture =
  lazy
    (let env = quiet_env () in
     let d =
       dataset ~strategy:Strategy.validation ~mem_budget:(256 * 1024) env
         Lsm_harness.Scale.tiny
     in
     let stream =
       Streams.upsert_stream ~seed:3 ~update_ratio:0.5 ~distribution:`Uniform ()
     in
     for _ = 1 to 20_000 do
       apply_op d (Streams.next stream)
     done;
     d)

let query_bench name mode =
  let rng = Lsm_util.Rng.create 9 in
  Test.make ~name
    (Staged.stage (fun () ->
         let d = Lazy.force query_fixture in
         let lo = Lsm_util.Rng.int rng 99_000 in
         ignore (D.query_secondary d ~sec:"user_id" ~lo ~hi:(lo + 100) ~mode ())))

(* Observability overhead (ISSUE acceptance: disabled-tracer overhead on
   the point-lookup path must stay < 5%).  Three measurements:
   - obs.span(disabled): the raw per-instrumentation-point cost when obs
     is off — one branch through Env.span;
   - obs.point_query(off|on): the same point lookup on identical
     datasets, obs disabled vs enabled.  Compare span(disabled) against
     point_query(off) for the <5% check; off-vs-on shows the enabled
     cost for context. *)
let obs_fixture enable =
  lazy
    (let env = quiet_env () in
     if enable then ignore (Lsm_sim.Env.enable_obs env);
     let d = dataset ~mem_budget:(256 * 1024) env Lsm_harness.Scale.tiny in
     let stream = Streams.insert_stream ~seed:7 ~duplicate_ratio:0.0 () in
     for _ = 1 to 20_000 do
       apply_op d (Streams.next stream)
     done;
     d)

let obs_fixture_off = obs_fixture false
let obs_fixture_on = obs_fixture true

let obs_point_bench name fixture =
  let rng = Lsm_util.Rng.create 13 in
  Test.make ~name
    (Staged.stage (fun () ->
         let d = Lazy.force fixture in
         ignore (D.point_query d (Lsm_util.Rng.int rng 1_000_000))))

let test_obs_span_disabled =
  let env = quiet_env () in
  Test.make ~name:"obs.span(disabled)"
    (Staged.stage (fun () -> Lsm_sim.Env.span env "noop" (fun () -> ())))

(* One timeline observation: window lookup + histogram increment.  The
   serving driver pays this per completion when --timeline is on, so it
   must stay cheap next to a simulated request. *)
let test_obs_timeseries_observe =
  let ts = Lsm_obs.Timeseries.create ~window_us:100_000.0 () in
  let i = ref 0 in
  Test.make ~name:"obs.timeseries.observe"
    (Staged.stage (fun () ->
         incr i;
         Lsm_obs.Timeseries.observe ts
           ~at_us:(Float.of_int (!i land 0xfffff))
           "point" 250.0))

let test_standalone_repair =
  Test.make ~name:"dataset.standalone_repair(10k,50%upd)"
    (Staged.stage (fun () ->
         let env = quiet_env () in
         let d =
           dataset ~strategy:Strategy.validation_no_repair
             ~mem_budget:(128 * 1024) env Lsm_harness.Scale.tiny
         in
         let stream =
           Streams.upsert_stream ~seed:5 ~update_ratio:0.5
             ~distribution:`Uniform ()
         in
         for _ = 1 to 10_000 do
           apply_op d (Streams.next stream)
         done;
         D.standalone_repair d))

let micro_tests =
  Test.make_grouped ~name:"lsm-repro"
    [
      test_mem_btree_put;
      test_mem_btree_find;
      test_bloom_std;
      test_bloom_blocked;
      test_dbt_find;
      test_dbt_cursor;
      test_lsm_write;
      test_lsm_scan;
      range_scan_bench "lsm.range_scan(16k,8comps,heap)" range_fixture_heap;
      range_scan_bench "lsm.range_scan(16k,8comps,view)" range_fixture_view;
      test_lsm_merge;
      upsert_bench "dataset.upsert(eager,2k)" Strategy.eager;
      upsert_bench "dataset.upsert(validation,2k)" Strategy.validation;
      upsert_bench "dataset.upsert(mutable-bitmap,2k)" Strategy.mutable_bitmap;
      query_bench "dataset.query(ts-validation,0.1%)" `Timestamp;
      query_bench "dataset.query(direct,0.1%)" `Direct;
      query_bench "dataset.query(assume-valid,0.1%)" `Assume_valid;
      test_obs_span_disabled;
      test_obs_timeseries_observe;
      obs_point_bench "obs.point_query(off)" obs_fixture_off;
      obs_point_bench "obs.point_query(on)" obs_fixture_on;
      test_standalone_repair;
    ]

let run_micro ?(quota = 0.4) ?json_path () =
  print_endline "\n===== Bechamel microbenchmarks (host CPU time / run) =====";
  (* Build shared fixtures up front so their one-time cost never lands
     inside a measured run. *)
  ignore (Lazy.force query_fixture);
  ignore (Lazy.force obs_fixture_off);
  ignore (Lazy.force obs_fixture_on);
  ignore (Lazy.force range_fixture_heap);
  ignore (Lazy.force range_fixture_view);
  (* Deterministic simulated-cost series first — the CI gate reads these. *)
  let sim_entries =
    sim_range_scan_entries () @ sim_serve_entries ()
    @ sim_serve_chaos_entries () @ sim_group_commit_entries ()
    @ sim_parallel_maint_entries () @ sim_shard_entries ()
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second quota) ~kde:None () in
  let raw = Benchmark.all cfg instances micro_tests in
  (match json_path with
  | None -> ()
  | Some path ->
      let label = Measure.label (List.hd instances) in
      let entries =
        Hashtbl.fold
          (fun name (b : Benchmark.t) acc ->
            let samples =
              Array.map
                (fun m ->
                  Measurement_raw.get ~label m /. Measurement_raw.run m)
                b.Benchmark.lr
            in
            { Lsm_harness.Bench_json.name; unit_ = "ns/run"; samples } :: acc)
          raw []
      in
      let entries =
        List.sort
          (fun a b ->
            compare a.Lsm_harness.Bench_json.name b.Lsm_harness.Bench_json.name)
          (sim_entries @ entries)
      in
      Lsm_harness.Bench_json.write ~path
        { Lsm_harness.Bench_json.kind = "micro"; scale = None; entries };
      Printf.printf "wrote %s (%d entries)\n" path (List.length entries));
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun _measure tbl ->
      let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) tbl [] in
      List.iter
        (fun (name, ols) ->
          let est =
            match Analyze.OLS.estimates ols with
            | Some (e :: _) -> Printf.sprintf "%12.1f ns/run" e
            | _ -> "(no estimate)"
          in
          let r2 =
            match Analyze.OLS.r_square ols with
            | Some r -> Printf.sprintf "r²=%.3f" r
            | None -> ""
          in
          Printf.printf "%-44s %s  %s\n" name est r2)
        (List.sort compare rows))
    merged;
  flush stdout

(* ------------------------------------------------------------------ *)

(* Figure suite, optionally snapshotting every numeric table cell. *)
let run_figures ?json_path scale =
  Printf.printf
    "===== Paper figure suite (scale %s: %d records; simulated time) =====\n"
    scale.Lsm_harness.Scale.name scale.Lsm_harness.Scale.records;
  match json_path with
  | None -> Lsm_harness.Registry.run_all scale
  | Some path ->
      let reports = ref [] in
      List.iter
        (fun (e : Lsm_harness.Registry.experiment) ->
          Printf.printf "\n##### %s — %s\n" e.id e.description;
          flush stdout;
          let rs = e.run scale in
          List.iter Lsm_harness.Report.print rs;
          reports := !reports @ rs)
        Lsm_harness.Registry.all;
      let doc = Lsm_harness.Bench_json.of_reports ~scale !reports in
      Lsm_harness.Bench_json.write ~path doc;
      Printf.printf "wrote %s (%d entries)\n" path
        (List.length doc.Lsm_harness.Bench_json.entries)

let run_compare ?only old_path new_path threshold =
  let load path =
    match Lsm_harness.Bench_json.read ~path with
    | Ok d -> d
    | Error e ->
        Printf.eprintf "bench compare: %s: %s\n" path e;
        exit 2
  in
  (* [--only PREFIX] narrows the comparison to matching entry names — the
     CI gate runs on the deterministic sim.range_scan series, where any
     threshold break is a real cost change rather than host noise. *)
  let restrict (d : Lsm_harness.Bench_json.doc) =
    match only with
    | None -> d
    | Some prefix ->
        {
          d with
          Lsm_harness.Bench_json.entries =
            List.filter
              (fun (e : Lsm_harness.Bench_json.entry) ->
                String.length e.name >= String.length prefix
                && String.sub e.name 0 (String.length prefix) = prefix)
              d.Lsm_harness.Bench_json.entries;
        }
  in
  let old_d = restrict (load old_path) and new_d = restrict (load new_path) in
  let regs, compared, only_old, only_new =
    Lsm_harness.Bench_json.compare_docs ~threshold old_d new_d
  in
  Printf.printf
    "bench compare: %d entries compared%s (threshold %+.0f%%), %d only in \
     baseline, %d new\n"
    compared
    (match only with None -> "" | Some p -> Printf.sprintf " [only %s*]" p)
    (threshold *. 100.0) (List.length only_old) (List.length only_new);
  List.iter
    (fun r ->
      Format.printf "REGRESSION %a@." Lsm_harness.Bench_json.pp_regression r)
    regs;
  if regs = [] then print_endline "bench compare: no regressions"
  else exit 1

let usage () =
  prerr_endline
    "usage: main.exe [micro|figures [SCALE]|compare OLD NEW] [--json FILE] \
     [--quota SECONDS] [--threshold FRACTION] [--only PREFIX]";
  exit 2

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* Split flags (with their values) from positional words. *)
  let json = ref None and quota = ref None and threshold = ref 0.15 in
  let only = ref None in
  let rec split pos = function
    | [] -> List.rev pos
    | "--json" :: v :: tl ->
        json := Some v;
        split pos tl
    | "--only" :: v :: tl ->
        only := Some v;
        split pos tl
    | "--quota" :: v :: tl -> (
        match float_of_string_opt v with
        | Some q when q > 0.0 ->
            quota := Some q;
            split pos tl
        | _ -> usage ())
    | "--threshold" :: v :: tl -> (
        match float_of_string_opt v with
        | Some t when t >= 0.0 ->
            threshold := t;
            split pos tl
        | _ -> usage ())
    | f :: _ when String.length f > 1 && f.[0] = '-' -> usage ()
    | w :: tl -> split (w :: pos) tl
  in
  match split [] args with
  | [ "micro" ] -> run_micro ?quota:!quota ?json_path:!json ()
  | [ "figures" ] -> run_figures ?json_path:!json Lsm_harness.Scale.small
  | [ "figures"; s ] -> run_figures ?json_path:!json (Lsm_harness.Scale.of_string s)
  | [ "compare"; old_path; new_path ] ->
      run_compare ?only:!only old_path new_path !threshold
  | [] ->
      run_figures Lsm_harness.Scale.small;
      run_micro ?quota:!quota ?json_path:!json ()
  | _ -> usage ()
