(** A mutable in-memory B+-tree, the data structure of LSM *memory
    components* (Sec. 2.2: "both of these indexes internally use a B+-tree
    to organize the data within each component").

    Supports insert-or-replace, point lookup, and leaf-linked in-order
    iteration (used by flushes and range scans).  Physical deletion is
    deliberately absent: LSM memory components never remove entries —
    deletes insert anti-matter *values*, and rollback likewise applies
    inverse operations as new entries (Sec. 2.2).

    Key comparisons are counted per tree; the LSM layer drains the counter
    into the simulated clock after each operation. *)

module Make (K : sig
  type t

  val compare : t -> t -> int
end) =
struct
  (* Preemptive-split B+-tree: nodes are split on the way down, so inserts
     never propagate splits upward. *)
  let node_cap = 16 (* max keys per node; children = node_cap + 1 *)

  type 'v leaf = {
    lk : K.t array;  (* keys, length node_cap; first [ln] are live *)
    lv : 'v array;
    mutable ln : int;
    mutable next : 'v leaf option;
  }

  type 'v node = L of 'v leaf | I of 'v internal

  and 'v internal = {
    ik : K.t array;  (* separators; child [i] holds keys < ik.(i) *)
    ic : 'v node array;  (* children, length node_cap + 1 *)
    mutable inn : int;  (* number of separators; children = inn + 1 *)
  }

  type 'v t = {
    mutable root : 'v node option;
    mutable first : 'v leaf option;  (* leftmost leaf, for iteration *)
    mutable count : int;
    mutable cmps : int;
  }

  let create () = { root = None; first = None; count = 0; cmps = 0 }

  let length t = t.count
  let is_empty t = t.count = 0

  (** [take_comparisons t] returns and resets the comparison counter. *)
  let take_comparisons t =
    let c = t.cmps in
    t.cmps <- 0;
    c

  let cmp t a b =
    t.cmps <- t.cmps + 1;
    K.compare a b

  (* Smallest index in [0, n) whose key is >= key, else n. *)
  let leaf_lower_bound t (lf : 'v leaf) key =
    let l = ref 0 and h = ref lf.ln in
    while !l < !h do
      let mid = (!l + !h) / 2 in
      if cmp t lf.lk.(mid) key < 0 then l := mid + 1 else h := mid
    done;
    !l

  (* Child index for [key]: smallest i with key < ik.(i), else inn. *)
  let child_index t (nd : 'v internal) key =
    let l = ref 0 and h = ref nd.inn in
    while !l < !h do
      let mid = (!l + !h) / 2 in
      if cmp t nd.ik.(mid) key <= 0 then l := mid + 1 else h := mid
    done;
    !l

  let mk_leaf key value =
    { lk = Array.make node_cap key; lv = Array.make node_cap value; ln = 1; next = None }

  (* Split the full child at [idx] of internal node [parent].  The new right
     sibling takes the upper half; the separator rises into [parent]. *)
  let split_child parent idx =
    let insert_sep sep right =
      for j = parent.inn downto idx + 1 do
        parent.ik.(j) <- parent.ik.(j - 1)
      done;
      for j = parent.inn + 1 downto idx + 2 do
        parent.ic.(j) <- parent.ic.(j - 1)
      done;
      parent.ik.(idx) <- sep;
      parent.ic.(idx + 1) <- right;
      parent.inn <- parent.inn + 1
    in
    match parent.ic.(idx) with
    | L lf ->
        let mid = lf.ln / 2 in
        let right =
          {
            lk = Array.make node_cap lf.lk.(0);
            lv = Array.make node_cap lf.lv.(0);
            ln = lf.ln - mid;
            next = lf.next;
          }
        in
        Array.blit lf.lk mid right.lk 0 right.ln;
        Array.blit lf.lv mid right.lv 0 right.ln;
        lf.ln <- mid;
        lf.next <- Some right;
        insert_sep right.lk.(0) (L right)
    | I nd ->
        let mid = nd.inn / 2 in
        (* Separator at [mid] moves up; right gets separators after it. *)
        let right =
          {
            ik = Array.make node_cap nd.ik.(0);
            ic = Array.make (node_cap + 1) nd.ic.(0);
            inn = nd.inn - mid - 1;
          }
        in
        Array.blit nd.ik (mid + 1) right.ik 0 right.inn;
        Array.blit nd.ic (mid + 1) right.ic 0 (right.inn + 1);
        let sep = nd.ik.(mid) in
        nd.inn <- mid;
        insert_sep sep (I right)

  let node_full = function
    | L lf -> lf.ln = node_cap
    | I nd -> nd.inn = node_cap

  (** [put t key value] inserts or replaces; returns the previous value
      bound to [key], if any. *)
  let put t key value =
    match t.root with
    | None ->
        let lf = mk_leaf key value in
        t.root <- Some (L lf);
        t.first <- Some lf;
        t.count <- 1;
        None
    | Some root ->
        (* Grow the tree if the root is full. *)
        let root =
          if node_full root then begin
            let nd =
              {
                ik = Array.make node_cap (match root with
                     | L lf -> lf.lk.(0)
                     | I n -> n.ik.(0));
                ic = Array.make (node_cap + 1) root;
                inn = 0;
              }
            in
            nd.ic.(0) <- root;
            split_child nd 0;
            let r = I nd in
            t.root <- Some r;
            r
          end
          else root
        in
        let rec go = function
          | L lf ->
              let pos = leaf_lower_bound t lf key in
              if pos < lf.ln && cmp t lf.lk.(pos) key = 0 then begin
                let old = lf.lv.(pos) in
                lf.lv.(pos) <- value;
                Some old
              end
              else begin
                for j = lf.ln downto pos + 1 do
                  lf.lk.(j) <- lf.lk.(j - 1);
                  lf.lv.(j) <- lf.lv.(j - 1)
                done;
                lf.lk.(pos) <- key;
                lf.lv.(pos) <- value;
                lf.ln <- lf.ln + 1;
                t.count <- t.count + 1;
                None
              end
          | I nd ->
              let idx = child_index t nd key in
              if node_full nd.ic.(idx) then begin
                split_child nd idx;
                (* Re-decide between the two halves. *)
                let idx =
                  if cmp t nd.ik.(idx) key <= 0 then idx + 1 else idx
                in
                go nd.ic.(idx)
              end
              else go nd.ic.(idx)
        in
        go root

  (** [remove t key] removes the binding for [key], returning the removed
      value.  Used only by transaction rollback (Sec. 5.2: "rollback for
      in-memory component changes is implemented by applying the inverse
      operations of log records"); normal LSM deletion inserts anti-matter
      values instead.  Leaves are allowed to underflow — stale separators
      and empty leaves never affect search correctness, only space, and a
      memory component's life ends at the next flush anyway. *)
  let remove t key =
    let rec go = function
      | L lf ->
          let pos = leaf_lower_bound t lf key in
          if pos < lf.ln && cmp t lf.lk.(pos) key = 0 then begin
            let old = lf.lv.(pos) in
            for j = pos to lf.ln - 2 do
              lf.lk.(j) <- lf.lk.(j + 1);
              lf.lv.(j) <- lf.lv.(j + 1)
            done;
            lf.ln <- lf.ln - 1;
            t.count <- t.count - 1;
            Some old
          end
          else None
      | I nd -> go nd.ic.(child_index t nd key)
    in
    match t.root with None -> None | Some r -> go r

  (** [find t key] returns the value bound to [key], if any. *)
  let find t key =
    let rec go = function
      | L lf ->
          let pos = leaf_lower_bound t lf key in
          if pos < lf.ln && cmp t lf.lk.(pos) key = 0 then Some lf.lv.(pos)
          else None
      | I nd -> go nd.ic.(child_index t nd key)
    in
    match t.root with None -> None | Some r -> go r

  let mem t key = Option.is_some (find t key)

  (** [iter t f] applies [f key value] in ascending key order. *)
  let iter t f =
    let rec leaves = function
      | None -> ()
      | Some lf ->
          for i = 0 to lf.ln - 1 do
            f lf.lk.(i) lf.lv.(i)
          done;
          leaves lf.next
    in
    leaves t.first

  (** [to_sorted_array t] materializes all bindings in key order (flush). *)
  let to_sorted_array t =
    match t.first with
    | None -> [||]
    | Some lf0 ->
        let out = Array.make t.count (lf0.lk.(0), lf0.lv.(0)) in
        let i = ref 0 in
        iter t (fun k v ->
            out.(!i) <- (k, v);
            incr i);
        out

  (** [iter_from t key f] applies [f] to bindings with key >= [key], in
      order, while [f] returns [true]. *)
  let iter_from t key f =
    let rec find_leaf = function
      | L lf -> (lf, leaf_lower_bound t lf key)
      | I nd -> find_leaf nd.ic.(child_index t nd key)
    in
    match t.root with
    | None -> ()
    | Some r ->
        let start = find_leaf r in
        let rec go (lf : 'v leaf) pos =
          if pos < lf.ln then begin
            if f lf.lk.(pos) lf.lv.(pos) then go lf (pos + 1)
          end
          else match lf.next with None -> () | Some nxt -> go nxt 0
        in
        let lf, pos = start in
        go lf pos

  (** [min_binding t] / [max_binding t]: extreme bindings, if any.
      (Leaves may be empty after {!remove}; skip them.) *)
  let min_binding t =
    let rec go = function
      | None -> None
      | Some lf -> if lf.ln = 0 then go lf.next else Some (lf.lk.(0), lf.lv.(0))
    in
    go t.first

  let max_binding t =
    (* With post-remove underflow the rightmost leaf can be empty; fall
       back to a full iteration in that rare case. *)
    let rec rightmost = function
      | L lf -> if lf.ln = 0 then None else Some (lf.lk.(lf.ln - 1), lf.lv.(lf.ln - 1))
      | I nd -> rightmost nd.ic.(nd.inn)
    in
    match t.root with
    | None -> None
    | Some r -> (
        match rightmost r with
        | Some b -> Some b
        | None ->
            let best = ref None in
            iter t (fun k v -> best := Some (k, v));
            !best)
end
