(** Mutable in-memory B+-trees — the data structure of LSM *memory
    components* (Sec. 2.2).  Insert-or-replace, point lookup, leaf-linked
    in-order iteration, and a rollback-only removal (LSM deletion inserts
    anti-matter values; physical removal exists solely for transaction
    rollback, Sec. 5.2).

    Key comparisons are counted per tree; the LSM layer drains the counter
    into the simulated clock after each operation. *)

module Make (K : sig
  type t

  val compare : t -> t -> int
end) : sig
  type 'v t

  val create : unit -> 'v t
  val length : 'v t -> int
  val is_empty : 'v t -> bool

  val take_comparisons : 'v t -> int
  (** Return and reset the comparison counter. *)

  val put : 'v t -> K.t -> 'v -> 'v option
  (** Insert or replace; returns the previous binding, if any. *)

  val remove : 'v t -> K.t -> 'v option
  (** Remove a binding (transaction rollback only).  Leaves may underflow;
      search correctness is unaffected. *)

  val find : 'v t -> K.t -> 'v option
  val mem : 'v t -> K.t -> bool

  val iter : 'v t -> (K.t -> 'v -> unit) -> unit
  (** Ascending key order. *)

  val to_sorted_array : 'v t -> (K.t * 'v) array
  (** Materialize all bindings in key order (flush). *)

  val iter_from : 'v t -> K.t -> (K.t -> 'v -> bool) -> unit
  (** Bindings with key >= the bound, in order, while the callback returns
      [true]. *)

  val min_binding : 'v t -> (K.t * 'v) option
  val max_binding : 'v t -> (K.t * 'v) option
end
