lib/btree/mem_btree.mli:
