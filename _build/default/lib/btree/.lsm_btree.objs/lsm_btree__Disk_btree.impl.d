lib/btree/disk_btree.ml: Array List Lsm_sim Lsm_util
