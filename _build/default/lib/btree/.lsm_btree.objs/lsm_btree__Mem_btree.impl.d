lib/btree/mem_btree.ml: Array Option
