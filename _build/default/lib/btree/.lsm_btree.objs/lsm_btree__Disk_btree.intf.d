lib/btree/disk_btree.mli: Lsm_sim Lsm_util
