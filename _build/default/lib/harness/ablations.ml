(** Ablation benches for the design choices DESIGN.md calls out — not
    paper figures, but knobs the paper fixes that are worth sweeping:

    - merge policy (tiering ratio / leveling / no merging) vs ingestion
      and query cost;
    - Bloom filter presence and false-positive rate vs point-lookup cost;
    - the Bloom-repair optimization, isolated on identical datasets;
    - partition scale-out (Sec. 6.1's near-linear-speedup claim). *)

open Setup
module Pt = Lsm_core.Partitioned.Make (Lsm_workload.Tweet.Record)
module Ad = Lsm_core.Adaptive.Make (Lsm_workload.Tweet.Record) (D)

(* ------------------------------------------------------------------ *)

let policies =
  [
    ("tiering 1.2 + cap", fun scale ->
        Lsm_tree.Merge_policy.tiering ~size_ratio:1.2
          ~max_mergeable_bytes:(Scale.max_mergeable_bytes scale) ());
    ("tiering 1.2", fun _ -> Lsm_tree.Merge_policy.tiering ~size_ratio:1.2 ());
    ("tiering 4.0", fun _ -> Lsm_tree.Merge_policy.tiering ~size_ratio:4.0 ());
    ("leveling 10", fun _ -> Lsm_tree.Merge_policy.leveling ~size_ratio:10.0 ());
    ( "lazy-leveling 10/1.2",
      fun _ ->
        Lsm_tree.Merge_policy.lazy_leveling ~size_ratio:10.0 ~tier_ratio:1.2 () );
    ("no merge", fun _ -> Lsm_tree.Merge_policy.No_merge);
  ]

let run_policy scale =
  let rows =
    List.map
      (fun (pname, mk) ->
        let env = hdd_env scale in
        let d =
          D.create ~filter_key:Tweet.created_at
            ~secondaries:(secondary_specs 1) env
            {
              D.default_config with
              strategy = Strategy.eager;
              mem_budget = Scale.mem_budget scale;
              merge_policy = mk scale;
            }
        in
        let stream =
          Streams.upsert_stream ~seed:42 ~update_ratio:0.1
            ~distribution:`Uniform ()
        in
        let n = scale.Scale.records in
        let (), ingest_us = timed env (fun () -> ingest_quiet d stream ~n) in
        let comps = D.Prim.component_count (D.primary d) in
        (* A warm mid-selectivity query to show the read side. *)
        let qg = Lsm_workload.Query_gen.create ~seed:43 () in
        let q_us =
          warm_query_time env (fun _ ->
              let lo, hi =
                Lsm_workload.Query_gen.user_range qg ~selectivity:0.001
              in
              ignore
                (D.query_secondary d ~sec:"user_id" ~lo ~hi ~mode:`Assume_valid ()))
        in
        [
          pname;
          Report.fmt_int (int_of_float (throughput ~n ~sim_s:(ingest_us /. 1e6)));
          Report.fmt_int comps;
          Report.fmt_time_ms q_us;
        ])
      policies
  in
  Report.make ~id:"abl-policy"
    ~title:"Merge policy ablation (10% updates; eager strategy)"
    ~header:[ "policy"; "ingest rec/s"; "components"; "0.1% query ms" ]
    rows

(* ------------------------------------------------------------------ *)

let run_bloom scale =
  let variants =
    [
      ("none", None);
      ("fpr 10%", Some { Lsm_tree.Config.kind = `Standard; fpr = 0.1 });
      ("fpr 1%", Some { Lsm_tree.Config.kind = `Standard; fpr = 0.01 });
      ("fpr 0.1%", Some { Lsm_tree.Config.kind = `Standard; fpr = 0.001 });
      ("fpr 1% blocked", Some { Lsm_tree.Config.kind = `Blocked; fpr = 0.01 });
    ]
  in
  let rows =
    List.map
      (fun (vname, bloom) ->
        let env = hdd_env scale in
        let d =
          D.create ~filter_key:Tweet.created_at
            ~secondaries:(secondary_specs 1) env
            {
              D.default_config with
              strategy = Strategy.eager;
              mem_budget = Scale.mem_budget scale;
              merge_policy =
                Lsm_tree.Merge_policy.tiering ~size_ratio:1.2
                  ~max_mergeable_bytes:(Scale.max_mergeable_bytes scale) ();
              bloom;
            }
        in
        (* Eager upserts are lookup-bound: Bloom quality shows directly in
           ingestion throughput. *)
        let stream =
          Streams.upsert_stream ~seed:44 ~update_ratio:0.5
            ~distribution:`Uniform ()
        in
        let n = scale.Scale.records / 2 in
        let (), ingest_us = timed env (fun () -> ingest_quiet d stream ~n) in
        let st = Lsm_sim.Env.stats env in
        [
          vname;
          Report.fmt_int (int_of_float (throughput ~n ~sim_s:(ingest_us /. 1e6)));
          Report.fmt_int st.Lsm_sim.Io_stats.pages_read;
          Report.fmt_int st.Lsm_sim.Io_stats.bloom_negatives;
        ])
      variants
  in
  Report.make ~id:"abl-bloom"
    ~title:"Bloom filter ablation (eager, 50% updates)"
    ~header:[ "filter"; "ingest rec/s"; "pages read"; "probes answered no" ]
    rows

(* ------------------------------------------------------------------ *)

let run_bf_repair scale =
  (* Identical update-heavy datasets; repair all secondaries with and
     without the Bloom skip (same components, same obsolete entries). *)
  let build () =
    let env = hdd_env scale in
    let d, _ =
      insert_dataset ~strategy:Strategy.validation_no_repair ~update_ratio:0.5
        ~seed:45 env scale ~n:scale.Scale.records
    in
    (env, d)
  in
  let rows =
    List.map
      (fun (vname, bloom_opt) ->
        let env, d = build () in
        let (), us =
          timed env (fun () -> D.standalone_repair ~bloom_opt d)
        in
        let st = Lsm_sim.Io_stats.copy (Lsm_sim.Env.stats env) in
        [
          vname;
          Report.fmt_time_s us;
          Report.fmt_int st.Lsm_sim.Io_stats.bloom_probes;
          Report.fmt_int st.Lsm_sim.Io_stats.comparisons;
        ])
      [ ("without bf skip", false); ("with bf skip", true) ]
  in
  Report.make ~id:"abl-bf-repair"
    ~title:"Bloom-repair optimization, isolated (full standalone repair)"
    ~header:[ "variant"; "repair s"; "bloom probes"; "comparisons" ]
    rows

(* ------------------------------------------------------------------ *)

(* A phased workload: an ingestion burst (write-dominated), then an
   analytics burst (query-dominated), repeated.  Pure Eager wins the query
   phases and loses the write phases; pure Validation the reverse; the
   adaptive controller (the paper's future-work auto-tuning, Sec. 7)
   should track the winner of each phase. *)
let run_adaptive scale =
  let n = scale.Scale.records in
  let phase_writes = n / 4 and phase_queries = n / 15 in
  let run_fixed strategy qmode =
    let env = hdd_env scale in
    let d = dataset ~strategy env scale in
    let stream =
      Streams.upsert_stream ~seed:47 ~update_ratio:0.5 ~distribution:`Uniform ()
    in
    let qg = Lsm_workload.Query_gen.create ~seed:48 () in
    let (), us =
      timed env (fun () ->
          for _phase = 1 to 2 do
            for _ = 1 to phase_writes do
              apply_op d (Streams.next stream)
            done;
            for _ = 1 to phase_queries do
              let lo, hi =
                Lsm_workload.Query_gen.user_range qg ~selectivity:0.002
              in
              ignore (D.query_secondary d ~sec:"user_id" ~lo ~hi ~mode:qmode ())
            done
          done)
    in
    us
  in
  let run_adaptive () =
    let env = hdd_env scale in
    let d = dataset ~strategy:Strategy.validation env scale in
    let a = Ad.create ~config:{ Ad.default_config with window = 500 } d in
    let stream =
      Streams.upsert_stream ~seed:47 ~update_ratio:0.5 ~distribution:`Uniform ()
    in
    let qg = Lsm_workload.Query_gen.create ~seed:48 () in
    let (), us =
      timed env (fun () ->
          for _phase = 1 to 2 do
            for _ = 1 to phase_writes do
              match Streams.next stream with
              | Streams.Upsert r -> Ad.upsert a r
              | Streams.Insert r -> ignore (Ad.insert a r)
              | Streams.Delete pk -> Ad.delete a ~pk
            done;
            for _ = 1 to phase_queries do
              let lo, hi =
                Lsm_workload.Query_gen.user_range qg ~selectivity:0.002
              in
              ignore (Ad.query_secondary a ~sec:"user_id" ~lo ~hi ())
            done
          done)
    in
    (us, Ad.switches a)
  in
  let eager_us = run_fixed Strategy.eager `Assume_valid in
  let valid_us = run_fixed Strategy.validation `Timestamp in
  let adaptive_us, switches = run_adaptive () in
  Report.make ~id:"abl-adaptive"
    ~title:"Adaptive strategy selection on a phased workload (total sim s)"
    ~header:[ "configuration"; "total s"; "mode switches" ]
    [
      [ "eager (fixed)"; Report.fmt_time_s eager_us; "-" ];
      [ "validation (fixed)"; Report.fmt_time_s valid_us; "-" ];
      [ "adaptive"; Report.fmt_time_s adaptive_us; Report.fmt_int switches ];
    ]
    ~notes:
      [
        "two write-burst + query-burst rounds; the controller should land \
         near the better fixed strategy for the whole trace";
      ]

(* ------------------------------------------------------------------ *)

let run_scaleout scale =
  let rows =
    List.map
      (fun parts ->
        let p =
          Pt.create ~filter_key:Tweet.created_at
            ~secondaries:(secondary_specs 1)
            ~mk_env:(fun _ -> hdd_env scale)
            ~partitions:parts
            {
              D.default_config with
              strategy = Strategy.validation;
              mem_budget = Scale.mem_budget scale;
              merge_policy =
                Lsm_tree.Merge_policy.tiering ~size_ratio:1.2
                  ~max_mergeable_bytes:(Scale.max_mergeable_bytes scale) ();
            }
        in
        let stream =
          Streams.upsert_stream ~seed:46 ~update_ratio:0.1
            ~distribution:`Uniform ()
        in
        let n = scale.Scale.records in
        for _ = 1 to n do
          match Streams.next stream with
          | Streams.Upsert r -> Pt.upsert p r
          | Streams.Insert r -> ignore (Pt.insert p r)
          | Streams.Delete pk -> Pt.delete p ~pk
        done;
        let wall = Pt.sim_time_s p in
        [
          Report.fmt_int parts;
          Report.fmt_float wall;
          Report.fmt_int (int_of_float (throughput ~n ~sim_s:wall));
          Report.fmt_float (Pt.sim_time_total_s p);
        ])
      [ 1; 2; 4; 8 ]
  in
  Report.make ~id:"abl-scaleout"
    ~title:"Partition scale-out (validation, 10% updates)"
    ~header:[ "partitions"; "wall sim s"; "rec/s"; "total machine s" ]
    rows
    ~notes:
      [
        "the paper evaluates one partition and claims near-linear multi-\
         partition speedup (Sec. 6.1); wall time here is the slowest \
         partition's clock";
      ]
