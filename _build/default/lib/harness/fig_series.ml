(** Records-over-time series — Figs. 13 and 14 are cumulative curves in
    the paper; these targets print the curves themselves (one row per
    checkpoint), complementing the summary tables of {!Fig13}/{!Fig14}. *)

open Setup

let series_rows (runs : (string * (int * float) list) list) =
  (* Align by checkpoint index (all runs use 10 checkpoints). *)
  match runs with
  | [] -> []
  | (_, first) :: _ ->
      List.mapi
        (fun i (n, _) ->
          Report.fmt_int n
          :: List.map
               (fun (_, series) ->
                 match List.nth_opt series i with
                 | Some (_, t) -> Report.fmt_float t
                 | None -> "-")
               runs)
        first

let run13 scale =
  let runs =
    List.concat_map
      (fun use_pk_index ->
        List.map
          (fun dup ->
            let env = hdd_env scale in
            let d = dataset ~use_pk_index env scale in
            let stream = Streams.insert_stream ~seed:13 ~duplicate_ratio:dup () in
            ( Printf.sprintf "%s/%s"
                (if use_pk_index then "pk-idx" else "no-pk-idx")
                (Report.fmt_pct dup),
              ingest d stream ~n:scale.Scale.records ))
          [ 0.0; 0.5 ])
      [ true; false ]
  in
  Report.make ~id:"fig13-series"
    ~title:"Insert ingestion curves, hdd (simulated s to reach each record count)"
    ~header:("records" :: List.map fst runs)
    (series_rows runs)

let run14 scale =
  let runs =
    List.map
      (fun (name, strategy) ->
        let env = hdd_env scale in
        let d = dataset ~strategy env scale in
        let stream =
          Streams.upsert_stream ~seed:14 ~update_ratio:0.5
            ~distribution:`Uniform ()
        in
        (name, ingest d stream ~n:scale.Scale.records))
      [
        ("eager", Strategy.eager);
        ("validation (no repair)", Strategy.validation_no_repair);
        ("validation", Strategy.validation);
        ("mutable-bitmap", Strategy.mutable_bitmap);
      ]
  in
  Report.make ~id:"fig14-series"
    ~title:
      "Upsert ingestion curves, 50% uniform updates (simulated s per record \
       count)"
    ~header:("records" :: List.map fst runs)
    (series_rows runs)
