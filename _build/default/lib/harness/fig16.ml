(** Figures 16-18: query performance of the validation methods.

    - Fig. 16: non-index-only secondary queries (fetch records) for eager
      vs Direct/Timestamp validation, with and without merge repair, on
      append-only (0%) and update-heavy (50%) datasets.
    - Fig. 17: index-only queries (log-scale in the paper) — eager vs
      Timestamp validation.
    - Fig. 18: Timestamp validation with a small buffer cache. *)

open Setup

let selectivities = [ 1e-5; 5e-5; 1e-4; 5e-4; 1e-3; 1e-2 ]

let prep scale ~strategy ~update_ratio ?cache_bytes () =
  let env = hdd_env ?cache_bytes scale in
  let d, _ =
    insert_dataset ~strategy ~update_ratio ~distribution:`Uniform ~seed:16 env
      scale ~n:scale.Scale.records
  in
  (env, d)

let q_records env d ~sel ~mode =
  let qg = Lsm_workload.Query_gen.create ~seed:(int_of_float (sel *. 1e9)) () in
  warm_query_time ~runs:8 ~stable:5 env (fun _ ->
      let lo, hi = Lsm_workload.Query_gen.user_range qg ~selectivity:sel in
      ignore (D.query_secondary d ~sec:"user_id" ~lo ~hi ~mode ()))

let q_keys env d ~sel ~mode =
  let qg = Lsm_workload.Query_gen.create ~seed:(int_of_float (sel *. 1e9)) () in
  warm_query_time ~runs:8 ~stable:5 env (fun _ ->
      let lo, hi = Lsm_workload.Query_gen.user_range qg ~selectivity:sel in
      ignore (D.query_secondary_keys d ~sec:"user_id" ~lo ~hi ~mode ()))

(* Variants: (name, strategy, validation mode). *)
let fig16_variants : (string * Strategy.t * D.validation_mode) list =
  [
    ("eager", Strategy.eager, `Assume_valid);
    ("direct (no repair)", Strategy.validation_no_repair, `Direct);
    ("ts (no repair)", Strategy.validation_no_repair, `Timestamp);
    ("direct", Strategy.validation, `Direct);
    ("ts", Strategy.validation, `Timestamp);
  ]

let run_one_ratio scale ~update_ratio =
  (* One dataset per strategy, shared across modes. *)
  let built =
    List.map
      (fun strategy -> (strategy, prep scale ~strategy ~update_ratio ()))
      [ Strategy.eager; Strategy.validation_no_repair; Strategy.validation ]
  in
  let find s = List.assoc s built in
  List.map
    (fun sel ->
      Report.fmt_pct sel
      :: List.map
           (fun (_, strategy, mode) ->
             let env, d = find strategy in
             Report.fmt_time_ms (q_records env d ~sel ~mode))
           fig16_variants)
    selectivities

let run scale =
  let header =
    "selectivity" :: List.map (fun (n, _, _) -> n) fig16_variants
  in
  [
    Report.make ~id:"fig16-0" ~title:"Non-index-only queries, update ratio 0% (ms)"
      ~header
      (run_one_ratio scale ~update_ratio:0.0);
    Report.make ~id:"fig16-50" ~title:"Non-index-only queries, update ratio 50% (ms)"
      ~header
      (run_one_ratio scale ~update_ratio:0.5);
  ]

(* ------------------------------------------------------------------ *)

let fig17_variants : (string * Strategy.t * [ `Assume_valid | `Timestamp ]) list
    =
  [
    ("eager", Strategy.eager, `Assume_valid);
    ("ts (no repair)", Strategy.validation_no_repair, `Timestamp);
    ("ts", Strategy.validation, `Timestamp);
  ]

let run17_ratio scale ~update_ratio =
  let built =
    List.map
      (fun strategy -> (strategy, prep scale ~strategy ~update_ratio ()))
      [ Strategy.eager; Strategy.validation_no_repair; Strategy.validation ]
  in
  let find s = List.assoc s built in
  List.map
    (fun sel ->
      Report.fmt_pct sel
      :: List.map
           (fun (_, strategy, mode) ->
             let env, d = find strategy in
             Report.fmt_time_ms (q_keys env d ~sel ~mode))
           fig17_variants)
    selectivities

let run17 scale =
  let header = "selectivity" :: List.map (fun (n, _, _) -> n) fig17_variants in
  [
    Report.make ~id:"fig17-0" ~title:"Index-only queries, update ratio 0% (ms)"
      ~header
      (run17_ratio scale ~update_ratio:0.0);
    Report.make ~id:"fig17-50" ~title:"Index-only queries, update ratio 50% (ms)"
      ~header
      (run17_ratio scale ~update_ratio:0.5);
  ]

(* ------------------------------------------------------------------ *)

let run18 scale =
  let env_big, d_big =
    prep scale ~strategy:Strategy.validation ~update_ratio:0.0 ()
  in
  let env_small, d_small =
    prep scale ~strategy:Strategy.validation ~update_ratio:0.0
      ~cache_bytes:(Scale.small_cache_bytes scale) ()
  in
  let rows =
    List.map
      (fun sel ->
        [
          Report.fmt_pct sel;
          Report.fmt_time_ms (q_records env_big d_big ~sel ~mode:`Timestamp);
          Report.fmt_time_ms (q_records env_small d_small ~sel ~mode:`Timestamp);
        ])
      selectivities
  in
  Report.make ~id:"fig18"
    ~title:"Timestamp validation under a small buffer cache (ms)"
    ~header:[ "selectivity"; "ts validation"; "ts validation (small cache)" ]
    rows
