(** Figure 14: upsert ingestion performance of the maintenance strategies
    under no / 50% uniform / 50% Zipf updates (Sec. 6.3.2). *)

open Setup

let strategies =
  [
    ("eager", Strategy.eager);
    ("validation (no repair)", Strategy.validation_no_repair);
    ("validation", Strategy.validation);
    ("mutable-bitmap", Strategy.mutable_bitmap);
  ]

let workloads =
  [
    ("no update", 0.0, `Uniform);
    ("50% uniform", 0.5, `Uniform);
    ("50% zipf", 0.5, `Zipf_latest);
  ]

let run_cell scale (strategy : Strategy.t) (ratio, dist) =
  let env = hdd_env scale in
  let d = dataset ~strategy env scale in
  let stream =
    Streams.upsert_stream ~seed:14 ~update_ratio:ratio ~distribution:dist ()
  in
  let series = ingest d stream ~n:scale.Scale.records in
  let total_s = snd (List.nth series (List.length series - 1)) in
  throughput ~n:scale.Scale.records ~sim_s:total_s

let run scale =
  let rows =
    List.map
      (fun (sname, s) ->
        sname
        :: List.map
             (fun (_, ratio, dist) ->
               Report.fmt_int (int_of_float (run_cell scale s (ratio, dist))))
             workloads)
      strategies
  in
  Report.make ~id:"fig14"
    ~title:"Upsert ingestion throughput by strategy (records / simulated s)"
    ~header:("strategy" :: List.map (fun (w, _, _) -> w) workloads)
    rows
