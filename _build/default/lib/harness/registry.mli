(** The experiment registry: every table/figure of the paper's evaluation
    (plus ablations), by id, with the function that regenerates it. *)

type experiment = {
  id : string;  (** "fig12a" .. "fig23", "abl-*" *)
  description : string;
  run : Scale.t -> Report.t list;
}

val all : experiment list
val find : string -> experiment option

val run_all : ?out:out_channel -> ?csv_dir:string -> Scale.t -> unit
(** Run every experiment, printing tables (and writing one CSV per table
    when [csv_dir] is given). *)
