(** Figure 15: ingestion impact of (a) the maximum mergeable component
    size — merge frequency — and (b) the number of secondary indexes,
    which brings in the deleted-key B+-tree baseline (Sec. 6.3.2). *)

open Setup

let upsert_throughput scale ~strategy ?n_secondaries ?max_mergeable_bytes () =
  let env = hdd_env scale in
  let d = dataset ~strategy ?n_secondaries ?max_mergeable_bytes env scale in
  let stream =
    Streams.upsert_stream ~seed:15 ~update_ratio:0.1 ~distribution:`Uniform ()
  in
  let n = scale.Scale.records in
  let _, total_s =
    timed env (fun () -> ingest_quiet d stream ~n)
  in
  throughput ~n ~sim_s:(total_s /. 1e6)

let run_a scale =
  let base = Scale.max_mergeable_bytes scale in
  let multipliers = [ (1, "1GB*"); (4, "4GB*"); (16, "16GB*"); (64, "64GB*") ] in
  let strategies =
    [
      ("eager", Strategy.eager);
      ("validation", Strategy.validation);
      ("validation (no repair)", Strategy.validation_no_repair);
      ("mutable-bitmap", Strategy.mutable_bitmap);
    ]
  in
  let rows =
    List.map
      (fun (sname, s) ->
        sname
        :: List.map
             (fun (m, _) ->
               Report.fmt_int
                 (int_of_float
                    (upsert_throughput scale ~strategy:s
                       ~max_mergeable_bytes:(base * m) ())))
             multipliers)
      strategies
  in
  Report.make ~id:"fig15a"
    ~title:"Impact of max mergeable component size (upsert rec / sim s)"
    ~header:("strategy" :: List.map snd multipliers)
    rows
    ~notes:[ "sizes are paper-equivalents; scaled by the data-size ratio" ]

let run_b scale =
  let strategies =
    [
      ("eager", Strategy.eager);
      ("validation", Strategy.validation);
      ("validation (no repair)", Strategy.validation_no_repair);
      ("deleted-key B+tree", Strategy.deleted_key_btree);
    ]
  in
  let counts = [ 1; 2; 3; 4; 5 ] in
  let rows =
    List.map
      (fun (sname, s) ->
        sname
        :: List.map
             (fun n_secondaries ->
               Report.fmt_int
                 (int_of_float
                    (upsert_throughput scale ~strategy:s ~n_secondaries ())))
             counts)
      strategies
  in
  Report.make ~id:"fig15b"
    ~title:"Impact of number of secondary indexes (upsert rec / sim s)"
    ~header:("strategy" :: List.map string_of_int counts)
    rows
