(** Figure 19: pruning power of range filters under the three maintenance
    strategies, for queries over recent vs old data (Sec. 6.4.2).

    The creation-time attribute is monotone; queries select the first or
    last [days] out of a 730-day span.  Each query runs on a cold cache. *)

open Setup

let day_span = 730
let days = [ 1; 7; 30; 180; 365 ]

let strategies =
  [
    ("eager", Strategy.eager);
    ("validation", Strategy.validation);
    ("mutable-bitmap", Strategy.mutable_bitmap);
  ]

let prep scale ~strategy ~update_ratio =
  let env = hdd_env scale in
  let d, _ =
    insert_dataset ~strategy ~update_ratio ~distribution:`Uniform ~seed:19 env
      scale ~n:scale.Scale.records
  in
  (env, d)

let time_query env d ~now ~recent ~days =
  cold_query_time env (fun _ ->
      let tlo, thi =
        if recent then Lsm_workload.Query_gen.recent_time_range ~now ~days ~day_span
        else Lsm_workload.Query_gen.old_time_range ~now ~days ~day_span
      in
      ignore (D.query_time_range d ~tlo ~thi ~f:ignore))

let run_panel scale ~recent ~update_ratio ~id ~title =
  let built = List.map (fun (n, s) -> (n, prep scale ~strategy:s ~update_ratio)) strategies in
  let now = scale.Scale.records in
  let rows =
    List.map
      (fun (sname, (env, d)) ->
        sname
        :: List.map
             (fun dd -> Report.fmt_time_s (time_query env d ~now ~recent ~days:dd))
             days)
      built
  in
  Report.make ~id ~title
    ~header:("strategy" :: List.map (fun d -> string_of_int d ^ "d") days)
    rows

let run scale =
  [
    run_panel scale ~recent:true ~update_ratio:0.5 ~id:"fig19-recent"
      ~title:"Range-filter queries, recent data + 50% updates (s, cold cache)";
    run_panel scale ~recent:false ~update_ratio:0.0 ~id:"fig19-old0"
      ~title:"Range-filter queries, old data + 0% updates (s, cold cache)";
    run_panel scale ~recent:false ~update_ratio:0.5 ~id:"fig19-old50"
      ~title:"Range-filter queries, old data + 50% updates (s, cold cache)";
  ]
