lib/harness/fig_series.ml: List Printf Report Scale Setup Strategy Streams
