lib/harness/fig19.ml: D List Lsm_workload Report Scale Setup Strategy
