lib/harness/scale.ml: Lsm_sim
