lib/harness/ablations.ml: D List Lsm_core Lsm_sim Lsm_tree Lsm_workload Report Scale Setup Strategy Streams Tweet
