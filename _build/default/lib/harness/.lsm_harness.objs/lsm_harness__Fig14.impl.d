lib/harness/fig14.ml: List Report Scale Setup Strategy Streams
