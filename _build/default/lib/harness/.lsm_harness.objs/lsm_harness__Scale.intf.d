lib/harness/scale.mli: Lsm_sim
