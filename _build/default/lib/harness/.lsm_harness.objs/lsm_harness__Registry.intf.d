lib/harness/registry.mli: Report Scale
