lib/harness/report.mli:
