lib/harness/fig20.ml: D List Report Scale Setup Strategy Streams
