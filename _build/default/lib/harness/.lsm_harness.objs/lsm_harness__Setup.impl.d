lib/harness/setup.ml: Array Float List Lsm_bloom Lsm_core Lsm_sim Lsm_tree Lsm_workload Printf Scale
