lib/harness/fig12.ml: Array D List Lsm_sim Lsm_util Lsm_workload Report Scale Setup Tweet
