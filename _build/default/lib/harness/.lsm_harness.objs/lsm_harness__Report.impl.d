lib/harness/report.ml: Filename List Printf String Sys
