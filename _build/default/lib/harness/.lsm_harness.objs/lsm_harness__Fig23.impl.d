lib/harness/fig23.ml: CM D Device Env List Lsm_core Lsm_util Report Setup Strategy Tweet
