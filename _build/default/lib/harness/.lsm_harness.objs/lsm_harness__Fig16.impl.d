lib/harness/fig16.ml: D List Lsm_workload Report Scale Setup Strategy
