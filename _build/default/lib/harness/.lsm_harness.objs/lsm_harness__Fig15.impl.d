lib/harness/fig15.ml: List Report Scale Setup Strategy Streams
