lib/harness/fig13.ml: List Report Scale Setup Streams
