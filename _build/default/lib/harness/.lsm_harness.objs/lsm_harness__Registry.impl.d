lib/harness/registry.ml: Ablations Fig12 Fig13 Fig14 Fig15 Fig16 Fig19 Fig20 Fig23 Fig_series List Printf Report Scale
