(** Figure 23: overhead of the Mutable-bitmap concurrency-control methods
    — Baseline (no protection), Side-file, and Lock — while merging 4
    components under concurrent ingestion (Sec. 6.6).

    Panels sweep the writers' update ratio, the record size, and the
    number of records per component. *)

open Setup

let methods = [ CM.Baseline; CM.Side_file; CM.Lock ]

let tw ~rng ~record_bytes ~id ~at =
  {
    Tweet.id;
    user_id = Lsm_util.Rng.int rng 100_000;
    location = Lsm_util.Rng.int rng 50;
    created_at = at;
    msg_len = max 0 (record_bytes - 32);
  }

(* Build a Mutable-bitmap dataset with [comps] disk components of
   [records_per_comp] records of [record_bytes] each. *)
let build ~comps ~records_per_comp ~record_bytes =
  let env = Env.create ~cache_bytes:(8 * 1024 * 1024) Device.hdd in
  let d =
    D.create ~filter_key:Tweet.created_at
      ~secondaries:[ Lsm_core.Record.secondary "user_id" Tweet.user_id ]
      env
      {
        D.default_config with
        strategy = Strategy.mutable_bitmap;
        mem_budget = max_int;
      }
  in
  D.set_auto_maintenance d false;
  let rng = Lsm_util.Rng.create 23 in
  let next_id = ref 0 in
  for _b = 1 to comps do
    for _i = 1 to records_per_comp do
      incr next_id;
      D.upsert d (tw ~rng ~record_bytes ~id:!next_id ~at:!next_id)
    done;
    D.flush_memory d
  done;
  (d, !next_id)

let merge_time ~method_ ~update_ratio ~comps ~records_per_comp ~record_bytes =
  let d, max_id = build ~comps ~records_per_comp ~record_bytes in
  let rng = Lsm_util.Rng.create 77 in
  let fresh = ref (max_id * 10) in
  let next_write () =
    if Lsm_util.Rng.float rng < update_ratio then
      (* Update an existing key — likely residing in the merging comps. *)
      CM.Upsert
        (tw ~rng ~record_bytes ~id:(1 + Lsm_util.Rng.int rng max_id)
           ~at:(max_id + !fresh))
    else begin
      incr fresh;
      CM.Upsert (tw ~rng ~record_bytes ~id:!fresh ~at:(max_id + !fresh))
    end
  in
  let res = CM.run d ~method_ ~next_write ~writer_ops_per_row:0.25 () in
  res.CM.merge_time_us

let panel ~id ~title ~xlabel ~xs ~cell =
  let rows =
    List.map
      (fun (xname, x) ->
        xname
        :: List.map (fun m -> Report.fmt_time_s (cell m x)) methods)
      xs
  in
  Report.make ~id ~title
    ~header:(xlabel :: List.map CM.method_name methods)
    rows

(* Paper: 3M records/component at 100B, 50% updates unless swept.  Scaled
   1000x down. *)
let base_records = 3_000
let base_bytes = 100

let run _scale =
  [
    panel ~id:"fig23a" ~title:"CC overhead vs update ratio (merge time, s)"
      ~xlabel:"update ratio"
      ~xs:
        (List.map
           (fun r -> (Report.fmt_pct r, r))
           [ 0.0; 0.2; 0.4; 0.8; 1.0 ])
      ~cell:(fun m r ->
        merge_time ~method_:m ~update_ratio:r ~comps:4
          ~records_per_comp:base_records ~record_bytes:base_bytes);
    panel ~id:"fig23b" ~title:"CC overhead vs record size (merge time, s)"
      ~xlabel:"record bytes"
      ~xs:(List.map (fun b -> (string_of_int b, b)) [ 20; 100; 200; 500; 1000 ])
      ~cell:(fun m b ->
        merge_time ~method_:m ~update_ratio:0.5 ~comps:4
          ~records_per_comp:base_records ~record_bytes:b);
    panel ~id:"fig23c"
      ~title:"CC overhead vs records per component (merge time, s)"
      ~xlabel:"records/comp"
      ~xs:
        (List.map
           (fun n -> (string_of_int n, n))
           [ 1_000; 2_000; 3_000; 4_000; 5_000 ])
      ~cell:(fun m n ->
        merge_time ~method_:m ~update_ratio:0.5 ~comps:4 ~records_per_comp:n
          ~record_bytes:base_bytes);
  ]
