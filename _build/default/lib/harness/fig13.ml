(** Figure 13: insert ingestion performance — the value of the primary key
    index for uniqueness checks, with 0% and 50% duplicates, on both
    device profiles (Sec. 6.3.1). *)

open Setup

let run_one ~device_name ~env scale ~use_pk_index ~dup =
  let d = dataset ~use_pk_index env scale in
  let stream = Streams.insert_stream ~seed:13 ~duplicate_ratio:dup () in
  let series = ingest d stream ~n:scale.Scale.records in
  let total_s = snd (List.nth series (List.length series - 1)) in
  let early_n, early_s = List.hd series in
  let late_tp =
    (* Throughput over the last decile, where cache pressure has built. *)
    match List.rev series with
    | (n2, t2) :: (n1, t1) :: _ -> throughput ~n:(n2 - n1) ~sim_s:(t2 -. t1)
    | _ -> 0.0
  in
  [
    device_name;
    (if use_pk_index then "pk-idx" else "no-pk-idx");
    Report.fmt_pct dup;
    Report.fmt_float total_s;
    Report.fmt_int (int_of_float (throughput ~n:scale.Scale.records ~sim_s:total_s));
    Report.fmt_int (int_of_float (throughput ~n:early_n ~sim_s:early_s));
    Report.fmt_int (int_of_float late_tp);
  ]

let run scale =
  let rows =
    List.concat_map
      (fun (device_name, mk_env) ->
        List.concat_map
          (fun use_pk_index ->
            List.map
              (fun dup ->
                run_one ~device_name ~env:(mk_env scale) scale ~use_pk_index ~dup)
              [ 0.0; 0.5 ])
          [ true; false ])
      [ ("hdd", hdd_env ?cache_bytes:None); ("ssd", ssd_env ?cache_bytes:None) ]
  in
  Report.make ~id:"fig13"
    ~title:"Insert ingestion: uniqueness check via primary key index vs primary index"
    ~header:
      [ "device"; "uniq check"; "dup"; "total sim s"; "rec/s"; "early rec/s"; "late rec/s" ]
    rows
    ~notes:
      [
        "paper reports records-over-time for 6-12h runs; we report total and \
         early/late throughput of a fixed-record run — degradation shows as \
         late << early";
      ]
