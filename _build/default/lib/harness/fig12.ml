(** Figure 12: effectiveness of the point-lookup optimizations (Sec. 6.2).

    Dataset: insert-only tweets; queries: secondary ranges on user_id at
    controlled selectivities, fetching records from the primary index.
    Variants stack the optimizations one by one: naive (sorted keys only),
    batched lookup, stateful B+-tree cursors, blocked Bloom filters, and
    component-ID propagation. *)

open Setup

let mb = 1024 * 1024

(* Batching memory sizes are scaled by the same factor (16) as the device
   pages; labels keep the paper's values, starred. *)
let scaled b = b / 16

type variant = {
  vname : string;
  opts : D.Prim.lookup_opts;
  blocked : bool;  (** run against the blocked-Bloom build of the dataset *)
}

let variants =
  [
    {
      vname = "naive";
      opts = { D.Prim.batched = false; batch_bytes = 0; stateful = false; use_hints = false };
      blocked = false;
    };
    {
      vname = "batch";
      opts = { D.Prim.batched = true; batch_bytes = scaled (16 * mb); stateful = false; use_hints = false };
      blocked = false;
    };
    {
      vname = "batch/sLookup";
      opts = { D.Prim.batched = true; batch_bytes = scaled (16 * mb); stateful = true; use_hints = false };
      blocked = false;
    };
    {
      vname = "batch/sLookup/bBF";
      opts = { D.Prim.batched = true; batch_bytes = scaled (16 * mb); stateful = true; use_hints = false };
      blocked = true;
    };
    {
      vname = "batch/sLookup/bBF/pID";
      opts = { D.Prim.batched = true; batch_bytes = scaled (16 * mb); stateful = true; use_hints = true };
      blocked = true;
    };
  ]

let query_time env d ~selectivity ~lookup =
  let qg = Lsm_workload.Query_gen.create ~seed:(int_of_float (selectivity *. 1e9)) () in
  warm_query_time env (fun _i ->
      let lo, hi = Lsm_workload.Query_gen.user_range qg ~selectivity in
      ignore (D.query_secondary d ~sec:"user_id" ~lo ~hi ~mode:`Assume_valid ~lookup ()))

(* Build the two dataset flavours (standard and blocked Bloom filters). *)
let build_pair scale =
  let env_std = hdd_env scale in
  let d_std, _ = insert_dataset ~bloom_kind:`Standard env_std scale ~n:scale.Scale.records in
  let env_blk = hdd_env scale in
  let d_blk, _ = insert_dataset ~bloom_kind:`Blocked env_blk scale ~n:scale.Scale.records in
  ((env_std, d_std), (env_blk, d_blk))

let selectivity_rows pair selectivities =
  let (env_std, d_std), (env_blk, d_blk) = pair in
  List.map
    (fun sel ->
      Report.fmt_pct sel
      :: List.map
           (fun v ->
             let env, d = if v.blocked then (env_blk, d_blk) else (env_std, d_std) in
             Report.fmt_time_s (query_time env d ~selectivity:sel ~lookup:v.opts))
           variants)
    selectivities

let run_a scale =
  let pair = build_pair scale in
  let rows = selectivity_rows pair [ 1e-5; 2e-5; 5e-5; 1e-4; 2.5e-4 ] in
  Report.make ~id:"fig12a" ~title:"Point lookup optimizations, low selectivity (query time, s)"
    ~header:("selectivity" :: List.map (fun v -> v.vname) variants)
    rows

let run_b scale =
  let pair = build_pair scale in
  let (env_std, d_std), _ = pair in
  let rows = selectivity_rows pair [ 1e-3; 1e-2; 0.1; 0.2; 0.5 ] in
  (* Full-scan baselines: random primary keys, then sequential keys. *)
  let scan_t =
    warm_query_time env_std (fun _ -> ignore (D.full_scan d_std ~f:ignore))
  in
  let env_seq = hdd_env scale in
  let d_seq = dataset env_seq scale in
  let g = Tweet.create_gen ~seed:23 () in
  let next_seq = Tweet.fresh_sequential g in
  for _ = 1 to scale.Scale.records do
    ignore (D.insert d_seq (next_seq ()))
  done;
  let scan_seq_t =
    warm_query_time env_seq (fun _ -> ignore (D.full_scan d_seq ~f:ignore))
  in
  let pad_row label v =
    label :: List.mapi (fun i _ -> if i = 0 then v else "-") variants
  in
  Report.make ~id:"fig12b"
    ~title:"Point lookup optimizations, high selectivity (query time, s)"
    ~header:("selectivity" :: List.map (fun v -> v.vname) variants)
    (rows
    @ [
        pad_row "scan" (Report.fmt_time_s scan_t);
        pad_row "scan (seq keys)" (Report.fmt_time_s scan_seq_t);
      ])

let run_c scale =
  let env = hdd_env scale in
  let d, _ = insert_dataset ~bloom_kind:`Blocked env scale ~n:scale.Scale.records in
  let batch_sizes =
    [ ("no batching", None); ("128KB*", Some (scaled (128 * 1024))); ("1MB*", Some (scaled mb));
      ("4MB*", Some (scaled (4 * mb))); ("16MB*", Some (scaled (16 * mb))) ]
  in
  let selectivities = [ 1e-4; 1e-3; 1e-2; 0.1 ] in
  let rows =
    List.map
      (fun (label, bytes) ->
        label
        :: List.map
             (fun sel ->
               let lookup =
                 match bytes with
                 | None ->
                     { D.Prim.batched = false; batch_bytes = 0; stateful = true; use_hints = false }
                 | Some b ->
                     { D.Prim.batched = true; batch_bytes = b; stateful = true; use_hints = false }
               in
               Report.fmt_time_s (query_time env d ~selectivity:sel ~lookup))
             selectivities)
      batch_sizes
  in
  Report.make ~id:"fig12c" ~title:"Impact of batching memory (query time, s)"
    ~header:("batch memory" :: List.map Report.fmt_pct selectivities)
    rows

let run_d scale =
  let env = hdd_env scale in
  let d, _ = insert_dataset ~bloom_kind:`Blocked env scale ~n:scale.Scale.records in
  let selectivities = [ 1e-5; 1e-4; 1e-3; 1e-2; 0.1 ] in
  let time ~batched ~sort sel =
    let qg =
      Lsm_workload.Query_gen.create
        ~seed:(int_of_float (sel *. 1e9) + if sort then 1 else 0)
        ()
    in
    warm_query_time env (fun _ ->
        let lo, hi = Lsm_workload.Query_gen.user_range qg ~selectivity:sel in
        let lookup =
          if batched then
            { D.Prim.batched = true; batch_bytes = scaled (16 * mb); stateful = true; use_hints = false }
          else
            { D.Prim.batched = false; batch_bytes = 0; stateful = true; use_hints = false }
        in
        let records =
          D.query_secondary d ~sec:"user_id" ~lo ~hi ~mode:`Assume_valid ~lookup ()
        in
        if sort then begin
          (* Batched fetch order is not primary-key order; re-sort the
             materialized result (Fig. 12d's "Sorting"). *)
          let arr = Array.of_list records in
          let cost = ref 0 in
          Lsm_util.Sorter.sort
            ~cmp:(fun a b -> compare (Tweet.primary_key a) (Tweet.primary_key b))
            ~cost arr;
          Lsm_sim.Env.charge_comparisons env !cost;
          Lsm_sim.Env.charge_entry_visits env (Array.length arr)
        end)
  in
  let rows =
    List.map
      (fun sel ->
        [
          Report.fmt_pct sel;
          Report.fmt_time_s (time ~batched:false ~sort:false sel);
          Report.fmt_time_s (time ~batched:true ~sort:false sel);
          Report.fmt_time_s (time ~batched:true ~sort:true sel);
        ])
      selectivities
  in
  Report.make ~id:"fig12d" ~title:"Impact of sorting (query time, s)"
    ~header:[ "selectivity"; "no batching"; "batching"; "batching+sorting" ]
    rows
