(** The experiment registry: every table/figure of the paper's evaluation,
    by id, with the function that regenerates it. *)

type experiment = {
  id : string;
  description : string;
  run : Scale.t -> Report.t list;
}

let all : experiment list =
  [
    {
      id = "fig12a";
      description = "point-lookup optimizations, low selectivity";
      run = (fun s -> [ Fig12.run_a s ]);
    };
    {
      id = "fig12b";
      description = "point-lookup optimizations, high selectivity + scans";
      run = (fun s -> [ Fig12.run_b s ]);
    };
    {
      id = "fig12c";
      description = "impact of batching memory";
      run = (fun s -> [ Fig12.run_c s ]);
    };
    {
      id = "fig12d";
      description = "impact of result sorting";
      run = (fun s -> [ Fig12.run_d s ]);
    };
    {
      id = "fig13";
      description = "insert ingestion: primary key index for uniqueness checks";
      run = (fun s -> [ Fig13.run s ]);
    };
    {
      id = "fig14";
      description = "upsert ingestion throughput by strategy";
      run = (fun s -> [ Fig14.run s ]);
    };
    {
      id = "fig13-series";
      description = "insert ingestion curves (Fig. 13's records-over-time)";
      run = (fun s -> [ Fig_series.run13 s ]);
    };
    {
      id = "fig14-series";
      description = "upsert ingestion curves (Fig. 14's records-over-time)";
      run = (fun s -> [ Fig_series.run14 s ]);
    };
    {
      id = "fig15a";
      description = "impact of merge frequency (max mergeable size)";
      run = (fun s -> [ Fig15.run_a s ]);
    };
    {
      id = "fig15b";
      description = "impact of number of secondary indexes";
      run = (fun s -> [ Fig15.run_b s ]);
    };
    {
      id = "fig16";
      description = "non-index-only query performance";
      run = Fig16.run;
    };
    { id = "fig17"; description = "index-only query performance"; run = Fig16.run17 };
    {
      id = "fig18";
      description = "timestamp validation with small cache";
      run = (fun s -> [ Fig16.run18 s ]);
    };
    { id = "fig19"; description = "range-filter query performance"; run = Fig19.run };
    { id = "fig20"; description = "repair performance over time"; run = Fig20.run };
    { id = "fig21"; description = "repair with large records"; run = Fig20.run21 };
    {
      id = "fig22";
      description = "repair with 5 secondary indexes";
      run = Fig20.run22;
    };
    {
      id = "fig23";
      description = "mutable-bitmap concurrency control overhead";
      run = Fig23.run;
    };
    (* Ablations beyond the paper's figures. *)
    {
      id = "abl-policy";
      description = "ablation: merge policies (tiering/leveling/none)";
      run = (fun s -> [ Ablations.run_policy s ]);
    };
    {
      id = "abl-bloom";
      description = "ablation: Bloom filter presence and FPR";
      run = (fun s -> [ Ablations.run_bloom s ]);
    };
    {
      id = "abl-bf-repair";
      description = "ablation: Bloom-repair optimization, isolated";
      run = (fun s -> [ Ablations.run_bf_repair s ]);
    };
    {
      id = "abl-scaleout";
      description = "ablation: hash-partition scale-out";
      run = (fun s -> [ Ablations.run_scaleout s ]);
    };
    {
      id = "abl-adaptive";
      description = "ablation: adaptive strategy selection (future work, Sec. 7)";
      run = (fun s -> [ Ablations.run_adaptive s ]);
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

(** [run_all ?csv_dir scale] runs every experiment, printing tables and —
    when [csv_dir] is given — also writing one plot-ready CSV per table. *)
let run_all ?(out = stdout) ?csv_dir scale =
  List.iter
    (fun e ->
      Printf.fprintf out "\n##### %s — %s\n" e.id e.description;
      flush out;
      List.iter
        (fun t ->
          Report.print ~out t;
          match csv_dir with
          | Some dir -> ignore (Report.write_csv ~dir t)
          | None -> ())
        (e.run scale))
    all
