(** Figures 20-22: index repair performance as data accumulates
    (Sec. 6.5).

    Methodology: upsert records with merge repair enabled; after every
    tenth of the stream, stop and trigger a *full* repair, measuring its
    simulated time.  Methods:
    - primary repair (DELI): scan primary components, anti-matter obsolete
      record versions (optionally merging the primary as a by-product);
    - secondary repair (ours): standalone repair of each secondary
      component against the primary key index;
    - secondary repair (bf): with the Bloom-filter optimization under the
      correlated merge policy. *)

open Setup

type meth = {
  mname : string;
  strategy : Strategy.t;
  repair : D.t -> unit;
}

let primary_repair ~with_merge =
  {
    mname = (if with_merge then "primary repair (merge)" else "primary repair");
    strategy = Strategy.validation_no_repair;
    repair = (fun d -> D.primary_repair d ~with_merge);
  }

let secondary_repair ~bf =
  {
    mname = (if bf then "secondary repair (bf)" else "secondary repair");
    strategy = (if bf then Strategy.validation_bloom_opt else Strategy.validation);
    repair = D.standalone_repair;
  }

let run_methods scale ~methods ~update_ratio ?record_bytes ?n_secondaries ~id
    ~title () =
  let n = scale.Scale.records in
  let chunk = max 1 (n / 10) in
  let per_method =
    List.map
      (fun m ->
        let env = hdd_env scale in
        let d = dataset ~strategy:m.strategy ?n_secondaries env scale in
        let stream =
          Streams.upsert_stream ~seed:20 ~update_ratio ~distribution:`Uniform
            ?record_bytes ()
        in
        let times = ref [] in
        for _c = 1 to 10 do
          ingest_quiet d stream ~n:chunk;
          let _, us = timed env (fun () -> m.repair d) in
          times := us :: !times
        done;
        (m.mname, List.rev !times))
      methods
  in
  let rows =
    List.init 10 (fun c ->
        Report.fmt_int ((c + 1) * chunk)
        :: List.map
             (fun (_, times) -> Report.fmt_time_s (List.nth times c))
             per_method)
  in
  Report.make ~id ~title
    ~header:("records" :: List.map (fun (n, _) -> n) per_method)
    rows

let run scale =
  [
    run_methods scale
      ~methods:
        [
          primary_repair ~with_merge:false;
          primary_repair ~with_merge:true;
          secondary_repair ~bf:false;
          secondary_repair ~bf:true;
        ]
      ~update_ratio:0.0 ~id:"fig20-0"
      ~title:"Full repair time as data accumulates, update ratio 0% (s)" ();
    run_methods scale
      ~methods:
        [
          primary_repair ~with_merge:false;
          primary_repair ~with_merge:true;
          secondary_repair ~bf:false;
          secondary_repair ~bf:true;
        ]
      ~update_ratio:0.5 ~id:"fig20-50"
      ~title:"Full repair time as data accumulates, update ratio 50% (s)" ();
  ]

let run21 scale =
  [
    run_methods scale
      ~methods:
        [
          primary_repair ~with_merge:false;
          secondary_repair ~bf:false;
          secondary_repair ~bf:true;
        ]
      ~update_ratio:0.1 ~record_bytes:1024 ~id:"fig21"
      ~title:"Repair with large (1KB) records, update ratio 10% (s)" ();
  ]

let run22 scale =
  [
    run_methods scale
      ~methods:
        [
          primary_repair ~with_merge:false;
          secondary_repair ~bf:false;
          secondary_repair ~bf:true;
        ]
      ~update_ratio:0.1 ~n_secondaries:5 ~id:"fig22"
      ~title:"Repair with 5 secondary indexes, update ratio 10% (s)" ();
  ]
