(** Maintenance strategies for LSM auxiliary structures — the heart of the
    paper.

    How should secondary indexes and filters be kept consistent with the
    primary index as records are inserted, updated, and deleted?

    - {b Eager} (Sec. 3.1): every upsert/delete performs a point lookup to
      fetch the old record, then inserts anti-matter into each secondary
      index whose key changed and widens memory-component filters to cover
      the old record.  Queries get always-up-to-date structures; ingestion
      pays a point lookup per write.  (AsterixDB, MyRocks, Phoenix.)

    - {b Validation} (Sec. 4): writes insert new entries only; secondary
      indexes may return obsolete keys, and queries run an extra validation
      step (Direct or Timestamp, Fig. 5).  Obsolete entries are cleaned up
      by background index repair driven by the primary key index.

    - {b Mutable_bitmap} (Sec. 5): each disk component of the primary
      index carries a mutable validity bitmap, maintained by searching the
      primary key index (never full records).  Filters keep their full
      pruning power and ingestion avoids record-sized point lookups.
      Secondary indexes are maintained with the Validation scheme.

    - {b Deleted_key_btree} (Sec. 4.1, baseline): AsterixDB's alternative —
      each secondary index carries its own deleted-key structure recording
      the keys deleted in each component's time window; duplicated per
      secondary index. *)

type validation_opts = {
  repair_on_merge : bool;
      (** run merge repair (Fig. 7) whenever a secondary component merge
          happens; [false] = "validation (no repair)" in the figures *)
  bloom_opt : bool;
      (** the Bloom-filter repair optimization of Sec. 4.4: requires the
          correlated merge policy across all indexes, and lets repair skip
          keys whose Bloom probes on the newer primary-key components are
          all negative *)
}

type t =
  | Eager
  | Validation of validation_opts
  | Mutable_bitmap of { secondary_repair : bool }
  | Deleted_key_btree

let eager = Eager
let validation = Validation { repair_on_merge = true; bloom_opt = false }
let validation_no_repair = Validation { repair_on_merge = false; bloom_opt = false }
let validation_bloom_opt = Validation { repair_on_merge = true; bloom_opt = true }
let mutable_bitmap = Mutable_bitmap { secondary_repair = false }
let deleted_key_btree = Deleted_key_btree

(** Does this strategy keep a validity bitmap on primary / primary-key
    components? *)
let uses_primary_bitmap = function Mutable_bitmap _ -> true | _ -> false

(** Must primary and primary-key index merges be synchronized?  Required
    for shared bitmaps (Sec. 5.1). *)
let correlates_primary_pair = function Mutable_bitmap _ -> true | _ -> false

(** Must secondary-index merges be synchronized *with the primary key
    index*?  The Bloom-repair optimization needs this (Sec. 4.4: "use a
    correlated merge policy to synchronize the merge of all secondary
    indexes with the primary key index") so that the unpruned primary-key
    components a repair consults are always strictly newer than the
    repairing component's keys. *)
let correlates_secondaries = function
  | Validation { bloom_opt = true; _ } -> true
  | _ -> false

let name = function
  | Eager -> "eager"
  | Validation { repair_on_merge = false; _ } -> "validation(no-repair)"
  | Validation { bloom_opt = true; _ } -> "validation(bf)"
  | Validation _ -> "validation"
  | Mutable_bitmap _ -> "mutable-bitmap"
  | Deleted_key_btree -> "deleted-key-btree"

let pp fmt t = Fmt.string fmt (name t)
