(** Concurrency control between mutable bitmaps and flush/merge
    (Sec. 5.3): the {b Lock} and {b Side-file} protocols of Figs. 10-11
    against an unprotected {b Baseline}, driven as an incremental k-way
    merge with writer transactions interleaved between merged rows
    (Fig. 23's experiment). *)

module Make (R : Record.S) (D : module type of Dataset.Make (R)) : sig
  type method_ = Baseline | Lock | Side_file

  val method_name : method_ -> string

  (** CPU costs of the protocol operations (microseconds). *)
  type costs = {
    lock_us : float;
    bit_check_us : float;
    side_append_us : float;
    snapshot_us_per_kb : float;
    dataset_latch_us : float;
  }

  val default_costs : costs

  type result = {
    merge_time_us : float;
    rows_merged : int;
    writer_ops : int;
    lock_acquisitions : int;
    side_file_entries : int;
  }

  type writer_op = Upsert of R.t | Delete of int

  val run :
    D.t ->
    method_:method_ ->
    ?costs:costs ->
    next_write:(unit -> writer_op) ->
    writer_ops_per_row:float ->
    unit ->
    result
  (** Merge all of the dataset's primary (and primary-key) components with
      concurrent writers.  Requires the Mutable-bitmap strategy and at
      least two components.  Under [Lock] and [Side_file] no concurrent
      update is lost; [Baseline] exists as the timing floor. *)
end
