(** Maintenance strategies for LSM auxiliary structures — the heart of
    the paper.  See the implementation header for the full narrative of
    Eager (Sec. 3.1), Validation (Sec. 4), Mutable-bitmap (Sec. 5), and
    the deleted-key B+-tree baseline (Sec. 4.1). *)

type validation_opts = {
  repair_on_merge : bool;
      (** run merge repair (Fig. 7) whenever a secondary component merge
          happens; [false] = "validation (no repair)" in the figures *)
  bloom_opt : bool;
      (** the Bloom-filter repair optimization of Sec. 4.4 (requires the
          correlated merge policy across pk index and secondaries) *)
}

type t =
  | Eager
  | Validation of validation_opts
  | Mutable_bitmap of { secondary_repair : bool }
  | Deleted_key_btree

val eager : t
val validation : t
val validation_no_repair : t
val validation_bloom_opt : t
val mutable_bitmap : t
val deleted_key_btree : t

val uses_primary_bitmap : t -> bool
(** Does the strategy keep validity bitmaps on primary / primary-key
    components? *)

val correlates_primary_pair : t -> bool
(** Must primary and primary-key index merges be synchronized (shared
    bitmaps, Sec. 5.1)? *)

val correlates_secondaries : t -> bool
(** Must secondary merges be synchronized with the primary key index
    (Bloom-repair optimization, Sec. 4.4)? *)

val name : t -> string
val pp : Format.formatter -> t -> unit
