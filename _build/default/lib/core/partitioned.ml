(** Hash-partitioned datasets — the shared-nothing architecture of
    Sec. 2.2: "records of a dataset are hash-partitioned based on their
    primary keys across multiple nodes"; every partition has its own full
    set of local LSM indexes, "secondary index lookups are routed to all
    dataset partitions", and primary-key operations to exactly one.

    Each partition runs against its own storage environment (its own
    simulated node: device, cache, clock), so the simulated wall-clock of
    the whole system is the *maximum* over partition clocks — ingestion
    and queries are partition-parallel, which is why the paper evaluates a
    single partition and notes that "the overall performance of multiple
    partitions generally achieves near-linear speedup" (Sec. 6.1).  The
    scale-out ablation bench checks exactly that claim. *)

module Make (R : Record.S) = struct
  module D = Dataset.Make (R)

  type t = {
    parts : D.t array;
    envs : Lsm_sim.Env.t array;
  }

  (** [create ~mk_env ~partitions cfg] builds [partitions] local datasets;
      [mk_env i] supplies partition [i]'s storage environment ("node"). *)
  let create ?filter_key ?(secondaries = []) ~mk_env ~partitions cfg =
    if partitions < 1 then invalid_arg "Partitioned.create: partitions >= 1";
    let envs = Array.init partitions mk_env in
    let parts =
      Array.map (fun env -> D.create ?filter_key ~secondaries env cfg) envs
    in
    { parts; envs }

  let partitions t = Array.length t.parts
  let partition t i = t.parts.(i)

  let route t pk =
    Lsm_bloom.Hashing.mix64 pk land max_int mod Array.length t.parts

  (* ------------------------------------------------------------------ *)
  (* Ingestion: routed to one partition. *)

  let insert t r = D.insert t.parts.(route t (R.primary_key r)) r
  let upsert t r = D.upsert t.parts.(route t (R.primary_key r)) r
  let delete t ~pk = D.delete t.parts.(route t pk) ~pk

  (* ------------------------------------------------------------------ *)
  (* Queries *)

  (** [point_query t pk] touches exactly the owning partition. *)
  let point_query t pk = D.point_query t.parts.(route t pk) pk

  (** [query_secondary t ...] fans out to all partitions and concatenates
      (the paper: "returned primary keys are then sorted locally before
      retrieving the records in the local partitions"). *)
  let query_secondary t ~sec ~lo ~hi ~mode ?lookup () =
    Array.to_list t.parts
    |> List.concat_map (fun d -> D.query_secondary d ~sec ~lo ~hi ~mode ?lookup ())

  let query_secondary_keys t ~sec ~lo ~hi ~mode () =
    Array.to_list t.parts
    |> List.concat_map (fun d -> D.query_secondary_keys d ~sec ~lo ~hi ~mode ())

  let query_time_range t ~tlo ~thi ~f =
    Array.fold_left (fun acc d -> acc + D.query_time_range d ~tlo ~thi ~f) 0 t.parts

  let full_scan t ~f =
    Array.fold_left (fun acc d -> acc + D.full_scan d ~f) 0 t.parts

  (* ------------------------------------------------------------------ *)
  (* Timing under partition parallelism *)

  (** [sim_time_s t] is the system's simulated wall clock: partitions run
      in parallel, so completion time is the slowest partition's clock. *)
  let sim_time_s t =
    Array.fold_left (fun acc env -> max acc (Lsm_sim.Env.now_s env)) 0.0 t.envs

  (** [sim_time_total_s t] is the aggregate machine time (for efficiency
      accounting). *)
  let sim_time_total_s t =
    Array.fold_left (fun acc env -> acc +. Lsm_sim.Env.now_s env) 0.0 t.envs

  let flush_now t = Array.iter D.flush_now t.parts

  let total_disk_bytes t =
    Array.fold_left (fun acc d -> acc + D.total_disk_bytes d) 0 t.parts
end
