(** Dataset record descriptions.

    A dataset stores records of one type.  The storage architecture needs
    only: a 63-bit integer primary key, a serialized size, and integer
    attribute extractors for secondary keys and the filter key (string
    attributes are indexed by hashing into the integer domain; the paper's
    evaluation keys — tweet id, user id, creation time — are all
    integers). *)

module type S = sig
  type t

  val primary_key : t -> int
  val byte_size : t -> int
  val pp : Format.formatter -> t -> unit
end

(** A named secondary-key extractor.  Single-valued indexes (e.g.
    "user_id") yield one key per record; multi-valued ones (AsterixDB's
    keyword / inverted indexes, Sec. 2.2) yield several — e.g. every token
    of a message.  The engine stores one (key, primary key) entry per
    yielded key. *)
type 'r secondary = { sec_name : string; extract_all : 'r -> int list }

(** [secondary name f]: a single-valued index on attribute [f]. *)
let secondary sec_name extract =
  { sec_name; extract_all = (fun r -> [ extract r ]) }

(** [secondary_multi name f]: a multi-valued (keyword-style) index;
    duplicate keys within one record are deduplicated. *)
let secondary_multi sec_name extract_all =
  { sec_name; extract_all = (fun r -> List.sort_uniq compare (extract_all r)) }
