(** Dataset record descriptions: a 63-bit integer primary key, a
    serialized size, and integer attribute extractors for secondary keys
    and the filter key (string attributes index by hashing). *)

module type S = sig
  type t

  val primary_key : t -> int
  val byte_size : t -> int
  val pp : Format.formatter -> t -> unit
end

type 'r secondary = { sec_name : string; extract_all : 'r -> int list }
(** A named secondary-key extractor; multi-valued extractors model
    keyword / inverted indexes (Sec. 2.2). *)

val secondary : string -> ('r -> int) -> 'r secondary
(** A single-valued index on one attribute. *)

val secondary_multi : string -> ('r -> int list) -> 'r secondary
(** A multi-valued (keyword-style) index; duplicate keys within one
    record are deduplicated. *)
