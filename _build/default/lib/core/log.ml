(** Logging source for the storage core.  Quiet unless the application
    enables it, e.g.:
    {[
      Logs.set_reporter (Logs_fmt.reporter ());
      Logs.Src.set_level Lsm_core.Log.src (Some Logs.Debug)
    ]} *)

let src = Logs.Src.create "lsm_core" ~doc:"LSM storage engine core"

include (val Logs.src_log src : Logs.LOG)
