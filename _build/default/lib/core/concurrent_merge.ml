(** Concurrency control between mutable bitmaps and flush/merge (Sec. 5.3).

    When the Mutable-bitmap strategy merges components, concurrent writers
    may need to flip bits in the very components being consumed.  The
    paper proposes two protocols (Figs. 10 and 11), evaluated against an
    unprotected baseline in Fig. 23:

    - {b Lock}: the builder takes a shared lock per scanned key and
      re-checks its bit; a writer that deletes an already-scanned key
      performs a second point lookup to also mark the key in the new
      component.  Correct, but pays two lock operations per merged row.
    - {b Side-file}: the builder scans against bitmap *snapshots*; writers
      append deleted keys to a side-file; a catch-up phase sorts the
      side-file and applies it to the new component.  Near-zero overhead
      per row, at the cost of the catch-up work.
    - {b Baseline}: no protection — deletions racing with the scan are
      silently lost (the motivation for the protocols); it provides the
      merge-time floor.

    The builder here is an incremental k-way merge interleaved
    deterministically with writer operations, all charging the shared
    simulated clock.  It merges *all* primary-index components (and the
    primary key index in lockstep, preserving the shared bitmaps). *)

module Entry = Lsm_tree.Entry

module Make (R : Record.S) (D : module type of Dataset.Make (R)) = struct
  type method_ = Baseline | Lock | Side_file

  let method_name = function
    | Baseline -> "baseline"
    | Lock -> "lock"
    | Side_file -> "side-file"

  (** CPU costs of the protocol operations (microseconds). *)
  type costs = {
    lock_us : float;  (** one lock-table acquire or release *)
    bit_check_us : float;  (** re-checking a bitmap bit under lock *)
    side_append_us : float;  (** appending one key to the side-file *)
    snapshot_us_per_kb : float;  (** copying bitmap snapshots *)
    dataset_latch_us : float;  (** S-locking the dataset to drain writers *)
  }

  (* lock_us is deliberately the dominant constant: a lock-table acquire
     under multi-writer contention (hashing, latching, memory fences) is
     ~1us, paid twice per merged row by the Lock method — which is why
     Fig. 23 shows it losing to the Side-file method across the board. *)
  let default_costs =
    {
      lock_us = 1.0;
      bit_check_us = 0.02;
      side_append_us = 0.04;
      snapshot_us_per_kb = 1.0;
      dataset_latch_us = 25.0;
    }

  type result = {
    merge_time_us : float;
    rows_merged : int;
    writer_ops : int;
    lock_acquisitions : int;
    side_file_entries : int;
  }

  type writer_op = Upsert of R.t | Delete of int

  type state = {
    d : D.t;
    env : Lsm_sim.Env.t;
    method_ : method_;
    costs : costs;
    locks : Lsm_txn.Lock_table.t;
    out : D.Prim.row Lsm_util.Vec.t;  (** new component rows, key-sorted *)
    out_marks : (int, unit) Hashtbl.t;  (** positions invalidated in C' *)
    mutable scanned_key : int;  (** C'.ScannedKey; min_int = none *)
    mutable side : Lsm_txn.Side_file.t option;
    snapshots : (int, Lsm_util.Bitset.t) Hashtbl.t;  (** comp seq -> snapshot *)
    mutable building : bool;
    mutable writer_count : int;
  }

  let charge st us = Lsm_sim.Env.advance st.env us

  (* Point lookup into the partially built component: binary search over
     the sorted prefix (writers use this to mark already-scanned keys). *)
  let mark_in_new st pk =
    let cost = ref 0 in
    (match
       Lsm_util.Vec.binary_search
         ~cmp:(fun (r : D.Prim.row) k -> compare r.D.Prim.key k)
         ~cost st.out pk
     with
    | Some pos -> Hashtbl.replace st.out_marks pos ()
    | None -> ());
    Lsm_sim.Env.charge_comparisons st.env !cost

  (* CC-specific handling after a writer invalidated a key in an old
     component while the builder is running. *)
  let propagate_to_new st pk =
    if st.building then
      match st.method_ with
      | Baseline -> () (* the lost-update race the protocols prevent *)
      | Lock -> if st.scanned_key >= pk then mark_in_new st pk
      | Side_file -> (
          match st.side with
          | Some sf ->
              if Lsm_txn.Side_file.append sf pk then charge st st.costs.side_append_us
              else mark_in_new st pk
          | None -> mark_in_new st pk)

  (* A writer transaction: the Mutable-bitmap ingestion path of Sec. 5.2,
     inlined so the concurrency protocol can hook the bitmap flip. *)
  let writer_step st op =
    st.writer_count <- st.writer_count + 1;
    let d = st.d in
    let pkt = Option.get (D.pk_index d) in
    let pk, record = match op with Upsert r -> (R.primary_key r, Some r) | Delete k -> (k, None) in
    let ts = D.next_timestamp d in
    (* Record-level X lock for the transaction (Sec. 5.2). *)
    if st.method_ = Lock then begin
      (match Lsm_txn.Lock_table.acquire st.locks ~owner:(st.writer_count + 1) ~key:pk Lsm_txn.Lock_table.X with
      | `Granted -> ()
      | `Conflict -> failwith "writer lock conflict (protocol bug)");
      charge st st.costs.lock_us
    end;
    (match D.Pk.mem_find pkt pk with
    | Some _ -> () (* newest version in memory; same-key write supersedes *)
    | None -> (
        match D.Pk.disk_find pkt pk with
        | Some (c, pos, row)
          when Entry.is_put row.D.Pk.value && D.Pk.component_row_valid c pos ->
            D.Pk.invalidate c pos;
            propagate_to_new st pk
        | _ -> ()));
    (* New entry into the memory components. *)
    (match record with
    | Some r ->
        D.Prim.write (D.primary d) ~key:pk ~ts (Entry.Put r);
        D.Pk.write pkt ~key:pk ~ts (Entry.Put ());
        Array.iter
          (fun s ->
            List.iter
              (fun sk -> D.Sec.write s.D.tree ~key:(sk, pk) ~ts (Entry.Put ()))
              (s.D.extract_all r))
          (D.secondaries d)
    | None ->
        D.Prim.write (D.primary d) ~key:pk ~ts Entry.Del;
        D.Pk.write pkt ~key:pk ~ts Entry.Del);
    if st.method_ = Lock then begin
      Lsm_txn.Lock_table.release st.locks ~owner:(st.writer_count + 1) ~key:pk;
      charge st st.costs.lock_us
    end

  (** [run d ~method_ ~next_write ~writer_ops_per_row ()] merges all of
      [d]'s primary (and primary key) components with concurrent writers:
      after each merged row, [writer_ops_per_row] writer operations
      (drawn from [next_write]) execute.  Returns timing and protocol
      counters.  [d] must use the Mutable-bitmap strategy and hold at
      least two disk components. *)
  let run d ~method_ ?(costs = default_costs) ~next_write ~writer_ops_per_row ()
      =
    let env = D.env d in
    let prim = D.primary d in
    let pkt =
      match D.pk_index d with
      | Some p -> p
      | None -> invalid_arg "Concurrent_merge.run: primary key index required"
    in
    let pcomps = D.Prim.components prim in
    let np = Array.length pcomps in
    if np < 2 then invalid_arg "Concurrent_merge.run: need >= 2 components";
    let st =
      {
        d;
        env;
        method_;
        costs;
        locks = Lsm_txn.Lock_table.create ();
        out = Lsm_util.Vec.create ();
        out_marks = Hashtbl.create 1024;
        scanned_key = min_int;
        side = None;
        snapshots = Hashtbl.create 8;
        building = true;
        writer_count = 0;
      }
    in
    let t0 = Lsm_sim.Env.now_us env in
    (* --- Initialization phase --- *)
    (match method_ with
    | Side_file ->
        charge st costs.dataset_latch_us;
        Array.iter
          (fun c ->
            match c.D.Prim.bitmap with
            | Some b ->
                Hashtbl.replace st.snapshots c.D.Prim.seq (Lsm_util.Bitset.copy b);
                charge st
                  (costs.snapshot_us_per_kb
                  *. Float.of_int (Lsm_util.Bitset.byte_size b)
                  /. 1024.0)
            | None -> ())
          pcomps;
        st.side <- Some (Lsm_txn.Side_file.create ())
    | _ -> ());
    (* --- Build phase: k-way reconciling scan with interleaved writers --- *)
    let scans =
      Array.map (fun c -> D.Prim.Dbt.Scan.seek env c.D.Prim.tree None) pcomps
    in
    let cmp (k1, p1, _, _) (k2, p2, _, _) =
      Lsm_sim.Env.charge_comparisons env 1;
      let c = compare (k1 : int) k2 in
      if c <> 0 then c else compare (p1 : int) p2
    in
    let heap = Lsm_util.Heap.create cmp in
    let row_valid_for_scan p pos =
      let c = pcomps.(p) in
      match method_ with
      | Side_file -> (
          (* Scan against the snapshot, immune to concurrent flips. *)
          match Hashtbl.find_opt st.snapshots c.D.Prim.seq with
          | Some snap -> not (Lsm_util.Bitset.get snap pos)
          | None -> true)
      | _ -> D.Prim.component_row_valid c pos
    in
    let rec push p =
      match D.Prim.Dbt.Scan.next env scans.(p) with
      | None -> ()
      | Some (pos, row) ->
          if row_valid_for_scan p pos then
            Lsm_util.Heap.push heap (row.D.Prim.key, p, pos, row)
          else push p
    in
    Array.iteri (fun p _ -> push p) pcomps;
    let writer_budget = ref 0.0 in
    let last_key = ref min_int in
    let first_row = ref true in
    while not (Lsm_util.Heap.is_empty heap) do
      let k, p, pos, row = Lsm_util.Heap.pop heap in
      push p;
      (* Interleave writers. *)
      writer_budget := !writer_budget +. writer_ops_per_row;
      while !writer_budget >= 1.0 do
        writer_budget := !writer_budget -. 1.0;
        writer_step st (next_write ())
      done;
      let dup = (not !first_row) && k = !last_key in
      first_row := false;
      last_key := k;
      if not dup then begin
        let valid =
          match method_ with
          | Lock ->
              (* S-lock the key, re-check the live bit, unlock (Fig. 10a). *)
              (match
                 Lsm_txn.Lock_table.acquire st.locks ~owner:0 ~key:k
                   Lsm_txn.Lock_table.S
               with
              | `Granted -> ()
              | `Conflict -> failwith "builder lock conflict (protocol bug)");
              charge st costs.lock_us;
              let v = D.Prim.component_row_valid pcomps.(p) pos in
              charge st costs.bit_check_us;
              Lsm_txn.Lock_table.release st.locks ~owner:0 ~key:k;
              charge st costs.lock_us;
              v
          | Baseline | Side_file -> true
          (* validity was established at scan time (live bitmap for
             Baseline, snapshot for Side-file) *)
        in
        if valid then begin
          Lsm_util.Vec.push st.out row;
          st.scanned_key <- k
        end
      end
    done;
    (* --- Catch-up phase (Side-file, Fig. 11a lines 11-16) --- *)
    (match st.side with
    | Some sf ->
        charge st costs.dataset_latch_us;
        Lsm_txn.Side_file.close sf;
        let cost = ref 0 in
        let keys = Lsm_txn.Side_file.sorted_keys ~cost sf in
        Lsm_sim.Env.charge_comparisons env !cost;
        Array.iter (fun k -> mark_in_new st k) keys
    | None -> ());
    st.building <- false;
    (* --- Install the new components (primary + primary key index) --- *)
    let rows = Lsm_util.Vec.to_array st.out in
    let n = Array.length rows in
    let bitmap = Lsm_util.Bitset.create n in
    Hashtbl.iter (fun pos () -> Lsm_util.Bitset.set bitmap pos) st.out_marks;
    let cmin =
      Array.fold_left (fun a c -> min a c.D.Prim.cmin_ts) max_int pcomps
    in
    let cmax = Array.fold_left (fun a c -> max a c.D.Prim.cmax_ts) (-1) pcomps in
    let range_filter =
      Array.fold_left
        (fun acc c ->
          match (acc, c.D.Prim.range_filter) with
          | None, x | x, None -> x
          | Some (a, b), Some (a', b') -> Some (min a a', max b b'))
        None pcomps
    in
    let pc =
      D.Prim.build_component prim rows ~cmin_ts:cmin ~cmax_ts:cmax ~range_filter
        ~repaired_ts:0
    in
    pc.D.Prim.bitmap <- Some bitmap;
    D.Prim.replace_range prim ~first:0 ~last:(np - 1) pc;
    (* Primary key index follows in lockstep, sharing the bitmap. *)
    let krows =
      Array.map
        (fun (r : D.Prim.row) ->
          {
            D.Pk.key = r.D.Prim.key;
            ts = r.D.Prim.ts;
            value = (match r.D.Prim.value with Entry.Put _ -> Entry.Put () | Entry.Del -> Entry.Del);
          })
        rows
    in
    let nk = Array.length (D.Pk.components pkt) in
    let kc =
      D.Pk.build_component pkt krows ~cmin_ts:cmin ~cmax_ts:cmax
        ~range_filter:None ~repaired_ts:0
    in
    kc.D.Pk.bitmap <- Some bitmap;
    if nk >= 1 then D.Pk.replace_range pkt ~first:0 ~last:(nk - 1) kc;
    {
      merge_time_us = Lsm_sim.Env.now_us env -. t0;
      rows_merged = n;
      writer_ops = st.writer_count;
      lock_acquisitions = Lsm_txn.Lock_table.acquisitions st.locks;
      side_file_entries =
        (match st.side with Some sf -> Lsm_txn.Side_file.length sf | None -> 0);
    }
end
