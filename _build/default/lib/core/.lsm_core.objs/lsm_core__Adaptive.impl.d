lib/core/adaptive.ml: Array Dataset Float List Log Record Strategy
