lib/core/adaptive.mli: Dataset Record
