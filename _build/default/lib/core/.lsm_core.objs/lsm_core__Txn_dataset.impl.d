lib/core/txn_dataset.ml: Array Dataset List Lsm_tree Lsm_txn Lsm_util Option Printf Record Strategy
