lib/core/concurrent_merge.ml: Array Dataset Float Hashtbl List Lsm_sim Lsm_tree Lsm_txn Lsm_util Option Record
