lib/core/log.ml: Logs
