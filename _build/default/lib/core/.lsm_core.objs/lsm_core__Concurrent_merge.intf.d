lib/core/concurrent_merge.mli: Dataset Record
