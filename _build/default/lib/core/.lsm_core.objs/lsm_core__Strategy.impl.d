lib/core/strategy.ml: Fmt
