lib/core/dataset.ml: Array Hashtbl List Log Lsm_sim Lsm_tree Lsm_util Option Record Strategy
