lib/core/partitioned.mli: Dataset Lsm_sim Record
