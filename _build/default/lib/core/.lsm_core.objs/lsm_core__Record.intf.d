lib/core/record.mli: Format
