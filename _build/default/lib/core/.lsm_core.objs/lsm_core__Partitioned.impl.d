lib/core/partitioned.ml: Array Dataset List Lsm_bloom Lsm_sim Record
