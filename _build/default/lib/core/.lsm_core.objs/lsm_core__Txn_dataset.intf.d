lib/core/txn_dataset.mli: Dataset Record
