lib/core/dataset.mli: Format Lsm_sim Lsm_tree Lsm_util Record Strategy
