lib/core/record.ml: Format List
