(** Adaptive strategy selection — the paper's future-work auto-tuning
    (Sec. 7), for the Eager / Validation pair: a sliding-window controller
    switches to Validation when write-dominated and to Eager when
    query-dominated, running a full standalone repair before every switch
    into Eager mode so the eager invariant (indexes always current)
    holds.  Whatever the mode history, queries answer exactly like the
    reference model. *)

module Make (R : Record.S) (D : module type of Dataset.Make (R)) : sig
  type mode = Eager_mode | Validation_mode

  type config = {
    window : int;  (** operations per decision window *)
    write_heavy : float;
        (** switch to Validation when updates-per-query exceeds this *)
    query_heavy : float;
        (** switch to Eager when updates-per-query drops below this *)
  }

  val default_config : config

  type t

  val create : ?config:config -> D.t -> t
  (** The dataset must use the Validation strategy (the safe resting
      state; the controller toggles the behavioural mode). *)

  val dataset : t -> D.t
  val mode : t -> mode
  val switches : t -> int

  val insert : t -> R.t -> [ `Inserted | `Duplicate ]
  val upsert : t -> R.t -> unit
  val delete : t -> pk:int -> unit

  val query_secondary : t -> sec:string -> lo:int -> hi:int -> unit -> R.t list
  (** Uses the cheap plan the current mode allows: no validation under the
      eager invariant, Timestamp validation otherwise. *)

  val point_query : t -> int -> R.t option
end
