(** Storage device cost models: a positioning cost paid on non-sequential
    accesses plus a per-page transfer cost (see DESIGN.md §2). *)

type t = {
  name : string;
  page_size : int;  (** bytes per page *)
  seek_us : float;  (** non-sequential positioning cost, microseconds *)
  read_us_per_page : float;  (** sequential read transfer per page *)
  write_us_per_page : float;  (** sequential write transfer per page *)
}

val hdd : t
(** 7200rpm SATA profile: 128KB pages, ~8.5ms positioning, ~100MB/s. *)

val ssd : t
(** SATA SSD profile: 32KB pages, ~60us random latency, ~500MB/s. *)

val custom :
  name:string ->
  page_size:int ->
  seek_us:float ->
  read_us_per_page:float ->
  write_us_per_page:float ->
  t

val pp : Format.formatter -> t -> unit
