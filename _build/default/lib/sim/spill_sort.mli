(** Sorting with spill accounting: comparisons charge CPU; volumes beyond
    the memory grant additionally charge a run-write plus merge-read pass
    through scratch storage.  The Bloom-filter repair optimization exists
    to shrink exactly this traffic (Sec. 6.5). *)

type grant

val grant : memory_bytes:int -> row_bytes:int -> grant
(** [grant ~memory_bytes ~row_bytes] is a sorter's memory allowance. *)

val fits : grant -> int -> bool
(** [fits g n]: do [n] rows sort entirely in memory? *)

val sort : Env.t -> grant -> cmp:('a -> 'a -> int) -> 'a array -> unit
(** [sort env g ~cmp a] sorts [a] in place, charging comparisons and any
    spill I/O to [env]. *)
