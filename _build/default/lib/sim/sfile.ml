(** Phantom files: extents of pages on the simulated device.

    A phantom file stores no bytes — engine data structures keep their
    contents in OCaml arrays — but reads and appends are charged through
    the environment, and residency is tracked by the buffer cache.  This is
    the substitution that lets the full figure suite run in seconds while
    keeping page counts, sequentiality, and cache behaviour faithful (see
    DESIGN.md §5). *)

type t = { id : int; mutable npages : int; mutable deleted : bool }

(** [create env] registers a fresh empty file. *)
let create env = { id = Env.fresh_file_id env; npages = 0; deleted = false }

let id t = t.id
let npages t = t.npages

(** [size_bytes env t] is the file's on-disk footprint. *)
let size_bytes env t = t.npages * Env.page_size env

let check_live t op =
  if t.deleted then invalid_arg (Printf.sprintf "Sfile.%s: file %d deleted" op t.id)

(** [append_pages env t n] appends [n] pages, charging sequential writes. *)
let append_pages env t n =
  check_live t "append_pages";
  if n < 0 then invalid_arg "Sfile.append_pages: negative count";
  Env.write_pages env ~file:t.id ~first:t.npages ~count:n;
  t.npages <- t.npages + n

(** [read_page env t page] charges one page read.
    @raise Invalid_argument when [page] is outside the file. *)
let read_page env t page =
  check_live t "read_page";
  if page < 0 || page >= t.npages then
    invalid_arg
      (Printf.sprintf "Sfile.read_page: page %d outside file of %d pages" page
         t.npages);
  Env.read_page env ~file:t.id ~page

(** [read_range env t ~first ~count] charges [count] page reads in
    ascending order; contiguous misses after the first are sequential, so a
    cold scan costs one positioning plus [count] transfers — the model's
    analogue of the paper's 4MB read-ahead. *)
let read_range env t ~first ~count =
  check_live t "read_range";
  if first < 0 || count < 0 || first + count > t.npages then
    invalid_arg "Sfile.read_range: range outside file";
  for p = first to first + count - 1 do
    Env.read_page env ~file:t.id ~page:p
  done

(** [scan_all env t] reads every page of the file in order. *)
let scan_all env t = read_range env t ~first:0 ~count:t.npages

(** [delete env t] deletes the file, releasing its cache residency.
    Subsequent accesses raise. *)
let delete env t =
  if not t.deleted then begin
    t.deleted <- true;
    Env.drop_file env ~file:t.id
  end
