(** Storage device cost models.

    The paper's experiments ran on a 7200rpm SATA hard disk and, for key
    experiments, an SSD (Sec. 6.1).  We substitute a simulated device: every
    page access is charged simulated time according to one of these
    profiles.  What distinguishes the algorithms under study is *which*
    pages they touch and whether accesses are sequential, so the model
    only needs two terms per access: a positioning cost paid on
    non-sequential accesses ([seek_us]) and a per-page transfer cost.

    Page sizes follow the paper: 128KB pages on the hard disk ("to
    accommodate sequential I/Os") and 32KB pages on the SSD. *)

type t = {
  name : string;
  page_size : int;  (** bytes per page *)
  seek_us : float;  (** cost of a non-sequential positioning, microseconds *)
  read_us_per_page : float;  (** sequential read transfer time per page *)
  write_us_per_page : float;  (** sequential write transfer time per page *)
}

(** 7200rpm SATA disk: ~8.5ms average positioning, ~100MB/s streaming.
    A 128KB page streams in ~1.25ms. *)
let hdd =
  {
    name = "hdd";
    page_size = 128 * 1024;
    seek_us = 8500.0;
    read_us_per_page = 1250.0;
    write_us_per_page = 1250.0;
  }

(** SATA SSD: ~60us random-read latency, ~500MB/s streaming, 32KB pages. *)
let ssd =
  {
    name = "ssd";
    page_size = 32 * 1024;
    seek_us = 60.0;
    read_us_per_page = 62.5;
    write_us_per_page = 75.0;
  }

(** [custom] builds an arbitrary profile, e.g. for ablation benches. *)
let custom ~name ~page_size ~seek_us ~read_us_per_page ~write_us_per_page =
  { name; page_size; seek_us; read_us_per_page; write_us_per_page }

let pp fmt t = Fmt.pf fmt "%s(page=%dB)" t.name t.page_size
