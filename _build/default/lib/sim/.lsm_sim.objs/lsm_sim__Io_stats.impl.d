lib/sim/io_stats.ml: Fmt
