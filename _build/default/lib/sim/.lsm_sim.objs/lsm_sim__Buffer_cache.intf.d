lib/sim/buffer_cache.mli:
