lib/sim/sfile.mli: Env
