lib/sim/device.ml: Fmt
