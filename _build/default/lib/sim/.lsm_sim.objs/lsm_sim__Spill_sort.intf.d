lib/sim/spill_sort.mli: Env
