lib/sim/sfile.ml: Env Printf
