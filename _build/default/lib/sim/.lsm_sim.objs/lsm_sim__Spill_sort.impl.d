lib/sim/spill_sort.ml: Array Env Lsm_util Sfile
