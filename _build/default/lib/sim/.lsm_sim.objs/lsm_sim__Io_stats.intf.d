lib/sim/io_stats.mli: Format
