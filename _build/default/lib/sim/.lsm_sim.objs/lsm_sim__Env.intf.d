lib/sim/env.mli: Buffer_cache Device Io_stats
