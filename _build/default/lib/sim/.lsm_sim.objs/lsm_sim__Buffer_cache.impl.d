lib/sim/buffer_cache.ml: Hashtbl List
