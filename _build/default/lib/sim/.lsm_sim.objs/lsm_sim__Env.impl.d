lib/sim/env.ml: Buffer_cache Device Float Io_stats
