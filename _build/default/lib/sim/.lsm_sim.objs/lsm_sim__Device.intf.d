lib/sim/device.mli: Format
