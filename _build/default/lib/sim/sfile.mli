(** Phantom files: extents of pages on the simulated device.  They store
    no bytes — engine structures keep contents in OCaml arrays — but reads
    and appends are charged through the environment and residency is
    tracked by the buffer cache (DESIGN.md §5). *)

type t

val create : Env.t -> t
val id : t -> int
val npages : t -> int
val size_bytes : Env.t -> t -> int

val append_pages : Env.t -> t -> int -> unit
(** Sequential append. @raise Invalid_argument on deleted files. *)

val read_page : Env.t -> t -> int -> unit
(** @raise Invalid_argument outside the file or after deletion. *)

val read_range : Env.t -> t -> first:int -> count:int -> unit
(** Ascending reads; contiguous misses after the first are sequential, so
    a cold scan costs one positioning plus [count] transfers. *)

val scan_all : Env.t -> t -> unit

val delete : Env.t -> t -> unit
(** Releases cache residency; subsequent accesses raise. *)
