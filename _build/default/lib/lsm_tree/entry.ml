(** LSM entries.

    LSM-trees never update in place: a modification inserts a new entry
    that overrides older entries with the same key.  [Put v] carries a
    value; [Del] is an "anti-matter" entry (Sec. 2.1) recording that the
    key was deleted. *)

type 'v t = Put of 'v | Del

let is_put = function Put _ -> true | Del -> false
let is_del = function Del -> true | Put _ -> false

let value = function Put v -> Some v | Del -> None

let map f = function Put v -> Put (f v) | Del -> Del

(** [byte_size size_of e]: anti-matter entries store only the key, which
    the containing row accounts for separately. *)
let byte_size size_of = function Put v -> size_of v | Del -> 0

let pp pp_v fmt = function
  | Put v -> Fmt.pf fmt "+%a" pp_v v
  | Del -> Fmt.string fmt "(anti-matter)"
