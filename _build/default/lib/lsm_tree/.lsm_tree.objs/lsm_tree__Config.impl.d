lib/lsm_tree/config.ml:
