lib/lsm_tree/lsm_tree.mli: Config Entry Lsm_bloom Lsm_btree Lsm_sim Lsm_util Merge_policy
