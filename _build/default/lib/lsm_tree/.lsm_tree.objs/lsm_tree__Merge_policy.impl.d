lib/lsm_tree/merge_policy.ml: Array Float Fmt
