lib/lsm_tree/entry.ml: Fmt
