lib/lsm_tree/lsm_tree.ml: Array Config Entry List Lsm_bloom Lsm_btree Lsm_sim Lsm_util Merge_policy
