(** Query generation with controlled selectivity (Sec. 6.2): secondary
    ranges over the uniform user_id domain, and time ranges over the
    monotone creation_time attribute (Fig. 19). *)

type t

val create : ?seed:int -> unit -> t

val user_range : t -> selectivity:float -> int * int
(** A random [lo, hi] over the user_id domain covering [selectivity]
    (e.g. 0.001 = 0.1% of records). *)

val recent_time_range : now:int -> days:int -> day_span:int -> int * int
(** The "recent data" query of Fig. 19: the last [days] out of
    [day_span], scaled to the generated creation-time domain [0, now]. *)

val old_time_range : now:int -> days:int -> day_span:int -> int * int
(** The "old data" variant: the first [days] worth. *)

val point_keys :
  t -> count:int -> of_past:int -> past:(int -> int) -> int array
(** [count] existing primary keys sampled by index into the live table. *)
