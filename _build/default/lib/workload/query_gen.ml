(** Query generation with controlled selectivity (Sec. 6.2).

    Secondary-index queries are ranges over [user_id], whose domain is
    uniform on [0, 100K): a range covering fraction [s] of the domain
    selects ~[s] of the records.  Time-range queries (Fig. 19) are ranges
    over the monotone [created_at] attribute. *)

type t = { rng : Lsm_util.Rng.t }

let create ?(seed = 4242) () = { rng = Lsm_util.Rng.create seed }

(** [user_range t ~selectivity] is a random [lo, hi] over the user_id
    domain covering [selectivity] (e.g. 0.001 = 0.1%). *)
let user_range t ~selectivity =
  let width =
    max 1
      (int_of_float (selectivity *. Float.of_int Tweet.user_id_domain))
  in
  let lo = Lsm_util.Rng.int t.rng (max 1 (Tweet.user_id_domain - width)) in
  (lo, lo + width - 1)

(** [recent_time_range ~now ~days ~day_span] is the "recent data" query of
    Fig. 19: creation times in the last [days] out of [day_span] total,
    scaled to the generated creation-time domain [0, now]. *)
let recent_time_range ~now ~days ~day_span =
  let width = now * days / day_span in
  (max 0 (now - width), max_int)

(** [old_time_range ~now ~days ~day_span] is the "old data" variant:
    the first [days] worth of creation times. *)
let old_time_range ~now ~days ~day_span =
  let width = now * days / day_span in
  (0, max 0 width)

(** [point_keys t ~live n] samples [n] existing primary keys (by index into
    the live-key table) for batched point-lookup microbenches. *)
let point_keys t ~count ~of_past ~past =
  Array.init count (fun _ -> past (Lsm_util.Rng.int t.rng of_past))
