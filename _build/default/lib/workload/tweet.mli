(** The paper's synthetic tweet workload (Sec. 6.1): ~500±50B records with
    a random 64-bit id, a uniform user_id in [0, 100K) for secondary-index
    queries with controlled selectivities, a small categorical location
    (the running example of Fig. 2), and a monotone creation time for the
    range filter. *)

type t = {
  id : int;
  user_id : int;
  location : int;
  created_at : int;
  msg_len : int;  (** length of the (not materialized) message text *)
}

val user_id_domain : int
val location_domain : int

val byte_size : t -> int
val primary_key : t -> int
val user_id : t -> int
val location : t -> int
val created_at : t -> int
val pp : Format.formatter -> t -> unit

(** Record module for {!Lsm_core.Dataset.Make}. *)
module Record : sig
  type nonrec t = t

  val primary_key : t -> int
  val byte_size : t -> int
  val pp : Format.formatter -> t -> unit
end

type gen
(** A deterministic tweet source with monotone creation times. *)

val create_gen : ?seed:int -> ?record_bytes:int -> ?time_step:int -> unit -> gen
(** [record_bytes] overrides the ~500B default (Fig. 21 uses 1KB). *)

val fresh : gen -> t
(** A tweet with a brand-new random id. *)

val with_id : gen -> int -> t
(** A tweet updating an existing id (new attributes, fresh time). *)

val fresh_sequential : gen -> unit -> t
(** A counter-based source with sequential ids (the "scan (seq keys)"
    dataset of Fig. 12b). *)
