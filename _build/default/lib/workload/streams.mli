(** Ingestion streams: the controlled workloads of Sec. 6.3 — insert
    streams with a duplicate ratio (Fig. 13) and upsert streams with an
    update ratio under uniform or Zipf-latest key choice (Fig. 14). *)

type op = Insert of Tweet.t | Upsert of Tweet.t | Delete of int

type distribution = [ `Uniform | `Zipf_latest ]

type t

val insert_stream :
  ?seed:int ->
  ?record_bytes:int ->
  ?time_step:int ->
  duplicate_ratio:float ->
  unit ->
  t
(** Repeats previously-ingested keys with probability [duplicate_ratio];
    those inserts get rejected by the uniqueness check — the cost Fig. 13
    measures. *)

val upsert_stream :
  ?seed:int ->
  ?record_bytes:int ->
  ?time_step:int ->
  update_ratio:float ->
  distribution:distribution ->
  unit ->
  t

val next : t -> op

val past_count : t -> int
(** Number of distinct keys ingested so far. *)

val nth_past : t -> int -> int
