(** Ingestion streams: the controlled workloads of Sec. 6.3.

    - insert streams with a *duplicate ratio* (Fig. 13): duplicates are
      drawn uniformly over all past keys;
    - upsert streams with an *update ratio* (Fig. 14): updates pick a past
      key either uniformly or Zipf(0.99)-skewed toward recent keys. *)

type op = Insert of Tweet.t | Upsert of Tweet.t | Delete of int

type distribution = [ `Uniform | `Zipf_latest ]

type t = {
  gen : Tweet.gen;
  rng : Lsm_util.Rng.t;  (** decides duplicate/update coin flips and picks *)
  mutable past : int array;  (** ids ingested so far *)
  mutable n_past : int;
  zipf : Lsm_util.Zipf.t;
  mode : [ `Insert_dups of float | `Upsert of float * distribution ];
}

let create ?(seed = 7) ?record_bytes ?time_step mode =
  {
    gen = Tweet.create_gen ~seed:(seed * 31 + 1) ?record_bytes ?time_step ();
    rng = Lsm_util.Rng.create seed;
    past = Array.make 1024 0;
    n_past = 0;
    zipf = Lsm_util.Zipf.create ~theta:0.99 1;
    mode;
  }

(** [insert_stream ~duplicate_ratio] repeats previously-ingested keys with
    the given probability (those inserts will be rejected by the
    uniqueness check — the cost Fig. 13 measures). *)
let insert_stream ?seed ?record_bytes ?time_step ~duplicate_ratio () =
  create ?seed ?record_bytes ?time_step (`Insert_dups duplicate_ratio)

(** [upsert_stream ~update_ratio ~distribution] generates records whose key
    is, with probability [update_ratio], a previously-ingested key. *)
let upsert_stream ?seed ?record_bytes ?time_step ~update_ratio ~distribution ()
    =
  create ?seed ?record_bytes ?time_step (`Upsert (update_ratio, distribution))

let remember t id =
  if t.n_past = Array.length t.past then begin
    let bigger = Array.make (2 * t.n_past) 0 in
    Array.blit t.past 0 bigger 0 t.n_past;
    t.past <- bigger
  end;
  t.past.(t.n_past) <- id;
  t.n_past <- t.n_past + 1

let pick_past t (dist : distribution) =
  match dist with
  | `Uniform -> t.past.(Lsm_util.Rng.int t.rng t.n_past)
  | `Zipf_latest ->
      Lsm_util.Zipf.extend t.zipf t.n_past;
      t.past.(Lsm_util.Zipf.sample_latest t.rng t.zipf)

(** [next t] produces the next operation of the stream. *)
let next t =
  match t.mode with
  | `Insert_dups ratio ->
      if t.n_past > 0 && Lsm_util.Rng.float t.rng < ratio then
        (* A duplicate: a fresh record body with an already-used id. *)
        Insert (Tweet.with_id t.gen (pick_past t `Uniform))
      else begin
        let tw = Tweet.fresh t.gen in
        remember t tw.Tweet.id;
        Insert tw
      end
  | `Upsert (ratio, dist) ->
      if t.n_past > 0 && Lsm_util.Rng.float t.rng < ratio then
        Upsert (Tweet.with_id t.gen (pick_past t dist))
      else begin
        let tw = Tweet.fresh t.gen in
        remember t tw.Tweet.id;
        Upsert tw
      end

(** [nth_past t i] and [past_count t] expose ingested ids (query
    generation needs live keys). *)
let past_count t = t.n_past

let nth_past t i = t.past.(i)
