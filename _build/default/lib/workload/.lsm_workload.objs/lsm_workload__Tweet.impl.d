lib/workload/tweet.ml: Fmt Lsm_util
