lib/workload/query_gen.mli:
