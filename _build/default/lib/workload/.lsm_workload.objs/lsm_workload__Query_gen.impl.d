lib/workload/query_gen.ml: Array Float Lsm_util Tweet
