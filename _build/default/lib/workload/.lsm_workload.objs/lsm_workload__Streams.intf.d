lib/workload/streams.mli: Tweet
