lib/workload/streams.ml: Array Lsm_util Tweet
