lib/workload/tweet.mli: Format
