(** The paper's synthetic tweet workload (Sec. 6.1).

    Each tweet is ~500 bytes (±50, from the variable-length message), with:
    - [id]: a random 64-bit integer primary key;
    - [user_id]: uniform in [0, 100K), the secondary index attribute used
      to formulate queries with controlled selectivities;
    - [location]: a small categorical attribute (the running example of
      Fig. 2 indexes locations);
    - [created_at]: a monotonically increasing timestamp, the range-filter
      attribute. *)

type t = {
  id : int;
  user_id : int;
  location : int;  (** categorical; 0..49 standing in for US states *)
  created_at : int;
  msg_len : int;  (** length of the (not materialized) message text *)
}

let user_id_domain = 100_000
let location_domain = 50

(** Records are sized as id + user_id + location + created_at + message;
    the message bytes are accounted, not materialized. *)
let byte_size t = 8 + 8 + 8 + 8 + t.msg_len

let primary_key t = t.id
let user_id t = t.user_id
let location t = t.location
let created_at t = t.created_at

let pp fmt t =
  Fmt.pf fmt "{id=%d; user=%d; loc=%d; at=%d}" t.id t.user_id t.location
    t.created_at

(** Record module for {!Lsm_core.Dataset.Make}. *)
module Record = struct
  type nonrec t = t

  let primary_key = primary_key
  let byte_size = byte_size
  let pp = pp
end

(** A generator producing tweets with fresh random ids and monotone
    creation times.  [record_bytes] overrides the ~500B default (Fig. 21
    uses 1KB records; Fig. 23 sweeps 20B..1KB). *)
type gen = {
  rng : Lsm_util.Rng.t;
  mutable next_time : int;
  record_bytes : int option;
  time_step : int;
      (** creation-time increment per record; with the default of 1 the
          creation-time domain equals the record count *)
}

let create_gen ?(seed = 2019) ?record_bytes ?(time_step = 1) () =
  { rng = Lsm_util.Rng.create seed; next_time = 0; record_bytes; time_step }

let msg_len g =
  match g.record_bytes with
  | Some b -> max 0 (b - 32)
  | None -> 450 + Lsm_util.Rng.int g.rng 101

(** [fresh g] makes a tweet with a brand-new random id. *)
let fresh g =
  g.next_time <- g.next_time + g.time_step;
  {
    id = Lsm_util.Rng.bits g.rng;
    user_id = Lsm_util.Rng.int g.rng user_id_domain;
    location = Lsm_util.Rng.int g.rng location_domain;
    created_at = g.next_time;
    msg_len = msg_len g;
  }

(** [with_id g id] makes a tweet updating an existing [id] (new attribute
    values, fresh creation time). *)
let with_id g id =
  g.next_time <- g.next_time + g.time_step;
  {
    id;
    user_id = Lsm_util.Rng.int g.rng user_id_domain;
    location = Lsm_util.Rng.int g.rng location_domain;
    created_at = g.next_time;
    msg_len = msg_len g;
  }

(** [sequential_ids g] switches the generator to produce sequential ids
    (the "scan (seq keys)" dataset of Fig. 12b); returns a counter-based
    fresh function. *)
let fresh_sequential g =
  let counter = ref 0 in
  fun () ->
    incr counter;
    g.next_time <- g.next_time + g.time_step;
    {
      id = !counter;
      user_id = Lsm_util.Rng.int g.rng user_id_domain;
      location = Lsm_util.Rng.int g.rng location_domain;
      created_at = g.next_time;
      msg_len = msg_len g;
    }
