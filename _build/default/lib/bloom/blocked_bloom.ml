(** Cache-friendly blocked Bloom filters (Putze et al., JEA 2010; paper
    Sec. 3.2).

    The bit space is divided into cache-line-sized blocks (512 bits).  The
    first hash picks a block; the remaining hashes test bits within that
    block only, so a probe costs one CPU cache miss instead of [k].  The
    price is roughly one extra bit per key for the same false-positive
    rate, which [create] adds on top of the standard sizing. *)

let block_bits = 512 (* one 64-byte cache line *)

type t = {
  bits : Lsm_util.Bitset.t;
  nblocks : int;
  k : int;
}

let create ~expected ~fpr =
  let m, k = Bloom.params ~expected ~fpr in
  (* One extra bit per key compensates for block-occupancy variance. *)
  let m = m + max expected 1 in
  let nblocks = max 1 ((m + block_bits - 1) / block_bits) in
  { bits = Lsm_util.Bitset.create (nblocks * block_bits); nblocks; k }

let block_of t h = Hashing.mix64 h land max_int mod t.nblocks

let position t h i =
  let base = block_of t h * block_bits in
  base + (Hashing.double_hash h (i + 1) land max_int mod block_bits)

(** [add t h] inserts a key by its hash. *)
let add t h =
  for i = 0 to t.k - 1 do
    Lsm_util.Bitset.set t.bits (position t h i)
  done

(** [contains t h] is [false] only if the key was never added. *)
let contains t h =
  let rec go i = i >= t.k || (Lsm_util.Bitset.get t.bits (position t h i) && go (i + 1)) in
  go 0

let k t = t.k
let bit_count t = t.nblocks * block_bits
let byte_size t = Lsm_util.Bitset.byte_size t.bits

(** The whole point: one cache line per probe. *)
let cache_lines_per_probe _t = 1

let hashes_per_probe _t = 2
