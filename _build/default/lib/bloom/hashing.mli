(** 64-bit hash mixing for Bloom filters and hash partitioning. *)

val mix64 : int -> int
(** The SplitMix64 finalizer: a strong bijective mixer. *)

val combine : int -> int -> int
(** Order-sensitive combination of two hashes (composite keys). *)

val hash_string : string -> int
(** FNV-1a over bytes, then mixed. *)

val double_hash : int -> int -> int
(** [double_hash h i]: the i-th probe seed under Kirsch-Mitzenmacher
    double hashing ([h1 + i*h2], [h2] odd). *)
