(** Cache-friendly blocked Bloom filters (Putze et al.; paper Sec. 3.2):
    the first hash picks a 512-bit block, remaining probes stay inside it
    — one CPU cache miss per probe, for ~one extra bit per key. *)

type t

val block_bits : int
(** 512: one 64-byte cache line. *)

val create : expected:int -> fpr:float -> t
val add : t -> int -> unit

val contains : t -> int -> bool
(** [false] only if the key was never added. *)

val k : t -> int
val bit_count : t -> int
val byte_size : t -> int

val cache_lines_per_probe : t -> int
(** Always 1 — the point of the structure. *)

val hashes_per_probe : t -> int
