(** Standard Bloom filters (Bloom, CACM 1970).

    Every primary / primary-key disk component carries one on its primary
    keys (Sec. 3, Fig. 1), and point lookups consult it before touching the
    component's B+-tree.  Sized from an expected key count and a target
    false-positive rate (the paper uses 1%).

    [add]/[contains] take a pre-computed 64-bit key hash, not the key
    itself; see {!Hashing}. *)

type t = {
  bits : Lsm_util.Bitset.t;
  m : int;  (** number of bits *)
  k : int;  (** number of probe functions *)
}

(** [params ~expected ~fpr] computes (bits, probes) for [expected] keys at
    false-positive rate [fpr]: m/n = -ln p / (ln 2)^2, k = (m/n) ln 2. *)
let params ~expected ~fpr =
  if expected < 0 then invalid_arg "Bloom.params: negative expected";
  if fpr <= 0.0 || fpr >= 1.0 then invalid_arg "Bloom.params: fpr in (0,1)";
  let n = Float.of_int (max expected 1) in
  let ln2 = Float.log 2.0 in
  let bits_per_key = -.Float.log fpr /. (ln2 *. ln2) in
  let m = int_of_float (Float.ceil (n *. bits_per_key)) in
  let k = max 1 (int_of_float (Float.round (bits_per_key *. ln2))) in
  (max m 8, k)

let create ~expected ~fpr =
  let m, k = params ~expected ~fpr in
  { bits = Lsm_util.Bitset.create m; m; k }

let position t h i =
  Hashing.double_hash h i land max_int mod t.m

(** [add t h] inserts a key by its hash. *)
let add t h =
  for i = 0 to t.k - 1 do
    Lsm_util.Bitset.set t.bits (position t h i)
  done

(** [contains t h] is [false] only if the key was never added; [true] may
    be a false positive. *)
let contains t h =
  let rec go i = i >= t.k || (Lsm_util.Bitset.get t.bits (position t h i) && go (i + 1)) in
  go 0

let k t = t.k
let bit_count t = t.m

(** [byte_size t] is the filter's footprint, for accounting. *)
let byte_size t = Lsm_util.Bitset.byte_size t.bits

(** Probe cost model: a standard Bloom filter touches up to [k] scattered
    cache lines per probe and evaluates two base hashes. *)
let cache_lines_per_probe t = t.k

let hashes_per_probe _t = 2
