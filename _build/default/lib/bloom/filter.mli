(** Either Bloom filter flavour behind one interface (the "bBF" toggle of
    Sec. 6.2 is a component build-time choice). *)

type t = Standard of Bloom.t | Blocked of Blocked_bloom.t

type kind = [ `Standard | `Blocked ]

val create : kind -> expected:int -> fpr:float -> t
val add : t -> int -> unit
val contains : t -> int -> bool
val cache_lines_per_probe : t -> int
val hashes_per_probe : t -> int
val byte_size : t -> int
