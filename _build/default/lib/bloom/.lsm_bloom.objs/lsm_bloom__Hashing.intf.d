lib/bloom/hashing.mli:
