lib/bloom/bloom.ml: Float Hashing Lsm_util
