lib/bloom/filter.ml: Blocked_bloom Bloom
