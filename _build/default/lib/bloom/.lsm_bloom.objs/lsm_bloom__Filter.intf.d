lib/bloom/filter.mli: Blocked_bloom Bloom
