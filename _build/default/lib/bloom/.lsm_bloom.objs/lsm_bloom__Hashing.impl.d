lib/bloom/hashing.ml: Char Int64 String
