lib/bloom/blocked_bloom.mli:
