lib/bloom/bloom.mli:
