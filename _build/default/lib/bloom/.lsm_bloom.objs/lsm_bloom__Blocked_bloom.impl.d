lib/bloom/blocked_bloom.ml: Bloom Hashing Lsm_util
