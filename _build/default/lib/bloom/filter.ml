(** A Bloom filter of either flavour behind one interface.

    Components are built with whichever variant the engine configuration
    selects (the "bBF" toggle of Sec. 6.2), and probe-cost accounting asks
    the filter how many cache lines and hashes a probe touches. *)

type t = Standard of Bloom.t | Blocked of Blocked_bloom.t

type kind = [ `Standard | `Blocked ]

let create (kind : kind) ~expected ~fpr =
  match kind with
  | `Standard -> Standard (Bloom.create ~expected ~fpr)
  | `Blocked -> Blocked (Blocked_bloom.create ~expected ~fpr)

let add t h =
  match t with Standard b -> Bloom.add b h | Blocked b -> Blocked_bloom.add b h

let contains t h =
  match t with
  | Standard b -> Bloom.contains b h
  | Blocked b -> Blocked_bloom.contains b h

let cache_lines_per_probe t =
  match t with
  | Standard b -> Bloom.cache_lines_per_probe b
  | Blocked b -> Blocked_bloom.cache_lines_per_probe b

let hashes_per_probe t =
  match t with
  | Standard b -> Bloom.hashes_per_probe b
  | Blocked b -> Blocked_bloom.hashes_per_probe b

let byte_size t =
  match t with
  | Standard b -> Bloom.byte_size b
  | Blocked b -> Blocked_bloom.byte_size b
