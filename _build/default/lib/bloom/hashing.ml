(** 64-bit hash mixing.

    Bloom filters take an already-hashed key; index keys hash themselves
    with these helpers.  [mix64] is the SplitMix64 finalizer, a strong
    bijective mixer; [combine] folds multiple fields (composite secondary
    keys are (secondary key, primary key) pairs). *)

let mix64 (x : int) : int =
  let open Int64 in
  let z = of_int x in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  to_int (logxor z (shift_right_logical z 31))

(** [combine h1 h2] mixes two hashes into one. *)
let combine h1 h2 = mix64 (h1 lxor (h2 + 0x9E3779B9 + (h1 lsl 6) + (h1 lsr 2)))

(** [hash_string s] hashes a string (FNV-1a over bytes, then mixed). *)
let hash_string s =
  (* FNV-1a offset basis, truncated to OCaml's 63-bit int range. *)
  let h = ref 0x3BF29CE484222325 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x100000001B3) s;
  mix64 !h

(** [double_hash h i] is the i-th probe position seed under Kirsch &
    Mitzenmacher double hashing: [h1 + i*h2] with [h2] forced odd. *)
let double_hash h i =
  let h1 = mix64 h in
  let h2 = mix64 (h lxor 0x5851F42D4C957F2D) lor 1 in
  h1 + (i * h2)
