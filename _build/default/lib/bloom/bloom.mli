(** Standard Bloom filters (Bloom, CACM 1970): one per primary /
    primary-key disk component, consulted before the component's B+-tree
    (Sec. 3, Fig. 1).  [add]/[contains] take a pre-computed 64-bit key
    hash (see {!Hashing}). *)

type t

val params : expected:int -> fpr:float -> int * int
(** [params ~expected ~fpr] is [(bits, probes)]:
    m/n = -ln p / (ln 2)², k = (m/n) ln 2.
    @raise Invalid_argument unless [0 < fpr < 1] and [expected >= 0]. *)

val create : expected:int -> fpr:float -> t

val add : t -> int -> unit

val contains : t -> int -> bool
(** [false] only if the key was never added. *)

val k : t -> int
val bit_count : t -> int
val byte_size : t -> int

val cache_lines_per_probe : t -> int
(** Up to [k] scattered cache lines per probe. *)

val hashes_per_probe : t -> int
