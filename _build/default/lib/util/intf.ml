(** Module types shared across the engine. *)

(** Totally ordered index keys. *)
module type ORDERED = sig
  type t

  val compare : t -> t -> int

  val hash : t -> int
  (** A well-mixed 64-bit hash, consumed by Bloom filters. *)

  val byte_size : t -> int
  (** Serialized size in bytes, for page-layout accounting. *)

  val pp : Format.formatter -> t -> unit
end

(** Values stored in an index; only their size and printing matter to the
    storage layer. *)
module type SIZED = sig
  type t

  val byte_size : t -> int
  val pp : Format.formatter -> t -> unit
end
