(** Sorting with comparison counting (query-plan sorts and repair streams
    charge simulated CPU per comparison). *)

val sort : cmp:('a -> 'a -> int) -> cost:int ref -> 'a array -> unit
(** [sort ~cmp ~cost a] sorts in place, adding comparisons to [cost]. *)

val sort_list : cmp:('a -> 'a -> int) -> cost:int ref -> 'a list -> 'a list

val dedup_sorted : eq:('a -> 'a -> bool) -> 'a array -> 'a array
(** Distinct elements of a sorted array, keeping the first of each run
    (the sort-distinct step of Direct Validation, Fig. 5a). *)

val is_sorted : cmp:('a -> 'a -> int) -> 'a array -> bool
