(** Minimal growable arrays (OCaml 5.1 predates [Dynarray]); the
    concurrent component builder appends merged rows while writers
    binary-search the sorted prefix. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val push : 'a t -> 'a -> unit

val get : 'a t -> int -> 'a
(** @raise Invalid_argument out of bounds. *)

val to_array : 'a t -> 'a array

val binary_search :
  cmp:('a -> 'b -> int) -> cost:int ref -> 'a t -> 'b -> int option
(** [binary_search ~cmp ~cost t key]: index of an element equal to [key]
    in the (sorted) contents, counting comparisons into [cost]. *)

val iter : 'a t -> ('a -> unit) -> unit
