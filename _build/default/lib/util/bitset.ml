(** Fixed-size mutable bitsets.

    Used for Bloom filter bit spaces and for the per-component validity
    bitmaps of Sections 4.4 (immutable bitmap written by merge repair) and
    5 (mutable bitmap updated in place by writers). *)

type t = { bits : Bytes.t; length : int }

(** [create n] is a bitset of [n] bits, all zero. *)
let create n =
  if n < 0 then invalid_arg "Bitset.create: negative length";
  { bits = Bytes.make ((n + 7) / 8) '\000'; length = n }

let length t = t.length

let check_bounds t i =
  if i < 0 || i >= t.length then invalid_arg "Bitset: index out of bounds"

(** [set t i] sets bit [i] to 1. *)
let set t i =
  check_bounds t i;
  let b = Bytes.get_uint8 t.bits (i lsr 3) in
  Bytes.set_uint8 t.bits (i lsr 3) (b lor (1 lsl (i land 7)))

(** [clear t i] sets bit [i] to 0 (used by transaction aborts, which are the
    only writers allowed to flip bits back; see Sec. 5.2). *)
let clear t i =
  check_bounds t i;
  let b = Bytes.get_uint8 t.bits (i lsr 3) in
  Bytes.set_uint8 t.bits (i lsr 3) (b land lnot (1 lsl (i land 7)))

(** [get t i] is the value of bit [i]. *)
let get t i =
  check_bounds t i;
  Bytes.get_uint8 t.bits (i lsr 3) land (1 lsl (i land 7)) <> 0

(** [copy t] is an independent snapshot of [t] (the Side-file method takes
    bitmap snapshots during its initialization phase). *)
let copy t = { bits = Bytes.copy t.bits; length = t.length }

(** [count t] is the number of set bits. *)
let count t =
  let c = ref 0 in
  for i = 0 to Bytes.length t.bits - 1 do
    let b = ref (Bytes.get_uint8 t.bits i) in
    while !b <> 0 do
      b := !b land (!b - 1);
      incr c
    done
  done;
  !c

(** [byte_size t] is the in-memory footprint in bytes, for accounting. *)
let byte_size t = Bytes.length t.bits

(** [iter_set t f] applies [f] to each set bit index in increasing order. *)
let iter_set t f =
  for i = 0 to t.length - 1 do
    if get t i then f i
  done
