(** A mutable binary min-heap.

    LSM range scans reconcile entries from many components with a k-way
    merge; the heap orders cursor heads by (key, recency).  The comparison
    function is supplied at creation time, so heaps over tuples avoid
    polymorphic compare. *)

type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
}

let create cmp = { cmp; data = [||]; size = 0 }

let length t = t.size
let is_empty t = t.size = 0

(* Storage is allocated lazily from the first pushed element, so no dummy
   value of type ['a] is ever needed. *)
let ensure_room t filler =
  if Array.length t.data = 0 then t.data <- Array.make 16 filler
  else if t.size = Array.length t.data then begin
    let data = Array.make (2 * Array.length t.data) t.data.(0) in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp t.data.(i) t.data.(parent) < 0 then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && t.cmp t.data.(l) t.data.(!smallest) < 0 then smallest := l;
  if r < t.size && t.cmp t.data.(r) t.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

(** [push t x] inserts [x]. *)
let push t x =
  ensure_room t x;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

(** [peek t] is the minimum element, if any. *)
let peek t = if t.size = 0 then None else Some t.data.(0)

(** [pop t] removes and returns the minimum element.
    @raise Invalid_argument on an empty heap. *)
let pop t =
  if t.size = 0 then invalid_arg "Heap.pop: empty";
  let top = t.data.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.data.(0) <- t.data.(t.size);
    sift_down t 0
  end;
  top

(** [pop_opt t] is [pop] returning an option. *)
let pop_opt t = if t.size = 0 then None else Some (pop t)
