(** Sorting with comparison counting.

    Query plans in the paper sort primary keys before point lookups and
    optionally re-sort fetched records back into key order (Fig. 12d); merge
    repair streams (key, ts, position) triples through a sorter (Fig. 7).
    All of those sorts charge simulated CPU time proportional to the number
    of comparisons performed, which this module reports. *)

(** [sort ~cmp ~cost a] sorts [a] in place, adding the number of
    comparisons performed to [cost]. *)
let sort ~cmp ~cost a =
  Array.sort
    (fun x y ->
      incr cost;
      cmp x y)
    a

(** [sort_list ~cmp ~cost l] sorts a list, adding comparisons to [cost]. *)
let sort_list ~cmp ~cost l =
  List.sort
    (fun x y ->
      incr cost;
      cmp x y)
    l

(** [dedup_sorted ~eq a] returns the distinct elements of a sorted array,
    keeping the first of each run of equal elements.  Used by the
    sort-distinct step of Direct Validation (Fig. 5a). *)
let dedup_sorted ~eq a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let out = ref [ a.(0) ] in
    let count = ref 1 in
    for i = 1 to n - 1 do
      if not (eq a.(i) a.(i - 1)) then begin
        out := a.(i) :: !out;
        incr count
      end
    done;
    let res = Array.make !count a.(0) in
    List.iteri (fun i x -> res.(!count - 1 - i) <- x) !out;
    res
  end

(** [is_sorted ~cmp a] checks that [a] is non-decreasing under [cmp]. *)
let is_sorted ~cmp a =
  let ok = ref true in
  for i = 1 to Array.length a - 1 do
    if cmp a.(i - 1) a.(i) > 0 then ok := false
  done;
  !ok
