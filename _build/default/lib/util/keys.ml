(** Ready-made key/value instances of {!Intf.ORDERED} and {!Intf.SIZED}. *)

(* The mixer is duplicated from Lsm_bloom.Hashing to keep lsm_util
   dependency-free; both are the SplitMix64 finalizer. *)
let mix64 (x : int) : int =
  let open Int64 in
  let z = of_int x in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  to_int (logxor z (shift_right_logical z 31))

(** 64-bit integer keys (the paper's primary keys are random 64-bit
    integers; OCaml's native int carries 63 bits of them). *)
module Int_key : Intf.ORDERED with type t = int = struct
  type t = int

  let compare (a : int) b = compare a b
  let hash = mix64
  let byte_size _ = 8
  let pp = Format.pp_print_int
end

(** Composite (secondary key, primary key) keys: secondary indexes use the
    primary key as a tie-breaker so that duplicate secondary keys remain
    distinct index entries (Sec. 3). *)
module Int_pair_key : Intf.ORDERED with type t = int * int = struct
  type t = int * int

  let compare (a1, b1) (a2, b2) =
    let c = compare (a1 : int) a2 in
    if c <> 0 then c else compare (b1 : int) b2

  let hash (a, b) = mix64 (mix64 a lxor b)
  let byte_size _ = 16
  let pp fmt (a, b) = Format.fprintf fmt "(%d,%d)" a b
end

(** Unit values, for key-only indexes (the primary key index and secondary
    indexes store no value beyond the key and timestamp). *)
module Unit_value : Intf.SIZED with type t = unit = struct
  type t = unit

  let byte_size () = 0
  let pp fmt () = Format.pp_print_string fmt "()"
end

(** Integer values, occasionally useful in tests and examples. *)
module Int_value : Intf.SIZED with type t = int = struct
  type t = int

  let byte_size _ = 8
  let pp = Format.pp_print_int
end
