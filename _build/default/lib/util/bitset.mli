(** Fixed-size mutable bitsets: Bloom filter bit spaces and the
    per-component validity bitmaps of Secs. 4.4 and 5. *)

type t

val create : int -> t
(** [create n] is an [n]-bit set, all zeros.
    @raise Invalid_argument on negative [n]. *)

val length : t -> int

val set : t -> int -> unit
(** [set t i] sets bit [i] to 1. @raise Invalid_argument out of bounds. *)

val clear : t -> int -> unit
(** [clear t i] sets bit [i] to 0 (transaction aborts are the only writers
    that flip bits back; Sec. 5.2). *)

val get : t -> int -> bool

val copy : t -> t
(** Independent snapshot (the Side-file method snapshots bitmaps). *)

val count : t -> int
(** Number of set bits. *)

val byte_size : t -> int
(** In-memory footprint, for accounting. *)

val iter_set : t -> (int -> unit) -> unit
(** [iter_set t f] applies [f] to each set bit index, ascending. *)
