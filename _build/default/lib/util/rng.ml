(** Deterministic pseudo-random number generation.

    All randomness in the repository flows through this module so that
    experiments and property tests are reproducible from a seed.  The
    generator is SplitMix64 (Steele et al., OOPSLA 2014): tiny state, very
    fast, and statistically strong enough for workload generation and Bloom
    filter inputs. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* One SplitMix64 step: advance by the golden-gamma and mix. *)
let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(** [bits t] returns a non-negative 62-bit random integer. *)
let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

(** [int t bound] returns a uniform integer in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let rec go () =
    let r = bits t in
    let v = r mod bound in
    if r - v > (max_int lsr 2) - bound + 1 then go () else v
  in
  go ()

(** [float t] returns a uniform float in [\[0, 1)]. *)
let float t = Float.of_int (bits t) *. 0x1p-62

(** [bool t] returns a uniform boolean. *)
let bool t = Int64.logand (next_int64 t) 1L = 1L

(** [int_in_range t ~lo ~hi] returns a uniform integer in [\[lo, hi\]]. *)
let int_in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in_range: empty range";
  lo + int t (hi - lo + 1)

(** [split t] derives an independent generator from [t]'s stream. *)
let split t = { state = next_int64 t }

(** [shuffle t a] permutes [a] in place (Fisher-Yates). *)
let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
