(** Deterministic pseudo-random number generation (SplitMix64).

    All randomness in the repository flows through this module so that
    experiments and property tests are reproducible from a seed. *)

type t
(** A generator; mutable state, not thread-safe. *)

val create : int -> t
(** [create seed] builds a generator from a seed. *)

val copy : t -> t
(** [copy t] duplicates the generator state. *)

val next_int64 : t -> int64
(** [next_int64 t] is the next raw 64-bit output. *)

val bits : t -> int
(** [bits t] is a non-negative 62-bit random integer. *)

val int : t -> int -> int
(** [int t bound] is uniform in [[0, bound)], without modulo bias.
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float
(** [float t] is uniform in [[0, 1)]. *)

val bool : t -> bool

val int_in_range : t -> lo:int -> hi:int -> int
(** [int_in_range t ~lo ~hi] is uniform in [[lo, hi]] (inclusive). *)

val split : t -> t
(** [split t] derives an independent generator from [t]'s stream. *)

val shuffle : t -> 'a array -> unit
(** [shuffle t a] permutes [a] in place (Fisher-Yates). *)
