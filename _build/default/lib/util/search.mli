(** Array search primitives with comparison counting.

    Every search reports its comparisons into the caller-supplied [cost]
    counter; the storage environment converts counts into simulated CPU
    time. *)

val lower_bound :
  cmp:('a -> 'b -> int) -> cost:int ref -> 'a array -> lo:int -> hi:int -> 'b -> int
(** Smallest index [i] in [[lo, hi)] with [cmp a.(i) key >= 0], else [hi]. *)

val upper_bound :
  cmp:('a -> 'b -> int) -> cost:int ref -> 'a array -> lo:int -> hi:int -> 'b -> int
(** Smallest index [i] in [[lo, hi)] with [cmp a.(i) key > 0], else [hi]. *)

val exponential_lower_bound :
  cmp:('a -> 'b -> int) ->
  cost:int ref ->
  'a array ->
  lo:int ->
  hi:int ->
  start:int ->
  'b ->
  int
(** [lower_bound], but galloping from [start] (the previous search
    position) à la Bentley & Yao — O(log distance) when consecutive
    lookups target nearby keys, as in sorted batched point lookups. *)

val binary_find :
  cmp:('a -> 'b -> int) -> cost:int ref -> 'a array -> 'b -> int option
(** [binary_find ~cmp ~cost a key] is [Some i] with [cmp a.(i) key = 0] if
    present in the sorted array. *)
