lib/util/sorter.mli:
