lib/util/bitset.mli:
