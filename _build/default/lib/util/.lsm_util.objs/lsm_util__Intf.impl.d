lib/util/intf.ml: Format
