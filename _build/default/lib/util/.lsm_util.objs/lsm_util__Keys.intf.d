lib/util/keys.mli: Intf
