lib/util/search.mli:
