lib/util/keys.ml: Format Int64 Intf
