lib/util/zipf.ml: Float Rng
