lib/util/rng.mli:
