lib/util/search.ml: Array
