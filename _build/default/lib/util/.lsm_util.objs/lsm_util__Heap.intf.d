lib/util/heap.mli:
