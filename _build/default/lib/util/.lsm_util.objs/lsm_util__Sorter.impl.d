lib/util/sorter.ml: Array List
