lib/util/vec.mli:
