lib/util/bitset.ml: Bytes
