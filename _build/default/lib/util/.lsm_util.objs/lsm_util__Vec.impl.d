lib/util/vec.ml: Array Search
