(** Ready-made key/value instances of {!Intf.ORDERED} and {!Intf.SIZED}. *)

val mix64 : int -> int
(** The SplitMix64 finalizer (duplicated from [Lsm_bloom.Hashing] to keep
    this library dependency-free). *)

(** 63-bit integer keys (the paper's 64-bit primary keys). *)
module Int_key : Intf.ORDERED with type t = int

(** Composite (secondary key, primary key) keys: the primary key breaks
    ties so duplicate secondary keys remain distinct entries (Sec. 3). *)
module Int_pair_key : Intf.ORDERED with type t = int * int

(** Unit values, for key-only indexes. *)
module Unit_value : Intf.SIZED with type t = unit

module Int_value : Intf.SIZED with type t = int
