(** Mutable binary min-heaps (k-way merge reconciliation in LSM scans). *)

type 'a t

val create : ('a -> 'a -> int) -> 'a t
(** [create cmp] is an empty heap ordered by [cmp]. *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Minimum element, if any, without removing it. *)

val pop : 'a t -> 'a
(** Remove and return the minimum. @raise Invalid_argument if empty. *)

val pop_opt : 'a t -> 'a option
