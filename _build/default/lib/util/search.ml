(** Array search primitives with comparison counting.

    Point-lookup cost in the simulated engine has an in-memory component
    (key comparisons inside B+-tree pages) that the paper's "stateful
    B+-tree lookup" optimization targets, so every search here reports how
    many comparisons it performed.  Counts are accumulated into an [int ref]
    supplied by the caller, which the storage environment converts into
    simulated CPU time. *)

(** [lower_bound ~cmp ~cost a ~lo ~hi key] returns the smallest index
    [i] in [\[lo, hi)] such that [cmp a.(i) key >= 0], or [hi] if there is
    none.  Standard binary search; adds the number of comparisons to
    [cost]. *)
let lower_bound ~cmp ~cost a ~lo ~hi key =
  let l = ref lo and h = ref hi in
  while !l < !h do
    let mid = !l + ((!h - !l) / 2) in
    incr cost;
    if cmp a.(mid) key < 0 then l := mid + 1 else h := mid
  done;
  !l

(** [upper_bound ~cmp ~cost a ~lo ~hi key] returns the smallest index [i] in
    [\[lo, hi)] such that [cmp a.(i) key > 0], or [hi]. *)
let upper_bound ~cmp ~cost a ~lo ~hi key =
  let l = ref lo and h = ref hi in
  while !l < !h do
    let mid = !l + ((!h - !l) / 2) in
    incr cost;
    if cmp a.(mid) key <= 0 then l := mid + 1 else h := mid
  done;
  !l

(** [exponential_lower_bound ~cmp ~cost a ~lo ~hi ~start key] is
    [lower_bound] but begins probing at [start] (the previous search
    position) with exponentially increasing steps, as in Bentley & Yao's
    unbounded search.  When consecutive lookups target nearby keys — the
    common case for sorted batched point lookups — this costs
    O(log distance) instead of O(log n). *)
let exponential_lower_bound ~cmp ~cost a ~lo ~hi ~start key =
  let start = if start < lo then lo else if start > hi then hi else start in
  if start >= hi || (incr cost; cmp a.(start) key >= 0) then
    (* Answer is at or before [start]: gallop backwards.  Invariant: the
       lower bound lies in [lo, high] and either [high = start] or
       [a.(high) >= key], so [lower_bound] returning [high] is correct. *)
    let rec back step high =
      let probe = start - step in
      if probe <= lo then lower_bound ~cmp ~cost a ~lo ~hi:high key
      else if (incr cost; cmp a.(probe) key >= 0) then back (step * 2) probe
      else lower_bound ~cmp ~cost a ~lo:(probe + 1) ~hi:high key
    in
    back 1 start
  else
    (* Answer is strictly after [start]: gallop forwards.  Invariant:
       [a.(low) < key], so the lower bound lies in (low, hi]. *)
    let rec fwd step low =
      let probe = start + step in
      if probe >= hi then lower_bound ~cmp ~cost a ~lo:(low + 1) ~hi key
      else if (incr cost; cmp a.(probe) key < 0) then fwd (step * 2) probe
      else lower_bound ~cmp ~cost a ~lo:(low + 1) ~hi:probe key
    in
    fwd 1 start

(** [binary_find ~cmp ~cost a key] returns [Some i] with [cmp a.(i) key = 0]
    if present in the sorted array [a]. *)
let binary_find ~cmp ~cost a key =
  let n = Array.length a in
  let i = lower_bound ~cmp ~cost a ~lo:0 ~hi:n key in
  if i < n && (incr cost; cmp a.(i) key = 0) then Some i else None
