(** A minimal growable array (OCaml 5.1 predates Stdlib.Dynarray).

    The concurrent component builder appends merged rows one at a time
    while writers concurrently binary-search the prefix built so far, so a
    contiguous, indexable, growable sequence is exactly what is needed. *)

type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let length t = t.len

let push t x =
  if Array.length t.data = 0 then t.data <- Array.make 16 x
  else if t.len = Array.length t.data then begin
    let bigger = Array.make (2 * t.len) t.data.(0) in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get: out of bounds";
  t.data.(i)

let to_array t = Array.sub t.data 0 t.len

(** [binary_search ~cmp ~cost t key] finds the index of an element equal
    to [key] in the (sorted) contents, if present. *)
let binary_search ~cmp ~cost t key =
  let i = Search.lower_bound ~cmp ~cost t.data ~lo:0 ~hi:t.len key in
  if
    i < t.len
    &&
    (incr cost;
     cmp t.data.(i) key = 0)
  then Some i
  else None

let iter t f =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done
