(** Side-files for the Side-file concurrency-control method (Sec. 5.3,
    Fig. 11): while a component builder scans old components against
    bitmap snapshots, writers append the keys they delete to a side-file;
    at catch-up time the builder closes the side-file, sorts it, and
    applies the deletions to the new component. *)

type t = {
  mutable entries : int list;  (** deleted keys, newest first *)
  mutable closed : bool;
  mutable n : int;
}

let create () = { entries = []; closed = false; n = 0 }

(** [append t key] records a deleted key; fails (returns [false]) once the
    side-file has been closed, in which case the writer must apply the
    deletion to the new component directly (Fig. 11b line 8). *)
let append t key =
  if t.closed then false
  else begin
    t.entries <- key :: t.entries;
    t.n <- t.n + 1;
    true
  end

(** [close t] ends the intake (builder catch-up phase). *)
let close t = t.closed <- true

let is_closed t = t.closed
let length t = t.n

(** [sorted_keys ~cost t] returns the deduplicated, sorted keys, charging
    comparisons to [cost] ("the component builder sorts the side-file as
    suggested in [30]"). *)
let sorted_keys ~cost t =
  let arr = Array.of_list t.entries in
  Lsm_util.Sorter.sort ~cmp:(fun (a : int) b -> compare a b) ~cost arr;
  Lsm_util.Sorter.dedup_sorted ~eq:(fun (a : int) b -> a = b) arr
