(** Key-granularity lock table with shared / exclusive modes (Sec. 5.2's
    record-level transactions; Fig. 10's Lock method).  Acquisition never
    blocks — a conflicting request reports [`Conflict] and the
    deterministic simulation decides what to do. *)

type mode = S | X
type t

val create : unit -> t

val acquire : t -> owner:int -> key:int -> mode -> [ `Granted | `Conflict ]
(** Re-entrant for the same owner; S->X upgrade allowed for a sole
    shared holder. *)

val release : t -> owner:int -> key:int -> unit

val holds : t -> owner:int -> key:int -> mode option
(** Strongest mode held. *)

val acquisitions : t -> int
(** Total grants (overhead accounting). *)

val releases : t -> int
val outstanding : t -> int
