(** Per-component validity bitmaps with checkpoint / crash / recovery
    semantics (Sec. 5.2): bits flip in memory; checkpoints flush durably;
    a crash discards post-checkpoint flips (component *registration* is
    durable — components live on disk); recovery replays committed log
    records. *)

type t

val create : unit -> t

val register : t -> comp_seq:int -> size:int -> unit
(** All-valid bitmap for a new component (flush or merge). *)

val find : t -> comp_seq:int -> Lsm_util.Bitset.t option
val set : t -> comp_seq:int -> pos:int -> unit
val unset : t -> comp_seq:int -> pos:int -> unit
val get : t -> comp_seq:int -> pos:int -> bool

val checkpoint : t -> unit
(** Durably snapshot every bitmap. *)

val crash : t -> unit
(** Revert to registered components overlaid with the last checkpoint. *)

val snapshot : t -> (int * Lsm_util.Bitset.t) list
(** Current live state, sorted (test comparisons). *)

val equal_state : t -> t -> bool
