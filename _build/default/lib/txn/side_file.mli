(** Side-files for the Side-file concurrency-control method (Sec. 5.3,
    Fig. 11): writers append deleted keys while the builder scans against
    bitmap snapshots; catch-up sorts and applies them. *)

type t

val create : unit -> t

val append : t -> int -> bool
(** [false] once closed — the writer must then apply the deletion to the
    new component directly (Fig. 11b line 8). *)

val close : t -> unit
val is_closed : t -> bool
val length : t -> int

val sorted_keys : cost:int ref -> t -> int array
(** Deduplicated sorted keys, charging comparisons into [cost]. *)
