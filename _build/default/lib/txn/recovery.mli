(** Abort and crash recovery for mutable bitmaps under no-steal/no-force
    (Sec. 5.2): aborts unset the bits their transaction set; recovery
    restores the checkpoint and replays committed post-checkpoint records
    whose update bit is set.  No undo is ever needed. *)

val abort_txn : Wal.t -> Bitmap_store.t -> txn:int -> unit
val recover : Wal.t -> Bitmap_store.t -> unit
