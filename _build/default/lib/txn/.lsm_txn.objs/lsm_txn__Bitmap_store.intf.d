lib/txn/bitmap_store.mli: Lsm_util
