lib/txn/side_file.mli:
