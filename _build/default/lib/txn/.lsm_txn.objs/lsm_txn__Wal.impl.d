lib/txn/wal.ml: Hashtbl List
