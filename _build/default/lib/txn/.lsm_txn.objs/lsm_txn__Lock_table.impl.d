lib/txn/lock_table.ml: Hashtbl List
