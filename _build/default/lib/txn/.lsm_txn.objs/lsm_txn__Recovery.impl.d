lib/txn/recovery.ml: Bitmap_store List Wal
