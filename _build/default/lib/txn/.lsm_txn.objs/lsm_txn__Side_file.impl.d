lib/txn/side_file.ml: Array Lsm_util
