lib/txn/recovery.mli: Bitmap_store Wal
