lib/txn/bitmap_store.ml: Hashtbl List Lsm_util
