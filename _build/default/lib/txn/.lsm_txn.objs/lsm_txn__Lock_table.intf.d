lib/txn/lock_table.mli:
