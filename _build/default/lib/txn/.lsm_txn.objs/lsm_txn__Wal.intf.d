lib/txn/wal.mli: Hashtbl
