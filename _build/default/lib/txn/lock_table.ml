(** A key-granularity lock table with shared / exclusive modes.

    The paper's transaction model (Sec. 5.2): each writer acquires an
    exclusive lock on a primary key for the duration of its record-level
    transaction; the Lock concurrency-control method additionally has the
    component builder take shared locks on keys while scanning (Fig. 10).

    The engine is a discrete simulation, so lock acquisition never blocks:
    a conflicting request is reported as [`Conflict] and the simulation
    decides what to do (in the deterministic interleavings we generate,
    conflicts indicate protocol bugs and tests assert their absence). *)

type mode = S | X

type entry = { mutable xowner : int option; mutable sholders : int list }

type t = {
  locks : (int, entry) Hashtbl.t;
  mutable acquisitions : int;  (** total grants, for overhead accounting *)
  mutable releases : int;
}

let create () = { locks = Hashtbl.create 256; acquisitions = 0; releases = 0 }

let acquisitions t = t.acquisitions
let releases t = t.releases

let entry t key =
  match Hashtbl.find_opt t.locks key with
  | Some e -> e
  | None ->
      let e = { xowner = None; sholders = [] } in
      Hashtbl.replace t.locks key e;
      e

(** [acquire t ~owner ~key mode] grants or refuses the lock.  Re-entrant
    for the same owner. *)
let acquire t ~owner ~key mode =
  let e = entry t key in
  match mode with
  | X -> (
      match e.xowner with
      | Some o when o = owner ->
          t.acquisitions <- t.acquisitions + 1;
          `Granted
      | Some _ -> `Conflict
      | None ->
          (* Upgrade allowed if the requester is the only shared holder. *)
          if List.for_all (fun o -> o = owner) e.sholders then begin
            e.xowner <- Some owner;
            e.sholders <- [];
            t.acquisitions <- t.acquisitions + 1;
            `Granted
          end
          else `Conflict)
  | S -> (
      match e.xowner with
      | Some o when o <> owner -> `Conflict
      | _ ->
          if not (List.mem owner e.sholders) then
            e.sholders <- owner :: e.sholders;
          t.acquisitions <- t.acquisitions + 1;
          `Granted)

(** [release t ~owner ~key] drops whatever [owner] holds on [key]. *)
let release t ~owner ~key =
  match Hashtbl.find_opt t.locks key with
  | None -> ()
  | Some e ->
      if e.xowner = Some owner then e.xowner <- None;
      e.sholders <- List.filter (fun o -> o <> owner) e.sholders;
      t.releases <- t.releases + 1;
      if e.xowner = None && e.sholders = [] then Hashtbl.remove t.locks key

(** [holds t ~owner ~key] reports the strongest mode held. *)
let holds t ~owner ~key =
  match Hashtbl.find_opt t.locks key with
  | None -> None
  | Some e ->
      if e.xowner = Some owner then Some X
      else if List.mem owner e.sholders then Some S
      else None

let outstanding t = Hashtbl.length t.locks
