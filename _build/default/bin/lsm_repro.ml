(* Command-line driver for the reproduction experiments.

   lsm_repro list                 — show every experiment
   lsm_repro run fig14 [-s tiny]  — run one experiment
   lsm_repro all [-s medium]      — run the full suite *)

open Cmdliner

let scale_arg =
  let doc = "Experiment scale: tiny, small, medium, or large." in
  Arg.(value & opt string "small" & info [ "s"; "scale" ] ~docv:"SCALE" ~doc)

let list_cmd =
  let run () =
    List.iter
      (fun e ->
        Printf.printf "%-8s %s\n" e.Lsm_harness.Registry.id
          e.Lsm_harness.Registry.description)
      Lsm_harness.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List all experiments") Term.(const run $ const ())

let run_cmd =
  let id_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT")
  in
  let run scale id =
    let scale = Lsm_harness.Scale.of_string scale in
    match Lsm_harness.Registry.find id with
    | None ->
        Printf.eprintf "unknown experiment %s (try `lsm_repro list`)\n" id;
        exit 1
    | Some e ->
        Printf.printf "running %s (%s) at scale %s...\n%!" e.Lsm_harness.Registry.id
          e.Lsm_harness.Registry.description scale.Lsm_harness.Scale.name;
        List.iter Lsm_harness.Report.print (e.Lsm_harness.Registry.run scale)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one experiment by id (e.g. fig14)")
    Term.(const run $ scale_arg $ id_arg)

let csv_arg =
  let doc = "Also write one plot-ready CSV per table into $(docv)." in
  Arg.(
    value & opt (some string) None & info [ "csv" ] ~docv:"DIR" ~doc)

let all_cmd =
  let run scale csv_dir =
    let scale = Lsm_harness.Scale.of_string scale in
    Lsm_harness.Registry.run_all ?csv_dir scale
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Run the full experiment suite")
    Term.(const run $ scale_arg $ csv_arg)

let () =
  let doc =
    "Reproduction of 'Efficient Data Ingestion and Query Processing for \
     LSM-Based Storage Systems' (Luo & Carey, VLDB 2019)"
  in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "lsm_repro" ~version:"1.0.0" ~doc)
          [ list_cmd; run_cmd; all_cmd ]))
