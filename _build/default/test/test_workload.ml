(* Tests for Lsm_workload: tweet generation, ingestion streams, query
   generation. *)

module Tweet = Lsm_workload.Tweet
module Streams = Lsm_workload.Streams
module Qg = Lsm_workload.Query_gen

let test_tweet_sizes () =
  let g = Tweet.create_gen ~seed:1 () in
  for _ = 1 to 1000 do
    let t = Tweet.fresh g in
    let s = Tweet.byte_size t in
    Alcotest.(check bool) "~500B" true (s >= 482 && s <= 582);
    Alcotest.(check bool) "user domain" true
      (t.Tweet.user_id >= 0 && t.Tweet.user_id < Tweet.user_id_domain)
  done

let test_tweet_monotone_time () =
  let g = Tweet.create_gen ~seed:1 () in
  let last = ref (-1) in
  for _ = 1 to 100 do
    let t = Tweet.fresh g in
    Alcotest.(check bool) "monotone" true (t.Tweet.created_at > !last);
    last := t.Tweet.created_at
  done

let test_tweet_record_bytes_override () =
  let g = Tweet.create_gen ~seed:1 ~record_bytes:1024 () in
  let t = Tweet.fresh g in
  Alcotest.(check int) "1KB" 1024 (Tweet.byte_size t)

let test_sequential_ids () =
  let g = Tweet.create_gen ~seed:1 () in
  let next = Tweet.fresh_sequential g in
  Alcotest.(check int) "1" 1 (Tweet.primary_key (next ()));
  Alcotest.(check int) "2" 2 (Tweet.primary_key (next ()))

let test_insert_stream_duplicate_ratio () =
  let s = Streams.insert_stream ~seed:3 ~duplicate_ratio:0.5 () in
  let seen = Hashtbl.create 1024 in
  let dups = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    match Streams.next s with
    | Streams.Insert t ->
        let id = Tweet.primary_key t in
        if Hashtbl.mem seen id then incr dups else Hashtbl.add seen id ()
    | _ -> Alcotest.fail "insert stream must produce inserts"
  done;
  let ratio = Float.of_int !dups /. Float.of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "duplicate ratio %.3f near 0.5" ratio)
    true
    (ratio > 0.45 && ratio < 0.55)

let test_upsert_stream_update_ratio () =
  let s =
    Streams.upsert_stream ~seed:3 ~update_ratio:0.3 ~distribution:`Uniform ()
  in
  let seen = Hashtbl.create 1024 in
  let updates = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    match Streams.next s with
    | Streams.Upsert t ->
        let id = Tweet.primary_key t in
        if Hashtbl.mem seen id then incr updates else Hashtbl.add seen id ()
    | _ -> Alcotest.fail "upsert stream must produce upserts"
  done;
  let ratio = Float.of_int !updates /. Float.of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "update ratio %.3f near 0.3" ratio)
    true
    (ratio > 0.26 && ratio < 0.34)

let test_zipf_updates_skew_recent () =
  let s =
    Streams.upsert_stream ~seed:3 ~update_ratio:0.5 ~distribution:`Zipf_latest ()
  in
  (* Warm up 5000 ops, then measure which keys updates touch. *)
  let ids = ref [] in
  for i = 1 to 10_000 do
    match Streams.next s with
    | Streams.Upsert t ->
        if i > 5_000 then ids := Tweet.primary_key t :: !ids
    | _ -> ()
  done;
  let past_n = Streams.past_count s in
  (* Index of each updated key in ingestion order. *)
  let order = Hashtbl.create 1024 in
  for i = 0 to past_n - 1 do
    Hashtbl.replace order (Streams.nth_past s i) i
  done;
  let recent = ref 0 and total = ref 0 in
  List.iter
    (fun id ->
      match Hashtbl.find_opt order id with
      | Some i ->
          incr total;
          if i > past_n * 3 / 4 then incr recent
      | None -> ())
    !ids;
  (* Under a uniform distribution the most recent quartile of keys would
     receive 25% of updates; Zipf-latest concentrates far more there. *)
  let frac = Float.of_int !recent /. Float.of_int (max 1 !total) in
  Alcotest.(check bool)
    (Printf.sprintf "recent quartile gets %.2f of updates" frac)
    true (frac > 0.38)

let test_query_selectivity () =
  let q = Qg.create ~seed:5 () in
  List.iter
    (fun sel ->
      let lo, hi = Qg.user_range q ~selectivity:sel in
      let width = hi - lo + 1 in
      let expect = int_of_float (sel *. Float.of_int Tweet.user_id_domain) in
      Alcotest.(check bool)
        (Printf.sprintf "width %d ~ %d" width expect)
        true
        (abs (width - expect) <= 1);
      Alcotest.(check bool) "in domain" true
        (lo >= 0 && hi < Tweet.user_id_domain))
    [ 0.001; 0.01; 0.1; 0.5 ]

let test_time_ranges () =
  let lo, hi = Qg.recent_time_range ~now:730 ~days:7 ~day_span:730 in
  Alcotest.(check int) "recent lo" 723 lo;
  Alcotest.(check bool) "recent open top" true (hi = max_int);
  let lo2, hi2 = Qg.old_time_range ~now:730 ~days:7 ~day_span:730 in
  Alcotest.(check int) "old lo" 0 lo2;
  Alcotest.(check int) "old hi" 7 hi2

let () =
  Alcotest.run "lsm_workload"
    [
      ( "tweet",
        [
          Alcotest.test_case "sizes + domains" `Quick test_tweet_sizes;
          Alcotest.test_case "monotone time" `Quick test_tweet_monotone_time;
          Alcotest.test_case "record bytes override" `Quick
            test_tweet_record_bytes_override;
          Alcotest.test_case "sequential ids" `Quick test_sequential_ids;
        ] );
      ( "streams",
        [
          Alcotest.test_case "duplicate ratio" `Quick
            test_insert_stream_duplicate_ratio;
          Alcotest.test_case "update ratio" `Quick test_upsert_stream_update_ratio;
          Alcotest.test_case "zipf recent skew" `Quick test_zipf_updates_skew_recent;
        ] );
      ( "queries",
        [
          Alcotest.test_case "selectivity" `Quick test_query_selectivity;
          Alcotest.test_case "time ranges" `Quick test_time_ranges;
        ] );
    ]
