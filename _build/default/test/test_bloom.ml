(* Tests for Lsm_bloom: hashing, standard and blocked Bloom filters. *)

open Lsm_bloom

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Hashing *)

let test_mix64_bijective_ish () =
  (* Distinct small ints must hash to distinct values (mix64 is a
     bijection on 64 bits, so collisions here would be a bug). *)
  let seen = Hashtbl.create 1000 in
  for i = 0 to 10_000 do
    let h = Hashing.mix64 i in
    Alcotest.(check bool) "no collision" false (Hashtbl.mem seen h);
    Hashtbl.add seen h ()
  done

let test_hash_string_differs () =
  Alcotest.(check bool) "different strings differ" true
    (Hashing.hash_string "hello" <> Hashing.hash_string "hellp");
  Alcotest.(check int) "stable" (Hashing.hash_string "x") (Hashing.hash_string "x")

let test_combine_order_sensitive () =
  Alcotest.(check bool) "order matters" true
    (Hashing.combine 1 2 <> Hashing.combine 2 1)

(* ------------------------------------------------------------------ *)
(* Standard Bloom filter *)

let prop_no_false_negatives =
  qtest "standard: no false negatives"
    QCheck2.Gen.(list_size (int_range 0 500) (int_range 0 1_000_000))
    (fun keys ->
      let f = Bloom.create ~expected:(max 1 (List.length keys)) ~fpr:0.01 in
      List.iter (fun k -> Bloom.add f (Hashing.mix64 k)) keys;
      List.for_all (fun k -> Bloom.contains f (Hashing.mix64 k)) keys)

let test_fpr_near_target () =
  let n = 20_000 in
  let f = Bloom.create ~expected:n ~fpr:0.01 in
  for i = 0 to n - 1 do
    Bloom.add f (Hashing.mix64 i)
  done;
  let fp = ref 0 in
  let probes = 50_000 in
  for i = 0 to probes - 1 do
    if Bloom.contains f (Hashing.mix64 (1_000_000 + i)) then incr fp
  done;
  let rate = Float.of_int !fp /. Float.of_int probes in
  Alcotest.(check bool)
    (Printf.sprintf "fpr %.4f in [0, 0.03]" rate)
    true (rate < 0.03)

let test_bloom_params () =
  let m, k = Bloom.params ~expected:1000 ~fpr:0.01 in
  (* ~9.6 bits/key, k ~= 7 *)
  Alcotest.(check bool) "m in range" true (m > 9_000 && m < 10_500);
  Alcotest.(check int) "k" 7 k

let test_bloom_probe_costs () =
  let f = Bloom.create ~expected:100 ~fpr:0.01 in
  Alcotest.(check int) "k lines" (Bloom.k f) (Bloom.cache_lines_per_probe f);
  Alcotest.(check int) "2 hashes" 2 (Bloom.hashes_per_probe f)

(* ------------------------------------------------------------------ *)
(* Blocked Bloom filter *)

let prop_blocked_no_false_negatives =
  qtest "blocked: no false negatives"
    QCheck2.Gen.(list_size (int_range 0 500) (int_range 0 1_000_000))
    (fun keys ->
      let f =
        Blocked_bloom.create ~expected:(max 1 (List.length keys)) ~fpr:0.01
      in
      List.iter (fun k -> Blocked_bloom.add f (Hashing.mix64 k)) keys;
      List.for_all (fun k -> Blocked_bloom.contains f (Hashing.mix64 k)) keys)

let test_blocked_fpr_reasonable () =
  let n = 20_000 in
  let f = Blocked_bloom.create ~expected:n ~fpr:0.01 in
  for i = 0 to n - 1 do
    Blocked_bloom.add f (Hashing.mix64 i)
  done;
  let fp = ref 0 in
  let probes = 50_000 in
  for i = 0 to probes - 1 do
    if Blocked_bloom.contains f (Hashing.mix64 (1_000_000 + i)) then incr fp
  done;
  let rate = Float.of_int !fp /. Float.of_int probes in
  (* Blocked filters trade some FPR for locality; allow slack. *)
  Alcotest.(check bool)
    (Printf.sprintf "fpr %.4f < 0.05" rate)
    true (rate < 0.05)

let test_blocked_single_cache_line () =
  let f = Blocked_bloom.create ~expected:100 ~fpr:0.01 in
  Alcotest.(check int) "1 line" 1 (Blocked_bloom.cache_lines_per_probe f)

let test_blocked_extra_bit_per_key () =
  let n = 10_000 in
  let std = Bloom.create ~expected:n ~fpr:0.01 in
  let blk = Blocked_bloom.create ~expected:n ~fpr:0.01 in
  let extra_bits = (Blocked_bloom.bit_count blk - Bloom.bit_count std) in
  (* At least one extra bit per key (plus block rounding). *)
  Alcotest.(check bool) "extra bits" true (extra_bits >= n)

(* ------------------------------------------------------------------ *)
(* Unified filter interface *)

let test_filter_dispatch () =
  List.iter
    (fun kind ->
      let f = Filter.create kind ~expected:100 ~fpr:0.01 in
      Filter.add f (Hashing.mix64 42);
      Alcotest.(check bool) "present" true (Filter.contains f (Hashing.mix64 42));
      Alcotest.(check bool) "lines >= 1" true (Filter.cache_lines_per_probe f >= 1))
    [ `Standard; `Blocked ];
  let std = Filter.create `Standard ~expected:100 ~fpr:0.01 in
  let blk = Filter.create `Blocked ~expected:100 ~fpr:0.01 in
  Alcotest.(check bool) "blocked cheaper probes" true
    (Filter.cache_lines_per_probe blk < Filter.cache_lines_per_probe std)

let () =
  Alcotest.run "lsm_bloom"
    [
      ( "hashing",
        [
          Alcotest.test_case "mix64 injective on range" `Quick
            test_mix64_bijective_ish;
          Alcotest.test_case "hash_string" `Quick test_hash_string_differs;
          Alcotest.test_case "combine order" `Quick test_combine_order_sensitive;
        ] );
      ( "standard",
        [
          prop_no_false_negatives;
          Alcotest.test_case "fpr near target" `Quick test_fpr_near_target;
          Alcotest.test_case "params" `Quick test_bloom_params;
          Alcotest.test_case "probe costs" `Quick test_bloom_probe_costs;
        ] );
      ( "blocked",
        [
          prop_blocked_no_false_negatives;
          Alcotest.test_case "fpr reasonable" `Quick test_blocked_fpr_reasonable;
          Alcotest.test_case "one cache line" `Quick test_blocked_single_cache_line;
          Alcotest.test_case "extra bit per key" `Quick
            test_blocked_extra_bit_per_key;
        ] );
      ("filter", [ Alcotest.test_case "dispatch" `Quick test_filter_dispatch ]);
    ]
