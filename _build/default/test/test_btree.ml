(* Tests for Lsm_btree: the mutable in-memory B+-tree and the immutable
   disk B+-tree (stateless find, stateful cursor, scans). *)

module Mbt = Lsm_btree.Mem_btree.Make (Lsm_util.Keys.Int_key)
module Dbt = Lsm_btree.Disk_btree.Make (Lsm_util.Keys.Int_key)
module IntMap = Map.Make (Int)

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Mem_btree *)

let test_mbt_empty () =
  let t = Mbt.create () in
  Alcotest.(check int) "len" 0 (Mbt.length t);
  Alcotest.(check bool) "empty" true (Mbt.is_empty t);
  Alcotest.(check (option int)) "find" None (Mbt.find t 5);
  Alcotest.(check (option (pair int int))) "min" None (Mbt.min_binding t)

let test_mbt_put_find () =
  let t = Mbt.create () in
  Alcotest.(check (option int)) "fresh" None (Mbt.put t 1 10);
  Alcotest.(check (option int)) "replace" (Some 10) (Mbt.put t 1 11);
  Alcotest.(check (option int)) "find" (Some 11) (Mbt.find t 1);
  Alcotest.(check int) "len" 1 (Mbt.length t)

let test_mbt_many_sorted_iteration () =
  let t = Mbt.create () in
  let rng = Lsm_util.Rng.create 1 in
  let keys = Array.init 2000 (fun _ -> Lsm_util.Rng.int rng 1_000_000) in
  Array.iter (fun k -> ignore (Mbt.put t k (k * 2))) keys;
  let sorted = List.sort_uniq compare (Array.to_list keys) in
  Alcotest.(check int) "distinct count" (List.length sorted) (Mbt.length t);
  let out = ref [] in
  Mbt.iter t (fun k v ->
      Alcotest.(check int) "value" (k * 2) v;
      out := k :: !out);
  Alcotest.(check (list int)) "in order" sorted (List.rev !out)

let prop_mbt_matches_map =
  qtest ~count:100 "mem btree = Map model"
    QCheck2.Gen.(list_size (int_range 0 500) (pair (int_range 0 100) (int_range 0 1000)))
    (fun ops ->
      let t = Mbt.create () in
      let m = ref IntMap.empty in
      List.iter
        (fun (k, v) ->
          let prev = Mbt.put t k v in
          let mprev = IntMap.find_opt k !m in
          m := IntMap.add k v !m;
          assert (prev = mprev))
        ops;
      IntMap.cardinal !m = Mbt.length t
      && IntMap.for_all (fun k v -> Mbt.find t k = Some v) !m
      && Mbt.to_sorted_array t = Array.of_list (IntMap.bindings !m))

let test_mbt_iter_from () =
  let t = Mbt.create () in
  List.iter (fun k -> ignore (Mbt.put t k k)) [ 10; 20; 30; 40; 50 ];
  let out = ref [] in
  Mbt.iter_from t 25 (fun k _ ->
      out := k :: !out;
      k < 40);
  Alcotest.(check (list int)) "from 25 to 40" [ 30; 40 ] (List.rev !out)

let test_mbt_min_max () =
  let t = Mbt.create () in
  List.iter (fun k -> ignore (Mbt.put t k (-k))) [ 5; 1; 9; 3 ];
  Alcotest.(check (option (pair int int))) "min" (Some (1, -1)) (Mbt.min_binding t);
  Alcotest.(check (option (pair int int))) "max" (Some (9, -9)) (Mbt.max_binding t)

let test_mbt_comparison_counter () =
  let t = Mbt.create () in
  for i = 0 to 100 do
    ignore (Mbt.put t i i)
  done;
  ignore (Mbt.take_comparisons t);
  ignore (Mbt.find t 50);
  let c = Mbt.take_comparisons t in
  Alcotest.(check bool) "counted some" true (c > 0);
  Alcotest.(check int) "drained" 0 (Mbt.take_comparisons t)

(* ------------------------------------------------------------------ *)
(* Disk_btree *)

let mk_env () =
  (* Small pages so trees have many leaves even in small tests. *)
  let device =
    Lsm_sim.Device.custom ~name:"test" ~page_size:256 ~seek_us:1000.0
      ~read_us_per_page:100.0 ~write_us_per_page:100.0
  in
  Lsm_sim.Env.create ~cache_bytes:(256 * 16) device

(* Rows are (key, payload) pairs, 32 bytes each -> 8 rows per 256B page. *)
let build env keys =
  Dbt.build env
    ~key_of:(fun (k, _) -> k)
    ~size_of:(fun _ -> 32)
    (Array.map (fun k -> (k, k * 7)) keys)

let test_dbt_build_pages () =
  let env = mk_env () in
  let t = build env (Array.init 100 (fun i -> i * 2)) in
  Alcotest.(check int) "rows" 100 (Dbt.nrows t);
  (* 100 rows * 32B / 256B = 12.5 -> 13 leaves *)
  Alcotest.(check int) "leaf pages" 13 (Dbt.leaf_pages t);
  Alcotest.(check (option int)) "min" (Some 0) (Dbt.min_key t);
  Alcotest.(check (option int)) "max" (Some 198) (Dbt.max_key t)

let test_dbt_find () =
  let env = mk_env () in
  let t = build env (Array.init 100 (fun i -> i * 2)) in
  (match Dbt.find env t 42 with
  | Some (pos, (k, v)) ->
      Alcotest.(check int) "pos" 21 pos;
      Alcotest.(check int) "key" 42 k;
      Alcotest.(check int) "val" (42 * 7) v
  | None -> Alcotest.fail "expected hit");
  Alcotest.(check bool) "miss odd" true (Dbt.find env t 43 = None);
  Alcotest.(check bool) "miss below" true (Dbt.find env t (-1) = None);
  Alcotest.(check bool) "miss above" true (Dbt.find env t 1000 = None)

let test_dbt_empty () =
  let env = mk_env () in
  let t = build env [||] in
  Alcotest.(check bool) "empty find" true (Dbt.find env t 1 = None);
  Alcotest.(check int) "no pages" 0 (Dbt.leaf_pages t);
  let s = Dbt.Scan.seek env t None in
  Alcotest.(check bool) "no next" true (Dbt.Scan.next env s = None)

let prop_dbt_find_matches_model =
  qtest ~count:100 "disk btree find = model"
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 300) (int_range 0 500))
        (list_size (int_range 1 50) (int_range (-10) 510)))
    (fun (keys, queries) ->
      let env = mk_env () in
      let keys = List.sort_uniq compare keys |> Array.of_list in
      let t = build env keys in
      let model = IntMap.of_seq (Array.to_seq (Array.map (fun k -> (k, k * 7)) keys)) in
      List.for_all
        (fun q ->
          let expect = IntMap.find_opt q model in
          let got = Option.map (fun (_, (_, v)) -> v) (Dbt.find env t q) in
          got = expect)
        queries)

let prop_dbt_cursor_matches_find =
  qtest ~count:100 "stateful cursor = stateless find (any query order)"
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 300) (int_range 0 500))
        (list_size (int_range 1 60) (int_range (-10) 510)))
    (fun (keys, queries) ->
      let env = mk_env () in
      let keys = List.sort_uniq compare keys |> Array.of_list in
      let t = build env keys in
      let c = Dbt.Cursor.create t in
      List.for_all
        (fun q ->
          let a = Option.map snd (Dbt.find env t q) in
          let b = Option.map snd (Dbt.Cursor.find env c q) in
          a = b)
        queries)

let test_dbt_cursor_cheaper_for_sorted_batch () =
  let env = mk_env () in
  let t = build env (Array.init 5000 (fun i -> i)) in
  (* Warm everything so only CPU differs. *)
  for i = 0 to 4999 do
    ignore (Dbt.find env t i)
  done;
  let st = Lsm_sim.Env.stats env in
  let before = st.Lsm_sim.Io_stats.comparisons in
  for i = 1000 to 1999 do
    ignore (Dbt.find env t i)
  done;
  let stateless = st.Lsm_sim.Io_stats.comparisons - before in
  let c = Dbt.Cursor.create t in
  ignore (Dbt.Cursor.find env c 999);
  let before = st.Lsm_sim.Io_stats.comparisons in
  for i = 1000 to 1999 do
    ignore (Dbt.Cursor.find env c i)
  done;
  let stateful = st.Lsm_sim.Io_stats.comparisons - before in
  Alcotest.(check bool)
    (Printf.sprintf "stateful %d < stateless %d" stateful stateless)
    true
    (stateful * 2 < stateless)

let test_dbt_scan_full_and_range () =
  let env = mk_env () in
  let t = build env (Array.init 100 (fun i -> i * 3)) in
  let s = Dbt.Scan.seek env t None in
  let n = ref 0 and last = ref (-1) in
  let rec drain () =
    match Dbt.Scan.next env s with
    | Some (i, (k, _)) ->
        Alcotest.(check int) "index order" !n i;
        Alcotest.(check bool) "ascending" true (k > !last);
        last := k;
        incr n;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check int) "all rows" 100 !n;
  (* Seek into the middle. *)
  let s = Dbt.Scan.seek env t (Some 50) in
  (match Dbt.Scan.next env s with
  | Some (_, (k, _)) -> Alcotest.(check int) "first >= 50" 51 k
  | None -> Alcotest.fail "expected rows");
  Alcotest.(check (option int)) "peek" (Some 54) (Dbt.Scan.peek_key s)

let test_dbt_scan_sequential_io () =
  let env = mk_env () in
  let t = build env (Array.init 800 (fun i -> i)) in
  (* Evict everything (cache is 16 pages; tree is 100 leaves). *)
  Lsm_sim.Buffer_cache.clear (Lsm_sim.Env.cache env);
  Lsm_sim.Env.reset_measurement env;
  let s = Dbt.Scan.seek env t None in
  let rec drain () =
    match Dbt.Scan.next env s with Some _ -> drain () | None -> ()
  in
  drain ();
  let st = Lsm_sim.Env.stats env in
  Alcotest.(check int) "one positioning" 1 st.Lsm_sim.Io_stats.rand_reads;
  Alcotest.(check bool) "many sequential" true (st.Lsm_sim.Io_stats.seq_reads > 90)

let test_dbt_duplicate_keys () =
  (* Duplicate keys are allowed (secondary index rows before dedup);
     [find] returns the first. *)
  let env = mk_env () in
  let rows = [| (1, 100); (2, 200); (2, 201); (3, 300) |] in
  let t =
    Dbt.build env ~key_of:fst ~size_of:(fun _ -> 32) rows
  in
  (match Dbt.find env t 2 with
  | Some (pos, (_, v)) ->
      Alcotest.(check int) "first dup pos" 1 pos;
      Alcotest.(check int) "first dup val" 200 v
  | None -> Alcotest.fail "hit expected");
  Alcotest.(check int) "lower_bound" 1 (Dbt.lower_bound_row env t 2)

let () =
  Alcotest.run "lsm_btree"
    [
      ( "mem",
        [
          Alcotest.test_case "empty" `Quick test_mbt_empty;
          Alcotest.test_case "put/find" `Quick test_mbt_put_find;
          Alcotest.test_case "sorted iteration" `Quick
            test_mbt_many_sorted_iteration;
          prop_mbt_matches_map;
          Alcotest.test_case "iter_from" `Quick test_mbt_iter_from;
          Alcotest.test_case "min/max" `Quick test_mbt_min_max;
          Alcotest.test_case "comparison counter" `Quick
            test_mbt_comparison_counter;
        ] );
      ( "disk",
        [
          Alcotest.test_case "build pages" `Quick test_dbt_build_pages;
          Alcotest.test_case "find" `Quick test_dbt_find;
          Alcotest.test_case "empty" `Quick test_dbt_empty;
          prop_dbt_find_matches_model;
          prop_dbt_cursor_matches_find;
          Alcotest.test_case "cursor cheaper on sorted batch" `Quick
            test_dbt_cursor_cheaper_for_sorted_batch;
          Alcotest.test_case "scan full + range" `Quick test_dbt_scan_full_and_range;
          Alcotest.test_case "scan sequential io" `Quick test_dbt_scan_sequential_io;
          Alcotest.test_case "duplicate keys" `Quick test_dbt_duplicate_keys;
        ] );
    ]
