(* Queries interleaved with ingestion: the paper evaluates queries on
   quiescent datasets, but a storage engine must answer correctly at any
   moment — mid-memory-component, right after a flush, between merges,
   with repair half-done.  This property fires queries at random points
   *inside* the op stream and checks each one against the model at that
   instant, for every strategy. *)

module D = Lsm_core.Dataset.Make (Lsm_workload.Tweet.Record)
module Strategy = Lsm_core.Strategy
module Tweet = Lsm_workload.Tweet
module IntMap = Map.Make (Int)

let qtest ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let mk_env () =
  let device =
    Lsm_sim.Device.custom ~name:"test" ~page_size:1024 ~seek_us:1000.0
      ~read_us_per_page:100.0 ~write_us_per_page:100.0
  in
  Lsm_sim.Env.create ~cache_bytes:(1024 * 128) device

let tw ?(user = 0) ?(at = 1) id =
  { Tweet.id; user_id = user; location = 0; created_at = at; msg_len = 68 }

type op =
  | Ins of int * int
  | Ups of int * int
  | Del of int
  | QSec of int * int
  | QTime of int * int
  | QPoint of int
  | Repair

let op_gen =
  QCheck2.Gen.(
    frequency
      [
        (3, map2 (fun k u -> Ins (k, u)) (int_range 1 35) (int_range 0 80));
        (5, map2 (fun k u -> Ups (k, u)) (int_range 1 35) (int_range 0 80));
        (1, map (fun k -> Del k) (int_range 1 35));
        (3, map2 (fun a b -> QSec (min a b, max a b)) (int_range 0 80) (int_range 0 80));
        (2, map2 (fun a b -> QTime (min a b, max a b)) (int_range 0 400) (int_range 0 400));
        (2, map (fun k -> QPoint k) (int_range 1 35));
        (1, return Repair);
      ])

let strategies =
  [
    (Strategy.eager, (`Assume_valid : D.validation_mode));
    (Strategy.validation, `Timestamp);
    (Strategy.validation_no_repair, `Direct);
    (Strategy.validation_bloom_opt, `Timestamp);
    (Strategy.mutable_bitmap, `Timestamp);
    (Strategy.deleted_key_btree, `Timestamp);
  ]

let prop_queries_correct_mid_stream =
  qtest ~count:60 "queries correct at any point in the op stream"
    QCheck2.Gen.(list_size (int_range 5 180) op_gen)
    (fun ops ->
      List.for_all
        (fun (strategy, mode) ->
          let env = mk_env () in
          let d =
            D.create ~filter_key:Tweet.created_at
              ~secondaries:[ Lsm_core.Record.secondary "user_id" Tweet.user_id ]
              env
              { D.default_config with strategy; mem_budget = 2048 }
          in
          let model = ref IntMap.empty in
          let at = ref 0 in
          List.for_all
            (fun op ->
              incr at;
              match op with
              | Ins (k, u) ->
                  let r = tw ~user:u ~at:!at k in
                  let res = D.insert d r in
                  let expected =
                    if IntMap.mem k !model then `Duplicate else `Inserted
                  in
                  if res = `Inserted then model := IntMap.add k r !model;
                  res = expected
              | Ups (k, u) ->
                  let r = tw ~user:u ~at:!at k in
                  D.upsert d r;
                  model := IntMap.add k r !model;
                  true
              | Del k ->
                  D.delete d ~pk:k;
                  model := IntMap.remove k !model;
                  true
              | QSec (lo, hi) ->
                  let got =
                    D.query_secondary d ~sec:"user_id" ~lo ~hi ~mode ()
                    |> List.map Tweet.primary_key |> List.sort compare
                  in
                  let want =
                    IntMap.fold
                      (fun k r acc ->
                        if r.Tweet.user_id >= lo && r.Tweet.user_id <= hi then
                          k :: acc
                        else acc)
                      !model []
                    |> List.sort compare
                  in
                  got = want
              | QTime (tlo, thi) ->
                  let got = D.query_time_range d ~tlo ~thi ~f:ignore in
                  let want =
                    IntMap.fold
                      (fun _ r acc ->
                        if r.Tweet.created_at >= tlo && r.Tweet.created_at <= thi
                        then acc + 1
                        else acc)
                      !model 0
                  in
                  got = want
              | QPoint k -> (
                  match (D.point_query d k, IntMap.find_opt k !model) with
                  | Some r, Some r' -> r.Tweet.user_id = r'.Tweet.user_id
                  | None, None -> true
                  | _ -> false)
              | Repair ->
                  D.standalone_repair d;
                  true)
            ops)
        strategies)

let () =
  Alcotest.run "lsm_interleaved"
    [ ("mid-stream", [ prop_queries_correct_mid_stream ]) ]
