(* Smoke + shape tests for the experiment harness: every registry entry
   runs at a micro scale, produces rectangular tables, and the headline
   orderings of the paper hold. *)

module H = Lsm_harness

let micro = { H.Scale.name = "micro"; records = 6_000 }

let parse_f s = try float_of_string (String.trim s) with _ -> nan

let rectangular (t : H.Report.t) =
  let cols = List.length t.H.Report.header in
  List.for_all (fun r -> List.length r = cols) t.H.Report.rows

(* Every experiment runs and yields well-formed tables. *)
let test_registry_runs () =
  List.iter
    (fun e ->
      let tables = e.H.Registry.run micro in
      Alcotest.(check bool)
        (e.H.Registry.id ^ " yields tables")
        true
        (List.length tables > 0);
      List.iter
        (fun t ->
          Alcotest.(check bool)
            (t.H.Report.id ^ " rectangular")
            true (rectangular t);
          Alcotest.(check bool)
            (t.H.Report.id ^ " has rows")
            true
            (List.length t.H.Report.rows > 0))
        tables)
    H.Registry.all

let run_one id =
  match H.Registry.find id with
  | Some e -> e.H.Registry.run micro
  | None -> Alcotest.fail ("missing experiment " ^ id)

(* Fig 14's headline: eager ingests slowest; validation-no-repair fastest;
   mutable-bitmap strictly better than eager. *)
let test_fig14_ordering () =
  match run_one "fig14" with
  | [ t ] ->
      let row name =
        match
          List.find_opt (fun r -> List.hd r = name) t.H.Report.rows
        with
        | Some (_ :: cells) -> List.map parse_f cells
        | _ -> Alcotest.fail ("row " ^ name)
      in
      let eager = row "eager"
      and vnr = row "validation (no repair)"
      and v = row "validation"
      and mb = row "mutable-bitmap" in
      List.iteri
        (fun i _ ->
          let e = List.nth eager i
          and x = List.nth vnr i
          and vv = List.nth v i
          and m = List.nth mb i in
          Alcotest.(check bool) "no-repair fastest" true (x >= vv);
          Alcotest.(check bool) "validation > eager" true (vv > e);
          Alcotest.(check bool) "mutable-bitmap > eager" true (m > e))
        eager
  | _ -> Alcotest.fail "fig14 should be one table"

(* Fig 13: with the primary key index, insert ingestion is faster on both
   devices and at both duplicate ratios. *)
let test_fig13_pk_index_helps () =
  match run_one "fig13" with
  | [ t ] ->
      let tput row = parse_f (List.nth row 4) in
      let find device uniq dup =
        match
          List.find_opt
            (fun r ->
              List.nth r 0 = device && List.nth r 1 = uniq && List.nth r 2 = dup)
            t.H.Report.rows
        with
        | Some r -> tput r
        | None -> Alcotest.fail "missing fig13 row"
      in
      List.iter
        (fun device ->
          List.iter
            (fun dup ->
              let with_pk = find device "pk-idx" dup
              and without = find device "no-pk-idx" dup in
              Alcotest.(check bool)
                (Printf.sprintf "%s %s: pk-idx %f > %f" device dup with_pk without)
                true (with_pk > without))
            [ "0%"; "50%" ])
        [ "hdd"; "ssd" ]
  | _ -> Alcotest.fail "fig13 one table"

(* Fig 12b: batching beats naive at 10%+ selectivity. *)
let test_fig12b_batching_helps () =
  match run_one "fig12b" with
  | [ t ] ->
      let row =
        List.find (fun r -> List.hd r = "10%") t.H.Report.rows
      in
      let naive = parse_f (List.nth row 1) and batch = parse_f (List.nth row 2) in
      Alcotest.(check bool)
        (Printf.sprintf "batch %.3f < naive %.3f" batch naive)
        true (batch < naive)
  | _ -> Alcotest.fail "fig12b one table"

(* Fig 19 old-data panel: validation has no pruning (flat, max cost);
   mutable-bitmap prunes. *)
let test_fig19_pruning () =
  match run_one "fig19" with
  | [ _; old0; _ ] ->
      let row name =
        List.find (fun r -> List.hd r = name) old0.H.Report.rows
      in
      let v1 = parse_f (List.nth (row "validation") 1) in
      let m1 = parse_f (List.nth (row "mutable-bitmap") 1) in
      Alcotest.(check bool)
        (Printf.sprintf "mutable-bitmap %.3f << validation %.3f" m1 v1)
        true
        (m1 *. 3.0 < v1)
  | _ -> Alcotest.fail "fig19 three panels"

(* Fig 23: side-file within 30% of baseline; lock above side-file. *)
let test_fig23_ordering () =
  match run_one "fig23" with
  | [ a; _; _ ] ->
      List.iter
        (fun r ->
          let base = parse_f (List.nth r 1)
          and side = parse_f (List.nth r 2)
          and lock = parse_f (List.nth r 3) in
          Alcotest.(check bool) "side ~ base" true (side < base *. 1.3);
          Alcotest.(check bool) "lock > side" true (lock > side))
        a.H.Report.rows
  | _ -> Alcotest.fail "fig23 three panels"

(* Fig 20: secondary repair beats DELI-style primary repair at the last
   checkpoint for both update ratios. *)
let test_fig20_secondary_wins () =
  match run_one "fig20" with
  | panels ->
      List.iter
        (fun (t : H.Report.t) ->
          match List.rev t.H.Report.rows with
          | last :: _ ->
              let primary = parse_f (List.nth last 1) in
              let secondary = parse_f (List.nth last 3) in
              Alcotest.(check bool)
                (Printf.sprintf "%s: secondary %.3f < primary %.3f"
                   t.H.Report.id secondary primary)
                true (secondary < primary)
          | [] -> Alcotest.fail "empty panel")
        panels

(* Scale-out ablation: 4 partitions at least 2.5x faster than 1. *)
let test_scaleout_ablation () =
  match run_one "abl-scaleout" with
  | [ t ] ->
      let wall n =
        parse_f
          (List.nth (List.find (fun r -> List.hd r = string_of_int n) t.H.Report.rows) 1)
      in
      Alcotest.(check bool) "speedup" true (wall 4 *. 2.5 < wall 1)
  | _ -> Alcotest.fail "one table"

let test_csv_roundtrip () =
  let t =
    H.Report.make ~id:"csv-test" ~title:"t" ~header:[ "a"; "b" ]
      [ [ "1"; "x,y" ]; [ "2"; "he said \"hi\"" ] ]
  in
  let csv = H.Report.to_csv t in
  Alcotest.(check string) "csv"
    "a,b\n1,\"x,y\"\n2,\"he said \"\"hi\"\"\"\n" csv;
  let dir = Filename.temp_file "lsmcsv" "" in
  Sys.remove dir;
  let path = H.Report.write_csv ~dir t in
  Alcotest.(check bool) "file written" true (Sys.file_exists path);
  let ic = open_in path in
  let n = in_channel_length ic in
  close_in ic;
  Alcotest.(check bool) "non-empty" true (n > 0)

let () =
  Alcotest.run "lsm_harness"
    [
      ( "registry",
        [ Alcotest.test_case "all experiments run" `Slow test_registry_runs ] );
      ( "shapes",
        [
          Alcotest.test_case "fig14 strategy ordering" `Quick test_fig14_ordering;
          Alcotest.test_case "fig13 pk index helps" `Quick
            test_fig13_pk_index_helps;
          Alcotest.test_case "fig12b batching helps" `Quick
            test_fig12b_batching_helps;
          Alcotest.test_case "fig19 bitmap pruning" `Quick test_fig19_pruning;
          Alcotest.test_case "fig23 cc ordering" `Quick test_fig23_ordering;
          Alcotest.test_case "fig20 secondary repair wins" `Quick
            test_fig20_secondary_wins;
          Alcotest.test_case "scale-out speedup" `Quick test_scaleout_ablation;
          Alcotest.test_case "csv round-trip" `Quick test_csv_roundtrip;
        ] );
    ]
