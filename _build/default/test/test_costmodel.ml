(* Properties of the simulated cost model itself: the clock only moves
   forward, caches respect capacity, costs decompose as documented, and
   build-time write charges equal the component's page footprint.  The
   experiments' credibility rests on these invariants. *)

open Lsm_sim

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let device =
  Device.custom ~name:"t" ~page_size:512 ~seek_us:1000.0 ~read_us_per_page:100.0
    ~write_us_per_page:100.0

(* Random I/O scripts against one environment. *)
type io = Read of int | Append of int | ClearCache

let io_gen =
  QCheck2.Gen.(
    frequency
      [
        (6, map (fun p -> Read p) (int_range 0 199));
        (2, map (fun n -> Append n) (int_range 1 20));
        (1, return ClearCache);
      ])

let run_script cache_pages ops =
  let env = Env.create ~cache_bytes:(cache_pages * 512) device in
  let f = Sfile.create env in
  Sfile.append_pages env f 200;
  List.iter
    (fun op ->
      match op with
      | Read p -> Sfile.read_page env f p
      | Append n -> Sfile.append_pages env f n
      | ClearCache -> Buffer_cache.clear (Env.cache env))
    ops;
  env

let prop_clock_monotone =
  qtest "clock is non-decreasing across any script"
    QCheck2.Gen.(list_size (int_range 0 100) io_gen)
    (fun ops ->
      let env = Env.create ~cache_bytes:(8 * 512) device in
      let f = Sfile.create env in
      Sfile.append_pages env f 200;
      let last = ref (Env.now_us env) in
      List.for_all
        (fun op ->
          (match op with
          | Read p -> Sfile.read_page env f p
          | Append n -> Sfile.append_pages env f n
          | ClearCache -> Buffer_cache.clear (Env.cache env));
          let now = Env.now_us env in
          let ok = now >= !last in
          last := now;
          ok)
        ops)

let prop_cache_capacity_respected =
  qtest "cache never exceeds capacity"
    QCheck2.Gen.(pair (int_range 1 32) (list_size (int_range 0 150) io_gen))
    (fun (cap, ops) ->
      let env = run_script cap ops in
      Buffer_cache.size (Env.cache env) <= cap)

let prop_counts_decompose =
  qtest "reads = hits-complement; seq + rand = pages_read"
    QCheck2.Gen.(list_size (int_range 0 150) io_gen)
    (fun ops ->
      let env = run_script 8 ops in
      let st = Env.stats env in
      st.Io_stats.seq_reads + st.Io_stats.rand_reads = st.Io_stats.pages_read
      && st.Io_stats.pages_read = st.Io_stats.cache_misses)

let prop_bigger_cache_never_slower =
  qtest ~count:60 "a bigger cache never increases simulated time"
    QCheck2.Gen.(list_size (int_range 0 150) io_gen)
    (fun ops ->
      (* Same script, two cache sizes; LRU on a single file is inclusive
         enough that more capacity cannot hurt. *)
      let t_small = Env.now_us (run_script 4 ops) in
      let t_big = Env.now_us (run_script 64 ops) in
      t_big <= t_small +. 1e-6)

let test_build_write_charges () =
  let env = Env.create ~cache_bytes:(64 * 512) device in
  let module Dbt = Lsm_btree.Disk_btree.Make (Lsm_util.Keys.Int_key) in
  Lsm_sim.Env.reset_measurement env;
  let t =
    Dbt.build env ~key_of:Fun.id ~size_of:(fun _ -> 64)
      (Array.init 100 (fun i -> i))
  in
  let st = Env.stats env in
  Alcotest.(check int) "writes = leaf + interior pages"
    (Dbt.leaf_pages t + Dbt.interior_pages t)
    st.Io_stats.pages_written

let test_txn_quiescence_guards () =
  let module D = Lsm_core.Dataset.Make (Lsm_workload.Tweet.Record) in
  let module T = Lsm_core.Txn_dataset.Make (Lsm_workload.Tweet.Record) (D) in
  let env = Env.create ~cache_bytes:(128 * 1024) device in
  let d =
    D.create ~secondaries:[] env
      { D.default_config with strategy = Lsm_core.Strategy.mutable_bitmap }
  in
  let t = T.create d in
  let txn = T.begin_txn t in
  T.upsert t txn
    { Lsm_workload.Tweet.id = 1; user_id = 1; location = 0; created_at = 1; msg_len = 10 };
  Alcotest.check_raises "flush refused"
    (Invalid_argument "Txn_dataset.flush: live transactions") (fun () ->
      T.flush t);
  Alcotest.check_raises "checkpoint refused"
    (Invalid_argument "Txn_dataset.checkpoint: live transactions") (fun () ->
      T.checkpoint t);
  T.commit t txn;
  T.flush t (* fine once quiescent *)

let () =
  Alcotest.run "lsm_costmodel"
    [
      ( "invariants",
        [
          prop_clock_monotone;
          prop_cache_capacity_respected;
          prop_counts_decompose;
          prop_bigger_cache_never_slower;
          Alcotest.test_case "build write charges" `Quick test_build_write_charges;
          Alcotest.test_case "txn quiescence guards" `Quick
            test_txn_quiescence_guards;
        ] );
    ]
