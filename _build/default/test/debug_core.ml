(* Ad-hoc reproducer: random op streams vs model, printing the first
   failure compactly.  Not part of the test suite. *)

module D = Lsm_core.Dataset.Make (Lsm_workload.Tweet.Record)
module Strategy = Lsm_core.Strategy
module Tweet = Lsm_workload.Tweet
module IntMap = Map.Make (Int)

let mk_env () =
  let device =
    Lsm_sim.Device.custom ~name:"test" ~page_size:1024 ~seek_us:1000.0
      ~read_us_per_page:100.0 ~write_us_per_page:100.0
  in
  Lsm_sim.Env.create ~cache_bytes:(1024 * 128) device

let secondaries = [ Lsm_core.Record.secondary "user_id" Tweet.user_id ]

let tw ?(user = 0) ?(at = 0) id =
  { Tweet.id; user_id = user; location = 0; created_at = at; msg_len = 100 }

type op = Ins of int * int | Ups of int * int | Del of int

let pp_op = function
  | Ins (k, u) -> Printf.sprintf "Ins(%d,u%d)" k u
  | Ups (k, u) -> Printf.sprintf "Ups(%d,u%d)" k u
  | Del k -> Printf.sprintf "Del(%d)" k

let run_model ops =
  List.fold_left
    (fun m op ->
      match op with
      | Ins (k, u) -> if IntMap.mem k m then m else IntMap.add k u m
      | Ups (k, u) -> IntMap.add k u m
      | Del k -> IntMap.remove k m)
    IntMap.empty ops

let strategies =
  [
    (Strategy.eager, [ `Assume_valid; `Direct; `Timestamp ]);
    (Strategy.validation, [ `Direct; `Timestamp ]);
    (Strategy.validation_no_repair, [ `Direct; `Timestamp ]);
    (Strategy.validation_bloom_opt, [ `Direct; `Timestamp ]);
    (Strategy.mutable_bitmap, [ `Direct; `Timestamp ]);
    (Strategy.deleted_key_btree, [ `Timestamp ]);
  ]

let mode_name = function
  | `Assume_valid -> "assume"
  | `Direct -> "direct"
  | `Timestamp -> "ts"

let check ops =
  let model = run_model ops in
  let expected =
    IntMap.fold (fun k u acc -> if u >= 0 && u <= 100 then k :: acc else acc) model []
    |> List.sort compare
  in
  let failures = ref [] in
  List.iter
    (fun (strategy, modes) ->
      let env = mk_env () in
      let d =
        D.create ~filter_key:Tweet.created_at ~secondaries env
          { D.default_config with strategy; mem_budget = 2048 }
      in
      List.iter
        (fun op ->
          match op with
          | Ins (k, u) -> ignore (D.insert d (tw ~user:u ~at:k k))
          | Ups (k, u) -> D.upsert d (tw ~user:u ~at:k k)
          | Del k -> D.delete d ~pk:k)
        ops;
      List.iter
        (fun mode ->
          let got =
            D.query_secondary d ~sec:"user_id" ~lo:0 ~hi:100 ~mode ()
            |> List.map Tweet.primary_key |> List.sort compare
          in
          if got <> expected then
            failures :=
              Printf.sprintf "%s/%s: got [%s] want [%s]" (Strategy.name strategy)
                (mode_name mode)
                (String.concat ";" (List.map string_of_int got))
                (String.concat ";" (List.map string_of_int expected))
              :: !failures)
        modes;
      (* point queries *)
      IntMap.iter
        (fun k u ->
          match D.point_query d k with
          | Some r when r.Tweet.user_id = u -> ()
          | Some r ->
              failures :=
                Printf.sprintf "%s: point %d got u%d want u%d"
                  (Strategy.name strategy) k r.Tweet.user_id u
                :: !failures
          | None ->
              failures :=
                Printf.sprintf "%s: point %d missing" (Strategy.name strategy) k
                :: !failures)
        model)
    strategies;
  !failures

let shrink ops =
  (* Greedy: try removing each op while still failing. *)
  let still_fails ops = check ops <> [] in
  let ops = ref ops in
  let changed = ref true in
  while !changed do
    changed := false;
    let n = List.length !ops in
    let i = ref 0 in
    while !i < n do
      let candidate = List.filteri (fun j _ -> j <> !i) !ops in
      if List.length candidate < List.length !ops && still_fails candidate then begin
        ops := candidate;
        changed := true;
        i := n (* restart *)
      end
      else incr i
    done
  done;
  !ops

let () =
  let rng = Lsm_util.Rng.create (int_of_string Sys.argv.(1)) in
  let gen_op () =
    match Lsm_util.Rng.int rng 10 with
    | 0 | 1 | 2 -> Ins (Lsm_util.Rng.int rng 40 + 1, Lsm_util.Rng.int rng 101)
    | 3 | 4 | 5 | 6 | 7 -> Ups (Lsm_util.Rng.int rng 40 + 1, Lsm_util.Rng.int rng 101)
    | _ -> Del (Lsm_util.Rng.int rng 40 + 1)
  in
  let found = ref false in
  let trial = ref 0 in
  while (not !found) && !trial < 500 do
    incr trial;
    let ops = List.init (20 + Lsm_util.Rng.int rng 130) (fun _ -> gen_op ()) in
    match check ops with
    | [] -> ()
    | _ ->
        found := true;
        let small = shrink ops in
        Printf.printf "trial %d, shrunk to %d ops:\n" !trial (List.length small);
        List.iter (fun op -> Printf.printf "  %s\n" (pp_op op)) small;
        List.iter (fun f -> Printf.printf "FAIL %s\n" f) (check small)
  done;
  if not !found then print_endline "no failure found"
