(* Multi-valued (keyword / inverted) secondary indexes: one record yields
   several (token, pk) entries.  Maintenance must anti-matter exactly the
   tokens a record loses on update, under every strategy. *)

(* A tiny document record: the token set is derived deterministically from
   a version field, so updates change it. *)
module Doc = struct
  type t = { id : int; version : int; at : int }

  let primary_key d = d.id
  let byte_size _ = 64
  let pp fmt d = Format.fprintf fmt "doc %d v%d" d.id d.version

  (* Tokens: three values derived from (id, version); collisions across
     docs are intended (shared vocabulary). *)
  let tokens d =
    [
      (d.id + d.version) mod 23;
      (d.id * 2 mod 23 + d.version) mod 23;
      d.version mod 23;
    ]
end

module D = Lsm_core.Dataset.Make (Doc)
module Strategy = Lsm_core.Strategy
module IntMap = Map.Make (Int)

let qtest ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let mk_env () =
  let device =
    Lsm_sim.Device.custom ~name:"test" ~page_size:1024 ~seek_us:1000.0
      ~read_us_per_page:100.0 ~write_us_per_page:100.0
  in
  Lsm_sim.Env.create ~cache_bytes:(1024 * 128) device

let mk_dataset ?(strategy = Strategy.eager) () =
  let env = mk_env () in
  D.create
    ~filter_key:(fun d -> d.Doc.at)
    ~secondaries:[ Lsm_core.Record.secondary_multi "tokens" Doc.tokens ]
    env
    { D.default_config with strategy; mem_budget = 2048 }

let doc ?(at = 1) id version = { Doc.id; version; at }

(* Model: docs by id; token query = docs whose token set contains any
   token in [lo, hi]. *)
let model_query m ~lo ~hi =
  IntMap.fold
    (fun id d acc ->
      if List.exists (fun t -> t >= lo && t <= hi) (Doc.tokens d) then id :: acc
      else acc)
    m []
  |> List.sort compare

let dedup_pks records =
  List.map Doc.primary_key records |> List.sort_uniq compare

let test_keyword_basics () =
  let d = mk_dataset () in
  D.upsert d (doc 1 0);
  (* doc 1 v0 tokens: (1, 2, 0) *)
  let hits = D.query_secondary d ~sec:"tokens" ~lo:2 ~hi:2 ~mode:`Assume_valid () in
  Alcotest.(check (list int)) "token 2 finds doc 1" [ 1 ] (dedup_pks hits);
  (* Update to v5: tokens become (6, 7, 5); token 2 must stop matching. *)
  D.upsert d (doc 1 5);
  let hits = D.query_secondary d ~sec:"tokens" ~lo:2 ~hi:2 ~mode:`Assume_valid () in
  Alcotest.(check (list int)) "old token gone" [] (dedup_pks hits);
  let hits = D.query_secondary d ~sec:"tokens" ~lo:7 ~hi:7 ~mode:`Assume_valid () in
  Alcotest.(check (list int)) "new token found" [ 1 ] (dedup_pks hits)

let test_kept_tokens_survive_update () =
  let d = mk_dataset () in
  (* id 0: v0 tokens (0,0,0) -> dedup {0}; v23 tokens (0,0,0) too. *)
  D.upsert d (doc 0 0);
  D.flush_now d;
  D.upsert d (doc 0 23);
  let hits = D.query_secondary d ~sec:"tokens" ~lo:0 ~hi:0 ~mode:`Assume_valid () in
  Alcotest.(check (list int)) "kept token still matches once" [ 0 ]
    (dedup_pks hits)

type op = Up of int * int | Del of int

let op_gen =
  QCheck2.Gen.(
    frequency
      [
        (6, map2 (fun k v -> Up (k, v)) (int_range 1 25) (int_range 0 40));
        (1, map (fun k -> Del k) (int_range 1 25));
      ])

let prop_keyword_queries_match_model =
  qtest "keyword index = model under all strategies"
    QCheck2.Gen.(
      pair (list_size (int_range 1 120) op_gen)
        (pair (int_range 0 22) (int_range 0 22)))
    (fun (ops, (b1, b2)) ->
      let lo = min b1 b2 and hi = max b1 b2 in
      let model =
        List.fold_left
          (fun (m, i) op ->
            match op with
            | Up (k, v) -> (IntMap.add k (doc ~at:i k v) m, i + 1)
            | Del k -> (IntMap.remove k m, i + 1))
          (IntMap.empty, 1) ops
        |> fst
      in
      let expected = model_query model ~lo ~hi in
      List.for_all
        (fun (strategy, mode) ->
          let d = mk_dataset ~strategy () in
          List.iteri
            (fun i op ->
              match op with
              | Up (k, v) -> D.upsert d (doc ~at:(i + 1) k v)
              | Del k -> D.delete d ~pk:k)
            ops;
          dedup_pks (D.query_secondary d ~sec:"tokens" ~lo ~hi ~mode ())
          = expected)
        [
          (Strategy.eager, `Assume_valid);
          (Strategy.validation, `Timestamp);
          (Strategy.validation_no_repair, `Direct);
          (Strategy.validation_no_repair, `Timestamp);
          (Strategy.mutable_bitmap, `Timestamp);
          (Strategy.deleted_key_btree, `Timestamp);
        ])

let prop_repair_cleans_keyword_index =
  qtest ~count:30 "repair preserves keyword query answers"
    QCheck2.Gen.(list_size (int_range 1 100) op_gen)
    (fun ops ->
      let d = mk_dataset ~strategy:Strategy.validation_no_repair () in
      let model =
        List.fold_left
          (fun (m, i) op ->
            (match op with
            | Up (k, v) -> D.upsert d (doc ~at:i k v)
            | Del k -> D.delete d ~pk:k);
            match op with
            | Up (k, v) -> (IntMap.add k (doc ~at:i k v) m, i + 1)
            | Del k -> (IntMap.remove k m, i + 1))
          (IntMap.empty, 1) ops
        |> fst
      in
      D.flush_now d;
      D.standalone_repair d;
      let expected = model_query model ~lo:0 ~hi:10 in
      dedup_pks (D.query_secondary d ~sec:"tokens" ~lo:0 ~hi:10 ~mode:`Timestamp ())
      = expected)

let () =
  Alcotest.run "lsm_multi"
    [
      ( "keyword-index",
        [
          Alcotest.test_case "basics" `Quick test_keyword_basics;
          Alcotest.test_case "kept tokens" `Quick test_kept_tokens_survive_update;
          prop_keyword_queries_match_model;
          prop_repair_cleans_keyword_index;
        ] );
    ]
