test/test_bloom.mli:
