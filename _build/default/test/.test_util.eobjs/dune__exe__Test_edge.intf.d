test/test_edge.mli:
