test/test_multi.mli:
