test/test_workload.ml: Alcotest Float Hashtbl List Lsm_workload Printf
