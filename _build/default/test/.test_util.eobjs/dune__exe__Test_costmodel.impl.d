test/test_costmodel.ml: Alcotest Array Buffer_cache Device Env Fun Io_stats List Lsm_btree Lsm_core Lsm_sim Lsm_util Lsm_workload QCheck2 QCheck_alcotest Sfile
