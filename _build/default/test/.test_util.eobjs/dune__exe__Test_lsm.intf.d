test/test_lsm.mli:
