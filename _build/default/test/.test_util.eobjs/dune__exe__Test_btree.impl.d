test/test_btree.ml: Alcotest Array Int List Lsm_btree Lsm_sim Lsm_util Map Option Printf QCheck2 QCheck_alcotest
