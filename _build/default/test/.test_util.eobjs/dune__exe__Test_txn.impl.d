test/test_txn.ml: Alcotest Float Hashtbl List Lsm_core Lsm_sim Lsm_txn Lsm_util Lsm_workload Printf QCheck2 QCheck_alcotest
