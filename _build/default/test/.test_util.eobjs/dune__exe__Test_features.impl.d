test/test_features.ml: Alcotest Array Int List Lsm_btree Lsm_sim Lsm_tree Lsm_util Map QCheck2 QCheck_alcotest
