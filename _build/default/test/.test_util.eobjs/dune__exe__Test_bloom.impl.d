test/test_bloom.ml: Alcotest Blocked_bloom Bloom Filter Float Hashing Hashtbl List Lsm_bloom Printf QCheck2 QCheck_alcotest
