test/test_harness.ml: Alcotest Filename List Lsm_harness Printf String Sys
