test/test_sim.ml: Alcotest Buffer_cache Device Env Io_stats Lsm_sim Printf Sfile
