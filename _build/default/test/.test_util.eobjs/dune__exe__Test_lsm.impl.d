test/test_lsm.ml: Alcotest Array Fmt Hashtbl Int List Lsm_sim Lsm_tree Lsm_util Map Option QCheck2 QCheck_alcotest
