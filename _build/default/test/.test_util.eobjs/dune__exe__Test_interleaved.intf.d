test/test_interleaved.mli:
