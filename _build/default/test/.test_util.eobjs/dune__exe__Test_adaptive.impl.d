test/test_adaptive.ml: Alcotest Int List Lsm_core Lsm_sim Lsm_workload Map QCheck2 QCheck_alcotest
