test/test_edge.ml: Alcotest Array Fun Hashtbl List Lsm_btree Lsm_core Lsm_sim Lsm_tree Lsm_util Lsm_workload Option Printf QCheck2 QCheck_alcotest
