test/test_util.ml: Alcotest Array Bitset Float Fun Heap List Lsm_util Printf QCheck2 QCheck_alcotest Rng Search Sorter Zipf
