test/test_features.mli:
