test/test_costmodel.mli:
