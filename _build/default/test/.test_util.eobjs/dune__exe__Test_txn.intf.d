test/test_txn.mli:
