test/test_integration.ml: Alcotest Array Int List Lsm_core Lsm_sim Lsm_util Lsm_workload Map Option Printf QCheck2 QCheck_alcotest
