test/test_multi.ml: Alcotest Format Int List Lsm_core Lsm_sim Map QCheck2 QCheck_alcotest
