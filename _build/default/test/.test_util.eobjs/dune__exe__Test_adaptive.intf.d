test/test_adaptive.mli:
