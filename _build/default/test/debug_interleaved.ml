(* Reproducer for mid-stream query failures. *)

module D = Lsm_core.Dataset.Make (Lsm_workload.Tweet.Record)
module Strategy = Lsm_core.Strategy
module Tweet = Lsm_workload.Tweet
module IntMap = Map.Make (Int)

let mk_env () =
  let device =
    Lsm_sim.Device.custom ~name:"test" ~page_size:1024 ~seek_us:1000.0
      ~read_us_per_page:100.0 ~write_us_per_page:100.0
  in
  Lsm_sim.Env.create ~cache_bytes:(1024 * 128) device

let tw ?(user = 0) ?(at = 1) id =
  { Tweet.id; user_id = user; location = 0; created_at = at; msg_len = 68 }

type op =
  | Ins of int * int
  | Ups of int * int
  | Del of int
  | QSec of int * int
  | QTime of int * int
  | QPoint of int
  | Repair

let pp_op = function
  | Ins (k, u) -> Printf.sprintf "Ins(%d,u%d)" k u
  | Ups (k, u) -> Printf.sprintf "Ups(%d,u%d)" k u
  | Del k -> Printf.sprintf "Del(%d)" k
  | QSec (a, b) -> Printf.sprintf "QSec(%d,%d)" a b
  | QTime (a, b) -> Printf.sprintf "QTime(%d,%d)" a b
  | QPoint k -> Printf.sprintf "QPoint(%d)" k
  | Repair -> "Repair"

let strategies =
  [
    ("eager", Strategy.eager, (`Assume_valid : D.validation_mode));
    ("validation", Strategy.validation, `Timestamp);
    ("val-norepair-direct", Strategy.validation_no_repair, `Direct);
    ("val-bf", Strategy.validation_bloom_opt, `Timestamp);
    ("mutable-bitmap", Strategy.mutable_bitmap, `Timestamp);
    ("deleted-key", Strategy.deleted_key_btree, `Timestamp);
  ]

(* Returns Some (failure description) or None. *)
let check_strategy (strategy, mode) ops =
  let env = mk_env () in
  let d =
    D.create ~filter_key:Tweet.created_at
      ~secondaries:[ Lsm_core.Record.secondary "user_id" Tweet.user_id ]
      env
      { D.default_config with strategy; mem_budget = 2048 }
  in
  let model = ref IntMap.empty in
  let at = ref 0 in
  let fail = ref None in
  List.iteri
    (fun i op ->
      if !fail = None then begin
        incr at;
        match op with
        | Ins (k, u) ->
            let r = tw ~user:u ~at:!at k in
            let res = D.insert d r in
            let expected = if IntMap.mem k !model then `Duplicate else `Inserted in
            if res = `Inserted then model := IntMap.add k r !model;
            if res <> expected then
              fail := Some (Printf.sprintf "op %d %s: insert result" i (pp_op op))
        | Ups (k, u) ->
            D.upsert d (tw ~user:u ~at:!at k);
            model := IntMap.add k (tw ~user:u ~at:!at k) !model
        | Del k ->
            D.delete d ~pk:k;
            model := IntMap.remove k !model
        | QSec (lo, hi) ->
            let got =
              D.query_secondary d ~sec:"user_id" ~lo ~hi ~mode ()
              |> List.map Tweet.primary_key |> List.sort compare
            in
            let want =
              IntMap.fold
                (fun k r acc ->
                  if r.Tweet.user_id >= lo && r.Tweet.user_id <= hi then k :: acc
                  else acc)
                !model []
              |> List.sort compare
            in
            if got <> want then
              fail :=
                Some
                  (Printf.sprintf "op %d %s: got [%s] want [%s]" i (pp_op op)
                     (String.concat ";" (List.map string_of_int got))
                     (String.concat ";" (List.map string_of_int want)))
        | QTime (tlo, thi) ->
            let got = D.query_time_range d ~tlo ~thi ~f:ignore in
            let want =
              IntMap.fold
                (fun _ r acc ->
                  if r.Tweet.created_at >= tlo && r.Tweet.created_at <= thi then
                    acc + 1
                  else acc)
                !model 0
            in
            if got <> want then
              fail :=
                Some (Printf.sprintf "op %d %s: got %d want %d" i (pp_op op) got want)
        | QPoint k -> (
            match (D.point_query d k, IntMap.find_opt k !model) with
            | Some r, Some r' when r.Tweet.user_id = r'.Tweet.user_id -> ()
            | None, None -> ()
            | _ -> fail := Some (Printf.sprintf "op %d %s: point" i (pp_op op)))
        | Repair -> D.standalone_repair d
      end)
    ops;
  !fail

let check ops =
  List.filter_map
    (fun (name, s, m) ->
      match check_strategy (s, m) ops with
      | Some msg -> Some (name ^ ": " ^ msg)
      | None -> None)
    strategies

let shrink ops =
  let still_fails o = check o <> [] in
  let ops = ref ops in
  let changed = ref true in
  while !changed do
    changed := false;
    let n = List.length !ops in
    let i = ref 0 in
    while !i < n do
      let candidate = List.filteri (fun j _ -> j <> !i) !ops in
      if List.length candidate < List.length !ops && still_fails candidate then begin
        ops := candidate;
        changed := true;
        i := n
      end
      else incr i
    done
  done;
  !ops

(* Dump the val-bf dataset state after running [ops]. *)
let dump ops =
  let env = mk_env () in
  let d =
    D.create ~filter_key:Tweet.created_at
      ~secondaries:[ Lsm_core.Record.secondary "user_id" Tweet.user_id ]
      env
      { D.default_config with strategy = Strategy.validation_bloom_opt; mem_budget = 2048 }
  in
  let at = ref 0 in
  List.iter
    (fun op ->
      incr at;
      match op with
      | Ins (k, u) -> ignore (D.insert d (tw ~user:u ~at:!at k))
      | Ups (k, u) -> D.upsert d (tw ~user:u ~at:!at k)
      | Del k -> D.delete d ~pk:k
      | Repair -> D.standalone_repair d
      | _ -> ())
    ops;
  let sec = (D.secondaries d).(0) in
  Printf.printf "pk comps: %s mem_id=(%d,%d)\n"
    (String.concat " "
       (Array.to_list
          (Array.map
             (fun c ->
               Printf.sprintf "[%d,%d]" c.D.Pk.cmin_ts c.D.Pk.cmax_ts)
             (D.Pk.components (Option.get (D.pk_index d))))))
    (fst (D.Pk.mem_id (Option.get (D.pk_index d))))
    (snd (D.Pk.mem_id (Option.get (D.pk_index d))));
  Array.iter
    (fun c ->
      Printf.printf "sec comp [%d,%d] repaired=%d rows:\n" c.D.Sec.cmin_ts
        c.D.Sec.cmax_ts c.D.Sec.repaired_ts;
      Array.iteri
        (fun i (r : D.Sec.row) ->
          let sk, pk = r.D.Sec.key in
          Printf.printf "   (%d,%d,ts%d)%s %s\n" sk pk r.D.Sec.ts
            (match r.D.Sec.value with
            | Lsm_core.Dataset.Entry.Put () -> ""
            | Lsm_core.Dataset.Entry.Del -> " DEL")
            (if D.Sec.component_row_valid c i then "" else "INVALID"))
        (D.Sec.rows_of c))
    (D.Sec.components sec.D.tree);
  print_endline "sec mem:";
  D.Sec.scan sec.D.tree
    { D.Sec.full_scan_spec with only = Some []; emit_del = true }
    ~f:(fun r ~src_repaired:_ ->
      let sk, pk = r.D.Sec.key in
      Printf.printf "   (%d,%d,ts%d)%s\n" sk pk r.D.Sec.ts
        (match r.D.Sec.value with
        | Lsm_core.Dataset.Entry.Put () -> ""
        | Lsm_core.Dataset.Entry.Del -> " DEL"))

let () =
  let rng = Lsm_util.Rng.create (int_of_string Sys.argv.(1)) in
  let gen_op () =
    match Lsm_util.Rng.int rng 17 with
    | 0 | 1 | 2 -> Ins (1 + Lsm_util.Rng.int rng 35, Lsm_util.Rng.int rng 80)
    | 3 | 4 | 5 | 6 | 7 -> Ups (1 + Lsm_util.Rng.int rng 35, Lsm_util.Rng.int rng 80)
    | 8 -> Del (1 + Lsm_util.Rng.int rng 35)
    | 9 | 10 | 11 ->
        let a = Lsm_util.Rng.int rng 80 and b = Lsm_util.Rng.int rng 80 in
        QSec (min a b, max a b)
    | 12 | 13 ->
        let a = Lsm_util.Rng.int rng 400 and b = Lsm_util.Rng.int rng 400 in
        QTime (min a b, max a b)
    | 14 | 15 -> QPoint (1 + Lsm_util.Rng.int rng 35)
    | _ -> Repair
  in
  let found = ref false in
  let trial = ref 0 in
  while (not !found) && !trial < 300 do
    incr trial;
    let ops = List.init (10 + Lsm_util.Rng.int rng 170) (fun _ -> gen_op ()) in
    match check ops with
    | [] -> ()
    | msgs ->
        found := true;
        Printf.printf "trial %d failures:\n" !trial;
        List.iter print_endline msgs;
        let small = shrink ops in
        Printf.printf "shrunk to %d ops:\n" (List.length small);
        List.iter (fun op -> Printf.printf "  %s\n" (pp_op op)) small;
        List.iter print_endline (check small);
        dump small
  done;
  if not !found then print_endline "no failure found"
