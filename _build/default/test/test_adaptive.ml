(* Tests for the adaptive strategy controller (the paper's future-work
   auto-tuning, Sec. 7): mode transitions, repair-on-switch, and — most
   importantly — correctness regardless of the mode history. *)

module D = Lsm_core.Dataset.Make (Lsm_workload.Tweet.Record)
module A = Lsm_core.Adaptive.Make (Lsm_workload.Tweet.Record) (D)
module Strategy = Lsm_core.Strategy
module Tweet = Lsm_workload.Tweet
module IntMap = Map.Make (Int)

let qtest ?(count = 40) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let mk_env () =
  let device =
    Lsm_sim.Device.custom ~name:"test" ~page_size:1024 ~seek_us:1000.0
      ~read_us_per_page:100.0 ~write_us_per_page:100.0
  in
  Lsm_sim.Env.create ~cache_bytes:(1024 * 128) device

let tw ?(user = 0) ?(at = 1) id =
  { Tweet.id; user_id = user; location = 0; created_at = at; msg_len = 68 }

let mk ?(window = 50) () =
  let env = mk_env () in
  let d =
    D.create ~filter_key:Tweet.created_at
      ~secondaries:[ Lsm_core.Record.secondary "user_id" Tweet.user_id ]
      env
      { D.default_config with strategy = Strategy.validation; mem_budget = 4096 }
  in
  A.create
    ~config:{ A.window; write_heavy = 20.0; query_heavy = 2.0 }
    d

let test_requires_validation () =
  let env = mk_env () in
  let d =
    D.create ~secondaries:[] env
      { D.default_config with strategy = Strategy.eager }
  in
  Alcotest.check_raises "eager base rejected"
    (Invalid_argument "Adaptive.create: dataset must use Validation") (fun () ->
      ignore (A.create d))

let test_switches_to_eager_when_query_heavy () =
  let a = mk () in
  for i = 1 to 30 do
    A.upsert a (tw ~user:i i)
  done;
  Alcotest.(check bool) "starts lazy" true (A.mode a = A.Validation_mode);
  (* Query-dominated window: more queries than updates. *)
  for _ = 1 to 60 do
    ignore (A.query_secondary a ~sec:"user_id" ~lo:0 ~hi:5 ())
  done;
  Alcotest.(check bool) "switched to eager" true (A.mode a = A.Eager_mode);
  Alcotest.(check bool) "at least one switch" true (A.switches a >= 1)

let test_switches_back_when_write_heavy () =
  let a = mk () in
  for _ = 1 to 60 do
    ignore (A.query_secondary a ~sec:"user_id" ~lo:0 ~hi:5 ())
  done;
  Alcotest.(check bool) "eager" true (A.mode a = A.Eager_mode);
  for i = 1 to 200 do
    A.upsert a (tw ~user:i (i mod 40))
  done;
  Alcotest.(check bool) "back to validation" true (A.mode a = A.Validation_mode)

type aop = AUp of int * int | ADel of int | AQuery of int * int

let aop_gen =
  QCheck2.Gen.(
    frequency
      [
        (6, map2 (fun k u -> AUp (k, u)) (int_range 1 30) (int_range 0 60));
        (1, map (fun k -> ADel k) (int_range 1 30));
        (3, map2 (fun a b -> AQuery (min a b, max a b)) (int_range 0 60) (int_range 0 60));
      ])

let prop_adaptive_matches_model =
  qtest ~count:60 "adaptive answers = model across mode switches"
    QCheck2.Gen.(list_size (int_range 20 400) aop_gen)
    (fun ops ->
      (* Tiny window so switches happen constantly. *)
      let a = mk ~window:7 () in
      let model = ref IntMap.empty in
      List.for_all
        (fun op ->
          match op with
          | AUp (k, u) ->
              A.upsert a (tw ~user:u k);
              model := IntMap.add k u !model;
              true
          | ADel k ->
              A.delete a ~pk:k;
              model := IntMap.remove k !model;
              true
          | AQuery (lo, hi) ->
              let got =
                A.query_secondary a ~sec:"user_id" ~lo ~hi ()
                |> List.map Tweet.primary_key |> List.sort compare
              in
              let want =
                IntMap.fold
                  (fun k u acc -> if u >= lo && u <= hi then k :: acc else acc)
                  !model []
                |> List.sort compare
              in
              got = want)
        ops)

let test_switch_repairs_first () =
  let a = mk () in
  let d = A.dataset a in
  (* Create obsolete entries under validation mode... *)
  for i = 1 to 30 do
    A.upsert a (tw ~user:1 i)
  done;
  D.flush_now d;
  for i = 1 to 30 do
    A.upsert a (tw ~user:2 i)
  done;
  D.flush_now d;
  let repairs_before = (D.stats d).D.n_repairs in
  (* ...then force a switch to eager via a query-heavy window. *)
  for _ = 1 to 60 do
    ignore (A.query_secondary a ~sec:"user_id" ~lo:50 ~hi:60 ())
  done;
  Alcotest.(check bool) "eager now" true (A.mode a = A.Eager_mode);
  Alcotest.(check bool) "repair ran on switch" true
    ((D.stats d).D.n_repairs > repairs_before);
  (* Assume-valid queries must be clean. *)
  let got =
    A.query_secondary a ~sec:"user_id" ~lo:1 ~hi:1 ()
    |> List.map Tweet.primary_key
  in
  Alcotest.(check (list int)) "no stale entries" [] got

let () =
  Alcotest.run "lsm_adaptive"
    [
      ( "adaptive",
        [
          Alcotest.test_case "requires validation base" `Quick
            test_requires_validation;
          Alcotest.test_case "switches to eager" `Quick
            test_switches_to_eager_when_query_heavy;
          Alcotest.test_case "switches back" `Quick
            test_switches_back_when_write_heavy;
          Alcotest.test_case "repairs before eager" `Quick
            test_switch_repairs_first;
          prop_adaptive_matches_model;
        ] );
    ]
