(* Unit tests for features added beyond the first pass: growable arrays,
   spill-accounted sorting, memory-B+-tree removal, anti-matter-emitting
   scans, the tombstone drop barrier, component replacement, and
   memory-write rollback. *)

module Vec = Lsm_util.Vec
module Mbt = Lsm_btree.Mem_btree.Make (Lsm_util.Keys.Int_key)
module L = Lsm_tree.Make (Lsm_util.Keys.Int_key) (Lsm_util.Keys.Int_value)
module Entry = Lsm_tree.Entry
module IntMap = Map.Make (Int)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let mk_env () =
  let device =
    Lsm_sim.Device.custom ~name:"test" ~page_size:256 ~seek_us:1000.0
      ~read_us_per_page:100.0 ~write_us_per_page:100.0
  in
  Lsm_sim.Env.create ~cache_bytes:(256 * 64) device

let mk_tree env =
  L.create env
    (Lsm_tree.Config.make ~bloom:(Some Lsm_tree.Config.default_bloom) "t")

(* ------------------------------------------------------------------ *)
(* Vec *)

let test_vec_basic () =
  let v = Vec.create () in
  Alcotest.(check int) "empty" 0 (Vec.length v);
  for i = 0 to 99 do
    Vec.push v (i * 2)
  done;
  Alcotest.(check int) "len" 100 (Vec.length v);
  Alcotest.(check int) "get" 84 (Vec.get v 42);
  Alcotest.(check int) "to_array" 100 (Array.length (Vec.to_array v));
  Alcotest.check_raises "oob" (Invalid_argument "Vec.get: out of bounds")
    (fun () -> ignore (Vec.get v 100))

let test_vec_binary_search () =
  let v = Vec.create () in
  for i = 0 to 49 do
    Vec.push v (i * 3)
  done;
  let cost = ref 0 in
  Alcotest.(check (option int)) "hit" (Some 7)
    (Vec.binary_search ~cmp:compare ~cost v 21);
  Alcotest.(check (option int)) "miss" None
    (Vec.binary_search ~cmp:compare ~cost v 22)

let prop_vec_matches_list =
  qtest "vec = list model"
    QCheck2.Gen.(list_size (int_range 0 200) int)
    (fun l ->
      let v = Vec.create () in
      List.iter (Vec.push v) l;
      Vec.to_array v = Array.of_list l
      && Vec.length v = List.length l)

(* ------------------------------------------------------------------ *)
(* Spill_sort *)

let test_spill_sort_in_memory () =
  let env = mk_env () in
  let a = [| 5; 2; 9; 1 |] in
  let g = Lsm_sim.Spill_sort.grant ~memory_bytes:1024 ~row_bytes:8 in
  Lsm_sim.Spill_sort.sort env g ~cmp:compare a;
  Alcotest.(check (array int)) "sorted" [| 1; 2; 5; 9 |] a;
  Alcotest.(check int) "no spill io" 0
    (Lsm_sim.Env.stats env).Lsm_sim.Io_stats.pages_written

let test_spill_sort_spills () =
  let env = mk_env () in
  let rng = Lsm_util.Rng.create 3 in
  let a = Array.init 1000 (fun _ -> Lsm_util.Rng.int rng 100000) in
  let g = Lsm_sim.Spill_sort.grant ~memory_bytes:256 ~row_bytes:8 in
  Lsm_sim.Spill_sort.sort env g ~cmp:compare a;
  Alcotest.(check bool) "sorted" true
    (Lsm_util.Sorter.is_sorted ~cmp:compare a);
  let st = Lsm_sim.Env.stats env in
  Alcotest.(check bool) "spill written" true (st.Lsm_sim.Io_stats.pages_written > 0);
  Alcotest.(check bool) "spill read back" true (st.Lsm_sim.Io_stats.pages_read > 0
                                                || st.Lsm_sim.Io_stats.cache_hits > 0)

(* ------------------------------------------------------------------ *)
(* Mem_btree.remove *)

let prop_mbt_remove_matches_map =
  qtest ~count:150 "mem btree with removals = Map model"
    QCheck2.Gen.(
      list_size (int_range 0 400)
        (pair (int_range 0 60) (frequency [ (3, return `Put); (1, return `Remove) ])))
    (fun ops ->
      let t = Mbt.create () in
      let m = ref IntMap.empty in
      List.iter
        (fun (k, op) ->
          match op with
          | `Put ->
              ignore (Mbt.put t k (k * 3));
              m := IntMap.add k (k * 3) !m
          | `Remove ->
              let got = Mbt.remove t k in
              let want = IntMap.find_opt k !m in
              m := IntMap.remove k !m;
              assert (got = want))
        ops;
      Mbt.length t = IntMap.cardinal !m
      && IntMap.for_all (fun k v -> Mbt.find t k = Some v) !m
      && Mbt.to_sorted_array t = Array.of_list (IntMap.bindings !m)
      && Mbt.min_binding t = IntMap.min_binding_opt !m
      && Mbt.max_binding t = IntMap.max_binding_opt !m)

(* ------------------------------------------------------------------ *)
(* emit_del scans *)

let test_scan_emit_del () =
  let env = mk_env () in
  let t = mk_tree env in
  L.write t ~key:1 ~ts:1 (Entry.Put 10);
  L.write t ~key:2 ~ts:2 (Entry.Put 20);
  L.flush t;
  L.write t ~key:1 ~ts:3 Entry.Del;
  let plain = ref [] and with_del = ref [] in
  L.scan t L.full_scan_spec ~f:(fun r ~src_repaired:_ ->
      plain := (r.L.key, r.L.value) :: !plain);
  L.scan t
    { L.full_scan_spec with emit_del = true }
    ~f:(fun r ~src_repaired:_ -> with_del := (r.L.key, r.L.value) :: !with_del);
  Alcotest.(check int) "plain hides deleted" 1 (List.length !plain);
  Alcotest.(check int) "emit_del shows tombstone" 2 (List.length !with_del);
  Alcotest.(check bool) "tombstone present" true
    (List.mem (1, Entry.Del) !with_del)

(* ------------------------------------------------------------------ *)
(* Tombstone drop barrier *)

let test_tombstone_barrier () =
  let env = mk_env () in
  let t = mk_tree env in
  L.write t ~key:1 ~ts:1 (Entry.Put 10);
  L.flush t;
  L.write t ~key:1 ~ts:2 Entry.Del;
  L.flush t;
  (* Barrier below the tombstone's ts: the bottom merge must keep it. *)
  L.set_tombstone_drop_ts t 1;
  let c = L.merge t ~first:0 ~last:1 in
  Alcotest.(check int) "tombstone retained" 1 (L.component_rows c);
  (* Raise the barrier; the next bottom merge may drop it... but a single
     component cannot merge alone, so add another and re-merge. *)
  L.set_tombstone_drop_ts t max_int;
  L.write t ~key:2 ~ts:3 (Entry.Put 20);
  L.flush t;
  let c2 = L.merge t ~first:0 ~last:1 in
  Alcotest.(check int) "tombstone dropped once safe" 1 (L.component_rows c2)

(* ------------------------------------------------------------------ *)
(* build_component / replace_range *)

let test_build_and_replace () =
  let env = mk_env () in
  let t = mk_tree env in
  L.write t ~key:1 ~ts:1 (Entry.Put 10);
  L.flush t;
  L.write t ~key:2 ~ts:2 (Entry.Put 20);
  L.flush t;
  let rows =
    [| { L.key = 1; ts = 1; value = Entry.Put 11 };
       { L.key = 2; ts = 2; value = Entry.Put 20 } |]
  in
  let c =
    L.build_component t rows ~cmin_ts:1 ~cmax_ts:2 ~range_filter:None
      ~repaired_ts:0
  in
  L.replace_range t ~first:0 ~last:1 c;
  Alcotest.(check int) "one component" 1 (L.component_count t);
  match L.lookup_one t 1 with
  | Some r -> Alcotest.(check bool) "replacement visible" true (r.L.value = Entry.Put 11)
  | None -> Alcotest.fail "lost key"

(* ------------------------------------------------------------------ *)
(* mem_rollback / reset_memory *)

let test_mem_rollback () =
  let env = mk_env () in
  let t = mk_tree env in
  L.write t ~key:1 ~ts:1 (Entry.Put 10);
  let bytes1 = L.mem_bytes t in
  L.write t ~key:1 ~ts:2 (Entry.Put 99);
  (* Roll the second write back, restoring the first binding. *)
  L.mem_rollback t ~key:1 ~prior:(Some (1, Entry.Put 10));
  (match L.lookup_one t 1 with
  | Some r ->
      Alcotest.(check bool) "restored value" true (r.L.value = Entry.Put 10);
      Alcotest.(check int) "restored ts" 1 r.L.ts
  | None -> Alcotest.fail "binding lost");
  Alcotest.(check int) "bytes restored" bytes1 (L.mem_bytes t);
  (* Roll back a fresh insert (no prior): the key disappears. *)
  L.write t ~key:7 ~ts:3 (Entry.Put 70);
  L.mem_rollback t ~key:7 ~prior:None;
  Alcotest.(check bool) "insert rolled back" true (L.lookup_one t 7 = None)

let test_reset_memory () =
  let env = mk_env () in
  let t = mk_tree env in
  L.write t ~key:1 ~ts:1 (Entry.Put 10);
  L.flush t;
  L.write t ~key:2 ~ts:2 (Entry.Put 20);
  L.reset_memory t;
  Alcotest.(check int) "mem empty" 0 (L.mem_count t);
  Alcotest.(check bool) "disk survives" true (L.lookup_one t 1 <> None);
  Alcotest.(check bool) "mem write gone" true (L.lookup_one t 2 = None)

let () =
  Alcotest.run "lsm_features"
    [
      ( "vec",
        [
          Alcotest.test_case "basic" `Quick test_vec_basic;
          Alcotest.test_case "binary search" `Quick test_vec_binary_search;
          prop_vec_matches_list;
        ] );
      ( "spill-sort",
        [
          Alcotest.test_case "in memory" `Quick test_spill_sort_in_memory;
          Alcotest.test_case "spills" `Quick test_spill_sort_spills;
        ] );
      ("mbt-remove", [ prop_mbt_remove_matches_map ]);
      ("scan", [ Alcotest.test_case "emit_del" `Quick test_scan_emit_del ]);
      ( "tombstones",
        [ Alcotest.test_case "drop barrier" `Quick test_tombstone_barrier ] );
      ( "components",
        [ Alcotest.test_case "build + replace" `Quick test_build_and_replace ] );
      ( "rollback",
        [
          Alcotest.test_case "mem_rollback" `Quick test_mem_rollback;
          Alcotest.test_case "reset_memory" `Quick test_reset_memory;
        ] );
    ]
