(* Integration tests for the transactional layer (Txn_dataset: WAL,
   aborts, checkpoints, crash recovery on real components — Sec. 5.2) and
   the hash-partitioned architecture (Partitioned — Sec. 2.2). *)

module D = Lsm_core.Dataset.Make (Lsm_workload.Tweet.Record)
module T = Lsm_core.Txn_dataset.Make (Lsm_workload.Tweet.Record) (D)
module P = Lsm_core.Partitioned.Make (Lsm_workload.Tweet.Record)
module Strategy = Lsm_core.Strategy
module Tweet = Lsm_workload.Tweet
module IntMap = Map.Make (Int)

let qtest ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let mk_env () =
  let device =
    Lsm_sim.Device.custom ~name:"test" ~page_size:1024 ~seek_us:1000.0
      ~read_us_per_page:100.0 ~write_us_per_page:100.0
  in
  Lsm_sim.Env.create ~cache_bytes:(1024 * 128) device

let tw ?(user = 0) ?(at = 1) id =
  { Tweet.id; user_id = user; location = 0; created_at = at; msg_len = 68 }

let mk_txn_dataset ?(strategy = Strategy.mutable_bitmap) () =
  let env = mk_env () in
  let d =
    D.create ~filter_key:Tweet.created_at
      ~secondaries:[ Lsm_core.Record.secondary "user_id" Tweet.user_id ]
      env
      { D.default_config with strategy }
  in
  T.create d

(* ------------------------------------------------------------------ *)
(* Txn_dataset: commits, aborts *)

let test_txn_commit_visible () =
  let t = mk_txn_dataset () in
  T.upsert_auto t (tw ~user:7 1);
  match D.point_query (T.dataset t) 1 with
  | Some r -> Alcotest.(check int) "visible" 7 r.Tweet.user_id
  | None -> Alcotest.fail "committed record missing"

let test_txn_abort_restores_memory () =
  let t = mk_txn_dataset () in
  T.upsert_auto t (tw ~user:7 1);
  let txn = T.begin_txn t in
  T.upsert t txn (tw ~user:9 1);
  T.delete t txn ~pk:999 (* no-op delete of absent key *);
  (match D.point_query (T.dataset t) 1 with
  | Some r -> Alcotest.(check int) "txn sees own write" 9 r.Tweet.user_id
  | None -> Alcotest.fail "missing");
  T.abort t txn;
  match D.point_query (T.dataset t) 1 with
  | Some r -> Alcotest.(check int) "abort restored" 7 r.Tweet.user_id
  | None -> Alcotest.fail "abort lost the prior record"

let test_txn_abort_unsets_bitmap_bit () =
  let t = mk_txn_dataset () in
  let d = T.dataset t in
  T.upsert_auto t (tw ~user:7 1);
  T.upsert_auto t (tw ~user:8 2);
  T.flush t;
  (* An upsert of key 1 flips its bit in the flushed component... *)
  let txn = T.begin_txn t in
  T.upsert t txn (tw ~user:9 1);
  let pk = Option.get (D.pk_index d) in
  let c = (D.Pk.components pk).(0) in
  let bit_count () =
    match c.D.Pk.bitmap with
    | Some b -> Lsm_util.Bitset.count b
    | None -> 0
  in
  Alcotest.(check int) "bit set by txn" 1 (bit_count ());
  (* ...and the abort must unset it (Sec. 5.2: aborts "internally change
     bits from 1 to 0"). *)
  T.abort t txn;
  Alcotest.(check int) "bit unset by abort" 0 (bit_count ());
  match D.point_query d 1 with
  | Some r -> Alcotest.(check int) "old version live again" 7 r.Tweet.user_id
  | None -> Alcotest.fail "record lost by abort"

let test_txn_abort_multi_op_reverse () =
  let t = mk_txn_dataset () in
  T.upsert_auto t (tw ~user:1 10);
  let txn = T.begin_txn t in
  T.upsert t txn (tw ~user:2 10);
  T.upsert t txn (tw ~user:3 10);
  T.delete t txn ~pk:10;
  T.abort t txn;
  match D.point_query (T.dataset t) 10 with
  | Some r -> Alcotest.(check int) "back to first commit" 1 r.Tweet.user_id
  | None -> Alcotest.fail "multi-op abort lost record"

(* ------------------------------------------------------------------ *)
(* Txn_dataset: crash + recovery *)

let query_all_users t =
  D.query_secondary (T.dataset t) ~sec:"user_id" ~lo:0 ~hi:max_int
    ~mode:`Timestamp ()
  |> List.map (fun r -> (Tweet.primary_key r, Tweet.user_id r))
  |> List.sort compare

let test_recovery_basic () =
  let t = mk_txn_dataset () in
  (* Durable base: two records on disk. *)
  T.upsert_auto t (tw ~user:1 1);
  T.upsert_auto t (tw ~user:2 2);
  T.flush t;
  (* Committed post-flush work: update key 1 (bit flip), add key 3. *)
  T.upsert_auto t (tw ~user:11 1);
  T.upsert_auto t (tw ~user:3 3);
  (* Uncommitted at crash: must disappear. *)
  let doomed = T.begin_txn t in
  T.upsert t doomed (tw ~user:99 2);
  let expected = [ (1, 11); (2, 2); (3, 3) ] in
  T.crash t;
  T.recover t;
  Alcotest.(check (list (pair int int))) "state after recovery" expected
    (query_all_users t);
  (* Point queries agree too. *)
  (match D.point_query (T.dataset t) 1 with
  | Some r -> Alcotest.(check int) "redo applied" 11 r.Tweet.user_id
  | None -> Alcotest.fail "key 1 lost");
  match D.point_query (T.dataset t) 2 with
  | Some r -> Alcotest.(check int) "uncommitted not replayed" 2 r.Tweet.user_id
  | None -> Alcotest.fail "key 2 lost"

let test_recovery_checkpoint_bits () =
  let t = mk_txn_dataset () in
  T.upsert_auto t (tw ~user:1 1);
  T.upsert_auto t (tw ~user:2 2);
  T.flush t;
  (* Flip key 1's bit, checkpoint (bit durable), flip key 2's bit. *)
  T.upsert_auto t (tw ~user:11 1);
  T.checkpoint t;
  T.upsert_auto t (tw ~user:22 2);
  let before = query_all_users t in
  T.crash t;
  T.recover t;
  Alcotest.(check (list (pair int int))) "same state" before (query_all_users t)

let test_recovery_deletes () =
  let t = mk_txn_dataset () in
  T.upsert_auto t (tw ~user:1 1);
  T.upsert_auto t (tw ~user:2 2);
  T.flush t;
  T.delete_auto t ~pk:1;
  let before = query_all_users t in
  Alcotest.(check (list (pair int int))) "delete applied" [ (2, 2) ] before;
  T.crash t;
  T.recover t;
  Alcotest.(check (list (pair int int))) "delete survives recovery" before
    (query_all_users t)

let test_txn_requires_lazy_strategy () =
  let env = mk_env () in
  let d =
    D.create ~secondaries:[] env
      { D.default_config with strategy = Strategy.eager }
  in
  Alcotest.check_raises "eager rejected"
    (Invalid_argument
       "Txn_dataset.create: requires the Mutable-bitmap or Validation \
        strategy (Eager's read-modify-write path needs old-record logging \
        this layer does not provide)") (fun () -> ignore (T.create d))

let test_recovery_validation_strategy () =
  (* The transactional layer also runs over Validation datasets: no bit
     flips, but memory redo and abort-rollback behave identically. *)
  let t = mk_txn_dataset ~strategy:Strategy.validation () in
  T.upsert_auto t (tw ~user:1 1);
  T.upsert_auto t (tw ~user:2 2);
  T.flush t;
  T.upsert_auto t (tw ~user:11 1);
  T.delete_auto t ~pk:2;
  (* Snapshot the committed state, then open a transaction that will be
     in flight at the crash (this layer has no read isolation, so its
     writes would be visible until the crash discards them). *)
  let committed = query_all_users t in
  Alcotest.(check (list (pair int int))) "pre-crash committed" [ (1, 11) ]
    committed;
  let doomed = T.begin_txn t in
  T.upsert t doomed (tw ~user:50 3);
  T.crash t;
  T.recover t;
  Alcotest.(check (list (pair int int))) "post-recovery" committed
    (query_all_users t)

type rop = RUp of int * int | RDel of int | RFlush | RCkpt

let rop_gen =
  QCheck2.Gen.(
    frequency
      [
        (6, map2 (fun k u -> RUp (k, u)) (int_range 1 25) (int_range 0 50));
        (2, map (fun k -> RDel k) (int_range 1 25));
        (1, return RFlush);
        (1, return RCkpt);
      ])

let prop_recovery_restores_committed_state =
  qtest ~count:60 "crash+recover = committed state (random histories)"
    QCheck2.Gen.(list_size (int_range 1 60) rop_gen)
    (fun ops ->
      let t = mk_txn_dataset () in
      List.iter
        (fun op ->
          match op with
          | RUp (k, u) -> T.upsert_auto t (tw ~user:u k)
          | RDel k -> T.delete_auto t ~pk:k
          | RFlush -> T.flush t
          | RCkpt -> T.checkpoint t)
        ops;
      (* One uncommitted straggler. *)
      let doomed = T.begin_txn t in
      T.upsert t doomed (tw ~user:77 1);
      T.abort t doomed;
      let before = query_all_users t in
      T.crash t;
      T.recover t;
      query_all_users t = before)

(* ------------------------------------------------------------------ *)
(* Partitioned datasets *)

let mk_partitioned n =
  P.create ~filter_key:Tweet.created_at
    ~secondaries:[ Lsm_core.Record.secondary "user_id" Tweet.user_id ]
    ~mk_env:(fun _ -> mk_env ())
    ~partitions:n
    { D.default_config with strategy = Strategy.eager; mem_budget = 4096 }

let test_partitioned_routing () =
  let p = mk_partitioned 4 in
  for i = 1 to 400 do
    ignore (P.insert p (tw ~user:(i mod 30) i))
  done;
  (* All partitions got some data (hash spreading). *)
  for i = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "partition %d non-empty" i)
      true
      (D.full_scan (P.partition p i) ~f:ignore > 50)
  done;
  (* Point queries route correctly. *)
  for i = 1 to 400 do
    match P.point_query p i with
    | Some r -> Alcotest.(check int) "right record" i (Tweet.primary_key r)
    | None -> Alcotest.fail "routed point query missed"
  done

let test_partitioned_queries_match_model () =
  let p = mk_partitioned 3 in
  let model = ref IntMap.empty in
  for i = 1 to 300 do
    let r = tw ~user:(i mod 40) ~at:i i in
    P.upsert p r;
    model := IntMap.add i r !model
  done;
  (* updates + deletes *)
  for i = 1 to 100 do
    let r = tw ~user:((i + 5) mod 40) ~at:(300 + i) i in
    P.upsert p r;
    model := IntMap.add i r !model
  done;
  for i = 50 to 70 do
    P.delete p ~pk:i;
    model := IntMap.remove i !model
  done;
  let expect =
    IntMap.fold
      (fun k r acc -> if r.Tweet.user_id <= 10 then k :: acc else acc)
      !model []
    |> List.sort compare
  in
  let got =
    P.query_secondary p ~sec:"user_id" ~lo:0 ~hi:10 ~mode:`Assume_valid ()
    |> List.map Tweet.primary_key |> List.sort compare
  in
  Alcotest.(check (list int)) "fan-out query" expect got;
  Alcotest.(check int) "full scan count" (IntMap.cardinal !model)
    (P.full_scan p ~f:ignore);
  let time_expect =
    IntMap.fold
      (fun _ r acc -> if r.Tweet.created_at <= 150 then acc + 1 else acc)
      !model 0
  in
  Alcotest.(check int) "time range fan-out" time_expect
    (P.query_time_range p ~tlo:0 ~thi:150 ~f:ignore)

let test_partitioned_speedup () =
  (* Same stream into 1 vs 4 partitions: parallel completion time should
     shrink near-linearly (Sec. 6.1's near-linear speedup claim). *)
  let run n =
    let p = mk_partitioned n in
    let stream =
      Lsm_workload.Streams.upsert_stream ~seed:31 ~update_ratio:0.3
        ~distribution:`Uniform ()
    in
    for _ = 1 to 4000 do
      match Lsm_workload.Streams.next stream with
      | Lsm_workload.Streams.Upsert r -> P.upsert p r
      | _ -> ()
    done;
    P.sim_time_s p
  in
  let t1 = run 1 and t4 = run 4 in
  Alcotest.(check bool)
    (Printf.sprintf "4 partitions %.3fs vs 1 partition %.3fs" t4 t1)
    true
    (t4 *. 2.5 < t1)

(* The partitioned layer must answer exactly like one big partition. *)
let prop_partitioned_equals_single =
  qtest ~count:30 "partitioned = single partition"
    QCheck2.Gen.(list_size (int_range 1 150) rop_gen)
    (fun ops ->
      let run parts =
        let p = mk_partitioned parts in
        List.iteri
          (fun i op ->
            match op with
            | RUp (k, u) -> P.upsert p (tw ~user:u ~at:i k)
            | RDel k -> P.delete p ~pk:k
            | RFlush | RCkpt -> P.flush_now p)
          ops;
        ( P.query_secondary p ~sec:"user_id" ~lo:0 ~hi:30 ~mode:`Assume_valid ()
          |> List.map Tweet.primary_key |> List.sort compare,
          P.full_scan p ~f:ignore )
      in
      run 1 = run 5)

let () =
  Alcotest.run "lsm_integration"
    [
      ( "txn",
        [
          Alcotest.test_case "commit visible" `Quick test_txn_commit_visible;
          Alcotest.test_case "abort restores memory" `Quick
            test_txn_abort_restores_memory;
          Alcotest.test_case "abort unsets bitmap bit" `Quick
            test_txn_abort_unsets_bitmap_bit;
          Alcotest.test_case "multi-op abort" `Quick test_txn_abort_multi_op_reverse;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "basic" `Quick test_recovery_basic;
          Alcotest.test_case "checkpointed bits" `Quick
            test_recovery_checkpoint_bits;
          Alcotest.test_case "deletes" `Quick test_recovery_deletes;
          Alcotest.test_case "eager rejected" `Quick test_txn_requires_lazy_strategy;
          Alcotest.test_case "validation strategy" `Quick
            test_recovery_validation_strategy;
          prop_recovery_restores_committed_state;
        ] );
      ( "partitioned",
        [
          Alcotest.test_case "routing" `Quick test_partitioned_routing;
          Alcotest.test_case "queries = model" `Quick
            test_partitioned_queries_match_model;
          Alcotest.test_case "near-linear speedup" `Quick test_partitioned_speedup;
          prop_partitioned_equals_single;
        ] );
    ]
