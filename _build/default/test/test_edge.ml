(* Edge-case coverage: boundary behaviour of the disk B+-tree, LSM lookup
   paths (pID hints, disk_find, filterless trees), and dataset corner
   cases (delete-then-reinsert, missing filter key, stats counters). *)

module Dbt = Lsm_btree.Disk_btree.Make (Lsm_util.Keys.Int_key)
module L = Lsm_tree.Make (Lsm_util.Keys.Int_key) (Lsm_util.Keys.Int_value)
module Entry = Lsm_tree.Entry
module D = Lsm_core.Dataset.Make (Lsm_workload.Tweet.Record)
module Strategy = Lsm_core.Strategy
module Tweet = Lsm_workload.Tweet

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let mk_env ?(page = 256) () =
  let device =
    Lsm_sim.Device.custom ~name:"test" ~page_size:page ~seek_us:1000.0
      ~read_us_per_page:100.0 ~write_us_per_page:100.0
  in
  Lsm_sim.Env.create ~cache_bytes:(page * 64) device

(* ------------------------------------------------------------------ *)
(* Disk B+-tree boundaries *)

let test_dbt_single_row () =
  let env = mk_env () in
  let t = Dbt.build env ~key_of:fst ~size_of:(fun _ -> 32) [| (5, 50) |] in
  Alcotest.(check int) "one leaf" 1 (Dbt.leaf_pages t);
  Alcotest.(check bool) "hit" true (Dbt.find env t 5 <> None);
  Alcotest.(check bool) "below" true (Dbt.find env t 4 = None);
  Alcotest.(check bool) "above" true (Dbt.find env t 6 = None);
  Alcotest.(check int) "lb below" 0 (Dbt.lower_bound_row env t 4);
  Alcotest.(check int) "lb above" 1 (Dbt.lower_bound_row env t 6)

let test_dbt_rows_bigger_than_page () =
  (* Rows larger than a page: one row per leaf, no crash. *)
  let env = mk_env ~page:64 () in
  let rows = Array.init 10 (fun i -> (i, i)) in
  let t = Dbt.build env ~key_of:fst ~size_of:(fun _ -> 200) rows in
  Alcotest.(check int) "one leaf per row" 10 (Dbt.leaf_pages t);
  for i = 0 to 9 do
    Alcotest.(check bool) "found" true (Dbt.find env t i <> None)
  done

let test_dbt_cursor_descending () =
  (* Stateful cursors must stay correct when queried backwards. *)
  let env = mk_env () in
  let t =
    Dbt.build env ~key_of:fst ~size_of:(fun _ -> 32)
      (Array.init 500 (fun i -> (i * 2, i)))
  in
  let c = Dbt.Cursor.create t in
  let ok = ref true in
  for i = 499 downto 0 do
    match Dbt.Cursor.find env c (i * 2) with
    | Some (_, (k, _)) -> if k <> i * 2 then ok := false
    | None -> ok := false
  done;
  Alcotest.(check bool) "descending queries" true !ok

let test_dbt_scan_seek_past_end () =
  let env = mk_env () in
  let t =
    Dbt.build env ~key_of:fst ~size_of:(fun _ -> 32)
      (Array.init 10 (fun i -> (i, i)))
  in
  let s = Dbt.Scan.seek env t (Some 100) in
  Alcotest.(check bool) "empty scan" true (Dbt.Scan.next env s = None)

let prop_dbt_lower_bound_row =
  qtest "lower_bound_row = model"
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 200) (int_range 0 300))
        (int_range (-5) 305))
    (fun (keys, q) ->
      let env = mk_env () in
      let keys = List.sort_uniq compare keys |> Array.of_list in
      let t =
        Dbt.build env ~key_of:Fun.id ~size_of:(fun _ -> 24) keys
      in
      let expect =
        let rec go i = if i < Array.length keys && keys.(i) < q then go (i + 1) else i in
        go 0
      in
      Dbt.lower_bound_row env t q = expect)

(* ------------------------------------------------------------------ *)
(* LSM lookup paths *)

let mk_tree ?(bloom = true) env =
  L.create env
    (Lsm_tree.Config.make
       ~bloom:(if bloom then Some Lsm_tree.Config.default_bloom else None)
       "t")

let test_disk_find_ignores_mem () =
  let env = mk_env () in
  let t = mk_tree env in
  L.write t ~key:1 ~ts:1 (Entry.Put 10);
  L.flush t;
  L.write t ~key:1 ~ts:2 (Entry.Put 20);
  (match L.disk_find t 1 with
  | Some (_, _, row) ->
      Alcotest.(check int) "disk version, not mem" 1 row.L.ts
  | None -> Alcotest.fail "disk hit expected");
  Alcotest.(check bool) "mem-only key invisible to disk_find" true
    (L.disk_find t 99 = None)

let test_filterless_tree_no_probes () =
  let env = mk_env () in
  let t = mk_tree ~bloom:false env in
  for i = 1 to 50 do
    L.write t ~key:i ~ts:i (Entry.Put i)
  done;
  L.flush t;
  Lsm_sim.Env.reset_measurement env;
  ignore (L.lookup_one t 25);
  ignore (L.lookup_one t 99);
  Alcotest.(check int) "no bloom probes" 0
    (Lsm_sim.Env.stats env).Lsm_sim.Io_stats.bloom_probes

let prop_hints_preserve_results =
  (* pID hints built from each entry's true timestamp must never change
     lookup results (they may only skip components that cannot hold the
     sought version). *)
  qtest ~count:60 "pID hints never change lookup results"
    QCheck2.Gen.(list_size (int_range 1 150) (pair (int_range 0 50) (int_range 0 999)))
    (fun writes ->
      let env = mk_env () in
      let t = mk_tree env in
      let ts = ref 0 in
      let newest = Hashtbl.create 64 in
      List.iteri
        (fun i (k, v) ->
          incr ts;
          L.write t ~key:k ~ts:!ts (Entry.Put v);
          Hashtbl.replace newest k !ts;
          if i mod 17 = 0 then L.flush t)
        writes;
      L.flush t;
      if L.component_count t >= 3 then ignore (L.merge t ~first:0 ~last:1);
      let keys =
        Hashtbl.fold (fun k _ acc -> k :: acc) newest [] |> List.sort compare
      in
      let qk_hints =
        Array.of_list
          (List.map (fun k -> { L.qkey = k; hint_ts = Hashtbl.find newest k }) keys)
      in
      let qk_plain =
        Array.of_list (List.map (fun k -> { L.qkey = k; hint_ts = 0 }) keys)
      in
      let collect use_hints qks =
        let out = Hashtbl.create 64 in
        L.lookup_batch t
          { L.default_lookup_opts with use_hints }
          qks
          ~emit:(fun k row ->
            Hashtbl.replace out k (Option.map (fun r -> r.L.value) row));
        out
      in
      let a = collect true qk_hints and b = collect false qk_plain in
      List.for_all (fun k -> Hashtbl.find a k = Hashtbl.find b k) keys)

let test_hints_skip_components () =
  (* With hints, old components are not even Bloom-probed. *)
  let env = mk_env () in
  let t = mk_tree env in
  for i = 1 to 20 do
    L.write t ~key:i ~ts:i (Entry.Put i)
  done;
  L.flush t;
  for i = 21 to 40 do
    L.write t ~key:i ~ts:i (Entry.Put i)
  done;
  L.flush t;
  let st = Lsm_sim.Env.stats env in
  let run use_hints =
    let before = st.Lsm_sim.Io_stats.bloom_probes in
    L.lookup_batch t
      { L.default_lookup_opts with use_hints }
      [| { L.qkey = 30; hint_ts = 30 } |]
      ~emit:(fun _ _ -> ());
    st.Lsm_sim.Io_stats.bloom_probes - before
  in
  let with_hints = run true and without = run false in
  Alcotest.(check bool)
    (Printf.sprintf "fewer probes with hints (%d <= %d)" with_hints without)
    true
    (with_hints <= without)

(* ------------------------------------------------------------------ *)
(* Dataset corner cases *)

let tw ?(user = 0) ?(at = 1) id =
  { Tweet.id; user_id = user; location = 0; created_at = at; msg_len = 68 }

let mk_dataset ?(strategy = Strategy.eager) ?(no_filter = false) () =
  let env = mk_env ~page:1024 () in
  let filter_key = if no_filter then None else Some Tweet.created_at in
  D.create ?filter_key
    ~secondaries:[ Lsm_core.Record.secondary "user_id" Tweet.user_id ]
    env
    { D.default_config with strategy; mem_budget = 8 * 1024 }

let test_delete_then_reinsert () =
  List.iter
    (fun strategy ->
      let d = mk_dataset ~strategy () in
      ignore (D.insert d (tw ~user:1 7));
      D.flush_now d;
      D.delete d ~pk:7;
      D.flush_now d;
      Alcotest.(check bool) "gone" true (D.point_query d 7 = None);
      Alcotest.(check bool)
        (Strategy.name strategy ^ ": reinsert accepted")
        true
        (D.insert d (tw ~user:2 7) = `Inserted);
      match D.point_query d 7 with
      | Some r -> Alcotest.(check int) "new record" 2 r.Tweet.user_id
      | None -> Alcotest.fail "reinserted record missing")
    [ Strategy.eager; Strategy.validation; Strategy.mutable_bitmap ]

let test_no_filter_key_raises () =
  let d = mk_dataset ~no_filter:true () in
  D.upsert d (tw 1);
  Alcotest.check_raises "no filter key"
    (Invalid_argument "query_time_range: dataset has no filter key") (fun () ->
      ignore (D.query_time_range d ~tlo:0 ~thi:10 ~f:ignore))

let test_stats_counters () =
  let d = mk_dataset () in
  for i = 1 to 200 do
    D.upsert d (tw ~user:i ~at:i i)
  done;
  D.delete d ~pk:1;
  ignore (D.insert d (tw 1));
  ignore (D.insert d (tw 2)) (* duplicate *);
  let s = D.stats d in
  Alcotest.(check int) "upserts" 200 s.D.n_upserts;
  Alcotest.(check int) "deletes" 1 s.D.n_deletes;
  Alcotest.(check int) "inserts" 1 s.D.n_inserts;
  Alcotest.(check int) "duplicates" 1 s.D.n_duplicates;
  Alcotest.(check bool) "flushed" true (s.D.n_flushes > 0);
  Alcotest.(check bool) "merged" true (s.D.n_merges > 0)

let test_deleted_key_direct_mode () =
  (* Direct validation never needs the deleted-key structures: it fetches
     records and re-checks — must be correct under this strategy too. *)
  let d = mk_dataset ~strategy:Strategy.deleted_key_btree () in
  D.upsert d (tw ~user:10 1);
  D.flush_now d;
  D.upsert d (tw ~user:20 1);
  D.upsert d (tw ~user:10 2);
  let got =
    D.query_secondary d ~sec:"user_id" ~lo:10 ~hi:10 ~mode:`Direct ()
    |> List.map Tweet.primary_key |> List.sort compare
  in
  Alcotest.(check (list int)) "only key 2" [ 2 ] got

let test_secondary_unknown_name () =
  let d = mk_dataset () in
  Alcotest.check_raises "unknown index"
    (Invalid_argument "Dataset: no secondary index named nope") (fun () ->
      ignore (D.query_secondary d ~sec:"nope" ~lo:0 ~hi:1 ~mode:`Assume_valid ()))

let test_empty_dataset_queries () =
  let d = mk_dataset () in
  Alcotest.(check bool) "point" true (D.point_query d 1 = None);
  Alcotest.(check (list reject)) "secondary" []
    (List.map ignore (D.query_secondary d ~sec:"user_id" ~lo:0 ~hi:10 ~mode:`Assume_valid ()));
  Alcotest.(check int) "scan" 0 (D.full_scan d ~f:ignore);
  Alcotest.(check int) "time range" 0 (D.query_time_range d ~tlo:0 ~thi:10 ~f:ignore)

let () =
  Alcotest.run "lsm_edge"
    [
      ( "disk-btree",
        [
          Alcotest.test_case "single row" `Quick test_dbt_single_row;
          Alcotest.test_case "rows bigger than page" `Quick
            test_dbt_rows_bigger_than_page;
          Alcotest.test_case "cursor descending" `Quick test_dbt_cursor_descending;
          Alcotest.test_case "seek past end" `Quick test_dbt_scan_seek_past_end;
          prop_dbt_lower_bound_row;
        ] );
      ( "lsm-lookup",
        [
          Alcotest.test_case "disk_find ignores mem" `Quick
            test_disk_find_ignores_mem;
          Alcotest.test_case "filterless no probes" `Quick
            test_filterless_tree_no_probes;
          prop_hints_preserve_results;
          Alcotest.test_case "hints skip components" `Quick
            test_hints_skip_components;
        ] );
      ( "dataset",
        [
          Alcotest.test_case "delete then reinsert" `Quick test_delete_then_reinsert;
          Alcotest.test_case "missing filter key" `Quick test_no_filter_key_raises;
          Alcotest.test_case "stats counters" `Quick test_stats_counters;
          Alcotest.test_case "deleted-key + direct" `Quick
            test_deleted_key_direct_mode;
          Alcotest.test_case "unknown secondary" `Quick test_secondary_unknown_name;
          Alcotest.test_case "empty dataset" `Quick test_empty_dataset_queries;
        ] );
    ]
