(* Quickstart: define a record type, open a dataset with a secondary
   index and a range filter, ingest, and query.

   Run with: dune exec examples/quickstart.exe *)

(* 1. Describe your records.  The engine needs a 63-bit primary key, a
   serialized size, and a printer. *)
module Order = struct
  type t = { id : int; customer : int; amount : int; day : int }

  let primary_key o = o.id
  let byte_size _ = 64
  let pp fmt o =
    Format.fprintf fmt "order %d: customer %d, $%d, day %d" o.id o.customer
      o.amount o.day
end

(* 2. Instantiate the dataset functor. *)
module D = Lsm_core.Dataset.Make (Order)

let () =
  (* 3. A storage environment: simulated device + buffer cache + clock. *)
  let env = Lsm_sim.Env.create ~cache_bytes:(8 * 1024 * 1024) Lsm_sim.Device.ssd in

  (* 4. A dataset: primary index + primary key index + one secondary index
     on the customer attribute, with a range filter on the day attribute.
     Pick a maintenance strategy for the auxiliary structures. *)
  let d =
    D.create
      ~filter_key:(fun o -> o.Order.day)
      ~secondaries:[ Lsm_core.Record.secondary "customer" (fun o -> o.Order.customer) ]
      env
      {
        D.default_config with
        strategy = Lsm_core.Strategy.validation;
        (* A small memory budget so this demo actually flushes and merges
           disk components. *)
        mem_budget = 64 * 1024;
      }
  in

  (* 5. Ingest: inserts, upserts, deletes. *)
  for i = 1 to 10_000 do
    D.upsert d
      {
        Order.id = i;
        customer = i mod 100;
        amount = (i * 37) mod 500;
        day = i / 100;
      }
  done;
  D.delete d ~pk:42;
  D.upsert d { Order.id = 43; customer = 7; amount = 999; day = 100 };

  (* 6. Point query. *)
  (match D.point_query d 43 with
  | Some o -> Format.printf "point query: %a@." Order.pp o
  | None -> print_endline "order 43 missing?!");

  (* 7. Secondary-index query: all orders by customer 7.  Validation
     datasets use `Direct or `Timestamp validation; `Timestamp validates
     against the primary key index without fetching records. *)
  let orders = D.query_secondary d ~sec:"customer" ~lo:7 ~hi:7 ~mode:`Timestamp () in
  Format.printf "customer 7 has %d orders@." (List.length orders);

  (* 8. Index-only variant: keys only, never touching full records. *)
  let keys = D.query_secondary_keys d ~sec:"customer" ~lo:7 ~hi:7 ~mode:`Timestamp () in
  Format.printf "index-only: %d (customer, order id) pairs@." (List.length keys);

  (* 9. Time-range scan with component pruning by the range filter. *)
  let n = D.query_time_range d ~tlo:95 ~thi:100 ~f:ignore in
  Format.printf "orders in days [95,100]: %d@." n;

  (* 10. The simulated cost of everything we just did. *)
  Format.printf "simulated time: %.3f s; %a@."
    (Lsm_sim.Env.now_s env)
    Lsm_sim.Io_stats.pp (Lsm_sim.Env.stats env)
