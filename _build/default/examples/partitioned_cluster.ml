(* A "cluster in a box": hash-partitioned ingestion across simulated
   nodes (Sec. 2.2's shared-nothing architecture), fan-out secondary
   queries, and the transactional layer with a crash in the middle.

   Run with: dune exec examples/partitioned_cluster.exe *)

module Tweet = Lsm_workload.Tweet
module D = Lsm_core.Dataset.Make (Tweet.Record)
module P = Lsm_core.Partitioned.Make (Tweet.Record)
module T = Lsm_core.Txn_dataset.Make (Tweet.Record) (D)

let mk_env _i =
  Lsm_sim.Env.create ~cache_bytes:(2 * 1024 * 1024) Lsm_harness.Scale.hdd_device

let () =
  (* ---- Part 1: a 4-partition dataset ---- *)
  let p =
    P.create ~filter_key:Tweet.created_at
      ~secondaries:[ Lsm_core.Record.secondary "user_id" Tweet.user_id ]
      ~mk_env ~partitions:4
      {
        D.default_config with
        strategy = Lsm_core.Strategy.validation;
        mem_budget = 256 * 1024;
      }
  in
  let stream =
    Lsm_workload.Streams.upsert_stream ~seed:8 ~update_ratio:0.2
      ~distribution:`Zipf_latest ()
  in
  let n = 40_000 in
  for _ = 1 to n do
    match Lsm_workload.Streams.next stream with
    | Lsm_workload.Streams.Upsert r -> P.upsert p r
    | _ -> ()
  done;
  Printf.printf "ingested %d tweets over %d partitions\n" n (P.partitions p);
  Printf.printf "  parallel completion: %.3f simulated s (%.0f rec/s)\n"
    (P.sim_time_s p)
    (Float.of_int n /. P.sim_time_s p);
  Printf.printf "  aggregate machine time: %.3f simulated s\n"
    (P.sim_time_total_s p);

  (* Fan-out secondary query: user_ids 1000-1100 across all partitions. *)
  let hits =
    P.query_secondary p ~sec:"user_id" ~lo:1000 ~hi:1100 ~mode:`Timestamp ()
  in
  Printf.printf "  fan-out query over users [1000,1100]: %d tweets\n"
    (List.length hits);
  Printf.printf "  total on-disk: %.1f MB\n\n"
    (Float.of_int (P.total_disk_bytes p) /. 1e6);

  (* ---- Part 2: transactions + crash recovery on one node ---- *)
  let env = mk_env 0 in
  let d =
    D.create ~filter_key:Tweet.created_at
      ~secondaries:[ Lsm_core.Record.secondary "user_id" Tweet.user_id ]
      env
      { D.default_config with strategy = Lsm_core.Strategy.mutable_bitmap }
  in
  let t = T.create d in
  let tw id user =
    { Tweet.id; user_id = user; location = 0; created_at = id; msg_len = 100 }
  in
  T.upsert_auto t (tw 1 10);
  T.upsert_auto t (tw 2 20);
  T.flush t;
  T.upsert_auto t (tw 1 11) (* flips a validity bit in the flushed component *);
  (* An in-flight transaction that will not survive the crash: *)
  let doomed = T.begin_txn t in
  T.upsert t doomed (tw 2 99);
  print_endline "simulating a crash with one committed and one in-flight update...";
  T.crash t;
  T.recover t;
  let show id =
    match D.point_query d id with
    | Some r -> Printf.printf "  tweet %d -> user %d\n" id r.Tweet.user_id
    | None -> Printf.printf "  tweet %d -> (missing)\n" id
  in
  show 1 (* 11: committed update replayed, bitmap bit re-set *);
  show 2 (* 20: uncommitted update discarded *);
  print_endline "recovery replayed exactly the committed work."
