(* Strategy trade-off demo: ingest the same update-heavy tweet stream
   under every maintenance strategy and report both sides of the paper's
   trade-off — ingestion throughput vs secondary-query latency.

   Run with: dune exec examples/strategy_comparison.exe *)

open Lsm_harness.Setup
module Scale = Lsm_harness.Scale

let n = 30_000

let run (name, strategy, mode) =
  let scale = Scale.tiny in
  let env = hdd_env scale in
  let d = dataset ~strategy env scale in
  let stream =
    Streams.upsert_stream ~seed:5 ~update_ratio:0.5 ~distribution:`Uniform ()
  in
  let (), ingest_us = timed env (fun () -> ingest_quiet d stream ~n) in
  (* A 0.1%-selectivity secondary query, cache warmed. *)
  let qg = Lsm_workload.Query_gen.create ~seed:9 () in
  let q_us =
    warm_query_time env (fun _ ->
        let lo, hi = Lsm_workload.Query_gen.user_range qg ~selectivity:0.001 in
        ignore (D.query_secondary d ~sec:"user_id" ~lo ~hi ~mode ()))
  in
  (* Where the ingestion time went: the strategies differ in how much
     work is paid up front (lookups, inline) vs deferred to background
     structure maintenance. *)
  let s = D.stats d in
  let pct us = 100.0 *. us /. ingest_us in
  Printf.printf
    "%-24s %10.0f rec/s    %8.2f ms/query    flush %4.1f%%  merge %4.1f%%  \
     repair %4.1f%%\n"
    name
    (Float.of_int n /. (ingest_us /. 1e6))
    (q_us /. 1e3) (pct s.D.flush_us) (pct s.D.merge_us) (pct s.D.repair_us)

let () =
  Printf.printf
    "Ingesting %d tweets (50%% updates) + 0.1%%-selectivity user_id queries:\n\n"
    n;
  Printf.printf "%-24s %14s %17s\n" "strategy" "ingestion" "query";
  List.iter run
    [
      ("eager", Strategy.eager, `Assume_valid);
      ("validation (no repair)", Strategy.validation_no_repair, `Timestamp);
      ("validation", Strategy.validation, `Timestamp);
      ("validation + direct", Strategy.validation, `Direct);
      ("mutable-bitmap", Strategy.mutable_bitmap, `Timestamp);
      ("deleted-key B+tree", Strategy.deleted_key_btree, `Timestamp);
    ];
  print_endline
    "\nEager pays point lookups at ingestion time; Validation defers the work \
     to queries and background repair; Mutable-bitmap pays a primary-key-index \
     search per update."
