(* The paper's running example (Figs. 2-4): a UserLocation dataset with
   attributes (UserID, Location, Time), a secondary index on Location, and
   a range filter on Time.  We replay the upsert of (101, NY, 2018) over
   (101, CA, 2015) under each maintenance strategy and show that queries
   Q1 (location = CA) and Q2 (time < 2017) give the same, correct answers
   while the *work* each strategy performs differs.

   Run with: dune exec examples/user_location.exe *)

module UserLocation = struct
  type t = { user_id : int; location : string; time : int }

  let primary_key u = u.user_id
  let byte_size _ = 32
  let pp fmt u =
    Format.fprintf fmt "(%d, %s, %d)" u.user_id u.location u.time
end

module D = Lsm_core.Dataset.Make (UserLocation)

let location_code u = Lsm_bloom.Hashing.hash_string u.UserLocation.location land 0xffff

let run strategy =
  let env = Lsm_sim.Env.create ~cache_bytes:(1024 * 1024) Lsm_sim.Device.hdd in
  let d =
    D.create
      ~filter_key:(fun u -> u.UserLocation.time)
      ~secondaries:[ Lsm_core.Record.secondary "location" location_code ]
      env
      { D.default_config with strategy }
  in
  D.set_auto_maintenance d false;

  (* Initial state of Fig. 2: two records on disk, one in memory. *)
  D.upsert d { UserLocation.user_id = 101; location = "CA"; time = 2015 };
  D.upsert d { UserLocation.user_id = 102; location = "CA"; time = 2016 };
  D.flush_now d;
  D.upsert d { UserLocation.user_id = 103; location = "MA"; time = 2017 };

  (* The upsert of Figs. 3/4/9: user 101 moves to NY in 2018. *)
  D.upsert d { UserLocation.user_id = 101; location = "NY"; time = 2018 };

  (* Q1: all users currently in CA — must be exactly user 102. *)
  let ca = Lsm_bloom.Hashing.hash_string "CA" land 0xffff in
  let mode =
    match strategy with Lsm_core.Strategy.Eager -> `Assume_valid | _ -> `Timestamp
  in
  let q1 = D.query_secondary d ~sec:"location" ~lo:ca ~hi:ca ~mode () in

  (* Q2: all records with Time < 2017 — must be exactly (102, CA, 2016).
     This is where filter maintenance matters: the Eager strategy widened
     the memory filter to cover the deleted 2015 value; Validation must
     read all newer components; Mutable-bitmap pruned the old version via
     its bitmap. *)
  let q2 = ref [] in
  let _ = D.query_time_range d ~tlo:0 ~thi:2016 ~f:(fun u -> q2 := u :: !q2) in

  Format.printf "%-18s Q1(CA) = [%s]   Q2(time<2017) = [%s]@."
    (Lsm_core.Strategy.name strategy)
    (String.concat "; "
       (List.map (fun u -> Format.asprintf "%a" UserLocation.pp u) q1))
    (String.concat "; "
       (List.map (fun u -> Format.asprintf "%a" UserLocation.pp u) !q2))

let () =
  print_endline
    "Running example of Figs. 2-4: upsert (101, NY, 2018) over (101, CA, 2015)";
  List.iter run
    [
      Lsm_core.Strategy.eager;
      Lsm_core.Strategy.validation;
      Lsm_core.Strategy.mutable_bitmap;
      Lsm_core.Strategy.deleted_key_btree;
    ];
  print_endline
    "All strategies return identical answers; they differ in ingestion work \
     (see `lsm_repro run fig14`)."
