(* A keyword (inverted) index over message text — the multi-valued
   secondary indexes of Sec. 2.2 ("secondary indexes, including LSM-based
   B+-trees, R-trees, and inverted indexes").  One message yields one
   (token, id) index entry per distinct word; updates anti-matter exactly
   the words the new text dropped.

   Run with: dune exec examples/keyword_search.exe *)

module Message = struct
  type t = { id : int; author : int; text : string; at : int }

  let primary_key m = m.id
  let byte_size m = 32 + String.length m.text
  let pp fmt m = Format.fprintf fmt "#%d @%d %S" m.id m.author m.text
end

(* Words map into the integer key domain by hashing. *)
let token w = Lsm_bloom.Hashing.hash_string (String.lowercase_ascii w) land 0xffffff

let tokenize text =
  String.split_on_char ' ' text
  |> List.filter (fun w -> String.length w > 2)
  |> List.map token

module D = Lsm_core.Dataset.Make (Message)

let () =
  let env =
    Lsm_sim.Env.create ~cache_bytes:(4 * 1024 * 1024) Lsm_harness.Scale.hdd_device
  in
  let d =
    D.create
      ~filter_key:(fun m -> m.Message.at)
      ~secondaries:
        [
          Lsm_core.Record.secondary "author" (fun m -> m.Message.author);
          Lsm_core.Record.secondary_multi "text" (fun m ->
              tokenize m.Message.text);
        ]
      env
      {
        D.default_config with
        strategy = Lsm_core.Strategy.validation;
        mem_budget = 128 * 1024;
      }
  in
  let post =
    let next = ref 0 in
    fun author text ->
      incr next;
      D.upsert d { Message.id = !next; author; text; at = !next };
      !next
  in
  (* A small corpus plus filler volume. *)
  let _ = post 1 "log structured merge trees are everywhere" in
  let m2 = post 2 "secondary indexes need maintenance strategies" in
  let _ = post 1 "validation beats eager maintenance for ingestion" in
  let m4 = post 3 "bloom filters make point lookups cheap" in
  for i = 1 to 20_000 do
    ignore (post (i mod 50) (Printf.sprintf "filler message number %d" i))
  done;

  let search word =
    let t = token word in
    let hits = D.query_secondary d ~sec:"text" ~lo:t ~hi:t ~mode:`Timestamp () in
    Printf.printf "search %-14S -> %d hits%s\n" word (List.length hits)
      (match hits with
      | m :: _ -> Printf.sprintf "  (first: %s)" (Format.asprintf "%a" Message.pp m)
      | [] -> "")
  in
  search "maintenance";
  search "bloom";
  search "filler";

  (* Edit message 2: it loses "maintenance", gains "repair". *)
  D.upsert d
    { Message.id = m2; author = 2; text = "secondary indexes need repair"; at = m2 };
  print_endline "\nafter editing message 2:";
  search "maintenance";
  search "repair";

  (* Delete message 4: "bloom" should lose a hit. *)
  D.delete d ~pk:m4;
  print_endline "\nafter deleting message 4:";
  search "bloom";

  Printf.printf "\nsimulated time for everything above: %.3f s\n"
    (Lsm_sim.Env.now_s env)
