(* Time-correlated data and range-filter pruning (the Fig. 19 scenario in
   miniature): sensor readings arrive in time order and are occasionally
   corrected (upserts).  Queries ask for recent windows ("live dashboard")
   and old windows ("historical audit").  Component range filters on the
   timestamp let the engine skip most components — how much depends on the
   maintenance strategy.

   Run with: dune exec examples/time_series.exe *)

module Reading = struct
  type t = { id : int; sensor : int; value : int; at : int }

  let primary_key r = r.id
  let byte_size _ = 48
  let pp fmt r =
    Format.fprintf fmt "#%d sensor %d = %d @%d" r.id r.sensor r.value r.at
end

module D = Lsm_core.Dataset.Make (Reading)

let n = 40_000

let build strategy =
  let env =
    Lsm_sim.Env.create ~cache_bytes:(512 * 1024) Lsm_harness.Scale.hdd_device
  in
  let d =
    D.create
      ~filter_key:(fun r -> r.Reading.at)
      ~secondaries:[ Lsm_core.Record.secondary "sensor" (fun r -> r.Reading.sensor) ]
      env
      {
        D.default_config with
        strategy;
        mem_budget = 64 * 1024;
        merge_policy =
          Lsm_tree.Merge_policy.tiering ~size_ratio:1.2
            ~max_mergeable_bytes:(128 * 1024) ();
      }
  in
  let rng = Lsm_util.Rng.create 3 in
  for i = 1 to n do
    D.upsert d
      { Reading.id = i; sensor = i mod 64; value = Lsm_util.Rng.int rng 1000; at = i };
    (* 10% chance: correct a previous reading (its timestamp stays old but
       the record moves to a new component — the filter-maintenance
       problem the paper studies). *)
    if Lsm_util.Rng.float rng < 0.1 && i > 100 then begin
      let old = 1 + Lsm_util.Rng.int rng (i - 1) in
      D.upsert d
        { Reading.id = old; sensor = old mod 64; value = Lsm_util.Rng.int rng 1000; at = i }
    end
  done;
  (env, d)

let window env d ~label ~tlo ~thi =
  Lsm_sim.Buffer_cache.clear (Lsm_sim.Env.cache env);
  let (count, components), us =
    Lsm_harness.Setup.timed env (fun () ->
        let c = D.query_time_range d ~tlo ~thi ~f:ignore in
        (c, D.Prim.component_count (D.primary d)))
  in
  Printf.printf "    %-22s %6d rows  of %2d components  %8.2f ms\n" label count
    components (us /. 1e3)

let () =
  List.iter
    (fun (name, strategy) ->
      Printf.printf "%s:\n" name;
      let env, d = build strategy in
      window env d ~label:"recent hour (last 2%)" ~tlo:(n - (n / 50)) ~thi:max_int;
      window env d ~label:"old hour (first 2%)" ~tlo:0 ~thi:(n / 50);
      window env d ~label:"full history" ~tlo:0 ~thi:max_int)
    [
      ("eager", Lsm_core.Strategy.eager);
      ("validation", Lsm_core.Strategy.validation);
      ("mutable-bitmap", Lsm_core.Strategy.mutable_bitmap);
    ];
  print_endline
    "\nRecent windows are cheap everywhere; old windows are where the \
     strategies differ: Validation must read every newer component, while \
     Mutable-bitmap prunes to just the overlapping ones (Sec. 6.4.2)."
