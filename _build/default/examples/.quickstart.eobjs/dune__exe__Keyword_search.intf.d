examples/keyword_search.mli:
