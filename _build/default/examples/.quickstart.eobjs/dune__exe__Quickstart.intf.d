examples/quickstart.mli:
