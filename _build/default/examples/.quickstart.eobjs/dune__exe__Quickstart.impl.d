examples/quickstart.ml: Format List Lsm_core Lsm_sim
