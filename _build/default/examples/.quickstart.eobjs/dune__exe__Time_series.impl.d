examples/time_series.ml: Format List Lsm_core Lsm_harness Lsm_sim Lsm_tree Lsm_util Printf
