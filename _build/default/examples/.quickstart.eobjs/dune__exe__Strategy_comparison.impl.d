examples/strategy_comparison.ml: D Float List Lsm_harness Lsm_workload Printf Strategy Streams
