examples/partitioned_cluster.mli:
