examples/partitioned_cluster.ml: Float List Lsm_core Lsm_harness Lsm_sim Lsm_workload Printf
