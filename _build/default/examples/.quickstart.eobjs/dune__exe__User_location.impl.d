examples/user_location.ml: Format List Lsm_bloom Lsm_core Lsm_sim String
