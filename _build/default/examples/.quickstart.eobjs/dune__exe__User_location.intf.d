examples/user_location.mli:
