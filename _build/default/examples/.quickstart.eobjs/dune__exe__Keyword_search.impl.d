examples/keyword_search.ml: Format List Lsm_bloom Lsm_core Lsm_harness Lsm_sim Printf String
