examples/time_series.mli:
