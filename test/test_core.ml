(* Tests for Lsm_core.Dataset: ingestion under every maintenance strategy,
   cross-strategy query equivalence, repair correctness, filter queries.

   The central property: whatever the maintenance strategy and whenever
   flushes/merges/repairs happen, queries return exactly what a reference
   hash-map model says they should. *)

module D = Lsm_core.Dataset.Make (Lsm_workload.Tweet.Record)
module Strategy = Lsm_core.Strategy
module Tweet = Lsm_workload.Tweet
module IntMap = Map.Make (Int)

let qtest ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let mk_env () =
  let device =
    Lsm_sim.Device.custom ~name:"test" ~page_size:1024 ~seek_us:1000.0
      ~read_us_per_page:100.0 ~write_us_per_page:100.0
  in
  Lsm_sim.Env.create ~cache_bytes:(1024 * 128) device

let secondaries =
  [
    Lsm_core.Record.secondary "user_id" Tweet.user_id;
    Lsm_core.Record.secondary "location" Tweet.location;
  ]

let mk_dataset ?(strategy = Strategy.eager) ?(mem_budget = 8 * 1024)
    ?(use_pk_index = true) env =
  D.create ~filter_key:Tweet.created_at ~secondaries env
    { D.default_config with strategy; mem_budget; use_pk_index }

(* A tweet with controlled fields for deterministic tests. *)
let tw ?(user = 0) ?(loc = 0) ?(at = 0) id =
  { Tweet.id; user_id = user; location = loc; created_at = at; msg_len = 100 }

(* ------------------------------------------------------------------ *)
(* Reference model *)

module Model = struct
  type t = Tweet.t IntMap.t

  let empty : t = IntMap.empty

  let insert m r =
    if IntMap.mem (Tweet.primary_key r) m then (m, `Duplicate)
    else (IntMap.add (Tweet.primary_key r) r m, `Inserted)

  let upsert m r = IntMap.add (Tweet.primary_key r) r m
  let delete m pk = IntMap.remove pk m

  let by_user m ~lo ~hi =
    IntMap.fold
      (fun _ r acc -> if r.Tweet.user_id >= lo && r.Tweet.user_id <= hi then r :: acc else acc)
      m []
    |> List.map Tweet.primary_key
    |> List.sort compare

  let by_time m ~tlo ~thi =
    IntMap.fold
      (fun _ r acc ->
        if r.Tweet.created_at >= tlo && r.Tweet.created_at <= thi then r :: acc
        else acc)
      m []
    |> List.map Tweet.primary_key
    |> List.sort compare
end

let pks records = List.map Tweet.primary_key records |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Deterministic unit tests *)

let test_insert_and_point_query () =
  let env = mk_env () in
  let d = mk_dataset env in
  Alcotest.(check bool) "inserted" true (D.insert d (tw ~user:5 1) = `Inserted);
  Alcotest.(check bool) "dup" true (D.insert d (tw ~user:9 1) = `Duplicate);
  (match D.point_query d 1 with
  | Some r -> Alcotest.(check int) "original kept" 5 r.Tweet.user_id
  | None -> Alcotest.fail "expected record");
  Alcotest.(check (option reject)) "missing" None
    (Option.map ignore (D.point_query d 2))

let test_upsert_replaces () =
  let env = mk_env () in
  let d = mk_dataset env in
  D.upsert d (tw ~user:5 1);
  D.upsert d (tw ~user:6 1);
  match D.point_query d 1 with
  | Some r -> Alcotest.(check int) "newest" 6 r.Tweet.user_id
  | None -> Alcotest.fail "expected record"

let test_delete_removes () =
  let env = mk_env () in
  let d = mk_dataset env in
  D.upsert d (tw 1);
  D.delete d ~pk:1;
  Alcotest.(check bool) "gone" true (D.point_query d 1 = None);
  (* Deleting a nonexistent key is a no-op. *)
  D.delete d ~pk:42;
  Alcotest.(check bool) "still empty" true (D.point_query d 42 = None)

let test_running_example () =
  (* The UserLocation running example of Figs. 2-4: upsert (101, NY, 2018)
     over (101, CA, 2015); a location query for CA must return only 102. *)
  List.iter
    (fun strategy ->
      let env = mk_env () in
      let d = mk_dataset ~strategy env in
      D.set_auto_maintenance d false;
      let ca = 10 and ny = 20 and ma = 30 in
      D.upsert d (tw ~loc:ca ~at:2015 101);
      D.upsert d (tw ~loc:ca ~at:2016 102);
      D.flush_now d;
      D.upsert d (tw ~loc:ma ~at:2017 103);
      D.upsert d (tw ~loc:ny ~at:2018 101);
      let mode =
        match strategy with Strategy.Eager -> `Assume_valid | _ -> `Timestamp
      in
      let got = D.query_secondary d ~sec:"location" ~lo:ca ~hi:ca ~mode () in
      Alcotest.(check (list int))
        (Strategy.name strategy ^ ": only 102")
        [ 102 ] (pks got);
      (* Q2: Time < 2017 must see only (102, CA, 2016) — the memory filter
         handling distinguishes the strategies here. *)
      let matches = ref [] in
      let n =
        D.query_time_range d ~tlo:0 ~thi:2016 ~f:(fun r ->
            matches := Tweet.primary_key r :: !matches)
      in
      Alcotest.(check int) (Strategy.name strategy ^ ": Q2 count") 1 n;
      Alcotest.(check (list int))
        (Strategy.name strategy ^ ": Q2 keys")
        [ 102 ] (List.sort compare !matches))
    [
      Strategy.eager;
      Strategy.validation;
      Strategy.validation_no_repair;
      Strategy.mutable_bitmap;
      Strategy.deleted_key_btree;
    ]

let test_eager_filter_widening () =
  let env = mk_env () in
  let d = mk_dataset ~strategy:Strategy.eager env in
  D.set_auto_maintenance d false;
  D.upsert d (tw ~at:2015 1);
  D.flush_now d;
  (* Upsert moves record 1 to time 2018; the old version (2015) is deleted.
     A query for old times must not resurrect it. *)
  D.upsert d (tw ~at:2018 1);
  let n = D.query_time_range d ~tlo:0 ~thi:2016 ~f:ignore in
  Alcotest.(check int) "old version invisible" 0 n

let test_index_only_queries () =
  List.iter
    (fun strategy ->
      let env = mk_env () in
      let d = mk_dataset ~strategy env in
      D.set_auto_maintenance d false;
      D.upsert d (tw ~user:10 1);
      D.upsert d (tw ~user:20 2);
      D.flush_now d;
      D.upsert d (tw ~user:30 1);
      (* key 1 moved out of [5,25]; only key 2 remains *)
      let mode =
        match strategy with Strategy.Eager -> `Assume_valid | _ -> `Timestamp
      in
      let got = D.query_secondary_keys d ~sec:"user_id" ~lo:5 ~hi:25 ~mode () in
      Alcotest.(check (list (pair int int)))
        (Strategy.name strategy)
        [ (20, 2) ]
        (List.sort compare got))
    [
      Strategy.eager;
      Strategy.validation_no_repair;
      Strategy.mutable_bitmap;
      Strategy.deleted_key_btree;
    ]

let test_insert_without_pk_index () =
  let env = mk_env () in
  let d = mk_dataset ~use_pk_index:false env in
  Alcotest.(check bool) "ok" true (D.insert d (tw 1) = `Inserted);
  D.flush_now d;
  Alcotest.(check bool) "dup via primary" true (D.insert d (tw 1) = `Duplicate)

(* ------------------------------------------------------------------ *)
(* Cross-strategy model equivalence property *)

type op = Ins of int * int * int | Ups of int * int * int | Del of int

let op_gen =
  (* Small key space to force collisions, updates and deletes. *)
  QCheck2.Gen.(
    frequency
      [
        ( 3,
          map3
            (fun k u t -> Ins (k, u, t))
            (int_range 1 40) (int_range 0 100) (int_range 1 1000) );
        ( 5,
          map3
            (fun k u t -> Ups (k, u, t))
            (int_range 1 40) (int_range 0 100) (int_range 1 1000) );
        (2, map (fun k -> Del k) (int_range 1 40));
      ])

let run_ops d ops =
  List.iter
    (fun op ->
      match op with
      | Ins (k, u, at) -> ignore (D.insert d (tw ~user:u ~loc:(u mod 7) ~at k))
      | Ups (k, u, at) -> D.upsert d (tw ~user:u ~loc:(u mod 7) ~at k)
      | Del k -> D.delete d ~pk:k)
    ops

let run_model ops =
  List.fold_left
    (fun m op ->
      match op with
      | Ins (k, u, at) -> fst (Model.insert m (tw ~user:u ~loc:(u mod 7) ~at k))
      | Ups (k, u, at) -> Model.upsert m (tw ~user:u ~loc:(u mod 7) ~at k)
      | Del k -> Model.delete m k)
    Model.empty ops

let strategies_under_test =
  [
    (Strategy.eager, [ `Assume_valid; `Direct; `Timestamp ]);
    (Strategy.validation, [ `Direct; `Timestamp ]);
    (Strategy.validation_no_repair, [ `Direct; `Timestamp ]);
    (Strategy.validation_bloom_opt, [ `Direct; `Timestamp ]);
    (Strategy.mutable_bitmap, [ `Direct; `Timestamp ]);
    (Strategy.deleted_key_btree, [ `Timestamp ]);
  ]

let prop_strategies_agree_with_model =
  qtest ~count:80 "all strategies = model (sec + time + point queries)"
    QCheck2.Gen.(
      pair (list_size (int_range 1 150) op_gen)
        (pair (int_range 0 100) (int_range 0 100)))
    (fun (ops, (b1, b2)) ->
      let lo = min b1 b2 and hi = max b1 b2 in
      let model = run_model ops in
      let expected_sec = Model.by_user model ~lo ~hi in
      let expected_time = Model.by_time model ~tlo:100 ~thi:700 in
      List.for_all
        (fun (strategy, modes) ->
          let env = mk_env () in
          (* Tiny budget: many flushes and merges mid-stream. *)
          let d = mk_dataset ~strategy ~mem_budget:2048 env in
          run_ops d ops;
          (* Secondary queries in every supported validation mode. *)
          List.for_all
            (fun mode ->
              pks (D.query_secondary d ~sec:"user_id" ~lo ~hi ~mode ())
              = expected_sec)
            modes
          (* Time-range query. *)
          && (let got = ref [] in
              ignore
                (D.query_time_range d ~tlo:100 ~thi:700 ~f:(fun r ->
                     got := Tweet.primary_key r :: !got));
              List.sort compare !got = expected_time)
          (* Point queries. *)
          && List.for_all
               (fun k ->
                 match (D.point_query d k, IntMap.find_opt k model) with
                 | Some r, Some r' -> r.Tweet.user_id = r'.Tweet.user_id
                 | None, None -> true
                 | _ -> false)
               [ 1; 5; 10; 20; 40 ]
          (* Full scan count. *)
          && D.full_scan d ~f:ignore = IntMap.cardinal model)
        strategies_under_test)

let prop_repair_preserves_queries =
  qtest ~count:40 "standalone + primary repair never change results"
    QCheck2.Gen.(list_size (int_range 1 120) op_gen)
    (fun ops ->
      let model = run_model ops in
      let expected = Model.by_user model ~lo:0 ~hi:50 in
      List.for_all
        (fun repair ->
          let env = mk_env () in
          let d =
            mk_dataset ~strategy:Strategy.validation_no_repair ~mem_budget:2048
              env
          in
          run_ops d ops;
          repair d;
          pks (D.query_secondary d ~sec:"user_id" ~lo:0 ~hi:50 ~mode:`Timestamp ())
          = expected
          && pks (D.query_secondary d ~sec:"user_id" ~lo:0 ~hi:50 ~mode:`Direct ())
             = expected)
        [
          (fun d -> D.standalone_repair d);
          (fun d -> D.primary_repair d ~with_merge:false);
          (fun d -> D.primary_repair d ~with_merge:true);
          (fun d ->
            D.standalone_repair d;
            D.flush_now d;
            D.standalone_repair d);
        ])

let prop_index_only_agrees =
  qtest ~count:40 "index-only = model for every strategy"
    QCheck2.Gen.(list_size (int_range 1 120) op_gen)
    (fun ops ->
      let model = run_model ops in
      let expected =
        IntMap.fold
          (fun pk r acc ->
            if r.Tweet.user_id >= 10 && r.Tweet.user_id <= 60 then
              (r.Tweet.user_id, pk) :: acc
            else acc)
          model []
        |> List.sort compare
      in
      List.for_all
        (fun strategy ->
          let env = mk_env () in
          let d = mk_dataset ~strategy ~mem_budget:2048 env in
          run_ops d ops;
          let mode =
            match strategy with Strategy.Eager -> `Assume_valid | _ -> `Timestamp
          in
          List.sort compare
            (D.query_secondary_keys d ~sec:"user_id" ~lo:10 ~hi:60 ~mode ())
          = expected)
        [
          Strategy.eager;
          Strategy.validation;
          Strategy.validation_no_repair;
          Strategy.mutable_bitmap;
          Strategy.deleted_key_btree;
        ])

(* ------------------------------------------------------------------ *)
(* Repair behaviour details *)

let test_repair_sets_bitmap_bits () =
  let env = mk_env () in
  let d = mk_dataset ~strategy:Strategy.validation_no_repair env in
  D.set_auto_maintenance d false;
  D.upsert d (tw ~user:10 1);
  D.upsert d (tw ~user:20 2);
  D.flush_now d;
  (* Update both records' user ids; old secondary entries become obsolete. *)
  D.upsert d (tw ~user:30 1);
  D.upsert d (tw ~user:40 2);
  D.flush_now d;
  let sec = (D.secondaries d).(0) in
  let comps = D.Sec.components sec.D.tree in
  let total_invalid () =
    Array.fold_left
      (fun acc c ->
        match c.D.Sec.bitmap with
        | Some b -> acc + Lsm_util.Bitset.count b
        | None -> acc)
      0 comps
  in
  Alcotest.(check int) "nothing invalidated yet" 0 (total_invalid ());
  D.standalone_repair d;
  Alcotest.(check int) "two obsolete entries marked" 2 (total_invalid ());
  (* repairedTS advanced. *)
  Array.iter
    (fun c ->
      Alcotest.(check bool) "repairedTS advanced" true (c.D.Sec.repaired_ts > 0))
    (D.Sec.components sec.D.tree)

let test_repaired_ts_prunes_validation () =
  let env = mk_env () in
  let d = mk_dataset ~strategy:Strategy.validation env in
  D.set_auto_maintenance d false;
  for i = 1 to 20 do
    D.upsert d (tw ~user:i i)
  done;
  D.flush_now d;
  D.standalone_repair d;
  (* After repair, validating entries from the repaired component should
     not probe any pk components (all have maxTS <= repairedTS). *)
  let st = Lsm_sim.Env.stats env in
  let before = st.Lsm_sim.Io_stats.bloom_probes in
  let got = D.query_secondary_keys d ~sec:"user_id" ~lo:1 ~hi:20 ~mode:`Timestamp () in
  Alcotest.(check int) "all 20 keys" 20 (List.length got);
  Alcotest.(check int) "no bloom probes needed" before
    st.Lsm_sim.Io_stats.bloom_probes

let test_merge_repair_on_merge () =
  let env = mk_env () in
  let d = mk_dataset ~strategy:Strategy.validation env in
  D.set_auto_maintenance d false;
  D.upsert d (tw ~user:10 1);
  D.flush_now d;
  D.upsert d (tw ~user:20 1);
  D.flush_now d;
  (* Force a merge of the secondary's two components; repair_on_merge must
     drop/invalidate the obsolete (10, 1) entry. *)
  let before = (D.stats d).D.n_repairs in
  let sec = (D.secondaries d).(0) in
  if D.Sec.component_count sec.D.tree >= 2 then begin
    let merged =
      D.Sec.merge sec.D.tree ~first:0
        ~last:(D.Sec.component_count sec.D.tree - 1)
    in
    (* call the repair path as run_merges would *)
    ignore merged
  end;
  D.flush_now d;
  ignore before;
  let got = D.query_secondary_keys d ~sec:"user_id" ~lo:5 ~hi:15 ~mode:`Timestamp () in
  Alcotest.(check (list (pair int int))) "obsolete filtered" [] got

let test_deleted_key_strategy_records_deletes () =
  let env = mk_env () in
  let d = mk_dataset ~strategy:Strategy.deleted_key_btree env in
  D.set_auto_maintenance d false;
  D.upsert d (tw ~user:10 1);
  D.flush_now d;
  D.upsert d (tw ~user:20 1);
  let sec = (D.secondaries d).(0) in
  match sec.D.del_tree with
  | None -> Alcotest.fail "deleted-key strategy must attach del trees"
  | Some del ->
      Alcotest.(check bool) "pk recorded as superseded" true
        (D.Pk.lookup_one del 1 <> None)

(* ------------------------------------------------------------------ *)
(* Partitioned cluster (Sec. 2.2): routing, isolation, equivalence *)

module P = Lsm_core.Partitioned.Make (Lsm_workload.Tweet.Record)

let mk_cluster ?(strategy = Strategy.validation) ?(partitions = 4)
    ?(mem_budget = 4 * 1024) () =
  P.create ~filter_key:Tweet.created_at ~secondaries
    ~mk_env:(fun _ -> mk_env ())
    ~partitions
    { D.default_config with strategy; mem_budget }

let test_route_stable_and_total () =
  let p = mk_cluster () in
  let seen = Array.make 4 false in
  for pk = 0 to 999 do
    let r = P.route p pk in
    Alcotest.(check bool) "partition in range" true (r >= 0 && r < 4);
    Alcotest.(check int) "route is stable" r (P.route p pk);
    seen.(r) <- true
  done;
  Alcotest.(check bool) "every partition owns some keys" true
    (Array.for_all Fun.id seen)

(* A point query must touch exactly the owning partition: no simulated
   time and no I/O-stat movement (reads, cache, bloom, comparisons) on
   any other node. *)
let test_point_query_touches_owner_only () =
  let p = mk_cluster () in
  for i = 1 to 200 do
    P.upsert p (tw ~user:i ~at:i i)
  done;
  P.flush_now p;
  let snap i =
    let s = Lsm_sim.Env.stats (P.env p i) in
    ( s.Lsm_sim.Io_stats.pages_read + s.Lsm_sim.Io_stats.cache_hits
      + s.Lsm_sim.Io_stats.cache_misses + s.Lsm_sim.Io_stats.bloom_probes
      + s.Lsm_sim.Io_stats.comparisons,
      Lsm_sim.Env.now_us (P.env p i) )
  in
  List.iter
    (fun pk ->
      let owner = P.route p pk in
      let before = Array.init 4 snap in
      ignore (P.point_query p pk);
      Array.iteri
        (fun i b ->
          if i <> owner then
            Alcotest.(check (pair int (float 0.0)))
              (Printf.sprintf "partition %d idle for pk %d" i pk)
              b (snap i))
        before;
      Alcotest.(check bool)
        (Printf.sprintf "owner %d did the work for pk %d" owner pk)
        true
        (fst (snap owner) > fst before.(owner)))
    [ 1; 2; 3; 5; 17; 100 ]

let test_batch_matches_point_queries () =
  let p = mk_cluster () in
  for i = 1 to 300 do
    P.upsert p (tw ~user:(i mod 50) ~at:i i)
  done;
  P.flush_now p;
  (* Present and absent keys, spread over all partitions. *)
  let keys = Array.init 80 (fun i -> i * 7 mod 320) in
  let got = Hashtbl.create 64 in
  P.point_query_batch p keys ~emit:(fun pk r -> Hashtbl.replace got pk r);
  Alcotest.(check int) "emit fires once per key" (Array.length keys)
    (Hashtbl.length got);
  Array.iter
    (fun pk ->
      match Hashtbl.find_opt got pk with
      | None -> Alcotest.failf "emit missed pk %d" pk
      | Some r ->
          Alcotest.(check bool)
            (Printf.sprintf "batch = point for pk %d" pk)
            true
            (r = P.point_query p pk))
    keys

let run_ops_p p ops =
  List.iter
    (fun op ->
      match op with
      | Ins (k, u, at) -> ignore (P.insert p (tw ~user:u ~loc:(u mod 7) ~at k))
      | Ups (k, u, at) -> P.upsert p (tw ~user:u ~loc:(u mod 7) ~at k)
      | Del k -> P.delete p ~pk:k)
    ops

let prop_partitioned_equals_single =
  qtest ~count:40 "partitioned N=4 = single dataset (point/sec/time/scan)"
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 150) op_gen)
        (pair (int_range 0 100) (int_range 0 100)))
    (fun (ops, (b1, b2)) ->
      let lo = min b1 b2 and hi = max b1 b2 in
      let env = mk_env () in
      let d = mk_dataset ~strategy:Strategy.validation ~mem_budget:2048 env in
      run_ops d ops;
      let p = mk_cluster ~mem_budget:2048 () in
      run_ops_p p ops;
      List.for_all
        (fun k -> P.point_query p k = D.point_query d k)
        (List.init 40 (fun i -> i + 1))
      && pks (P.query_secondary p ~sec:"user_id" ~lo ~hi ~mode:`Timestamp ())
         = pks (D.query_secondary d ~sec:"user_id" ~lo ~hi ~mode:`Timestamp ())
      && P.full_scan p ~f:ignore = D.full_scan d ~f:ignore
      &&
      let got_p = ref [] and got_d = ref [] in
      ignore
        (P.query_time_range p ~tlo:100 ~thi:700 ~f:(fun r ->
             got_p := Tweet.primary_key r :: !got_p));
      ignore
        (D.query_time_range d ~tlo:100 ~thi:700 ~f:(fun r ->
             got_d := Tweet.primary_key r :: !got_d));
      List.sort compare !got_p = List.sort compare !got_d)

(* ------------------------------------------------------------------ *)
(* Ingestion cost sanity: the paper's headline claims, in miniature *)

let ingest_n strategy n =
  let env = mk_env () in
  let d = mk_dataset ~strategy ~mem_budget:(16 * 1024) env in
  let stream =
    Lsm_workload.Streams.upsert_stream ~seed:99 ~update_ratio:0.5
      ~distribution:`Uniform ()
  in
  for _ = 1 to n do
    match Lsm_workload.Streams.next stream with
    | Lsm_workload.Streams.Upsert r -> D.upsert d r
    | _ -> ()
  done;
  Lsm_sim.Env.now_us env

let test_validation_ingests_faster_than_eager () =
  let eager = ingest_n Strategy.eager 1500 in
  let validation = ingest_n Strategy.validation_no_repair 1500 in
  Alcotest.(check bool)
    (Printf.sprintf "validation %.0fus < eager %.0fus" validation eager)
    true (validation < eager)

let test_mutable_bitmap_cheaper_than_eager () =
  let eager = ingest_n Strategy.eager 1500 in
  let mb = ingest_n Strategy.mutable_bitmap 1500 in
  Alcotest.(check bool)
    (Printf.sprintf "mutable-bitmap %.0fus < eager %.0fus" mb eager)
    true (mb < eager)

let () =
  Alcotest.run "lsm_core"
    [
      ( "basic",
        [
          Alcotest.test_case "insert + point query" `Quick
            test_insert_and_point_query;
          Alcotest.test_case "upsert replaces" `Quick test_upsert_replaces;
          Alcotest.test_case "delete removes" `Quick test_delete_removes;
          Alcotest.test_case "running example (Figs. 2-4)" `Quick
            test_running_example;
          Alcotest.test_case "eager filter widening" `Quick
            test_eager_filter_widening;
          Alcotest.test_case "index-only queries" `Quick test_index_only_queries;
          Alcotest.test_case "insert without pk index" `Quick
            test_insert_without_pk_index;
        ] );
      ( "model",
        [
          prop_strategies_agree_with_model;
          prop_repair_preserves_queries;
          prop_index_only_agrees;
        ] );
      ( "repair",
        [
          Alcotest.test_case "repair sets bitmap bits" `Quick
            test_repair_sets_bitmap_bits;
          Alcotest.test_case "repairedTS prunes validation" `Quick
            test_repaired_ts_prunes_validation;
          Alcotest.test_case "merge repair cleans" `Quick test_merge_repair_on_merge;
          Alcotest.test_case "deleted-key records deletes" `Quick
            test_deleted_key_strategy_records_deletes;
        ] );
      ( "partitioned",
        [
          Alcotest.test_case "route stable and total" `Quick
            test_route_stable_and_total;
          Alcotest.test_case "point query touches owner only" `Quick
            test_point_query_touches_owner_only;
          Alcotest.test_case "batch = point queries" `Quick
            test_batch_matches_point_queries;
          prop_partitioned_equals_single;
        ] );
      ( "cost",
        [
          Alcotest.test_case "validation faster than eager" `Quick
            test_validation_ingests_faster_than_eager;
          Alcotest.test_case "mutable-bitmap faster than eager" `Quick
            test_mutable_bitmap_cheaper_than_eager;
        ] );
    ]
