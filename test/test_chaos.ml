(* The chaos-hardened serving layer: the fault-plan grammar, the
   per-partition circuit breaker, the driver's faulted runs (determinism,
   graceful degradation, phase accounting), and the degraded-correctness
   checker — including that the checker itself catches lies. *)

module Chaos = Lsm_serve.Chaos
module Checker = Lsm_serve.Chaos_checker
module Driver = Lsm_serve.Driver
module Tweet = Lsm_workload.Tweet

(* ------------------------------------------------------------------ *)
(* Spec grammar *)

let parse_ok s =
  match Chaos.parse s with
  | Ok fs -> fs
  | Error e -> Alcotest.failf "parse %S: %s" s e

let parse_err s =
  match Chaos.parse s with
  | Ok _ -> Alcotest.failf "parse %S: expected an error" s
  | Error _ -> ()

let test_parse_ok () =
  (match parse_ok "crash@p2@t150ms" with
  | [ { Chaos.part = 2; trigger = Chaos.At_us t; action = Chaos.Crash } ] ->
      Alcotest.(check (float 1e-9)) "150ms" 150_000.0 t
  | _ -> Alcotest.fail "crash spec shape");
  (match parse_ok "crash@p0@n500" with
  | [ { Chaos.trigger = Chaos.At_arrival 500; action = Chaos.Crash; _ } ] -> ()
  | _ -> Alcotest.fail "arrival trigger shape");
  (match parse_ok "io@p1@t50ms+40ms!6" with
  | [ { Chaos.part = 1; action = Chaos.Io_window { dur_us; fails }; _ } ] ->
      Alcotest.(check (float 1e-9)) "40ms window" 40_000.0 dur_us;
      Alcotest.(check int) "6 consecutive fails" 6 fails
  | _ -> Alcotest.fail "io spec shape");
  (match parse_ok "slow@p3@t60ms+50ms*8" with
  | [ { Chaos.action = Chaos.Slow { dur_us; factor }; _ } ] ->
      Alcotest.(check (float 1e-9)) "50ms window" 50_000.0 dur_us;
      Alcotest.(check (float 1e-9)) "8x" 8.0 factor
  | _ -> Alcotest.fail "slow spec shape");
  (match parse_ok "corrupt@p1@t80ms" with
  | [ { Chaos.part = 1; action = Chaos.Corrupt; _ } ] -> ()
  | _ -> Alcotest.fail "corrupt spec shape");
  (* Multi-element plans split on ';' or ',' and tolerate blanks. *)
  Alcotest.(check int) "three elements" 3
    (List.length (parse_ok "crash@p1@t60ms; io@p2@t30ms+30ms!6,slow@p0@t1s+2s"))

let test_parse_errors () =
  List.iter parse_err
    [
      "";
      "explode@p0@t5ms";
      "crash@q0@t5ms";
      "crash@p0@5ms";
      "crash@p0@t5parsecs";
      "io@p0@t5ms";
      (* window required *)
      "slow@p0@t5ms";
      "crash@p0@n0";
      (* arrivals are 1-based *)
      "crash@p0@t-5ms";
      "io@p0@t5ms+4ms!0";
    ]

(* ------------------------------------------------------------------ *)
(* Circuit breaker *)

let record_n b ~now ~ok n =
  for _ = 1 to n do
    Chaos.Breaker.record b ~now ~ok
  done

let test_breaker_trips_and_recovers () =
  let b = Chaos.Breaker.create ~cooldown_us:1000.0 () in
  Alcotest.(check bool) "starts closed" true
    (Chaos.Breaker.state b = Chaos.Breaker.Closed);
  Alcotest.(check bool) "closed admits" true
    (Chaos.Breaker.admit b ~now:0.0 = `Allow);
  (* Errors below min_events don't trip. *)
  record_n b ~now:10.0 ~ok:false 7;
  Alcotest.(check bool) "under min_events stays closed" true
    (Chaos.Breaker.state b = Chaos.Breaker.Closed);
  (* The 8th error crosses min_events at 100% error rate: open. *)
  Chaos.Breaker.record b ~now:20.0 ~ok:false;
  Alcotest.(check bool) "opens on budget burn" true
    (Chaos.Breaker.state b = Chaos.Breaker.Open);
  Alcotest.(check int) "one open" 1 (Chaos.Breaker.opens b);
  Alcotest.(check bool) "open rejects during cooldown" true
    (Chaos.Breaker.admit b ~now:500.0 = `Reject);
  (* Cooldown elapsed: half-open probe; a success closes it. *)
  Alcotest.(check bool) "probes after cooldown" true
    (Chaos.Breaker.admit b ~now:1500.0 = `Probe);
  Chaos.Breaker.record b ~now:1500.0 ~ok:true;
  Alcotest.(check bool) "probe success closes" true
    (Chaos.Breaker.state b = Chaos.Breaker.Closed);
  (* A failed probe re-opens instead. *)
  record_n b ~now:2000.0 ~ok:false 8;
  ignore (Chaos.Breaker.admit b ~now:4000.0);
  Chaos.Breaker.record b ~now:4000.0 ~ok:false;
  Alcotest.(check bool) "probe failure re-opens" true
    (Chaos.Breaker.state b = Chaos.Breaker.Open);
  Alcotest.(check int) "three opens" 3 (Chaos.Breaker.opens b);
  Alcotest.(check bool) "transitions recorded oldest-first" true
    (List.length (Chaos.Breaker.transitions b) >= 5)

let test_breaker_mixed_traffic_stays_closed () =
  let b = Chaos.Breaker.create () in
  (* 25% errors < 50% threshold: windows recycle, never trips. *)
  for k = 1 to 400 do
    Chaos.Breaker.record b ~now:(Float.of_int k) ~ok:(k mod 4 <> 0)
  done;
  Alcotest.(check bool) "stays closed" true
    (Chaos.Breaker.state b = Chaos.Breaker.Closed);
  Alcotest.(check int) "no opens" 0 (Chaos.Breaker.opens b)

(* ------------------------------------------------------------------ *)
(* Faulted runs: one small config shared by the scenario tests.  The
   rate is explicit so no capacity estimation runs, and the duration is
   short — each run is a few thousand arrivals. *)

let chaos_cfg ?(seed = 7) ?(strategy = Lsm_core.Strategy.validation) spec =
  let cfg = Driver.config ~partitions:4 Lsm_harness.Scale.tiny in
  {
    cfg with
    Driver.rate_rps = 1600.0;
    duration_s = 0.4;
    seed;
    strategy;
    mix = Driver.chaos_mix;
    chaos = parse_ok spec;
    policy =
      {
        Chaos.deadline_us = 8_000.0;
        retries = 1;
        hedge_us = 0.0;
        shed_backlog_us = 30_000.0;
      };
  }

let checked_run cfg =
  let checker = Checker.create ~partitions:cfg.Driver.partitions () in
  let verdict = ref None in
  let c =
    Driver.run_chaos
      ~on_preload:(Checker.preload checker)
      ~observe:(Checker.observe checker)
      ~probe:(fun lookup -> verdict := Some (Checker.verify checker ~probe:lookup))
      cfg
  in
  match !verdict with
  | Some v -> (c, v)
  | None -> Alcotest.fail "probe callback never ran"

let crash_run = lazy (checked_run (chaos_cfg "crash@p1@t60ms"))

let test_crash_passes_checker () =
  let c, v = Lazy.force crash_run in
  if not (Checker.ok v) then
    Alcotest.failf "checker failed: %s" (Fmt.str "%a" Checker.pp_verdict v);
  Alcotest.(check bool) "answers were audited" true (v.Checker.v_checked > 0);
  Alcotest.(check bool) "durability probe ran" true (v.Checker.v_probed > 0);
  (* Every arrival is accounted: ok + errors + shed, nothing dropped. *)
  Alcotest.(check int) "arrivals = ok + errors + shed"
    v.Checker.v_arrivals
    (v.Checker.v_successes + v.Checker.v_failures + v.Checker.v_shed);
  Alcotest.(check int) "driver and checker agree on arrivals"
    c.Driver.c_base.Driver.requests v.Checker.v_arrivals

let test_crash_degrades_gracefully () =
  let c, _ = Lazy.force crash_run in
  (* The crash produced a real outage window... *)
  Alcotest.(check bool) "partition was down" true (c.Driver.down_us > 0.0);
  Alcotest.(check bool) "some requests failed" true (c.Driver.failures > 0);
  (* ...but the fleet kept serving: availability stays high. *)
  Alcotest.(check bool)
    (Printf.sprintf "availability %.3f in (0.5, 1)" c.Driver.availability)
    true
    (c.Driver.availability > 0.5 && c.Driver.availability < 1.0);
  (* Phase accounting covers every arrival and saw degradation. *)
  let total = List.fold_left (fun a (_, n) -> a + n) 0 c.Driver.phase_counts in
  Alcotest.(check int) "phases partition the arrivals"
    c.Driver.c_base.Driver.requests total;
  let count ph = List.assoc ph c.Driver.phase_counts in
  Alcotest.(check bool) "healthy phase dominates" true (count "healthy" > 0);
  Alcotest.(check bool) "degraded phase observed" true
    (count "degraded" > 0 || count "recovering" > 0)

let test_chaos_deterministic () =
  let c1, v1 = Lazy.force crash_run in
  let c2, v2 = checked_run (chaos_cfg "crash@p1@t60ms") in
  Alcotest.(check bool) "same seed, identical chaos result" true (c1 = c2);
  Alcotest.(check bool) "identical verdict" true (v1 = v2)

let test_io_window_absorbed_by_retries () =
  (* 2 consecutive fails <= the engine's retry budget (3): the window
     costs latency, never errors, and the front door sees no faults. *)
  let c, v = checked_run (chaos_cfg "io@p2@t30ms+60ms!2") in
  if not (Checker.ok v) then
    Alcotest.failf "checker failed: %s" (Fmt.str "%a" Checker.pp_verdict v);
  let resil = List.nth c.Driver.c_base.Driver.resil 2 in
  Alcotest.(check bool) "engine retries absorbed the window" true
    (resil.Driver.pr_retries > 0);
  Alcotest.(check int) "no retry exhaustion" 0 resil.Driver.pr_exhausted

let test_io_window_beyond_retries_errors () =
  (* 8 consecutive fails exhaust the engine's retry budget; with the
     front door's own retry budget zeroed, exhaustions surface as
     request errors — and fan-outs answer partially, which the checker
     still audits (healthy slots exact, errored partitions excused). *)
  let cfg = chaos_cfg "io@p2@t10ms+350ms!8" in
  let cfg =
    { cfg with Driver.policy = { cfg.Driver.policy with Chaos.retries = 0 } }
  in
  let c, v = checked_run cfg in
  if not (Checker.ok v) then
    Alcotest.failf "checker failed: %s" (Fmt.str "%a" Checker.pp_verdict v);
  let resil = List.nth c.Driver.c_base.Driver.resil 2 in
  Alcotest.(check bool) "retries exhausted" true (resil.Driver.pr_exhausted > 0);
  Alcotest.(check bool) "requests errored" true (c.Driver.failures > 0);
  Alcotest.(check bool) "some fan-outs answered partially" true
    (c.Driver.partials > 0)

let test_slow_window_checks_out () =
  let c, v = checked_run (chaos_cfg "slow@p3@t40ms+60ms*8") in
  if not (Checker.ok v) then
    Alcotest.failf "checker failed: %s" (Fmt.str "%a" Checker.pp_verdict v);
  (* A slow disk degrades (phase accounting sees the window) without
     corrupting anything. *)
  Alcotest.(check bool) "degraded phase observed" true
    (List.assoc "degraded" c.Driver.phase_counts > 0)

let test_corrupt_heals_and_checks_out () =
  (* Corruption arms on the partition's next flush write and is caught
     when the page is read back — both need enough traffic, so this run
     is longer and faster than the others. *)
  let cfg =
    { (chaos_cfg "corrupt@p0@t50ms") with
      Driver.rate_rps = 2200.0;
      duration_s = 1.0;
    }
  in
  let c, v = checked_run cfg in
  if not (Checker.ok v) then
    Alcotest.failf "checker failed: %s" (Fmt.str "%a" Checker.pp_verdict v);
  let resil = List.nth c.Driver.c_base.Driver.resil 0 in
  Alcotest.(check bool) "checksum caught the bad page" true
    (resil.Driver.pr_checksum > 0)

let test_eager_rejected () =
  let cfg = { (chaos_cfg "crash@p0@t5ms") with Driver.strategy = Lsm_core.Strategy.Eager } in
  match Driver.run_chaos cfg with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "Eager must be rejected (no WAL wrapper)"

(* ------------------------------------------------------------------ *)
(* The checker itself must catch lies, not just bless runs. *)

let tweet id =
  Tweet.
    { id; user_id = id * 7; location = 1; created_at = id + 1; msg_len = 10 }

let test_checker_catches_lies () =
  let ck = Checker.create ~partitions:4 () in
  let t1 = tweet 1 in
  Checker.observe ck (Driver.O_ack (Driver.Rt.Insert t1));
  (* Wrong point answer: acked key read back as absent. *)
  Checker.observe ck (Driver.O_point (1, None));
  (* A multi-get slot answered by a partition the reply claims errored. *)
  Checker.observe ck
    (Driver.O_multi
       { got = [ (1, Some t1) ]; err_parts = [ Checker.route ck 1 ] });
  let v = Checker.verify ck ~probe:(fun _ -> None) in
  Alcotest.(check bool) "violations found" true (not (Checker.ok v));
  (* wrong point + errored-slot ownership + durability probe miss *)
  Alcotest.(check int) "three violations" 3 v.Checker.v_violations_total

let test_checker_accepts_honest_degradation () =
  let ck = Checker.create ~partitions:4 () in
  let t1 = tweet 1 and t2 = tweet 2 in
  Checker.observe ck (Driver.O_ack (Driver.Rt.Insert t1));
  Checker.observe ck (Driver.O_ack (Driver.Rt.Insert t2));
  (* An errored partition's slot withheld is fine; the healthy slot must
     still be exact.  Shed and errors are counted, not checked. *)
  let p2 = Checker.route ck 2 in
  Checker.observe ck
    (Driver.O_multi { got = [ (1, Some t1) ]; err_parts = [ p2 ] });
  Checker.observe ck (Driver.O_error "down");
  Checker.observe ck Driver.O_shed;
  let v =
    Checker.verify ck ~probe:(fun pk -> if pk = 1 then Some t1 else Some t2)
  in
  if not (Checker.ok v) then
    Alcotest.failf "checker failed: %s" (Fmt.str "%a" Checker.pp_verdict v);
  Alcotest.(check int) "accounting" 5 v.Checker.v_arrivals;
  Alcotest.(check int) "one error" 1 v.Checker.v_failures;
  Alcotest.(check int) "one shed" 1 v.Checker.v_shed

(* ------------------------------------------------------------------ *)
(* Property: under a random single-partition fault plan, every degraded
   fan-out answer is a value-exact subset of fault-free semantics keyed
   by non-errored partitions, and acked writes survive recovery — i.e.
   the checker passes — for both WAL-compatible strategies. *)

let chaos_property =
  QCheck.Test.make ~count:4 ~name:"degraded answers are exact subsets"
    QCheck.(
      triple (int_range 0 3) (int_range 1 1000)
        (oneofl [ "crash"; "io"; "slow" ]))
    (fun (part, seed, kind) ->
      List.for_all
        (fun strategy ->
          let spec =
            match kind with
            | "crash" -> Printf.sprintf "crash@p%d@t60ms" part
            | "io" -> Printf.sprintf "io@p%d@t30ms+60ms!6" part
            | _ -> Printf.sprintf "slow@p%d@t30ms+60ms*8" part
          in
          let cfg =
            { (chaos_cfg ~seed ~strategy spec) with Driver.duration_s = 0.15 }
          in
          let _, v = checked_run cfg in
          if not (Checker.ok v) then
            QCheck.Test.fail_reportf "p%d seed %d %s (%s): %s" part seed kind
              (Lsm_core.Strategy.name strategy)
              (Fmt.str "%a" Checker.pp_verdict v);
          true)
        [ Lsm_core.Strategy.validation; Lsm_core.Strategy.mutable_bitmap ])

let () =
  Alcotest.run "lsm_chaos"
    [
      ( "spec",
        [
          Alcotest.test_case "grammar round-trips" `Quick test_parse_ok;
          Alcotest.test_case "rejects nonsense" `Quick test_parse_errors;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "trips, cools down, recovers" `Quick
            test_breaker_trips_and_recovers;
          Alcotest.test_case "mixed traffic stays closed" `Quick
            test_breaker_mixed_traffic_stays_closed;
        ] );
      ( "driver",
        [
          Alcotest.test_case "crash: checker passes" `Quick
            test_crash_passes_checker;
          Alcotest.test_case "crash: degrades gracefully" `Quick
            test_crash_degrades_gracefully;
          Alcotest.test_case "deterministic for a seed" `Quick
            test_chaos_deterministic;
          Alcotest.test_case "io window within retry budget" `Quick
            test_io_window_absorbed_by_retries;
          Alcotest.test_case "io window beyond retry budget" `Quick
            test_io_window_beyond_retries_errors;
          Alcotest.test_case "slow window" `Quick test_slow_window_checks_out;
          Alcotest.test_case "corruption heals" `Quick
            test_corrupt_heals_and_checks_out;
          Alcotest.test_case "eager strategy rejected" `Quick
            test_eager_rejected;
        ] );
      ( "checker",
        [
          Alcotest.test_case "catches lies" `Quick test_checker_catches_lies;
          Alcotest.test_case "accepts honest degradation" `Quick
            test_checker_accepts_honest_degradation;
          QCheck_alcotest.to_alcotest chaos_property;
        ] );
    ]
