(* Tests for lib/serve: the global flush coordinator (budget invariant),
   open-loop arrival processes, and the driver's saturation/determinism
   contracts — the knee must be demonstrable: below capacity p99 stays
   bounded, above it queueing delay dominates. *)

module Budget = Lsm_serve.Budget
module Arrivals = Lsm_serve.Arrivals
module Driver = Lsm_serve.Driver

(* ------------------------------------------------------------------ *)
(* Budget coordinator, against synthetic partitions *)

let synthetic mems =
  let mem = Array.map ref mems in
  let flushed = ref [] in
  let parts =
    Array.mapi
      (fun i _ ->
        Budget.part
          ~mem_bytes:(fun () -> !(mem.(i)))
          ~flush:(fun () ->
            flushed := i :: !flushed;
            mem.(i) := 0)
          ())
      mem
  in
  (flushed, parts)

let test_budget_evicts_largest () =
  let flushed, parts = synthetic [| 10; 20; 5 |] in
  let b = Budget.create ~budget_bytes:30 parts in
  Budget.enforce b;
  Alcotest.(check (list int)) "largest memtable flushed" [ 1 ] !flushed;
  Alcotest.(check int) "total back under budget" 15 (Budget.total b);
  Alcotest.(check int) "one eviction" 1 (Budget.evictions b);
  Alcotest.(check int) "pre-enforcement peak" 35 (Budget.peak_pre_bytes b);
  Alcotest.(check int) "post-enforcement peak" 15 (Budget.peak_bytes b);
  (* Below budget enforce is a no-op. *)
  Budget.enforce b;
  Alcotest.(check int) "no spurious eviction" 1 (Budget.evictions b)

let test_budget_cascades () =
  let flushed, parts = synthetic [| 10; 20; 5 |] in
  let b = Budget.create ~budget_bytes:12 parts in
  Budget.enforce b;
  (* 35 >= 12: flush p1 (20) -> 15 >= 12: flush p0 (10) -> 5 < 12. *)
  Alcotest.(check (list int)) "argmax order" [ 1; 0 ] (List.rev !flushed);
  Alcotest.(check int) "two evictions" 2 (Budget.evictions b);
  Alcotest.(check bool) "invariant restored" true
    (Budget.total b < Budget.budget_bytes b)

let test_budget_ties_break_low () =
  let flushed, parts = synthetic [| 7; 7 |] in
  let b = Budget.create ~budget_bytes:10 parts in
  Budget.enforce b;
  Alcotest.(check (list int)) "lowest index wins the tie" [ 0 ] !flushed

let test_budget_validates () =
  let _, parts = synthetic [| 1 |] in
  Alcotest.check_raises "budget >= 1"
    (Invalid_argument "Budget.create: budget_bytes >= 1") (fun () ->
      ignore (Budget.create ~budget_bytes:0 parts));
  Alcotest.check_raises "no partitions"
    (Invalid_argument "Budget.create: no partitions") (fun () ->
      ignore (Budget.create ~budget_bytes:1 [||]))

(* Sharded partitions: eviction flushes the largest *shard*, never a
   whole partition's memtables — the overshoot fix.  Mirrors
   [synthetic] with per-shard byte counters. *)
let synthetic_sharded parts_shards =
  let mem = Array.map Array.copy parts_shards in
  let flushed = ref [] in
  let parts =
    Array.mapi
      (fun i shards ->
        Budget.part ~shards:(Array.length shards)
          ~mem_bytes:(fun () -> Array.fold_left ( + ) 0 mem.(i))
          ~shard_bytes:(fun s -> mem.(i).(s))
          ~flush_shard:(fun s ->
            flushed := (i, s) :: !flushed;
            mem.(i).(s) <- 0)
          ~flush:(fun () -> Array.fill mem.(i) 0 (Array.length mem.(i)) 0)
          ())
      mem
  in
  (flushed, parts)

let test_budget_evicts_largest_shard () =
  let flushed, parts = synthetic_sharded [| [| 8; 12 |]; [| 6; 9 |] |] in
  let b = Budget.create ~budget_bytes:30 parts in
  Budget.enforce b;
  Alcotest.(check (list (pair int int)))
    "largest shard only" [ (0, 1) ] !flushed;
  Alcotest.(check int) "sibling shards untouched" 23 (Budget.total b);
  Alcotest.(check int) "one eviction" 1 (Budget.evictions b)

let test_budget_shard_cascade () =
  let flushed, parts = synthetic_sharded [| [| 8; 12 |]; [| 6; 9 |] |] in
  let b = Budget.create ~budget_bytes:12 parts in
  Budget.enforce b;
  (* 35 >= 12: evict (0,1)=12 -> 23 >= 12: (1,1)=9 -> 14 >= 12: (0,0)=8
     -> 6 < 12.  Greedy largest-first crosses partitions freely. *)
  Alcotest.(check (list (pair int int)))
    "greedy largest-first across partitions"
    [ (0, 1); (1, 1); (0, 0) ]
    (List.rev !flushed);
  Alcotest.(check int) "three evictions" 3 (Budget.evictions b)

(* The overshoot regression this PR fixes: on an identical write
   sequence the shard-granular policy must not raise the
   pre-enforcement peak.  peak_pre is the budget plus whichever write
   trips it, so with aligned write sizes the two policies peak at
   exactly the same byte — while the sharded one evicts in smaller
   units (more, cheaper evictions instead of whole-memtable dumps). *)
let test_budget_shard_peak_pre_no_regress () =
  let drive ~shards =
    let n = max 1 shards in
    let mem = Array.make n 0 in
    let parts =
      [|
        Budget.part ~shards:n
          ~mem_bytes:(fun () -> Array.fold_left ( + ) 0 mem)
          ~shard_bytes:(fun s -> mem.(s))
          ~flush_shard:(fun s -> mem.(s) <- 0)
          ~flush:(fun () -> Array.fill mem 0 n 0)
          ();
      |]
    in
    let b = Budget.create ~budget_bytes:100 parts in
    for i = 0 to 39 do
      mem.(i mod n) <- mem.(i mod n) + 10;
      Budget.enforce b
    done;
    b
  in
  let b1 = drive ~shards:1 in
  let b4 = drive ~shards:4 in
  Alcotest.(check bool) "both configurations evicted" true
    (Budget.evictions b1 > 0 && Budget.evictions b4 > 0);
  Alcotest.(check int) "sharded peak_pre no worse"
    (Budget.peak_pre_bytes b1)
    (Budget.peak_pre_bytes b4);
  Alcotest.(check bool) "sharded evicts in smaller units" true
    (Budget.evictions b4 > Budget.evictions b1)

(* ------------------------------------------------------------------ *)
(* Arrival processes *)

let test_arrivals_uniform_exact () =
  let a = Arrivals.create ~rate_rps:1000.0 `Uniform in
  Alcotest.(check (float 1e-9)) "first" 1000.0 (Arrivals.next a);
  Alcotest.(check (float 1e-9)) "second" 2000.0 (Arrivals.next a);
  Alcotest.(check (float 1e-9)) "third" 3000.0 (Arrivals.next a)

let test_arrivals_poisson_mean () =
  let a = Arrivals.create ~seed:3 ~rate_rps:1000.0 `Poisson in
  let n = 20_000 in
  let prev = ref 0.0 in
  for _ = 1 to n do
    let t = Arrivals.next a in
    Alcotest.(check bool) "strictly increasing" true (t > !prev);
    prev := t
  done;
  (* Exponential gaps with mean 1000us: the empirical mean over 20k draws
     sits within a few sigma of 1000 (and the stream is seeded, so this
     is deterministic regardless). *)
  let mean_gap = !prev /. Float.of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean gap %.1fus ~ 1000us" mean_gap)
    true
    (mean_gap > 950.0 && mean_gap < 1050.0)

let test_arrivals_seeded () =
  let a = Arrivals.create ~seed:11 ~rate_rps:500.0 `Poisson in
  let b = Arrivals.create ~seed:11 ~rate_rps:500.0 `Poisson in
  for _ = 1 to 1000 do
    Alcotest.(check (float 0.0)) "same stream" (Arrivals.next a)
      (Arrivals.next b)
  done

let test_arrivals_bursty_mean () =
  let a = Arrivals.create ~seed:3 ~rate_rps:1000.0 `Bursty in
  let n = 100_000 in
  let prev = ref 0.0 in
  let sumsq = ref 0.0 in
  for _ = 1 to n do
    let t = Arrivals.next a in
    Alcotest.(check bool) "strictly increasing" true (t > !prev);
    let gap = t -. !prev in
    sumsq := !sumsq +. (gap *. gap);
    prev := t
  done;
  (* The on/off modulation preserves the long-run mean rate exactly, so
     the empirical mean gap still sits near 1000us — but the gap
     distribution is a mixture of two exponentials, so its squared
     coefficient of variation exceeds Poisson's 1. *)
  let mean_gap = !prev /. Float.of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean gap %.1fus ~ 1000us" mean_gap)
    true
    (mean_gap > 900.0 && mean_gap < 1100.0);
  let var = (!sumsq /. Float.of_int n) -. (mean_gap *. mean_gap) in
  let scv = var /. (mean_gap *. mean_gap) in
  Alcotest.(check bool)
    (Printf.sprintf "burstier than Poisson: scv %.2f > 1.2" scv)
    true (scv > 1.2)

let test_arrivals_bursty_seeded () =
  let a = Arrivals.create ~seed:11 ~rate_rps:500.0 `Bursty in
  let b = Arrivals.create ~seed:11 ~rate_rps:500.0 `Bursty in
  for _ = 1 to 1000 do
    Alcotest.(check (float 0.0)) "same stream" (Arrivals.next a)
      (Arrivals.next b)
  done

let test_arrivals_validate () =
  Alcotest.check_raises "rate 0"
    (Invalid_argument "Arrivals.create: rate_rps must be > 0") (fun () ->
      ignore (Arrivals.create ~rate_rps:0.0 `Poisson));
  List.iter
    (fun k ->
      Alcotest.(check string)
        "kind roundtrip"
        (Arrivals.string_of_kind k)
        (Arrivals.string_of_kind
           (Arrivals.kind_of_string (Arrivals.string_of_kind k))))
    [ `Poisson; `Uniform; `Bursty ];
  match Arrivals.kind_of_string "fractal" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown kind must raise"

(* ------------------------------------------------------------------ *)
(* The open-loop driver *)

let tiny_cfg ?(rate = 1200.0) ?(duration = 0.25) ?(seed = 5) () =
  let cfg = Driver.config ~partitions:4 Lsm_harness.Scale.tiny in
  { cfg with Driver.rate_rps = rate; duration_s = duration; seed }

(* One run shared by the invariant/accounting/determinism checks. *)
let base_run = lazy (Driver.run (tiny_cfg ()))

let test_budget_invariant_under_load () =
  let r = Lazy.force base_run in
  Alcotest.(check bool) "coordinator fired" true (r.Driver.evictions > 0);
  Alcotest.(check bool)
    (Printf.sprintf "peak %d < budget %d" r.Driver.peak_mem_bytes
       r.Driver.budget_bytes)
    true
    (r.Driver.peak_mem_bytes < r.Driver.budget_bytes);
  (* Since evictions fired, some write overshot the budget before its
     same-instant eviction pulled the aggregate back under. *)
  Alcotest.(check bool) "overshoot reached the budget" true
    (r.Driver.peak_pre_mem_bytes >= r.Driver.budget_bytes)

let test_class_accounting () =
  let r = Lazy.force base_run in
  Alcotest.(check (list string))
    "one row per class plus all"
    [ "ingest"; "point"; "multi"; "secondary"; "scan"; "all" ]
    (List.map (fun (c : Driver.class_stats) -> c.Driver.cls) r.Driver.classes);
  let counts =
    List.map (fun (c : Driver.class_stats) -> c.Driver.count) r.Driver.classes
  in
  (match counts with
  | [ a; b; c; d; e; all ] ->
      Alcotest.(check int) "classes partition the requests" all
        (a + b + c + d + e);
      Alcotest.(check int) "all = requests" r.Driver.requests all
  | _ -> Alcotest.fail "expected 6 class rows");
  List.iter
    (fun (c : Driver.class_stats) ->
      Alcotest.(check bool)
        (c.Driver.cls ^ ": 0 <= p50 <= p95 <= p99")
        true
        (c.Driver.p50_us >= 0.0
        && c.Driver.p50_us <= c.Driver.p95_us
        && c.Driver.p95_us <= c.Driver.p99_us))
    r.Driver.classes

let test_run_deterministic () =
  let r1 = Lazy.force base_run in
  let r2 = Driver.run (tiny_cfg ()) in
  Alcotest.(check bool) "same seed, identical result" true (r1 = r2);
  let r3 = Driver.run (tiny_cfg ~seed:6 ()) in
  Alcotest.(check bool) "different seed, different traffic" true (r1 <> r3)

let test_auto_rate () =
  let r = Driver.run (tiny_cfg ~rate:0.0 ~duration:0.15 ()) in
  Alcotest.(check bool) "capacity estimate recorded" true
    (r.Driver.capacity_rps > 0.0);
  Alcotest.(check (float 0.0)) "offered rate = 70% of capacity"
    (0.7 *. r.Driver.capacity_rps)
    r.Driver.rate_rps

let test_knee () =
  let cfg = tiny_cfg ~rate:0.0 ~duration:0.3 () in
  let cap = Driver.estimate_capacity cfg in
  Alcotest.(check bool) "capacity positive" true (cap > 0.0);
  let low = Driver.run { cfg with Driver.rate_rps = 0.3 *. cap } in
  let high = Driver.run { cfg with Driver.rate_rps = 3.0 *. cap } in
  Alcotest.(check bool) "30% of capacity: below saturation" false
    low.Driver.saturated;
  Alcotest.(check bool) "3x capacity: saturated" true high.Driver.saturated;
  Alcotest.(check bool)
    (Printf.sprintf "queueing delay grew %.2fx across the run"
       high.Driver.queue_growth)
    true
    (high.Driver.queue_growth > 1.5);
  Alcotest.(check bool) "backlog dominates above the knee" true
    (high.Driver.backlog_frac > low.Driver.backlog_frac
    && high.Driver.backlog_frac > 0.5)

(* ------------------------------------------------------------------ *)
(* Timelines, burn-rate SLOs, and interference attribution *)

module Timeseries = Lsm_obs.Timeseries
module Slo = Lsm_obs.Slo
module Histogram = Lsm_obs.Histogram
module Serve_report = Lsm_serve.Serve_report

let window_us = 20_000.0

(* The knee pair again, this time instrumented: one capacity probe, then
   a quiet 0.3x run and a saturated 3x run with timelines attached. *)
let timeline_pair =
  lazy
    (let cfg = tiny_cfg ~rate:0.0 ~duration:0.3 () in
     let cap = Driver.estimate_capacity cfg in
     let low_ts = Timeseries.create ~window_us () in
     let low =
       Driver.run ~timeline:low_ts { cfg with Driver.rate_rps = 0.3 *. cap }
     in
     let high_ts = Timeseries.create ~window_us () in
     let high =
       Driver.run ~timeline:high_ts { cfg with Driver.rate_rps = 3.0 *. cap }
     in
     (low, low_ts, high, high_ts))

(* Threshold comfortably above everything the quiet run saw: the 0.3x
   run cannot violate it even once, so any alert can only come from the
   saturated run's queueing. *)
let objective_for low_ts =
  let worst = ref 0.0 in
  for i = 0 to Timeseries.n_windows low_ts - 1 do
    match Timeseries.hist low_ts ~i "all" with
    | Some h -> worst := Float.max !worst (Histogram.max_value h)
    | None -> ()
  done;
  { Slo.series = "all"; quantile = 0.99; threshold_us = !worst *. 1.5 }

let test_saturated_run_alerts_with_culprit () =
  let _, low_ts, high, high_ts = Lazy.force timeline_pair in
  let o = objective_for low_ts in
  Alcotest.(check bool) "3x run saturated" true high.Driver.saturated;
  let alerts = Slo.evaluate high_ts o in
  Alcotest.(check bool) "burn-rate alert fired" true (alerts <> []);
  let findings = Slo.attribute high_ts alerts in
  Alcotest.(check bool) "attribution joined events" true (findings <> []);
  Alcotest.(check bool)
    "a budget eviction or merge is named in a spiking window" true
    (List.exists
       (fun (f : Slo.finding) ->
         match f.Slo.f_event.Timeseries.e_kind with
         | "eviction" | "lsm.merge" | "lsm.flush" | "dataset.flush"
         | "dataset.merge" ->
             true
         | _ -> false)
       findings);
  (* Every finding's overlap stays within one window. *)
  List.iter
    (fun (f : Slo.finding) ->
      Alcotest.(check bool) "overlap bounded by the window" true
        (f.Slo.f_overlap_us >= 0.0
        && f.Slo.f_overlap_us <= Timeseries.window_us high_ts))
    findings

let test_quiet_run_no_alerts () =
  let low, low_ts, _, _ = Lazy.force timeline_pair in
  Alcotest.(check bool) "0.3x run below saturation" false low.Driver.saturated;
  let o = objective_for low_ts in
  Alcotest.(check (list int))
    "0.3x capacity: no burn-rate alerts" []
    (List.map (fun (a : Slo.alert) -> a.Slo.a_window) (Slo.evaluate low_ts o))

let test_timeline_noninvasive () =
  let r_plain = Lazy.force base_run in
  let ts = Timeseries.create ~window_us () in
  let r_instr = Driver.run ~timeline:ts (tiny_cfg ()) in
  Alcotest.(check bool) "result identical with timeline attached" true
    (r_plain = r_instr);
  Alcotest.(check bool) "timeline observed the run" true
    (Timeseries.n_windows ts > 0)

let test_timeline_byte_identical () =
  let render () =
    let ts = Timeseries.create ~window_us () in
    let r = Driver.run ~timeline:ts (tiny_cfg ()) in
    let o = { Slo.series = "point"; quantile = 0.99; threshold_us = 1500.0 } in
    ( Lsm_obs.Json.to_string (Serve_report.timeline_to_json r ts [ o ]),
      Timeseries.to_csv ts )
  in
  let j1, c1 = render () in
  let j2, c2 = render () in
  Alcotest.(check string) "timeline JSON byte-identical across runs" j1 j2;
  Alcotest.(check string) "timeline CSV byte-identical across runs" c1 c2

let () =
  Alcotest.run "lsm_serve"
    [
      ( "budget",
        [
          Alcotest.test_case "evicts the largest memtable" `Quick
            test_budget_evicts_largest;
          Alcotest.test_case "cascades until under budget" `Quick
            test_budget_cascades;
          Alcotest.test_case "ties break low" `Quick test_budget_ties_break_low;
          Alcotest.test_case "validates arguments" `Quick test_budget_validates;
          Alcotest.test_case "evicts the largest shard" `Quick
            test_budget_evicts_largest_shard;
          Alcotest.test_case "shard cascade crosses partitions" `Quick
            test_budget_shard_cascade;
          Alcotest.test_case "sharded peak_pre does not regress" `Quick
            test_budget_shard_peak_pre_no_regress;
        ] );
      ( "arrivals",
        [
          Alcotest.test_case "uniform gaps exact" `Quick
            test_arrivals_uniform_exact;
          Alcotest.test_case "poisson mean gap" `Quick test_arrivals_poisson_mean;
          Alcotest.test_case "seeded streams repeat" `Quick test_arrivals_seeded;
          Alcotest.test_case "bursty preserves mean, adds variance" `Quick
            test_arrivals_bursty_mean;
          Alcotest.test_case "bursty seeded streams repeat" `Quick
            test_arrivals_bursty_seeded;
          Alcotest.test_case "validates arguments" `Quick test_arrivals_validate;
        ] );
      ( "driver",
        [
          Alcotest.test_case "budget invariant under load" `Quick
            test_budget_invariant_under_load;
          Alcotest.test_case "class accounting" `Quick test_class_accounting;
          Alcotest.test_case "deterministic for a seed" `Quick
            test_run_deterministic;
          Alcotest.test_case "auto rate anchors to capacity" `Quick
            test_auto_rate;
          Alcotest.test_case "saturation knee" `Quick test_knee;
        ] );
      ( "timeline",
        [
          Alcotest.test_case "saturated run alerts with culprit" `Quick
            test_saturated_run_alerts_with_culprit;
          Alcotest.test_case "quiet run stays silent" `Quick
            test_quiet_run_no_alerts;
          Alcotest.test_case "instrumentation is non-invasive" `Quick
            test_timeline_noninvasive;
          Alcotest.test_case "exports byte-identical for a seed" `Quick
            test_timeline_byte_identical;
        ] );
    ]
