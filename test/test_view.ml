(* Differential suite for REMIX-style sorted views (Sorted_view): every
   scan served from a view must be byte-identical — (key, ts, value,
   src_repaired) — to the k-way heap merge it replaces, at the tree
   level across random specs and bitmap invalidations, and at the
   dataset level across maintenance strategies, under quarantine, and
   after healing.  A deterministic fixture also pins the point of the
   exercise: the view scan must cost at most half the heap scan (in
   charged comparisons and simulated time) at 8 components. *)

module L = Lsm_tree.Make (Lsm_util.Keys.Int_key) (Lsm_util.Keys.Int_value)
module Entry = Lsm_tree.Entry
module Env = Lsm_sim.Env
module Io = Lsm_sim.Io_stats

let qtest ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let mk_env ?(cache_bytes = 1024 * 1024) () =
  let device =
    Lsm_sim.Device.custom ~name:"view-test" ~page_size:256 ~seek_us:1000.0
      ~read_us_per_page:100.0 ~write_us_per_page:100.0
  in
  Env.create ~cache_bytes device

let mk_tree env =
  L.create env (Lsm_tree.Config.make ~validity_bitmap:true "view-t")

(* ------------------------------------------------------------------ *)
(* Tree-level differential: random ops + random spec, view vs heap *)

type op = Put of int | Del of int | Flush

let op_gen =
  QCheck2.Gen.(
    frequency
      [
        (6, map (fun k -> Put k) (int_range 1 40));
        (2, map (fun k -> Del k) (int_range 1 40));
        (2, return Flush);
      ])

let apply_ops t ops =
  let ts = ref 0 in
  List.iter
    (fun op ->
      incr ts;
      match op with
      | Put k -> L.write t ~key:k ~ts:!ts (Entry.Put (k * 1000 + !ts))
      | Del k -> L.write t ~key:k ~ts:!ts Entry.Del
      | Flush -> L.flush t)
    ops

(* Invalidate a deterministic pseudo-random sprinkling of rows, driven by
   a seed so the qcheck case is reproducible. *)
let sprinkle_invalid t seed =
  let rng = Lsm_util.Rng.create seed in
  Array.iter
    (fun c ->
      let n = L.component_rows c in
      for _ = 1 to n / 4 do
        L.invalidate c (Lsm_util.Rng.int rng n)
      done)
    (L.components t)

let spec_gen =
  QCheck2.Gen.(
    let key_opt = opt (int_range 0 45) in
    map
      (fun ((lo, hi), (respect_bitmap, emit_del), (include_mem, only_mask)) ->
        (lo, hi, respect_bitmap, emit_del, include_mem, only_mask))
      (triple (pair key_opt key_opt) (pair bool bool)
         (pair bool (opt (list_size (int_range 0 6) bool)))))

let collect t spec =
  let acc = ref [] in
  L.scan t spec ~f:(fun r ~src_repaired ->
      acc := (r.L.key, r.L.ts, r.L.value, src_repaired) :: !acc);
  List.rev !acc

let spec_of t (lo, hi, respect_bitmap, emit_del, include_mem, only_mask) =
  let comps = L.components t in
  let only =
    Option.map
      (fun mask ->
        List.filteri
          (fun i _ -> match List.nth_opt mask i with Some b -> b | None -> false)
          (Array.to_list comps))
      only_mask
  in
  {
    L.lo;
    hi = (match (lo, hi) with Some l, Some h when h < l -> Some l | _ -> hi);
    reconcile = true;
    respect_bitmap;
    include_mem;
    emit_del;
    only;
  }

let prop_tree_view_equals_heap =
  qtest ~count:200 "tree scan: view == heap (random specs, bitmaps)"
    QCheck2.Gen.(
      triple (list_size (int_range 1 150) op_gen) spec_gen (int_range 0 9999))
    (fun (ops, rawspec, seed) ->
      let t = mk_tree (mk_env ()) in
      apply_ops t ops;
      sprinkle_invalid t seed;
      let spec = spec_of t rawspec in
      L.set_sorted_views t false;
      let want = collect t spec in
      L.set_sorted_views t true;
      (* Unrestricted warm-up scan so [only]-restricted specs can also be
         served from a fresh view rather than always falling back. *)
      ignore (collect t L.full_scan_spec);
      let got = collect t spec in
      if got <> want then
        QCheck2.Test.fail_reportf
          "view scan diverged (%d vs %d rows, %d comps)" (List.length got)
          (List.length want) (L.component_count t)
      else true)

(* ------------------------------------------------------------------ *)
(* Dataset-level differential: strategies, quarantine, heal *)

module D = Lsm_core.Dataset.Make (Lsm_workload.Tweet.Record)
module Strategy = Lsm_core.Strategy
module Tweet = Lsm_workload.Tweet

type dop = Ups of int * int * int | Ddel of int | Dflush

let dop_gen =
  QCheck2.Gen.(
    frequency
      [
        ( 5,
          map3
            (fun k u at -> Ups (k, u, at))
            (int_range 1 60) (int_range 0 20) (int_range 1 1000) );
        (2, map (fun k -> Ddel k) (int_range 1 60));
        (1, return Dflush);
      ])

let tw ~pk ~user ~at =
  { Tweet.id = pk; user_id = user; location = user mod 7; created_at = at;
    msg_len = 100 }

let mk_denv () =
  let device =
    Lsm_sim.Device.custom ~name:"view-diff" ~page_size:1024 ~seek_us:100.0
      ~read_us_per_page:10.0 ~write_us_per_page:10.0
  in
  Env.create ~cache_bytes:(64 * 1024) device

let run_dataset ~views strategy ops =
  let d =
    D.create ~filter_key:Tweet.created_at
      ~secondaries:[ Lsm_core.Record.secondary "user_id" Tweet.user_id ]
      (mk_denv ())
      { D.default_config with strategy; mem_budget = 2048 }
  in
  D.set_sorted_views d views;
  List.iter
    (function
      | Ups (k, u, at) -> D.upsert d (tw ~pk:k ~user:u ~at)
      | Ddel k -> D.delete d ~pk:k
      | Dflush -> D.flush_now d)
    ops;
  d

let observe d mode =
  let scanned = ref [] in
  let n = D.full_scan d ~f:(fun r -> scanned := Tweet.primary_key r :: !scanned) in
  ( List.init 60 (fun i -> D.point_query d (i + 1)),
    n,
    List.sort compare !scanned,
    List.sort compare
      (List.map Tweet.primary_key
         (D.query_secondary d ~sec:"user_id" ~lo:0 ~hi:12 ~mode ())),
    D.query_time_range d ~tlo:200 ~thi:800 ~f:(fun _ -> ()) )

let quarantine_everything d =
  Array.iter (fun c -> D.Prim.quarantine (D.primary d) c)
    (D.Prim.components (D.primary d));
  (match D.pk_index d with
  | Some pk -> Array.iter (fun c -> D.Pk.quarantine pk c) (D.Pk.components pk)
  | None -> ());
  Array.iter
    (fun (s : D.sec_index) ->
      Array.iter (fun c -> D.Sec.quarantine s.D.tree c) (D.Sec.components s.D.tree))
    (D.secondaries d)

let strategies_under_test =
  [
    (Strategy.eager, `Assume_valid);
    (Strategy.validation, `Timestamp);
    (Strategy.mutable_bitmap, `Direct);
  ]

let prop_dataset_view_equals_heap =
  qtest ~count:40 "dataset: views on == views off (+quarantine, +heal)"
    QCheck2.Gen.(list_size (int_range 1 120) dop_gen)
    (fun ops ->
      List.for_all
        (fun (strategy, mode) ->
          let dv = run_dataset ~views:true strategy ops in
          let dh = run_dataset ~views:false strategy ops in
          let healthy = observe dv mode in
          if healthy <> observe dh mode then
            QCheck2.Test.fail_reportf "%s: views diverge on healthy data"
              (Strategy.name strategy);
          quarantine_everything dv;
          quarantine_everything dh;
          if observe dv mode <> observe dh mode then
            QCheck2.Test.fail_reportf "%s: views diverge under quarantine"
              (Strategy.name strategy);
          D.heal dv;
          D.heal dh;
          let healed = observe dv mode in
          if healed <> observe dh mode then
            QCheck2.Test.fail_reportf "%s: views diverge after heal"
              (Strategy.name strategy);
          if healed <> healthy then
            QCheck2.Test.fail_reportf "%s: heal changed answers"
              (Strategy.name strategy);
          true)
        strategies_under_test)

(* ------------------------------------------------------------------ *)
(* Cost: the view must at least halve the scan cost at 8 components *)

let build_overlapping_tree ncomps rows_per_comp =
  let env = mk_env () in
  let t = mk_tree env in
  let ts = ref 0 in
  for c = 0 to ncomps - 1 do
    for i = 0 to rows_per_comp - 1 do
      incr ts;
      (* ~50% of keys collide with other components' keys *)
      let key = ((i * 4) + (c * 2)) mod (rows_per_comp * 2) in
      L.write t ~key ~ts:!ts (Entry.Put ((key * 1000) + !ts))
    done;
    L.flush t
  done;
  (env, t)

let measure_scan env t =
  let rows = ref 0 in
  ignore (L.scan t L.full_scan_spec ~f:(fun _ ~src_repaired:_ -> incr rows));
  let before_cmp = (Env.stats env).Io.comparisons in
  let before_us = Env.now_us env in
  let n = ref 0 in
  L.scan t L.full_scan_spec ~f:(fun _ ~src_repaired:_ -> incr n);
  ( !n,
    (Env.stats env).Io.comparisons - before_cmp,
    Env.now_us env -. before_us )

let test_view_halves_scan_cost () =
  let env, t = build_overlapping_tree 8 2000 in
  L.set_sorted_views t false;
  let rows_h, cmp_h, us_h = measure_scan env t in
  L.set_sorted_views t true;
  let rows_v, cmp_v, us_v = measure_scan env t in
  Alcotest.(check int) "same rows" rows_h rows_v;
  Alcotest.(check int) "8 components" 8 (L.component_count t);
  Alcotest.(check bool)
    (Printf.sprintf "comparisons halved (%d vs %d)" cmp_v cmp_h)
    true
    (cmp_v * 2 <= cmp_h);
  Alcotest.(check bool)
    (Printf.sprintf "sim time halved (%.0fus vs %.0fus)" us_v us_h)
    true
    (us_v *. 2.0 <= us_h)

let test_view_lifecycle () =
  let _env, t = build_overlapping_tree 3 200 in
  Alcotest.(check bool) "no view before scan" true (L.view_info t = None);
  ignore (collect t L.full_scan_spec);
  (match L.view_info t with
  | Some (_, _, runs) -> Alcotest.(check int) "covers 3 runs" 3 runs
  | None -> Alcotest.fail "scan should have built a view");
  (* A component-list change invalidates; the next scan rebuilds. *)
  L.write t ~key:1 ~ts:99_999 (Entry.Put 1);
  L.flush t;
  Alcotest.(check bool) "flush invalidates" true (L.view_info t = None);
  ignore (collect t L.full_scan_spec);
  (match L.view_info t with
  | Some (_, _, runs) -> Alcotest.(check int) "rebuilt over 4 runs" 4 runs
  | None -> Alcotest.fail "rescan should have rebuilt the view");
  L.set_sorted_views t false;
  Alcotest.(check bool) "disable drops" true (L.view_info t = None)

let () =
  Alcotest.run "lsm_view"
    [
      ( "differential",
        [ prop_tree_view_equals_heap; prop_dataset_view_equals_heap ] );
      ( "cost",
        [
          Alcotest.test_case "view halves 8-comp scan" `Quick
            test_view_halves_scan_cost;
          Alcotest.test_case "lifecycle" `Quick test_view_lifecycle;
        ] );
    ]
