(* Tests for the engine's resilience layer: retry/backoff at the I/O
   sites, retry exhaustion surfacing as [Resilience.Unrecoverable] with
   no partial component left behind, and the central degraded-mode
   property — a dataset whose disk components are all quarantined
   answers every query exactly as the healthy one did, and healing
   restores a fully clean state with the same answers. *)

module D = Lsm_core.Dataset.Make (Lsm_workload.Tweet.Record)
module Strategy = Lsm_core.Strategy
module Tweet = Lsm_workload.Tweet
module Env = Lsm_sim.Env
module Resilience = Lsm_sim.Resilience
module F = Lsm_faultsim.Fault

let qtest ?(count = 40) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let mk_env () =
  let device =
    Lsm_sim.Device.custom ~name:"test" ~page_size:1024 ~seek_us:1000.0
      ~read_us_per_page:100.0 ~write_us_per_page:100.0
  in
  Env.create ~cache_bytes:(1024 * 128) device

let secondaries = [ Lsm_core.Record.secondary "user_id" Tweet.user_id ]

let mk_dataset ?(strategy = Strategy.mutable_bitmap) ?(mem_budget = 4 * 1024)
    env =
  D.create ~filter_key:Tweet.created_at ~secondaries env
    { D.default_config with strategy; mem_budget }

let tw ?(user = 0) ?(at = 0) id =
  { Tweet.id; user_id = user; location = 0; created_at = at; msg_len = 100 }

(* ------------------------------------------------------------------ *)
(* Backoff policy math *)

let test_backoff_math () =
  let p = Resilience.default_policy in
  Alcotest.(check (float 1e-9)) "attempt 0" p.Resilience.backoff_us
    (Resilience.backoff p ~attempt:0);
  Alcotest.(check (float 1e-9))
    "attempt 1"
    (p.Resilience.backoff_us *. p.Resilience.backoff_factor)
    (Resilience.backoff p ~attempt:1);
  Alcotest.(check bool) "monotone" true
    (Resilience.backoff p ~attempt:2 > Resilience.backoff p ~attempt:1)

(* A retried transient fault charges its backoff to the simulated clock:
   the same deterministic run is strictly slower with the fault armed. *)
let test_backoff_advances_clock () =
  let run plan =
    (* A tiny cache, so the scan actually misses and announces io.read. *)
    let device =
      Lsm_sim.Device.custom ~name:"test" ~page_size:1024 ~seek_us:1000.0
        ~read_us_per_page:100.0 ~write_us_per_page:100.0
    in
    let env = Env.create ~cache_bytes:(1024 * 2) device in
    let d = mk_dataset env in
    for i = 1 to 200 do
      ignore (D.insert d (tw ~user:(i mod 7) ~at:i i))
    done;
    D.flush_now d;
    let inj = F.injector plan in
    F.arm inj env;
    let t0 = Env.now_us env in
    ignore (D.full_scan d ~f:(fun _ -> ()));
    Env.clear_fault_hook env;
    (Env.now_us env -. t0, (Env.resil env).Env.retries)
  in
  let dt_clean, r_clean = run None in
  let dt_fault, r_fault =
    run (Some (F.plan ~fails:2 F.Io_error ~point:"io.read" ~hit:1))
  in
  Alcotest.(check int) "clean run retries nothing" 0 r_clean;
  Alcotest.(check bool) "fault absorbed by retries" true (r_fault >= 2);
  Alcotest.(check bool) "backoff charged to the clock" true
    (dt_fault >= dt_clean +. 300.0)

(* ------------------------------------------------------------------ *)
(* Retry exhaustion *)

(* A fault that outlasts both the I/O-site retry budget and the
   maintenance supervisor's reschedules surfaces as Unrecoverable; the
   partial component's file is discarded, and once the fault clears the
   very next flush succeeds with nothing lost. *)
let test_retry_exhaustion_no_partials () =
  let env = mk_env () in
  let d = mk_dataset env in
  D.set_auto_maintenance d false;
  for i = 1 to 60 do
    ignore (D.insert d (tw ~user:(i mod 7) ~at:i i))
  done;
  let inj = F.injector (Some (F.plan ~fails:1000 F.Io_error ~point:"io.write" ~hit:1)) in
  F.arm inj env;
  (match D.flush_now d with
  | () -> Alcotest.fail "flush succeeded under a persistent io fault"
  | exception Resilience.Unrecoverable { point; attempts; _ } ->
      Alcotest.(check string) "failed at the write site" "io.write" point;
      Alcotest.(check bool) "attempts counted" true (attempts >= 1));
  Env.clear_fault_hook env;
  let r = Env.resil env in
  Alcotest.(check bool) "exhaustions counted" true (r.Env.exhausted >= 1);
  Alcotest.(check bool) "supervisor rescheduled" true (r.Env.reschedules >= 1);
  (* No partial component survived the failed flush... *)
  Array.iter
    (fun pc ->
      Alcotest.(check bool) "component non-empty" true
        (Array.length (D.Prim.rows_of pc) > 0))
    (D.Prim.components (D.primary d));
  (* ...and with the fault gone the same flush completes intact. *)
  D.flush_now d;
  for i = 1 to 60 do
    match D.point_query d i with
    | Some r -> Alcotest.(check int) "row survived" i r.Tweet.id
    | None -> Alcotest.failf "row %d lost after recovered flush" i
  done;
  Alcotest.(check int) "full scan intact" 60 (D.full_scan d ~f:(fun _ -> ()))

(* ------------------------------------------------------------------ *)
(* Degraded reads == healthy reads (qcheck) *)

(* Quarantine every disk component of every index, re-ask every query,
   heal, ask again: the three answer sets must be identical, and after
   healing nothing is quarantined. *)
let quarantine_everything d =
  Array.iter
    (fun c -> D.Prim.quarantine (D.primary d) c)
    (D.Prim.components (D.primary d));
  (match D.pk_index d with
  | Some pk -> Array.iter (fun c -> D.Pk.quarantine pk c) (D.Pk.components pk)
  | None -> ());
  Array.iter
    (fun (s : D.sec_index) ->
      Array.iter (fun c -> D.Sec.quarantine s.D.tree c) (D.Sec.components s.D.tree))
    (D.secondaries d)

let snapshot d keys =
  let points =
    List.map
      (fun k ->
        match D.point_query d k with
        | None -> (k, -1)
        | Some r -> (k, r.Tweet.user_id))
      keys
  in
  let scan = D.full_scan d ~f:(fun _ -> ()) in
  let sec =
    D.query_secondary_keys d ~sec:"user_id" ~lo:0 ~hi:10 ~mode:`Timestamp ()
    |> List.sort compare
  in
  (points, scan, sec)

let gen_ops =
  QCheck2.Gen.(
    pair bool
      (list_size (int_range 30 150)
         (pair (int_range 0 40) (int_range 0 10))))

let degraded_equals_healthy =
  qtest "degraded == healthy == healed" gen_ops (fun (validation, ops) ->
      let env = mk_env () in
      let strategy =
        if validation then Strategy.validation else Strategy.mutable_bitmap
      in
      let d = mk_dataset ~strategy env in
      List.iteri
        (fun i (k, u) ->
          if i mod 11 = 3 then D.delete d ~pk:k
          else D.upsert d (tw ~user:u ~at:i k))
        ops;
      D.flush_now d;
      let keys = List.sort_uniq compare (List.map fst ops) in
      let healthy = snapshot d keys in
      quarantine_everything d;
      let degraded = snapshot d keys in
      if degraded <> healthy then
        QCheck2.Test.fail_report "degraded answers diverged";
      if
        D.quarantined_count d > 0
        && (Env.resil env).Env.degraded_probes = 0
        && not validation
      then QCheck2.Test.fail_report "no degraded probe was counted";
      D.heal d;
      if D.quarantined_count d <> 0 then
        QCheck2.Test.fail_report "heal left quarantined components";
      let healed = snapshot d keys in
      if healed <> healthy then QCheck2.Test.fail_report "healed answers diverged";
      true)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "lsm_resilience"
    [
      ( "retry",
        [
          Alcotest.test_case "backoff math" `Quick test_backoff_math;
          Alcotest.test_case "backoff advances clock" `Quick
            test_backoff_advances_clock;
          Alcotest.test_case "exhaustion leaves no partials" `Quick
            test_retry_exhaustion_no_partials;
        ] );
      ("degraded", [ degraded_equals_healthy ]);
    ]
