(* Differential suites for the group-commit WAL and the overlapping
   maintenance scheduler.

   Group commit changes *when* commit records become durable (one fsync
   per group instead of per commit), and the overlapping scheduler
   changes *when* merge I/O happens (interleaved, clock rewound to the
   modeled makespan) — neither may change any observable state.  The
   properties here pin that down:

   - a random commit schedule replayed under group commit produces the
     same committed-visible set as the serial WAL;
   - crash + recovery at every enumerated fault point (including the
     group seal/fsync/ack windows and the scheduler's job boundaries)
     reaches checker-accepted state, for random seeds and batch sizes;
   - overlapped merges never share a tree, and their result is
     byte-for-byte the serial scheduler's across every index;
   - the fsync amortization is real: simulated WAL sync cost per
     committed transaction at batch >= 4 is strictly below serial. *)

module D = Lsm_core.Dataset.Make (Lsm_workload.Tweet.Record)
module T = Lsm_core.Txn_dataset.Make (Lsm_workload.Tweet.Record) (D)
module Wal = Lsm_txn.Wal
module Strategy = Lsm_core.Strategy
module Tweet = Lsm_workload.Tweet
module Sc = Lsm_faultsim.Scenario
module H = Lsm_faultsim.Harness

let qtest ?(count = 40) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let key_domain = 60

let tw ~pk ~user ~at =
  { Tweet.id = pk; user_id = user; location = user mod 7; created_at = at;
    msg_len = 100 }

let mk_env () =
  let device =
    Lsm_sim.Device.custom ~name:"groupcommit" ~page_size:1024 ~seek_us:50.0
      ~read_us_per_page:10.0 ~write_us_per_page:10.0
  in
  Lsm_sim.Env.create ~cache_bytes:(16 * 1024) device

(* ------------------------------------------------------------------ *)
(* Random commit schedules *)

type op = Ups of int * int * int | Del of int

type txn_spec = { ops : op list; aborted : bool; flush_after : bool }

let txn_gen =
  QCheck2.Gen.(
    let op =
      frequency
        [
          ( 4,
            map3
              (fun k u at -> Ups (k, u, at))
              (int_range 1 key_domain) (int_range 0 20) (int_range 1 1000) );
          (1, map (fun k -> Del k) (int_range 1 key_domain));
        ]
    in
    map3
      (fun ops aborted flush_after -> { ops; aborted; flush_after })
      (list_size (int_range 1 5) op)
      (frequency [ (5, return false); (1, return true) ])
      (frequency [ (6, return false); (1, return true) ]))

let schedule_gen = QCheck2.Gen.(list_size (int_range 4 25) txn_gen)

(* Replay a schedule through a transactional dataset with the given WAL
   batching, ending with a flush (which syncs the WAL), and return the
   visible record per key. *)
let replay ~batch schedule =
  let d =
    D.create ~filter_key:Tweet.created_at
      ~secondaries:[ Lsm_core.Record.secondary "user_id" Tweet.user_id ]
      (mk_env ())
      { D.default_config with strategy = Strategy.validation; mem_budget = 2048 }
  in
  let t = T.create d in
  if batch > 1 then T.set_group_commit t ~batch;
  List.iter
    (fun spec ->
      let txn = T.begin_txn t in
      List.iter
        (function
          | Ups (k, u, at) -> T.upsert t txn (tw ~pk:k ~user:u ~at)
          | Del k -> T.delete t txn ~pk:k)
        spec.ops;
      if spec.aborted then T.abort t txn else T.commit t txn;
      if spec.flush_after then T.flush t)
    schedule;
  T.flush t;
  List.init key_domain (fun i -> D.point_query d (i + 1))

let prop_grouped_equals_serial schedule =
  let serial = replay ~batch:1 schedule in
  List.iter
    (fun batch ->
      if replay ~batch schedule <> serial then
        QCheck2.Test.fail_reportf
          "batch %d: visible set differs from serial WAL" batch)
    [ 2; 4; 8 ];
  true

(* The WAL's own group-commit counters behave: replaying under batch [b]
   seals ceil(commits / b) groups at most (flushes can seal short
   groups), and every committed transaction ends durable. *)
let prop_group_accounting schedule =
  let d =
    D.create (mk_env ())
      { D.default_config with strategy = Strategy.validation; mem_budget = 2048 }
  in
  let t = T.create d in
  T.set_group_commit t ~batch:4;
  let committed = ref 0 in
  List.iter
    (fun spec ->
      let txn = T.begin_txn t in
      List.iter
        (function
          | Ups (k, u, at) -> T.upsert t txn (tw ~pk:k ~user:u ~at)
          | Del k -> T.delete t txn ~pk:k)
        spec.ops;
      if spec.aborted then T.abort t txn
      else begin
        T.commit t txn;
        incr committed
      end;
      if spec.flush_after then T.flush t)
    schedule;
  T.flush t;
  let s = Wal.sync_stats (T.wal t) in
  if s.Wal.durable_commits <> !committed then
    QCheck2.Test.fail_reportf "durable %d <> committed %d"
      s.Wal.durable_commits !committed;
  if s.Wal.fsyncs > !committed && !committed > 0 then
    QCheck2.Test.fail_reportf "more fsyncs (%d) than commits (%d)"
      s.Wal.fsyncs !committed;
  Wal.pending_group (T.wal t) = []

(* ------------------------------------------------------------------ *)
(* Crash + recovery at every enumerated point (checker as oracle) *)

let crash_cfg_gen =
  QCheck2.Gen.(
    map3
      (fun seed batch validation ->
        {
          Sc.default_config with
          Sc.seed;
          txns = 18;
          validation;
          group_commit = batch;
          maint_workers = 2;
        })
      (int_range 1 10_000)
      (oneofl [ 2; 3; 4; 8 ])
      bool)

let prop_crash_matrix cfg =
  match H.run ~crash_budget:12 ~io_budget:2 ~corrupt_budget:0
          ~intermittent_budget:0 cfg
  with
  | r ->
      if not (H.ok r) then begin
        H.print_report Format.str_formatter r;
        QCheck2.Test.fail_reportf "matrix failed:@.%s"
          (Format.flush_str_formatter ())
      end;
      true
  | exception H.Baseline_failure msgs ->
      QCheck2.Test.fail_reportf "baseline failure:@.%s"
        (String.concat "\n" msgs)

(* ------------------------------------------------------------------ *)
(* Overlapping scheduler: serial equivalence, byte for byte *)

type plain_op = P_ups of int * int * int | P_del of int | P_flush

let plain_op_gen =
  QCheck2.Gen.(
    frequency
      [
        ( 6,
          map3
            (fun k u at -> P_ups (k, u, at))
            (int_range 1 120) (int_range 0 30) (int_range 1 1000) );
        (2, map (fun k -> P_del k) (int_range 1 120));
        (1, return P_flush);
      ])

let plain_ops_gen = QCheck2.Gen.(list_size (int_range 50 250) plain_op_gen)

let run_plain ~strategy ~workers ops =
  let d =
    D.create ~filter_key:Tweet.created_at
      ~secondaries:[ Lsm_core.Record.secondary "user_id" Tweet.user_id ]
      (mk_env ())
      {
        D.default_config with
        strategy;
        mem_budget = 2048;
        maint_workers = workers;
      }
  in
  List.iter
    (function
      | P_ups (k, u, at) -> D.upsert d (tw ~pk:k ~user:u ~at)
      | P_del k -> D.delete d ~pk:k
      | P_flush -> D.flush_now d)
    ops;
  D.flush_now d;
  d

(* Physical fingerprint of one LSM-tree: per component, its ID, repaired
   timestamp, and full row listing. *)
let prim_dump d =
  Array.to_list
    (Array.map
       (fun c ->
         (D.Prim.component_id c, c.D.Prim.repaired_ts, D.Prim.rows_of c))
       (D.Prim.components (D.primary d)))

let pk_dump d =
  match D.pk_index d with
  | None -> []
  | Some pk ->
      Array.to_list
        (Array.map
           (fun c -> (D.Pk.component_id c, c.D.Pk.repaired_ts, D.Pk.rows_of c))
           (D.Pk.components pk))

let sec_dump d =
  let s = D.secondary d "user_id" in
  Array.to_list
    (Array.map
       (fun c -> (D.Sec.component_id c, c.D.Sec.repaired_ts, D.Sec.rows_of c))
       (D.Sec.components s.D.tree))

let prop_overlap_equals_serial strategy ops =
  let d1 = run_plain ~strategy ~workers:1 ops in
  let d2 = run_plain ~strategy ~workers:3 ops in
  if prim_dump d1 <> prim_dump d2 then
    QCheck2.Test.fail_reportf "primary trees differ";
  if pk_dump d1 <> pk_dump d2 then
    QCheck2.Test.fail_reportf "pk-index trees differ";
  if sec_dump d1 <> sec_dump d2 then
    QCheck2.Test.fail_reportf "secondary trees differ";
  let m = D.maint_stats d2 in
  if m.Lsm_core.Dataset.maint_shared_claims <> 0 then
    QCheck2.Test.fail_reportf "jobs shared a tree (%d claims rejected)"
      m.Lsm_core.Dataset.maint_shared_claims;
  (* The serial dataset's scheduler never ran a round. *)
  (D.maint_stats d1).Lsm_core.Dataset.maint_rounds = 0

(* ------------------------------------------------------------------ *)
(* Deterministic acceptance checks *)

(* The amortization claim the bench series gates: per-committed-txn WAL
   sync cost at batch >= 4 is strictly below the serial baseline. *)
let test_fsync_amortized () =
  let run batch =
    let d =
      D.create (mk_env ())
        {
          D.default_config with
          strategy = Strategy.validation;
          mem_budget = 64 * 1024;
        }
    in
    let t = T.create d in
    if batch > 1 then T.set_group_commit t ~batch;
    for i = 1 to 120 do
      let txn = T.begin_txn t in
      T.upsert t txn (tw ~pk:((i mod key_domain) + 1) ~user:(i mod 20) ~at:i);
      T.commit t txn
    done;
    T.flush t;
    let s = Wal.sync_stats (T.wal t) in
    Alcotest.(check int) "all commits durable" 120 s.Wal.durable_commits;
    s.Wal.fsync_time_us /. float_of_int s.Wal.durable_commits
  in
  let serial = run 1 in
  let b4 = run 4 in
  let b8 = run 8 in
  if not (b4 < serial) then
    Alcotest.failf "batch 4 not cheaper: %.1f vs serial %.1f us/txn" b4 serial;
  if not (b8 < b4) then
    Alcotest.failf "batch 8 not cheaper than 4: %.1f vs %.1f us/txn" b8 b4

(* A torn group (crash before the group fsync) must not leak into the
   recovered state: commit, crash while the group is open, recover —
   the writes are gone; the WAL reports the txns demoted. *)
let test_torn_group_discarded () =
  let d =
    D.create (mk_env ())
      { D.default_config with strategy = Strategy.validation; mem_budget = 64 * 1024 }
  in
  let t = T.create d in
  T.set_group_commit t ~batch:8;
  let txn = T.begin_txn t in
  T.upsert t txn (tw ~pk:1 ~user:1 ~at:1);
  T.commit t txn;
  let txn2 = T.begin_txn t in
  T.upsert t txn2 (tw ~pk:2 ~user:2 ~at:2);
  T.commit t txn2;
  Alcotest.(check int) "group open with 2 commits" 2
    (List.length (Wal.pending_group (T.wal t)));
  Alcotest.(check bool) "not yet durable" false
    (Wal.txn_durable (T.wal t) ~txn:(T.txn_id txn));
  T.crash t;
  T.recover t;
  Alcotest.(check bool) "pk 1 discarded" true (D.point_query d 1 = None);
  Alcotest.(check bool) "pk 2 discarded" true (D.point_query d 2 = None);
  (* The same schedule with a sync before the crash survives it. *)
  let d' =
    D.create (mk_env ())
      { D.default_config with strategy = Strategy.validation; mem_budget = 64 * 1024 }
  in
  let t' = T.create d' in
  T.set_group_commit t' ~batch:8;
  let txn = T.begin_txn t' in
  T.upsert t' txn (tw ~pk:1 ~user:1 ~at:1);
  T.commit t' txn;
  Wal.sync (T.wal t');
  Alcotest.(check bool) "durable after sync" true
    (Wal.txn_durable (T.wal t') ~txn:(T.txn_id txn));
  T.crash t';
  T.recover t';
  Alcotest.(check bool) "pk 1 survives" true (D.point_query d' 1 <> None)

(* The overlapped scheduler actually overlaps on a workload with several
   independently mergeable trees, and models a shorter maintenance
   wall-clock than its own serial job sum. *)
let test_overlap_observed () =
  let ops =
    List.init 3_000 (fun i ->
        P_ups ((i * 7 mod 120) + 1, i mod 30, i + 1))
  in
  let d = run_plain ~strategy:Strategy.validation ~workers:2 ops in
  let m = D.maint_stats d in
  Alcotest.(check bool) "rounds ran" true (m.Lsm_core.Dataset.maint_rounds > 0);
  Alcotest.(check bool) "overlap reached 2" true
    (m.Lsm_core.Dataset.maint_max_overlap >= 2);
  Alcotest.(check bool) "no shared claims" true
    (m.Lsm_core.Dataset.maint_shared_claims = 0);
  Alcotest.(check bool) "makespan below serial sum" true
    (m.Lsm_core.Dataset.maint_makespan_us
    < m.Lsm_core.Dataset.maint_serial_us)

let () =
  Alcotest.run "lsm_groupcommit"
    [
      ( "group commit",
        [
          qtest "grouped schedule == serial WAL" schedule_gen
            prop_grouped_equals_serial;
          qtest "group accounting" schedule_gen prop_group_accounting;
          Alcotest.test_case "fsync amortized at batch >= 4" `Quick
            test_fsync_amortized;
          Alcotest.test_case "torn group discarded on crash" `Quick
            test_torn_group_discarded;
        ] );
      ( "crash matrix",
        [
          qtest ~count:10 "checker accepts every enumerated point"
            crash_cfg_gen prop_crash_matrix;
        ] );
      ( "overlapping maintenance",
        [
          qtest ~count:15 "validation: overlapped == serial, byte for byte"
            plain_ops_gen
            (prop_overlap_equals_serial Strategy.validation);
          qtest ~count:15 "mutable-bitmap: overlapped == serial, byte for byte"
            plain_ops_gen
            (prop_overlap_equals_serial Strategy.mutable_bitmap);
          qtest ~count:10 "deleted-key: overlapped == serial, byte for byte"
            plain_ops_gen
            (prop_overlap_equals_serial Strategy.deleted_key_btree);
          Alcotest.test_case "overlap observed and modeled faster" `Quick
            test_overlap_observed;
        ] );
    ]
