(* Tests for Lsm_obs: histogram bucketing and quantiles, tracer ring
   wraparound and self-time arithmetic, the metrics registry, Chrome
   trace export — and the end-to-end reconciliation property: with
   observability enabled, the I/O counters attributed to top-level spans
   must account for *every* I/O the engine performed. *)

module H = Lsm_obs.Histogram
module M = Lsm_obs.Metrics
module T = Lsm_obs.Tracer
module Env = Lsm_sim.Env
module Io_stats = Lsm_sim.Io_stats
module D = Lsm_core.Dataset.Make (Lsm_workload.Tweet.Record)
module Strategy = Lsm_core.Strategy
module Tweet = Lsm_workload.Tweet

let qtest ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* Naive substring check — enough for asserting JSON shape. *)
let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Histogram *)

let test_hist_empty () =
  let h = H.create () in
  Alcotest.(check int) "count" 0 (H.count h);
  Alcotest.(check (float 0.0)) "sum" 0.0 (H.sum h);
  Alcotest.(check (float 0.0)) "p50" 0.0 (H.quantile h 0.5)

let test_hist_exact_fields () =
  let h = H.create () in
  List.iter (H.observe h) [ 3.0; 1.0; 4.0; 1.0; 5.0; 9.0; 2.0; 6.0 ];
  Alcotest.(check int) "count" 8 (H.count h);
  Alcotest.(check (float 1e-9)) "sum" 31.0 (H.sum h);
  Alcotest.(check (float 1e-9)) "mean" (31.0 /. 8.0) (H.mean h);
  Alcotest.(check (float 1e-9)) "min" 1.0 (H.min_value h);
  Alcotest.(check (float 1e-9)) "max" 9.0 (H.max_value h)

let test_hist_quantiles () =
  (* 1..1000: quantiles must be within the ~9% bucket resolution above
     the true rank value, never below it, and monotone in q. *)
  let h = H.create () in
  for i = 1 to 1000 do
    H.observe h (Float.of_int i)
  done;
  List.iter
    (fun q ->
      let true_v = Float.of_int (int_of_float (ceil (q *. 1000.0))) in
      let v = H.quantile h q in
      Alcotest.(check bool)
        (Printf.sprintf "p%.0f >= true" (q *. 100.0))
        true (v >= true_v *. 0.999);
      Alcotest.(check bool)
        (Printf.sprintf "p%.0f within 10%%" (q *. 100.0))
        true
        (v <= true_v *. 1.10))
    [ 0.5; 0.9; 0.95; 0.99 ];
  let p50 = H.quantile h 0.5
  and p95 = H.quantile h 0.95
  and p99 = H.quantile h 0.99 in
  Alcotest.(check bool) "monotone" true (p50 <= p95 && p95 <= p99);
  Alcotest.(check (float 1e-9)) "p100 = max" 1000.0 (H.quantile h 1.0)

let test_hist_extremes () =
  (* Values outside the octave range clamp into the edge buckets without
     losing count/sum/max exactness. *)
  let h = H.create () in
  H.observe h 0.0;
  H.observe h 1e-6;
  H.observe h 1e12;
  Alcotest.(check int) "count" 3 (H.count h);
  Alcotest.(check (float 1e-3)) "max exact" 1e12 (H.max_value h);
  Alcotest.(check (float 1e-3)) "p100 capped at max" 1e12 (H.quantile h 1.0);
  H.reset h;
  Alcotest.(check int) "reset" 0 (H.count h)

let prop_hist_quantile_bounds =
  qtest ~count:100 "quantile within resolution of a sorted sample"
    QCheck2.Gen.(list_size (int_range 1 200) (float_bound_exclusive 1e6))
    (fun xs ->
      let xs = List.map (fun x -> Float.abs x +. 1e-3) xs in
      let h = H.create () in
      List.iter (H.observe h) xs;
      let sorted = Array.of_list (List.sort compare xs) in
      let n = Array.length sorted in
      List.for_all
        (fun q ->
          let rank = max 0 (min (n - 1) (int_of_float (ceil (q *. Float.of_int n)) - 1)) in
          let true_v = sorted.(rank) in
          let v = H.quantile h q in
          v >= true_v *. 0.999 && v <= true_v *. 1.10)
        [ 0.5; 0.95; 0.99 ])

(* ------------------------------------------------------------------ *)
(* Tracer *)

(* A manual clock: spans advance it explicitly. *)
let manual () =
  let now = ref 0.0 in
  let t = T.create ~capacity:8 ~clock:(fun () -> !now) () in
  (t, now)

let test_tracer_nesting_self_time () =
  let t, now = manual () in
  T.with_span t "outer" (fun () ->
      now := !now +. 10.0;
      T.with_span t "inner" (fun () -> now := !now +. 30.0);
      now := !now +. 5.0);
  let agg name = List.assoc name (T.aggregates t) in
  Alcotest.(check (float 1e-9)) "outer total" 45.0 (agg "outer").T.a_total_us;
  Alcotest.(check (float 1e-9)) "outer self" 15.0 (agg "outer").T.a_self_us;
  Alcotest.(check (float 1e-9)) "inner total" 30.0 (agg "inner").T.a_total_us;
  Alcotest.(check (float 1e-9)) "inner self" 30.0 (agg "inner").T.a_self_us;
  Alcotest.(check (float 1e-9)) "top-level = outer" 45.0 (T.top_level_us t);
  (* Events: inner completes first, outer second. *)
  let evs = T.events t in
  Alcotest.(check int) "two events" 2 (Array.length evs);
  Alcotest.(check string) "inner first" "inner" evs.(0).T.ev_name;
  Alcotest.(check int) "inner depth" 1 evs.(0).T.ev_depth;
  Alcotest.(check int) "outer depth" 0 evs.(1).T.ev_depth

let test_tracer_ring_wraparound () =
  let t, now = manual () in
  for i = 1 to 20 do
    T.with_span t (Printf.sprintf "s%d" i) (fun () -> now := !now +. 1.0)
  done;
  Alcotest.(check int) "recorded all" 20 (T.recorded t);
  Alcotest.(check int) "dropped overflow" 12 (T.dropped t);
  let evs = T.events t in
  Alcotest.(check int) "ring holds capacity" 8 (Array.length evs);
  (* Oldest-first: the survivors are s13..s20. *)
  Array.iteri
    (fun i e ->
      Alcotest.(check string)
        (Printf.sprintf "slot %d" i)
        (Printf.sprintf "s%d" (13 + i))
        e.T.ev_name)
    evs;
  (* Aggregates survive eviction. *)
  Alcotest.(check int) "agg names" 20 (List.length (T.aggregates t));
  Alcotest.(check (float 1e-9)) "coverage exact" 20.0 (T.top_level_us t)

let test_tracer_exception_safety () =
  let t, now = manual () in
  (try
     T.with_span t "boom" (fun () ->
         now := !now +. 7.0;
         failwith "x")
   with Failure _ -> ());
  Alcotest.(check int) "span still recorded" 1 (T.recorded t);
  Alcotest.(check (float 1e-9)) "duration kept" 7.0 (T.top_level_us t);
  (* The stack unwound: a new span is top-level again. *)
  T.with_span t "next" (fun () -> now := !now +. 1.0);
  Alcotest.(check int) "next at depth 0" 0 (T.events t).(1).T.ev_depth

let test_tracer_disabled_noop () =
  let r = T.with_span T.disabled "x" (fun () -> 42) in
  Alcotest.(check int) "value through" 42 r;
  Alcotest.(check int) "nothing recorded" 0 (T.recorded T.disabled);
  Alcotest.(check bool) "not enabled" false (T.enabled T.disabled)

let test_tracer_args_accumulate () =
  let t, now = manual () in
  let go name pages =
    T.with_span t ~args_of:(fun () -> [ ("pages", pages); ("seeks", 1) ]) name
      (fun () -> now := !now +. 1.0)
  in
  go "a" 3;
  go "b" 4;
  (* Nested spans' args must NOT double-count at top level. *)
  T.with_span t ~args_of:(fun () -> [ ("pages", 10) ]) "outer" (fun () ->
      go "inner" 10);
  Alcotest.(check (list (pair string int)))
    "top-level arg totals"
    [ ("pages", 17); ("seeks", 2) ]
    (T.top_level_args t)

let test_chrome_json_shape () =
  let t, now = manual () in
  T.with_span t ~cat:"c" ~args_of:(fun () -> [ ("n", 1) ]) "quote\"back\\slash"
    (fun () -> now := !now +. 2.5);
  let json = T.to_chrome_json t in
  Alcotest.(check bool) "has traceEvents" true (contains json "\"traceEvents\"");
  Alcotest.(check bool) "escaped quote" true
    (contains json {|quote\"back\\slash|});
  Alcotest.(check bool) "complete event" true (contains json {|"ph":"X"|});
  Alcotest.(check bool) "duration" true (contains json {|"dur":2.5|})

(* ------------------------------------------------------------------ *)
(* Metrics registry *)

let test_metrics_cells () =
  let m = M.create () in
  let c1 = M.counter m ~labels:[ ("a", "1"); ("b", "2") ] "ops" in
  let c2 = M.counter m ~labels:[ ("b", "2"); ("a", "1") ] "ops" in
  M.add c1 5;
  M.incr c2;
  (* Label order is irrelevant: same cell. *)
  Alcotest.(check int) "same cell" 6 (M.value c1);
  let c3 = M.counter m ~labels:[ ("a", "other") ] "ops" in
  Alcotest.(check int) "distinct labels distinct cell" 0 (M.value c3);
  let g = M.gauge m "depth" in
  M.set g 3.5;
  Alcotest.(check (float 0.0)) "gauge" 3.5 (M.gauge_value g);
  Alcotest.(check_raises) "kind mismatch"
    (Invalid_argument "Metrics.counter: depth is not a counter") (fun () ->
      ignore (M.counter m "depth"))

let test_metrics_to_lines () =
  let m = M.create () in
  M.add (M.counter m "z.last") 9;
  M.add (M.counter m "a.first") 1;
  M.observe (M.histogram m "lat") 100.0;
  let lines = M.to_lines m in
  Alcotest.(check int) "three lines" 3 (List.length lines);
  (* Sorted by name. *)
  Alcotest.(check bool) "a.first first" true
    (contains (List.nth lines 0) "a.first");
  Alcotest.(check bool) "histogram summary" true
    (contains (List.nth lines 1) "p95=")

(* ------------------------------------------------------------------ *)
(* End-to-end reconciliation: span-attributed I/O = Io_stats.diff *)

let secondaries = [ Lsm_core.Record.secondary "user_id" Tweet.user_id ]

let tw ?(user = 0) id =
  { Tweet.id; user_id = user; location = 0; created_at = id; msg_len = 100 }

type op = Insert of int * int | Upsert of int * int | Delete of int
        | Point of int | Query of int

let op_gen =
  QCheck2.Gen.(
    oneof
      [
        map2 (fun k u -> Insert (k, u)) (int_range 0 400) (int_range 0 50);
        map2 (fun k u -> Upsert (k, u)) (int_range 0 400) (int_range 0 50);
        map (fun k -> Delete k) (int_range 0 400);
        map (fun k -> Point k) (int_range 0 400);
        map (fun u -> Query u) (int_range 0 40);
      ])

let apply d = function
  | Insert (k, u) -> ignore (D.insert d (tw ~user:u k))
  | Upsert (k, u) -> D.upsert d (tw ~user:u k)
  | Delete k -> D.delete d ~pk:k
  | Point k -> ignore (D.point_query d k)
  | Query u ->
      ignore (D.query_secondary d ~sec:"user_id" ~lo:u ~hi:(u + 10)
                ~mode:`Timestamp ())

let prop_span_io_reconciles =
  qtest ~count:40 "top-level span I/O args = Io_stats.diff over the run"
    QCheck2.Gen.(
      pair (list_size (int_range 1 150) op_gen) (int_range 0 2))
    (fun (ops, strat) ->
      let strategy =
        List.nth
          [ Strategy.eager; Strategy.validation; Strategy.mutable_bitmap ]
          strat
      in
      let env =
        Lsm_sim.Env.create ~cache_bytes:(64 * 1024)
          (Lsm_sim.Device.custom ~name:"test" ~page_size:1024 ~seek_us:1000.0
             ~read_us_per_page:100.0 ~write_us_per_page:100.0)
      in
      ignore (Env.enable_obs env);
      let d =
        D.create ~filter_key:Tweet.created_at ~secondaries env
          { D.default_config with strategy; mem_budget = 2048 }
      in
      let before = Io_stats.copy (Env.stats env) in
      List.iter (apply d) ops;
      let expected = Io_stats.fields (Io_stats.diff (Env.stats env) before) in
      let attributed = T.top_level_args (Env.tracer env) in
      (* Every engine I/O happened inside some instrumented top-level
         entry point, so the attribution must be *exact*, counter by
         counter. *)
      List.for_all
        (fun (k, v) ->
          match List.assoc_opt k attributed with
          | Some v' -> v = v'
          | None -> v = 0)
        expected)

(* The disabled path really is inert: running a workload with obs off
   records nothing and allocates no events. *)
let test_disabled_records_nothing () =
  let env =
    Lsm_sim.Env.create ~cache_bytes:(64 * 1024)
      (Lsm_sim.Device.custom ~name:"test" ~page_size:1024 ~seek_us:1000.0
         ~read_us_per_page:100.0 ~write_us_per_page:100.0)
  in
  let d =
    D.create ~filter_key:Tweet.created_at ~secondaries env
      { D.default_config with mem_budget = 2048 }
  in
  for i = 0 to 200 do
    D.upsert d (tw ~user:(i mod 10) i)
  done;
  Alcotest.(check int) "no spans" 0 (T.recorded (Env.tracer env));
  Alcotest.(check (list string)) "no metrics" [] (M.to_lines (Env.metrics env))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "lsm_obs"
    [
      ( "histogram",
        [
          Alcotest.test_case "empty" `Quick test_hist_empty;
          Alcotest.test_case "exact fields" `Quick test_hist_exact_fields;
          Alcotest.test_case "quantiles" `Quick test_hist_quantiles;
          Alcotest.test_case "extremes + reset" `Quick test_hist_extremes;
          prop_hist_quantile_bounds;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "nesting/self-time" `Quick
            test_tracer_nesting_self_time;
          Alcotest.test_case "ring wraparound" `Quick
            test_tracer_ring_wraparound;
          Alcotest.test_case "exception safety" `Quick
            test_tracer_exception_safety;
          Alcotest.test_case "disabled no-op" `Quick test_tracer_disabled_noop;
          Alcotest.test_case "args accumulate" `Quick
            test_tracer_args_accumulate;
          Alcotest.test_case "chrome json" `Quick test_chrome_json_shape;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "cells + labels" `Quick test_metrics_cells;
          Alcotest.test_case "to_lines" `Quick test_metrics_to_lines;
        ] );
      ( "end-to-end",
        [
          prop_span_io_reconciles;
          Alcotest.test_case "disabled records nothing" `Quick
            test_disabled_records_nothing;
        ] );
    ]
