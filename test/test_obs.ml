(* Tests for Lsm_obs: histogram bucketing and quantiles, tracer ring
   wraparound and self-time arithmetic, the metrics registry, Chrome
   trace export — and the end-to-end reconciliation property: with
   observability enabled, the I/O counters attributed to top-level spans
   must account for *every* I/O the engine performed. *)

module H = Lsm_obs.Histogram
module M = Lsm_obs.Metrics
module T = Lsm_obs.Tracer
module Env = Lsm_sim.Env
module Io_stats = Lsm_sim.Io_stats
module D = Lsm_core.Dataset.Make (Lsm_workload.Tweet.Record)
module Strategy = Lsm_core.Strategy
module Tweet = Lsm_workload.Tweet

let qtest ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* Naive substring check — enough for asserting JSON shape. *)
let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Histogram *)

let test_hist_empty () =
  let h = H.create () in
  Alcotest.(check int) "count" 0 (H.count h);
  Alcotest.(check (float 0.0)) "sum" 0.0 (H.sum h);
  Alcotest.(check (float 0.0)) "p50" 0.0 (H.quantile h 0.5)

let test_hist_exact_fields () =
  let h = H.create () in
  List.iter (H.observe h) [ 3.0; 1.0; 4.0; 1.0; 5.0; 9.0; 2.0; 6.0 ];
  Alcotest.(check int) "count" 8 (H.count h);
  Alcotest.(check (float 1e-9)) "sum" 31.0 (H.sum h);
  Alcotest.(check (float 1e-9)) "mean" (31.0 /. 8.0) (H.mean h);
  Alcotest.(check (float 1e-9)) "min" 1.0 (H.min_value h);
  Alcotest.(check (float 1e-9)) "max" 9.0 (H.max_value h)

let test_hist_quantiles () =
  (* 1..1000: quantiles must be within the ~9% bucket resolution above
     the true rank value, never below it, and monotone in q. *)
  let h = H.create () in
  for i = 1 to 1000 do
    H.observe h (Float.of_int i)
  done;
  List.iter
    (fun q ->
      let true_v = Float.of_int (int_of_float (ceil (q *. 1000.0))) in
      let v = H.quantile h q in
      Alcotest.(check bool)
        (Printf.sprintf "p%.0f >= true" (q *. 100.0))
        true (v >= true_v *. 0.999);
      Alcotest.(check bool)
        (Printf.sprintf "p%.0f within 10%%" (q *. 100.0))
        true
        (v <= true_v *. 1.10))
    [ 0.5; 0.9; 0.95; 0.99 ];
  let p50 = H.quantile h 0.5
  and p95 = H.quantile h 0.95
  and p99 = H.quantile h 0.99 in
  Alcotest.(check bool) "monotone" true (p50 <= p95 && p95 <= p99);
  Alcotest.(check (float 1e-9)) "p100 = max" 1000.0 (H.quantile h 1.0)

let test_hist_extremes () =
  (* Values outside the octave range clamp into the edge buckets without
     losing count/sum/max exactness. *)
  let h = H.create () in
  H.observe h 0.0;
  H.observe h 1e-6;
  H.observe h 1e12;
  Alcotest.(check int) "count" 3 (H.count h);
  Alcotest.(check (float 1e-3)) "max exact" 1e12 (H.max_value h);
  Alcotest.(check (float 1e-3)) "p100 capped at max" 1e12 (H.quantile h 1.0);
  H.reset h;
  Alcotest.(check int) "reset" 0 (H.count h)

let prop_hist_quantile_bounds =
  qtest ~count:100 "quantile within resolution of a sorted sample"
    QCheck2.Gen.(list_size (int_range 1 200) (float_bound_exclusive 1e6))
    (fun xs ->
      let xs = List.map (fun x -> Float.abs x +. 1e-3) xs in
      let h = H.create () in
      List.iter (H.observe h) xs;
      let sorted = Array.of_list (List.sort compare xs) in
      let n = Array.length sorted in
      List.for_all
        (fun q ->
          let rank = max 0 (min (n - 1) (int_of_float (ceil (q *. Float.of_int n)) - 1)) in
          let true_v = sorted.(rank) in
          let v = H.quantile h q in
          v >= true_v *. 0.999 && v <= true_v *. 1.10)
        [ 0.5; 0.95; 0.99 ])

(* ------------------------------------------------------------------ *)
(* Tracer *)

(* A manual clock: spans advance it explicitly. *)
let manual () =
  let now = ref 0.0 in
  let t = T.create ~capacity:8 ~clock:(fun () -> !now) () in
  (t, now)

let test_tracer_nesting_self_time () =
  let t, now = manual () in
  T.with_span t "outer" (fun () ->
      now := !now +. 10.0;
      T.with_span t "inner" (fun () -> now := !now +. 30.0);
      now := !now +. 5.0);
  let agg name = List.assoc name (T.aggregates t) in
  Alcotest.(check (float 1e-9)) "outer total" 45.0 (agg "outer").T.a_total_us;
  Alcotest.(check (float 1e-9)) "outer self" 15.0 (agg "outer").T.a_self_us;
  Alcotest.(check (float 1e-9)) "inner total" 30.0 (agg "inner").T.a_total_us;
  Alcotest.(check (float 1e-9)) "inner self" 30.0 (agg "inner").T.a_self_us;
  Alcotest.(check (float 1e-9)) "top-level = outer" 45.0 (T.top_level_us t);
  (* Events: inner completes first, outer second. *)
  let evs = T.events t in
  Alcotest.(check int) "two events" 2 (Array.length evs);
  Alcotest.(check string) "inner first" "inner" evs.(0).T.ev_name;
  Alcotest.(check int) "inner depth" 1 evs.(0).T.ev_depth;
  Alcotest.(check int) "outer depth" 0 evs.(1).T.ev_depth

let test_tracer_ring_wraparound () =
  let t, now = manual () in
  for i = 1 to 20 do
    T.with_span t (Printf.sprintf "s%d" i) (fun () -> now := !now +. 1.0)
  done;
  Alcotest.(check int) "recorded all" 20 (T.recorded t);
  Alcotest.(check int) "dropped overflow" 12 (T.dropped t);
  let evs = T.events t in
  Alcotest.(check int) "ring holds capacity" 8 (Array.length evs);
  (* Oldest-first: the survivors are s13..s20. *)
  Array.iteri
    (fun i e ->
      Alcotest.(check string)
        (Printf.sprintf "slot %d" i)
        (Printf.sprintf "s%d" (13 + i))
        e.T.ev_name)
    evs;
  (* Aggregates survive eviction. *)
  Alcotest.(check int) "agg names" 20 (List.length (T.aggregates t));
  Alcotest.(check (float 1e-9)) "coverage exact" 20.0 (T.top_level_us t)

let test_tracer_exception_safety () =
  let t, now = manual () in
  (try
     T.with_span t "boom" (fun () ->
         now := !now +. 7.0;
         failwith "x")
   with Failure _ -> ());
  Alcotest.(check int) "span still recorded" 1 (T.recorded t);
  Alcotest.(check (float 1e-9)) "duration kept" 7.0 (T.top_level_us t);
  (* The stack unwound: a new span is top-level again. *)
  T.with_span t "next" (fun () -> now := !now +. 1.0);
  Alcotest.(check int) "next at depth 0" 0 (T.events t).(1).T.ev_depth

let test_tracer_disabled_noop () =
  let r = T.with_span T.disabled "x" (fun () -> 42) in
  Alcotest.(check int) "value through" 42 r;
  Alcotest.(check int) "nothing recorded" 0 (T.recorded T.disabled);
  Alcotest.(check bool) "not enabled" false (T.enabled T.disabled)

let test_tracer_args_accumulate () =
  let t, now = manual () in
  let go name pages =
    T.with_span t ~args_of:(fun () -> [ ("pages", pages); ("seeks", 1) ]) name
      (fun () -> now := !now +. 1.0)
  in
  go "a" 3;
  go "b" 4;
  (* Nested spans' args must NOT double-count at top level. *)
  T.with_span t ~args_of:(fun () -> [ ("pages", 10) ]) "outer" (fun () ->
      go "inner" 10);
  Alcotest.(check (list (pair string int)))
    "top-level arg totals"
    [ ("pages", 17); ("seeks", 2) ]
    (T.top_level_args t)

let test_chrome_json_shape () =
  let t, now = manual () in
  T.with_span t ~cat:"c" ~args_of:(fun () -> [ ("n", 1) ]) "quote\"back\\slash"
    (fun () -> now := !now +. 2.5);
  let json = T.to_chrome_json t in
  Alcotest.(check bool) "has traceEvents" true (contains json "\"traceEvents\"");
  Alcotest.(check bool) "escaped quote" true
    (contains json {|quote\"back\\slash|});
  Alcotest.(check bool) "complete event" true (contains json {|"ph":"X"|});
  Alcotest.(check bool) "duration" true (contains json {|"dur":2.5|})

(* ------------------------------------------------------------------ *)
(* Metrics registry *)

let test_metrics_cells () =
  let m = M.create () in
  let c1 = M.counter m ~labels:[ ("a", "1"); ("b", "2") ] "ops" in
  let c2 = M.counter m ~labels:[ ("b", "2"); ("a", "1") ] "ops" in
  M.add c1 5;
  M.incr c2;
  (* Label order is irrelevant: same cell. *)
  Alcotest.(check int) "same cell" 6 (M.value c1);
  let c3 = M.counter m ~labels:[ ("a", "other") ] "ops" in
  Alcotest.(check int) "distinct labels distinct cell" 0 (M.value c3);
  let g = M.gauge m "depth" in
  M.set g 3.5;
  Alcotest.(check (float 0.0)) "gauge" 3.5 (M.gauge_value g);
  Alcotest.(check_raises) "kind mismatch"
    (Invalid_argument "Metrics.counter: depth is not a counter") (fun () ->
      ignore (M.counter m "depth"))

let test_metrics_to_lines () =
  let m = M.create () in
  M.add (M.counter m "z.last") 9;
  M.add (M.counter m "a.first") 1;
  M.observe (M.histogram m "lat") 100.0;
  let lines = M.to_lines m in
  Alcotest.(check int) "three lines" 3 (List.length lines);
  (* Sorted by name. *)
  Alcotest.(check bool) "a.first first" true
    (contains (List.nth lines 0) "a.first");
  Alcotest.(check bool) "histogram summary" true
    (contains (List.nth lines 1) "p95=")

(* ------------------------------------------------------------------ *)
(* End-to-end reconciliation: span-attributed I/O = Io_stats.diff *)

let secondaries = [ Lsm_core.Record.secondary "user_id" Tweet.user_id ]

let tw ?(user = 0) id =
  { Tweet.id; user_id = user; location = 0; created_at = id; msg_len = 100 }

type op = Insert of int * int | Upsert of int * int | Delete of int
        | Point of int | Query of int

let op_gen =
  QCheck2.Gen.(
    oneof
      [
        map2 (fun k u -> Insert (k, u)) (int_range 0 400) (int_range 0 50);
        map2 (fun k u -> Upsert (k, u)) (int_range 0 400) (int_range 0 50);
        map (fun k -> Delete k) (int_range 0 400);
        map (fun k -> Point k) (int_range 0 400);
        map (fun u -> Query u) (int_range 0 40);
      ])

let apply d = function
  | Insert (k, u) -> ignore (D.insert d (tw ~user:u k))
  | Upsert (k, u) -> D.upsert d (tw ~user:u k)
  | Delete k -> D.delete d ~pk:k
  | Point k -> ignore (D.point_query d k)
  | Query u ->
      ignore (D.query_secondary d ~sec:"user_id" ~lo:u ~hi:(u + 10)
                ~mode:`Timestamp ())

let prop_span_io_reconciles =
  qtest ~count:40 "top-level span I/O args = Io_stats.diff over the run"
    QCheck2.Gen.(
      pair (list_size (int_range 1 150) op_gen) (int_range 0 2))
    (fun (ops, strat) ->
      let strategy =
        List.nth
          [ Strategy.eager; Strategy.validation; Strategy.mutable_bitmap ]
          strat
      in
      let env =
        Lsm_sim.Env.create ~cache_bytes:(64 * 1024)
          (Lsm_sim.Device.custom ~name:"test" ~page_size:1024 ~seek_us:1000.0
             ~read_us_per_page:100.0 ~write_us_per_page:100.0)
      in
      ignore (Env.enable_obs env);
      let d =
        D.create ~filter_key:Tweet.created_at ~secondaries env
          { D.default_config with strategy; mem_budget = 2048 }
      in
      let before = Io_stats.copy (Env.stats env) in
      List.iter (apply d) ops;
      let expected = Io_stats.fields (Io_stats.diff (Env.stats env) before) in
      let attributed = T.top_level_args (Env.tracer env) in
      (* Every engine I/O happened inside some instrumented top-level
         entry point, so the attribution must be *exact*, counter by
         counter. *)
      List.for_all
        (fun (k, v) ->
          match List.assoc_opt k attributed with
          | Some v' -> v = v'
          | None -> v = 0)
        expected)

(* The disabled path really is inert: running a workload with obs off
   records nothing and allocates no events. *)
let test_disabled_records_nothing () =
  let env =
    Lsm_sim.Env.create ~cache_bytes:(64 * 1024)
      (Lsm_sim.Device.custom ~name:"test" ~page_size:1024 ~seek_us:1000.0
         ~read_us_per_page:100.0 ~write_us_per_page:100.0)
  in
  let d =
    D.create ~filter_key:Tweet.created_at ~secondaries env
      { D.default_config with mem_budget = 2048 }
  in
  for i = 0 to 200 do
    D.upsert d (tw ~user:(i mod 10) i)
  done;
  Alcotest.(check int) "no spans" 0 (T.recorded (Env.tracer env));
  Alcotest.(check (list string)) "no metrics" [] (M.to_lines (Env.metrics env))

(* ------------------------------------------------------------------ *)
(* Json: every machine-readable document we emit must parse back. *)

module J = Lsm_obs.Json

let test_json_roundtrip () =
  let doc =
    J.Obj
      [
        ("int", J.Int 42);
        ("neg", J.Int (-7));
        ("float", J.Float 2.5);
        ("str", J.Str "quote\" back\\ newline\n tab\t");
        ("null", J.Null);
        ("flags", J.List [ J.Bool true; J.Bool false ]);
        ("nested", J.Obj [ ("k", J.Str "v"); ("l", J.List [ J.Int 1 ]) ]);
        ("empty_obj", J.Obj []);
        ("empty_list", J.List []);
      ]
  in
  (match J.of_string (J.to_string doc) with
  | Error e -> Alcotest.fail ("compact: " ^ e)
  | Ok d -> Alcotest.(check bool) "compact round-trip" true (d = doc));
  match J.of_string (J.to_string ~indent:2 doc) with
  | Error e -> Alcotest.fail ("pretty: " ^ e)
  | Ok d -> Alcotest.(check bool) "pretty round-trip" true (d = doc)

let test_json_errors () =
  let bad s =
    match J.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail ("accepted invalid JSON: " ^ s)
  in
  List.iter bad [ "{"; "[1,"; "{\"a\" 1}"; "1 trailing"; ""; "{'a':1}"; "nul" ]

let test_json_access () =
  let doc = J.Obj [ ("a", J.Int 3); ("b", J.Float 1.5); ("s", J.Str "x") ] in
  Alcotest.(check (option int)) "member int" (Some 3)
    (Option.bind (J.member "a" doc) J.to_int);
  Alcotest.(check bool)
    "to_float accepts Int" true
    (Option.bind (J.member "a" doc) J.to_float = Some 3.0);
  Alcotest.(check (option string))
    "member str" (Some "x")
    (Option.bind (J.member "s" doc) J.to_string_opt);
  Alcotest.(check bool) "missing member" true (J.member "zzz" doc = None)

(* ------------------------------------------------------------------ *)
(* Io_stats: diff/copy/reset/fields arithmetic *)

let populated_stats () =
  let env =
    Env.create ~cache_bytes:(16 * 1024)
      (Lsm_sim.Device.custom ~name:"test" ~page_size:1024 ~seek_us:1000.0
         ~read_us_per_page:100.0 ~write_us_per_page:100.0)
  in
  let d =
    D.create ~filter_key:Tweet.created_at ~secondaries env
      { D.default_config with mem_budget = 2048 }
  in
  for i = 0 to 300 do
    D.upsert d (tw ~user:(i mod 10) i)
  done;
  ignore (D.point_query d 17);
  (env, d)

let test_io_stats_roundtrips () =
  let env, d = populated_stats () in
  let s = Env.stats env in
  (* copy is a detached snapshot: diff against it is all zeros... *)
  let snap = Io_stats.copy s in
  List.iter
    (fun (k, v) -> Alcotest.(check int) ("zero " ^ k) 0 v)
    (Io_stats.fields (Io_stats.diff s snap));
  (* ...and after more work, diff = new fields - snapshot fields. *)
  for i = 301 to 400 do
    D.upsert d (tw ~user:(i mod 10) i)
  done;
  ignore (D.point_query d 42);
  let delta = Io_stats.fields (Io_stats.diff s snap) in
  let now = Io_stats.fields s and before = Io_stats.fields snap in
  List.iter
    (fun (k, v) ->
      let n = List.assoc k now and b = List.assoc k before in
      Alcotest.(check int) ("delta " ^ k) (n - b) v)
    delta;
  Alcotest.(check bool)
    "something happened" true
    (List.exists (fun (_, v) -> v > 0) delta);
  (* reset zeroes every field. *)
  Io_stats.reset s;
  List.iter
    (fun (k, v) -> Alcotest.(check int) ("reset " ^ k) 0 v)
    (Io_stats.fields s)

(* ------------------------------------------------------------------ *)
(* Ampstats *)

let test_ampstats_math () =
  let a = Lsm_obs.Ampstats.create () in
  Alcotest.(check bool)
    "nan before first flush" true
    (Float.is_nan (Lsm_obs.Ampstats.write_amplification a));
  Lsm_obs.Ampstats.on_flush a ~bytes:1000 ~rows:10;
  Lsm_obs.Ampstats.on_flush a ~bytes:1000 ~rows:10;
  Lsm_obs.Ampstats.on_merge a ~bytes_read:2000 ~bytes_written:1500 ~rows_in:20
    ~rows_out:15;
  Alcotest.(check (float 1e-9))
    "wa = (flushed + rewritten) / flushed"
    ((2000.0 +. 1500.0) /. 2000.0)
    (Lsm_obs.Ampstats.write_amplification a);
  let f = Lsm_obs.Ampstats.fields a in
  Alcotest.(check int) "flushes" 2 (List.assoc "flushes" f);
  Alcotest.(check int) "merges" 1 (List.assoc "merges" f);
  Alcotest.(check int) "flush_bytes" 2000 (List.assoc "flush_bytes" f);
  Alcotest.(check int) "merge_written" 1500
    (List.assoc "merge_written_bytes" f);
  (* publish mirrors into amp.* gauges *)
  let m = M.create () in
  Lsm_obs.Ampstats.publish a m;
  Alcotest.(check bool)
    "amp.* gauges present" true
    (List.exists (fun l -> contains l "amp.write_amplification")
       (M.to_lines m));
  Lsm_obs.Ampstats.reset a;
  Alcotest.(check int) "reset" 0 (List.assoc "flushes" (Lsm_obs.Ampstats.fields a))

let test_ampstats_fed_by_engine () =
  (* The engine actually feeds the accountant: enough upserts to force
     flushes (tiny budget) must leave non-trivial write amplification. *)
  let env, _d = populated_stats () in
  let a = Env.amp env in
  Alcotest.(check bool) "flushed" true (a.Lsm_obs.Ampstats.flushes > 0);
  let wa = Lsm_obs.Ampstats.write_amplification a in
  Alcotest.(check bool) "wa >= 1" true (wa >= 1.0)

(* ------------------------------------------------------------------ *)
(* Explain *)

module E = Lsm_obs.Explain

let explain_fixture () =
  let env =
    Env.create ~cache_bytes:(16 * 1024)
      (Lsm_sim.Device.custom ~name:"test" ~page_size:1024 ~seek_us:1000.0
         ~read_us_per_page:100.0 ~write_us_per_page:100.0)
  in
  ignore (Env.enable_explain env);
  let d =
    D.create ~filter_key:Tweet.created_at ~secondaries env
      { D.default_config with mem_budget = 2048 }
  in
  for i = 0 to 300 do
    D.upsert d (tw ~user:(i mod 10) i)
  done;
  ignore (D.query_secondary d ~sec:"user_id" ~lo:0 ~hi:5 ~mode:`Timestamp ());
  ignore (D.query_secondary d ~sec:"user_id" ~lo:0 ~hi:5 ~mode:`Direct ());
  ignore (D.point_query d 17);
  env

(* The interface invariant: a node's inclusive I/O delta equals its self
   delta plus the sum of its children's inclusive deltas — so self_io
   summed over the whole tree reproduces the root's (= the operation's
   top-level) delta. *)
let rec check_io_invariant (n : E.node) =
  let get k kvs = try List.assoc k kvs with Not_found -> 0 in
  let keys =
    List.sort_uniq compare
      (List.map fst n.E.io
      @ List.map fst n.E.self_io
      @ List.concat_map (fun c -> List.map fst c.E.io) n.E.children)
  in
  List.iter
    (fun k ->
      let children_sum =
        List.fold_left (fun acc c -> acc + get k c.E.io) 0 n.E.children
      in
      Alcotest.(check int)
        (Printf.sprintf "%s: io = self + children (%s)" n.E.name k)
        (get k n.E.io)
        (get k n.E.self_io + children_sum))
    keys;
  List.iter check_io_invariant n.E.children

let test_explain_plans_and_invariant () =
  let env = explain_fixture () in
  let e = Env.explain env in
  let plans = E.plans e in
  Alcotest.(check bool) "recorded plans" true (plans <> []);
  List.iter
    (fun (p : E.plan) ->
      Alcotest.(check bool)
        (p.E.root.E.name ^ " executions >= 1")
        true (p.E.executions >= 1);
      check_io_invariant p.E.root)
    plans;
  (* One plan per distinct root name. *)
  let names = List.map (fun p -> p.E.root.E.name) plans in
  Alcotest.(check int)
    "distinct roots"
    (List.length (List.sort_uniq compare names))
    (List.length names);
  (* A query plan was retained and the ingest plan executed many times. *)
  Alcotest.(check bool)
    "query plan present" true
    (List.mem "query.secondary" names);
  let ingest =
    List.find (fun p -> p.E.root.E.name = "ingest.upsert") plans
  in
  Alcotest.(check bool) "ingest executions" true (ingest.E.executions > 100)

let test_explain_text_and_json () =
  let env = explain_fixture () in
  let e = Env.explain env in
  let text = E.to_text e in
  Alcotest.(check bool) "text has plans" true (contains text "plan: ");
  Alcotest.(check bool) "text has io" true (contains text "io(total):");
  let j = E.to_json e in
  Alcotest.(check (option string))
    "schema tag" (Some E.schema)
    (Option.bind (J.member "schema" j) J.to_string_opt);
  (* The emitted document parses back. *)
  match J.of_string (J.to_string ~indent:2 j) with
  | Error err -> Alcotest.fail ("explain json does not parse: " ^ err)
  | Ok j' -> (
      match Option.bind (J.member "plans" j') J.to_list with
      | None -> Alcotest.fail "no plans list"
      | Some ps ->
          Alcotest.(check bool) "plans non-empty" true (ps <> []);
          List.iter
            (fun p ->
              Alcotest.(check bool)
                "plan has name" true
                (Option.bind (J.member "name" p) J.to_string_opt <> None);
              Alcotest.(check bool)
                "plan has root" true
                (J.member "root" p <> None))
            ps)

let test_explain_disabled_inert () =
  let e = E.disabled in
  Alcotest.(check bool) "inactive" false (E.active e);
  Alcotest.(check int) "thunk runs" 7 (E.node e "x" (fun () -> 7));
  Alcotest.(check bool) "no plans" true (E.plans e = [])

(* ------------------------------------------------------------------ *)
(* Bench_json *)

module B = Lsm_harness.Bench_json

let test_bench_percentiles () =
  let samples = Array.init 100 (fun i -> Float.of_int (i + 1)) in
  Alcotest.(check (float 1e-9)) "p50" 50.0 (B.percentile samples 50.0);
  Alcotest.(check (float 1e-9)) "p95" 95.0 (B.percentile samples 95.0);
  Alcotest.(check (float 1e-9)) "p99" 99.0 (B.percentile samples 99.0);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (B.percentile samples 100.0);
  Alcotest.(check bool) "empty -> nan" true (Float.is_nan (B.percentile [||] 50.0))

let test_bench_percentile_edges () =
  (* n = 1: every percentile is the sample. *)
  Alcotest.(check (float 1e-9)) "n=1 p1" 7.0 (B.percentile [| 7.0 |] 1.0);
  Alcotest.(check (float 1e-9)) "n=1 p50" 7.0 (B.percentile [| 7.0 |] 50.0);
  Alcotest.(check (float 1e-9)) "n=1 p99" 7.0 (B.percentile [| 7.0 |] 99.0);
  (* n = 2, unsorted input: nearest-rank p50 = ceil(0.5*2) = rank 1 =
     smaller sample; p51..p100 land on rank 2. *)
  Alcotest.(check (float 1e-9)) "n=2 p50" 1.0 (B.percentile [| 3.0; 1.0 |] 50.0);
  Alcotest.(check (float 1e-9)) "n=2 p51" 3.0 (B.percentile [| 3.0; 1.0 |] 51.0);
  Alcotest.(check (float 1e-9)) "n=2 p100" 3.0 (B.percentile [| 3.0; 1.0 |] 100.0);
  (* Even/odd nearest-rank boundaries: with n = 4, p50 is rank 2; with
     n = 5, rank ceil(2.5) = 3 — the true median. *)
  let even = [| 4.0; 2.0; 3.0; 1.0 |] in
  Alcotest.(check (float 1e-9)) "n=4 p50" 2.0 (B.percentile even 50.0);
  Alcotest.(check (float 1e-9)) "n=4 p75" 3.0 (B.percentile even 75.0);
  Alcotest.(check (float 1e-9)) "n=4 p76" 4.0 (B.percentile even 76.0);
  let odd = [| 5.0; 1.0; 4.0; 2.0; 3.0 |] in
  Alcotest.(check (float 1e-9)) "n=5 p50" 3.0 (B.percentile odd 50.0);
  (* p0 clamps to the minimum rather than indexing below the array. *)
  Alcotest.(check (float 1e-9)) "p0 clamps" 1.0 (B.percentile odd 0.0)

let test_bench_percentile_nan () =
  (* nan samples are dropped, not sorted into an arbitrary position (the
     old polymorphic-compare bug): the statistic comes from the finite
     values alone, and is nan only when nothing finite remains. *)
  let noisy = [| Float.nan; 2.0; Float.nan; 1.0; 3.0 |] in
  Alcotest.(check (float 1e-9)) "nan dropped p50" 2.0 (B.percentile noisy 50.0);
  Alcotest.(check (float 1e-9)) "nan dropped p100" 3.0 (B.percentile noisy 100.0);
  Alcotest.(check bool)
    "all-nan -> nan" true
    (Float.is_nan (B.percentile [| Float.nan; Float.nan |] 50.0))

let bench_doc () =
  {
    B.kind = "micro";
    scale = None;
    entries =
      [
        { B.name = "a"; unit_ = "ns/run"; samples = [| 3.0; 1.0; 2.0 |] };
        { B.name = "b"; unit_ = "ns/run"; samples = [| 10.0 |] };
      ];
  }

let test_bench_roundtrip () =
  let d = bench_doc () in
  let j = B.to_json d in
  Alcotest.(check (option string))
    "schema" (Some B.schema)
    (Option.bind (J.member "schema" j) J.to_string_opt);
  match J.of_string (J.to_string ~indent:2 j) with
  | Error e -> Alcotest.fail e
  | Ok j' -> (
      match B.of_json j' with
      | Error e -> Alcotest.fail e
      | Ok d' ->
          Alcotest.(check string) "kind" d.B.kind d'.B.kind;
          Alcotest.(check int) "entries" 2 (List.length d'.B.entries);
          List.iter2
            (fun (a : B.entry) (b : B.entry) ->
              Alcotest.(check string) "name" a.B.name b.B.name;
              Alcotest.(check string) "unit" a.B.unit_ b.B.unit_;
              Alcotest.(check bool) "samples" true (a.B.samples = b.B.samples))
            d.B.entries d'.B.entries)

let test_bench_schema_rejected () =
  match B.of_json (J.Obj [ ("schema", J.Str "something/else") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted wrong schema"

let test_bench_compare () =
  let old_d = bench_doc () in
  let new_d =
    {
      old_d with
      B.entries =
        [
          (* p50 2.0 -> 2.2: within a 15% threshold *)
          { B.name = "a"; unit_ = "ns/run"; samples = [| 2.2 |] };
          (* 10.0 -> 20.0: regression *)
          { B.name = "b"; unit_ = "ns/run"; samples = [| 20.0 |] };
          { B.name = "c"; unit_ = "ns/run"; samples = [| 1.0 |] };
        ];
    }
  in
  let regs, compared, only_old, only_new =
    B.compare_docs ~threshold:0.15 old_d new_d
  in
  Alcotest.(check int) "compared" 2 compared;
  Alcotest.(check (list string)) "only old" [] only_old;
  Alcotest.(check (list string)) "only new" [ "c" ] only_new;
  match regs with
  | [ r ] ->
      Alcotest.(check string) "regressed entry" "b" r.B.r_name;
      Alcotest.(check (float 1e-9)) "ratio" 2.0 r.B.r_ratio
  | _ -> Alcotest.failf "expected 1 regression, got %d" (List.length regs)

let test_bench_of_reports () =
  let r =
    Lsm_harness.Report.make ~id:"figX" ~title:"t"
      ~header:[ "row"; "colA"; "colB" ]
      [ [ "r1"; "1.5"; "not-a-number" ]; [ "r2"; "2.5"; "3.5" ] ]
  in
  let doc = B.of_reports ~scale:Lsm_harness.Scale.tiny [ r ] in
  Alcotest.(check string) "kind" "figures" doc.B.kind;
  let names = List.map (fun (e : B.entry) -> e.B.name) doc.B.entries in
  Alcotest.(check (list string))
    "numeric cells only"
    [ "figX/r1/colA"; "figX/r2/colA"; "figX/r2/colB" ]
    names

(* ------------------------------------------------------------------ *)
(* Histogram.count_above: the SLO violation counter *)

let test_hist_count_above () =
  let h = H.create () in
  Alcotest.(check int) "empty" 0 (H.count_above h 5.0);
  for i = 1 to 100 do
    H.observe h (Float.of_int i)
  done;
  let n = H.count_above h 50.0 in
  (* Conservative within the ~9% bucket resolution: never over-counts,
     and misses at most one bucket's worth. *)
  Alcotest.(check bool) "never over-counts" true (n <= 50);
  Alcotest.(check bool) "close to truth" true (n >= 40);
  Alcotest.(check int) "none above the max" 0 (H.count_above h 100.0);
  Alcotest.(check int) "all above a tiny threshold" 100 (H.count_above h 0.5);
  (* The exact max alone exceeding v still reports 1, even when the
     coarse buckets cannot see it. *)
  let h2 = H.create () in
  H.observe h2 100.0;
  Alcotest.(check int) "max alone counts" 1 (H.count_above h2 99.0)

(* ------------------------------------------------------------------ *)
(* Stats: the shared nan-safe percentile *)

module St = Lsm_obs.Stats

let test_stats_helpers () =
  let s = Array.init 200 (fun i -> Float.of_int (200 - i)) in
  Alcotest.(check (float 1e-9)) "p50" 100.0 (St.p50 s);
  Alcotest.(check (float 1e-9)) "p95" 190.0 (St.p95 s);
  Alcotest.(check (float 1e-9)) "p99" 198.0 (St.p99 s);
  (* Bench_json.percentile is this function — one implementation, one
     nan policy. *)
  let noisy = [| Float.nan; 5.0; 1.0 |] in
  Alcotest.(check (float 1e-9))
    "alias agrees" (B.percentile noisy 50.0) (St.percentile noisy 50.0)

(* ------------------------------------------------------------------ *)
(* Timeseries: windowed collection, the event ring, exports *)

module TS = Lsm_obs.Timeseries

let test_timeseries_windows () =
  let ts = TS.create ~window_us:100.0 () in
  Alcotest.(check int) "empty" 0 (TS.n_windows ts);
  TS.observe ts ~at_us:10.0 "lat" 5.0;
  TS.observe ts ~at_us:150.0 "lat" 7.0;
  TS.observe ts ~at_us:950.0 "lat" 9.0;
  TS.observe ts ~at_us:(-3.0) "lat" 1.0;
  Alcotest.(check int) "dense to max index" 10 (TS.n_windows ts);
  let count_in i =
    match TS.hist ts ~i "lat" with Some h -> H.count h | None -> 0
  in
  (* Negative timestamps clamp into window 0. *)
  Alcotest.(check int) "window 0" 2 (count_in 0);
  Alcotest.(check int) "window 1" 1 (count_in 1);
  Alcotest.(check int) "window 9" 1 (count_in 9);
  Alcotest.(check int) "untouched window empty" 0 (count_in 5);
  TS.count ts ~at_us:20.0 "evictions" 2;
  TS.count ts ~at_us:80.0 "evictions" 1;
  Alcotest.(check int) "counter accumulates" 3 (TS.count_of ts ~i:0 "evictions");
  Alcotest.(check int) "counter elsewhere 0" 0 (TS.count_of ts ~i:1 "evictions");
  TS.add ts ~at_us:120.0 "busy" 1.5;
  TS.add ts ~at_us:130.0 "busy" 2.5;
  Alcotest.(check (float 1e-9)) "sum" 4.0 (TS.sum_of ts ~i:1 "busy");
  TS.set_max ts ~at_us:5.0 "q" 3.0;
  TS.set_max ts ~at_us:6.0 "q" 2.0;
  Alcotest.(check bool) "max keeps larger" true (TS.max_of ts ~i:0 "q" = Some 3.0);
  TS.set_last ts ~at_us:5.0 "g" 3.0;
  TS.set_last ts ~at_us:6.0 "g" 2.0;
  Alcotest.(check bool) "gauge last wins" true (TS.last_of ts ~i:0 "g" = Some 2.0);
  Alcotest.(check (list string)) "hist names" [ "lat" ] (TS.hist_names ts);
  Alcotest.(check (list string)) "count names" [ "evictions" ] (TS.count_names ts)

let test_timeseries_event_ring () =
  let ts = TS.create ~events_capacity:4 ~window_us:100.0 () in
  for i = 0 to 5 do
    TS.event ts
      ~start_us:(Float.of_int (i * 10))
      ~dur_us:5.0 ~kind:"flush" ~part:i
      [ ("bytes", i) ]
  done;
  Alcotest.(check int) "recorded all" 6 (TS.events_recorded ts);
  Alcotest.(check int) "dropped overflow" 2 (TS.events_dropped ts);
  let evs = TS.events ts in
  Alcotest.(check int) "ring holds capacity" 4 (Array.length evs);
  (* Oldest-first: survivors are events 2..5. *)
  Array.iteri
    (fun i e ->
      Alcotest.(check int) (Printf.sprintf "slot %d" i) (i + 2) e.TS.e_part)
    evs;
  (* Overlap filtering: event 3 spans [30, 35]. *)
  let hits = TS.events_between ts ~from_us:32.0 ~until_us:38.0 in
  Alcotest.(check int) "overlap hit" 1 (List.length hits);
  Alcotest.(check int) "the right one" 3 (List.hd hits).TS.e_part;
  Alcotest.(check int) "empty range" 0
    (List.length (TS.events_between ts ~from_us:500.0 ~until_us:600.0))

let test_timeseries_exports_parse () =
  let ts = TS.create ~window_us:100.0 () in
  TS.observe ts ~at_us:10.0 "point" 250.0;
  TS.observe ts ~at_us:210.0 "point" 450.0;
  TS.count ts ~at_us:10.0 "evictions" 1;
  TS.event ts ~start_us:15.0 ~dur_us:20.0 ~kind:"eviction" ~part:1
    [ ("bytes", 4096) ];
  let j = TS.to_json ts in
  (match J.of_string (J.to_string ~indent:2 j) with
  | Error e -> Alcotest.fail ("timeline json does not parse: " ^ e)
  | Ok j' ->
      Alcotest.(check (option int))
        "n_windows" (Some 3)
        (Option.bind (J.member "n_windows" j') J.to_int);
      let windows =
        Option.value ~default:[]
          (Option.bind (J.member "windows" j') J.to_list)
      in
      Alcotest.(check int) "dense windows" 3 (List.length windows);
      let ring =
        Option.bind (J.member "events" j') (fun e ->
            Option.bind (J.member "ring" e) J.to_list)
      in
      Alcotest.(check int) "ring" 1 (List.length (Option.value ~default:[] ring)));
  let csv = TS.to_csv ts in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + one row per window" 4 (List.length lines);
  Alcotest.(check bool) "header names series" true
    (contains (List.hd lines) "point.p99_us")

(* ------------------------------------------------------------------ *)
(* Slo: spec parsing, burn-rate alerting, attribution *)

module S = Lsm_obs.Slo

let test_slo_spec_parser () =
  (match S.objective_of_string "point:p99<1500us" with
  | Ok o ->
      Alcotest.(check string) "series" "point" o.S.series;
      Alcotest.(check (float 1e-9)) "quantile" 0.99 o.S.quantile;
      Alcotest.(check (float 1e-9)) "threshold" 1500.0 o.S.threshold_us;
      Alcotest.(check (float 1e-9)) "budget" 0.01 (S.budget_frac o)
  | Error e -> Alcotest.fail e);
  (match S.objective_of_string "all:p95<2ms" with
  | Ok o -> Alcotest.(check (float 1e-9)) "ms suffix" 2000.0 o.S.threshold_us
  | Error e -> Alcotest.fail e);
  (match S.objective_of_string "x:p50<1s" with
  | Ok o -> Alcotest.(check (float 1e-9)) "s suffix" 1e6 o.S.threshold_us
  | Error e -> Alcotest.fail e);
  (match S.objective_of_string "x:p90<250" with
  | Ok o -> Alcotest.(check (float 1e-9)) "bare = us" 250.0 o.S.threshold_us
  | Error e -> Alcotest.fail e);
  List.iter
    (fun bad ->
      match S.objective_of_string bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("accepted bad spec: " ^ bad))
    [ "nope"; "x:q99<5us"; "x:p99<"; ":p99<5us"; "x:p0<5us"; "x:p100<5us";
      "x:p99<-3us" ]

(* Synthetic run: 10 quiet windows, then 3 where 60% of the requests
   violate — well past the burn thresholds, so float rounding in the
   budget fraction (1.0 -. 0.99) cannot flip the boundary.  The
   multi-window burn rate must alert exactly on the violating windows
   and stay quiet before them. *)
let violating_timeseries () =
  let ts = TS.create ~window_us:100.0 () in
  for w = 0 to 12 do
    let at = (Float.of_int w *. 100.0) +. 50.0 in
    for i = 1 to 100 do
      let bad = w >= 10 && i mod 5 <= 2 in
      TS.observe ts ~at_us:at "lat" (if bad then 10_000.0 else 100.0)
    done
  done;
  ts

let slo_lat = { S.series = "lat"; quantile = 0.99; threshold_us = 1000.0 }

let test_slo_burn_alerts () =
  let quiet = TS.create ~window_us:100.0 () in
  for w = 0 to 12 do
    for _ = 1 to 100 do
      TS.observe quiet ~at_us:((Float.of_int w *. 100.0) +. 50.0) "lat" 100.0
    done
  done;
  Alcotest.(check int) "quiet run: no alerts" 0
    (List.length (S.evaluate quiet slo_lat));
  let ts = violating_timeseries () in
  let alerts = S.evaluate ts slo_lat in
  Alcotest.(check (list int))
    "alerts exactly on violating windows" [ 10; 11; 12 ]
    (List.map (fun a -> a.S.a_window) alerts);
  let a = List.hd alerts in
  (* Window 10's fast stretch is 6..10: 60 violations of 500 requests
     against a 1% budget — burn 12. *)
  Alcotest.(check int) "bad" 60 a.S.a_bad;
  Alcotest.(check int) "total" 500 a.S.a_total;
  Alcotest.(check (float 1e-6)) "fast burn" 12.0 a.S.a_fast_burn;
  (* An unknown series never alerts. *)
  Alcotest.(check int) "unknown series" 0
    (List.length (S.evaluate ts { slo_lat with S.series = "ghost" }))

let test_slo_attribution_and_flight_record () =
  let ts = violating_timeseries () in
  (* A merge overlapping alert window 10 ([1000, 1100)), an eviction
     with a smaller overlap, and one far away. *)
  TS.event ts ~start_us:1010.0 ~dur_us:80.0 ~kind:"lsm.merge" ~part:2 [];
  TS.event ts ~start_us:1090.0 ~dur_us:30.0 ~kind:"eviction" ~part:0
    [ ("bytes", 4096) ];
  TS.event ts ~start_us:100.0 ~dur_us:10.0 ~kind:"eviction" ~part:1 [];
  let alerts = S.evaluate ts slo_lat in
  let findings = S.attribute ts alerts in
  let w10 =
    List.filter (fun f -> f.S.f_alert.S.a_window = 10) findings
  in
  Alcotest.(check int) "two events overlap window 10" 2 (List.length w10);
  (* Ranked by overlap: the 80us merge beats the 10us eviction tail. *)
  Alcotest.(check string) "top culprit" "lsm.merge"
    (List.hd w10).S.f_event.TS.e_kind;
  Alcotest.(check bool) "overlap measured" true
    ((List.hd w10).S.f_overlap_us = 80.0);
  (* The flight record around window 12 still reaches back to window
     10's events (±2 windows); the window-1 eviction is out of range. *)
  let a12 = List.find (fun a -> a.S.a_window = 12) alerts in
  let fr = S.flight_record ts a12 in
  Alcotest.(check int) "flight record spans the ring" 2 (List.length fr);
  (* The whole document parses back. *)
  match J.of_string (J.to_string ~indent:2 (S.to_json ts [ slo_lat ])) with
  | Error e -> Alcotest.fail ("slo json does not parse: " ^ e)
  | Ok j ->
      Alcotest.(check int) "alerts in json" 3
        (List.length
           (Option.value ~default:[]
              (Option.bind (J.member "alerts" j) J.to_list)));
      Alcotest.(check bool) "findings present" true
        (Option.bind (J.member "findings" j) J.to_list <> None)

(* ------------------------------------------------------------------ *)
(* Chrome trace export: round-trip through the Json parser; nesting and
   aggregates must survive ring wraparound. *)

let test_chrome_trace_roundtrip () =
  let now = ref 0.0 in
  let t = T.create ~capacity:4 ~clock:(fun () -> !now) () in
  (* Three top-level spans, then a nested pair: completion order is
     t1 t2 t3 inner outer, so the capacity-4 ring drops t1 but keeps
     the nested pair intact. *)
  for i = 1 to 3 do
    T.with_span t (Printf.sprintf "t%d" i) (fun () -> now := !now +. 1.0)
  done;
  T.with_span t ~cat:"dataset" "outer" (fun () ->
      now := !now +. 1.0;
      T.with_span t "inner" (fun () -> now := !now +. 2.0);
      now := !now +. 1.0);
  Alcotest.(check int) "recorded" 5 (T.recorded t);
  Alcotest.(check int) "dropped" 1 (T.dropped t);
  match J.of_string (T.to_chrome_json t) with
  | Error e -> Alcotest.fail ("chrome trace does not parse: " ^ e)
  | Ok j ->
      let evs =
        Option.value ~default:[]
          (Option.bind (J.member "traceEvents" j) J.to_list)
      in
      Alcotest.(check int) "ring survivors exported" 4 (List.length evs);
      let find name =
        List.find
          (fun e ->
            Option.bind (J.member "name" e) J.to_string_opt = Some name)
          evs
      in
      let ts_of e =
        Option.value ~default:Float.nan (Option.bind (J.member "ts" e) J.to_float)
      and dur_of e =
        Option.value ~default:Float.nan
          (Option.bind (J.member "dur" e) J.to_float)
      in
      (* Nesting survives as ts-containment: inner inside outer. *)
      let outer = find "outer" and inner = find "inner" in
      Alcotest.(check bool) "inner starts inside outer" true
        (ts_of inner >= ts_of outer);
      Alcotest.(check bool) "inner ends inside outer" true
        (ts_of inner +. dur_of inner <= ts_of outer +. dur_of outer);
      Alcotest.(check (float 1e-9)) "inner duration" 2.0 (dur_of inner);
      (* The evicted span t1 is gone from the export... *)
      Alcotest.(check bool) "t1 evicted" true
        (not
           (List.exists
              (fun e ->
                Option.bind (J.member "name" e) J.to_string_opt = Some "t1")
              evs));
      (* ...but the aggregates still account for all five spans. *)
      Alcotest.(check int) "aggregates keep full counts" 5
        (List.length (T.aggregates t));
      (* t1..t3 at 1us each plus outer's 4us inclusive. *)
      Alcotest.(check (float 1e-9)) "coverage includes evicted" 7.0
        (T.top_level_us t)

(* ------------------------------------------------------------------ *)
(* Ampstats copy/diff *)

let test_ampstats_copy_diff () =
  let a = Lsm_obs.Ampstats.create () in
  Lsm_obs.Ampstats.on_flush a ~bytes:1000 ~rows:10;
  let s = Lsm_obs.Ampstats.copy a in
  Lsm_obs.Ampstats.on_flush a ~bytes:500 ~rows:5;
  Lsm_obs.Ampstats.on_merge a ~bytes_read:2000 ~bytes_written:1500 ~rows_in:20
    ~rows_out:15;
  (* copy is detached: the snapshot still shows the old totals. *)
  Alcotest.(check int) "snapshot detached" 1 s.Lsm_obs.Ampstats.flushes;
  let d = Lsm_obs.Ampstats.diff ~since:s a in
  Alcotest.(check int) "flush delta" 1 d.Lsm_obs.Ampstats.flushes;
  Alcotest.(check int) "flush bytes delta" 500 d.Lsm_obs.Ampstats.flush_bytes;
  Alcotest.(check int) "merge delta" 1 d.Lsm_obs.Ampstats.merges;
  Alcotest.(check int) "merge bytes delta" 1500
    d.Lsm_obs.Ampstats.merge_written_bytes

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "lsm_obs"
    [
      ( "histogram",
        [
          Alcotest.test_case "empty" `Quick test_hist_empty;
          Alcotest.test_case "exact fields" `Quick test_hist_exact_fields;
          Alcotest.test_case "quantiles" `Quick test_hist_quantiles;
          Alcotest.test_case "extremes + reset" `Quick test_hist_extremes;
          Alcotest.test_case "count_above" `Quick test_hist_count_above;
          prop_hist_quantile_bounds;
        ] );
      ( "stats",
        [ Alcotest.test_case "shared percentile" `Quick test_stats_helpers ] );
      ( "timeseries",
        [
          Alcotest.test_case "windows" `Quick test_timeseries_windows;
          Alcotest.test_case "event ring" `Quick test_timeseries_event_ring;
          Alcotest.test_case "json + csv exports" `Quick
            test_timeseries_exports_parse;
        ] );
      ( "slo",
        [
          Alcotest.test_case "spec parser" `Quick test_slo_spec_parser;
          Alcotest.test_case "burn-rate alerts" `Quick test_slo_burn_alerts;
          Alcotest.test_case "attribution + flight record" `Quick
            test_slo_attribution_and_flight_record;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "nesting/self-time" `Quick
            test_tracer_nesting_self_time;
          Alcotest.test_case "ring wraparound" `Quick
            test_tracer_ring_wraparound;
          Alcotest.test_case "exception safety" `Quick
            test_tracer_exception_safety;
          Alcotest.test_case "disabled no-op" `Quick test_tracer_disabled_noop;
          Alcotest.test_case "args accumulate" `Quick
            test_tracer_args_accumulate;
          Alcotest.test_case "chrome json" `Quick test_chrome_json_shape;
          Alcotest.test_case "chrome trace round-trip" `Quick
            test_chrome_trace_roundtrip;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "cells + labels" `Quick test_metrics_cells;
          Alcotest.test_case "to_lines" `Quick test_metrics_to_lines;
        ] );
      ( "end-to-end",
        [
          prop_span_io_reconciles;
          Alcotest.test_case "disabled records nothing" `Quick
            test_disabled_records_nothing;
        ] );
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects invalid" `Quick test_json_errors;
          Alcotest.test_case "accessors" `Quick test_json_access;
        ] );
      ( "io_stats",
        [
          Alcotest.test_case "diff/copy/reset/fields" `Quick
            test_io_stats_roundtrips;
        ] );
      ( "ampstats",
        [
          Alcotest.test_case "arithmetic + publish" `Quick test_ampstats_math;
          Alcotest.test_case "fed by engine" `Quick test_ampstats_fed_by_engine;
          Alcotest.test_case "copy/diff" `Quick test_ampstats_copy_diff;
        ] );
      ( "explain",
        [
          Alcotest.test_case "plans + io invariant" `Quick
            test_explain_plans_and_invariant;
          Alcotest.test_case "text + json parse" `Quick
            test_explain_text_and_json;
          Alcotest.test_case "disabled inert" `Quick test_explain_disabled_inert;
        ] );
      ( "bench_json",
        [
          Alcotest.test_case "percentiles" `Quick test_bench_percentiles;
          Alcotest.test_case "percentile edges" `Quick
            test_bench_percentile_edges;
          Alcotest.test_case "percentile nan policy" `Quick
            test_bench_percentile_nan;
          Alcotest.test_case "round-trip" `Quick test_bench_roundtrip;
          Alcotest.test_case "wrong schema rejected" `Quick
            test_bench_schema_rejected;
          Alcotest.test_case "compare flags regressions" `Quick
            test_bench_compare;
          Alcotest.test_case "reports -> entries" `Quick test_bench_of_reports;
        ] );
    ]
