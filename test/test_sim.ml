(* Tests for Lsm_sim: devices, buffer cache, environment cost accounting,
   and phantom files. *)

open Lsm_sim

let mk_env ?(cache_bytes = 4 * Device.hdd.Device.page_size) () =
  Env.create ~cache_bytes Device.hdd

(* ------------------------------------------------------------------ *)
(* Buffer cache *)

let test_cache_hit_miss () =
  let c = Buffer_cache.create ~capacity_pages:2 in
  Alcotest.(check bool) "miss" false (Buffer_cache.touch c (1, 0));
  Buffer_cache.insert c (1, 0);
  Alcotest.(check bool) "hit" true (Buffer_cache.touch c (1, 0));
  Alcotest.(check int) "size" 1 (Buffer_cache.size c)

let test_cache_lru_eviction () =
  let c = Buffer_cache.create ~capacity_pages:2 in
  Buffer_cache.insert c (1, 0);
  Buffer_cache.insert c (1, 1);
  (* Touch page 0 so page 1 becomes LRU. *)
  ignore (Buffer_cache.touch c (1, 0));
  Buffer_cache.insert c (1, 2);
  Alcotest.(check bool) "page 0 kept" true (Buffer_cache.mem c (1, 0));
  Alcotest.(check bool) "page 1 evicted" false (Buffer_cache.mem c (1, 1));
  Alcotest.(check bool) "page 2 resident" true (Buffer_cache.mem c (1, 2));
  Alcotest.(check int) "at capacity" 2 (Buffer_cache.size c)

let test_cache_drop_file () =
  let c = Buffer_cache.create ~capacity_pages:10 in
  Buffer_cache.insert c (1, 0);
  Buffer_cache.insert c (2, 0);
  Buffer_cache.insert c (1, 5);
  Buffer_cache.drop_file c 1;
  Alcotest.(check int) "only file 2 left" 1 (Buffer_cache.size c);
  Alcotest.(check bool) "file2 resident" true (Buffer_cache.mem c (2, 0))

let test_cache_zero_capacity () =
  let c = Buffer_cache.create ~capacity_pages:0 in
  Buffer_cache.insert c (1, 0);
  Alcotest.(check bool) "never caches" false (Buffer_cache.mem c (1, 0))

let test_cache_lru_chain_stress () =
  (* Insert far more than capacity; size must stay at capacity and the
     resident set must be the most recent inserts. *)
  let cap = 8 in
  let c = Buffer_cache.create ~capacity_pages:cap in
  for p = 0 to 99 do
    Buffer_cache.insert c (0, p)
  done;
  Alcotest.(check int) "size at cap" cap (Buffer_cache.size c);
  for p = 100 - cap to 99 do
    Alcotest.(check bool) "recent resident" true (Buffer_cache.mem c (0, p))
  done;
  Alcotest.(check bool) "old gone" false (Buffer_cache.mem c (0, 0))

(* A reference LRU model — MRU-first association list over the same op
   alphabet — run in lockstep with the real cache.  After every op the
   sizes must match and every key must agree on residency; [Mem] probes
   are interleaved to prove residency checks never perturb recency. *)
type cache_op =
  | Insert of int * int
  | Touch of int * int
  | Mem of int * int
  | Remove of int * int
  | Drop_file of int
  | Clear

let cache_op_gen =
  QCheck2.Gen.(
    let key = pair (int_range 0 2) (int_range 0 5) in
    frequency
      [
        (6, map (fun (f, p) -> Insert (f, p)) key);
        (3, map (fun (f, p) -> Touch (f, p)) key);
        (2, map (fun (f, p) -> Mem (f, p)) key);
        (2, map (fun (f, p) -> Remove (f, p)) key);
        (1, map (fun f -> Drop_file f) (int_range 0 2));
        (1, return Clear);
      ])

let model_insert cap model k =
  if cap = 0 then model
  else if List.mem k model then k :: List.filter (( <> ) k) model
  else
    let model = if List.length model >= cap then List.filteri (fun i _ -> i < List.length model - 1) model else model in
    k :: model

let prop_cache_matches_model =
  let open QCheck2 in
  QCheck_alcotest.to_alcotest
    (Test.make ~count:500 ~name:"lru matches reference model"
       Gen.(pair (int_range 1 4) (list_size (int_range 0 60) cache_op_gen))
       (fun (cap, ops) ->
         let c = Buffer_cache.create ~capacity_pages:cap in
         let model = ref [] in
         let agree () =
           Buffer_cache.size c = List.length !model
           && List.for_all
                (fun f ->
                  List.for_all
                    (fun p ->
                      Buffer_cache.mem c (f, p) = List.mem (f, p) !model)
                    [ 0; 1; 2; 3; 4; 5 ])
                [ 0; 1; 2 ]
         in
         List.for_all
           (fun op ->
             (match op with
             | Insert (f, p) ->
                 Buffer_cache.insert c (f, p);
                 model := model_insert cap !model (f, p)
             | Touch (f, p) ->
                 let hit = Buffer_cache.touch c (f, p) in
                 let mhit = List.mem (f, p) !model in
                 if mhit then
                   model := (f, p) :: List.filter (( <> ) (f, p)) !model;
                 if hit <> mhit then failwith "touch hit mismatch"
             | Mem (f, p) ->
                 (* must not touch recency — checked by later evictions *)
                 ignore (Buffer_cache.mem c (f, p))
             | Remove (f, p) ->
                 Buffer_cache.remove c (f, p);
                 model := List.filter (( <> ) (f, p)) !model
             | Drop_file f ->
                 Buffer_cache.drop_file c f;
                 model := List.filter (fun (f', _) -> f' <> f) !model
             | Clear ->
                 Buffer_cache.clear c;
                 model := []);
             agree ())
           ops))

(* ------------------------------------------------------------------ *)
(* Env cost accounting *)

let test_sequential_cheaper_than_random () =
  let env1 = mk_env ~cache_bytes:0 () in
  let f1 = Sfile.create env1 in
  Sfile.append_pages env1 f1 100;
  let t0 = Env.now_us env1 in
  Sfile.read_range env1 f1 ~first:0 ~count:50;
  let seq_cost = Env.now_us env1 -. t0 in
  let env2 = mk_env ~cache_bytes:0 () in
  let f2 = Sfile.create env2 in
  Sfile.append_pages env2 f2 100;
  let t0 = Env.now_us env2 in
  for i = 0 to 24 do
    Sfile.read_page env2 f2 (i * 4)
  done;
  let rand_cost = Env.now_us env2 -. t0 in
  (* 50 sequential pages vs 25 random pages: random still costs more. *)
  Alcotest.(check bool)
    (Printf.sprintf "random dearer (%.0f > %.0f)" rand_cost seq_cost)
    true (rand_cost > seq_cost)

let test_cache_hit_is_cheap () =
  let env = mk_env () in
  let f = Sfile.create env in
  Sfile.append_pages env f 1;
  (* Written pages are resident; the read is a hit. *)
  let t0 = Env.now_us env in
  Sfile.read_page env f 0;
  let hit_cost = Env.now_us env -. t0 in
  Alcotest.(check bool) "hit cheap" true (hit_cost < 1.0);
  Alcotest.(check int) "hit counted" 1 (Env.stats env).Io_stats.cache_hits

let test_read_miss_counted () =
  let env = mk_env ~cache_bytes:0 () in
  let f = Sfile.create env in
  Sfile.append_pages env f 10;
  Sfile.read_page env f 3;
  let st = Env.stats env in
  Alcotest.(check int) "one read" 1 st.Io_stats.pages_read;
  Alcotest.(check int) "random" 1 st.Io_stats.rand_reads;
  Sfile.read_page env f 4;
  Alcotest.(check int) "sequential follow-on" 1 (Env.stats env).Io_stats.seq_reads

let test_interleaved_files_are_random () =
  let env = mk_env ~cache_bytes:0 () in
  let a = Sfile.create env and b = Sfile.create env in
  Sfile.append_pages env a 10;
  Sfile.append_pages env b 10;
  Env.reset_measurement env;
  (* Alternate between files: every access repositions. *)
  for i = 0 to 4 do
    Sfile.read_page env a i;
    Sfile.read_page env b i
  done;
  let st = Env.stats env in
  Alcotest.(check int) "all random" 10 st.Io_stats.rand_reads

let test_write_cost_and_caching () =
  let env = mk_env ~cache_bytes:(100 * Device.hdd.Device.page_size) () in
  let f = Sfile.create env in
  let t0 = Env.now_us env in
  Sfile.append_pages env f 10;
  let cost = Env.now_us env -. t0 in
  let expect =
    Device.hdd.Device.seek_us +. (10.0 *. Device.hdd.Device.write_us_per_page)
  in
  Alcotest.(check (float 0.01)) "write cost" expect cost;
  Alcotest.(check int) "pages" 10 (Sfile.npages f);
  Env.reset_measurement env;
  Sfile.read_range env f ~first:0 ~count:10;
  Alcotest.(check int) "all hits" 10 (Env.stats env).Io_stats.cache_hits

let test_charges () =
  let env = mk_env () in
  let t0 = Env.now_us env in
  Env.charge_comparisons env 1000;
  Alcotest.(check bool) "cmp advances" true (Env.now_us env > t0);
  Alcotest.(check int) "counted" 1000 (Env.stats env).Io_stats.comparisons;
  let t1 = Env.now_us env in
  Env.charge_cache_lines env 10;
  Env.charge_hashes env 10;
  Env.charge_entry_visits env 10;
  Alcotest.(check bool) "cpu advances" true (Env.now_us env > t1)

let test_sfile_delete () =
  let env = mk_env () in
  let f = Sfile.create env in
  Sfile.append_pages env f 5;
  Sfile.delete env f;
  Alcotest.check_raises "read after delete"
    (Invalid_argument "Sfile.read_page: file 0 deleted") (fun () ->
      Sfile.read_page env f 0)

let test_sfile_bounds () =
  let env = mk_env () in
  let f = Sfile.create env in
  Sfile.append_pages env f 2;
  Alcotest.check_raises "oob"
    (Invalid_argument "Sfile.read_page: page 2 outside file of 2 pages")
    (fun () -> Sfile.read_page env f 2)

let test_ssd_cheaper_random () =
  (* The SSD profile's random reads are orders of magnitude cheaper. *)
  let run device =
    let env = Env.create ~cache_bytes:0 device in
    let f = Sfile.create env in
    Sfile.append_pages env f 100;
    let t0 = Env.now_us env in
    for i = 0 to 19 do
      Sfile.read_page env f (i * 5)
    done;
    Env.now_us env -. t0
  in
  let hdd = run Device.hdd and ssd = run Device.ssd in
  Alcotest.(check bool)
    (Printf.sprintf "ssd %.0fus << hdd %.0fus" ssd hdd)
    true
    (ssd *. 10.0 < hdd)

let test_scan_all () =
  let env = mk_env ~cache_bytes:0 () in
  let f = Sfile.create env in
  Sfile.append_pages env f 20;
  Env.reset_measurement env;
  Sfile.scan_all env f;
  let st = Env.stats env in
  Alcotest.(check int) "reads" 20 st.Io_stats.pages_read;
  Alcotest.(check int) "one seek" 1 st.Io_stats.rand_reads;
  Alcotest.(check int) "rest sequential" 19 st.Io_stats.seq_reads

let () =
  Alcotest.run "lsm_sim"
    [
      ( "cache",
        [
          Alcotest.test_case "hit/miss" `Quick test_cache_hit_miss;
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "drop file" `Quick test_cache_drop_file;
          Alcotest.test_case "zero capacity" `Quick test_cache_zero_capacity;
          Alcotest.test_case "lru stress" `Quick test_cache_lru_chain_stress;
          prop_cache_matches_model;
        ] );
      ( "env",
        [
          Alcotest.test_case "seq cheaper than random" `Quick
            test_sequential_cheaper_than_random;
          Alcotest.test_case "cache hit cheap" `Quick test_cache_hit_is_cheap;
          Alcotest.test_case "miss counting" `Quick test_read_miss_counted;
          Alcotest.test_case "interleaving randomizes" `Quick
            test_interleaved_files_are_random;
          Alcotest.test_case "write cost + caching" `Quick
            test_write_cost_and_caching;
          Alcotest.test_case "cpu charges" `Quick test_charges;
          Alcotest.test_case "ssd cheap random" `Quick test_ssd_cheaper_random;
        ] );
      ( "sfile",
        [
          Alcotest.test_case "delete" `Quick test_sfile_delete;
          Alcotest.test_case "bounds" `Quick test_sfile_bounds;
          Alcotest.test_case "scan_all" `Quick test_scan_all;
        ] );
    ]
