(* Cross-strategy differential suite: random operation sequences run
   under every maintenance strategy must produce identical query results
   in every supported validation mode — and all of them must agree with
   the in-memory reference model (Lsm_faultsim.Model, the same oracle the
   crash checker uses).

   This is the paper's core correctness claim stated as a property: the
   strategies (Eager, Validation, Mutable-bitmap, Deleted-key B-tree)
   trade maintenance cost, never query answers. *)

module D = Lsm_core.Dataset.Make (Lsm_workload.Tweet.Record)
module Strategy = Lsm_core.Strategy
module Tweet = Lsm_workload.Tweet

module M = Lsm_faultsim.Model.Make (struct
  type t = Tweet.t

  let pk = Tweet.primary_key
end)

let qtest ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

type op = Ups of int * int * int | Del of int | Flush

let op_gen =
  QCheck2.Gen.(
    frequency
      [
        ( 5,
          map3
            (fun k u at -> Ups (k, u, at))
            (int_range 1 80) (int_range 0 30) (int_range 1 1000) );
        (2, map (fun k -> Del k) (int_range 1 80));
        (1, return Flush);
      ])

let tw ~pk ~user ~at =
  { Tweet.id = pk; user_id = user; location = user mod 7; created_at = at;
    msg_len = 100 }

let mk_env () =
  let device =
    Lsm_sim.Device.custom ~name:"diff" ~page_size:1024 ~seek_us:100.0
      ~read_us_per_page:10.0 ~write_us_per_page:10.0
  in
  Lsm_sim.Env.create ~cache_bytes:(32 * 1024) device

let run_real strategy ops =
  let d =
    D.create ~filter_key:Tweet.created_at
      ~secondaries:[ Lsm_core.Record.secondary "user_id" Tweet.user_id ]
      (mk_env ())
      { D.default_config with strategy; mem_budget = 2048 }
  in
  List.iter
    (function
      | Ups (k, u, at) -> D.upsert d (tw ~pk:k ~user:u ~at)
      | Del k -> D.delete d ~pk:k
      | Flush -> D.flush_now d)
    ops;
  d

let run_model ops =
  let m = M.create () in
  List.iter
    (function
      | Ups (k, u, at) -> M.upsert m (tw ~pk:k ~user:u ~at)
      | Del k -> M.delete m k
      | Flush -> ())
    ops;
  m

let strategies_under_test =
  [
    (Strategy.eager, [ `Assume_valid; `Direct; `Timestamp ]);
    (Strategy.validation, [ `Direct; `Timestamp ]);
    (Strategy.validation_no_repair, [ `Direct; `Timestamp ]);
    (Strategy.mutable_bitmap, [ `Direct; `Timestamp ]);
    (Strategy.deleted_key_btree, [ `Timestamp ]);
  ]

let pks rs = List.sort compare (List.map Tweet.primary_key rs)

(* One observation vector per (strategy, dataset): everything a strategy
   could possibly get wrong, in one comparable value. *)
type obs = {
  o_points : (int * bool) list;  (** pk, present? *)
  o_count : int;
  o_sec : (string * int list) list;  (** per-mode pks in a user range *)
  o_keys : (int * int) list;
  o_time_all : int;
  o_time_sub : int;
}

let observe d modes ~ulo ~uhi ~tlo ~thi =
  {
    o_points =
      List.init 80 (fun i ->
          let pk = i + 1 in
          (pk, D.point_query d pk <> None));
    o_count = D.full_scan d ~f:(fun _ -> ());
    o_sec =
      List.map
        (fun mode ->
          let name =
            match mode with
            | `Assume_valid -> "assume_valid"
            | `Direct -> "direct"
            | `Timestamp -> "timestamp"
          in
          (name, pks (D.query_secondary d ~sec:"user_id" ~lo:ulo ~hi:uhi ~mode ())))
        modes;
    o_keys =
      List.sort compare
        (D.query_secondary_keys d ~sec:"user_id" ~lo:ulo ~hi:uhi
           ~mode:`Timestamp ());
    o_time_all = D.query_time_range d ~tlo:0 ~thi:1000 ~f:(fun _ -> ());
    o_time_sub = D.query_time_range d ~tlo ~thi ~f:(fun _ -> ());
  }

let model_obs m modes ~ulo ~uhi ~tlo ~thi =
  {
    o_points = List.init 80 (fun i -> (i + 1, M.point m (i + 1) <> None));
    o_count = M.count m;
    o_sec =
      List.map
        (fun mode ->
          let name =
            match mode with
            | `Assume_valid -> "assume_valid"
            | `Direct -> "direct"
            | `Timestamp -> "timestamp"
          in
          (name, pks (M.range_by m Tweet.user_id ~lo:ulo ~hi:uhi)))
        modes;
    o_keys = M.keys_by m Tweet.user_id ~lo:ulo ~hi:uhi;
    o_time_all = M.count_by m Tweet.created_at ~lo:0 ~hi:1000;
    o_time_sub = M.count_by m Tweet.created_at ~lo:tlo ~hi:thi;
  }

let prop_strategies_match_model =
  qtest ~count:80 "every strategy/mode = model (point, scan, sec, keys, time)"
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 120) op_gen)
        (pair (pair (int_range 0 30) (int_range 0 30))
           (pair (int_range 0 1000) (int_range 0 1000))))
    (fun (ops, ((u1, u2), (t1, t2))) ->
      let ulo = min u1 u2 and uhi = max u1 u2 in
      let tlo = min t1 t2 and thi = max t1 t2 in
      let m = run_model ops in
      List.for_all
        (fun (strategy, modes) ->
          let d = run_real strategy ops in
          let got = observe d modes ~ulo ~uhi ~tlo ~thi in
          let want = model_obs m modes ~ulo ~uhi ~tlo ~thi in
          if got <> want then
            QCheck2.Test.fail_reportf "strategy %s diverges from model"
              (Strategy.name strategy)
          else true)
        strategies_under_test)

(* Record payloads must agree too, not just presence: the record returned
   by a point query is the latest upsert. *)
let prop_point_payloads_match =
  qtest ~count:60 "point-query payloads = model"
    QCheck2.Gen.(list_size (int_range 1 100) op_gen)
    (fun ops ->
      let m = run_model ops in
      List.for_all
        (fun (strategy, _) ->
          let d = run_real strategy ops in
          List.for_all
            (fun pk -> D.point_query d pk = M.point m pk)
            (M.touched m))
        strategies_under_test)

(* ------------------------------------------------------------------ *)
(* Sharded-memtable differential: sharding the memory component is a
   routing detail, never an answer change.  Two claims:

   - whole-memory flushes reconcile the shards at flush time, so a
     sharded dataset's output — reconciling scans, point payloads, and
     the disk layout itself (component ids and row counts) — is
     identical to the unsharded one after the same trace;
   - per-shard flush traces produce a different layout (one component
     per shard flush) but still the same answers, checked against the
     reference model. *)

let run_shards ~strategy ~shards ~per_shard ops =
  let d =
    D.create ~filter_key:Tweet.created_at
      ~secondaries:[ Lsm_core.Record.secondary "user_id" Tweet.user_id ]
      (mk_env ())
      (* A budget far above any trace's footprint: auto-maintenance never
         fires, so the only flushes are the trace's own Flush ops and
         every shard count sees the identical flush sequence. *)
      {
        D.default_config with
        strategy;
        mem_budget = 1 lsl 20;
        mem_shards = shards;
      }
  in
  let next = ref 0 in
  List.iter
    (function
      | Ups (k, u, at) -> D.upsert d (tw ~pk:k ~user:u ~at)
      | Del k -> D.delete d ~pk:k
      | Flush ->
          if per_shard then begin
            D.flush_shard_now d (!next mod shards);
            incr next
          end
          else D.flush_now d)
    ops;
  d

let prim_components d =
  Array.to_list
    (Array.map
       (fun c -> (D.Prim.component_id c, D.Prim.component_rows c))
       (D.Prim.components (D.primary d)))

let scan_rows d =
  let acc = ref [] in
  ignore (D.full_scan d ~f:(fun r -> acc := r :: !acc));
  List.rev !acc

let shard_counts = [ 2; 4; 8 ]
let sharded_strategies = [ Strategy.validation; Strategy.mutable_bitmap ]

let prop_shards_invisible =
  qtest ~count:40 "mem_shards N = unsharded (scan, points, component ids)"
    QCheck2.Gen.(list_size (int_range 1 120) op_gen)
    (fun ops ->
      List.for_all
        (fun strategy ->
          let base = run_shards ~strategy ~shards:1 ~per_shard:false ops in
          let want_scan = scan_rows base in
          let want_comps = prim_components base in
          let want_points = List.init 80 (fun i -> D.point_query base (i + 1)) in
          List.for_all
            (fun n ->
              let d = run_shards ~strategy ~shards:n ~per_shard:false ops in
              if scan_rows d <> want_scan then
                QCheck2.Test.fail_reportf "scan diverges at %d shards (%s)" n
                  (Strategy.name strategy)
              else if prim_components d <> want_comps then
                QCheck2.Test.fail_reportf
                  "component layout diverges at %d shards (%s)" n
                  (Strategy.name strategy)
              else if
                List.init 80 (fun i -> D.point_query d (i + 1)) <> want_points
              then
                QCheck2.Test.fail_reportf
                  "point payloads diverge at %d shards (%s)" n
                  (Strategy.name strategy)
              else true)
            shard_counts)
        sharded_strategies)

let prop_shard_flush_matches_model =
  qtest ~count:40 "per-shard flush traces = model"
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 120) op_gen)
        (pair (pair (int_range 0 30) (int_range 0 30))
           (pair (int_range 0 1000) (int_range 0 1000))))
    (fun (ops, ((u1, u2), (t1, t2))) ->
      let ulo = min u1 u2 and uhi = max u1 u2 in
      let tlo = min t1 t2 and thi = max t1 t2 in
      let m = run_model ops in
      let want = model_obs m [ `Direct; `Timestamp ] ~ulo ~uhi ~tlo ~thi in
      List.for_all
        (fun strategy ->
          List.for_all
            (fun n ->
              let d = run_shards ~strategy ~shards:n ~per_shard:true ops in
              let got = observe d [ `Direct; `Timestamp ] ~ulo ~uhi ~tlo ~thi in
              if got <> want then
                QCheck2.Test.fail_reportf
                  "per-shard flushes diverge from model at %d shards (%s)" n
                  (Strategy.name strategy)
              else true)
            shard_counts)
        sharded_strategies)

let () =
  Alcotest.run "lsm_diff"
    [
      ("differential", [ prop_strategies_match_model; prop_point_payloads_match ]);
      ("sharded", [ prop_shards_invisible; prop_shard_flush_matches_model ]);
    ]
