let () =
  let env = Lsm_sim.Env.create ~cache_bytes:(1024*1024) (Lsm_sim.Device.custom ~name:"x" ~page_size:1024 ~seek_us:1.0 ~read_us_per_page:1.0 ~write_us_per_page:1.0) in
  let n = 20_000_000 in
  let sink = ref 0 in
  let t0 = Sys.time () in
  for i = 1 to n do
    sink := !sink + i
  done;
  let t1 = Sys.time () in
  for i = 1 to n do
    Lsm_sim.Env.span env "noop" (fun () -> sink := !sink + i)
  done;
  let t2 = Sys.time () in
  Printf.printf "bare loop: %.2f ns/iter\nspan loop: %.2f ns/iter\nspan overhead: %.2f ns (sink=%d)\n"
    ((t1 -. t0) *. 1e9 /. float_of_int n)
    ((t2 -. t1) *. 1e9 /. float_of_int n)
    ((t2 -. t1 -. (t1 -. t0)) *. 1e9 /. float_of_int n) !sink
