(* Tests for Lsm_tree: the generic LSM tree (writes, flush, merge,
   point-lookup algorithms, reconciling scans, bitmaps, merge policies). *)

module L = Lsm_tree.Make (Lsm_util.Keys.Int_key) (Lsm_util.Keys.Int_value)
module Entry = Lsm_tree.Entry
module Mp = Lsm_tree.Merge_policy
module IntMap = Map.Make (Int)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let mk_env () =
  let device =
    Lsm_sim.Device.custom ~name:"test" ~page_size:256 ~seek_us:1000.0
      ~read_us_per_page:100.0 ~write_us_per_page:100.0
  in
  Lsm_sim.Env.create ~cache_bytes:(256 * 64) device

let mk_tree ?(bloom = Some Lsm_tree.Config.default_bloom) ?(bitmap = false)
    ?filter_of env =
  L.create ?filter_of env
    (Lsm_tree.Config.make ~bloom ~validity_bitmap:bitmap "t")

let entry_testable =
  Alcotest.testable
    (fun fmt -> function
      | Entry.Put v -> Fmt.pf fmt "Put %d" v
      | Entry.Del -> Fmt.string fmt "Del")
    ( = )

(* ------------------------------------------------------------------ *)
(* Basic write / flush / lookup *)

let test_write_and_mem_lookup () =
  let env = mk_env () in
  let t = mk_tree env in
  L.write t ~key:1 ~ts:1 (Entry.Put 10);
  L.write t ~key:2 ~ts:2 (Entry.Put 20);
  (match L.lookup_one t 1 with
  | Some r -> Alcotest.check entry_testable "mem hit" (Entry.Put 10) r.L.value
  | None -> Alcotest.fail "expected");
  Alcotest.(check int) "mem count" 2 (L.mem_count t);
  Alcotest.(check bool) "bytes accounted" true (L.mem_bytes t = 2 * (8 + 8 + 8))

let test_same_key_replaces_in_mem () =
  let env = mk_env () in
  let t = mk_tree env in
  L.write t ~key:1 ~ts:1 (Entry.Put 10);
  L.write t ~key:1 ~ts:5 (Entry.Put 11);
  Alcotest.(check int) "one entry" 1 (L.mem_count t);
  (match L.lookup_one t 1 with
  | Some r ->
      Alcotest.check entry_testable "newest" (Entry.Put 11) r.L.value;
      Alcotest.(check int) "ts" 5 r.L.ts
  | None -> Alcotest.fail "expected");
  Alcotest.(check (pair int int)) "mem id" (1, 5) (L.mem_id t)

let test_flush_creates_component () =
  let env = mk_env () in
  let t = mk_tree env in
  for i = 1 to 50 do
    L.write t ~key:i ~ts:i (Entry.Put (i * 10))
  done;
  L.flush t;
  Alcotest.(check int) "one component" 1 (L.component_count t);
  Alcotest.(check int) "mem drained" 0 (L.mem_count t);
  let c = (L.components t).(0) in
  Alcotest.(check (pair int int)) "component id" (1, 50) (L.component_id c);
  (match L.lookup_one t 25 with
  | Some r -> Alcotest.check entry_testable "disk hit" (Entry.Put 250) r.L.value
  | None -> Alcotest.fail "expected disk hit");
  Alcotest.(check bool) "miss" true (L.lookup_one t 51 = None)

let test_flush_empty_noop () =
  let env = mk_env () in
  let t = mk_tree env in
  L.flush t;
  Alcotest.(check int) "no components" 0 (L.component_count t)

let test_newest_component_wins () =
  let env = mk_env () in
  let t = mk_tree env in
  L.write t ~key:1 ~ts:1 (Entry.Put 10);
  L.flush t;
  L.write t ~key:1 ~ts:2 (Entry.Put 20);
  L.flush t;
  (match L.lookup_one t 1 with
  | Some r -> Alcotest.check entry_testable "newest" (Entry.Put 20) r.L.value
  | None -> Alcotest.fail "expected");
  Alcotest.(check int) "two components" 2 (L.component_count t)

let test_anti_matter_lookup () =
  let env = mk_env () in
  let t = mk_tree env in
  L.write t ~key:1 ~ts:1 (Entry.Put 10);
  L.flush t;
  L.write t ~key:1 ~ts:2 Entry.Del;
  (match L.lookup_one t 1 with
  | Some r -> Alcotest.check entry_testable "del visible" Entry.Del r.L.value
  | None -> Alcotest.fail "anti-matter should be returned, not skipped")

(* ------------------------------------------------------------------ *)
(* Merge *)

let test_merge_reconciles () =
  let env = mk_env () in
  let t = mk_tree env in
  L.write t ~key:1 ~ts:1 (Entry.Put 10);
  L.write t ~key:2 ~ts:2 (Entry.Put 20);
  L.flush t;
  L.write t ~key:1 ~ts:3 (Entry.Put 11);
  L.write t ~key:3 ~ts:4 (Entry.Put 30);
  L.flush t;
  let c = L.merge t ~first:0 ~last:1 in
  Alcotest.(check int) "one component" 1 (L.component_count t);
  Alcotest.(check int) "3 distinct keys" 3 (L.component_rows c);
  Alcotest.(check (pair int int)) "merged id" (1, 4) (L.component_id c);
  match L.lookup_one t 1 with
  | Some r -> Alcotest.check entry_testable "newest kept" (Entry.Put 11) r.L.value
  | None -> Alcotest.fail "expected"

let test_merge_drops_del_at_bottom () =
  let env = mk_env () in
  let t = mk_tree env in
  L.write t ~key:1 ~ts:1 (Entry.Put 10);
  L.write t ~key:2 ~ts:2 (Entry.Put 20);
  L.flush t;
  L.write t ~key:1 ~ts:3 Entry.Del;
  L.flush t;
  let c = L.merge t ~first:0 ~last:1 in
  Alcotest.(check int) "tombstone gone" 1 (L.component_rows c);
  Alcotest.(check bool) "key deleted" true (L.lookup_one t 1 = None)

let test_merge_keeps_del_above_bottom () =
  let env = mk_env () in
  let t = mk_tree env in
  L.write t ~key:1 ~ts:1 (Entry.Put 10);
  L.flush t;
  L.write t ~key:1 ~ts:2 Entry.Del;
  L.flush t;
  L.write t ~key:2 ~ts:3 (Entry.Put 20);
  L.flush t;
  (* Merge the two NEWEST components; the oldest still holds Put 1, so the
     anti-matter must survive. *)
  ignore (L.merge t ~first:0 ~last:1);
  Alcotest.(check int) "two components" 2 (L.component_count t);
  match L.lookup_one t 1 with
  | Some r -> Alcotest.check entry_testable "del preserved" Entry.Del r.L.value
  | None -> Alcotest.fail "anti-matter must survive non-bottom merge"

let test_merge_respects_bitmap () =
  let env = mk_env () in
  let t = mk_tree env in
  L.write t ~key:1 ~ts:1 (Entry.Put 10);
  L.write t ~key:2 ~ts:2 (Entry.Put 20);
  L.flush t;
  let c0 = (L.components t).(0) in
  L.invalidate c0 0 (* key 1 *);
  L.write t ~key:3 ~ts:3 (Entry.Put 30);
  L.flush t;
  let merged = L.merge t ~first:0 ~last:1 in
  Alcotest.(check int) "invalidated dropped" 2 (L.component_rows merged);
  Alcotest.(check bool) "key 1 gone" true (L.lookup_one t 1 = None)

(* ------------------------------------------------------------------ *)
(* Model-based property: random ops, random flush/merge points *)

type op = Write of int * int | Delete of int | Flush | MergeAll

let op_gen =
  QCheck2.Gen.(
    frequency
      [
        (8, map2 (fun k v -> Write (k, v)) (int_range 0 60) (int_range 0 1000));
        (2, map (fun k -> Delete k) (int_range 0 60));
        (1, return Flush);
        (1, return MergeAll);
      ])

let apply_model m = function
  | Write (k, v) -> IntMap.add k (`Put v) m
  | Delete k -> IntMap.add k `Del m
  | Flush | MergeAll -> m

let prop_lsm_matches_model =
  qtest ~count:120 "lsm = map model under random ops"
    QCheck2.Gen.(list_size (int_range 0 200) op_gen)
    (fun ops ->
      let env = mk_env () in
      let t = mk_tree env in
      let ts = ref 0 in
      let model =
        List.fold_left
          (fun m op ->
            (match op with
            | Write (k, v) ->
                incr ts;
                L.write t ~key:k ~ts:!ts (Entry.Put v)
            | Delete k ->
                incr ts;
                L.write t ~key:k ~ts:!ts Entry.Del
            | Flush -> L.flush t
            | MergeAll ->
                if L.component_count t >= 2 then
                  ignore (L.merge t ~first:0 ~last:(L.component_count t - 1)));
            apply_model m op)
          IntMap.empty ops
      in
      (* Point lookups agree. *)
      let lookups_ok =
        IntMap.for_all
          (fun k st ->
            match (st, L.lookup_one t k) with
            | `Put v, Some r -> r.L.value = Entry.Put v
            | `Del, Some r -> r.L.value = Entry.Del
            | `Del, None -> true (* tombstone physically dropped *)
            | `Put _, None -> false)
          model
      in
      (* Reconciling scan agrees with live model bindings. *)
      let live =
        IntMap.bindings model
        |> List.filter_map (fun (k, st) ->
               match st with `Put v -> Some (k, v) | `Del -> None)
      in
      let scanned = ref [] in
      L.scan t L.full_scan_spec ~f:(fun r ~src_repaired:_ ->
          match r.L.value with
          | Entry.Put v -> scanned := (r.L.key, v) :: !scanned
          | Entry.Del -> ());
      lookups_ok && List.rev !scanned = live)

let prop_batched_lookup_matches_naive =
  qtest ~count:60 "batched/stateful lookups = naive lookups"
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 150) op_gen)
        (list_size (int_range 1 40) (int_range 0 70)))
    (fun (ops, queries) ->
      let env = mk_env () in
      let t = mk_tree env in
      let ts = ref 0 in
      List.iter
        (fun op ->
          match op with
          | Write (k, v) ->
              incr ts;
              L.write t ~key:k ~ts:!ts (Entry.Put v)
          | Delete k ->
              incr ts;
              L.write t ~key:k ~ts:!ts Entry.Del
          | Flush -> L.flush t
          | MergeAll ->
              if L.component_count t >= 2 then
                ignore (L.merge t ~first:0 ~last:(L.component_count t - 1)))
        ops;
      let qkeys =
        List.sort_uniq compare queries |> Array.of_list |> L.plain_keys
      in
      let naive = Hashtbl.create 16 in
      Array.iter
        (fun { L.qkey; _ } ->
          Hashtbl.replace naive qkey
            (Option.map (fun r -> r.L.value) (L.lookup_one t qkey)))
        qkeys;
      let all_match = ref true in
      List.iter
        (fun opts ->
          L.lookup_batch t opts qkeys ~emit:(fun k row ->
              let got = Option.map (fun r -> r.L.value) row in
              (* lookup_one resolves a bitmap-invalid hit to None too. *)
              if Hashtbl.find naive k <> got then all_match := false))
        [
          { L.batched = false; batch_bytes = 0; stateful = false; use_hints = false };
          { L.batched = true; batch_bytes = 64; stateful = false; use_hints = false };
          { L.batched = true; batch_bytes = 1024 * 1024; stateful = true; use_hints = false };
          { L.batched = true; batch_bytes = 200; stateful = true; use_hints = false };
        ];
      !all_match)

(* ------------------------------------------------------------------ *)
(* Scans *)

let test_scan_range_bounds () =
  let env = mk_env () in
  let t = mk_tree env in
  for i = 1 to 30 do
    L.write t ~key:i ~ts:i (Entry.Put i)
  done;
  L.flush t;
  for i = 31 to 40 do
    L.write t ~key:i ~ts:i (Entry.Put i)
  done;
  let out = ref [] in
  L.scan t
    { L.full_scan_spec with lo = Some 25; hi = Some 35 }
    ~f:(fun r ~src_repaired:_ -> out := r.L.key :: !out);
  Alcotest.(check (list int)) "range" [ 25; 26; 27; 28; 29; 30; 31; 32; 33; 34; 35 ]
    (List.rev !out)

let test_scan_non_reconciling_per_component () =
  let env = mk_env () in
  let t = mk_tree ~bitmap:true env in
  L.write t ~key:1 ~ts:1 (Entry.Put 10);
  L.write t ~key:2 ~ts:2 (Entry.Put 20);
  L.flush t;
  (* Mark key 1 invalid in the old component, then upsert it anew. *)
  let c0 = (L.components t).(0) in
  L.invalidate c0 0;
  L.write t ~key:1 ~ts:3 (Entry.Put 11);
  let out = ref [] in
  L.scan t
    { L.full_scan_spec with reconcile = false }
    ~f:(fun r ~src_repaired:_ -> out := (r.L.key, r.L.value) :: !out);
  (* Memory first (key 1 new), then the disk component (key 2 only). *)
  Alcotest.(check int) "two entries" 2 (List.length !out);
  Alcotest.(check bool) "no stale version" true
    (not (List.mem (1, Entry.Put 10) !out));
  Alcotest.(check bool) "new version present" true
    (List.mem (1, Entry.Put 11) !out)

let test_scan_only_subset () =
  let env = mk_env () in
  let t = mk_tree env in
  L.write t ~key:1 ~ts:1 (Entry.Put 10);
  L.flush t;
  L.write t ~key:2 ~ts:2 (Entry.Put 20);
  L.flush t;
  let comps = L.components t in
  let out = ref [] in
  L.scan t
    { L.full_scan_spec with only = Some [ comps.(0) ]; include_mem = false }
    ~f:(fun r ~src_repaired:_ -> out := r.L.key :: !out);
  Alcotest.(check (list int)) "only newest comp" [ 2 ] (List.rev !out)

(* ------------------------------------------------------------------ *)
(* Range filters *)

let test_range_filter_from_puts () =
  let env = mk_env () in
  let t = mk_tree ~filter_of:(fun v -> v) env in
  L.write t ~key:1 ~ts:1 (Entry.Put 2015);
  L.write t ~key:2 ~ts:2 (Entry.Put 2016);
  L.flush t;
  let c = (L.components t).(0) in
  Alcotest.(check (option (pair int int))) "filter" (Some (2015, 2016))
    c.L.range_filter

let test_widen_filter_covers_old_values () =
  (* The Eager strategy widens the memory filter by the old record's value
     on upsert (the running example of Figs. 2-3). *)
  let env = mk_env () in
  let t = mk_tree ~filter_of:(fun v -> v) env in
  L.write t ~key:101 ~ts:1 (Entry.Put 2018);
  L.widen_filter t 101 2015;
  L.flush t;
  let c = (L.components t).(0) in
  Alcotest.(check (option (pair int int))) "widened" (Some (2015, 2018))
    c.L.range_filter

let test_merge_filter_union_vs_recompute () =
  let env = mk_env () in
  let t = mk_tree ~filter_of:(fun v -> v) env in
  L.write t ~key:1 ~ts:1 (Entry.Put 100);
  L.flush t;
  L.write t ~key:1 ~ts:2 (Entry.Put 900);
  L.flush t;
  (* Bottom merge: old value 100 disappears; the filter is recomputed
     tightly from surviving entries. *)
  let c = L.merge t ~first:0 ~last:1 in
  Alcotest.(check (option (pair int int))) "tight filter" (Some (900, 900))
    c.L.range_filter

(* ------------------------------------------------------------------ *)
(* Merge policy *)

let test_tiering_policy_trigger () =
  let p = Mp.tiering ~size_ratio:1.2 () in
  (* oldest-first sizes *)
  Alcotest.(check (option (pair int int)))
    "no merge yet" None
    (Mp.pick p ~sizes:[| 100; 50 |]);
  Alcotest.(check (option (pair int int)))
    "merge all" (Some (0, 2))
    (Mp.pick p ~sizes:[| 100; 70; 60 |]);
  Alcotest.(check (option (pair int int)))
    "merge suffix" (Some (1, 2))
    (Mp.pick p ~sizes:[| 1000; 50; 70 |])

let test_tiering_max_mergeable () =
  let p = Mp.tiering ~size_ratio:1.2 ~max_mergeable_bytes:500 () in
  (* The 1000-byte component is immovable; merge only the younger ones. *)
  Alcotest.(check (option (pair int int)))
    "skips big" (Some (1, 2))
    (Mp.pick p ~sizes:[| 1000; 50; 70 |]);
  Alcotest.(check (option (pair int int)))
    "nothing mergeable" None
    (Mp.pick p ~sizes:[| 1000; 800 |])

let test_leveling_policy () =
  let p = Mp.leveling ~size_ratio:10.0 () in
  Alcotest.(check (option (pair int int)))
    "merge into older" (Some (0, 1))
    (Mp.pick p ~sizes:[| 100; 20 |]);
  Alcotest.(check (option (pair int int)))
    "too small" None
    (Mp.pick p ~sizes:[| 1000; 20 |])

let test_lazy_leveling_policy () =
  let p = Mp.lazy_leveling ~size_ratio:10.0 ~tier_ratio:1.2 () in
  (* Upper runs small relative to the bottom: tier among them only. *)
  Alcotest.(check (option (pair int int)))
    "tier upper runs" (Some (1, 3))
    (Mp.pick p ~sizes:[| 10_000; 50; 40; 30 |]);
  (* Upper runs heavy enough: fold everything into the bottom. *)
  Alcotest.(check (option (pair int int)))
    "fold into bottom" (Some (0, 2))
    (Mp.pick p ~sizes:[| 1000; 60; 60 |]);
  (* Nothing to do. *)
  Alcotest.(check (option (pair int int)))
    "quiescent" None
    (Mp.pick p ~sizes:[| 10_000; 50 |]);
  Alcotest.(check (option (pair int int)))
    "single run" None
    (Mp.pick p ~sizes:[| 10_000 |])

let test_maybe_merge_applies_policy () =
  let env = mk_env () in
  let t = mk_tree env in
  (* Two same-sized components trigger the 1.2-ratio tiering policy. *)
  for i = 1 to 20 do
    L.write t ~key:i ~ts:i (Entry.Put i)
  done;
  L.flush t;
  for i = 21 to 60 do
    L.write t ~key:i ~ts:i (Entry.Put i)
  done;
  L.flush t;
  (match L.maybe_merge t (Mp.tiering ~size_ratio:1.2 ()) with
  | Some _ -> ()
  | None -> Alcotest.fail "expected a merge");
  Alcotest.(check int) "merged to one" 1 (L.component_count t)

(* ------------------------------------------------------------------ *)
(* Repair bookkeeping *)

let test_repaired_ts_propagates_min () =
  let env = mk_env () in
  let t = mk_tree env in
  L.write t ~key:1 ~ts:1 (Entry.Put 1);
  L.flush t;
  L.write t ~key:2 ~ts:2 (Entry.Put 2);
  L.flush t;
  let comps = L.components t in
  L.set_repaired_ts comps.(0) 10;
  L.set_repaired_ts comps.(1) 4;
  let merged = L.merge t ~first:0 ~last:1 in
  Alcotest.(check int) "min of inputs" 4 merged.L.repaired_ts

let test_find_position () =
  let env = mk_env () in
  let t = mk_tree env in
  for i = 0 to 9 do
    L.write t ~key:(i * 2) ~ts:(i + 1) (Entry.Put i)
  done;
  L.flush t;
  let c = (L.components t).(0) in
  Alcotest.(check (option int)) "present" (Some 3) (L.find_position t c 6);
  Alcotest.(check (option int)) "absent" None (L.find_position t c 7)

let () =
  Alcotest.run "lsm_tree"
    [
      ( "basic",
        [
          Alcotest.test_case "write + mem lookup" `Quick test_write_and_mem_lookup;
          Alcotest.test_case "same-key replace" `Quick test_same_key_replaces_in_mem;
          Alcotest.test_case "flush" `Quick test_flush_creates_component;
          Alcotest.test_case "flush empty" `Quick test_flush_empty_noop;
          Alcotest.test_case "newest wins" `Quick test_newest_component_wins;
          Alcotest.test_case "anti-matter" `Quick test_anti_matter_lookup;
        ] );
      ( "merge",
        [
          Alcotest.test_case "reconciles" `Quick test_merge_reconciles;
          Alcotest.test_case "drops del at bottom" `Quick
            test_merge_drops_del_at_bottom;
          Alcotest.test_case "keeps del above bottom" `Quick
            test_merge_keeps_del_above_bottom;
          Alcotest.test_case "respects bitmap" `Quick test_merge_respects_bitmap;
        ] );
      ( "model",
        [ prop_lsm_matches_model; prop_batched_lookup_matches_naive ] );
      ( "scan",
        [
          Alcotest.test_case "range bounds" `Quick test_scan_range_bounds;
          Alcotest.test_case "non-reconciling" `Quick
            test_scan_non_reconciling_per_component;
          Alcotest.test_case "subset" `Quick test_scan_only_subset;
        ] );
      ( "filter",
        [
          Alcotest.test_case "from puts" `Quick test_range_filter_from_puts;
          Alcotest.test_case "widen covers old" `Quick
            test_widen_filter_covers_old_values;
          Alcotest.test_case "merge recompute" `Quick
            test_merge_filter_union_vs_recompute;
        ] );
      ( "policy",
        [
          Alcotest.test_case "tiering trigger" `Quick test_tiering_policy_trigger;
          Alcotest.test_case "max mergeable" `Quick test_tiering_max_mergeable;
          Alcotest.test_case "leveling" `Quick test_leveling_policy;
          Alcotest.test_case "lazy leveling" `Quick test_lazy_leveling_policy;
          Alcotest.test_case "maybe_merge" `Quick test_maybe_merge_applies_policy;
        ] );
      ( "repair",
        [
          Alcotest.test_case "repairedTS min" `Quick test_repaired_ts_propagates_min;
          Alcotest.test_case "find_position" `Quick test_find_position;
        ] );
    ]
