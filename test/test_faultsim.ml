(* Tests for Lsm_faultsim: deterministic enumeration, plan selection,
   crash matrices under both strategies, and deep checks of the nastiest
   individual crash points (interrupted lockstep merges, half-flushed
   primary pairs, torn checkpoints, crashes straddling commit). *)

module F = Lsm_faultsim.Fault
module Sc = Lsm_faultsim.Scenario
module Ch = Lsm_faultsim.Checker
module H = Lsm_faultsim.Harness

let small ?(validation = false) ?(seed = 7) ?(group_commit = 1)
    ?(maint_workers = 1) ?(mem_shards = 1) () =
  {
    Sc.default_config with
    Sc.seed;
    txns = 25;
    validation;
    group_commit;
    maint_workers;
    mem_shards;
  }

(* The group-commit + overlapping-maintenance configuration every new
   matrix runs under: commits amortize one fsync over groups of 4, and
   two modeled workers interleave independent merges. *)
let grouped ?validation ?seed () =
  small ?validation ?seed ~group_commit:4 ~maint_workers:2 ()

(* The sharded-memtable configuration: four memory shards per tree, so
   the drive phase rotates per-shard flushes and the enumerator surfaces
   every per-shard flush window as a crash point. *)
let sharded ?validation ?seed () = small ?validation ?seed ~mem_shards:4 ()

(* ------------------------------------------------------------------ *)
(* Determinism of the enumeration *)

let test_counting_deterministic () =
  let inj1, st1 = Sc.run (small ()) in
  let inj2, st2 = Sc.run (small ()) in
  Alcotest.(check (list (pair string int)))
    "announcement totals repeat" (F.hits inj1) (F.hits inj2);
  Alcotest.(check int)
    "model state repeats"
    (Sc.M.count st1.Sc.model)
    (Sc.M.count st2.Sc.model);
  Alcotest.(check bool) "counting run completes" true
    (st1.Sc.outcome = Sc.Completed);
  Alcotest.(check bool) "nothing fired" false (F.fired inj1)

let test_counting_covers_required_points () =
  let inj, _ = Sc.run (small ()) in
  let hits = F.hits inj in
  List.iter
    (fun p ->
      match List.assoc_opt p hits with
      | Some n when n > 0 -> ()
      | _ -> Alcotest.failf "fault point %s never announced" p)
    [
      "io.read"; "io.write"; "lsm.flush.begin"; "lsm.flush.install";
      "lsm.merge.begin"; "lsm.merge.install"; "dataset.flush.begin";
      "dataset.flush.pair"; "dataset.merge.pair"; "txn.op.begin";
      "txn.op.logged"; "txn.commit.pre"; "txn.commit.durable";
      "txn.ckpt.begin"; "txn.ckpt.mid"; "txn.ckpt.end"; "txn.flush.anchor";
    ]

(* Under group commit + overlapped maintenance the enumerator must also
   surface the group-seal/fsync/ack windows (torn commit groups) and the
   scheduler's job boundaries — otherwise those crash states are never
   tested. *)
let test_counting_covers_group_points () =
  let inj, _ = Sc.run (grouped ()) in
  let hits = F.hits inj in
  List.iter
    (fun p ->
      match List.assoc_opt p hits with
      | Some n when n > 0 -> ()
      | _ -> Alcotest.failf "fault point %s never announced" p)
    [
      "wal.group.seal"; "wal.group.fsync"; "wal.group.ack";
      "maint.job.start"; "maint.job.install";
    ];
  (* The serial configuration must announce none of them. *)
  let inj0, _ = Sc.run (small ()) in
  List.iter
    (fun p ->
      match List.assoc_opt p (F.hits inj0) with
      | None -> ()
      | Some n -> Alcotest.failf "serial run announced %s %d times" p n)
    [ "wal.group.seal"; "maint.job.start" ]

(* Sharded memtables expose per-shard flush windows: the dataset-level
   shard flush (each tree pair flushed for one shard) and the tree-level
   shard seal/install.  The unsharded configuration must announce none —
   it always flushes whole memtables. *)
let test_counting_covers_shard_points () =
  let inj, _ = Sc.run (sharded ()) in
  let hits = F.hits inj in
  List.iter
    (fun p ->
      match List.assoc_opt p hits with
      | Some n when n > 0 -> ()
      | _ -> Alcotest.failf "fault point %s never announced" p)
    [
      "dataset.flush.shard.begin"; "dataset.flush.shard.pair";
      "lsm.flush.shard.begin"; "lsm.flush.shard.install";
    ];
  let inj0, _ = Sc.run (small ()) in
  List.iter
    (fun p ->
      match List.assoc_opt p (F.hits inj0) with
      | None -> ()
      | Some n -> Alcotest.failf "unsharded run announced %s %d times" p n)
    [ "dataset.flush.shard.begin"; "lsm.flush.shard.begin" ]

let test_select_plans () =
  let hits = [ ("a", 100); ("b", 3); ("c", 1) ] in
  let plans = H.select_plans ~kind:F.Crash ~budget:20 hits in
  Alcotest.(check bool)
    "budget roughly met" true
    (List.length plans >= 20 && List.length plans <= 26);
  List.iter
    (fun { F.point; hit; _ } ->
      let c = List.assoc point hits in
      if hit < 1 || hit > c then
        Alcotest.failf "plan hit %d out of range for %s (count %d)" hit point c)
    plans;
  (* every point gets at least one plan; hits within a point are unique *)
  List.iter
    (fun (p, _) ->
      let mine = List.filter (fun { F.point; _ } -> point = p) plans in
      Alcotest.(check bool) (p ^ " covered") true (mine <> []);
      let hs = List.map (fun { F.hit; _ } -> hit) mine in
      Alcotest.(check int) (p ^ " hits unique") (List.length hs)
        (List.length (List.sort_uniq compare hs)))
    hits;
  Alcotest.(check (list (pair string int)))
    "selection is deterministic"
    (List.map (fun { F.point; hit; _ } -> (point, hit)) plans)
    (List.map
       (fun { F.point; hit; _ } -> (point, hit))
       (H.select_plans ~kind:F.Crash ~budget:20 hits))

(* ------------------------------------------------------------------ *)
(* Crash matrices *)

let check_report r =
  if not (H.ok r) then begin
    H.print_report Format.str_formatter r;
    Alcotest.failf "fault matrix failed:@.%s" (Format.flush_str_formatter ())
  end

let test_matrix_mutable_bitmap () =
  check_report (H.run ~crash_budget:40 ~io_budget:8 (small ()))

let test_matrix_validation () =
  check_report (H.run ~crash_budget:40 ~io_budget:8 (small ~validation:true ()))

let test_matrix_other_seed () =
  check_report (H.run ~crash_budget:30 ~io_budget:6 (small ~seed:42 ()))

(* The expanded matrices: >= 50 crash points per strategy, with the
   group-commit and overlapping-merge fault points in the enumeration. *)
let test_matrix_grouped_mutable_bitmap () =
  let r = H.run ~crash_budget:50 ~io_budget:8 (grouped ()) in
  check_report r;
  Alcotest.(check bool)
    ">= 50 crash plans" true
    (List.length r.H.r_plans >= 50)

let test_matrix_grouped_validation () =
  let r = H.run ~crash_budget:50 ~io_budget:8 (grouped ~validation:true ()) in
  check_report r;
  Alcotest.(check bool)
    ">= 50 crash plans" true
    (List.length r.H.r_plans >= 50)

(* The per-shard fault matrix: with four memory shards the rotating
   drive-phase flushes announce every per-shard crash point, and crashes
   anywhere in a shard flush — one shard durable, siblings still in
   memory — must recover to a checker-accepted state under both WAL
   strategies. *)
let test_matrix_sharded_mutable_bitmap () =
  check_report (H.run ~crash_budget:40 ~io_budget:8 (sharded ()))

let test_matrix_sharded_validation () =
  check_report (H.run ~crash_budget:40 ~io_budget:8 (sharded ~validation:true ()))

(* ------------------------------------------------------------------ *)
(* Deep dives into specific crash points *)

(* Run one plan targeting the middle occurrence of [point]; the fault
   must fire, recovery must pass the checker, and the system must accept
   new work afterwards. *)
let run_point_cfg cfg point =
  let inj0, _ = Sc.run cfg in
  match List.assoc_opt point (F.hits inj0) with
  | None | Some 0 -> Alcotest.failf "point %s never announced" point
  | Some c ->
      let plan = F.plan F.Crash ~point ~hit:((c / 2) + 1) in
      let inj, st = Sc.run ~plan cfg in
      Alcotest.(check bool) (point ^ " fired") true (F.fired inj);
      Alcotest.(check bool)
        (point ^ " crashed") true
        (match st.Sc.outcome with Sc.Crashed _ -> true | _ -> false);
      (match Ch.check st with
      | [] -> ()
      | msgs ->
          Alcotest.failf "%s: post-recovery check failed:@.%s" point
            (String.concat "\n" msgs));
      Sc.smoke st;
      match Ch.check st with
      | [] -> ()
      | msgs ->
          Alcotest.failf "%s: post-smoke check failed:@.%s" point
            (String.concat "\n" msgs)

let run_point ?validation point = run_point_cfg (small ?validation ()) point

let test_crash_between_pair_flush () = run_point "dataset.flush.pair"
let test_crash_mid_lockstep_merge () = run_point "dataset.merge.pair"
let test_crash_mid_checkpoint () = run_point "txn.ckpt.mid"
let test_crash_at_commit_durable () = run_point "txn.commit.durable"
let test_crash_before_commit () = run_point "txn.commit.pre"
let test_crash_at_merge_install () = run_point "lsm.merge.install"
let test_crash_validation_flush () = run_point ~validation:true "dataset.flush.begin"

(* Group-commit crash windows: before the group fsync (the whole group is
   torn — every member must be discarded), after the fsync but before the
   durable frontier advances, and after durability but before the ack. *)
let test_crash_at_group_seal () = run_point_cfg (grouped ()) "wal.group.seal"
let test_crash_at_group_fsync () = run_point_cfg (grouped ()) "wal.group.fsync"
let test_crash_at_group_ack () = run_point_cfg (grouped ()) "wal.group.ack"

(* Crashes inside the overlapping scheduler: at a job admission (merges
   in flight but nothing installed) and at a job install (a prefix of the
   round's merges installed, the rest abandoned). *)
let test_crash_at_maint_job_start () =
  run_point_cfg (grouped ()) "maint.job.start"

let test_crash_at_maint_job_install () =
  run_point_cfg (grouped ()) "maint.job.install"

let test_crash_grouped_lockstep_merge () =
  run_point_cfg (grouped ()) "dataset.merge.pair"

(* Per-shard flush crash windows: between the two trees of a shard flush
   (primary durable for the shard, a secondary not), and at the tree-level
   shard install (the shard's component on disk but the in-memory shard
   not yet cleared at crash time). *)
let test_crash_between_shard_pair () =
  run_point_cfg (sharded ()) "dataset.flush.shard.pair"

let test_crash_at_shard_install () =
  run_point_cfg (sharded ()) "lsm.flush.shard.install"

let test_crash_at_shard_begin_validation () =
  run_point_cfg (sharded ~validation:true ()) "dataset.flush.shard.begin"

(* A transient I/O error during a query is retried and the run completes
   with no crash at all. *)
let test_transient_io_error_retried () =
  let cfg = small () in
  let plan = F.plan F.Io_error ~point:"io.read" ~hit:3 in
  let inj, st = Sc.run ~plan cfg in
  Alcotest.(check bool) "io error fired" true (F.fired inj);
  (* The engine's retry/backoff absorbs a one-shot transient fault at the
     I/O site itself, so the run always completes. *)
  Alcotest.(check bool) "completed" true (st.Sc.outcome = Sc.Completed);
  Alcotest.(check bool) "retry counted" true
    ((Lsm_sim.Env.resil st.Sc.env).Lsm_sim.Env.retries > 0);
  match Ch.check st with
  | [] -> ()
  | msgs -> Alcotest.failf "io-error run failed:@.%s" (String.concat "\n" msgs)

(* Fault-kind naming: canonical spellings round-trip, and the legacy
   "io-error" spelling still parses. *)
let test_kind_round_trip () =
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (F.kind_to_string k ^ " round-trips")
        true
        (F.kind_of_string (F.kind_to_string k) = k))
    [ F.Crash; F.Io_error; F.Corrupt ];
  Alcotest.(check bool) "io-error alias" true
    (F.kind_of_string "io-error" = F.Io_error);
  (match F.kind_of_string "bogus" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bogus kind accepted");
  (* The Env printer and Fault use the same spelling. *)
  List.iter
    (fun k ->
      Alcotest.(check string) "printer agrees"
        (F.kind_to_string k)
        (Lsm_sim.Env.string_of_fault_kind k))
    [ F.Crash; F.Io_error; F.Corrupt ]

(* A corruption plan never crashes the run: the flipped page is caught by
   its checksum, reads degrade but stay correct, and the healing sweep
   (exercised by the checker) rebuilds the quarantined component. *)
let test_corrupt_detected_and_healed () =
  let cfg = small () in
  let inj0, _ = Sc.run cfg in
  match List.assoc_opt "io.write" (F.hits inj0) with
  | None | Some 0 -> Alcotest.fail "io.write never announced"
  | Some c ->
      let plan = F.plan F.Corrupt ~point:"io.write" ~hit:((c / 2) + 1) in
      let inj, st = Sc.run ~plan cfg in
      Alcotest.(check bool) "corruption fired" true (F.fired inj);
      Alcotest.(check bool) "completed (no crash)" true
        (st.Sc.outcome = Sc.Completed);
      (match Ch.check st with
      | [] -> ()
      | msgs ->
          Alcotest.failf "corrupt run failed:@.%s" (String.concat "\n" msgs));
      Alcotest.(check int) "nothing left quarantined" 0
        (Sc.D.quarantined_count st.Sc.d);
      Alcotest.(check int) "no corrupt pages left" 0
        (Lsm_sim.Env.corrupt_page_count st.Sc.env);
      Sc.smoke st;
      match Ch.check st with
      | [] -> ()
      | msgs ->
          Alcotest.failf "post-smoke check failed:@.%s"
            (String.concat "\n" msgs)

(* An intermittent window shorter than the engine's retry budget is
   absorbed entirely at the I/O site: the run completes with no crash. *)
let test_intermittent_absorbed () =
  let cfg = small () in
  let plan = F.plan ~fails:2 F.Io_error ~point:"io.read" ~hit:5 in
  let inj, st = Sc.run ~plan cfg in
  Alcotest.(check bool) "fired" true (F.fired inj);
  Alcotest.(check bool) "completed" true (st.Sc.outcome = Sc.Completed);
  Alcotest.(check bool) "absorbed by >=2 retries" true
    ((Lsm_sim.Env.resil st.Sc.env).Lsm_sim.Env.retries >= 2);
  match Ch.check st with
  | [] -> ()
  | msgs -> Alcotest.failf "intermittent run failed:@.%s" (String.concat "\n" msgs)

(* An unreachable plan never fires and the scenario just completes. *)
let test_unreachable_plan () =
  let inj, st = Sc.run ~plan:(F.plan F.Crash ~point:"no.such.point" ~hit:1)
      (small ())
  in
  Alcotest.(check bool) "not fired" false (F.fired inj);
  Alcotest.(check bool) "completed" true (st.Sc.outcome = Sc.Completed)

let () =
  Alcotest.run "lsm_faultsim"
    [
      ( "determinism",
        [
          Alcotest.test_case "counting runs repeat" `Quick
            test_counting_deterministic;
          Alcotest.test_case "required points announced" `Quick
            test_counting_covers_required_points;
          Alcotest.test_case "group-commit points announced" `Quick
            test_counting_covers_group_points;
          Alcotest.test_case "per-shard points announced" `Quick
            test_counting_covers_shard_points;
          Alcotest.test_case "plan selection" `Quick test_select_plans;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "mutable-bitmap matrix" `Quick
            test_matrix_mutable_bitmap;
          Alcotest.test_case "validation matrix" `Quick test_matrix_validation;
          Alcotest.test_case "other seed" `Quick test_matrix_other_seed;
          Alcotest.test_case "group-commit mutable-bitmap matrix" `Quick
            test_matrix_grouped_mutable_bitmap;
          Alcotest.test_case "group-commit validation matrix" `Quick
            test_matrix_grouped_validation;
          Alcotest.test_case "sharded mutable-bitmap matrix" `Quick
            test_matrix_sharded_mutable_bitmap;
          Alcotest.test_case "sharded validation matrix" `Quick
            test_matrix_sharded_validation;
        ] );
      ( "crash points",
        [
          Alcotest.test_case "half-flushed primary pair" `Quick
            test_crash_between_pair_flush;
          Alcotest.test_case "interrupted lockstep merge" `Quick
            test_crash_mid_lockstep_merge;
          Alcotest.test_case "torn checkpoint" `Quick test_crash_mid_checkpoint;
          Alcotest.test_case "crash after commit durable" `Quick
            test_crash_at_commit_durable;
          Alcotest.test_case "crash before commit" `Quick
            test_crash_before_commit;
          Alcotest.test_case "crash at merge install" `Quick
            test_crash_at_merge_install;
          Alcotest.test_case "validation flush crash" `Quick
            test_crash_validation_flush;
          Alcotest.test_case "torn group at seal" `Quick
            test_crash_at_group_seal;
          Alcotest.test_case "torn group at fsync" `Quick
            test_crash_at_group_fsync;
          Alcotest.test_case "durable group at ack" `Quick
            test_crash_at_group_ack;
          Alcotest.test_case "crash at maint job start" `Quick
            test_crash_at_maint_job_start;
          Alcotest.test_case "crash at maint job install" `Quick
            test_crash_at_maint_job_install;
          Alcotest.test_case "grouped lockstep merge crash" `Quick
            test_crash_grouped_lockstep_merge;
          Alcotest.test_case "half-flushed shard pair" `Quick
            test_crash_between_shard_pair;
          Alcotest.test_case "crash at shard install" `Quick
            test_crash_at_shard_install;
          Alcotest.test_case "validation shard flush crash" `Quick
            test_crash_at_shard_begin_validation;
          Alcotest.test_case "transient io error" `Quick
            test_transient_io_error_retried;
          Alcotest.test_case "unreachable plan" `Quick test_unreachable_plan;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "kind naming round-trip" `Quick
            test_kind_round_trip;
          Alcotest.test_case "corruption detected and healed" `Quick
            test_corrupt_detected_and_healed;
          Alcotest.test_case "intermittent fault absorbed" `Quick
            test_intermittent_absorbed;
        ] );
    ]
