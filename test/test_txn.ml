(* Tests for Lsm_txn (locks, WAL, bitmap recovery, side-files) and the
   concurrent-merge protocols of Sec. 5.3 (Lsm_core.Concurrent_merge). *)

module Lt = Lsm_txn.Lock_table
module Wal = Lsm_txn.Wal
module Bs = Lsm_txn.Bitmap_store
module Rec = Lsm_txn.Recovery
module Sf = Lsm_txn.Side_file

(* ------------------------------------------------------------------ *)
(* Lock table *)

let test_lock_s_compat () =
  let t = Lt.create () in
  Alcotest.(check bool) "s1" true (Lt.acquire t ~owner:1 ~key:7 Lt.S = `Granted);
  Alcotest.(check bool) "s2" true (Lt.acquire t ~owner:2 ~key:7 Lt.S = `Granted);
  Alcotest.(check bool) "x conflicts" true
    (Lt.acquire t ~owner:3 ~key:7 Lt.X = `Conflict)

let test_lock_x_exclusive () =
  let t = Lt.create () in
  Alcotest.(check bool) "x" true (Lt.acquire t ~owner:1 ~key:7 Lt.X = `Granted);
  Alcotest.(check bool) "x2 refused" true
    (Lt.acquire t ~owner:2 ~key:7 Lt.X = `Conflict);
  Alcotest.(check bool) "s refused" true
    (Lt.acquire t ~owner:2 ~key:7 Lt.S = `Conflict);
  Alcotest.(check bool) "reentrant" true
    (Lt.acquire t ~owner:1 ~key:7 Lt.X = `Granted);
  Lt.release t ~owner:1 ~key:7;
  Alcotest.(check bool) "x after release" true
    (Lt.acquire t ~owner:2 ~key:7 Lt.X = `Granted)

let test_lock_upgrade () =
  let t = Lt.create () in
  Alcotest.(check bool) "s" true (Lt.acquire t ~owner:1 ~key:7 Lt.S = `Granted);
  Alcotest.(check bool) "upgrade sole holder" true
    (Lt.acquire t ~owner:1 ~key:7 Lt.X = `Granted);
  Alcotest.(check bool) "holds X" true (Lt.holds t ~owner:1 ~key:7 = Some Lt.X)

let test_lock_counts_and_cleanup () =
  let t = Lt.create () in
  ignore (Lt.acquire t ~owner:1 ~key:1 Lt.S);
  ignore (Lt.acquire t ~owner:1 ~key:2 Lt.X);
  Alcotest.(check int) "outstanding" 2 (Lt.outstanding t);
  Lt.release t ~owner:1 ~key:1;
  Lt.release t ~owner:1 ~key:2;
  Alcotest.(check int) "cleaned" 0 (Lt.outstanding t);
  Alcotest.(check int) "acquisitions" 2 (Lt.acquisitions t);
  Alcotest.(check int) "releases" 2 (Lt.releases t)

(* ------------------------------------------------------------------ *)
(* WAL + bitmap store + recovery *)

let test_wal_basic () =
  let w = Wal.create () in
  let t1 = Wal.begin_txn w in
  let l1 = Wal.log w ~txn:t1 ~kind:Wal.Upsert ~pk:5 ~update:(Some (0, 3)) in
  let l2 = Wal.log w ~txn:t1 ~kind:Wal.Delete ~pk:6 ~update:None in
  Alcotest.(check bool) "lsn monotone" true (l2 > l1);
  Wal.commit w ~txn:t1;
  Alcotest.(check bool) "committed" true (Wal.txn_state w ~txn:t1 = Some Wal.Committed);
  Alcotest.(check int) "2 records" 2 (Wal.length w);
  Alcotest.(check int) "replay stream" 2
    (List.length (Wal.records_after w ~lsn:0));
  Wal.checkpoint w;
  Alcotest.(check int) "nothing after ckpt" 0
    (List.length (Wal.records_after w ~lsn:(Wal.checkpoint_lsn w)))

let test_abort_unsets_bits () =
  let w = Wal.create () in
  let store = Bs.create () in
  Bs.register store ~comp_seq:0 ~size:10;
  let t1 = Wal.begin_txn w in
  Bs.set store ~comp_seq:0 ~pos:4;
  ignore (Wal.log w ~txn:t1 ~kind:Wal.Upsert ~pk:1 ~update:(Some (0, 4)));
  Alcotest.(check bool) "bit set" true (Bs.get store ~comp_seq:0 ~pos:4);
  Rec.abort_txn w store ~txn:t1;
  Alcotest.(check bool) "bit unset on abort" false (Bs.get store ~comp_seq:0 ~pos:4)

let test_recovery_replays_committed_only () =
  let w = Wal.create () in
  let store = Bs.create () in
  Bs.register store ~comp_seq:0 ~size:16;
  Bs.register store ~comp_seq:1 ~size:16;
  (* Committed before checkpoint. *)
  let t1 = Wal.begin_txn w in
  Bs.set store ~comp_seq:0 ~pos:1;
  ignore (Wal.log w ~txn:t1 ~kind:Wal.Upsert ~pk:1 ~update:(Some (0, 1)));
  Wal.commit w ~txn:t1;
  Bs.checkpoint store;
  Wal.checkpoint w;
  (* Committed after checkpoint: must be replayed. *)
  let t2 = Wal.begin_txn w in
  Bs.set store ~comp_seq:1 ~pos:2;
  ignore (Wal.log w ~txn:t2 ~kind:Wal.Delete ~pk:2 ~update:(Some (1, 2)));
  Wal.commit w ~txn:t2;
  (* Uncommitted at crash: must NOT be replayed. *)
  let t3 = Wal.begin_txn w in
  Bs.set store ~comp_seq:1 ~pos:3;
  ignore (Wal.log w ~txn:t3 ~kind:Wal.Delete ~pk:3 ~update:(Some (1, 3)));
  (* Also a no-update-bit record: replay must not touch bitmaps. *)
  let t4 = Wal.begin_txn w in
  ignore (Wal.log w ~txn:t4 ~kind:Wal.Upsert ~pk:4 ~update:None);
  Wal.commit w ~txn:t4;
  let expected = Bs.create () in
  Bs.register expected ~comp_seq:0 ~size:16;
  Bs.register expected ~comp_seq:1 ~size:16;
  Bs.set expected ~comp_seq:0 ~pos:1;
  Bs.set expected ~comp_seq:1 ~pos:2;
  (* Crash + recover. *)
  Rec.recover w store;
  Alcotest.(check bool) "t1 durable via checkpoint" true
    (Bs.get store ~comp_seq:0 ~pos:1);
  Alcotest.(check bool) "t2 replayed" true (Bs.get store ~comp_seq:1 ~pos:2);
  Alcotest.(check bool) "t3 not replayed" false (Bs.get store ~comp_seq:1 ~pos:3);
  Alcotest.(check bool) "full state equal" true (Bs.equal_state store expected)

let test_recovery_idempotent () =
  let w = Wal.create () in
  let store = Bs.create () in
  Bs.register store ~comp_seq:0 ~size:8;
  let t1 = Wal.begin_txn w in
  Bs.set store ~comp_seq:0 ~pos:0;
  ignore (Wal.log w ~txn:t1 ~kind:Wal.Upsert ~pk:1 ~update:(Some (0, 0)));
  Wal.commit w ~txn:t1;
  Rec.recover w store;
  let snap1 = Bs.snapshot store in
  Rec.recover w store;
  Alcotest.(check bool) "second recovery same" true (Bs.snapshot store = snap1)

(* A crash can tear the last WAL record mid-write; recovery must treat
   the log as ending just before it: the torn record's effect is
   discarded, its (necessarily uncommitted) transaction aborted. *)
let test_recovery_discards_torn_tail () =
  let w = Wal.create () in
  let store = Bs.create () in
  Bs.register store ~comp_seq:0 ~size:8;
  (* A committed transaction whose record precedes the torn one. *)
  let t1 = Wal.begin_txn w in
  Bs.set store ~comp_seq:0 ~pos:1;
  ignore (Wal.log w ~txn:t1 ~kind:Wal.Upsert ~pk:1 ~update:(Some (0, 1)));
  Wal.commit w ~txn:t1;
  (* The in-flight transaction's last record is torn by the crash. *)
  let t2 = Wal.begin_txn w in
  Bs.set store ~comp_seq:0 ~pos:2;
  ignore (Wal.log w ~txn:t2 ~kind:Wal.Upsert ~pk:2 ~update:(Some (0, 2)));
  Wal.tear_tail w;
  Alcotest.(check bool) "torn mark set" true (Wal.torn_tail w <> None);
  Rec.recover w store;
  Alcotest.(check bool) "torn mark consumed" true (Wal.torn_tail w = None);
  Alcotest.(check bool) "committed bit survives" true
    (Bs.get store ~comp_seq:0 ~pos:1);
  Alcotest.(check bool) "torn record's bit discarded" false
    (Bs.get store ~comp_seq:0 ~pos:2);
  Alcotest.(check bool) "torn transaction aborted" true
    (Wal.txn_state w ~txn:t2 = Some Wal.Aborted);
  (* Idempotent: a second recovery does not re-discard anything. *)
  let snap = Bs.snapshot store in
  Rec.recover w store;
  Alcotest.(check bool) "re-recovery stable" true (Bs.snapshot store = snap)

(* Tearing is only meaningful mid-write: an empty log has no tail, and a
   discard with a stale marker (record already gone) is a no-op. *)
let test_torn_tail_edge_cases () =
  let w = Wal.create () in
  Wal.tear_tail w;
  Alcotest.(check bool) "empty log: nothing to tear" true
    (Wal.torn_tail w = None);
  Alcotest.(check bool) "empty log: nothing to discard" true
    (Wal.discard_torn_tail w = None);
  let t1 = Wal.begin_txn w in
  ignore (Wal.log w ~txn:t1 ~kind:Wal.Upsert ~pk:1 ~update:None);
  Wal.tear_tail w;
  (match Wal.discard_torn_tail w with
  | Some r -> Alcotest.(check int) "discarded the tail record" 1 r.Wal.pk
  | None -> Alcotest.fail "expected the torn record back");
  Alcotest.(check bool) "marker cleared" true (Wal.torn_tail w = None);
  Alcotest.(check bool) "second discard no-op" true
    (Wal.discard_torn_tail w = None)

(* ------------------------------------------------------------------ *)
(* Side-file *)

let test_side_file () =
  let sf = Sf.create () in
  Alcotest.(check bool) "append" true (Sf.append sf 5);
  Alcotest.(check bool) "append" true (Sf.append sf 3);
  Alcotest.(check bool) "append dup" true (Sf.append sf 5);
  Alcotest.(check int) "len" 3 (Sf.length sf);
  Sf.close sf;
  Alcotest.(check bool) "closed refuses" false (Sf.append sf 9);
  let cost = ref 0 in
  Alcotest.(check (array int)) "sorted dedup" [| 3; 5 |] (Sf.sorted_keys ~cost sf)

(* ------------------------------------------------------------------ *)
(* Concurrent merge (Fig. 23) *)

module D = Lsm_core.Dataset.Make (Lsm_workload.Tweet.Record)
module CM = Lsm_core.Concurrent_merge.Make (Lsm_workload.Tweet.Record) (D)
module Tweet = Lsm_workload.Tweet

let tw ?(user = 0) ?(at = 1) id =
  { Tweet.id; user_id = user; location = 0; created_at = at; msg_len = 68 }

let mk_cm_dataset () =
  let device =
    Lsm_sim.Device.custom ~name:"test" ~page_size:1024 ~seek_us:1000.0
      ~read_us_per_page:100.0 ~write_us_per_page:100.0
  in
  let env = Lsm_sim.Env.create ~cache_bytes:(1024 * 256) device in
  let d =
    D.create ~filter_key:Tweet.created_at
      ~secondaries:[ Lsm_core.Record.secondary "user_id" Tweet.user_id ]
      env
      { D.default_config with strategy = Lsm_core.Strategy.mutable_bitmap }
  in
  D.set_auto_maintenance d false;
  (* 4 components of 150 records each; later batches update some earlier
     keys so pre-existing bitmap marks exist. *)
  let model = Hashtbl.create 1024 in
  for b = 0 to 3 do
    for i = 1 to 150 do
      let id = (b * 150) + i in
      let r = tw ~user:(id mod 100) ~at:id id in
      D.upsert d r;
      Hashtbl.replace model id r
    done;
    (* update a few keys from previous batches *)
    if b > 0 then
      for i = 1 to 20 do
        let id = ((b - 1) * 150) + i in
        let r = tw ~user:((id + 7) mod 100) ~at:(1000 + id) id in
        D.upsert d r;
        Hashtbl.replace model id r
      done;
    D.flush_memory d
  done;
  (d, model)

let run_method method_ =
  let d, model = mk_cm_dataset () in
  let wrng = Lsm_util.Rng.create 77 in
  let next_write () =
    (* Half the writer ops update keys inside the merging components. *)
    if Lsm_util.Rng.bool wrng then begin
      let id = 1 + Lsm_util.Rng.int wrng 600 in
      let r = tw ~user:(Lsm_util.Rng.int wrng 100) ~at:(2000 + id) id in
      Hashtbl.replace model id r;
      CM.Upsert r
    end
    else begin
      let id = 10_000 + Lsm_util.Rng.int wrng 1000 in
      let r = tw ~user:(Lsm_util.Rng.int wrng 100) ~at:(3000 + id) id in
      Hashtbl.replace model id r;
      CM.Upsert r
    end
  in
  let res = CM.run d ~method_ ~next_write ~writer_ops_per_row:0.25 () in
  (d, model, res)

let check_consistency d (model : (int, Tweet.t) Hashtbl.t) name =
  (* Every model record visible with the right contents. *)
  Hashtbl.iter
    (fun id r ->
      match D.point_query d id with
      | Some got ->
          Alcotest.(check int) (name ^ ": user of " ^ string_of_int id)
            r.Tweet.user_id got.Tweet.user_id
      | None -> Alcotest.fail (name ^ ": lost record " ^ string_of_int id))
    model;
  (* No resurrected stale versions: the non-reconciling bitmap scan must
     count each live record exactly once. *)
  let n = D.query_time_range d ~tlo:0 ~thi:max_int ~f:ignore in
  Alcotest.(check int) (name ^ ": live count") (Hashtbl.length model) n

let test_cm_lock_correct () =
  let d, model, res = run_method CM.Lock in
  Alcotest.(check bool) "writers ran" true (res.CM.writer_ops > 50);
  Alcotest.(check bool) "locks taken" true (res.CM.lock_acquisitions > 500);
  check_consistency d model "lock"

let test_cm_side_file_correct () =
  let d, model, res = run_method CM.Side_file in
  Alcotest.(check bool) "writers ran" true (res.CM.writer_ops > 50);
  check_consistency d model "side-file"

let test_cm_overhead_ordering () =
  let _, _, base = run_method CM.Baseline in
  let _, _, side = run_method CM.Side_file in
  let _, _, lock = run_method CM.Lock in
  Alcotest.(check bool)
    (Printf.sprintf "side-file %.0f ~ baseline %.0f (within 25%%)"
       side.CM.merge_time_us base.CM.merge_time_us)
    true
    (side.CM.merge_time_us < base.CM.merge_time_us *. 1.25);
  Alcotest.(check bool)
    (Printf.sprintf "lock %.0f > side %.0f" lock.CM.merge_time_us
       side.CM.merge_time_us)
    true
    (lock.CM.merge_time_us > side.CM.merge_time_us)

let test_cm_components_after () =
  let d, _, _ = run_method CM.Side_file in
  Alcotest.(check int) "primary merged to 1" 1
    (D.Prim.component_count (D.primary d));
  match D.pk_index d with
  | Some pk -> Alcotest.(check int) "pk merged to 1" 1 (D.Pk.component_count pk)
  | None -> Alcotest.fail "pk index"

let prop_cm_protocols_lose_nothing =
  (* Random batch layouts, writer mixes and interleaving rates: both
     protected protocols keep every committed record exactly once. *)
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:25 ~name:"cm protocols lose no updates"
       QCheck2.Gen.(
         tup4 (int_range 2 5) (int_range 50 200) (int_range 0 100)
           (int_range 1 8))
       (fun (comps, per_comp, upd_pct, rate8) ->
         List.for_all
           (fun method_ ->
             let device =
               Lsm_sim.Device.custom ~name:"t" ~page_size:1024 ~seek_us:1000.0
                 ~read_us_per_page:100.0 ~write_us_per_page:100.0
             in
             let env = Lsm_sim.Env.create ~cache_bytes:(1024 * 256) device in
             let d =
               D.create ~filter_key:Tweet.created_at
                 ~secondaries:[ Lsm_core.Record.secondary "user_id" Tweet.user_id ]
                 env
                 { D.default_config with strategy = Lsm_core.Strategy.mutable_bitmap }
             in
             D.set_auto_maintenance d false;
             let model = Hashtbl.create 256 in
             let next = ref 0 in
             for _b = 1 to comps do
               for _ = 1 to per_comp do
                 incr next;
                 let r = tw ~user:(!next mod 97) ~at:!next !next in
                 D.upsert d r;
                 Hashtbl.replace model !next r
               done;
               D.flush_memory d
             done;
             let max_id = !next in
             let wrng = Lsm_util.Rng.create (comps * 1000 + per_comp) in
             let next_write () =
               if Lsm_util.Rng.int wrng 100 < upd_pct then begin
                 let id = 1 + Lsm_util.Rng.int wrng max_id in
                 let r = tw ~user:(Lsm_util.Rng.int wrng 97) ~at:(max_id + id) id in
                 Hashtbl.replace model id r;
                 CM.Upsert r
               end
               else begin
                 incr next;
                 let r = tw ~user:(!next mod 97) ~at:!next !next in
                 Hashtbl.replace model !next r;
                 CM.Upsert r
               end
             in
             let _ =
               CM.run d ~method_ ~next_write
                 ~writer_ops_per_row:(Float.of_int rate8 /. 8.0)
                 ()
             in
             (* Every record visible with the right value, counted once. *)
             Hashtbl.fold
               (fun id r acc ->
                 acc
                 && match D.point_query d id with
                    | Some got -> got.Tweet.user_id = r.Tweet.user_id
                    | None -> false)
               model true
             && D.query_time_range d ~tlo:0 ~thi:max_int ~f:ignore
                = Hashtbl.length model)
           [ CM.Lock; CM.Side_file ]))

let () =
  Alcotest.run "lsm_txn"
    [
      ( "locks",
        [
          Alcotest.test_case "s compat" `Quick test_lock_s_compat;
          Alcotest.test_case "x exclusive" `Quick test_lock_x_exclusive;
          Alcotest.test_case "upgrade" `Quick test_lock_upgrade;
          Alcotest.test_case "counts + cleanup" `Quick test_lock_counts_and_cleanup;
        ] );
      ( "wal",
        [
          Alcotest.test_case "basic" `Quick test_wal_basic;
          Alcotest.test_case "abort unsets" `Quick test_abort_unsets_bits;
          Alcotest.test_case "recovery committed-only" `Quick
            test_recovery_replays_committed_only;
          Alcotest.test_case "recovery idempotent" `Quick test_recovery_idempotent;
          Alcotest.test_case "torn tail discarded" `Quick
            test_recovery_discards_torn_tail;
          Alcotest.test_case "torn tail edge cases" `Quick
            test_torn_tail_edge_cases;
        ] );
      ("side-file", [ Alcotest.test_case "basic" `Quick test_side_file ]);
      ( "concurrent-merge",
        [
          Alcotest.test_case "lock method correct" `Quick test_cm_lock_correct;
          Alcotest.test_case "side-file method correct" `Quick
            test_cm_side_file_correct;
          Alcotest.test_case "overhead ordering" `Quick test_cm_overhead_ordering;
          Alcotest.test_case "components after" `Quick test_cm_components_after;
          prop_cm_protocols_lose_nothing;
        ] );
    ]
