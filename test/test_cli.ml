(* The installed binary's CLI contract, exercised by shelling out to the
   real executable: usage errors (unknown subcommand, unknown flag,
   missing required argument) exit 2; success exits 0.

   Tests run with the build directory as cwd, so the executable lives at
   ../bin/ relative to us (declared as a dune dep). *)

let exe = "../bin/lsm_repro.exe"

let run args =
  Sys.command
    (Filename.quote_command exe ~stdout:"/dev/null" ~stderr:"/dev/null" args)

let test_unknown_subcommand () =
  Alcotest.(check int) "exit 2" 2 (run [ "definitely-not-a-subcommand" ])

let test_unknown_flag () =
  Alcotest.(check int) "exit 2" 2 (run [ "list"; "--no-such-flag" ])

let test_missing_required_arg () =
  (* `run` requires an experiment id. *)
  Alcotest.(check int) "exit 2" 2 (run [ "run" ])

let test_bad_scale_value () =
  Alcotest.(check int)
    "unknown flag on inspect" 2
    (run [ "inspect"; "--no-such-flag" ])

let test_list_ok () = Alcotest.(check int) "exit 0" 0 (run [ "list" ])

let test_help_ok () = Alcotest.(check int) "exit 0" 0 (run [ "--help" ])

(* ------------------------------------------------------------------ *)
(* Machine-readable output contracts: the JSON documents the binary
   writes parse with our own parser and keep their schema promises. *)

module J = Lsm_obs.Json

let parse_file path =
  match J.read ~path with
  | Ok j -> j
  | Error e -> Alcotest.failf "%s: %s" path e

let member k j =
  match J.member k j with
  | Some v -> v
  | None -> Alcotest.failf "missing field %S" k

let str k j =
  match J.to_string_opt (member k j) with
  | Some s -> s
  | None -> Alcotest.failf "field %S not a string" k

let items k j =
  match J.to_list (member k j) with
  | Some l -> l
  | None -> Alcotest.failf "field %S not a list" k

let num k j =
  (* amplifications may serialize as Int or Float *)
  match member k j with
  | J.Int n -> float_of_int n
  | J.Float f -> f
  | _ -> Alcotest.failf "field %S not a number" k

let int_fields j =
  match j with
  | J.Obj kvs ->
      List.map
        (fun (k, v) ->
          match v with
          | J.Int n -> (k, n)
          | _ -> Alcotest.failf "field %S not an int" k)
        kvs
  | _ -> Alcotest.fail "expected an object of ints"

let test_inspect_json () =
  let path = Filename.temp_file "inspect" ".json" in
  Alcotest.(check int) "inspect exits 0" 0
    (run [ "inspect"; "-s"; "tiny"; "--json"; path ]);
  let j = parse_file path in
  Sys.remove path;
  Alcotest.(check string) "schema" "lsm-repro-inspect/1" (str "schema" j);
  Alcotest.(check string) "scale" "tiny" (str "scale" j);
  let write = member "write" j and space = member "space" j in
  Alcotest.(check bool) "write amplification >= 1" true
    (num "amplification" write >= 1.0);
  Alcotest.(check bool) "read amplification >= 0" true
    (num "amplification" (member "read" j) >= 0.0);
  Alcotest.(check bool) "space amplification >= 1" true
    (num "amplification" space >= 1.0);
  let write_counters =
    match write with
    | J.Obj kvs -> List.filter (fun (k, _) -> k <> "amplification") kvs
    | _ -> Alcotest.fail "write section not an object"
  in
  List.iter
    (fun (k, v) ->
      if v < 0 then Alcotest.failf "write counter %s negative" k)
    (int_fields (J.Obj write_counters));
  let gauges = member "gauges" j in
  Alcotest.(check bool) "memory gauge reported" true
    (num "mem.resident_bytes" gauges >= 0.0);
  let comps = items "components" j in
  Alcotest.(check bool) "has components" true (comps <> []);
  List.iter
    (fun c ->
      ignore (str "tree" c);
      let rows = int_fields (J.Obj [ ("rows", member "rows" c) ]) in
      Alcotest.(check bool) "rows non-negative" true
        (List.for_all (fun (_, v) -> v >= 0) rows);
      let lo = num "min_ts" c and hi = num "max_ts" c in
      Alcotest.(check bool) "component id ordered" true (lo <= hi))
    comps

(* In every explain plan node, each inclusive I/O counter equals its own
   self counter plus the sum over children — missing keys count as 0. *)
let rec check_io_decomposition name node =
  let get m k = Option.value ~default:0 (List.assoc_opt k m) in
  let io = int_fields (member "io" node)
  and self = int_fields (member "io_self" node) in
  let children = items "children" node in
  let child_ios =
    List.map (fun c -> int_fields (member "io" c)) children
  in
  let keys =
    List.sort_uniq compare
      (List.map fst io @ List.map fst self
      @ List.concat_map (fun m -> List.map fst m) child_ios)
  in
  List.iter
    (fun k ->
      let sum = List.fold_left (fun acc m -> acc + get m k) 0 child_ios in
      Alcotest.(check int)
        (Printf.sprintf "%s: io.%s = self + children" name k)
        (get io k)
        (get self k + sum))
    keys;
  List.iteri
    (fun i c -> check_io_decomposition (Printf.sprintf "%s/%d" name i) c)
    children

let test_explain_json () =
  let path = Filename.temp_file "explain" ".json" in
  Alcotest.(check int) "run exits 0" 0
    (run [ "run"; "fig16"; "-s"; "tiny"; "--explain-json"; path ]);
  let j = parse_file path in
  Sys.remove path;
  Alcotest.(check string) "schema" "lsm-repro-explain/1" (str "schema" j);
  let envs = items "envs" j in
  Alcotest.(check bool) "has environments" true (envs <> []);
  List.iter
    (fun env ->
      let plans = items "plans" env in
      Alcotest.(check bool) "env has plans" true (plans <> []);
      List.iter
        (fun p ->
          let name = str "name" p in
          let execs = num "executions" p in
          Alcotest.(check bool) (name ^ " executed") true (execs >= 1.0);
          let root = member "root" p in
          Alcotest.(check string) "root name matches plan" name
            (str "name" root);
          check_io_decomposition name root)
        plans)
    envs

(* The serve subcommand: exit code and the lsm-repro-serve/1 schema. *)
let test_serve_json () =
  let path = Filename.temp_file "serve" ".json" in
  Alcotest.(check int) "serve exits 0" 0
    (run
       [ "serve"; "-s"; "tiny"; "--duration"; "0.2"; "--rate"; "1000";
         "--seed"; "7"; "--json"; path ]);
  let j = parse_file path in
  Sys.remove path;
  Alcotest.(check string) "schema" "lsm-repro-serve/1" (str "schema" j);
  Alcotest.(check string) "mode" "run" (str "mode" j);
  Alcotest.(check string) "scale echoed" "tiny" (str "scale" (member "config" j));
  let run_o = member "run" j in
  Alcotest.(check bool) "requests positive" true (num "requests" run_o > 0.0);
  let classes = items "classes" run_o in
  Alcotest.(check (list string))
    "one row per op class plus all"
    [ "ingest"; "point"; "multi"; "secondary"; "scan"; "all" ]
    (List.map (str "class") classes);
  List.iter
    (fun c ->
      let p50 = num "p50_us" c and p99 = num "p99_us" c in
      Alcotest.(check bool)
        (str "class" c ^ ": 0 <= p50 <= p99")
        true
        (p50 >= 0.0 && p50 <= p99))
    classes;
  let b = member "budget" run_o in
  Alcotest.(check bool) "budget honoured" true (member "ok" b = J.Bool true);
  Alcotest.(check bool) "peak under budget" true
    (num "peak_bytes" b <= num "budget_bytes" b);
  Alcotest.(check bool) "coordinator flushed" true (num "evictions" b > 0.0)

let test_serve_sweep_json () =
  let path = Filename.temp_file "serve_sweep" ".json" in
  Alcotest.(check int) "sweep exits 0" 0
    (run
       [ "serve"; "-s"; "tiny"; "--sweep"; "--duration"; "0.15"; "--seed"; "7";
         "--json"; path ]);
  let j = parse_file path in
  Sys.remove path;
  Alcotest.(check string) "schema" "lsm-repro-serve/1" (str "schema" j);
  Alcotest.(check string) "mode" "sweep" (str "mode" j);
  let sw = member "sweep" j in
  Alcotest.(check bool) "capacity positive" true (num "capacity_rps" sw > 0.0);
  let points = items "points" sw in
  Alcotest.(check bool) "ladder has rungs" true (List.length points >= 3);
  (* The default ladder straddles the capacity estimate, so the knee must
     be visible: at least one rung saturated, at least one not. *)
  let sat =
    List.map (fun p -> member "saturated" p = J.Bool true) points
  in
  Alcotest.(check bool) "some rung saturated" true (List.mem true sat);
  Alcotest.(check bool) "some rung below saturation" true (List.mem false sat);
  match member "knee_rps" sw with
  | J.Float k -> Alcotest.(check bool) "knee positive" true (k > 0.0)
  | J.Null -> Alcotest.fail "expected a knee on the default ladder"
  | _ -> Alcotest.fail "knee_rps must be a number or null"

(* The timeline document: lsm-repro-timeline/1 schema, dense indexed
   windows, the flight-recorder ring, and an SLO section that echoes the
   requested objective.  The CSV sidecar is a header plus one row per
   window. *)
let test_serve_timeline_json () =
  let path = Filename.temp_file "timeline" ".json" in
  let csv = Filename.temp_file "timeline" ".csv" in
  Alcotest.(check int) "serve --timeline exits 0" 0
    (run
       [ "serve"; "-s"; "tiny"; "--duration"; "0.2"; "--rate"; "1000";
         "--seed"; "7"; "--window-ms"; "50"; "--slo"; "point:p99<1500us";
         "--timeline"; path; "--timeline-csv"; csv ]);
  let j = parse_file path in
  Sys.remove path;
  Alcotest.(check string) "schema" "lsm-repro-timeline/1" (str "schema" j);
  Alcotest.(check string) "scale echoed" "tiny" (str "scale" (member "config" j));
  Alcotest.(check bool) "run section present" true
    (num "requests" (member "run" j) > 0.0);
  let tl = member "timeline" j in
  Alcotest.(check (float 0.0)) "window width echoed" 50_000.0
    (num "window_us" tl);
  let n = int_of_float (num "n_windows" tl) in
  Alcotest.(check bool) "windows collected" true (n > 0);
  let windows = items "windows" tl in
  Alcotest.(check int) "windows dense" n (List.length windows);
  List.iteri
    (fun i w ->
      Alcotest.(check int) "windows indexed in order" i
        (int_of_float (num "i" w)))
    windows;
  let total =
    List.fold_left
      (fun acc w ->
        match J.member "all" (member "series" w) with
        | Some s -> acc + int_of_float (num "count" s)
        | None -> acc)
      0 windows
  in
  Alcotest.(check bool) "the all series counted completions" true (total > 0);
  let ev = member "events" tl in
  Alcotest.(check bool) "ring accounting sane" true
    (num "recorded" ev >= num "dropped" ev);
  let slo = member "slo" j in
  (match items "objectives" slo with
  | [ o ] ->
      Alcotest.(check string) "objective series" "point" (str "series" o);
      Alcotest.(check (float 1e-9)) "objective threshold" 1500.0
        (num "threshold_us" o)
  | _ -> Alcotest.fail "expected exactly one objective");
  ignore (items "alerts" slo);
  ignore (items "findings" slo);
  ignore (items "flight_records" slo);
  let ic = open_in csv in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove csv;
  match List.rev !lines with
  | header :: rows ->
      Alcotest.(check bool) "CSV header shape" true
        (String.length header > 16
        && String.sub header 0 15 = "window,start_us");
      Alcotest.(check int) "CSV row per window" n (List.length rows)
  | [] -> Alcotest.fail "empty timeline CSV"

let test_serve_timeline_rejects_sweep () =
  Alcotest.(check int) "--timeline with --sweep exits 2" 2
    (run
       [ "serve"; "-s"; "tiny"; "--sweep"; "--timeline"; "/dev/null" ]);
  Alcotest.(check int) "bad --slo spec exits 2" 2
    (run [ "serve"; "-s"; "tiny"; "--slo"; "nonsense" ]);
  Alcotest.(check int) "non-positive --window-ms exits 2" 2
    (run [ "serve"; "-s"; "tiny"; "--window-ms"; "0" ])

let test_serve_bad_arrivals () =
  Alcotest.(check int) "unknown arrival process exits 2" 2
    (run [ "serve"; "-s"; "tiny"; "--arrivals"; "fractal" ])

(* The chaos flag's contract: parse errors and impossible plans are
   usage errors (exit 2); a good run passes its checker (exit 0) and
   writes the chaos document. *)
let test_serve_chaos_bad_specs () =
  Alcotest.(check int) "unknown fault kind exits 2" 2
    (run [ "serve"; "-s"; "tiny"; "--chaos"; "explode@p0@t5ms" ]);
  Alcotest.(check int) "missing window exits 2" 2
    (run [ "serve"; "-s"; "tiny"; "--chaos"; "io@p0@t5ms" ]);
  Alcotest.(check int) "bad time unit exits 2" 2
    (run [ "serve"; "-s"; "tiny"; "--chaos"; "crash@p0@t5parsecs" ]);
  Alcotest.(check int) "fault beyond partition count exits 2" 2
    (run [ "serve"; "-s"; "tiny"; "-p"; "4"; "--chaos"; "crash@p7@t5ms" ]);
  Alcotest.(check int) "--chaos with --sweep exits 2" 2
    (run [ "serve"; "-s"; "tiny"; "--sweep"; "--chaos"; "crash@p0@t5ms" ]);
  Alcotest.(check int) "unknown strategy exits 2" 2
    (run [ "serve"; "-s"; "tiny"; "--strategy"; "eager" ])

let test_serve_chaos_json () =
  let path = Filename.temp_file "serve_chaos" ".json" in
  Alcotest.(check int) "chaos run passes its checker" 0
    (run
       [ "serve"; "-s"; "tiny"; "--duration"; "0.2"; "--rate"; "800";
         "--seed"; "7"; "--chaos"; "crash@p1@t50ms"; "--deadline-us"; "8000";
         "--json"; path ]);
  let j = parse_file path in
  Sys.remove path;
  Alcotest.(check string) "schema" "lsm-repro-serve/1" (str "schema" j);
  Alcotest.(check string) "mode" "chaos" (str "mode" j);
  let c = member "chaos" j in
  Alcotest.(check bool) "availability in (0, 1]" true
    (num "availability" c > 0.0 && num "availability" c <= 1.0);
  let v = member "checker" j in
  Alcotest.(check bool) "checker ok" true (member "ok" v = J.Bool true)

(* The faultsim subcommand's exit-code contract. *)
let test_faultsim_ok () =
  Alcotest.(check int) "small matrix passes" 0
    (run [ "faultsim"; "--seed"; "3"; "--txns"; "15"; "--points"; "20"; "--io"; "4" ])

let test_faultsim_single_plan () =
  Alcotest.(check int) "single-plan repro passes" 0
    (run
       [ "faultsim"; "--seed"; "3"; "--txns"; "15"; "--point";
         "dataset.flush.pair"; "--hit"; "1"; "--kind"; "crash" ])

let test_faultsim_unreachable_plan_fails () =
  Alcotest.(check int) "unfired plan exits 1" 1
    (run
       [ "faultsim"; "--seed"; "3"; "--txns"; "15"; "--point"; "no.such.point";
         "--hit"; "1" ])

(* Group-commit + overlapping-maintenance flags: matrices pass, the
   repro-command contract reaches the new fault points, and nonsense
   values are usage errors. *)
let test_faultsim_grouped_ok () =
  Alcotest.(check int) "grouped matrix passes" 0
    (run
       [ "faultsim"; "--seed"; "5"; "--txns"; "15"; "--group-commit"; "4";
         "--maint-workers"; "2"; "--points"; "20"; "--io"; "4" ])

let test_faultsim_group_point_repro () =
  Alcotest.(check int) "crash inside group fsync recovers" 0
    (run
       [ "faultsim"; "--seed"; "5"; "--txns"; "15"; "--group-commit"; "4";
         "--point"; "wal.group.fsync"; "--hit"; "1"; "--kind"; "crash" ]);
  Alcotest.(check int) "crash at maint job install recovers" 0
    (run
       [ "faultsim"; "--seed"; "5"; "--txns"; "15"; "--maint-workers"; "2";
         "--point"; "maint.job.install"; "--hit"; "1"; "--kind"; "crash" ])

let test_faultsim_group_points_need_flags () =
  (* Without the flags the points are never announced, so the plan must
     report as unfired (exit 1), not silently pass. *)
  Alcotest.(check int) "wal.group.fsync absent in serial mode" 1
    (run
       [ "faultsim"; "--seed"; "5"; "--txns"; "15"; "--point";
         "wal.group.fsync"; "--hit"; "1"; "--kind"; "crash" ])

let test_faultsim_bad_group_flags () =
  Alcotest.(check int) "--group-commit 0 exits 2" 2
    (run [ "faultsim"; "--seed"; "5"; "--txns"; "15"; "--group-commit"; "0" ]);
  Alcotest.(check int) "--maint-workers 0 exits 2" 2
    (run [ "faultsim"; "--seed"; "5"; "--txns"; "15"; "--maint-workers"; "0" ])

let test_serve_maint_workers () =
  let path = Filename.temp_file "serve_mw" ".json" in
  Alcotest.(check int) "serve --maint-workers 2 exits 0" 0
    (run
       [ "serve"; "-s"; "tiny"; "--duration"; "0.2"; "--rate"; "1000";
         "--maint-workers"; "2"; "--seed"; "7"; "--json"; path ]);
  let j = parse_file path in
  Sys.remove path;
  Alcotest.(check string) "schema" "lsm-repro-serve/1" (str "schema" j);
  Alcotest.(check int) "--maint-workers 0 exits 2" 2
    (run [ "serve"; "-s"; "tiny"; "--maint-workers"; "0" ])

let () =
  if not (Sys.file_exists exe) then (
    Printf.eprintf "test_cli: %s not found (run under dune)\n" exe;
    exit 1);
  Alcotest.run "lsm_repro_cli"
    [
      ( "exit codes",
        [
          Alcotest.test_case "unknown subcommand" `Quick test_unknown_subcommand;
          Alcotest.test_case "unknown flag" `Quick test_unknown_flag;
          Alcotest.test_case "missing required arg" `Quick
            test_missing_required_arg;
          Alcotest.test_case "unknown flag on inspect" `Quick
            test_bad_scale_value;
          Alcotest.test_case "list succeeds" `Quick test_list_ok;
          Alcotest.test_case "--help succeeds" `Quick test_help_ok;
        ] );
      ( "json documents",
        [
          Alcotest.test_case "inspect --json schema" `Quick test_inspect_json;
          Alcotest.test_case "explain-json io decomposition" `Quick
            test_explain_json;
        ] );
      ( "serve",
        [
          Alcotest.test_case "serve --json schema" `Quick test_serve_json;
          Alcotest.test_case "serve --sweep knee" `Quick test_serve_sweep_json;
          Alcotest.test_case "serve --timeline schema" `Quick
            test_serve_timeline_json;
          Alcotest.test_case "timeline flag validation" `Quick
            test_serve_timeline_rejects_sweep;
          Alcotest.test_case "bad arrivals flag" `Quick test_serve_bad_arrivals;
          Alcotest.test_case "chaos flag validation" `Quick
            test_serve_chaos_bad_specs;
          Alcotest.test_case "chaos run + document" `Quick
            test_serve_chaos_json;
        ] );
      ( "faultsim",
        [
          Alcotest.test_case "matrix passes" `Quick test_faultsim_ok;
          Alcotest.test_case "single plan repro" `Quick
            test_faultsim_single_plan;
          Alcotest.test_case "unfired plan fails" `Quick
            test_faultsim_unreachable_plan_fails;
          Alcotest.test_case "grouped matrix passes" `Quick
            test_faultsim_grouped_ok;
          Alcotest.test_case "group/maint point repro" `Quick
            test_faultsim_group_point_repro;
          Alcotest.test_case "group points gated by flags" `Quick
            test_faultsim_group_points_need_flags;
          Alcotest.test_case "bad group flags" `Quick
            test_faultsim_bad_group_flags;
          Alcotest.test_case "serve --maint-workers" `Quick
            test_serve_maint_workers;
        ] );
    ]
