(* The installed binary's CLI contract, exercised by shelling out to the
   real executable: usage errors (unknown subcommand, unknown flag,
   missing required argument) exit 2; success exits 0.

   Tests run with the build directory as cwd, so the executable lives at
   ../bin/ relative to us (declared as a dune dep). *)

let exe = "../bin/lsm_repro.exe"

let run args =
  Sys.command
    (Filename.quote_command exe ~stdout:"/dev/null" ~stderr:"/dev/null" args)

let test_unknown_subcommand () =
  Alcotest.(check int) "exit 2" 2 (run [ "definitely-not-a-subcommand" ])

let test_unknown_flag () =
  Alcotest.(check int) "exit 2" 2 (run [ "list"; "--no-such-flag" ])

let test_missing_required_arg () =
  (* `run` requires an experiment id. *)
  Alcotest.(check int) "exit 2" 2 (run [ "run" ])

let test_bad_scale_value () =
  Alcotest.(check int)
    "unknown flag on inspect" 2
    (run [ "inspect"; "--no-such-flag" ])

let test_list_ok () = Alcotest.(check int) "exit 0" 0 (run [ "list" ])

let test_help_ok () = Alcotest.(check int) "exit 0" 0 (run [ "--help" ])

let () =
  if not (Sys.file_exists exe) then (
    Printf.eprintf "test_cli: %s not found (run under dune)\n" exe;
    exit 1);
  Alcotest.run "lsm_repro_cli"
    [
      ( "exit codes",
        [
          Alcotest.test_case "unknown subcommand" `Quick test_unknown_subcommand;
          Alcotest.test_case "unknown flag" `Quick test_unknown_flag;
          Alcotest.test_case "missing required arg" `Quick
            test_missing_required_arg;
          Alcotest.test_case "unknown flag on inspect" `Quick
            test_bad_scale_value;
          Alcotest.test_case "list succeeds" `Quick test_list_ok;
          Alcotest.test_case "--help succeeds" `Quick test_help_ok;
        ] );
    ]
