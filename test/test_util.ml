(* Tests for Lsm_util: RNG, Zipf, search primitives, bitsets, sorter, heap. *)

open Lsm_util

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.bits a) (Rng.bits b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 100 do
    if Rng.bits a = Rng.bits b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 5)

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 13 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 13)
  done

let test_rng_int_in_range () =
  let r = Rng.create 7 in
  let seen = Array.make 5 false in
  for _ = 1 to 1000 do
    let v = Rng.int_in_range r ~lo:10 ~hi:14 in
    Alcotest.(check bool) "in range" true (v >= 10 && v <= 14);
    seen.(v - 10) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_rng_float_range () =
  let r = Rng.create 3 in
  for _ = 1 to 10_000 do
    let f = Rng.float r in
    Alcotest.(check bool) "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_rng_uniformity () =
  (* Chi-square-ish sanity: 10 buckets over 100k draws stay within 5%. *)
  let r = Rng.create 11 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let b = Rng.int r 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iter
    (fun c ->
      let frac = Float.of_int c /. Float.of_int n in
      Alcotest.(check bool) "bucket near 0.1" true (frac > 0.085 && frac < 0.115))
    buckets

let test_rng_shuffle_permutes () =
  let r = Rng.create 5 in
  let a = Array.init 50 Fun.id in
  let b = Array.copy a in
  Rng.shuffle r b;
  let sb = Array.copy b in
  Array.sort compare sb;
  Alcotest.(check bool) "same multiset" true (sb = a);
  Alcotest.(check bool) "actually moved" true (b <> a)

(* ------------------------------------------------------------------ *)
(* Zipf *)

let test_zipf_bounds () =
  let r = Rng.create 9 in
  let z = Zipf.create ~theta:0.99 1000 in
  for _ = 1 to 10_000 do
    let v = Zipf.sample r z in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 1000)
  done

let test_zipf_skew () =
  let r = Rng.create 13 in
  let z = Zipf.create ~theta:0.99 10_000 in
  let hot = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Zipf.sample r z < 100 then incr hot
  done;
  (* Under uniform, 100/10000 = 1% of draws; Zipf 0.99 concentrates far
     more mass on the head. *)
  let frac = Float.of_int !hot /. Float.of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "head heavy (%.3f)" frac)
    true (frac > 0.30)

let test_zipf_extend_matches_fresh () =
  (* Growing 100 -> 1000 must yield the same constants as creating at
     1000 directly; we check behaviour via bounds and head mass. *)
  let z1 = Zipf.create ~theta:0.99 100 in
  Zipf.extend z1 1000;
  let z2 = Zipf.create ~theta:0.99 1000 in
  let r1 = Rng.create 21 and r2 = Rng.create 21 in
  for _ = 1 to 5_000 do
    Alcotest.(check int) "same samples" (Zipf.sample r2 z2) (Zipf.sample r1 z1)
  done

let prop_zipf_extend_exact =
  (* The incremental-zeta invariant, exactly: growing n -> m (possibly in
     several steps) lands on bit-identical zetan/eta — and therefore an
     identical sample stream — as create ~theta m from scratch.  zeta_range
     sums terms in the same order either way, so this is float equality,
     not approximation. *)
  qtest ~count:100 "extend n->m = create m (zetan, eta, samples)"
    QCheck2.Gen.(
      triple
        (triple (int_range 1 500) (int_range 0 500) (int_range 0 500))
        (float_range 0.3 0.99) (int_range 0 1000))
    (fun ((n, g1, g2), theta, seed) ->
      let m1 = n + g1 in
      let m2 = m1 + g2 in
      let grown = Zipf.create ~theta n in
      Zipf.extend grown m1;
      Zipf.extend grown m2;
      let fresh = Zipf.create ~theta m2 in
      Zipf.cardinality grown = Zipf.cardinality fresh
      && Zipf.zetan grown = Zipf.zetan fresh
      && Zipf.eta grown = Zipf.eta fresh
      &&
      let r1 = Rng.create seed and r2 = Rng.create seed in
      let ok = ref true in
      for _ = 1 to 200 do
        if Zipf.sample r1 grown <> Zipf.sample r2 fresh then ok := false
      done;
      !ok)

let test_zipf_latest () =
  let r = Rng.create 17 in
  let z = Zipf.create ~theta:0.99 10_000 in
  let hot = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Zipf.sample_latest r z >= 9_900 then incr hot
  done;
  Alcotest.(check bool) "tail (recent ids) heavy" true
    (Float.of_int !hot /. Float.of_int n > 0.30)

(* ------------------------------------------------------------------ *)
(* Search *)

let sorted_array_gen =
  QCheck2.Gen.(
    map
      (fun l -> Array.of_list (List.sort compare l))
      (list_size (int_range 0 200) (int_range 0 100)))

let check_lower_bound a key =
  let cost = ref 0 in
  let i =
    Search.lower_bound ~cmp:compare ~cost a ~lo:0 ~hi:(Array.length a) key
  in
  let ok_left = Array.for_all (fun _ -> true) a in
  ignore ok_left;
  let ok =
    (i = Array.length a || a.(i) >= key)
    && (i = 0 || a.(i - 1) < key)
  in
  ok

let prop_lower_bound =
  qtest "lower_bound correct"
    QCheck2.Gen.(pair sorted_array_gen (int_range (-10) 110))
    (fun (a, key) -> check_lower_bound a key)

let prop_upper_bound =
  qtest "upper_bound correct"
    QCheck2.Gen.(pair sorted_array_gen (int_range (-10) 110))
    (fun (a, key) ->
      let cost = ref 0 in
      let i =
        Search.upper_bound ~cmp:compare ~cost a ~lo:0 ~hi:(Array.length a) key
      in
      (i = Array.length a || a.(i) > key) && (i = 0 || a.(i - 1) <= key))

let prop_exponential_equals_binary =
  qtest "exponential = binary from any start"
    QCheck2.Gen.(triple sorted_array_gen (int_range (-10) 110) (int_range 0 220))
    (fun (a, key, start) ->
      let n = Array.length a in
      let c1 = ref 0 and c2 = ref 0 in
      let i1 = Search.lower_bound ~cmp:compare ~cost:c1 a ~lo:0 ~hi:n key in
      let i2 =
        Search.exponential_lower_bound ~cmp:compare ~cost:c2 a ~lo:0 ~hi:n
          ~start:(min start n) key
      in
      i1 = i2)

let test_exponential_cheap_nearby () =
  (* Searching a key adjacent to the start position must cost far fewer
     comparisons than a cold binary search on a large array. *)
  let a = Array.init 100_000 (fun i -> i * 2) in
  let c_exp = ref 0 and c_bin = ref 0 in
  let i =
    Search.exponential_lower_bound ~cmp:compare ~cost:c_exp a ~lo:0
      ~hi:(Array.length a) ~start:50_000 (100_006)
  in
  Alcotest.(check int) "found" 50_003 i;
  let j =
    Search.lower_bound ~cmp:compare ~cost:c_bin a ~lo:0 ~hi:(Array.length a)
      100_006
  in
  Alcotest.(check int) "same index" i j;
  Alcotest.(check bool)
    (Printf.sprintf "cheaper (%d < %d)" !c_exp !c_bin)
    true
    (!c_exp < !c_bin)

let test_binary_find () =
  let a = [| 2; 4; 6; 8 |] in
  let cost = ref 0 in
  Alcotest.(check (option int))
    "hit" (Some 2)
    (Search.binary_find ~cmp:compare ~cost a 6);
  Alcotest.(check (option int))
    "miss" None
    (Search.binary_find ~cmp:compare ~cost a 5)

(* Duplicate-heavy arrays (domain 0..20 over up to 200 elements) stress
   the gallop's handling of equal runs, and a raw start in [-3, n+3]
   checks the internal clamping to [lo, hi]. *)
let dup_array_gen =
  QCheck2.Gen.(
    map
      (fun l -> Array.of_list (List.sort compare l))
      (list_size (int_range 0 200) (int_range 0 20)))

let prop_exponential_dups_any_start =
  qtest ~count:500 "exponential = binary (dups, unclamped start)"
    QCheck2.Gen.(
      triple dup_array_gen (int_range (-5) 25) (int_range (-3) 203))
    (fun (a, key, start) ->
      let n = Array.length a in
      let c1 = ref 0 and c2 = ref 0 in
      let i1 = Search.lower_bound ~cmp:compare ~cost:c1 a ~lo:0 ~hi:n key in
      let i2 =
        Search.exponential_lower_bound ~cmp:compare ~cost:c2 a ~lo:0 ~hi:n
          ~start key
      in
      i1 = i2)

let prop_exponential_cost_ceiling =
  (* Bentley-Yao: the gallop probes O(log d) positions (d = distance from
     the clamped start to the answer) and finishes with a binary search
     over a window of at most 2d elements, so total comparisons are
     bounded by c1*log2(d) + c2*log2(n) + c3 for small constants.  The
     ceiling below is deliberately generous — it catches an accidental
     downgrade to linear probing or repeated full binary searches, not
     constant-factor drift. *)
  qtest ~count:500 "exponential comparison ceiling"
    QCheck2.Gen.(
      triple sorted_array_gen (int_range (-10) 110) (int_range (-3) 203))
    (fun (a, key, start) ->
      let n = Array.length a in
      let cost = ref 0 in
      let i =
        Search.exponential_lower_bound ~cmp:compare ~cost a ~lo:0 ~hi:n
          ~start key
      in
      let s = max 0 (min n start) in
      let d = abs (i - s) in
      let log2 x = log (float_of_int (x + 2)) /. log 2.0 in
      let ceiling = (2.0 *. log2 d) +. log2 n +. 6.0 in
      float_of_int !cost <= ceiling)

(* ------------------------------------------------------------------ *)
(* Bitset *)

let test_bitset_basic () =
  let b = Bitset.create 100 in
  Alcotest.(check int) "empty" 0 (Bitset.count b);
  Bitset.set b 0;
  Bitset.set b 63;
  Bitset.set b 99;
  Alcotest.(check bool) "get 0" true (Bitset.get b 0);
  Alcotest.(check bool) "get 1" false (Bitset.get b 1);
  Alcotest.(check bool) "get 99" true (Bitset.get b 99);
  Alcotest.(check int) "count" 3 (Bitset.count b);
  Bitset.clear b 63;
  Alcotest.(check bool) "cleared" false (Bitset.get b 63);
  Alcotest.(check int) "count after clear" 2 (Bitset.count b)

let test_bitset_copy_independent () =
  let b = Bitset.create 10 in
  Bitset.set b 3;
  let c = Bitset.copy b in
  Bitset.set b 5;
  Alcotest.(check bool) "copy has 3" true (Bitset.get c 3);
  Alcotest.(check bool) "copy lacks 5" false (Bitset.get c 5)

let test_bitset_bounds () =
  let b = Bitset.create 8 in
  Alcotest.check_raises "oob" (Invalid_argument "Bitset: index out of bounds")
    (fun () -> Bitset.set b 8)

let test_bitset_iter () =
  let b = Bitset.create 20 in
  List.iter (Bitset.set b) [ 1; 7; 19 ];
  let acc = ref [] in
  Bitset.iter_set b (fun i -> acc := i :: !acc);
  Alcotest.(check (list int)) "iter order" [ 1; 7; 19 ] (List.rev !acc)

let prop_bitset_model =
  qtest "bitset matches boolean-array model"
    QCheck2.Gen.(list_size (int_range 0 300) (pair (int_range 0 63) bool))
    (fun ops ->
      let b = Bitset.create 64 in
      let model = Array.make 64 false in
      List.iter
        (fun (i, set) ->
          if set then (Bitset.set b i; model.(i) <- true)
          else (Bitset.clear b i; model.(i) <- false))
        ops;
      let ok = ref true in
      for i = 0 to 63 do
        if Bitset.get b i <> model.(i) then ok := false
      done;
      !ok && Bitset.count b = Array.fold_left (fun a x -> if x then a + 1 else a) 0 model)

(* ------------------------------------------------------------------ *)
(* Sorter *)

let test_sorter_counts () =
  let cost = ref 0 in
  let a = [| 5; 3; 1; 4; 2 |] in
  Sorter.sort ~cmp:compare ~cost a;
  Alcotest.(check bool) "sorted" true (Sorter.is_sorted ~cmp:compare a);
  Alcotest.(check bool) "counted" true (!cost > 0)

let test_dedup_sorted () =
  let a = [| 1; 1; 2; 3; 3; 3; 4 |] in
  Alcotest.(check (array int))
    "dedup" [| 1; 2; 3; 4 |]
    (Sorter.dedup_sorted ~eq:( = ) a);
  Alcotest.(check (array int)) "empty" [||] (Sorter.dedup_sorted ~eq:( = ) [||])

(* ------------------------------------------------------------------ *)
(* Heap *)

let prop_heap_sorts =
  qtest "heap drains in sorted order"
    QCheck2.Gen.(list_size (int_range 0 300) (int_range (-1000) 1000))
    (fun l ->
      let h = Heap.create compare in
      List.iter (Heap.push h) l;
      let out = ref [] in
      let rec drain () =
        match Heap.pop_opt h with
        | Some x ->
            out := x :: !out;
            drain ()
        | None -> ()
      in
      drain ();
      List.rev !out = List.sort compare l)

let test_heap_interleaved () =
  let h = Heap.create compare in
  Heap.push h 5;
  Heap.push h 1;
  Alcotest.(check (option int)) "peek min" (Some 1) (Heap.peek h);
  Alcotest.(check int) "pop" 1 (Heap.pop h);
  Heap.push h 0;
  Alcotest.(check int) "pop 0" 0 (Heap.pop h);
  Alcotest.(check int) "pop 5" 5 (Heap.pop h);
  Alcotest.(check bool) "empty" true (Heap.is_empty h)

let () =
  Alcotest.run "lsm_util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "int_in_range" `Quick test_rng_int_in_range;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutes;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "bounds" `Quick test_zipf_bounds;
          Alcotest.test_case "skew" `Quick test_zipf_skew;
          Alcotest.test_case "extend = fresh" `Quick test_zipf_extend_matches_fresh;
          prop_zipf_extend_exact;
          Alcotest.test_case "latest skew" `Quick test_zipf_latest;
        ] );
      ( "search",
        [
          prop_lower_bound;
          prop_upper_bound;
          prop_exponential_equals_binary;
          prop_exponential_dups_any_start;
          prop_exponential_cost_ceiling;
          Alcotest.test_case "exponential cheap nearby" `Quick
            test_exponential_cheap_nearby;
          Alcotest.test_case "binary_find" `Quick test_binary_find;
        ] );
      ( "bitset",
        [
          Alcotest.test_case "basic" `Quick test_bitset_basic;
          Alcotest.test_case "copy" `Quick test_bitset_copy_independent;
          Alcotest.test_case "bounds" `Quick test_bitset_bounds;
          Alcotest.test_case "iter_set" `Quick test_bitset_iter;
          prop_bitset_model;
        ] );
      ( "sorter",
        [
          Alcotest.test_case "sort counts" `Quick test_sorter_counts;
          Alcotest.test_case "dedup_sorted" `Quick test_dedup_sorted;
        ] );
      ( "heap",
        [
          prop_heap_sorts;
          Alcotest.test_case "interleaved" `Quick test_heap_interleaved;
        ] );
    ]
