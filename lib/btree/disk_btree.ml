(** Immutable disk-resident B+-trees, the structure inside every LSM disk
    component.

    A tree is bulk-loaded once from a sorted row array and never modified.
    Rows live in leaf pages laid out contiguously in a phantom file
    ({!Lsm_sim.Sfile}); leaf boundaries are computed from serialized row
    sizes against the device page size, so page counts — and therefore all
    I/O costs — reflect real entry sizes.

    Interior levels are represented by the per-leaf fence-key array.
    Searching charges key comparisons for the interior descent but no page
    I/O for interior nodes: they are a fraction of a percent of the data
    and pinned in any real cache.  Interior pages *are* written (and
    charged) at build time.

    Three access paths mirror Sec. 3.2:
    - [find]: stateless root-to-leaf search (the "naive" baseline);
    - [Cursor]: a stateful search cursor that resumes from the last leaf
      and uses exponential search ("sLookup");
    - [Scan]: sequential leaf-order iteration for range scans and merges. *)

module Make (K : Lsm_util.Intf.ORDERED) = struct
  type 'row t = {
    file : Lsm_sim.Sfile.t;
    keys : K.t array;  (** key of each row, ascending (duplicates allowed) *)
    rows : 'row array;
    leaf_starts : int array;  (** leaf [l] holds rows [starts.(l), starts.(l+1)) *)
    fences : K.t array;  (** first key of each leaf *)
    leaf_pages : int;
    interior_pages : int;
  }

  let nrows t = Array.length t.rows
  let is_empty t = Array.length t.rows = 0
  let file t = t.file
  let leaf_pages t = t.leaf_pages
  let interior_pages t = t.interior_pages
  let rows t = t.rows
  let keys t = t.keys

  let min_key t = if is_empty t then None else Some t.keys.(0)
  let max_key t = if is_empty t then None else Some t.keys.(Array.length t.keys - 1)

  (** [size_bytes env t] is the on-disk footprint. *)
  let size_bytes env t = Lsm_sim.Sfile.size_bytes env t.file

  (** [build env ~key_of ~size_of rows] bulk-loads a tree from rows already
      sorted by [key_of] (ascending; verified in debug runs by tests).
      Charges sequential writes for leaf and interior pages. *)
  let build env ~key_of ~size_of rows =
    let n = Array.length rows in
    let page_size = Lsm_sim.Env.page_size env in
    let keys = Array.map key_of rows in
    (* Cut leaves by accumulated serialized size. *)
    let starts = ref [ 0 ] in
    let acc = ref 0 in
    for i = 0 to n - 1 do
      let s = size_of rows.(i) in
      if !acc > 0 && !acc + s > page_size then begin
        starts := i :: !starts;
        acc := s
      end
      else acc := !acc + s
    done;
    let leaf_starts = Array.of_list (List.rev (n :: !starts)) in
    let nleaves = Array.length leaf_starts - 1 in
    let nleaves = if n = 0 then 0 else nleaves in
    let leaf_starts = if n = 0 then [| 0 |] else leaf_starts in
    let fences = Array.init nleaves (fun l -> keys.(leaf_starts.(l))) in
    (* Interior size: one (key, child pointer) pair per leaf, packed. *)
    let interior_bytes =
      Array.fold_left (fun a k -> a + K.byte_size k + 8) 0 fences
    in
    let interior_pages =
      if nleaves <= 1 then 0 else (interior_bytes + page_size - 1) / page_size
    in
    let file = Lsm_sim.Sfile.create env in
    (* If the append dies (retry exhaustion mid-build), delete the file so
       no partially-written component leaks — the supervisor reschedules
       the whole build from its still-intact inputs. *)
    (try Lsm_sim.Sfile.append_pages env file (nleaves + interior_pages)
     with e ->
       Lsm_sim.Sfile.delete env file;
       raise e);
    { file; keys; rows; leaf_starts; fences; leaf_pages = nleaves; interior_pages }

  (** [delete env t] releases the underlying file. *)
  let delete env t = Lsm_sim.Sfile.delete env t.file

  (* Leaf that may contain [key]: the last leaf whose fence is <= key. *)
  let leaf_for env t key =
    let cost = ref 0 in
    let i =
      Lsm_util.Search.upper_bound ~cmp:K.compare ~cost t.fences ~lo:0
        ~hi:(Array.length t.fences) key
    in
    Lsm_sim.Env.charge_comparisons env !cost;
    if i = 0 then 0 else i - 1

  let read_leaf env t l = Lsm_sim.Sfile.read_page env t.file l

  (** [leaf_of_row t i] is the leaf holding row [i] (largest [l] with
      [leaf_starts.(l) <= i]); no I/O charged — callers fetch the leaf
      themselves.  Scans use it to detect leaf crossings; the sorted-view
      layer uses it to charge the same page fetches a scan would. *)
  let leaf_of_row t i =
    let cost = ref 0 in
    let l =
      Lsm_util.Search.upper_bound ~cmp:compare ~cost t.leaf_starts ~lo:0
        ~hi:(Array.length t.leaf_starts) i
    in
    l - 1

  (** [lower_bound_row env t key] is the index of the first row with key >=
      [key] (or [nrows]); charges the interior descent and one leaf read. *)
  let lower_bound_row env t key =
    if is_empty t then 0
    else begin
      let l = leaf_for env t key in
      read_leaf env t l;
      let cost = ref 0 in
      let i =
        Lsm_util.Search.lower_bound ~cmp:K.compare ~cost t.keys
          ~lo:t.leaf_starts.(l) ~hi:t.leaf_starts.(l + 1) key
      in
      Lsm_sim.Env.charge_comparisons env !cost;
      (* The lower bound may equal leaf_starts.(l+1): the first row of the
         next leaf, or nrows when [l] was the last leaf — both correct. *)
      i
    end

  (** [find env t key] is the first row equal to [key] with its row index,
      if any — the stateless ("naive") point lookup. *)
  let find env t key =
    if is_empty t then None
    else begin
      let l = leaf_for env t key in
      read_leaf env t l;
      let cost = ref 0 in
      let i =
        Lsm_util.Search.lower_bound ~cmp:K.compare ~cost t.keys
          ~lo:t.leaf_starts.(l) ~hi:t.leaf_starts.(l + 1) key
      in
      incr cost;
      let res =
        if i < t.leaf_starts.(l + 1) && K.compare t.keys.(i) key = 0 then begin
          Lsm_sim.Env.charge_entry_visits env 1;
          Some (i, t.rows.(i))
        end
        else None
      in
      Lsm_sim.Env.charge_comparisons env !cost;
      res
    end

  (** Stateful search cursors (the "sLookup" optimization, Sec. 3.2): the
      cursor remembers the last leaf and row position; the next search
      gallops from there with exponential search instead of descending from
      the root, so sorted key batches cost O(log gap) per key. *)
  module Cursor = struct
    type 'row cur = { tree : 'row t; mutable leaf : int; mutable pos : int }

    let create tree = { tree; leaf = 0; pos = 0 }

    let find env c key =
      let t = c.tree in
      if is_empty t then None
      else begin
        let cost = ref 0 in
        (* Gallop over fences from the current leaf. *)
        let fhi = Array.length t.fences in
        let fidx =
          Lsm_util.Search.exponential_lower_bound ~cmp:K.compare ~cost t.fences
            ~lo:0 ~hi:fhi ~start:(min c.leaf (fhi - 1)) key
        in
        (* fidx = first fence > or = key; the leaf is the one before unless
           the fence equals the key exactly. *)
        let l =
          if fidx < fhi && (incr cost; K.compare t.fences.(fidx) key = 0) then fidx
          else max 0 (fidx - 1)
        in
        if l <> c.leaf then begin
          (* A backward move means the key batch broke the sorted-access
             assumption the cursor exploits: the search restarted behind
             its remembered position. *)
          if l < c.leaf then begin
            let st = Lsm_sim.Env.stats env in
            st.Lsm_sim.Io_stats.cursor_restarts <-
              st.Lsm_sim.Io_stats.cursor_restarts + 1
          end;
          c.pos <- t.leaf_starts.(l)
        end;
        c.leaf <- l;
        read_leaf env t l;
        let i =
          Lsm_util.Search.exponential_lower_bound ~cmp:K.compare ~cost t.keys
            ~lo:t.leaf_starts.(l) ~hi:t.leaf_starts.(l + 1)
            ~start:(max c.pos t.leaf_starts.(l)) key
        in
        c.pos <- i;
        incr cost;
        let res =
          if i < t.leaf_starts.(l + 1) && K.compare t.keys.(i) key = 0 then begin
            Lsm_sim.Env.charge_entry_visits env 1;
            Some (i, t.rows.(i))
          end
          else None
        in
        Lsm_sim.Env.charge_comparisons env !cost;
        res
      end
  end

  (** Sequential scans in leaf order.  Scans prefetch
      [Env.read_ahead_pages] leaves per device request (the paper's 4MB
      read-ahead), so interleaving many scan streams — reconciling scans
      open one per component — does not degrade to a seek per page.  Each
      returned row is charged one entry visit. *)
  module Scan = struct
    type 'row s = {
      tree : 'row t;
      mutable i : int;  (** next row index *)
      mutable leaf : int;  (** leaf of [i], fetched already *)
      mutable prefetched_until : int;  (** last leaf in the RA window *)
    }

    (* Fetch leaf [l]: free if inside the current read-ahead window,
       otherwise issue a read of the next window. *)
    let fetch_leaf env s l =
      if l <= s.prefetched_until then Lsm_sim.Env.charge_page_hit env
      else begin
        let t = s.tree in
        let last = min (t.leaf_pages - 1) (l + Lsm_sim.Env.read_ahead_pages env - 1) in
        Lsm_sim.Sfile.read_range env t.file ~first:l ~count:(last - l + 1);
        s.prefetched_until <- last
      end

    (** [seek env t key] positions at the first row with key >= [key]
        ([None] = start of tree). *)
    let seek env t key =
      if is_empty t then { tree = t; i = 0; leaf = -1; prefetched_until = -1 }
      else
        match key with
        | None ->
            let s = { tree = t; i = 0; leaf = 0; prefetched_until = -1 } in
            fetch_leaf env s 0;
            s
        | Some k ->
            let i = lower_bound_row env t k in
            if i >= nrows t then
              { tree = t; i; leaf = -1; prefetched_until = -1 }
            else begin
              let l = leaf_of_row t i in
              let s = { tree = t; i; leaf = l; prefetched_until = -1 } in
              fetch_leaf env s l;
              s
            end

    let has_next s = s.i < nrows s.tree

    (** [peek_key s] is the key of the next row without consuming it. *)
    let peek_key s = if has_next s then Some s.tree.keys.(s.i) else None

    (** [next env s] consumes and returns the next row (index and row). *)
    let next env s =
      if not (has_next s) then None
      else begin
        let t = s.tree in
        let i = s.i in
        if s.leaf < 0 || i >= t.leaf_starts.(s.leaf + 1) then begin
          let l = leaf_of_row t i in
          fetch_leaf env s l;
          s.leaf <- l
        end;
        Lsm_sim.Env.charge_entry_visits env 1;
        s.i <- i + 1;
        Some (i, t.rows.(i))
      end
  end
end
