(** Immutable disk-resident B+-trees — the structure inside every LSM disk
    component.  Bulk-loaded once from a key-sorted row array; leaf pages
    live in a phantom file so page counts and I/O costs reflect real entry
    sizes.  Interior levels are fence-key arrays: their descent charges
    comparisons but no page I/O (they are a fraction of a percent of the
    data and pinned in any real cache); interior pages are written — and
    charged — at build time.

    Three access paths mirror Sec. 3.2: {!val-find} (stateless, the
    "naive" baseline), {!Cursor} (stateful, resuming from the last leaf
    with exponential search — "sLookup"), and {!Scan} (sequential
    read-ahead iteration for range scans and merges). *)

module Make (K : Lsm_util.Intf.ORDERED) : sig
  type 'row t

  val build :
    Lsm_sim.Env.t ->
    key_of:('row -> K.t) ->
    size_of:('row -> int) ->
    'row array ->
    'row t
  (** Bulk-load from rows sorted ascending by [key_of] (duplicates
      allowed); charges sequential writes for leaf and interior pages. *)

  val delete : Lsm_sim.Env.t -> 'row t -> unit
  (** Release the underlying file. *)

  val nrows : 'row t -> int
  val is_empty : 'row t -> bool
  val file : 'row t -> Lsm_sim.Sfile.t
  val leaf_pages : 'row t -> int
  val interior_pages : 'row t -> int

  val rows : 'row t -> 'row array
  (** The raw sorted rows (no I/O charged; callers walking them outside a
      scan must charge explicitly). *)

  val keys : 'row t -> K.t array
  val min_key : 'row t -> K.t option
  val max_key : 'row t -> K.t option
  val size_bytes : Lsm_sim.Env.t -> 'row t -> int

  val lower_bound_row : Lsm_sim.Env.t -> 'row t -> K.t -> int
  (** Index of the first row with key >= the bound (or [nrows]); charges
      the interior descent and one leaf read. *)

  val leaf_of_row : 'row t -> int -> int
  (** Leaf index holding a row (no I/O charged; callers fetch the leaf
      themselves).  Lets the sorted-view layer charge exactly the page
      fetches a sequential scan of the same rows would. *)

  val find : Lsm_sim.Env.t -> 'row t -> K.t -> (int * 'row) option
  (** Stateless point lookup: first row equal to the key, with its index. *)

  (** Stateful search cursors ("sLookup"): remember the last leaf and row
      position and gallop from there, so sorted key batches cost
      O(log gap) per key. *)
  module Cursor : sig
    type 'row cur

    val create : 'row t -> 'row cur
    val find : Lsm_sim.Env.t -> 'row cur -> K.t -> (int * 'row) option
  end

  (** Sequential scans in leaf order, prefetching
      [Env.read_ahead_pages] leaves per device request (the paper's 4MB
      read-ahead), so many interleaved scan streams do not degrade to a
      seek per page. *)
  module Scan : sig
    type 'row s

    val seek : Lsm_sim.Env.t -> 'row t -> K.t option -> 'row s
    (** Position at the first row with key >= the bound ([None] = start). *)

    val has_next : 'row s -> bool
    val peek_key : 'row s -> K.t option

    val next : Lsm_sim.Env.t -> 'row s -> (int * 'row) option
    (** Consume the next row (index and row), charging page fetches as
        leaves are entered and one entry visit per row. *)
  end
end
