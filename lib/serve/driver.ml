(** The open-loop serving driver: arrival-driven traffic against an
    N-partition cluster on the simulated clock.

    Partitions are modelled as parallel single-server queues (each env
    has its own device, cache, and clock — Sec. 2.2's shared-nothing
    nodes).  A request arriving at [a] starts at
    [max a (free over the partitions it involves)], runs for the max of
    its per-partition service times, and pushes each involved
    partition's [free] horizon by that partition's own share.  Queueing
    delay is [start - a]; when the offered rate exceeds capacity the
    [free] horizons run away from the arrival clock and queueing delay
    grows without bound — the saturation knee the load sweep exists to
    find. *)

module Tweet = Lsm_workload.Tweet
module Query_gen = Lsm_workload.Query_gen
module Scale = Lsm_harness.Scale
module Strategy = Lsm_core.Strategy
module Rt = Router.Make (Tweet.Record)
module P = Rt.P
module Timeseries = Lsm_obs.Timeseries

type op_class = Ingest | Point | Multi | Secondary | Scan

let class_name = function
  | Ingest -> "ingest"
  | Point -> "point"
  | Multi -> "multi"
  | Secondary -> "secondary"
  | Scan -> "scan"

let all_classes = [ Ingest; Point; Multi; Secondary; Scan ]

type mix = {
  ingest : float;
  point : float;
  multi : float;  (** batched multi-gets (partition fan-out) *)
  secondary : float;
  scan : float;  (** relative weights; need not sum to 1 *)
}

(** Write-heavy social-feed mix: mostly ingest and point reads, a tail
    of secondary-range and recent-time-range queries. *)
let default_mix =
  { ingest = 0.5; point = 0.4; multi = 0.0; secondary = 0.07; scan = 0.03 }

(** Chaos-drill mix: shifts a slice of the point reads into multi-gets
    so partial fan-out responses are exercised alongside the
    single-partition paths. *)
let chaos_mix =
  { ingest = 0.5; point = 0.35; multi = 0.05; secondary = 0.07; scan = 0.03 }

type config = {
  scale : Scale.t;
  partitions : int;
  rate_rps : float;
      (** offered arrival rate; [<= 0] means auto (70% of estimated
          capacity) *)
  duration_s : float;  (** simulated seconds of open-loop traffic *)
  arrivals : Arrivals.kind;
  mix : mix;
  theta : float;  (** Zipf skew of the user/key population *)
  users : int;  (** key-population size the Zipf head draws from *)
  preload : int;  (** records ingested (closed-loop) before traffic *)
  budget_bytes : int;  (** the single global memory budget *)
  selectivity : float;  (** secondary-range selectivity *)
  strategy : Strategy.t;
  maint_workers : int;
      (** modeled maintenance workers per partition; > 1 overlaps
          independent merges (Sec. 2.3) *)
  mem_shards : int;
      (** memory shards per tree; > 1 lets the budget evict one full
          shard at a time instead of whole partition memtables *)
  seed : int;
  chaos : Chaos.fault list;  (** scheduled fault plan; [[]] = clean run *)
  policy : Chaos.policy;  (** front-door degradation policy (chaos runs) *)
}

let config ?(partitions = 4) scale =
  {
    scale;
    partitions;
    rate_rps = 0.0;
    duration_s = Scale.serve_duration_s scale;
    arrivals = `Poisson;
    mix = default_mix;
    theta = 0.99;
    users = Scale.serve_users scale;
    preload = Scale.serve_preload scale;
    budget_bytes = Scale.serve_budget_bytes scale ~partitions;
    selectivity = 0.001;
    strategy = Strategy.validation;
    maint_workers = 1;
    mem_shards = 1;
    seed = 42;
    chaos = [];
    policy = Chaos.default_policy;
  }

(* ------------------------------------------------------------------ *)
(* System construction *)

type system = {
  rt : Rt.t;
  gen : Tweet.gen;
  qgen : Query_gen.t;
  zipf : Lsm_util.Zipf.t;
  rng : Lsm_util.Rng.t;
  sec_mode : P.D.validation_mode;
  mutable now_created : int;  (** newest creation time generated so far *)
}

let build ?(durable = false) cfg =
  if cfg.partitions < 1 then invalid_arg "Driver: partitions >= 1";
  let cache_bytes =
    max (256 * 1024) (Scale.cache_bytes cfg.scale / cfg.partitions)
  in
  let mk_env _ =
    Lsm_harness.Obs_hub.attach
      (Lsm_sim.Env.create ~cache_bytes Scale.hdd_device)
  in
  let dcfg =
    {
      P.D.strategy = cfg.strategy;
      (* Per-dataset budget is not enforced (auto-maintenance is off);
         it still sizes the repair sort grant, so give each partition
         its fair share of the global budget. *)
      mem_budget = max 1 (cfg.budget_bytes / cfg.partitions);
      merge_policy =
        Lsm_tree.Merge_policy.tiering ~size_ratio:1.2
          ~max_mergeable_bytes:(Scale.max_mergeable_bytes cfg.scale) ();
      use_pk_index = true;
      bloom = Some { Lsm_tree.Config.kind = `Standard; fpr = 0.01 };
      maint_workers = max 1 cfg.maint_workers;
      mem_shards = max 1 cfg.mem_shards;
    }
  in
  let rt =
    Rt.create ~filter_key:Tweet.created_at
      ~secondaries:(Lsm_harness.Setup.secondary_specs 1)
      ~durable ~mk_env ~partitions:cfg.partitions
      ~budget_bytes:cfg.budget_bytes dcfg
  in
  {
    rt;
    gen = Tweet.create_gen ~seed:(cfg.seed * 31 + 1) ();
    qgen = Query_gen.create ~seed:(cfg.seed * 17 + 3) ();
    zipf = Lsm_util.Zipf.create ~theta:cfg.theta cfg.users;
    rng = Lsm_util.Rng.create cfg.seed;
    sec_mode =
      (match cfg.strategy with
      | Strategy.Eager -> `Assume_valid
      | _ -> `Timestamp);
    now_created = 0;
  }

(* Preload: ids [0, preload) exist before traffic starts — and since
   Zipf item 0 is the most popular, the hot head of the population is
   warm.  Closed-loop, under the global budget coordinator. *)
let preload ?(f = fun (_ : Tweet.t) -> ()) sys cfg =
  for id = 0 to cfg.preload - 1 do
    let tw = Tweet.with_id sys.gen id in
    if tw.Tweet.created_at > sys.now_created then
      sys.now_created <- tw.Tweet.created_at;
    ignore (Rt.exec sys.rt (Rt.Upsert tw));
    f tw
  done

(* One request drawn from the mix; the Zipf population covers ids the
   preload never wrote, so point queries miss realistically and ingests
   both update hot keys and create cold ones. *)
let gen_request sys cfg =
  let m = cfg.mix in
  let total = m.ingest +. m.point +. m.multi +. m.secondary +. m.scan in
  let u = Lsm_util.Rng.float sys.rng *. total in
  if u < m.ingest then begin
    let id = Lsm_util.Zipf.sample sys.rng sys.zipf in
    let tw = Tweet.with_id sys.gen id in
    if tw.Tweet.created_at > sys.now_created then
      sys.now_created <- tw.Tweet.created_at;
    (Ingest, Rt.Upsert tw)
  end
  else if u < m.ingest +. m.point then
    (Point, Rt.Point (Lsm_util.Zipf.sample sys.rng sys.zipf))
  else if u < m.ingest +. m.point +. m.multi then begin
    (* Up to 8 hot keys; Zipf duplicates collapse, so heavy skew shrinks
       the batch the way a feed hydration of mostly-famous ids would. *)
    let seen = Hashtbl.create 8 in
    let ks =
      Array.init 8 (fun _ -> Lsm_util.Zipf.sample sys.rng sys.zipf)
      |> Array.to_list
      |> List.filter (fun k ->
             if Hashtbl.mem seen k then false
             else begin
               Hashtbl.add seen k ();
               true
             end)
    in
    (Multi, Rt.Multi_get (Array.of_list ks))
  end
  else if u < m.ingest +. m.point +. m.multi +. m.secondary then begin
    let lo, hi = Query_gen.user_range sys.qgen ~selectivity:cfg.selectivity in
    (Secondary, Rt.Secondary { sec = "user_id"; lo; hi; mode = sys.sec_mode })
  end
  else begin
    let tlo, thi =
      Query_gen.recent_time_range ~now:(max 1 sys.now_created) ~days:1
        ~day_span:30
    in
    (Scan, Rt.Time_range { tlo; thi })
  end

(* ------------------------------------------------------------------ *)
(* Capacity estimation *)

(** [estimate_capacity cfg] runs a short closed-loop probe on a fresh
    system and reports the aggregate rate (requests per simulated
    second) at which the busiest partition saturates — the open-loop
    sweeps anchor their rate ladders to this. *)
let estimate_capacity ?(ops = 1500) ?(durable = false) (cfg : config) =
  let sys = build ~durable cfg in
  preload sys cfg;
  let busy = Array.make cfg.partitions 0.0 in
  for _ = 1 to ops do
    let _, req = gen_request sys cfg in
    let o = Rt.exec sys.rt req in
    Array.iteri (fun i d -> busy.(i) <- busy.(i) +. d) o.Rt.service_us
  done;
  let bottleneck = Array.fold_left Float.max 0.0 busy in
  if bottleneck <= 0.0 then 0.0 else Float.of_int ops *. 1e6 /. bottleneck

(* ------------------------------------------------------------------ *)
(* The open-loop run *)

type class_stats = {
  cls : string;
  count : int;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  mean_queue_us : float;
  mean_service_us : float;
}

(** Per-partition engine resilience counters ([resilience.*] in
    reports): how much retry/degradation machinery the run exercised.
    All zero in clean runs. *)
type part_resil = {
  pr_part : int;
  pr_retries : int;  (** transient faults absorbed by backoff *)
  pr_exhausted : int;  (** retry budgets exhausted *)
  pr_checksum : int;  (** corrupt pages detected at read *)
  pr_quarantines : int;  (** components quarantined *)
  pr_rebuilds : int;  (** components rebuilt or scrubbed by heal *)
}

type result = {
  r_cfg : config;
  rate_rps : float;  (** the rate actually offered *)
  capacity_rps : float;  (** estimate, when one was made (else 0) *)
  requests : int;
  classes : class_stats list;  (** one per op class, plus ["all"] *)
  backlog_frac : float;
      (** unfinished work at the horizon, as a fraction of the run:
          [(max free - horizon) / horizon], clamped at 0 *)
  queue_growth : float;
      (** mean queueing delay, second half over first half of the run —
          ~1 below saturation, grows without bound above it *)
  saturated : bool;
  budget_bytes : int;
  peak_mem_bytes : int;  (** aggregate memtable peak after enforcement *)
  peak_pre_mem_bytes : int;  (** peak overshoot before enforcement *)
  evictions : int;  (** coordinator-initiated flushes *)
  resil : part_resil list;  (** one entry per partition *)
}

type sample = {
  s_cls : op_class;
  arrival_us : float;
  queue_us : float;
  service_us : float;
}

let mean = function
  | [] -> 0.0
  | l -> List.fold_left ( +. ) 0.0 l /. Float.of_int (List.length l)

let stats_of name samples =
  let lat =
    Array.of_list (List.map (fun s -> s.queue_us +. s.service_us) samples)
  in
  let pct p = if Array.length lat = 0 then 0.0 else Lsm_obs.Stats.percentile lat p in
  {
    cls = name;
    count = List.length samples;
    p50_us = pct 50.0;
    p95_us = pct 95.0;
    p99_us = pct 99.0;
    mean_queue_us = mean (List.map (fun s -> s.queue_us) samples);
    mean_service_us = mean (List.map (fun s -> s.service_us) samples);
  }

let collect_resil sys partitions =
  List.init partitions (fun i ->
      let s = Lsm_sim.Env.resil (P.env (Rt.partitioned sys.rt) i) in
      {
        pr_part = i;
        pr_retries = s.Lsm_sim.Env.retries;
        pr_exhausted = s.Lsm_sim.Env.exhausted;
        pr_checksum = s.Lsm_sim.Env.checksum_failures;
        pr_quarantines = s.Lsm_sim.Env.quarantines;
        pr_rebuilds = s.Lsm_sim.Env.rebuilds;
      })

(* Maintenance span names worth a flight-recorder entry: the budget
   eviction itself is recorded by the router; these are the engine-level
   spans it decomposes into (plus view rebuilds, which also steal
   partition time from foreground requests). *)
let maintenance_spans =
  [
    "dataset.flush";
    "dataset.merge";
    "lsm.flush";
    "lsm.merge";
    "lsm.view.build";
    "maint.job";
  ]

(** [run ?timeline cfg] executes one open-loop run.  With
    [cfg.rate_rps <= 0] the rate is set to 70% of a fresh capacity
    estimate.  Deterministic for a fixed seed.

    When [timeline] is given, every completion feeds it: per-class
    latency histograms stamped at the request's *completion* on the
    arrival timeline, per-partition busy time / backlog / memtable
    gauges, budget-eviction counters, and flight-recorder events for
    evictions and the maintenance spans inside them.  All
    instrumentation is read-only against the simulated clocks, so a
    run's result is identical with the timeline on or off. *)
let run ?timeline (cfg : config) =
  let capacity_rps, cfg =
    if cfg.rate_rps > 0.0 then (0.0, cfg)
    else begin
      let cap = estimate_capacity cfg in
      if cap <= 0.0 then invalid_arg "Driver.run: capacity estimate is zero";
      (cap, { cfg with rate_rps = 0.7 *. cap })
    end
  in
  let sys = build cfg in
  preload sys cfg;
  (* Timeline plumbing.  Partition clocks are independent of the arrival
     timeline, and a request's start is only known *after* execution
     (the free-horizon start depends on which partitions it involved) —
     so span hooks buffer maintenance spans during execution, and the
     per-partition clock snapshots in [c0] translate them afterwards:
     run_ts = start + (span_start − c0).  Hooks go in after the preload;
     preload maintenance happens before the timeline's time zero. *)
  let c0 = Array.make cfg.partitions 0.0 in
  let spanbuf = ref [] in
  (match timeline with
  | None -> ()
  | Some _ ->
      for i = 0 to cfg.partitions - 1 do
        Lsm_sim.Env.set_span_hook
          (P.env (Rt.partitioned sys.rt) i)
          (fun sp ->
            if List.mem sp.Lsm_sim.Env.sp_name maintenance_spans then
              spanbuf := (i, sp) :: !spanbuf)
      done);
  let arr =
    Arrivals.create ~seed:((cfg.seed * 131) + 7) ~rate_rps:cfg.rate_rps
      cfg.arrivals
  in
  let horizon_us = cfg.duration_s *. 1e6 in
  let free = Array.make cfg.partitions 0.0 in
  let samples = ref [] in
  let n_req = ref 0 in
  let rec loop a =
    if a <= horizon_us then begin
      let s_cls, req = gen_request sys cfg in
      (match timeline with
      | None -> ()
      | Some _ ->
          spanbuf := [];
          for i = 0 to cfg.partitions - 1 do
            c0.(i) <- Lsm_sim.Env.now_us (P.env (Rt.partitioned sys.rt) i)
          done);
      let o = Rt.exec sys.rt req in
      (* Involved = structurally touched plus any partition whose clock
         moved (a budget-triggered flush on another partition lands
         there and delays only requests routed to it). *)
      let involved = ref o.Rt.touched in
      Array.iteri
        (fun i d -> if d > 0.0 && not (List.mem i !involved) then involved := i :: !involved)
        o.Rt.service_us;
      let start = List.fold_left (fun acc i -> Float.max acc free.(i)) a !involved in
      let service_us =
        List.fold_left (fun acc i -> Float.max acc o.Rt.service_us.(i)) 0.0 !involved
      in
      List.iter (fun i -> free.(i) <- start +. o.Rt.service_us.(i)) !involved;
      (match timeline with
      | None -> ()
      | Some ts ->
          let done_us = start +. service_us in
          let lat = (start -. a) +. service_us in
          Timeseries.observe ts ~at_us:done_us (class_name s_cls) lat;
          Timeseries.observe ts ~at_us:done_us "all" lat;
          Timeseries.set_max ts ~at_us:done_us "queue_us" (start -. a);
          List.iter
            (fun i ->
              Timeseries.add ts ~at_us:done_us
                (Printf.sprintf "p%d.busy_us" i)
                o.Rt.service_us.(i);
              Timeseries.set_last ts ~at_us:done_us
                (Printf.sprintf "p%d.backlog_us" i)
                (Float.max 0.0 (free.(i) -. a));
              Timeseries.set_last ts ~at_us:done_us
                (Printf.sprintf "p%d.mem_bytes" i)
                (Float.of_int (P.mem_bytes_of (Rt.partitioned sys.rt) i)))
            !involved;
          Timeseries.set_last ts ~at_us:done_us "mem_bytes"
            (Float.of_int (P.total_mem_bytes (Rt.partitioned sys.rt)));
          List.iter
            (fun (ev : Rt.eviction) ->
              let ev_ts = start +. ev.Rt.ev_start_off_us in
              Timeseries.count ts ~at_us:ev_ts "evictions" 1;
              Timeseries.count ts ~at_us:ev_ts "flushes" ev.Rt.ev_flushes;
              Timeseries.count ts ~at_us:ev_ts "merges" ev.Rt.ev_merges;
              Timeseries.add ts ~at_us:ev_ts "evicted_bytes"
                (Float.of_int ev.Rt.ev_bytes);
              Timeseries.event ts ~start_us:ev_ts ~dur_us:ev.Rt.ev_dur_us
                ~kind:"eviction" ~part:ev.Rt.ev_part
                [
                  ("bytes", ev.Rt.ev_bytes);
                  ("flushes", ev.Rt.ev_flushes);
                  ("merges", ev.Rt.ev_merges);
                  ("merge_bytes", ev.Rt.ev_merge_bytes);
                ])
            o.Rt.evictions;
          List.iter
            (fun (i, (sp : Lsm_sim.Env.span_event)) ->
              Timeseries.event ts
                ~start_us:(start +. (sp.Lsm_sim.Env.sp_start_us -. c0.(i)))
                ~dur_us:sp.Lsm_sim.Env.sp_dur_us ~kind:sp.Lsm_sim.Env.sp_name
                ~part:i [])
            (List.rev !spanbuf));
      samples := { s_cls; arrival_us = a; queue_us = start -. a; service_us } :: !samples;
      incr n_req;
      loop (Arrivals.next arr)
    end
  in
  loop (Arrivals.next arr);
  (match timeline with
  | None -> ()
  | Some _ ->
      for i = 0 to cfg.partitions - 1 do
        Lsm_sim.Env.clear_span_hook (P.env (Rt.partitioned sys.rt) i)
      done);
  let samples = List.rev !samples in
  let classes =
    List.map
      (fun c ->
        stats_of (class_name c) (List.filter (fun s -> s.s_cls = c) samples))
      all_classes
    @ [ stats_of "all" samples ]
  in
  let backlog =
    Array.fold_left (fun acc f -> Float.max acc (f -. horizon_us)) 0.0 free
  in
  let backlog_frac = if horizon_us > 0.0 then backlog /. horizon_us else 0.0 in
  let half = horizon_us /. 2.0 in
  let q1 =
    mean
      (List.filter_map
         (fun s -> if s.arrival_us < half then Some s.queue_us else None)
         samples)
  in
  let q2 =
    mean
      (List.filter_map
         (fun s -> if s.arrival_us >= half then Some s.queue_us else None)
         samples)
  in
  let queue_growth = (q2 +. 1.0) /. (q1 +. 1.0) in
  let b = Rt.budget sys.rt in
  {
    r_cfg = cfg;
    rate_rps = cfg.rate_rps;
    capacity_rps;
    requests = !n_req;
    classes;
    backlog_frac;
    queue_growth;
    saturated = backlog_frac > 0.05;
    budget_bytes = Budget.budget_bytes b;
    peak_mem_bytes = Budget.peak_bytes b;
    peak_pre_mem_bytes = Budget.peak_pre_bytes b;
    evictions = Budget.evictions b;
    resil = collect_resil sys cfg.partitions;
  }

(* ------------------------------------------------------------------ *)
(* Load sweep *)

type sweep_result = {
  sw_capacity_rps : float;
  points : result list;  (** one run per rung of the rate ladder *)
  knee_rps : float option;
      (** highest offered rate that did not saturate; [None] when every
          rung saturated *)
}

(** [sweep cfg] anchors a rate ladder to a capacity estimate, runs each
    rung on a fresh system (same seed), and reports the knee: the
    highest rate whose run stayed below saturation.  The default ladder
    straddles the estimate so the knee is demonstrated from both
    sides. *)
let sweep ?(fractions = [ 0.3; 0.6; 0.85; 1.1; 1.5 ]) (cfg : config) =
  let cap = estimate_capacity cfg in
  if cap <= 0.0 then invalid_arg "Driver.sweep: capacity estimate is zero";
  let points =
    List.map (fun f -> run { cfg with rate_rps = f *. cap }) fractions
  in
  let knee_rps =
    List.fold_left
      (fun acc r ->
        if r.saturated then acc
        else
          match acc with
          | Some best when best >= r.rate_rps -> acc
          | _ -> Some r.rate_rps)
      None points
  in
  { sw_capacity_rps = cap; points; knee_rps }

(* ------------------------------------------------------------------ *)
(* Chaos runs: scheduled partition faults under open-loop load *)

(** What the front door told the client — one event per arrival, in
    arrival order.  A model-based checker ({!Chaos_checker}) replays the
    acknowledged writes and audits every non-errored answer against the
    fault-free semantics. *)
type chaos_obs =
  | O_ack of Rt.request  (** acknowledged (durable) write *)
  | O_reject_dup  (** insert hit the uniqueness check; no state change *)
  | O_point of int * Tweet.t option
  | O_multi of { got : (int * Tweet.t option) list; err_parts : int list }
      (** answered slots, plus partitions whose slots errored *)
  | O_secondary of {
      lo : int;
      hi : int;
      rows : Tweet.t list;
      err_parts : int list;
    }
  | O_scan of {
      tlo : int;
      thi : int;
      counts : (int * int) list;  (** (partition, rows) for answered slots *)
      err_parts : int list;
    }
  | O_error of string  (** whole-request failure, by reason *)
  | O_shed  (** admission control turned the request away *)

let phases = [ "healthy"; "degraded"; "recovering" ]

type chaos_result = {
  c_base : result;
      (** [requests] counts every arrival; latency classes cover
          successful requests only *)
  c_policy : Chaos.policy;
  c_faults : string list;  (** the plan, as {!Chaos.describe} lines *)
  successes : int;
  partials : int;  (** successes with at least one errored partition slot *)
  failures : int;
  shed : int;
  fail_reasons : (string * int) list;
  availability : float;  (** successes / arrivals *)
  shed_rate : float;
  phase_counts : (string * int) list;  (** arrivals per phase *)
  phase_classes : (string * class_stats list) list;
      (** per-phase SLO tables over successful requests *)
  breaker_opens : int;
  breaker_transitions : int;
  down_us : float;  (** total crash-induced partition unavailability *)
  evictions_by : int list;  (** coordinator evictions per partition *)
}

(* Per-partition fault-hook state, interpreted by one installed hook.
   Only [io.*] announcement points participate: those run under the
   engine's retry/backoff layer, whereas raising a raw injected fault on
   a WAL or commit fault point would bypass it. *)
type hook_st = {
  mutable io_on : bool;
  mutable io_fails : int;
  mutable io_cycle : int;
  mutable io_count : int;
  mutable corrupt_armed : bool;
  mutable corrupt_hit : bool;
}

(* A scheduled fault's runtime state. *)
type fault_rt = {
  f : Chaos.fault;
  mutable fired : bool;
  mutable ends_at : float;  (** active window end; 0 otherwise *)
  mutable healed : bool;  (** corruption repaired (Corrupt only) *)
}

(** [run_chaos ?timeline ?observe ?probe cfg] executes one open-loop run
    against a *durable* cluster (every partition behind a serial-WAL
    transactional wrapper, so acknowledged means durable) while
    interpreting [cfg.chaos] on the arrival clock and degrading
    gracefully per [cfg.policy]:

    - a crashed partition loses its memory state and replays the WAL
      from the durable frontier while the rest of the fleet keeps
      serving; requests that need it fast-fail as ["down"];
    - fan-out reads answer partially: healthy partitions' slots are
      returned, errored partitions are reported in the reply;
    - per-partition circuit breakers shed work from erroring partitions
      and probe them back to health (["breaker"] failures);
    - reads carry a deadline (fail-fast when queueing alone exceeds it),
      a bounded retry budget, and one hedged re-attempt;
    - admission control sheds requests (typed {!Chaos.Overloaded}) when
      every needed partition is over the backlog cap — counted, never
      silently dropped.

    [on_preload] sees each record ingested before traffic starts (so a
    checker can seed its model); [observe] sees one {!chaos_obs} per
    arrival; [probe] runs after the horizon with direct point-query
    access for durability audits.  Deterministic for a fixed seed,
    timeline on or off. *)
let run_chaos ?timeline ?(on_preload = fun (_ : Tweet.t) -> ())
    ?(observe = fun (_ : chaos_obs) -> ())
    ?(probe = fun (_ : int -> Tweet.t option) -> ()) (cfg : config) =
  (match cfg.strategy with
  | Strategy.Eager ->
      invalid_arg
        "Driver.run_chaos: chaos runs need the WAL wrapper; Eager is \
         unsupported"
  | _ -> ());
  let n = cfg.partitions in
  List.iter
    (fun (f : Chaos.fault) ->
      if f.Chaos.part < 0 || f.Chaos.part >= n then
        invalid_arg
          (Printf.sprintf
             "Driver.run_chaos: fault %s targets p%d but there are only %d \
              partitions"
             (Chaos.describe f) f.Chaos.part n))
    cfg.chaos;
  let capacity_rps, cfg =
    if cfg.rate_rps > 0.0 then (0.0, cfg)
    else begin
      let cap = estimate_capacity ~durable:true cfg in
      if cap <= 0.0 then
        invalid_arg "Driver.run_chaos: capacity estimate is zero";
      (cap, { cfg with rate_rps = 0.7 *. cap })
    end
  in
  let policy = cfg.policy in
  let deadline_us = policy.Chaos.deadline_us in
  let hedge_us = Chaos.hedge_trigger_us policy in
  let sys = build ~durable:true cfg in
  preload ~f:on_preload sys cfg;
  let rt = sys.rt in
  let pt = Rt.partitioned rt in
  let envof i = P.env pt i in
  (* Timeline span plumbing, as in [run]. *)
  let c0 = Array.make n 0.0 in
  let spanbuf = ref [] in
  (match timeline with
  | None -> ()
  | Some _ ->
      for i = 0 to n - 1 do
        Lsm_sim.Env.set_span_hook (envof i) (fun sp ->
            if List.mem sp.Lsm_sim.Env.sp_name maintenance_spans then
              spanbuf := (i, sp) :: !spanbuf)
      done);
  let hooks =
    Array.init n (fun _ ->
        {
          io_on = false;
          io_fails = 0;
          io_cycle = 0;
          io_count = 0;
          corrupt_armed = false;
          corrupt_hit = false;
        })
  in
  for i = 0 to n - 1 do
    let st = hooks.(i) in
    Lsm_sim.Env.set_fault_hook (envof i) (fun point ->
        if
          String.length point >= 3 && String.equal (String.sub point 0 3) "io."
        then begin
          if st.corrupt_armed && String.equal point "io.write" then begin
            st.corrupt_armed <- false;
            st.corrupt_hit <- true;
            raise
              (Lsm_sim.Env.Injected_fault
                 { kind = Lsm_sim.Env.Corrupt; point; hit = 1 })
          end;
          if st.io_on then begin
            let k = st.io_count in
            st.io_count <- k + 1;
            if k mod st.io_cycle < st.io_fails then
              raise
                (Lsm_sim.Env.Injected_fault
                   { kind = Lsm_sim.Env.Io_error; point; hit = k + 1 })
          end
        end)
  done;
  let frts =
    List.map
      (fun f -> { f; fired = false; ends_at = 0.0; healed = false })
      cfg.chaos
  in
  let free = Array.make n 0.0 in
  let down_until = Array.make n 0.0 in
  let degraded_until = Array.make n 0.0 in
  let recovering_until = Array.make n 0.0 in
  let breakers = Array.init n (fun _ -> Chaos.Breaker.create ()) in
  let drained = Array.make n 0 in
  let breaker_events = ref 0 in
  let down_us = ref 0.0 in
  let ev ~start_us ~dur_us kind part detail =
    match timeline with
    | None -> ()
    | Some ts -> Timeseries.event ts ~start_us ~dur_us ~kind ~part detail
  in
  let fire_faults a narr =
    List.iter
      (fun frt ->
        let i = frt.f.Chaos.part in
        if not frt.fired then begin
          let due =
            match frt.f.Chaos.trigger with
            | Chaos.At_us t -> a >= t
            | Chaos.At_arrival k -> narr >= k
          in
          if due then begin
            frt.fired <- true;
            match frt.f.Chaos.action with
            | Chaos.Crash ->
                (* Synchronous outage: lose the partition's memory state,
                   replay the WAL.  The recovery's simulated cost lands
                   on the partition's clock; arrivals needing it before
                   the recovered horizon fast-fail as down.  The chaos
                   plan targets serving I/O, not the recovery path
                   (faultsim enumerates that exhaustively), so an
                   intermittent window pauses during replay. *)
                let env = envof i in
                let was = hooks.(i).io_on in
                hooks.(i).io_on <- false;
                let t0 = Lsm_sim.Env.now_us env in
                (* The WAL scan: recovery reads the log back from the
                   device before replaying (Txn_dataset keeps its redo
                   list in memory, so the read cost is modeled here —
                   ~64B per record, sequential, uncached). *)
                let wal_pages =
                  let per_page = max 1 (Lsm_sim.Env.page_size env / 64) in
                  (Rt.wal_length rt i + per_page - 1) / per_page
                in
                let logf = Lsm_sim.Env.fresh_file_id env in
                for p = 0 to wal_pages - 1 do
                  Lsm_sim.Env.read_page env ~file:logf ~page:p
                done;
                Lsm_sim.Env.drop_file env ~file:logf;
                Rt.crash_partition rt i;
                Rt.recover_partition rt i;
                hooks.(i).io_on <- was;
                let dur = Lsm_sim.Env.now_us env -. t0 in
                let busy_start = Float.max free.(i) a in
                free.(i) <- busy_start +. dur;
                down_until.(i) <- free.(i);
                recovering_until.(i) <-
                  Float.max recovering_until.(i) (free.(i) +. dur);
                down_us := !down_us +. (free.(i) -. a);
                ev ~start_us:a ~dur_us:(free.(i) -. a) "chaos.crash" i [];
                ev ~start_us:busy_start ~dur_us:dur "chaos.recover" i []
            | Chaos.Io_window { dur_us; fails } ->
                hooks.(i).io_on <- true;
                hooks.(i).io_fails <- fails;
                hooks.(i).io_cycle <- fails * 4;
                hooks.(i).io_count <- 0;
                frt.ends_at <- a +. dur_us;
                degraded_until.(i) <- Float.max degraded_until.(i) frt.ends_at;
                ev ~start_us:a ~dur_us "chaos.io" i [ ("fails", fails) ]
            | Chaos.Slow { dur_us; factor } ->
                Lsm_sim.Env.set_io_penalty (envof i) factor;
                frt.ends_at <- a +. dur_us;
                degraded_until.(i) <- Float.max degraded_until.(i) frt.ends_at;
                ev ~start_us:a ~dur_us "chaos.slow" i
                  [ ("factor_x10", Float.to_int (factor *. 10.0)) ]
            | Chaos.Corrupt ->
                hooks.(i).corrupt_armed <- true;
                ev ~start_us:a ~dur_us:0.0 "chaos.corrupt" i []
          end
        end
        else if frt.ends_at > 0.0 && a >= frt.ends_at then begin
          (match frt.f.Chaos.action with
          | Chaos.Io_window _ -> hooks.(i).io_on <- false
          | Chaos.Slow _ -> Lsm_sim.Env.set_io_penalty (envof i) 1.0
          | Chaos.Crash | Chaos.Corrupt -> ());
          frt.ends_at <- 0.0;
          (* Recovering until the backlog the window built has drained:
             the partition's free horizon at window close. *)
          recovering_until.(i) <- Float.max recovering_until.(i) free.(i)
        end)
      frts
  in
  (* Corruption repair: once a quarantine shows the checksum path caught
     the bad page, heal the partition (component rebuild on its clock). *)
  let heal_due a =
    List.iter
      (fun frt ->
        match frt.f.Chaos.action with
        | Chaos.Corrupt when frt.fired && not frt.healed ->
            let i = frt.f.Chaos.part in
            if hooks.(i).corrupt_hit && Rt.quarantined rt i > 0 then begin
              let env = envof i in
              let t0 = Lsm_sim.Env.now_us env in
              Rt.heal_partition rt i;
              let dur = Lsm_sim.Env.now_us env -. t0 in
              let busy_start = Float.max free.(i) a in
              free.(i) <- busy_start +. dur;
              frt.healed <- true;
              recovering_until.(i) <-
                Float.max recovering_until.(i) (free.(i) +. dur);
              ev ~start_us:busy_start ~dur_us:dur "chaos.heal" i []
            end
        | _ -> ())
      frts
  in
  let corrupt_open () =
    List.exists
      (fun frt ->
        match frt.f.Chaos.action with
        | Chaos.Corrupt ->
            frt.fired && hooks.(frt.f.Chaos.part).corrupt_hit && not frt.healed
        | _ -> false)
      frts
  in
  let phase_of a =
    let any arr = Array.exists (fun t -> a < t) arr in
    if any down_until || any degraded_until || corrupt_open () then "degraded"
    else if any recovering_until then "recovering"
    else "healthy"
  in
  let drain_breakers () =
    for i = 0 to n - 1 do
      let trs = Chaos.Breaker.transitions breakers.(i) in
      let fresh = List.filteri (fun k _ -> k >= drained.(i)) trs in
      List.iter
        (fun (at, st) ->
          incr breaker_events;
          ev ~start_us:at ~dur_us:0.0
            ("breaker." ^ Chaos.Breaker.state_name st)
            i [])
        fresh;
      drained.(i) <- List.length trs
    done
  in
  let with_attempts f =
    let rec go k =
      match f () with
      | v -> Ok v
      | exception Lsm_sim.Resilience.Unrecoverable _ ->
          if k < policy.Chaos.retries then go (k + 1) else Error "io"
    in
    go 0
  in
  let arr =
    Arrivals.create ~seed:((cfg.seed * 131) + 7) ~rate_rps:cfg.rate_rps
      cfg.arrivals
  in
  let horizon_us = cfg.duration_s *. 1e6 in
  let samples = ref [] in
  let n_req = ref 0 in
  let successes = ref 0 and partials = ref 0 and shed = ref 0 in
  let fail_tbl = Hashtbl.create 8 in
  let fail reason =
    Hashtbl.replace fail_tbl reason
      (1 + Option.value ~default:0 (Hashtbl.find_opt fail_tbl reason))
  in
  let phase_tbl = Hashtbl.create 4 in
  let blocked_reason blocked =
    match blocked with (_, `Down) :: _ -> "down" | _ -> "breaker"
  in
  let rec loop a =
    if a <= horizon_us then begin
      incr n_req;
      fire_faults a !n_req;
      heal_due a;
      let ph = phase_of a in
      Hashtbl.replace phase_tbl ph
        (1 + Option.value ~default:0 (Hashtbl.find_opt phase_tbl ph));
      let s_cls, req = gen_request sys cfg in
      let targets = Rt.targets rt req in
      let backlog i = Float.max 0.0 (free.(i) -. a) in
      let min_backlog =
        List.fold_left (fun acc i -> Float.min acc (backlog i)) infinity
          targets
      in
      let cap = policy.Chaos.shed_backlog_us in
      (match
         if cap > 0.0 && min_backlog > cap then
           raise (Chaos.Overloaded { backlog_us = min_backlog; cap_us = cap })
       with
      | exception Chaos.Overloaded _ ->
          incr shed;
          observe O_shed;
          (match timeline with
          | None -> ()
          | Some ts ->
              Timeseries.count ts ~at_us:a "shed" 1;
              Timeseries.event ts ~start_us:a ~dur_us:0.0 ~kind:"shed"
                ~part:(List.hd targets) [])
      | () ->
          let gates =
            List.map
              (fun i ->
                if a < down_until.(i) then begin
                  Chaos.Breaker.record breakers.(i) ~now:a ~ok:false;
                  (i, `Down)
                end
                else
                  match Chaos.Breaker.admit breakers.(i) ~now:a with
                  | `Reject -> (i, `Breaker)
                  | `Allow | `Probe -> (i, `Go))
              targets
          in
          let go =
            List.filter_map (fun (i, g) -> if g = `Go then Some i else None)
              gates
          in
          let blocked =
            List.filter_map
              (fun (i, g) -> if g <> `Go then Some (i, g) else None)
              gates
          in
          (match timeline with
          | None -> ()
          | Some _ ->
              spanbuf := [];
              for i = 0 to n - 1 do
                c0.(i) <- Lsm_sim.Env.now_us (envof i)
              done);
          Rt.snapshot rt;
          let queue0 =
            List.fold_left (fun acc i -> Float.max acc (backlog i)) 0.0 go
          in
          let outcome =
            if
              (not (Rt.is_write req))
              && deadline_us > 0.0 && go <> [] && queue0 >= deadline_us
            then begin
              (* The queue alone already blows the deadline: fail fast
                 without occupying the engine, and charge the slow
                 partitions' error budgets so their breakers start
                 shedding. *)
              List.iter
                (fun i -> Chaos.Breaker.record breakers.(i) ~now:a ~ok:false)
                go;
              Error "deadline"
            end
            else if Rt.is_write req then begin
              match go with
              | [ i ] -> (
                  match with_attempts (fun () -> Rt.exec_write rt req) with
                  | Ok reply ->
                      (* The write is acked even if an eviction it
                         triggers fails; the budget retries next write. *)
                      (try Budget.enforce (Rt.budget rt)
                       with Lsm_sim.Resilience.Unrecoverable _ -> ());
                      Chaos.Breaker.record breakers.(i) ~now:a ~ok:true;
                      Ok
                        ( (match reply with
                          | Rt.Rejected -> O_reject_dup
                          | _ -> O_ack req),
                          None,
                          false )
                  | Error r ->
                      Chaos.Breaker.record breakers.(i) ~now:a ~ok:false;
                      Error r)
              | _ -> Error (blocked_reason blocked)
            end
            else begin
              match req with
              | Rt.Point pk -> (
                  match go with
                  | [ i ] -> (
                      let env = envof i in
                      let attempt () =
                        let t0 = Lsm_sim.Env.now_us env in
                        let v = Rt.point_part rt pk in
                        (v, Lsm_sim.Env.now_us env -. t0)
                      in
                      match with_attempts attempt with
                      | Error r ->
                          Chaos.Breaker.record breakers.(i) ~now:a ~ok:false;
                          Error r
                      | Ok (v, d1) ->
                          Chaos.Breaker.record breakers.(i) ~now:a ~ok:true;
                          let lat =
                            if d1 > hedge_us then begin
                              (* One hedged re-attempt to the same
                                 partition: it pays for both, the client
                                 sees the earlier completion. *)
                              match attempt () with
                              | _, d2 -> Float.min d1 (hedge_us +. d2)
                              | exception Lsm_sim.Resilience.Unrecoverable _
                                ->
                                  d1
                            end
                            else d1
                          in
                          Ok (O_point (pk, v), Some lat, false))
                  | _ -> Error (blocked_reason blocked))
              | Rt.Multi_get pks ->
                  if go = [] then Error "unavailable"
                  else begin
                    let got = ref []
                    and err_parts = ref (List.map fst blocked) in
                    List.iter
                      (fun i ->
                        let mine =
                          Array.to_list pks
                          |> List.filter (fun pk -> Rt.route rt pk = i)
                        in
                        match
                          with_attempts (fun () -> Rt.multi_get_part rt i mine)
                        with
                        | Ok slots ->
                            Chaos.Breaker.record breakers.(i) ~now:a ~ok:true;
                            got := !got @ slots
                        | Error _ ->
                            Chaos.Breaker.record breakers.(i) ~now:a ~ok:false;
                            err_parts := i :: !err_parts)
                      go;
                    let err_parts = List.sort_uniq Int.compare !err_parts in
                    if List.length err_parts >= List.length targets then
                      Error "unavailable"
                    else
                      Ok
                        ( O_multi { got = !got; err_parts },
                          None,
                          err_parts <> [] )
                  end
              | Rt.Secondary { sec; lo; hi; mode } ->
                  if go = [] then Error "unavailable"
                  else begin
                    let rows = ref []
                    and err_parts = ref (List.map fst blocked) in
                    List.iter
                      (fun i ->
                        match
                          with_attempts (fun () ->
                              Rt.secondary_part rt i ~sec ~lo ~hi ~mode)
                        with
                        | Ok rs ->
                            Chaos.Breaker.record breakers.(i) ~now:a ~ok:true;
                            rows := !rows @ rs
                        | Error _ ->
                            Chaos.Breaker.record breakers.(i) ~now:a ~ok:false;
                            err_parts := i :: !err_parts)
                      go;
                    let err_parts = List.sort_uniq Int.compare !err_parts in
                    if List.length err_parts >= List.length targets then
                      Error "unavailable"
                    else
                      Ok
                        ( O_secondary { lo; hi; rows = !rows; err_parts },
                          None,
                          err_parts <> [] )
                  end
              | Rt.Time_range { tlo; thi } ->
                  if go = [] then Error "unavailable"
                  else begin
                    let counts = ref []
                    and err_parts = ref (List.map fst blocked) in
                    List.iter
                      (fun i ->
                        match
                          with_attempts (fun () ->
                              Rt.time_range_part rt i ~tlo ~thi)
                        with
                        | Ok c ->
                            Chaos.Breaker.record breakers.(i) ~now:a ~ok:true;
                            counts := (i, c) :: !counts
                        | Error _ ->
                            Chaos.Breaker.record breakers.(i) ~now:a ~ok:false;
                            err_parts := i :: !err_parts)
                      go;
                    let err_parts = List.sort_uniq Int.compare !err_parts in
                    if List.length err_parts >= List.length targets then
                      Error "unavailable"
                    else
                      Ok
                        ( O_scan
                            { tlo; thi; counts = List.rev !counts; err_parts },
                          None,
                          err_parts <> [] )
                  end
              | Rt.Insert _ | Rt.Upsert _ | Rt.Delete _ -> assert false
            end
          in
          let svc = Rt.service_since rt in
          let involved = ref go in
          Array.iteri
            (fun i d ->
              if d > 0.0 && not (List.mem i !involved) then
                involved := i :: !involved)
            svc;
          let start =
            List.fold_left (fun acc i -> Float.max acc free.(i)) a !involved
          in
          Array.iteri (fun i d -> if d > 0.0 then free.(i) <- start +. d) svc;
          let queue_us = start -. a in
          (match outcome with
          | Ok (obs, lat_override, partial) ->
              let svc_max =
                List.fold_left
                  (fun acc i -> Float.max acc svc.(i))
                  0.0 !involved
              in
              let lat_svc =
                match lat_override with Some l -> l | None -> svc_max
              in
              if
                deadline_us > 0.0
                && (not (Rt.is_write req))
                && queue_us +. lat_svc > deadline_us
              then begin
                fail "deadline";
                observe (O_error "deadline");
                match timeline with
                | None -> ()
                | Some ts ->
                    Timeseries.count ts ~at_us:a "errors" 1;
                    Timeseries.count ts ~at_us:a "error.deadline" 1
              end
              else begin
                incr successes;
                if partial then incr partials;
                observe obs;
                samples :=
                  (ph, { s_cls; arrival_us = a; queue_us; service_us = lat_svc })
                  :: !samples;
                match timeline with
                | None -> ()
                | Some ts ->
                    let done_us = start +. lat_svc in
                    let lat = queue_us +. lat_svc in
                    Timeseries.observe ts ~at_us:done_us (class_name s_cls) lat;
                    Timeseries.observe ts ~at_us:done_us "all" lat;
                    Timeseries.observe ts ~at_us:done_us ("phase." ^ ph) lat;
                    if partial then
                      Timeseries.count ts ~at_us:done_us "partials" 1;
                    Timeseries.set_max ts ~at_us:done_us "queue_us" queue_us;
                    List.iter
                      (fun i ->
                        Timeseries.add ts ~at_us:done_us
                          (Printf.sprintf "p%d.busy_us" i)
                          svc.(i);
                        Timeseries.set_last ts ~at_us:done_us
                          (Printf.sprintf "p%d.backlog_us" i)
                          (Float.max 0.0 (free.(i) -. a)))
                      !involved;
                    List.iter
                      (fun (e : Rt.eviction) ->
                        let ev_ts = start +. e.Rt.ev_start_off_us in
                        Timeseries.count ts ~at_us:ev_ts "evictions" 1;
                        Timeseries.event ts ~start_us:ev_ts
                          ~dur_us:e.Rt.ev_dur_us ~kind:"eviction"
                          ~part:e.Rt.ev_part
                          [
                            ("bytes", e.Rt.ev_bytes);
                            ("flushes", e.Rt.ev_flushes);
                            ("merges", e.Rt.ev_merges);
                          ])
                      (Rt.evictions_since rt);
                    List.iter
                      (fun (i, (sp : Lsm_sim.Env.span_event)) ->
                        Timeseries.event ts
                          ~start_us:
                            (start +. (sp.Lsm_sim.Env.sp_start_us -. c0.(i)))
                          ~dur_us:sp.Lsm_sim.Env.sp_dur_us
                          ~kind:sp.Lsm_sim.Env.sp_name ~part:i [])
                      (List.rev !spanbuf)
              end
          | Error reason ->
              fail reason;
              observe (O_error reason);
              (match timeline with
              | None -> ()
              | Some ts ->
                  Timeseries.count ts ~at_us:a "errors" 1;
                  Timeseries.count ts ~at_us:a ("error." ^ reason) 1)));
      drain_breakers ();
      loop (Arrivals.next arr)
    end
  in
  loop (Arrivals.next arr);
  for i = 0 to n - 1 do
    Lsm_sim.Env.clear_fault_hook (envof i);
    Lsm_sim.Env.set_io_penalty (envof i) 1.0;
    match timeline with
    | None -> ()
    | Some _ -> Lsm_sim.Env.clear_span_hook (envof i)
  done;
  (* Corruption still unhealed at the horizon heals now, so the
     durability probe audits a fully repaired cluster. *)
  List.iter
    (fun frt ->
      match frt.f.Chaos.action with
      | Chaos.Corrupt when frt.fired && not frt.healed ->
          Rt.heal_partition rt frt.f.Chaos.part;
          frt.healed <- true
      | _ -> ())
    frts;
  drain_breakers ();
  let samples = List.rev !samples in
  let all = List.map snd samples in
  let classes =
    List.map
      (fun c ->
        stats_of (class_name c) (List.filter (fun s -> s.s_cls = c) all))
      all_classes
    @ [ stats_of "all" all ]
  in
  let backlog =
    Array.fold_left (fun acc f -> Float.max acc (f -. horizon_us)) 0.0 free
  in
  let backlog_frac = if horizon_us > 0.0 then backlog /. horizon_us else 0.0 in
  let half = horizon_us /. 2.0 in
  let q1 =
    mean
      (List.filter_map
         (fun s -> if s.arrival_us < half then Some s.queue_us else None)
         all)
  in
  let q2 =
    mean
      (List.filter_map
         (fun s -> if s.arrival_us >= half then Some s.queue_us else None)
         all)
  in
  let b = Rt.budget rt in
  let base =
    {
      r_cfg = cfg;
      rate_rps = cfg.rate_rps;
      capacity_rps;
      requests = !n_req;
      classes;
      backlog_frac;
      queue_growth = (q2 +. 1.0) /. (q1 +. 1.0);
      saturated = backlog_frac > 0.05;
      budget_bytes = Budget.budget_bytes b;
      peak_mem_bytes = Budget.peak_bytes b;
      peak_pre_mem_bytes = Budget.peak_pre_bytes b;
      evictions = Budget.evictions b;
      resil = collect_resil sys cfg.partitions;
    }
  in
  let failures = Hashtbl.fold (fun _ v acc -> acc + v) fail_tbl 0 in
  let fail_reasons =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) fail_tbl []
    |> List.sort (fun (k1, v1) (k2, v2) ->
           match String.compare k1 k2 with
           | 0 -> Int.compare v1 v2
           | c -> c)
  in
  let phase_counts =
    List.map
      (fun ph ->
        (ph, Option.value ~default:0 (Hashtbl.find_opt phase_tbl ph)))
      phases
  in
  let phase_classes =
    List.map
      (fun phn ->
        let ss =
          List.filter_map
            (fun (p, s) -> if String.equal p phn then Some s else None)
            samples
        in
        ( phn,
          List.map
            (fun c ->
              stats_of (class_name c) (List.filter (fun s -> s.s_cls = c) ss))
            all_classes
          @ [ stats_of "all" ss ] ))
      phases
  in
  let total = !n_req in
  let res =
    {
      c_base = base;
      c_policy = policy;
      c_faults = List.map Chaos.describe cfg.chaos;
      successes = !successes;
      partials = !partials;
      failures;
      shed = !shed;
      fail_reasons;
      availability =
        (if total = 0 then 1.0
         else Float.of_int !successes /. Float.of_int total);
      shed_rate =
        (if total = 0 then 0.0 else Float.of_int !shed /. Float.of_int total);
      phase_counts;
      phase_classes;
      breaker_opens =
        Array.fold_left (fun acc b -> acc + Chaos.Breaker.opens b) 0 breakers;
      breaker_transitions = !breaker_events;
      down_us = !down_us;
      evictions_by = List.init n (Budget.evictions_of b);
    }
  in
  probe (fun pk -> P.point_query pt pk);
  res
