(** The open-loop serving driver: arrival-driven traffic against an
    N-partition cluster on the simulated clock.

    Partitions are modelled as parallel single-server queues (each env
    has its own device, cache, and clock — Sec. 2.2's shared-nothing
    nodes).  A request arriving at [a] starts at
    [max a (free over the partitions it involves)], runs for the max of
    its per-partition service times, and pushes each involved
    partition's [free] horizon by that partition's own share.  Queueing
    delay is [start - a]; when the offered rate exceeds capacity the
    [free] horizons run away from the arrival clock and queueing delay
    grows without bound — the saturation knee the load sweep exists to
    find. *)

module Tweet = Lsm_workload.Tweet
module Query_gen = Lsm_workload.Query_gen
module Scale = Lsm_harness.Scale
module Strategy = Lsm_core.Strategy
module Rt = Router.Make (Tweet.Record)
module P = Rt.P
module Timeseries = Lsm_obs.Timeseries

type op_class = Ingest | Point | Secondary | Scan

let class_name = function
  | Ingest -> "ingest"
  | Point -> "point"
  | Secondary -> "secondary"
  | Scan -> "scan"

let all_classes = [ Ingest; Point; Secondary; Scan ]

type mix = {
  ingest : float;
  point : float;
  secondary : float;
  scan : float;  (** relative weights; need not sum to 1 *)
}

(** Write-heavy social-feed mix: mostly ingest and point reads, a tail
    of secondary-range and recent-time-range queries. *)
let default_mix = { ingest = 0.5; point = 0.4; secondary = 0.07; scan = 0.03 }

type config = {
  scale : Scale.t;
  partitions : int;
  rate_rps : float;
      (** offered arrival rate; [<= 0] means auto (70% of estimated
          capacity) *)
  duration_s : float;  (** simulated seconds of open-loop traffic *)
  arrivals : Arrivals.kind;
  mix : mix;
  theta : float;  (** Zipf skew of the user/key population *)
  users : int;  (** key-population size the Zipf head draws from *)
  preload : int;  (** records ingested (closed-loop) before traffic *)
  budget_bytes : int;  (** the single global memory budget *)
  selectivity : float;  (** secondary-range selectivity *)
  strategy : Strategy.t;
  maint_workers : int;
      (** modeled maintenance workers per partition; > 1 overlaps
          independent merges (Sec. 2.3) *)
  seed : int;
}

let config ?(partitions = 4) scale =
  {
    scale;
    partitions;
    rate_rps = 0.0;
    duration_s = Scale.serve_duration_s scale;
    arrivals = `Poisson;
    mix = default_mix;
    theta = 0.99;
    users = Scale.serve_users scale;
    preload = Scale.serve_preload scale;
    budget_bytes = Scale.serve_budget_bytes scale ~partitions;
    selectivity = 0.001;
    strategy = Strategy.validation;
    maint_workers = 1;
    seed = 42;
  }

(* ------------------------------------------------------------------ *)
(* System construction *)

type system = {
  rt : Rt.t;
  gen : Tweet.gen;
  qgen : Query_gen.t;
  zipf : Lsm_util.Zipf.t;
  rng : Lsm_util.Rng.t;
  sec_mode : P.D.validation_mode;
  mutable now_created : int;  (** newest creation time generated so far *)
}

let build cfg =
  if cfg.partitions < 1 then invalid_arg "Driver: partitions >= 1";
  let cache_bytes =
    max (256 * 1024) (Scale.cache_bytes cfg.scale / cfg.partitions)
  in
  let mk_env _ =
    Lsm_harness.Obs_hub.attach
      (Lsm_sim.Env.create ~cache_bytes Scale.hdd_device)
  in
  let dcfg =
    {
      P.D.strategy = cfg.strategy;
      (* Per-dataset budget is not enforced (auto-maintenance is off);
         it still sizes the repair sort grant, so give each partition
         its fair share of the global budget. *)
      mem_budget = max 1 (cfg.budget_bytes / cfg.partitions);
      merge_policy =
        Lsm_tree.Merge_policy.tiering ~size_ratio:1.2
          ~max_mergeable_bytes:(Scale.max_mergeable_bytes cfg.scale) ();
      use_pk_index = true;
      bloom = Some { Lsm_tree.Config.kind = `Standard; fpr = 0.01 };
      maint_workers = max 1 cfg.maint_workers;
    }
  in
  let rt =
    Rt.create ~filter_key:Tweet.created_at
      ~secondaries:(Lsm_harness.Setup.secondary_specs 1)
      ~mk_env ~partitions:cfg.partitions ~budget_bytes:cfg.budget_bytes dcfg
  in
  {
    rt;
    gen = Tweet.create_gen ~seed:(cfg.seed * 31 + 1) ();
    qgen = Query_gen.create ~seed:(cfg.seed * 17 + 3) ();
    zipf = Lsm_util.Zipf.create ~theta:cfg.theta cfg.users;
    rng = Lsm_util.Rng.create cfg.seed;
    sec_mode =
      (match cfg.strategy with
      | Strategy.Eager -> `Assume_valid
      | _ -> `Timestamp);
    now_created = 0;
  }

(* Preload: ids [0, preload) exist before traffic starts — and since
   Zipf item 0 is the most popular, the hot head of the population is
   warm.  Closed-loop, under the global budget coordinator. *)
let preload sys cfg =
  for id = 0 to cfg.preload - 1 do
    let tw = Tweet.with_id sys.gen id in
    if tw.Tweet.created_at > sys.now_created then
      sys.now_created <- tw.Tweet.created_at;
    ignore (Rt.exec sys.rt (Rt.Upsert tw))
  done

(* One request drawn from the mix; the Zipf population covers ids the
   preload never wrote, so point queries miss realistically and ingests
   both update hot keys and create cold ones. *)
let gen_request sys cfg =
  let m = cfg.mix in
  let total = m.ingest +. m.point +. m.secondary +. m.scan in
  let u = Lsm_util.Rng.float sys.rng *. total in
  if u < m.ingest then begin
    let id = Lsm_util.Zipf.sample sys.rng sys.zipf in
    let tw = Tweet.with_id sys.gen id in
    if tw.Tweet.created_at > sys.now_created then
      sys.now_created <- tw.Tweet.created_at;
    (Ingest, Rt.Upsert tw)
  end
  else if u < m.ingest +. m.point then
    (Point, Rt.Point (Lsm_util.Zipf.sample sys.rng sys.zipf))
  else if u < m.ingest +. m.point +. m.secondary then begin
    let lo, hi = Query_gen.user_range sys.qgen ~selectivity:cfg.selectivity in
    (Secondary, Rt.Secondary { sec = "user_id"; lo; hi; mode = sys.sec_mode })
  end
  else begin
    let tlo, thi =
      Query_gen.recent_time_range ~now:(max 1 sys.now_created) ~days:1
        ~day_span:30
    in
    (Scan, Rt.Time_range { tlo; thi })
  end

(* ------------------------------------------------------------------ *)
(* Capacity estimation *)

(** [estimate_capacity cfg] runs a short closed-loop probe on a fresh
    system and reports the aggregate rate (requests per simulated
    second) at which the busiest partition saturates — the open-loop
    sweeps anchor their rate ladders to this. *)
let estimate_capacity ?(ops = 1500) (cfg : config) =
  let sys = build cfg in
  preload sys cfg;
  let busy = Array.make cfg.partitions 0.0 in
  for _ = 1 to ops do
    let _, req = gen_request sys cfg in
    let o = Rt.exec sys.rt req in
    Array.iteri (fun i d -> busy.(i) <- busy.(i) +. d) o.Rt.service_us
  done;
  let bottleneck = Array.fold_left Float.max 0.0 busy in
  if bottleneck <= 0.0 then 0.0 else Float.of_int ops *. 1e6 /. bottleneck

(* ------------------------------------------------------------------ *)
(* The open-loop run *)

type class_stats = {
  cls : string;
  count : int;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  mean_queue_us : float;
  mean_service_us : float;
}

type result = {
  r_cfg : config;
  rate_rps : float;  (** the rate actually offered *)
  capacity_rps : float;  (** estimate, when one was made (else 0) *)
  requests : int;
  classes : class_stats list;  (** one per op class, plus ["all"] *)
  backlog_frac : float;
      (** unfinished work at the horizon, as a fraction of the run:
          [(max free - horizon) / horizon], clamped at 0 *)
  queue_growth : float;
      (** mean queueing delay, second half over first half of the run —
          ~1 below saturation, grows without bound above it *)
  saturated : bool;
  budget_bytes : int;
  peak_mem_bytes : int;  (** aggregate memtable peak after enforcement *)
  peak_pre_mem_bytes : int;  (** peak overshoot before enforcement *)
  evictions : int;  (** coordinator-initiated flushes *)
}

type sample = {
  s_cls : op_class;
  arrival_us : float;
  queue_us : float;
  service_us : float;
}

let mean = function
  | [] -> 0.0
  | l -> List.fold_left ( +. ) 0.0 l /. Float.of_int (List.length l)

let stats_of name samples =
  let lat =
    Array.of_list (List.map (fun s -> s.queue_us +. s.service_us) samples)
  in
  let pct p = if Array.length lat = 0 then 0.0 else Lsm_obs.Stats.percentile lat p in
  {
    cls = name;
    count = List.length samples;
    p50_us = pct 50.0;
    p95_us = pct 95.0;
    p99_us = pct 99.0;
    mean_queue_us = mean (List.map (fun s -> s.queue_us) samples);
    mean_service_us = mean (List.map (fun s -> s.service_us) samples);
  }

(* Maintenance span names worth a flight-recorder entry: the budget
   eviction itself is recorded by the router; these are the engine-level
   spans it decomposes into (plus view rebuilds, which also steal
   partition time from foreground requests). *)
let maintenance_spans =
  [
    "dataset.flush";
    "dataset.merge";
    "lsm.flush";
    "lsm.merge";
    "lsm.view.build";
    "maint.job";
  ]

(** [run ?timeline cfg] executes one open-loop run.  With
    [cfg.rate_rps <= 0] the rate is set to 70% of a fresh capacity
    estimate.  Deterministic for a fixed seed.

    When [timeline] is given, every completion feeds it: per-class
    latency histograms stamped at the request's *completion* on the
    arrival timeline, per-partition busy time / backlog / memtable
    gauges, budget-eviction counters, and flight-recorder events for
    evictions and the maintenance spans inside them.  All
    instrumentation is read-only against the simulated clocks, so a
    run's result is identical with the timeline on or off. *)
let run ?timeline (cfg : config) =
  let capacity_rps, cfg =
    if cfg.rate_rps > 0.0 then (0.0, cfg)
    else begin
      let cap = estimate_capacity cfg in
      if cap <= 0.0 then invalid_arg "Driver.run: capacity estimate is zero";
      (cap, { cfg with rate_rps = 0.7 *. cap })
    end
  in
  let sys = build cfg in
  preload sys cfg;
  (* Timeline plumbing.  Partition clocks are independent of the arrival
     timeline, and a request's start is only known *after* execution
     (the free-horizon start depends on which partitions it involved) —
     so span hooks buffer maintenance spans during execution, and the
     per-partition clock snapshots in [c0] translate them afterwards:
     run_ts = start + (span_start − c0).  Hooks go in after the preload;
     preload maintenance happens before the timeline's time zero. *)
  let c0 = Array.make cfg.partitions 0.0 in
  let spanbuf = ref [] in
  (match timeline with
  | None -> ()
  | Some _ ->
      for i = 0 to cfg.partitions - 1 do
        Lsm_sim.Env.set_span_hook
          (P.env (Rt.partitioned sys.rt) i)
          (fun sp ->
            if List.mem sp.Lsm_sim.Env.sp_name maintenance_spans then
              spanbuf := (i, sp) :: !spanbuf)
      done);
  let arr =
    Arrivals.create ~seed:((cfg.seed * 131) + 7) ~rate_rps:cfg.rate_rps
      cfg.arrivals
  in
  let horizon_us = cfg.duration_s *. 1e6 in
  let free = Array.make cfg.partitions 0.0 in
  let samples = ref [] in
  let n_req = ref 0 in
  let rec loop a =
    if a <= horizon_us then begin
      let s_cls, req = gen_request sys cfg in
      (match timeline with
      | None -> ()
      | Some _ ->
          spanbuf := [];
          for i = 0 to cfg.partitions - 1 do
            c0.(i) <- Lsm_sim.Env.now_us (P.env (Rt.partitioned sys.rt) i)
          done);
      let o = Rt.exec sys.rt req in
      (* Involved = structurally touched plus any partition whose clock
         moved (a budget-triggered flush on another partition lands
         there and delays only requests routed to it). *)
      let involved = ref o.Rt.touched in
      Array.iteri
        (fun i d -> if d > 0.0 && not (List.mem i !involved) then involved := i :: !involved)
        o.Rt.service_us;
      let start = List.fold_left (fun acc i -> Float.max acc free.(i)) a !involved in
      let service_us =
        List.fold_left (fun acc i -> Float.max acc o.Rt.service_us.(i)) 0.0 !involved
      in
      List.iter (fun i -> free.(i) <- start +. o.Rt.service_us.(i)) !involved;
      (match timeline with
      | None -> ()
      | Some ts ->
          let done_us = start +. service_us in
          let lat = (start -. a) +. service_us in
          Timeseries.observe ts ~at_us:done_us (class_name s_cls) lat;
          Timeseries.observe ts ~at_us:done_us "all" lat;
          Timeseries.set_max ts ~at_us:done_us "queue_us" (start -. a);
          List.iter
            (fun i ->
              Timeseries.add ts ~at_us:done_us
                (Printf.sprintf "p%d.busy_us" i)
                o.Rt.service_us.(i);
              Timeseries.set_last ts ~at_us:done_us
                (Printf.sprintf "p%d.backlog_us" i)
                (Float.max 0.0 (free.(i) -. a));
              Timeseries.set_last ts ~at_us:done_us
                (Printf.sprintf "p%d.mem_bytes" i)
                (Float.of_int (P.mem_bytes_of (Rt.partitioned sys.rt) i)))
            !involved;
          Timeseries.set_last ts ~at_us:done_us "mem_bytes"
            (Float.of_int (P.total_mem_bytes (Rt.partitioned sys.rt)));
          List.iter
            (fun (ev : Rt.eviction) ->
              let ev_ts = start +. ev.Rt.ev_start_off_us in
              Timeseries.count ts ~at_us:ev_ts "evictions" 1;
              Timeseries.count ts ~at_us:ev_ts "flushes" ev.Rt.ev_flushes;
              Timeseries.count ts ~at_us:ev_ts "merges" ev.Rt.ev_merges;
              Timeseries.add ts ~at_us:ev_ts "evicted_bytes"
                (Float.of_int ev.Rt.ev_bytes);
              Timeseries.event ts ~start_us:ev_ts ~dur_us:ev.Rt.ev_dur_us
                ~kind:"eviction" ~part:ev.Rt.ev_part
                [
                  ("bytes", ev.Rt.ev_bytes);
                  ("flushes", ev.Rt.ev_flushes);
                  ("merges", ev.Rt.ev_merges);
                  ("merge_bytes", ev.Rt.ev_merge_bytes);
                ])
            o.Rt.evictions;
          List.iter
            (fun (i, (sp : Lsm_sim.Env.span_event)) ->
              Timeseries.event ts
                ~start_us:(start +. (sp.Lsm_sim.Env.sp_start_us -. c0.(i)))
                ~dur_us:sp.Lsm_sim.Env.sp_dur_us ~kind:sp.Lsm_sim.Env.sp_name
                ~part:i [])
            (List.rev !spanbuf));
      samples := { s_cls; arrival_us = a; queue_us = start -. a; service_us } :: !samples;
      incr n_req;
      loop (Arrivals.next arr)
    end
  in
  loop (Arrivals.next arr);
  (match timeline with
  | None -> ()
  | Some _ ->
      for i = 0 to cfg.partitions - 1 do
        Lsm_sim.Env.clear_span_hook (P.env (Rt.partitioned sys.rt) i)
      done);
  let samples = List.rev !samples in
  let classes =
    List.map
      (fun c ->
        stats_of (class_name c) (List.filter (fun s -> s.s_cls = c) samples))
      all_classes
    @ [ stats_of "all" samples ]
  in
  let backlog =
    Array.fold_left (fun acc f -> Float.max acc (f -. horizon_us)) 0.0 free
  in
  let backlog_frac = if horizon_us > 0.0 then backlog /. horizon_us else 0.0 in
  let half = horizon_us /. 2.0 in
  let q1 =
    mean
      (List.filter_map
         (fun s -> if s.arrival_us < half then Some s.queue_us else None)
         samples)
  in
  let q2 =
    mean
      (List.filter_map
         (fun s -> if s.arrival_us >= half then Some s.queue_us else None)
         samples)
  in
  let queue_growth = (q2 +. 1.0) /. (q1 +. 1.0) in
  let b = Rt.budget sys.rt in
  {
    r_cfg = cfg;
    rate_rps = cfg.rate_rps;
    capacity_rps;
    requests = !n_req;
    classes;
    backlog_frac;
    queue_growth;
    saturated = backlog_frac > 0.05;
    budget_bytes = Budget.budget_bytes b;
    peak_mem_bytes = Budget.peak_bytes b;
    peak_pre_mem_bytes = Budget.peak_pre_bytes b;
    evictions = Budget.evictions b;
  }

(* ------------------------------------------------------------------ *)
(* Load sweep *)

type sweep_result = {
  sw_capacity_rps : float;
  points : result list;  (** one run per rung of the rate ladder *)
  knee_rps : float option;
      (** highest offered rate that did not saturate; [None] when every
          rung saturated *)
}

(** [sweep cfg] anchors a rate ladder to a capacity estimate, runs each
    rung on a fresh system (same seed), and reports the knee: the
    highest rate whose run stayed below saturation.  The default ladder
    straddles the estimate so the knee is demonstrated from both
    sides. *)
let sweep ?(fractions = [ 0.3; 0.6; 0.85; 1.1; 1.5 ]) (cfg : config) =
  let cap = estimate_capacity cfg in
  if cap <= 0.0 then invalid_arg "Driver.sweep: capacity estimate is zero";
  let points =
    List.map (fun f -> run { cfg with rate_rps = f *. cap }) fractions
  in
  let knee_rps =
    List.fold_left
      (fun acc r ->
        if r.saturated then acc
        else
          match acc with
          | Some best when best >= r.rate_rps -> acc
          | _ -> Some r.rate_rps)
      None points
  in
  { sw_capacity_rps = cap; points; knee_rps }
