(** Serving-layer reporting: SLO tables, [serve.*] gauges, and the
    machine-readable ["lsm-repro-serve/1"] JSON document the CLI and CI
    consume. *)

module Report = Lsm_harness.Report
module Json = Lsm_obs.Json
module Metrics = Lsm_obs.Metrics
module Timeseries = Lsm_obs.Timeseries
module Slo = Lsm_obs.Slo

let schema = "lsm-repro-serve/1"
let timeline_schema = "lsm-repro-timeline/1"

let fmt_us us = Printf.sprintf "%.2f" (us /. 1000.0)
let fmt_rate r = Printf.sprintf "%.0f" r
let fmt_mb b = Printf.sprintf "%.2fMB" (Float.of_int b /. (1024.0 *. 1024.0))

let verdict (r : Driver.result) =
  if r.Driver.saturated then
    Printf.sprintf
      "SATURATED: backlog %.0f%% of the run unfinished; queueing delay grew \
       %.1fx from first to second half and dominates latency"
      (100.0 *. r.Driver.backlog_frac)
      r.Driver.queue_growth
  else
    Printf.sprintf
      "below saturation: p99 bounded per class (queue growth %.2fx, backlog \
       %.1f%%)"
      r.Driver.queue_growth
      (100.0 *. r.Driver.backlog_frac)

let budget_note (r : Driver.result) =
  Printf.sprintf
    "global budget %s: aggregate memtable peak %s (pre-eviction overshoot \
     %s), %d coordinator flushes"
    (fmt_mb r.Driver.budget_bytes)
    (fmt_mb r.Driver.peak_mem_bytes)
    (fmt_mb r.Driver.peak_pre_mem_bytes)
    r.Driver.evictions

(** [report r] is the per-run SLO table: one row per operation class
    (latencies in milliseconds), the budget line and saturation verdict
    as notes. *)
let report (r : Driver.result) =
  let cfg = r.Driver.r_cfg in
  let rows =
    List.map
      (fun (c : Driver.class_stats) ->
        [
          c.Driver.cls;
          string_of_int c.Driver.count;
          fmt_us c.Driver.p50_us;
          fmt_us c.Driver.p95_us;
          fmt_us c.Driver.p99_us;
          fmt_us c.Driver.mean_queue_us;
          fmt_us c.Driver.mean_service_us;
        ])
      r.Driver.classes
  in
  Report.make ~id:"serve"
    ~title:
      (Printf.sprintf
         "Open-loop serving: %d partitions, %s arrivals at %s rps, %.1fs \
          simulated (scale %s, seed %d)"
         cfg.Driver.partitions
         (Arrivals.string_of_kind cfg.Driver.arrivals)
         (fmt_rate r.Driver.rate_rps) cfg.Driver.duration_s
         cfg.Driver.scale.Lsm_harness.Scale.name cfg.Driver.seed)
    ~header:
      [ "class"; "count"; "p50_ms"; "p95_ms"; "p99_ms"; "queue_ms"; "svc_ms" ]
    ~notes:[ budget_note r; verdict r ]
    rows

(** [sweep_report sw] is the knee table: one row per rung of the rate
    ladder, p99 per class, queue growth, backlog, and the verdict. *)
let sweep_report (sw : Driver.sweep_result) =
  let class_p99 (r : Driver.result) name =
    match List.find_opt (fun c -> c.Driver.cls = name) r.Driver.classes with
    | Some c -> fmt_us c.Driver.p99_us
    | None -> "-"
  in
  let rows =
    List.map
      (fun (r : Driver.result) ->
        [
          fmt_rate r.Driver.rate_rps;
          class_p99 r "ingest";
          class_p99 r "point";
          class_p99 r "secondary";
          class_p99 r "scan";
          Printf.sprintf "%.2f" r.Driver.queue_growth;
          Printf.sprintf "%.0f%%" (100.0 *. r.Driver.backlog_frac);
          (if r.Driver.saturated then "SATURATED" else "ok");
        ])
      sw.Driver.points
  in
  let knee =
    match sw.Driver.knee_rps with
    | Some k ->
        Printf.sprintf "knee: %s rps — the highest offered rate below \
                        saturation" (fmt_rate k)
    | None -> "knee: none — every rung of the ladder saturated"
  in
  Report.make ~id:"serve-sweep"
    ~title:
      (Printf.sprintf "Load sweep (capacity estimate %s rps)"
         (fmt_rate sw.Driver.sw_capacity_rps))
    ~header:
      [
        "rate_rps";
        "ingest_p99_ms";
        "point_p99_ms";
        "secondary_p99_ms";
        "scan_p99_ms";
        "queue_growth";
        "backlog";
        "verdict";
      ]
    ~notes:[ knee ]
    rows

(** [publish r m] mirrors a run into [serve.*] gauges. *)
let publish (r : Driver.result) m =
  let set name v = Metrics.set (Metrics.gauge m ("serve." ^ name)) v in
  set "rate_rps" r.Driver.rate_rps;
  set "requests" (Float.of_int r.Driver.requests);
  set "partitions" (Float.of_int r.Driver.r_cfg.Driver.partitions);
  set "backlog_frac" r.Driver.backlog_frac;
  set "queue_growth" r.Driver.queue_growth;
  set "saturated" (if r.Driver.saturated then 1.0 else 0.0);
  set "budget_bytes" (Float.of_int r.Driver.budget_bytes);
  set "mem_peak_bytes" (Float.of_int r.Driver.peak_mem_bytes);
  set "mem_peak_pre_bytes" (Float.of_int r.Driver.peak_pre_mem_bytes);
  set "evictions" (Float.of_int r.Driver.evictions);
  List.iter
    (fun (c : Driver.class_stats) ->
      let pfx = c.Driver.cls ^ "." in
      set (pfx ^ "count") (Float.of_int c.Driver.count);
      set (pfx ^ "p50_us") c.Driver.p50_us;
      set (pfx ^ "p95_us") c.Driver.p95_us;
      set (pfx ^ "p99_us") c.Driver.p99_us;
      set (pfx ^ "queue_mean_us") c.Driver.mean_queue_us;
      set (pfx ^ "service_mean_us") c.Driver.mean_service_us)
    r.Driver.classes

(* ------------------------------------------------------------------ *)
(* JSON *)

let json_of_classes classes =
  Json.List
    (List.map
       (fun (c : Driver.class_stats) ->
         Json.Obj
           [
             ("class", Json.Str c.Driver.cls);
             ("count", Json.Int c.Driver.count);
             ("p50_us", Json.Float c.Driver.p50_us);
             ("p95_us", Json.Float c.Driver.p95_us);
             ("p99_us", Json.Float c.Driver.p99_us);
             ("mean_queue_us", Json.Float c.Driver.mean_queue_us);
             ("mean_service_us", Json.Float c.Driver.mean_service_us);
           ])
       classes)

let json_of_run (r : Driver.result) =
  Json.Obj
    [
      ("rate_rps", Json.Float r.Driver.rate_rps);
      ("requests", Json.Int r.Driver.requests);
      ("saturated", Json.Bool r.Driver.saturated);
      ("backlog_frac", Json.Float r.Driver.backlog_frac);
      ("queue_growth", Json.Float r.Driver.queue_growth);
      ("classes", json_of_classes r.Driver.classes);
      ( "budget",
        Json.Obj
          [
            ("budget_bytes", Json.Int r.Driver.budget_bytes);
            ("peak_bytes", Json.Int r.Driver.peak_mem_bytes);
            ("peak_pre_bytes", Json.Int r.Driver.peak_pre_mem_bytes);
            ("evictions", Json.Int r.Driver.evictions);
            ("ok", Json.Bool (r.Driver.peak_mem_bytes <= r.Driver.budget_bytes));
          ] );
    ]

let json_of_config (cfg : Driver.config) =
  Json.Obj
    [
      ("scale", Json.Str cfg.Driver.scale.Lsm_harness.Scale.name);
      ("partitions", Json.Int cfg.Driver.partitions);
      ("duration_s", Json.Float cfg.Driver.duration_s);
      ("arrivals", Json.Str (Arrivals.string_of_kind cfg.Driver.arrivals));
      ("theta", Json.Float cfg.Driver.theta);
      ("users", Json.Int cfg.Driver.users);
      ("preload", Json.Int cfg.Driver.preload);
      ("budget_bytes", Json.Int cfg.Driver.budget_bytes);
      ("selectivity", Json.Float cfg.Driver.selectivity);
      ("strategy", Json.Str (Lsm_core.Strategy.name cfg.Driver.strategy));
      ("seed", Json.Int cfg.Driver.seed);
    ]

(** One-run document ([mode = "run"]). *)
let to_json (r : Driver.result) =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("mode", Json.Str "run");
      ("config", json_of_config r.Driver.r_cfg);
      ("capacity_rps", Json.Float r.Driver.capacity_rps);
      ("run", json_of_run r);
    ]

(* ------------------------------------------------------------------ *)
(* Timeline: the windowed-telemetry document and its text digest *)

(** Timeline document: run config and summary, the windowed series and
    event ring, and the SLO evaluation (alerts, ranked interference
    findings, flight records). *)
let timeline_to_json ?slo_config (r : Driver.result) ts objectives =
  Json.Obj
    [
      ("schema", Json.Str timeline_schema);
      ("config", json_of_config r.Driver.r_cfg);
      ("run", json_of_run r);
      ("timeline", Timeseries.to_json ts);
      ("slo", Slo.to_json ?config:slo_config ts objectives);
    ]

(** [timeline_report r ts objectives] is the human-readable digest: one
    row per burn-rate alert with its top-ranked interfering maintenance
    event, plus collection totals as notes. *)
let timeline_report ?slo_config (r : Driver.result) ts objectives =
  let alerts =
    List.concat_map (fun o -> Slo.evaluate ?config:slo_config ts o) objectives
  in
  let findings = Slo.attribute ts alerts in
  let top_for a =
    List.find_opt (fun (f : Slo.finding) -> f.Slo.f_alert == a) findings
  in
  let rows =
    List.map
      (fun (a : Slo.alert) ->
        let culprit =
          match top_for a with
          | Some f ->
              Printf.sprintf "%s on p%d (%.1fms overlap)"
                f.Slo.f_event.Timeseries.e_kind f.Slo.f_event.Timeseries.e_part
                (f.Slo.f_overlap_us /. 1000.0)
          | None -> "none in window"
        in
        [
          string_of_int a.Slo.a_window;
          Printf.sprintf "%.0f"
            (Timeseries.window_start ts a.Slo.a_window /. 1000.0);
          Format.asprintf "%a" Slo.pp_objective a.Slo.a_objective;
          Printf.sprintf "%.1f" a.Slo.a_fast_burn;
          Printf.sprintf "%.1f" a.Slo.a_slow_burn;
          Printf.sprintf "%d/%d" a.Slo.a_bad a.Slo.a_total;
          culprit;
        ])
      alerts
  in
  let totals =
    Printf.sprintf
      "%d windows of %.0fms; %d maintenance events recorded (%d dropped from \
       the ring); %d coordinator evictions"
      (Timeseries.n_windows ts)
      (Timeseries.window_us ts /. 1000.0)
      (Timeseries.events_recorded ts)
      (Timeseries.events_dropped ts)
      r.Driver.evictions
  in
  let verdict =
    if alerts = [] then
      "no SLO burn-rate alerts — every objective held over the run"
    else
      Printf.sprintf
        "%d alert window(s); culprits above rank maintenance events by \
         overlap with the alerting window"
        (List.length alerts)
  in
  Report.make ~id:"serve-timeline"
    ~title:
      (Printf.sprintf
         "Serving timeline: %d windows, objectives [%s]"
         (Timeseries.n_windows ts)
         (String.concat "; "
            (List.map (Format.asprintf "%a" Slo.pp_objective) objectives)))
    ~header:
      [ "window"; "t_ms"; "objective"; "fast_burn"; "slow_burn"; "bad/total"; "top culprit" ]
    ~notes:[ totals; verdict ]
    rows

(** Sweep document ([mode = "sweep"]). *)
let sweep_to_json (cfg : Driver.config) (sw : Driver.sweep_result) =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("mode", Json.Str "sweep");
      ("config", json_of_config cfg);
      ( "sweep",
        Json.Obj
          [
            ("capacity_rps", Json.Float sw.Driver.sw_capacity_rps);
            ( "knee_rps",
              match sw.Driver.knee_rps with
              | Some k -> Json.Float k
              | None -> Json.Null );
            ("points", Json.List (List.map json_of_run sw.Driver.points));
          ] );
    ]
