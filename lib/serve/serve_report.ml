(** Serving-layer reporting: SLO tables, [serve.*] gauges, and the
    machine-readable ["lsm-repro-serve/1"] JSON document the CLI and CI
    consume. *)

module Report = Lsm_harness.Report
module Json = Lsm_obs.Json
module Metrics = Lsm_obs.Metrics
module Timeseries = Lsm_obs.Timeseries
module Slo = Lsm_obs.Slo

let schema = "lsm-repro-serve/1"
let timeline_schema = "lsm-repro-timeline/1"

let fmt_us us = Printf.sprintf "%.2f" (us /. 1000.0)
let fmt_rate r = Printf.sprintf "%.0f" r
let fmt_mb b = Printf.sprintf "%.2fMB" (Float.of_int b /. (1024.0 *. 1024.0))

let verdict (r : Driver.result) =
  if r.Driver.saturated then
    Printf.sprintf
      "SATURATED: backlog %.0f%% of the run unfinished; queueing delay grew \
       %.1fx from first to second half and dominates latency"
      (100.0 *. r.Driver.backlog_frac)
      r.Driver.queue_growth
  else
    Printf.sprintf
      "below saturation: p99 bounded per class (queue growth %.2fx, backlog \
       %.1f%%)"
      r.Driver.queue_growth
      (100.0 *. r.Driver.backlog_frac)

let budget_note (r : Driver.result) =
  Printf.sprintf
    "global budget %s: aggregate memtable peak %s (pre-eviction overshoot \
     %s), %d coordinator flushes"
    (fmt_mb r.Driver.budget_bytes)
    (fmt_mb r.Driver.peak_mem_bytes)
    (fmt_mb r.Driver.peak_pre_mem_bytes)
    r.Driver.evictions

(* Per-partition engine resilience counters: a note line when the run
   exercised any retry/degradation machinery, "clean" otherwise. *)
let resil_note (r : Driver.result) =
  let active =
    List.filter
      (fun (pr : Driver.part_resil) ->
        pr.Driver.pr_retries + pr.Driver.pr_exhausted + pr.Driver.pr_checksum
        + pr.Driver.pr_quarantines + pr.Driver.pr_rebuilds
        > 0)
      r.Driver.resil
  in
  if active = [] then "resilience: clean (no retries, no quarantines)"
  else
    "resilience: "
    ^ String.concat "; "
        (List.map
           (fun (pr : Driver.part_resil) ->
             Printf.sprintf
               "p%d retries=%d exhausted=%d checksum=%d quarantines=%d \
                rebuilds=%d"
               pr.Driver.pr_part pr.Driver.pr_retries pr.Driver.pr_exhausted
               pr.Driver.pr_checksum pr.Driver.pr_quarantines
               pr.Driver.pr_rebuilds)
           active)

(** [report r] is the per-run SLO table: one row per operation class
    (latencies in milliseconds), the budget line and saturation verdict
    as notes. *)
let report (r : Driver.result) =
  let cfg = r.Driver.r_cfg in
  let rows =
    List.map
      (fun (c : Driver.class_stats) ->
        [
          c.Driver.cls;
          string_of_int c.Driver.count;
          fmt_us c.Driver.p50_us;
          fmt_us c.Driver.p95_us;
          fmt_us c.Driver.p99_us;
          fmt_us c.Driver.mean_queue_us;
          fmt_us c.Driver.mean_service_us;
        ])
      r.Driver.classes
  in
  Report.make ~id:"serve"
    ~title:
      (Printf.sprintf
         "Open-loop serving: %d partitions, %s arrivals at %s rps, %.1fs \
          simulated (scale %s, seed %d)"
         cfg.Driver.partitions
         (Arrivals.string_of_kind cfg.Driver.arrivals)
         (fmt_rate r.Driver.rate_rps) cfg.Driver.duration_s
         cfg.Driver.scale.Lsm_harness.Scale.name cfg.Driver.seed)
    ~header:
      [ "class"; "count"; "p50_ms"; "p95_ms"; "p99_ms"; "queue_ms"; "svc_ms" ]
    ~notes:[ budget_note r; resil_note r; verdict r ]
    rows

(** [sweep_report sw] is the knee table: one row per rung of the rate
    ladder, p99 per class, queue growth, backlog, and the verdict. *)
let sweep_report (sw : Driver.sweep_result) =
  let class_p99 (r : Driver.result) name =
    match List.find_opt (fun c -> c.Driver.cls = name) r.Driver.classes with
    | Some c -> fmt_us c.Driver.p99_us
    | None -> "-"
  in
  let rows =
    List.map
      (fun (r : Driver.result) ->
        [
          fmt_rate r.Driver.rate_rps;
          class_p99 r "ingest";
          class_p99 r "point";
          class_p99 r "secondary";
          class_p99 r "scan";
          Printf.sprintf "%.2f" r.Driver.queue_growth;
          Printf.sprintf "%.0f%%" (100.0 *. r.Driver.backlog_frac);
          (if r.Driver.saturated then "SATURATED" else "ok");
        ])
      sw.Driver.points
  in
  let knee =
    match sw.Driver.knee_rps with
    | Some k ->
        Printf.sprintf "knee: %s rps — the highest offered rate below \
                        saturation" (fmt_rate k)
    | None -> "knee: none — every rung of the ladder saturated"
  in
  Report.make ~id:"serve-sweep"
    ~title:
      (Printf.sprintf "Load sweep (capacity estimate %s rps)"
         (fmt_rate sw.Driver.sw_capacity_rps))
    ~header:
      [
        "rate_rps";
        "ingest_p99_ms";
        "point_p99_ms";
        "secondary_p99_ms";
        "scan_p99_ms";
        "queue_growth";
        "backlog";
        "verdict";
      ]
    ~notes:[ knee ]
    rows

(** [publish r m] mirrors a run into [serve.*] gauges. *)
let publish (r : Driver.result) m =
  let set name v = Metrics.set (Metrics.gauge m ("serve." ^ name)) v in
  set "rate_rps" r.Driver.rate_rps;
  set "requests" (Float.of_int r.Driver.requests);
  set "partitions" (Float.of_int r.Driver.r_cfg.Driver.partitions);
  set "backlog_frac" r.Driver.backlog_frac;
  set "queue_growth" r.Driver.queue_growth;
  set "saturated" (if r.Driver.saturated then 1.0 else 0.0);
  set "budget_bytes" (Float.of_int r.Driver.budget_bytes);
  set "mem_peak_bytes" (Float.of_int r.Driver.peak_mem_bytes);
  set "mem_peak_pre_bytes" (Float.of_int r.Driver.peak_pre_mem_bytes);
  set "evictions" (Float.of_int r.Driver.evictions);
  List.iter
    (fun (c : Driver.class_stats) ->
      let pfx = c.Driver.cls ^ "." in
      set (pfx ^ "count") (Float.of_int c.Driver.count);
      set (pfx ^ "p50_us") c.Driver.p50_us;
      set (pfx ^ "p95_us") c.Driver.p95_us;
      set (pfx ^ "p99_us") c.Driver.p99_us;
      set (pfx ^ "queue_mean_us") c.Driver.mean_queue_us;
      set (pfx ^ "service_mean_us") c.Driver.mean_service_us)
    r.Driver.classes;
  List.iter
    (fun (pr : Driver.part_resil) ->
      let pfx = Printf.sprintf "p%d.resilience." pr.Driver.pr_part in
      set (pfx ^ "retries") (Float.of_int pr.Driver.pr_retries);
      set (pfx ^ "exhausted") (Float.of_int pr.Driver.pr_exhausted);
      set (pfx ^ "checksum_failures") (Float.of_int pr.Driver.pr_checksum);
      set (pfx ^ "quarantines") (Float.of_int pr.Driver.pr_quarantines);
      set (pfx ^ "rebuilds") (Float.of_int pr.Driver.pr_rebuilds))
    r.Driver.resil

(* ------------------------------------------------------------------ *)
(* JSON *)

let json_of_classes classes =
  Json.List
    (List.map
       (fun (c : Driver.class_stats) ->
         Json.Obj
           [
             ("class", Json.Str c.Driver.cls);
             ("count", Json.Int c.Driver.count);
             ("p50_us", Json.Float c.Driver.p50_us);
             ("p95_us", Json.Float c.Driver.p95_us);
             ("p99_us", Json.Float c.Driver.p99_us);
             ("mean_queue_us", Json.Float c.Driver.mean_queue_us);
             ("mean_service_us", Json.Float c.Driver.mean_service_us);
           ])
       classes)

let json_of_resil (resil : Driver.part_resil list) =
  Json.List
    (List.map
       (fun (pr : Driver.part_resil) ->
         Json.Obj
           [
             ("part", Json.Int pr.Driver.pr_part);
             ("retries", Json.Int pr.Driver.pr_retries);
             ("exhausted", Json.Int pr.Driver.pr_exhausted);
             ("checksum_failures", Json.Int pr.Driver.pr_checksum);
             ("quarantines", Json.Int pr.Driver.pr_quarantines);
             ("rebuilds", Json.Int pr.Driver.pr_rebuilds);
           ])
       resil)

let json_of_run (r : Driver.result) =
  Json.Obj
    [
      ("rate_rps", Json.Float r.Driver.rate_rps);
      ("requests", Json.Int r.Driver.requests);
      ("saturated", Json.Bool r.Driver.saturated);
      ("backlog_frac", Json.Float r.Driver.backlog_frac);
      ("queue_growth", Json.Float r.Driver.queue_growth);
      ("classes", json_of_classes r.Driver.classes);
      ("resilience", json_of_resil r.Driver.resil);
      ( "budget",
        Json.Obj
          [
            ("budget_bytes", Json.Int r.Driver.budget_bytes);
            ("peak_bytes", Json.Int r.Driver.peak_mem_bytes);
            ("peak_pre_bytes", Json.Int r.Driver.peak_pre_mem_bytes);
            ("evictions", Json.Int r.Driver.evictions);
            ("ok", Json.Bool (r.Driver.peak_mem_bytes <= r.Driver.budget_bytes));
          ] );
    ]

let json_of_config (cfg : Driver.config) =
  Json.Obj
    [
      ("scale", Json.Str cfg.Driver.scale.Lsm_harness.Scale.name);
      ("partitions", Json.Int cfg.Driver.partitions);
      ("duration_s", Json.Float cfg.Driver.duration_s);
      ("arrivals", Json.Str (Arrivals.string_of_kind cfg.Driver.arrivals));
      ("theta", Json.Float cfg.Driver.theta);
      ("users", Json.Int cfg.Driver.users);
      ("preload", Json.Int cfg.Driver.preload);
      ("budget_bytes", Json.Int cfg.Driver.budget_bytes);
      ("selectivity", Json.Float cfg.Driver.selectivity);
      ("strategy", Json.Str (Lsm_core.Strategy.name cfg.Driver.strategy));
      ("seed", Json.Int cfg.Driver.seed);
    ]

(** One-run document ([mode = "run"]). *)
let to_json (r : Driver.result) =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("mode", Json.Str "run");
      ("config", json_of_config r.Driver.r_cfg);
      ("capacity_rps", Json.Float r.Driver.capacity_rps);
      ("run", json_of_run r);
    ]

(* ------------------------------------------------------------------ *)
(* Timeline: the windowed-telemetry document and its text digest *)

(** Timeline document: run config and summary, the windowed series and
    event ring, and the SLO evaluation (alerts, ranked interference
    findings, flight records). *)
let timeline_to_json ?slo_config (r : Driver.result) ts objectives =
  Json.Obj
    [
      ("schema", Json.Str timeline_schema);
      ("config", json_of_config r.Driver.r_cfg);
      ("run", json_of_run r);
      ("timeline", Timeseries.to_json ts);
      ("slo", Slo.to_json ?config:slo_config ts objectives);
    ]

(** [timeline_report r ts objectives] is the human-readable digest: one
    row per burn-rate alert with its top-ranked interfering maintenance
    event, plus collection totals as notes. *)
let timeline_report ?slo_config (r : Driver.result) ts objectives =
  let alerts =
    List.concat_map (fun o -> Slo.evaluate ?config:slo_config ts o) objectives
  in
  let findings = Slo.attribute ts alerts in
  let top_for a =
    List.find_opt (fun (f : Slo.finding) -> f.Slo.f_alert == a) findings
  in
  let rows =
    List.map
      (fun (a : Slo.alert) ->
        let culprit =
          match top_for a with
          | Some f ->
              Printf.sprintf "%s on p%d (%.1fms overlap)"
                f.Slo.f_event.Timeseries.e_kind f.Slo.f_event.Timeseries.e_part
                (f.Slo.f_overlap_us /. 1000.0)
          | None -> "none in window"
        in
        [
          string_of_int a.Slo.a_window;
          Printf.sprintf "%.0f"
            (Timeseries.window_start ts a.Slo.a_window /. 1000.0);
          Format.asprintf "%a" Slo.pp_objective a.Slo.a_objective;
          Printf.sprintf "%.1f" a.Slo.a_fast_burn;
          Printf.sprintf "%.1f" a.Slo.a_slow_burn;
          Printf.sprintf "%d/%d" a.Slo.a_bad a.Slo.a_total;
          culprit;
        ])
      alerts
  in
  let totals =
    Printf.sprintf
      "%d windows of %.0fms; %d maintenance events recorded (%d dropped from \
       the ring); %d coordinator evictions"
      (Timeseries.n_windows ts)
      (Timeseries.window_us ts /. 1000.0)
      (Timeseries.events_recorded ts)
      (Timeseries.events_dropped ts)
      r.Driver.evictions
  in
  let verdict =
    if alerts = [] then
      "no SLO burn-rate alerts — every objective held over the run"
    else
      Printf.sprintf
        "%d alert window(s); culprits above rank maintenance events by \
         overlap with the alerting window"
        (List.length alerts)
  in
  Report.make ~id:"serve-timeline"
    ~title:
      (Printf.sprintf
         "Serving timeline: %d windows, objectives [%s]"
         (Timeseries.n_windows ts)
         (String.concat "; "
            (List.map (Format.asprintf "%a" Slo.pp_objective) objectives)))
    ~header:
      [ "window"; "t_ms"; "objective"; "fast_burn"; "slow_burn"; "bad/total"; "top culprit" ]
    ~notes:[ totals; verdict ]
    rows

(** Sweep document ([mode = "sweep"]). *)
let sweep_to_json (cfg : Driver.config) (sw : Driver.sweep_result) =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("mode", Json.Str "sweep");
      ("config", json_of_config cfg);
      ( "sweep",
        Json.Obj
          [
            ("capacity_rps", Json.Float sw.Driver.sw_capacity_rps);
            ( "knee_rps",
              match sw.Driver.knee_rps with
              | Some k -> Json.Float k
              | None -> Json.Null );
            ("points", Json.List (List.map json_of_run sw.Driver.points));
          ] );
    ]

(* ------------------------------------------------------------------ *)
(* Chaos runs: degraded-operation report and document *)

let json_of_verdict (v : Chaos_checker.verdict) =
  Json.Obj
    [
      ("ok", Json.Bool (Chaos_checker.ok v));
      ("arrivals", Json.Int v.Chaos_checker.v_arrivals);
      ("successes", Json.Int v.Chaos_checker.v_successes);
      ("failures", Json.Int v.Chaos_checker.v_failures);
      ("shed", Json.Int v.Chaos_checker.v_shed);
      ("answers_checked", Json.Int v.Chaos_checker.v_checked);
      ("keys_probed", Json.Int v.Chaos_checker.v_probed);
      ("violations_total", Json.Int v.Chaos_checker.v_violations_total);
      ( "violations",
        Json.List (List.map (fun s -> Json.Str s) v.Chaos_checker.v_violations)
      );
    ]

let json_of_policy (p : Chaos.policy) =
  Json.Obj
    [
      ("deadline_us", Json.Float p.Chaos.deadline_us);
      ("retries", Json.Int p.Chaos.retries);
      ("hedge_us", Json.Float p.Chaos.hedge_us);
      ("shed_backlog_us", Json.Float p.Chaos.shed_backlog_us);
    ]

(** Chaos-run document ([mode = "chaos"]): the base run plus the
    degradation ledger and, when the checker ran, its verdict. *)
let chaos_to_json ?checker (c : Driver.chaos_result) =
  let base = c.Driver.c_base in
  Json.Obj
    ([
       ("schema", Json.Str schema);
       ("mode", Json.Str "chaos");
       ("config", json_of_config base.Driver.r_cfg);
       ("capacity_rps", Json.Float base.Driver.capacity_rps);
       ("run", json_of_run base);
       ( "chaos",
         Json.Obj
           [
             ( "faults",
               Json.List (List.map (fun s -> Json.Str s) c.Driver.c_faults) );
             ("policy", json_of_policy c.Driver.c_policy);
             ("successes", Json.Int c.Driver.successes);
             ("partials", Json.Int c.Driver.partials);
             ("failures", Json.Int c.Driver.failures);
             ("shed", Json.Int c.Driver.shed);
             ("availability", Json.Float c.Driver.availability);
             ("shed_rate", Json.Float c.Driver.shed_rate);
             ( "fail_reasons",
               Json.Obj
                 (List.map
                    (fun (k, v) -> (k, Json.Int v))
                    c.Driver.fail_reasons) );
             ( "phase_counts",
               Json.Obj
                 (List.map
                    (fun (k, v) -> (k, Json.Int v))
                    c.Driver.phase_counts) );
             ( "phases",
               Json.Obj
                 (List.map
                    (fun (ph, classes) -> (ph, json_of_classes classes))
                    c.Driver.phase_classes) );
             ("breaker_opens", Json.Int c.Driver.breaker_opens);
             ("breaker_transitions", Json.Int c.Driver.breaker_transitions);
             ("down_us", Json.Float c.Driver.down_us);
             ( "evictions_by",
               Json.List (List.map (fun n -> Json.Int n) c.Driver.evictions_by)
             );
           ] );
     ]
    @ match checker with None -> [] | Some v -> [ ("checker", json_of_verdict v) ])

(** [chaos_report c] is the per-phase SLO table: the ["all"] row for
    every phase plus per-class rows where the phase saw traffic, with
    the availability ledger, breaker activity, and the fault plan as
    notes. *)
let chaos_report ?checker (c : Driver.chaos_result) =
  let base = c.Driver.c_base in
  let cfg = base.Driver.r_cfg in
  let rows =
    List.concat_map
      (fun (ph, classes) ->
        List.filter_map
          (fun (cl : Driver.class_stats) ->
            if cl.Driver.cls <> "all" && cl.Driver.count = 0 then None
            else
              Some
                [
                  ph;
                  cl.Driver.cls;
                  string_of_int cl.Driver.count;
                  fmt_us cl.Driver.p50_us;
                  fmt_us cl.Driver.p95_us;
                  fmt_us cl.Driver.p99_us;
                  fmt_us cl.Driver.mean_queue_us;
                ])
          classes)
      c.Driver.phase_classes
  in
  let ledger =
    Printf.sprintf
      "availability %.4f: %d arrivals = %d ok (%d partial) + %d errors + %d \
       shed (%.1f%% shed)"
      c.Driver.availability base.Driver.requests c.Driver.successes
      c.Driver.partials c.Driver.failures c.Driver.shed
      (100.0 *. c.Driver.shed_rate)
  in
  let reasons =
    if c.Driver.fail_reasons = [] then "no request errors"
    else
      "errors: "
      ^ String.concat ", "
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=%d" k v)
             c.Driver.fail_reasons)
  in
  let breakers =
    Printf.sprintf
      "breakers: %d opens, %d transitions; partition down %.1fms total"
      c.Driver.breaker_opens c.Driver.breaker_transitions
      (c.Driver.down_us /. 1000.0)
  in
  let plan =
    if c.Driver.c_faults = [] then "fault plan: none (clean chaos run)"
    else "fault plan: " ^ String.concat "; " c.Driver.c_faults
  in
  let checker_note =
    match checker with
    | None -> []
    | Some v -> [ Format.asprintf "%a" Chaos_checker.pp_verdict v ]
  in
  Report.make ~id:"serve-chaos"
    ~title:
      (Printf.sprintf
         "Chaos serving: %d partitions, %s arrivals at %s rps, %.1fs \
          simulated (scale %s, seed %d)"
         cfg.Driver.partitions
         (Arrivals.string_of_kind cfg.Driver.arrivals)
         (fmt_rate base.Driver.rate_rps)
         cfg.Driver.duration_s cfg.Driver.scale.Lsm_harness.Scale.name
         cfg.Driver.seed)
    ~header:
      [ "phase"; "class"; "count"; "p50_ms"; "p95_ms"; "p99_ms"; "queue_ms" ]
    ~notes:
      ([ plan; ledger; reasons; breakers; resil_note base ] @ checker_note)
    rows
