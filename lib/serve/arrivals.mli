(** Open-loop arrival processes on the simulated clock: arrival instants
    are decided in advance from a configured rate, so offered load does
    not adapt to the system and saturation shows up as queueing delay. *)

type kind = [ `Poisson | `Uniform | `Bursty ]
(** [`Poisson]: exponential inter-arrival gaps (memoryless, bursty).
    [`Uniform]: deterministic gaps of exactly [1/rate].
    [`Bursty]: on/off modulated Poisson (MMPP-2) — exponential ON/OFF
    phases, Poisson arrivals at 4x the base rate during ON (20% of the
    time) and 0.25x during OFF, so the long-run mean rate equals the
    configured rate exactly.  Load spikes let chaos windows coincide
    with overload. *)

type t

val create : ?seed:int -> rate_rps:float -> kind -> t
(** @raise Invalid_argument if [rate_rps <= 0]. *)

val next : t -> float
(** The next arrival instant, in absolute simulated microseconds since
    the source was created.  Strictly non-decreasing. *)

val kind_of_string : string -> kind
(** @raise Invalid_argument for unknown names. *)

val string_of_kind : kind -> string
