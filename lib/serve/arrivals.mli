(** Open-loop arrival processes on the simulated clock: arrival instants
    are decided in advance from a configured rate, so offered load does
    not adapt to the system and saturation shows up as queueing delay. *)

type kind = [ `Poisson | `Uniform ]
(** [`Poisson]: exponential inter-arrival gaps (memoryless, bursty).
    [`Uniform]: deterministic gaps of exactly [1/rate]. *)

type t

val create : ?seed:int -> rate_rps:float -> kind -> t
(** @raise Invalid_argument if [rate_rps <= 0]. *)

val next : t -> float
(** The next arrival instant, in absolute simulated microseconds since
    the source was created.  Strictly non-decreasing. *)

val kind_of_string : string -> kind
(** @raise Invalid_argument for unknown names. *)

val string_of_kind : kind -> string
