(** Global flush coordinator (paper Sec. 2.3): one memory budget shared
    by all partitions' LSM memory components; when the aggregate reaches
    the budget, the largest memtable across partitions is flushed. *)

type part = {
  mem_bytes : unit -> int;  (** partition's current memory-component bytes *)
  flush : unit -> unit;  (** flush the partition's memory components *)
}

type t

val create : budget_bytes:int -> part array -> t
(** @raise Invalid_argument on an empty partition set or a budget < 1. *)

val budget_bytes : t -> int

val total : t -> int
(** Aggregate memory-component footprint, bytes. *)

val largest : t -> int
(** Index of the partition holding the most memory-component bytes. *)

val enforce : t -> unit
(** Restore [total t < budget_bytes] by flushing the largest memtable,
    repeatedly if needed.  Call after every write. *)

val evictions : t -> int
(** Coordinator-initiated flushes so far. *)

val evictions_of : t -> int -> int
(** [evictions_of t i]: evictions partition [i] absorbed — chaos
    attribution watches eviction pressure shift off a degraded
    partition. *)

val peak_bytes : t -> int
(** Largest aggregate footprint observed at an enforcement boundary —
    the invariant tests assert this stays under the budget. *)

val peak_pre_bytes : t -> int
(** Largest aggregate observed as enforcement began: how far a single
    write overshoots before its same-instant eviction. *)
