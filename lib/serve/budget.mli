(** Global flush coordinator (paper Sec. 2.3): one memory budget shared
    by all partitions' LSM memory components.  When the aggregate reaches
    the budget, the coordinator evicts at the finest granularity the
    partitions offer: whole memtables when unsharded, or single memory
    shards — smallest shard covering the deficit first — when sharded,
    which bounds the eviction overshoot by a shard instead of a whole
    partition. *)

type part = private {
  mem_bytes : unit -> int;  (** partition's current memory-component bytes *)
  flush : unit -> unit;  (** flush the partition's memory components *)
  shards : int;  (** memory shards the partition can evict singly *)
  shard_bytes : int -> int;  (** current bytes of one memory shard *)
  flush_shard : int -> unit;  (** flush one memory shard *)
}

val part :
  ?shards:int ->
  ?shard_bytes:(int -> int) ->
  ?flush_shard:(int -> unit) ->
  mem_bytes:(unit -> int) ->
  flush:(unit -> unit) ->
  unit ->
  part
(** Build a partition handle.  The shard hooks default to
    whole-partition granularity ([shards = 1]); pass all three to let
    the coordinator evict one shard at a time. *)

type t

val create : budget_bytes:int -> part array -> t
(** @raise Invalid_argument on an empty partition set or a budget < 1. *)

val budget_bytes : t -> int

val total : t -> int
(** Aggregate memory-component footprint, bytes. *)

val largest : t -> int
(** Index of the partition holding the most memory-component bytes. *)

val enforce : t -> unit
(** Restore [total t < budget_bytes]: unsharded, flush the largest
    memtable repeatedly; sharded, flush the smallest single shard that
    covers the deficit (or the largest shard when none does),
    repeatedly.  Call after every write. *)

val evictions : t -> int
(** Coordinator-initiated flushes so far. *)

val evictions_of : t -> int -> int
(** [evictions_of t i]: evictions partition [i] absorbed — chaos
    attribution watches eviction pressure shift off a degraded
    partition. *)

val peak_bytes : t -> int
(** Largest aggregate footprint observed at an enforcement boundary —
    the invariant tests assert this stays under the budget. *)

val peak_pre_bytes : t -> int
(** Largest aggregate observed as enforcement began: how far a single
    write overshoots before its same-instant eviction. *)
