(** Scheduled fault plans and front-door resilience policy for the
    serving stack.

    [lib/faultsim]'s plans are *announcement-counted*: they fire at the
    N-th occurrence of a named engine fault point, which is the right
    shape for exhaustively enumerating crash sites but the wrong one for
    chaos drills against live traffic.  A chaos plan instead fires on
    the open-loop run's own coordinates — a simulated instant or an
    arrival index — against a named partition, and describes a *regime*
    (an outage, an intermittent window, a slow device) rather than a
    single point.  The serving driver interprets the plan; this module
    owns the vocabulary: the spec grammar, the per-partition circuit
    breaker, and the front-door policy knobs (deadline, retry budget,
    hedging, admission control). *)

(* ------------------------------------------------------------------ *)
(* Fault plans *)

type trigger =
  | At_us of float  (** fire at the first arrival at or after this instant *)
  | At_arrival of int  (** fire at the N-th arrival (1-based) *)

type action =
  | Crash
      (** crash the partition and route it through durable-frontier
          recovery while the rest of the fleet keeps serving *)
  | Io_window of { dur_us : float; fails : int }
      (** for [dur_us], every [fails] consecutive announcements of an
          [io.*] point on the partition raise a transient I/O error
          (then three times as many pass).  [fails] at or under the
          retry budget is absorbed as latency; above it, requests
          error. *)
  | Corrupt
      (** silently corrupt the next page written on the partition;
          detection, quarantine, and healing follow the engine's
          checksum path *)
  | Slow of { dur_us : float; factor : float }
      (** multiply the partition's device I/O time by [factor] for
          [dur_us] — a degraded disk, no errors *)

type fault = { part : int; trigger : trigger; action : action }

exception Overloaded of { backlog_us : float; cap_us : float }
(** The typed admission-control rejection: the request was shed because
    every partition it needed had more queued work than the configured
    cap.  Counted, never silently dropped. *)

(* ------------------------------------------------------------------ *)
(* Spec grammar *)

let usage =
  "chaos spec: one or more faults separated by ';' or ',':\n\
  \  crash@pP@tT          crash partition P at instant T, recover durably\n\
  \  crash@pP@nN          same, at the N-th arrival\n\
  \  io@pP@tT+D[!K]       intermittent I/O errors on P in [T, T+D):\n\
  \                       K consecutive announcements fail (default 6;\n\
  \                       <= 3 is absorbed by engine retries)\n\
  \  corrupt@pP@tT        silently corrupt P's next page write after T\n\
  \  slow@pP@tT+D[*F]     multiply P's device I/O time by F (default 8)\n\
  \                       in [T, T+D)\n\
  \  times T, D take a unit: us, ms, or s (e.g. t150ms, +40ms)"

let parse_time s =
  let num_of s =
    match float_of_string_opt s with
    | Some f when f >= 0.0 -> Ok f
    | _ -> Error (Printf.sprintf "bad time %S" s)
  in
  let strip suffix =
    String.sub s 0 (String.length s - String.length suffix)
  in
  if Filename.check_suffix s "us" then num_of (strip "us")
  else if Filename.check_suffix s "ms" then
    Result.map (fun f -> f *. 1e3) (num_of (strip "ms"))
  else if Filename.check_suffix s "s" then
    Result.map (fun f -> f *. 1e6) (num_of (strip "s"))
  else Error (Printf.sprintf "time %S needs a unit (us|ms|s)" s)

let parse_trigger s =
  let n = String.length s in
  if n < 2 then Error (Printf.sprintf "bad trigger %S" s)
  else
    match s.[0] with
    | 't' ->
        Result.map (fun us -> At_us us) (parse_time (String.sub s 1 (n - 1)))
    | 'n' -> (
        match int_of_string_opt (String.sub s 1 (n - 1)) with
        | Some k when k >= 1 -> Ok (At_arrival k)
        | _ -> Error (Printf.sprintf "bad arrival index in %S" s))
    | _ -> Error (Printf.sprintf "trigger %S must start with 't' or 'n'" s)

let parse_part s =
  let n = String.length s in
  if n >= 2 && s.[0] = 'p' then
    match int_of_string_opt (String.sub s 1 (n - 1)) with
    | Some p when p >= 0 -> Ok p
    | _ -> Error (Printf.sprintf "bad partition %S" s)
  else Error (Printf.sprintf "partition %S must look like p0, p1, ..." s)

(* Split [s] once on [c], from the left. *)
let split1 c s =
  match String.index_opt s c with
  | None -> None
  | Some i ->
      Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let ( let* ) = Result.bind

(* TRIG+DUR with an optional [mark]-separated tail: "t50ms+40ms!6". *)
let parse_window ~mark s =
  match split1 '+' s with
  | None -> Error (Printf.sprintf "%S needs a window: TRIG+DUR" s)
  | Some (trig, rest) ->
      let* trigger = parse_trigger trig in
      let dur, tail =
        match split1 mark rest with
        | None -> (rest, None)
        | Some (d, t) -> (d, Some t)
      in
      let* dur_us = parse_time dur in
      if dur_us <= 0.0 then Error (Printf.sprintf "window %S must be > 0" dur)
      else Ok (trigger, dur_us, tail)

let parse_one s =
  match String.split_on_char '@' s with
  | [ "crash"; part; trig ] ->
      let* part = parse_part part in
      let* trigger = parse_trigger trig in
      Ok { part; trigger; action = Crash }
  | [ "corrupt"; part; trig ] ->
      let* part = parse_part part in
      let* trigger = parse_trigger trig in
      Ok { part; trigger; action = Corrupt }
  | [ "io"; part; window ] ->
      let* part = parse_part part in
      let* trigger, dur_us, tail = parse_window ~mark:'!' window in
      let* fails =
        match tail with
        | None -> Ok 6
        | Some k -> (
            match int_of_string_opt k with
            | Some k when k >= 1 -> Ok k
            | _ -> Error (Printf.sprintf "bad fail count %S" k))
      in
      Ok { part; trigger; action = Io_window { dur_us; fails } }
  | [ "slow"; part; window ] ->
      let* part = parse_part part in
      let* trigger, dur_us, tail = parse_window ~mark:'*' window in
      let* factor =
        match tail with
        | None -> Ok 8.0
        | Some f -> (
            match float_of_string_opt f with
            | Some f when f > 1.0 -> Ok f
            | _ -> Error (Printf.sprintf "slow factor %S must be > 1" f))
      in
      Ok { part; trigger; action = Slow { dur_us; factor } }
  | kind :: _ ->
      Error
        (Printf.sprintf "unknown fault %S (crash|io|corrupt|slow)" kind)
  | [] -> Error "empty fault"

(** [parse spec] reads a ';'- or ','-separated fault list.  Errors carry
    the offending element; append {!usage} for the CLI. *)
let parse spec =
  let elems =
    String.split_on_char ';' spec
    |> List.concat_map (String.split_on_char ',')
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if elems = [] then Error "empty chaos spec"
  else
    List.fold_left
      (fun acc e ->
        let* acc = acc in
        let* f = parse_one e in
        Ok (f :: acc))
      (Ok []) elems
    |> Result.map List.rev

let describe_trigger = function
  | At_us t -> Printf.sprintf "t=%.0fus" t
  | At_arrival n -> Printf.sprintf "arrival %d" n

let describe f =
  match f.action with
  | Crash -> Printf.sprintf "crash p%d @ %s" f.part (describe_trigger f.trigger)
  | Io_window { dur_us; fails } ->
      Printf.sprintf "io p%d @ %s +%.0fus fails=%d" f.part
        (describe_trigger f.trigger) dur_us fails
  | Corrupt ->
      Printf.sprintf "corrupt p%d @ %s" f.part (describe_trigger f.trigger)
  | Slow { dur_us; factor } ->
      Printf.sprintf "slow p%d @ %s +%.0fus x%.1f" f.part
        (describe_trigger f.trigger) dur_us factor

(* ------------------------------------------------------------------ *)
(* Front-door policy *)

type policy = {
  deadline_us : float;
      (** per-request deadline for reads; answers later than this are
          errors, and a request whose queueing alone exceeds it is
          failed without executing.  0 disables. *)
  retries : int;  (** bounded re-attempts after a partition error *)
  hedge_us : float;
      (** a read whose first attempt ran longer than this gets one
          hedged re-attempt against the same partition; the reply
          latency is the earlier of the two, the partition pays for
          both.  0 = auto (half the deadline); negative disables. *)
  shed_backlog_us : float;
      (** admission control: shed a request (typed {!Overloaded}) when
          every partition it needs has more than this much queued work.
          0 disables. *)
}

let default_policy =
  { deadline_us = 0.0; retries = 1; hedge_us = 0.0; shed_backlog_us = 0.0 }

(** [hedge_trigger_us p] resolves the hedging threshold: explicit,
    derived from the deadline, or disabled ([infinity]). *)
let hedge_trigger_us p =
  if p.hedge_us > 0.0 then p.hedge_us
  else if p.hedge_us < 0.0 then infinity
  else if p.deadline_us > 0.0 then p.deadline_us /. 2.0
  else infinity

(* ------------------------------------------------------------------ *)
(* Per-partition circuit breaker *)

module Breaker = struct
  (** Error-budget circuit breaker, per partition.  Closed counts
      outcomes over a rolling window and opens when the error fraction
      exceeds the budget; Open rejects without touching the partition
      until a cooldown elapses; Half-open lets probe requests through —
      one success closes, one failure re-opens.  All timestamps are the
      driver's arrival clock, so breaker behaviour is deterministic for
      a seed. *)

  type state = Closed | Open | Half_open

  let state_name = function
    | Closed -> "closed"
    | Open -> "open"
    | Half_open -> "half_open"

  type t = {
    window : int;  (** outcomes per evaluation window *)
    threshold : float;  (** error fraction that trips the breaker *)
    min_events : int;  (** outcomes required before tripping *)
    cooldown_us : float;  (** Open -> Half-open delay *)
    mutable st : state;
    mutable errors : int;
    mutable total : int;
    mutable opened_at : float;
    mutable opens : int;
    mutable transitions : (float * state) list;  (** newest first *)
  }

  let create ?(window = 32) ?(threshold = 0.5) ?(min_events = 8)
      ?(cooldown_us = 20_000.0) () =
    if window < 1 || min_events < 1 then
      invalid_arg "Breaker.create: window and min_events >= 1";
    if not (threshold > 0.0 && threshold <= 1.0) then
      invalid_arg "Breaker.create: threshold in (0, 1]";
    {
      window;
      threshold;
      min_events;
      cooldown_us;
      st = Closed;
      errors = 0;
      total = 0;
      opened_at = 0.0;
      opens = 0;
      transitions = [];
    }

  let state t = t.st
  let opens t = t.opens
  let transitions t = List.rev t.transitions

  let goto t ~now st =
    t.st <- st;
    if st = Open then begin
      t.opened_at <- now;
      t.opens <- t.opens + 1
    end;
    t.transitions <- (now, st) :: t.transitions

  (** [admit t ~now] gates a request: [`Allow] (closed), [`Probe]
      (half-open — execute it, its outcome decides the state), or
      [`Reject] (open, cooling down). *)
  let admit t ~now =
    match t.st with
    | Closed -> `Allow
    | Half_open -> `Probe
    | Open ->
        if now >= t.opened_at +. t.cooldown_us then begin
          goto t ~now Half_open;
          `Probe
        end
        else `Reject

  (** [record t ~now ~ok] feeds an executed request's outcome back.
      Rejected requests are not recorded — they never ran. *)
  let record t ~now ~ok =
    match t.st with
    | Open -> ()
    | Half_open -> if ok then goto t ~now Closed else goto t ~now Open
    | Closed ->
        t.total <- t.total + 1;
        if not ok then t.errors <- t.errors + 1;
        if
          t.total >= t.min_events
          && Float.of_int t.errors
             >= t.threshold *. Float.of_int t.total
        then begin
          t.errors <- 0;
          t.total <- 0;
          goto t ~now Open
        end
        else if t.total >= t.window then begin
          (* Window full without tripping: forget it. *)
          t.errors <- 0;
          t.total <- 0
        end
end
