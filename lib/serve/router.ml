(** The front door: requests enter here and are routed over
    [Core.Partitioned] (Sec. 2.2's hash-partitioned cluster) under the
    global memory budget of {!Budget}.

    Primary-key requests touch exactly the owning partition; multi-gets
    group keys by owner and use the batched point-lookup machinery of
    Sec. 3.2 within each partition; secondary and time-range queries fan
    out to every partition.  Each request reports the simulated time it
    consumed *per partition*, so an open-loop driver can model
    partitions as parallel servers: a request's service time is the max
    over the partitions it involved, and a budget-triggered flush on
    some other partition shows up on that partition's clock, delaying
    only requests routed there. *)

module Make (R : Lsm_core.Record.S) = struct
  module P = Lsm_core.Partitioned.Make (R)

  type request =
    | Insert of R.t
    | Upsert of R.t
    | Delete of int
    | Point of int
    | Multi_get of int array
    | Secondary of { sec : string; lo : int; hi : int; mode : P.D.validation_mode }
    | Time_range of { tlo : int; thi : int }

  type reply =
    | Wrote
    | Rejected  (** insert hit the uniqueness check *)
    | Found of R.t option
    | Rows of int

  (** One budget-triggered eviction observed during a request, for the
      telemetry timeline.  [ev_start_off_us] is the offset of the flush
      start from the victim partition's clock at request entry, so an
      open-loop driver can place the eviction on its own arrival
      timeline ([request_start + offset]). *)
  type eviction = {
    ev_part : int;
    ev_start_off_us : float;
    ev_dur_us : float;
    ev_bytes : int;  (** memtable bytes released *)
    ev_flushes : int;  (** component flushes the eviction performed *)
    ev_merges : int;  (** merges it cascaded into *)
    ev_merge_bytes : int;  (** bytes rewritten by those merges *)
  }

  type outcome = {
    reply : reply;
    service_us : float array;
        (** simulated time the request consumed on each partition
            (including any budget-triggered flush it caused there) *)
    touched : int list;  (** structurally involved partitions *)
    evictions : eviction list;
        (** budget evictions this request triggered, oldest first *)
  }

  type t = {
    p : P.t;
    budget : Budget.t;
    lookup : P.D.Prim.lookup_opts;
    before : float array;  (** per-partition clock snapshot scratch *)
    evlog : eviction list ref;  (** evictions of the current request *)
  }

  (** [create ~mk_env ~partitions ~budget_bytes cfg] builds the cluster
      with per-partition auto-maintenance *disabled*: all flushes and
      merges are driven by the shared-budget coordinator.  [cfg]'s own
      [mem_budget] is ignored in favour of [budget_bytes]. *)
  let create ?filter_key ?(secondaries = []) ?lookup ~mk_env ~partitions
      ~budget_bytes cfg =
    let p = P.create ?filter_key ~secondaries ~mk_env ~partitions cfg in
    P.set_auto_maintenance p false;
    for i = 0 to partitions - 1 do
      Lsm_sim.Env.set_mem_budget (P.env p i) (Some budget_bytes)
    done;
    let before = Array.make partitions 0.0 in
    let evlog = ref [] in
    let budget =
      Budget.create ~budget_bytes
        (Array.init partitions (fun i ->
             {
               Budget.mem_bytes = (fun () -> P.mem_bytes_of p i);
               flush =
                 (* Instrumented: record what each eviction cost and
                    released, on the victim partition's clock.  Pure
                    reads around the flush — the simulated costs are
                    unchanged. *)
                 (fun () ->
                   let env = P.env p i in
                   let t0 = Lsm_sim.Env.now_us env in
                   let bytes0 = P.mem_bytes_of p i in
                   let amp0 = Lsm_obs.Ampstats.copy (Lsm_sim.Env.amp env) in
                   P.flush_partition p i;
                   let d =
                     Lsm_obs.Ampstats.diff ~since:amp0 (Lsm_sim.Env.amp env)
                   in
                   evlog :=
                     {
                       ev_part = i;
                       ev_start_off_us = t0 -. before.(i);
                       ev_dur_us = Lsm_sim.Env.now_us env -. t0;
                       ev_bytes = max 0 (bytes0 - P.mem_bytes_of p i);
                       ev_flushes = d.Lsm_obs.Ampstats.flushes;
                       ev_merges = d.Lsm_obs.Ampstats.merges;
                       ev_merge_bytes = d.Lsm_obs.Ampstats.merge_written_bytes;
                     }
                     :: !evlog);
             }))
    in
    {
      p;
      budget;
      lookup =
        (match lookup with Some l -> l | None -> P.D.Prim.default_lookup_opts);
      before;
      evlog;
    }

  let partitioned t = t.p
  let budget t = t.budget

  let all_partitions t = List.init (P.partitions t.p) Fun.id

  (* Owning partitions of a key set, deduplicated. *)
  let owners t pks =
    let n = P.partitions t.p in
    let seen = Array.make n false in
    Array.iter (fun pk -> seen.(P.route t.p pk) <- true) pks;
    List.filter (fun i -> seen.(i)) (List.init n Fun.id)

  let is_write = function
    | Insert _ | Upsert _ | Delete _ -> true
    | Point _ | Multi_get _ | Secondary _ | Time_range _ -> false

  (** [exec t req] runs one request to completion and reports where the
      simulated time went. *)
  let exec t req =
    let n = P.partitions t.p in
    t.evlog := [];
    for i = 0 to n - 1 do
      t.before.(i) <- Lsm_sim.Env.now_us (P.env t.p i)
    done;
    let reply, touched =
      match req with
      | Insert r ->
          let reply =
            match P.insert t.p r with
            | `Inserted -> Wrote
            | `Duplicate -> Rejected
          in
          (reply, [ P.route t.p (R.primary_key r) ])
      | Upsert r ->
          P.upsert t.p r;
          (Wrote, [ P.route t.p (R.primary_key r) ])
      | Delete pk ->
          P.delete t.p ~pk;
          (Wrote, [ P.route t.p pk ])
      | Point pk -> (Found (P.point_query t.p pk), [ P.route t.p pk ])
      | Multi_get pks ->
          let found = ref 0 in
          P.point_query_batch ~lookup:t.lookup t.p pks ~emit:(fun _ r ->
              if r <> None then incr found);
          (Rows !found, owners t pks)
      | Secondary { sec; lo; hi; mode } ->
          let rows = P.query_secondary t.p ~sec ~lo ~hi ~mode ~lookup:t.lookup () in
          (Rows (List.length rows), all_partitions t)
      | Time_range { tlo; thi } ->
          let rows = P.query_time_range t.p ~tlo ~thi ~f:(fun _ -> ()) in
          (Rows rows, all_partitions t)
    in
    if is_write req then Budget.enforce t.budget;
    let service_us =
      Array.init n (fun i -> Lsm_sim.Env.now_us (P.env t.p i) -. t.before.(i))
    in
    { reply; service_us; touched; evictions = List.rev !(t.evlog) }
end
