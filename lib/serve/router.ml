(** The front door: requests enter here and are routed over
    [Core.Partitioned] (Sec. 2.2's hash-partitioned cluster) under the
    global memory budget of {!Budget}.

    Primary-key requests touch exactly the owning partition; multi-gets
    group keys by owner and use the batched point-lookup machinery of
    Sec. 3.2 within each partition; secondary and time-range queries fan
    out to every partition.  Each request reports the simulated time it
    consumed *per partition*, so an open-loop driver can model
    partitions as parallel servers: a request's service time is the max
    over the partitions it involved, and a budget-triggered flush on
    some other partition shows up on that partition's clock, delaying
    only requests routed there. *)

module Make (R : Lsm_core.Record.S) = struct
  module P = Lsm_core.Partitioned.Make (R)
  module T = Lsm_core.Txn_dataset.Make (R) (P.D)

  type request =
    | Insert of R.t
    | Upsert of R.t
    | Delete of int
    | Point of int
    | Multi_get of int array
    | Secondary of { sec : string; lo : int; hi : int; mode : P.D.validation_mode }
    | Time_range of { tlo : int; thi : int }

  type reply =
    | Wrote
    | Rejected  (** insert hit the uniqueness check *)
    | Found of R.t option
    | Rows of int

  (** One budget-triggered eviction observed during a request, for the
      telemetry timeline.  [ev_start_off_us] is the offset of the flush
      start from the victim partition's clock at request entry, so an
      open-loop driver can place the eviction on its own arrival
      timeline ([request_start + offset]). *)
  type eviction = {
    ev_part : int;
    ev_start_off_us : float;
    ev_dur_us : float;
    ev_bytes : int;  (** memtable bytes released *)
    ev_flushes : int;  (** component flushes the eviction performed *)
    ev_merges : int;  (** merges it cascaded into *)
    ev_merge_bytes : int;  (** bytes rewritten by those merges *)
  }

  type outcome = {
    reply : reply;
    service_us : float array;
        (** simulated time the request consumed on each partition
            (including any budget-triggered flush it caused there) *)
    touched : int list;  (** structurally involved partitions *)
    evictions : eviction list;
        (** budget evictions this request triggered, oldest first *)
  }

  type t = {
    p : P.t;
    txns : T.t array;
        (** durable per-partition transactional wrappers; [[||]] when
            the router is not durable *)
    budget : Budget.t;
    lookup : P.D.Prim.lookup_opts;
    before : float array;  (** per-partition clock snapshot scratch *)
    evlog : eviction list ref;  (** evictions of the current request *)
  }

  (** [create ~mk_env ~partitions ~budget_bytes cfg] builds the cluster
      with per-partition auto-maintenance *disabled*: all flushes and
      merges are driven by the shared-budget coordinator.  [cfg]'s own
      [mem_budget] is ignored in favour of [budget_bytes].

      With [~durable:true] every partition is wrapped in a
      {!Lsm_core.Txn_dataset} (serial WAL, one fsync per auto-committed
      write), so every acknowledged write is durable and a partition can
      {!crash_partition} and {!recover_partition} mid-run through the
      durable-frontier recovery path.  Requires a Mutable-bitmap or
      Validation strategy. *)
  let create ?filter_key ?(secondaries = []) ?lookup ?(durable = false)
      ~mk_env ~partitions ~budget_bytes cfg =
    let p = P.create ?filter_key ~secondaries ~mk_env ~partitions cfg in
    P.set_auto_maintenance p false;
    let txns =
      if durable then Array.init partitions (fun i -> T.create (P.partition p i))
      else [||]
    in
    for i = 0 to partitions - 1 do
      Lsm_sim.Env.set_mem_budget (P.env p i) (Some budget_bytes)
    done;
    let before = Array.make partitions 0.0 in
    let evlog = ref [] in
    (* Instrumented eviction: record what the flush cost and released,
       on the victim partition's clock.  Pure reads around the flush —
       the simulated costs are unchanged.  Durable partitions flush
       through the WAL wrapper (log forced before data). *)
    let instrumented i do_flush =
      let env = P.env p i in
      let t0 = Lsm_sim.Env.now_us env in
      let bytes0 = P.mem_bytes_of p i in
      let amp0 = Lsm_obs.Ampstats.copy (Lsm_sim.Env.amp env) in
      do_flush ();
      let d = Lsm_obs.Ampstats.diff ~since:amp0 (Lsm_sim.Env.amp env) in
      evlog :=
        {
          ev_part = i;
          ev_start_off_us = t0 -. before.(i);
          ev_dur_us = Lsm_sim.Env.now_us env -. t0;
          ev_bytes = max 0 (bytes0 - P.mem_bytes_of p i);
          ev_flushes = d.Lsm_obs.Ampstats.flushes;
          ev_merges = d.Lsm_obs.Ampstats.merges;
          ev_merge_bytes = d.Lsm_obs.Ampstats.merge_written_bytes;
        }
        :: !evlog
    in
    let budget =
      Budget.create ~budget_bytes
        (Array.init partitions (fun i ->
             Budget.part
               ~shards:(P.mem_shards p)
               ~shard_bytes:(fun s -> P.shard_bytes_of p i s)
               ~flush_shard:(fun s ->
                 instrumented i (fun () ->
                     if durable then T.flush_shard txns.(i) s
                     else P.flush_partition_shard p i s))
               ~mem_bytes:(fun () -> P.mem_bytes_of p i)
               ~flush:(fun () ->
                 instrumented i (fun () ->
                     if durable then T.flush txns.(i)
                     else P.flush_partition p i))
               ()))
    in
    {
      p;
      txns;
      budget;
      lookup =
        (match lookup with Some l -> l | None -> P.D.Prim.default_lookup_opts);
      before;
      evlog;
    }

  let partitioned t = t.p
  let budget t = t.budget
  let durable t = Array.length t.txns > 0

  let all_partitions t = List.init (P.partitions t.p) Fun.id

  (* Owning partitions of a key set, deduplicated. *)
  let owners t pks =
    let n = P.partitions t.p in
    let seen = Array.make n false in
    Array.iter (fun pk -> seen.(P.route t.p pk) <- true) pks;
    List.filter (fun i -> seen.(i)) (List.init n Fun.id)

  let is_write = function
    | Insert _ | Upsert _ | Delete _ -> true
    | Point _ | Multi_get _ | Secondary _ | Time_range _ -> false

  (* Write primitives, routed through the WAL wrapper when durable (an
     auto-committed transaction per write: acked = durable). *)
  let do_insert t r =
    let i = P.route t.p (R.primary_key r) in
    if durable t then
      if P.D.key_exists (P.partition t.p i) (R.primary_key r) then `Duplicate
      else begin
        T.upsert_auto t.txns.(i) r;
        `Inserted
      end
    else P.insert t.p r

  let do_upsert t r =
    if durable t then T.upsert_auto t.txns.(P.route t.p (R.primary_key r)) r
    else P.upsert t.p r

  let do_delete t ~pk =
    if durable t then T.delete_auto t.txns.(P.route t.p pk) ~pk
    else P.delete t.p ~pk

  (** [exec t req] runs one request to completion and reports where the
      simulated time went. *)
  let exec t req =
    let n = P.partitions t.p in
    t.evlog := [];
    for i = 0 to n - 1 do
      t.before.(i) <- Lsm_sim.Env.now_us (P.env t.p i)
    done;
    let reply, touched =
      match req with
      | Insert r ->
          let reply =
            match do_insert t r with
            | `Inserted -> Wrote
            | `Duplicate -> Rejected
          in
          (reply, [ P.route t.p (R.primary_key r) ])
      | Upsert r ->
          do_upsert t r;
          (Wrote, [ P.route t.p (R.primary_key r) ])
      | Delete pk ->
          do_delete t ~pk;
          (Wrote, [ P.route t.p pk ])
      | Point pk -> (Found (P.point_query t.p pk), [ P.route t.p pk ])
      | Multi_get pks ->
          let found = ref 0 in
          P.point_query_batch ~lookup:t.lookup t.p pks ~emit:(fun _ r ->
              if r <> None then incr found);
          (Rows !found, owners t pks)
      | Secondary { sec; lo; hi; mode } ->
          let rows = P.query_secondary t.p ~sec ~lo ~hi ~mode ~lookup:t.lookup () in
          (Rows (List.length rows), all_partitions t)
      | Time_range { tlo; thi } ->
          let rows = P.query_time_range t.p ~tlo ~thi ~f:(fun _ -> ()) in
          (Rows rows, all_partitions t)
    in
    if is_write req then Budget.enforce t.budget;
    let service_us =
      Array.init n (fun i -> Lsm_sim.Env.now_us (P.env t.p i) -. t.before.(i))
    in
    { reply; service_us; touched; evictions = List.rev !(t.evlog) }

  (* ------------------------------------------------------------------ *)
  (* Chaos session API: the degraded front door executes a request in
     per-partition pieces (so one failed partition costs only its own
     slots), with the driver deciding gating, retries, and hedging
     between pieces.  [snapshot]/[service_since] bracket the whole
     request exactly like [exec] does internally. *)

  let snapshot t =
    t.evlog := [];
    for i = 0 to P.partitions t.p - 1 do
      t.before.(i) <- Lsm_sim.Env.now_us (P.env t.p i)
    done

  let service_since t =
    Array.init (P.partitions t.p) (fun i ->
        Lsm_sim.Env.now_us (P.env t.p i) -. t.before.(i))

  let evictions_since t = List.rev !(t.evlog)

  let route t pk = P.route t.p pk

  (** [targets t req] is the partition set the request structurally
      needs (fan-outs: every partition). *)
  let targets t req =
    match req with
    | Insert r | Upsert r -> [ P.route t.p (R.primary_key r) ]
    | Delete pk | Point pk -> [ P.route t.p pk ]
    | Multi_get pks -> owners t pks
    | Secondary _ | Time_range _ -> all_partitions t

  (** [exec_write t req] performs a (single-partition) write — acked
      means durable when the router is.  Budget enforcement is the
      caller's separate step: the write is already acknowledged when an
      eviction it triggers fails, and conflating the two would make an
      eviction error look like a lost write. *)
  let exec_write t req =
    match req with
    | Insert r -> (
        match do_insert t r with `Inserted -> Wrote | `Duplicate -> Rejected)
    | Upsert r ->
        do_upsert t r;
        Wrote
    | Delete pk ->
        do_delete t ~pk;
        Wrote
    | _ -> invalid_arg "Router.exec_write: not a write"

  let point_part t pk = P.point_query t.p pk

  (** [multi_get_part t i pks] answers the multi-get slots owned by
      partition [i], as (key, record option) pairs in fetch order. *)
  let multi_get_part t i pks =
    let out = ref [] in
    P.point_query_batch_part ~lookup:t.lookup t.p i pks ~emit:(fun pk r ->
        out := (pk, r) :: !out);
    List.rev !out

  let secondary_part t i ~sec ~lo ~hi ~mode =
    P.query_secondary_part t.p i ~sec ~lo ~hi ~mode ~lookup:t.lookup ()

  let time_range_part t i ~tlo ~thi =
    P.query_time_range_part t.p i ~tlo ~thi ~f:(fun _ -> ())

  (* Partition lifecycle under chaos (durable routers only). *)

  let require_durable t op =
    if not (durable t) then
      invalid_arg (Printf.sprintf "Router.%s: requires a durable router" op)

  (** [crash_partition t i] loses partition [i]'s memory state (memory
      components vanish, bitmaps revert to the last checkpoint). *)
  let crash_partition t i =
    require_durable t "crash_partition";
    T.crash t.txns.(i)

  (** [recover_partition t i] replays the WAL past the durable frontier;
      its simulated cost lands on partition [i]'s clock. *)
  let recover_partition t i =
    require_durable t "recover_partition";
    T.recover t.txns.(i)

  (** [wal_length t i] is the record count of partition [i]'s WAL
      (durable routers only): recovery's log-scan cost scales with it. *)
  let wal_length t i =
    require_durable t "wal_length";
    Lsm_txn.Wal.length (T.wal t.txns.(i))

  let heal_partition t i = P.D.heal (P.partition t.p i)
  let quarantined t i = P.D.quarantined_count (P.partition t.p i)
end
