(** The global flush coordinator (paper Sec. 2.3): all partitions share
    one memory budget for their LSM memory components.

    Out of the box every partition's dataset budgets independently
    ([Dataset.maybe_flush] against its own [mem_budget]), which is N
    budgets, not one.  The coordinator instead watches the *aggregate*
    footprint and, whenever it reaches the shared budget, evicts across
    partitions until the aggregate is back under budget.  Callers disable
    per-partition auto-maintenance and call {!enforce} after every write.

    The eviction unit depends on what the partitions offer:

    - unsharded partitions ([shards = 1] everywhere): flush the largest
      memtable across partitions — the policy AsterixDB uses for its
      shared memory-component pool;
    - sharded partitions: a budget trip typically overshoots by one
      write's worth of bytes, so dumping a whole partition's memtables
      evicts far more memory than the deficit requires.  Instead, evict
      the smallest-sufficient *set of shards*, greedily largest shard
      first across partitions: one shard usually covers the deficit, so
      each eviction stalls O(memtable/shards) bytes instead of a whole
      partition, while still releasing enough headroom that evictions
      never degenerate into one per write (which is what picking the
      minimum covering shard would do — the deficit is one write's
      worth, so the smallest shard always "suffices" and the budget
      thrashes tiny flushes). *)

type part = {
  mem_bytes : unit -> int;  (** partition's current memory-component bytes *)
  flush : unit -> unit;  (** flush the partition's memory components *)
  shards : int;  (** memory shards the partition can evict singly *)
  shard_bytes : int -> int;  (** current bytes of one memory shard *)
  flush_shard : int -> unit;  (** flush one memory shard *)
}

(** [part ~mem_bytes ~flush ()] builds a partition handle; the shard
    hooks default to whole-partition granularity ([shards = 1]). *)
let part ?(shards = 1) ?shard_bytes ?flush_shard ~mem_bytes ~flush () =
  {
    mem_bytes;
    flush;
    shards = max 1 shards;
    shard_bytes =
      (match shard_bytes with Some f -> f | None -> fun _ -> mem_bytes ());
    flush_shard =
      (match flush_shard with Some f -> f | None -> fun _ -> flush ());
  }

type t = {
  budget_bytes : int;
  parts : part array;
  mutable evictions : int;
  evictions_by : int array;  (** per-partition eviction counts *)
  mutable peak_bytes : int;  (** max aggregate observed after enforcement *)
  mutable peak_pre_bytes : int;
      (** max aggregate observed when enforcement began: how far a single
          write overshoots before its same-instant eviction *)
}

let create ~budget_bytes parts =
  if budget_bytes < 1 then invalid_arg "Budget.create: budget_bytes >= 1";
  if Array.length parts = 0 then invalid_arg "Budget.create: no partitions";
  {
    budget_bytes;
    parts;
    evictions = 0;
    evictions_by = Array.make (Array.length parts) 0;
    peak_bytes = 0;
    peak_pre_bytes = 0;
  }

let budget_bytes t = t.budget_bytes
let evictions t = t.evictions

(** [evictions_of t i] is how many coordinator evictions partition [i]
    absorbed — chaos attribution uses it to see eviction pressure shift
    off a degraded partition. *)
let evictions_of t i = t.evictions_by.(i)
let peak_bytes t = t.peak_bytes
let peak_pre_bytes t = t.peak_pre_bytes

(** [total t] is the aggregate memory-component footprint in bytes. *)
let total t =
  Array.fold_left (fun acc p -> acc + p.mem_bytes ()) 0 t.parts

(** [largest t] is the index of the partition holding the most
    memory-component bytes (ties break low). *)
let largest t =
  let best = ref 0 and best_bytes = ref min_int in
  Array.iteri
    (fun i p ->
      let b = p.mem_bytes () in
      if b > !best_bytes then begin
        best := i;
        best_bytes := b
      end)
    t.parts;
  !best

let record_eviction t i =
  t.evictions <- t.evictions + 1;
  t.evictions_by.(i) <- t.evictions_by.(i) + 1

(* Whole-memtable eviction: flush the largest partition until under
   budget (the original policy; the only one available unsharded). *)
let rec drain_partitions t =
  if total t >= t.budget_bytes then begin
    let i = largest t in
    if t.parts.(i).mem_bytes () > 0 then begin
      t.parts.(i).flush ();
      record_eviction t i;
      drain_partitions t
    end
    (* else: nothing evictable — all memory already on disk; the budget
       is smaller than the engine's irreducible footprint. *)
  end

(* Shard-granular eviction: flush the largest shard across partitions
   (ties break low partition, then low shard) and recurse — greedily
   building the smallest-sufficient shard set.  One shard usually covers
   the deficit, so this never dumps a whole partition's memtables. *)
let rec drain_shards t =
  if total t >= t.budget_bytes then begin
    let best = ref None in
    Array.iteri
      (fun i p ->
        for s = 0 to p.shards - 1 do
          let b = p.shard_bytes s in
          if b > 0 then
            match !best with
            | Some (bb, _, _) when bb >= b -> ()
            | _ -> best := Some (b, i, s)
        done)
      t.parts;
    match !best with
    | Some (_, i, s) ->
        t.parts.(i).flush_shard s;
        record_eviction t i;
        drain_shards t
    | None -> ()
  end

(** [enforce t] restores the invariant [total t < budget_bytes] by
    evicting across partitions, repeatedly if one eviction is not
    enough.  Flushing happens "within" the triggering write's instant:
    its simulated cost lands on the flushed partition's clock, exactly
    like a synchronous flush in the single-dataset path. *)
let enforce t =
  let pre = total t in
  if pre > t.peak_pre_bytes then t.peak_pre_bytes <- pre;
  if Array.exists (fun p -> p.shards > 1) t.parts then drain_shards t
  else drain_partitions t;
  let post = total t in
  if post > t.peak_bytes then t.peak_bytes <- post
