(** The global flush coordinator (paper Sec. 2.3): all partitions share
    one memory budget for their LSM memory components.

    Out of the box every partition's dataset budgets independently
    ([Dataset.maybe_flush] against its own [mem_budget]), which is N
    budgets, not one.  The coordinator instead watches the *aggregate*
    footprint and, whenever it reaches the shared budget, evicts the
    largest memtable across partitions — the eviction policy AsterixDB
    uses for its shared memory-component pool — until the aggregate is
    back under budget.  Callers disable per-partition auto-maintenance
    and call {!enforce} after every write. *)

type part = {
  mem_bytes : unit -> int;  (** partition's current memory-component bytes *)
  flush : unit -> unit;  (** flush the partition's memory components *)
}

type t = {
  budget_bytes : int;
  parts : part array;
  mutable evictions : int;
  evictions_by : int array;  (** per-partition eviction counts *)
  mutable peak_bytes : int;  (** max aggregate observed after enforcement *)
  mutable peak_pre_bytes : int;
      (** max aggregate observed when enforcement began: how far a single
          write overshoots before its same-instant eviction *)
}

let create ~budget_bytes parts =
  if budget_bytes < 1 then invalid_arg "Budget.create: budget_bytes >= 1";
  if Array.length parts = 0 then invalid_arg "Budget.create: no partitions";
  {
    budget_bytes;
    parts;
    evictions = 0;
    evictions_by = Array.make (Array.length parts) 0;
    peak_bytes = 0;
    peak_pre_bytes = 0;
  }

let budget_bytes t = t.budget_bytes
let evictions t = t.evictions

(** [evictions_of t i] is how many coordinator evictions partition [i]
    absorbed — chaos attribution uses it to see eviction pressure shift
    off a degraded partition. *)
let evictions_of t i = t.evictions_by.(i)
let peak_bytes t = t.peak_bytes
let peak_pre_bytes t = t.peak_pre_bytes

(** [total t] is the aggregate memory-component footprint in bytes. *)
let total t =
  Array.fold_left (fun acc p -> acc + p.mem_bytes ()) 0 t.parts

(** [largest t] is the index of the partition holding the most
    memory-component bytes (ties break low). *)
let largest t =
  let best = ref 0 and best_bytes = ref min_int in
  Array.iteri
    (fun i p ->
      let b = p.mem_bytes () in
      if b > !best_bytes then begin
        best := i;
        best_bytes := b
      end)
    t.parts;
  !best

(** [enforce t] restores the invariant [total t < budget_bytes] by
    flushing the largest memtable across partitions, repeatedly if one
    eviction is not enough.  Flushing happens "within" the triggering
    write's instant: its simulated cost lands on the flushed partition's
    clock, exactly like a synchronous flush in the single-dataset
    path. *)
let enforce t =
  let pre = total t in
  if pre > t.peak_pre_bytes then t.peak_pre_bytes <- pre;
  let rec drain () =
    if total t >= t.budget_bytes then begin
      let i = largest t in
      if t.parts.(i).mem_bytes () > 0 then begin
        t.parts.(i).flush ();
        t.evictions <- t.evictions + 1;
        t.evictions_by.(i) <- t.evictions_by.(i) + 1;
        drain ()
      end
      (* else: nothing evictable — all memory already on disk; the
         budget is smaller than the engine's irreducible footprint. *)
    end
  in
  drain ();
  let post = total t in
  if post > t.peak_bytes then t.peak_bytes <- post
