(** Open-loop arrival processes on the simulated clock.

    Closed-loop drivers (everything in [lib/harness]) issue the next
    request when the previous one completes, so the offered load adapts
    to the system and saturation hides inside lower throughput.  An
    open-loop source decides arrival instants *in advance*, from a rate
    — requests keep arriving whether or not the system keeps up, which
    is what makes queueing delay (and the saturation knee) observable. *)

type kind = [ `Poisson | `Uniform | `Bursty ]

(* Bursty modulation constants: an on/off modulated Poisson process
   (MMPP-2).  The process alternates exponentially-distributed ON and
   OFF phases; inside a phase arrivals are Poisson at the base rate
   times the phase multiplier.  With ON occupying [on_frac] of the time
   at [burst_mult]x and OFF at [off_mult]x, the long-run mean rate is
   preserved exactly: on_frac*burst + (1-on_frac)*off = 1. *)
let burst_mult = 4.0
let on_frac = 0.2
let off_mult = (1.0 -. (on_frac *. burst_mult)) /. (1.0 -. on_frac)

(* Mean phase lengths, in units of the base mean gap: bursts last ~50
   base gaps (long enough to pile up a queue), lulls proportionally
   longer so the time fraction in ON is [on_frac]. *)
let on_phase_gaps = 50.0
let off_phase_gaps = on_phase_gaps *. (1.0 -. on_frac) /. on_frac

type t = {
  rng : Lsm_util.Rng.t;
  mean_gap_us : float;
  kind : kind;
  mutable next_us : float;
  (* Bursty phase state; unused for the other kinds. *)
  mutable on : bool;
  mutable phase_end_us : float;
}

let exp_draw rng mean =
  (* Inverse-CDF exponential.  [Rng.float] is in [0, 1), so [1 - u] is
     in (0, 1] and the log stays finite. *)
  -.mean *. log (1.0 -. Lsm_util.Rng.float rng)

let create ?(seed = 97) ~rate_rps kind =
  if rate_rps <= 0.0 then invalid_arg "Arrivals.create: rate_rps must be > 0";
  let rng = Lsm_util.Rng.create seed in
  let mean_gap_us = 1e6 /. rate_rps in
  let t = { rng; mean_gap_us; kind; next_us = 0.0; on = false; phase_end_us = 0.0 } in
  (match kind with
  | `Bursty ->
      (* Start in ON or OFF with the stationary time-fraction odds, and
         draw the first phase boundary. *)
      t.on <- Lsm_util.Rng.float rng < on_frac;
      let mean_phase =
        mean_gap_us *. if t.on then on_phase_gaps else off_phase_gaps
      in
      t.phase_end_us <- exp_draw rng mean_phase
  | `Poisson | `Uniform -> ());
  t

let next t =
  match t.kind with
  | `Uniform ->
      t.next_us <- t.next_us +. t.mean_gap_us;
      t.next_us
  | `Poisson ->
      t.next_us <- t.next_us +. exp_draw t.rng t.mean_gap_us;
      t.next_us
  | `Bursty ->
      (* Exponential gap at the current phase's rate; a draw that would
         cross the phase boundary is discarded and redrawn in the next
         phase (memorylessness makes the discard exact, not an
         approximation). *)
      let rec go cursor =
        let mult = if t.on then burst_mult else off_mult in
        let gap = exp_draw t.rng (t.mean_gap_us /. mult) in
        if cursor +. gap <= t.phase_end_us then cursor +. gap
        else begin
          let cursor = t.phase_end_us in
          t.on <- not t.on;
          let mean_phase =
            t.mean_gap_us *. if t.on then on_phase_gaps else off_phase_gaps
          in
          t.phase_end_us <- t.phase_end_us +. exp_draw t.rng mean_phase;
          go cursor
        end
      in
      t.next_us <- go t.next_us;
      t.next_us

let kind_of_string = function
  | "poisson" -> `Poisson
  | "uniform" -> `Uniform
  | "bursty" -> `Bursty
  | s -> invalid_arg ("unknown arrival process: " ^ s ^ " (poisson|uniform|bursty)")

let string_of_kind = function
  | `Poisson -> "poisson"
  | `Uniform -> "uniform"
  | `Bursty -> "bursty"
