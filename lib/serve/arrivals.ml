(** Open-loop arrival processes on the simulated clock.

    Closed-loop drivers (everything in [lib/harness]) issue the next
    request when the previous one completes, so the offered load adapts
    to the system and saturation hides inside lower throughput.  An
    open-loop source decides arrival instants *in advance*, from a rate
    — requests keep arriving whether or not the system keeps up, which
    is what makes queueing delay (and the saturation knee) observable. *)

type kind = [ `Poisson | `Uniform ]

type t = {
  rng : Lsm_util.Rng.t;
  mean_gap_us : float;
  kind : kind;
  mutable next_us : float;
}

let create ?(seed = 97) ~rate_rps kind =
  if rate_rps <= 0.0 then invalid_arg "Arrivals.create: rate_rps must be > 0";
  {
    rng = Lsm_util.Rng.create seed;
    mean_gap_us = 1e6 /. rate_rps;
    kind;
    next_us = 0.0;
  }

let next t =
  let gap =
    match t.kind with
    | `Uniform -> t.mean_gap_us
    | `Poisson ->
        (* Inverse-CDF exponential inter-arrival.  [Rng.float] is in
           [0, 1), so [1 - u] is in (0, 1] and the log stays finite. *)
        -.t.mean_gap_us *. log (1.0 -. Lsm_util.Rng.float t.rng)
  in
  t.next_us <- t.next_us +. gap;
  t.next_us

let kind_of_string = function
  | "poisson" -> `Poisson
  | "uniform" -> `Uniform
  | s -> invalid_arg ("unknown arrival process: " ^ s ^ " (poisson|uniform)")

let string_of_kind = function `Poisson -> "poisson" | `Uniform -> "uniform"
