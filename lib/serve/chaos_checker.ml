(** Model-based degraded-correctness checker for chaos runs.

    The front door under faults may answer partially, shed, or error —
    but it must never lie.  The checker replays the run's client-visible
    contract against a trivial model (a hashtable of acknowledged
    writes, fault-free semantics) and audits three invariants:

    - {b answers are exact}: every non-errored answer (point, multi-get
      slot, secondary row set, per-partition scan count) equals the
      model's, with fan-out slots owned by errored partitions excused;
    - {b acked means durable}: after the run (including any mid-run
      crash/recovery), every acknowledged write is readable with its
      acknowledged value, via direct point queries;
    - {b nothing vanishes}: every arrival is accounted as a success, an
      error, or a shed — admission control counts, it never drops.

    The model applies *acknowledged* writes only, which is exactly why
    it stays sound under faults: an errored or shed write changed
    nothing (the driver's write path acks before any fallible eviction
    work), so model and engine agree on the committed state. *)

module Tweet = Lsm_workload.Tweet

type t = {
  partitions : int;
  model : (int, Tweet.t) Hashtbl.t;  (** acknowledged state, by key *)
  mutable arrivals : int;
  mutable successes : int;
  mutable failures : int;
  mutable shed : int;
  mutable checked : int;  (** answers audited against the model *)
  mutable n_violations : int;
  mutable violations : string list;  (** newest first, capped *)
}

let create ~partitions () =
  if partitions < 1 then invalid_arg "Chaos_checker.create: partitions >= 1";
  {
    partitions;
    model = Hashtbl.create 4096;
    arrivals = 0;
    successes = 0;
    failures = 0;
    shed = 0;
    checked = 0;
    n_violations = 0;
    violations = [];
  }

(* Mirrors [Partitioned.route]; the property test pins the two together
   by comparing checker expectations against the live cluster. *)
let route t pk = Lsm_bloom.Hashing.mix64 pk land max_int mod t.partitions

(** [preload t r] seeds the model with a record ingested before traffic
    started (the driver's warm-up preload) — not an arrival. *)
let preload t r = Hashtbl.replace t.model (Tweet.primary_key r) r

let max_kept = 64

let violate t fmt =
  Printf.ksprintf
    (fun s ->
      t.n_violations <- t.n_violations + 1;
      if t.n_violations <= max_kept then t.violations <- s :: t.violations)
    fmt

let pp_opt = function
  | None -> "none"
  | Some r -> Fmt.str "%a" Tweet.pp r

let by_id =
  List.sort (fun a b -> Int.compare (Tweet.primary_key a) (Tweet.primary_key b))

(** [observe t obs] consumes one arrival's client-visible outcome, in
    arrival order. *)
let observe t (obs : Driver.chaos_obs) =
  t.arrivals <- t.arrivals + 1;
  match obs with
  | Driver.O_ack req -> (
      t.successes <- t.successes + 1;
      match req with
      | Driver.Rt.Insert r | Driver.Rt.Upsert r ->
          Hashtbl.replace t.model (Tweet.primary_key r) r
      | Driver.Rt.Delete pk -> Hashtbl.remove t.model pk
      | _ -> violate t "protocol: ack of a non-write request")
  | Driver.O_reject_dup -> t.successes <- t.successes + 1
  | Driver.O_point (pk, v) ->
      t.successes <- t.successes + 1;
      t.checked <- t.checked + 1;
      let expect = Hashtbl.find_opt t.model pk in
      if v <> expect then
        violate t "point %d: got %s, expected %s" pk (pp_opt v) (pp_opt expect)
  | Driver.O_multi { got; err_parts } ->
      t.successes <- t.successes + 1;
      List.iter
        (fun (pk, v) ->
          t.checked <- t.checked + 1;
          if List.mem (route t pk) err_parts then
            violate t "multi slot %d answered by errored partition p%d" pk
              (route t pk);
          let expect = Hashtbl.find_opt t.model pk in
          if v <> expect then
            violate t "multi slot %d: got %s, expected %s" pk (pp_opt v)
              (pp_opt expect))
        got
  | Driver.O_secondary { lo; hi; rows; err_parts } ->
      t.successes <- t.successes + 1;
      t.checked <- t.checked + 1;
      (* Degraded answers are a value-exact subset keyed by partition:
         the answered rows must equal the model's rows owned by
         non-errored partitions. *)
      let expect =
        Hashtbl.fold
          (fun pk r acc ->
            if
              Tweet.user_id r >= lo
              && Tweet.user_id r <= hi
              && not (List.mem (route t pk) err_parts)
            then r :: acc
            else acc)
          t.model []
      in
      if by_id rows <> by_id expect then
        violate t
          "secondary [%d,%d]: %d rows, expected %d (excusing %d errored \
           partitions)"
          lo hi (List.length rows) (List.length expect)
          (List.length err_parts)
  | Driver.O_scan { tlo; thi; counts; err_parts } ->
      t.successes <- t.successes + 1;
      t.checked <- t.checked + 1;
      List.iter
        (fun (i, c) ->
          if List.mem i err_parts then
            violate t "scan slot p%d both answered and errored" i;
          let expect =
            Hashtbl.fold
              (fun pk r acc ->
                if
                  Tweet.created_at r >= tlo
                  && Tweet.created_at r <= thi
                  && route t pk = i
                then acc + 1
                else acc)
              t.model 0
          in
          if c <> expect then
            violate t "time scan [%d,%d] p%d: %d rows, expected %d" tlo thi i c
              expect)
        counts
  | Driver.O_error _ -> t.failures <- t.failures + 1
  | Driver.O_shed -> t.shed <- t.shed + 1

type verdict = {
  v_arrivals : int;
  v_successes : int;
  v_failures : int;
  v_shed : int;
  v_checked : int;  (** answers audited against the model *)
  v_probed : int;  (** acked keys re-read for the durability audit *)
  v_violations_total : int;
  v_violations : string list;  (** oldest first, first {!max_kept} kept *)
}

let ok v = v.v_violations_total = 0

(** [verify t ~probe] finishes the audit with the durability pass:
    every key the model holds must come back from [probe] (direct
    point queries against the post-run cluster) with its acknowledged
    value. *)
let verify t ~probe =
  let probed = ref 0 in
  Hashtbl.iter
    (fun pk r ->
      incr probed;
      match probe pk with
      | Some r' when r' = r -> ()
      | v ->
          violate t "durability: acked key %d reads %s after recovery, not %s"
            pk (pp_opt v)
            (pp_opt (Some r)))
    t.model;
  {
    v_arrivals = t.arrivals;
    v_successes = t.successes;
    v_failures = t.failures;
    v_shed = t.shed;
    v_checked = t.checked;
    v_probed = !probed;
    v_violations_total = t.n_violations;
    v_violations = List.rev t.violations;
  }

let pp_verdict fmt v =
  Fmt.pf fmt
    "chaos checker: %s (%d arrivals = %d ok + %d errors + %d shed; %d \
     answers audited, %d keys probed durable)"
    (if ok v then "PASS" else Printf.sprintf "FAIL (%d violations)" v.v_violations_total)
    v.v_arrivals v.v_successes v.v_failures v.v_shed v.v_checked v.v_probed;
  List.iter (fun s -> Fmt.pf fmt "@.  violation: %s" s) v.v_violations
