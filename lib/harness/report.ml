(** Result tables: aligned plain-text output, one table per paper figure,
    with the same rows/series the paper reports. *)

type t = {
  id : string;  (** e.g. "fig14" *)
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
  appendix : string list;
      (** Free-form diagnostic lines printed verbatim after the table —
          used for the per-experiment metrics dump ([--metrics]). *)
}

let make ?(notes = []) ?(appendix = []) ~id ~title ~header rows =
  { id; title; header; rows; notes; appendix }

let with_appendix t lines = { t with appendix = t.appendix @ lines }

let fmt_time_s us = Printf.sprintf "%.3f" (us /. 1e6)
let fmt_time_ms us = Printf.sprintf "%.3f" (us /. 1e3)
let fmt_float f = Printf.sprintf "%.3f" f
let fmt_int = string_of_int
let fmt_pct f = Printf.sprintf "%.3g%%" (f *. 100.0)

let widths t =
  let all = t.header :: t.rows in
  let cols = List.length t.header in
  List.init cols (fun c ->
      List.fold_left
        (fun acc row ->
          match List.nth_opt row c with
          | Some cell -> max acc (String.length cell)
          | None -> acc)
        0 all)

let pad w s = s ^ String.make (max 0 (w - String.length s)) ' '

let print ?(out = stdout) t =
  let ws = widths t in
  let line row =
    String.concat "  " (List.map2 pad ws row)
  in
  Printf.fprintf out "\n=== %s: %s ===\n" t.id t.title;
  Printf.fprintf out "%s\n" (line t.header);
  Printf.fprintf out "%s\n"
    (String.concat "  " (List.map (fun w -> String.make w '-') ws));
  List.iter (fun r -> Printf.fprintf out "%s\n" (line r)) t.rows;
  List.iter (fun n -> Printf.fprintf out "note: %s\n" n) t.notes;
  List.iter (fun l -> Printf.fprintf out "%s\n" l) t.appendix;
  flush out

let cell t ~row ~col = List.nth (List.nth t.rows row) col

(* Minimal CSV quoting: wrap fields containing separators or quotes. *)
let csv_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

(** [to_csv t] renders the table as CSV (header + rows). *)
let to_csv t =
  let line row = String.concat "," (List.map csv_field row) in
  String.concat "\n" (line t.header :: List.map line t.rows) ^ "\n"

(** [write_csv ~dir t] writes [dir/<id>.csv], creating [dir] if needed;
    returns the path. *)
let write_csv ~dir t =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (t.id ^ ".csv") in
  let oc = open_out path in
  output_string oc (to_csv t);
  close_out oc;
  path
