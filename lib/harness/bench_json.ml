(** Machine-readable bench snapshots (schema ["lsm-repro-bench/1"]).

    One document holds one suite run — the bechamel microbenchmarks or
    the paper-figure tables — as a flat list of named entries.  Each
    entry keeps its raw samples alongside the derived p50/p95/p99 so a
    later reader can re-derive anything; [compare] diffs two documents
    and flags regressions, which the CI script runs in advisory mode
    against the committed baseline. *)

module J = Lsm_obs.Json

let schema = "lsm-repro-bench/1"

type entry = {
  name : string;
  unit_ : string;  (** e.g. "ns/run", "records/s" — whatever the suite measures *)
  samples : float array;  (** raw per-run values, unsorted *)
}

type doc = {
  kind : string;  (** "micro" | "figures" *)
  scale : string option;  (** figures only: the Scale.t name *)
  entries : entry list;
}

(* ------------------------------------------------------------------ *)
(* Statistics *)

(* The one nan-safe nearest-rank percentile, shared with the serving
   driver — see [Lsm_obs.Stats] for the nan semantics. *)
let percentile = Lsm_obs.Stats.percentile

let p50 e = percentile e.samples 50.0
let p95 e = percentile e.samples 95.0
let p99 e = percentile e.samples 99.0

(* ------------------------------------------------------------------ *)
(* JSON (de)serialization *)

let entry_json e =
  J.Obj
    [
      ("name", J.Str e.name);
      ("unit", J.Str e.unit_);
      ("p50", J.Float (p50 e));
      ("p95", J.Float (p95 e));
      ("p99", J.Float (p99 e));
      ("samples", J.List (Array.to_list (Array.map (fun s -> J.Float s) e.samples)));
    ]

let to_json d =
  J.Obj
    (("schema", J.Str schema)
    :: ("kind", J.Str d.kind)
    :: (match d.scale with
       | Some s -> [ ("scale", J.Str s) ]
       | None -> [])
    @ [ ("entries", J.List (List.map entry_json d.entries)) ])

let write ~path d = J.write ~path (to_json d)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let req what = function Some v -> Ok v | None -> Error ("bench doc: missing " ^ what)

let entry_of_json j =
  let* name = req "entry name" Option.(bind (J.member "name" j) J.to_string_opt) in
  let* unit_ = req "entry unit" Option.(bind (J.member "unit" j) J.to_string_opt) in
  let* samples =
    req "entry samples" Option.(bind (J.member "samples" j) J.to_list)
  in
  let* samples =
    List.fold_left
      (fun acc s ->
        let* acc = acc in
        let* v = req "numeric sample" (J.to_float s) in
        Ok (v :: acc))
      (Ok []) samples
  in
  Ok { name; unit_; samples = Array.of_list (List.rev samples) }

let of_json j =
  let* sch = req "schema" Option.(bind (J.member "schema" j) J.to_string_opt) in
  if sch <> schema then Error (Printf.sprintf "bench doc: schema %S, want %S" sch schema)
  else
    let* kind = req "kind" Option.(bind (J.member "kind" j) J.to_string_opt) in
    let scale = Option.bind (J.member "scale" j) J.to_string_opt in
    let* entries = req "entries" Option.(bind (J.member "entries" j) J.to_list) in
    let* entries =
      List.fold_left
        (fun acc e ->
          let* acc = acc in
          let* e = entry_of_json e in
          Ok (e :: acc))
        (Ok []) entries
    in
    Ok { kind; scale; entries = List.rev entries }

let read ~path =
  let* j = J.read ~path in
  of_json j

(* ------------------------------------------------------------------ *)
(* Suite adapters *)

(** [of_reports ~scale reports] flattens figure tables into entries named
    ["<report_id>/<row_label>/<col_header>"], one per numeric cell.  One
    table run yields one sample per entry. *)
let of_reports ~scale reports =
  (* Pad/truncate ragged rows so map2 below always lines up. *)
  let fit n xs =
    let rec go i = function
      | _ when i = n -> []
      | [] -> "" :: go (i + 1) []
      | x :: tl -> x :: go (i + 1) tl
    in
    go 0 xs
  in
  let entries =
    List.concat_map
      (fun (r : Report.t) ->
        let cols = match r.Report.header with [] -> [] | _ :: tl -> tl in
        List.concat_map
          (fun row ->
            match row with
            | [] -> []
            | label :: cells ->
                List.concat
                  (List.map2
                     (fun col cell ->
                       match float_of_string_opt cell with
                       | Some v ->
                           [
                             {
                               name =
                                 Printf.sprintf "%s/%s/%s" r.Report.id label col;
                               unit_ = col;
                               samples = [| v |];
                             };
                           ]
                       | None -> [])
                     cols
                     (fit (List.length cols) cells)))
          r.Report.rows)
      reports
  in
  { kind = "figures"; scale = Some scale.Scale.name; entries }

(* ------------------------------------------------------------------ *)
(* Comparison *)

type regression = {
  r_name : string;
  r_old : float;  (** baseline p50 *)
  r_new : float;  (** candidate p50 *)
  r_ratio : float;  (** new / old *)
}

(** [compare_docs ~threshold old_d new_d] matches entries by name and
    flags every one whose candidate p50 exceeds the baseline p50 by more
    than [threshold] (lower is better for everything we snapshot).
    Returns [(regressions, compared, only_old, only_new)]. *)
let compare_docs ~threshold old_d new_d =
  let tbl = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace tbl e.name e) old_d.entries;
  let compared = ref 0 and regs = ref [] and only_new = ref [] in
  List.iter
    (fun e ->
      match Hashtbl.find_opt tbl e.name with
      | None -> only_new := e.name :: !only_new
      | Some o ->
          Hashtbl.remove tbl e.name;
          incr compared;
          let ov = p50 o and nv = p50 e in
          (* A zero baseline (e.g. the sorted view's zero scan
             comparisons) can't regress by ratio, so any move off zero
             is flagged outright. *)
          if
            Float.is_finite ov && Float.is_finite nv
            && ((ov > 0.0 && nv > ov *. (1.0 +. threshold))
               || (ov = 0.0 && nv > 0.0))
          then
            regs :=
              { r_name = e.name; r_old = ov; r_new = nv; r_ratio = nv /. ov }
              :: !regs)
    new_d.entries;
  let only_old = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] in
  (List.rev !regs, !compared, List.sort compare only_old, List.rev !only_new)

let pp_regression fmt r =
  Format.fprintf fmt "%-44s %12.1f -> %12.1f  (%+.1f%%)" r.r_name r.r_old
    r.r_new ((r.r_ratio -. 1.0) *. 100.0)
