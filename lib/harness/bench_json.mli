(** Machine-readable bench snapshots: schema-versioned JSON documents
    holding named entries with raw samples and p50/p95/p99, plus a
    baseline comparison used by CI in advisory mode. *)

val schema : string
(** ["lsm-repro-bench/1"]. *)

type entry = {
  name : string;
  unit_ : string;
  samples : float array;  (** raw per-run values, unsorted *)
}

type doc = {
  kind : string;  (** "micro" | "figures" *)
  scale : string option;
  entries : entry list;
}

val percentile : float array -> float -> float
(** Nearest-rank percentile; nan on an empty array.  An alias of
    {!Lsm_obs.Stats.percentile} (nan samples dropped first), kept so
    bench consumers need not import lsm_obs. *)

val p50 : entry -> float
val p95 : entry -> float
val p99 : entry -> float

val to_json : doc -> Lsm_obs.Json.t
val of_json : Lsm_obs.Json.t -> (doc, string) result
val write : path:string -> doc -> unit
val read : path:string -> (doc, string) result

val of_reports : scale:Scale.t -> Report.t list -> doc
(** Flatten figure tables into entries named
    ["<report_id>/<row_label>/<col_header>"], one per numeric cell. *)

type regression = {
  r_name : string;
  r_old : float;  (** baseline p50 *)
  r_new : float;  (** candidate p50 *)
  r_ratio : float;  (** new / old *)
}

val compare_docs :
  threshold:float ->
  doc ->
  doc ->
  regression list * int * string list * string list
(** [compare_docs ~threshold old new] flags entries whose candidate p50
    exceeds the baseline by more than [threshold] (lower is better).
    Returns (regressions, compared count, names only in old, names only
    in new). *)

val pp_regression : Format.formatter -> regression -> unit
