(** Experiment scaling.

    The paper's testbed ingests 80-100M ~500B tweets (30GB+) into a node
    with a 2GB buffer cache, 128MB memory-component budget, and a 1GB
    maximum mergeable component size, over 6-12 hour runs.  We reproduce
    the *ratios* at a size that runs in seconds of host time:

    - data : cache ≈ 15:1 (the dataset must not fit in cache, or every
      strategy degenerates to CPU cost);
    - data : memory budget ≈ 240:1 (dozens of flushes per run);
    - data : max mergeable component ≈ 30:1 (components accumulate);
    - device profiles are *unscaled* (a seek costs what a seek costs) so
      that random-vs-sequential trade-offs keep their real proportions. *)

type t = { name : string; records : int }

let tiny = { name = "tiny"; records = 20_000 }
let small = { name = "small"; records = 60_000 }
let medium = { name = "medium"; records = 150_000 }
let large = { name = "large"; records = 400_000 }

let of_string = function
  | "tiny" -> tiny
  | "small" -> small
  | "medium" -> medium
  | "large" -> large
  | s -> invalid_arg ("unknown scale: " ^ s ^ " (tiny|small|medium|large)")

(** Derived knobs, all proportional to the record count (at ~500B/record).
    [data_bytes] is the primary-index payload volume. *)
let data_bytes t = t.records * 500

let cache_bytes t = max (512 * 1024) (data_bytes t / 15)
let mem_budget t = max (128 * 1024) (data_bytes t / 48)
let max_mergeable_bytes t = max (256 * 1024) (data_bytes t / 30)

(** The small-cache variant of Fig. 18 (512MB vs 2GB in the paper). *)
let small_cache_bytes t = cache_bytes t / 4

(** Serving-layer knobs (lib/serve).  The user population is larger than
    the record count — most users are cold, the Zipf head is hot — and
    the global memory budget is *half* of what [partitions] independent
    datasets would claim, so the cross-partition flush coordinator has
    real work to do. *)
let serve_users t = t.records * 5 / 2

let serve_preload t = t.records / 2
let serve_duration_s t = Float.of_int t.records /. 20_000.0
let serve_budget_bytes t ~partitions = mem_budget t * partitions / 2

(** Scaled device profiles.

    Running 500x-smaller datasets against full-size 128KB pages would
    leave the buffer cache with a handful of page slots — cache behaviour,
    which drives the whole evaluation, would be destroyed.  We therefore
    scale page size *and* per-page times by the same factor (16), which
    preserves the seek:transfer cost ratio (8.5ms : 1.25ms ≈ 6.8:1 on the
    HDD, ~1:1 on the SSD) and gives the cache a realistic page count. *)
let hdd_device =
  Lsm_sim.Device.custom ~name:"hdd/16" ~page_size:(8 * 1024) ~seek_us:531.0
    ~read_us_per_page:78.0 ~write_us_per_page:78.0

let ssd_device =
  Lsm_sim.Device.custom ~name:"ssd/16" ~page_size:(2 * 1024) ~seek_us:3.75
    ~read_us_per_page:3.9 ~write_us_per_page:4.7
