(** The `lsm_repro inspect` implementation: build the Fig. 12 preparation
    workload (insert-only tweets) at a given scale, then report the
    amplification triangle — write amplification from the engine's
    flush/merge accounting ({!Lsm_obs.Ampstats}), read amplification from
    a sampled probe of point and secondary lookups, space amplification
    from component snapshots against the live record volume — plus a
    per-component state table for every index of the dataset. *)

module J = Lsm_obs.Json
module Env = Lsm_sim.Env
module Io = Lsm_sim.Io_stats
module D = Setup.D
module Prim = D.Prim
module Pk = D.Pk
module Sec = D.Sec
module Tweet = Lsm_workload.Tweet

type result = { reports : Report.t list; json : J.t }

let schema = "lsm-repro-inspect/1"

(* One snapshot per disk component, same shape for every tree. *)
type comp_info = {
  tree : string;
  slot : int;  (** 0 = newest *)
  id : int * int;  (** (minTS, maxTS) *)
  rows : int;
  bytes : int;
  bloom : bool;
  bitmap : bool;
  repaired : int;
}

let comp_columns =
  [ "tree"; "slot"; "id"; "rows"; "bytes"; "bloom"; "bitmap"; "repairedTS" ]

let comp_row c =
  [
    c.tree;
    string_of_int c.slot;
    Printf.sprintf "(%d,%d)" (fst c.id) (snd c.id);
    string_of_int c.rows;
    string_of_int c.bytes;
    (if c.bloom then "y" else "-");
    (if c.bitmap then "y" else "-");
    string_of_int c.repaired;
  ]

let comp_json c =
  J.Obj
    [
      ("tree", J.Str c.tree);
      ("slot", J.Int c.slot);
      ("min_ts", J.Int (fst c.id));
      ("max_ts", J.Int (snd c.id));
      ("rows", J.Int c.rows);
      ("bytes", J.Int c.bytes);
      ("bloom", J.Bool c.bloom);
      ("bitmap", J.Bool c.bitmap);
      ("repaired_ts", J.Int c.repaired);
    ]

(* The three index families instantiate Lsm_tree at different types, so
   each gets its own (identical-shaped) walker. *)
let prim_components name p =
  Array.to_list
    (Array.mapi
       (fun i (c : Prim.disk_component) ->
         {
           tree = name;
           slot = i;
           id = Prim.component_id c;
           rows = Prim.component_rows c;
           bytes = Prim.component_size_bytes p c;
           bloom = c.Prim.bloom <> None;
           bitmap = c.Prim.bitmap <> None;
           repaired = c.Prim.repaired_ts;
         })
       (Prim.components p))

let pk_components name p =
  Array.to_list
    (Array.mapi
       (fun i (c : Pk.disk_component) ->
         {
           tree = name;
           slot = i;
           id = Pk.component_id c;
           rows = Pk.component_rows c;
           bytes = Pk.component_size_bytes p c;
           bloom = c.Pk.bloom <> None;
           bitmap = c.Pk.bitmap <> None;
           repaired = c.Pk.repaired_ts;
         })
       (Pk.components p))

let sec_components name s =
  Array.to_list
    (Array.mapi
       (fun i (c : Sec.disk_component) ->
         {
           tree = name;
           slot = i;
           id = Sec.component_id c;
           rows = Sec.component_rows c;
           bytes = Sec.component_size_bytes s c;
           bloom = c.Sec.bloom <> None;
           bitmap = c.Sec.bitmap <> None;
           repaired = c.Sec.repaired_ts;
         })
       (Sec.components s))

let dataset_components d =
  prim_components "primary" (D.primary d)
  @ (match D.pk_index d with
    | Some pk -> pk_components "pk_index" pk
    | None -> [])
  @ List.concat_map
      (fun (s : D.sec_index) -> sec_components ("sec:" ^ s.D.sec_name) s.D.tree)
      (Array.to_list (D.secondaries d))

let f3 = Printf.sprintf "%.3f"

(** [run ?queries scale] builds the workload and measures; [queries]
    bounds the point-lookup probe sample. *)
let run ?(queries = 200) (scale : Scale.t) =
  let env = Setup.hdd_env scale in
  let d, _stream = Setup.insert_dataset env scale ~n:scale.Scale.records in
  (* --- write amplification: everything the engine flushed and merged *)
  let amp = Env.amp env in
  let wa = Lsm_obs.Ampstats.write_amplification amp in
  (* --- space amplification: bytes on disk vs live record payload.  The
     full scan doubles as the pk sample source for the read probe. *)
  let live_bytes = ref 0 in
  let pks = ref [] in
  let live = D.full_scan d ~f:(fun r ->
      live_bytes := !live_bytes + Tweet.Record.byte_size r;
      pks := Tweet.primary_key r :: !pks)
  in
  let disk_bytes = D.total_disk_bytes d in
  let sa =
    if !live_bytes = 0 then Float.nan
    else Float.of_int disk_bytes /. Float.of_int !live_bytes
  in
  (* --- read amplification: sampled point lookups (pages touched and
     Bloom outcomes per single-record read) *)
  let pks = Array.of_list !pks in
  let nq = min queries (Array.length pks) in
  let stride = if nq = 0 then 1 else max 1 (Array.length pks / nq) in
  let before = Io.copy (Env.stats env) in
  for i = 0 to nq - 1 do
    ignore (D.point_query d pks.(i * stride mod Array.length pks))
  done;
  let pq = Io.diff (Env.stats env) before in
  let per q = if nq = 0 then Float.nan else Float.of_int q /. Float.of_int nq in
  let ra = per (pq.Io.pages_read + pq.Io.cache_hits) in
  (* --- one 1%-selectivity secondary query, as a second read probe *)
  let before = Io.copy (Env.stats env) in
  let sec_hits =
    List.length
      (D.query_secondary d ~sec:"user_id" ~lo:0
         ~hi:(Tweet.user_id_domain / 100)
         ~mode:`Timestamp ())
  in
  let sq = Io.diff (Env.stats env) before in
  (* --- sorted views: the full scan and secondary probe above ran
     through them, so the counters describe this workload's read path *)
  let vs = Env.view_stats env in
  let view_note =
    Printf.sprintf
      "sorted views: %d built (%d rows, %d pages); %d scans touched %d \
       segments, skipped %d rows; %d invalidations, %d heap fallbacks"
      vs.Env.builds vs.Env.build_rows vs.Env.build_pages vs.Env.view_scans
      vs.Env.segments vs.Env.rows_skipped vs.Env.invalidations
      vs.Env.fallbacks
  in
  (* --- gauges: the in-memory footprint directly from the env's probes,
     plus any serve.*/mem.* registry gauges when observability is on
     (a previous serving run in this process publishes there).  The
     disabled obs handle is a shared value — never read its registry. *)
  let gauges =
    let base =
      ("mem.resident_bytes", Float.of_int (Env.mem_bytes env))
      ::
      (match Env.mem_budget env with
      | Some b -> [ ("mem.budget_bytes", Float.of_int b) ]
      | None -> [])
    in
    let extra = ref [] in
    if Lsm_obs.Obs.enabled (Env.obs env) then begin
      Env.publish_io_metrics env;
      Lsm_obs.Metrics.iter (Env.metrics env) (fun name labels m ->
          match m with
          | `Gauge g
            when labels = []
                 && (String.starts_with ~prefix:"serve." name
                    || String.starts_with ~prefix:"mem." name
                    || String.starts_with ~prefix:"resilience." name)
                 && not (List.mem_assoc name base) ->
              extra := (name, Lsm_obs.Metrics.gauge_value g) :: !extra
          | _ -> ())
    end;
    base @ List.rev !extra
  in
  let comps = dataset_components d in
  let amp_rows =
    [
      [ "write"; f3 wa;
        Printf.sprintf "%d flushes (%dB) + %d merges (%dB rewritten)"
          amp.Lsm_obs.Ampstats.flushes amp.Lsm_obs.Ampstats.flush_bytes
          amp.Lsm_obs.Ampstats.merges amp.Lsm_obs.Ampstats.merge_written_bytes ];
      [ "read"; f3 ra;
        Printf.sprintf
          "%d point lookups: %.2f pages + %.2f bloom probes (%.0f%% negative, \
           %d fp) each"
          nq
          (per (pq.Io.pages_read + pq.Io.cache_hits))
          (per pq.Io.bloom_probes)
          (if pq.Io.bloom_probes = 0 then 0.0
           else
             100.0 *. Float.of_int pq.Io.bloom_negatives
             /. Float.of_int pq.Io.bloom_probes)
          pq.Io.bloom_fps ];
      [ "space"; f3 sa;
        Printf.sprintf "%dB on disk / %dB live in %d records (all indexes)"
          disk_bytes !live_bytes live ];
    ]
  in
  let reports =
    [
      Report.make ~id:"inspect-amp"
        ~title:
          (Printf.sprintf
             "Amplification (fig-12 insert workload, %s = %d records)"
             scale.Scale.name scale.Scale.records)
        ~header:[ "amplification"; "factor"; "accounting" ]
        amp_rows
        ~notes:
          [
            Printf.sprintf
              "secondary 1%% query (ts-validated): %d records, %d pages read, \
               %d bloom probes"
              sec_hits sq.Io.pages_read sq.Io.bloom_probes;
            view_note;
            Printf.sprintf "gauges: %s"
              (String.concat ", "
                 (List.map
                    (fun (k, v) -> Printf.sprintf "%s=%.0f" k v)
                    gauges));
          ];
      Report.make ~id:"inspect-components" ~title:"Component state"
        ~header:comp_columns
        (List.map comp_row comps);
    ]
  in
  let json =
    J.Obj
      [
        ("schema", J.Str schema);
        ("scale", J.Str scale.Scale.name);
        ("records", J.Int scale.Scale.records);
        ( "merge_policy",
          J.Str (Lsm_tree.Merge_policy.describe (D.config d).D.merge_policy) );
        ( "write",
          J.Obj
            (("amplification", J.Float wa)
            :: List.map
                 (fun (k, v) -> (k, J.Int v))
                 (Lsm_obs.Ampstats.fields amp)) );
        ( "read",
          J.Obj
            [
              ("amplification", J.Float ra);
              ("point_lookups", J.Int nq);
              ("io", J.Obj (List.map (fun (k, v) -> (k, J.Int v)) (Io.fields pq)));
              ( "secondary_query",
                J.Obj
                  (("records", J.Int sec_hits)
                  :: List.map (fun (k, v) -> (k, J.Int v)) (Io.fields sq)) );
            ] );
        ( "space",
          J.Obj
            [
              ("amplification", J.Float sa);
              ("disk_bytes", J.Int disk_bytes);
              ("live_bytes", J.Int !live_bytes);
              ("live_records", J.Int live);
            ] );
        ( "views",
          J.Obj
            [
              ("builds", J.Int vs.Env.builds);
              ("build_rows", J.Int vs.Env.build_rows);
              ("build_pages", J.Int vs.Env.build_pages);
              ("scans", J.Int vs.Env.view_scans);
              ("segments", J.Int vs.Env.segments);
              ("rows_skipped", J.Int vs.Env.rows_skipped);
              ("rows_emitted", J.Int vs.Env.rows_emitted);
              ("invalidations", J.Int vs.Env.invalidations);
              ("fallbacks", J.Int vs.Env.fallbacks);
            ] );
        ( "gauges",
          J.Obj (List.map (fun (k, v) -> (k, J.Float v)) gauges) );
        ("components", J.List (List.map comp_json comps));
      ]
  in
  { reports; json }
