(** Harness-wide observability switchboard.

    Experiments create their environments through {!Setup}; when tracing
    is requested ({!enable}, driven by the CLI's [--trace]/[--profile]/
    [--metrics] flags) every such environment gets an enabled
    {!Lsm_obs.Obs.t} handle, and the hub remembers it.  After the run the
    hub merges all tracers into one Chrome [trace_event] document (one
    pid per environment — experiments like fig14 build a dozen), renders
    per-environment text profiles, and dumps the metrics registries. *)

module Env = Lsm_sim.Env
module Tracer = Lsm_obs.Tracer
module Metrics = Lsm_obs.Metrics

let device_name env = (Env.device env).Lsm_sim.Device.name

let enabled = ref false
let explain_on = ref false
let trace_capacity = ref 65536
let envs : Env.t list ref = ref []

(** [enable ()] turns the hub on: subsequently attached environments are
    created with observability enabled.  [capacity] bounds each
    environment's span ring. *)
let enable ?capacity () =
  (match capacity with Some c -> trace_capacity := c | None -> ());
  enabled := true

let is_enabled () = !enabled

(** [enable_explain ()] turns plan recording on: subsequently attached
    environments get an active {!Lsm_obs.Explain.t}, independently of
    tracing/metrics. *)
let enable_explain () = explain_on := true

(** [attach env] registers [env] with the hub (enabling its obs handle
    and/or plan recorder) when the hub is on; a no-op otherwise.  Returns
    [env] so it can wrap a creation expression. *)
let attach env =
  if !enabled || !explain_on then begin
    if !enabled then
      ignore (Env.enable_obs ~trace_capacity:!trace_capacity env);
    if !explain_on then ignore (Env.enable_explain env);
    envs := env :: !envs
  end;
  env

(** Attached environments, oldest first. *)
let observed () = List.rev !envs

let reset () = envs := []

(* Chrome metadata event naming a pid, so Perfetto shows "env-0 (hdd)"
   instead of a bare number. *)
let process_name_event b ~first ~pid name =
  if not first then Buffer.add_char b ',';
  Buffer.add_string b
    (Printf.sprintf
       {|{"ph":"M","name":"process_name","pid":%d,"tid":0,"args":{"name":"%s"}}|}
       pid name)

(** [write_chrome_trace path] merges every attached environment's span
    ring into one loadable [chrome://tracing] / Perfetto document at
    [path], one pid per environment.  Returns the number of spans
    written. *)
let write_chrome_trace path =
  let b = Buffer.create 4096 in
  Buffer.add_string b {|{"displayTimeUnit":"ms","traceEvents":[|};
  let n = ref 0 in
  List.iteri
    (fun pid env ->
      let tr = Env.tracer env in
      let evs = Tracer.events tr in
      if Array.length evs > 0 then begin
        process_name_event b ~first:(!n = 0) ~pid
          (Printf.sprintf "env-%d (%s)" pid (device_name env));
        ignore (Tracer.add_chrome_events b ~pid ~first:false tr);
        n := !n + Array.length evs
      end)
    (observed ());
  Buffer.add_string b "]}\n";
  let oc = open_out path in
  Buffer.output_buffer oc b;
  close_out oc;
  !n

(** [profile_text ()] renders one aligned profile per attached
    environment, each against that environment's own elapsed simulated
    time (so the coverage percentage is meaningful per env). *)
let profile_text () =
  let b = Buffer.create 1024 in
  List.iteri
    (fun i env ->
      let tr = Env.tracer env in
      if Tracer.recorded tr > 0 then begin
        Buffer.add_string b
          (Printf.sprintf "\n--- profile: env-%d (%s) ---\n" i
             (device_name env));
        Buffer.add_string b
          (Tracer.profile ~total_us:(Env.now_us env) tr)
      end)
    (observed ());
  Buffer.contents b

(** [explain_text ()] renders every attached environment's retained query
    plans, one block per environment that recorded any. *)
let explain_text () =
  let b = Buffer.create 1024 in
  List.iteri
    (fun i env ->
      let e = Env.explain env in
      if Lsm_obs.Explain.plans e <> [] then begin
        Buffer.add_string b
          (Printf.sprintf "\n--- explain: env-%d (%s) ---\n" i
             (device_name env));
        Buffer.add_string b (Lsm_obs.Explain.to_text e)
      end)
    (observed ());
  Buffer.contents b

(** [explain_json ()] is the same as one schema-tagged document: each
    environment that recorded plans contributes an entry. *)
let explain_json () =
  let envs_json =
    List.concat
      (List.mapi
         (fun i env ->
           let e = Env.explain env in
           if Lsm_obs.Explain.plans e = [] then []
           else
             [
               Lsm_obs.Json.Obj
                 [
                   ("env", Lsm_obs.Json.Str (Printf.sprintf "env-%d" i));
                   ("device", Lsm_obs.Json.Str (device_name env));
                   ( "plans",
                     match
                       Lsm_obs.Json.member "plans" (Lsm_obs.Explain.to_json e)
                     with
                     | Some p -> p
                     | None -> Lsm_obs.Json.List [] );
                 ];
             ])
         (observed ()))
  in
  Lsm_obs.Json.Obj
    [
      ("schema", Lsm_obs.Json.Str Lsm_obs.Explain.schema);
      ("envs", Lsm_obs.Json.List envs_json);
    ]

(** [metrics_lines ()] publishes each environment's I/O counters into its
    registry and returns the aligned dump, one block per environment. *)
let metrics_lines () =
  List.concat
    (List.mapi
       (fun i env ->
         Env.publish_io_metrics env;
         let lines = Metrics.to_lines (Env.metrics env) in
         if lines = [] then []
         else
           Printf.sprintf "metrics: env-%d (%s)" i (device_name env)
           :: List.map (fun l -> "  " ^ l) lines)
       (observed ()))
