(** Shared experiment plumbing: environments, datasets, ingestion drivers,
    and query timing. *)

module D = Lsm_core.Dataset.Make (Lsm_workload.Tweet.Record)
module CM = Lsm_core.Concurrent_merge.Make (Lsm_workload.Tweet.Record) (D)
module Strategy = Lsm_core.Strategy
module Tweet = Lsm_workload.Tweet
module Streams = Lsm_workload.Streams
module Env = Lsm_sim.Env
module Device = Lsm_sim.Device

let hdd_env ?cache_bytes scale =
  let cache_bytes =
    match cache_bytes with Some b -> b | None -> Scale.cache_bytes scale
  in
  Obs_hub.attach (Env.create ~cache_bytes Scale.hdd_device)

let ssd_env ?cache_bytes scale =
  let cache_bytes =
    match cache_bytes with
    | Some b -> b
    | None -> Scale.cache_bytes scale * 2 (* the SSD node had 2x the cache *)
  in
  Obs_hub.attach (Env.create ~cache_bytes Scale.ssd_device)

(* Secondary-key extractors: index 0 is the paper's user_id; additional
   indexes (Figs. 15b, 22) are synthetic attributes derived from the
   primary key, uniform over the same domain. *)
let secondary_specs n =
  List.init n (fun i ->
      if i = 0 then Lsm_core.Record.secondary "user_id" Tweet.user_id
      else
        Lsm_core.Record.secondary
          (Printf.sprintf "attr%d" i)
          (fun r ->
            Lsm_bloom.Hashing.combine (Tweet.primary_key r) i
            land max_int mod Tweet.user_id_domain))

let dataset ?(strategy = Strategy.eager) ?(n_secondaries = 1)
    ?(use_pk_index = true) ?mem_budget ?max_mergeable_bytes
    ?(bloom_kind = `Standard) ?(maint_workers = 1) ?(mem_shards = 1) env scale =
  let mem_budget =
    match mem_budget with Some b -> b | None -> Scale.mem_budget scale
  in
  let max_mergeable_bytes =
    match max_mergeable_bytes with
    | Some b -> b
    | None -> Scale.max_mergeable_bytes scale
  in
  D.create ~filter_key:Tweet.created_at ~secondaries:(secondary_specs n_secondaries)
    env
    {
      D.strategy;
      mem_budget;
      merge_policy =
        Lsm_tree.Merge_policy.tiering ~size_ratio:1.2 ~max_mergeable_bytes ();
      use_pk_index;
      bloom = Some { Lsm_tree.Config.kind = bloom_kind; fpr = 0.01 };
      maint_workers;
      mem_shards;
    }

let apply_op d = function
  | Streams.Insert r -> ignore (D.insert d r)
  | Streams.Upsert r -> D.upsert d r
  | Streams.Delete pk -> D.delete d ~pk

(** [ingest d stream ~n] drives [n] stream operations into [d], returning
    (records, simulated seconds) at ten evenly spaced checkpoints — the
    records-over-time series of Figs. 13-14. *)
let ingest ?(checkpoints = 10) d stream ~n =
  let env = D.env d in
  let t0 = Env.now_us env in
  let out = ref [] in
  let step = max 1 (n / checkpoints) in
  for i = 1 to n do
    apply_op d (Streams.next stream);
    if i mod step = 0 || i = n then
      out := (i, (Env.now_us env -. t0) /. 1e6) :: !out
  done;
  List.rev !out

(** [ingest_quiet d stream ~n] ingests without checkpoints. *)
let ingest_quiet d stream ~n =
  for _ = 1 to n do
    apply_op d (Streams.next stream)
  done

(** [insert_dataset env scale ~n] bulk-builds an insert-only dataset (the
    Fig. 12 / 16 / 17 preparation step). *)
let insert_dataset ?strategy ?n_secondaries ?bloom_kind ?(update_ratio = 0.0)
    ?(distribution = `Uniform) ?(seed = 11) ?record_bytes env scale ~n =
  let d = dataset ?strategy ?n_secondaries ?bloom_kind env scale in
  let stream =
    if update_ratio = 0.0 then
      Streams.insert_stream ~seed ?record_bytes ~duplicate_ratio:0.0 ()
    else Streams.upsert_stream ~seed ?record_bytes ~update_ratio ~distribution ()
  in
  ingest_quiet d stream ~n;
  (d, stream)

(** [timed env f] runs [f] and returns (result, simulated microseconds). *)
let timed env f =
  let t0 = Env.now_us env in
  let r = f () in
  (r, Env.now_us env -. t0)

(** [warm_query_time env ~runs f] executes [f run_index] repeatedly (each
    run should use a different predicate of the same selectivity), warms
    the cache on the first runs, and averages the stable tail — the
    methodology of Secs. 6.2/6.4.  The buffer cache is cleared first so
    that variants measured back-to-back on a shared dataset start from
    the same state and warm themselves. *)
let warm_query_time ?(runs = 8) ?(stable = 5) env f =
  Lsm_sim.Buffer_cache.clear (Env.cache env);
  let times = Array.init runs (fun i -> snd (timed env (fun () -> f i))) in
  let tail = Array.sub times (runs - stable) stable in
  Array.fold_left ( +. ) 0.0 tail /. Float.of_int stable

(** [cold_query_time env ~runs f] clears the buffer cache before every
    run and averages (Fig. 19's methodology). *)
let cold_query_time ?(runs = 3) env f =
  let total = ref 0.0 in
  for i = 0 to runs - 1 do
    Lsm_sim.Buffer_cache.clear (Env.cache env);
    total := !total +. snd (timed env (fun () -> f i))
  done;
  !total /. Float.of_int runs

(** Throughput in records per simulated second. *)
let throughput ~n ~sim_s = if sim_s <= 0.0 then 0.0 else Float.of_int n /. sim_s
