(** Result tables: aligned plain-text output (one table per paper figure,
    same rows/series the paper reports) and plot-ready CSV export. *)

type t = {
  id : string;  (** e.g. "fig14" *)
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
  appendix : string list;
      (** Free-form diagnostic lines printed verbatim after the table —
          used for the per-experiment metrics dump ([--metrics]). *)
}

val make :
  ?notes:string list ->
  ?appendix:string list ->
  id:string ->
  title:string ->
  header:string list ->
  string list list ->
  t

val with_appendix : t -> string list -> t
(** Append diagnostic lines to a finished report. *)

(** {1 Cell formatting} *)

val fmt_time_s : float -> string
(** Microseconds rendered as seconds. *)

val fmt_time_ms : float -> string
val fmt_float : float -> string
val fmt_int : int -> string
val fmt_pct : float -> string

(** {1 Output} *)

val print : ?out:out_channel -> t -> unit
val cell : t -> row:int -> col:int -> string
val to_csv : t -> string

val write_csv : dir:string -> t -> string
(** Write [dir/<id>.csv] (creating [dir]); returns the path. *)
