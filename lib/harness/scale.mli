(** Experiment scaling: record counts and every byte-sized knob scale
    together, preserving the paper's ratios (data:cache ≈ 15:1,
    data:memory-budget ≈ 48:1, data:max-mergeable ≈ 30:1); device page
    size and per-page times scale by one factor (16) so the seek:transfer
    ratio and the cache's page count stay realistic.  See DESIGN.md §5. *)

type t = { name : string; records : int }

val tiny : t  (** 20K records *)

val small : t  (** 60K records (default) *)

val medium : t  (** 150K records *)

val large : t  (** 400K records *)

val of_string : string -> t
(** @raise Invalid_argument for unknown names. *)

val data_bytes : t -> int
val cache_bytes : t -> int
val mem_budget : t -> int
val max_mergeable_bytes : t -> int

val small_cache_bytes : t -> int
(** The Fig. 18 small-cache variant (a quarter of the default). *)

(** {1 Serving-layer knobs (lib/serve)} *)

val serve_users : t -> int
(** Zipf user-population size: 2.5x the record count (most users cold). *)

val serve_preload : t -> int
(** Records ingested before the open-loop phase starts. *)

val serve_duration_s : t -> float
(** Simulated seconds of open-loop traffic (1s per 20K records). *)

val serve_budget_bytes : t -> partitions:int -> int
(** Global memory budget shared by all partitions: half of what
    [partitions] independent datasets would claim. *)

val hdd_device : Lsm_sim.Device.t
(** HDD profile scaled 16x: 8KB pages, 531us seek, 78us/page. *)

val ssd_device : Lsm_sim.Device.t
(** SSD profile scaled 16x: 2KB pages, ~4us latency. *)
