(** Zipfian distribution sampling, following the rejection-free method used
    by YCSB (Gray et al., SIGMOD 1994).  Supports incrementally growing the
    item count, which upsert workloads need: the set of "past keys" that may
    be updated grows as ingestion proceeds, and recomputing the zeta
    normalization constant from scratch on every insert would be
    quadratic. *)

type t = {
  theta : float;
  mutable n : int;            (* number of items; samples are in [0, n) *)
  mutable zetan : float;      (* zeta(n, theta), maintained incrementally *)
  zeta2 : float;              (* zeta(2, theta) *)
  alpha : float;
  mutable eta : float;
}

let zeta_range ~theta ~lo ~hi acc =
  let sum = ref acc in
  for i = lo to hi do
    !sum +. (1.0 /. Float.pow (Float.of_int i) theta) |> fun s -> sum := s
  done;
  !sum

let recompute_eta t =
  t.eta <-
    (1.0 -. Float.pow (2.0 /. Float.of_int t.n) (1.0 -. t.theta))
    /. (1.0 -. (t.zeta2 /. t.zetan))

(** [create ~theta n] prepares a sampler over [\[0, n)].  YCSB uses
    [theta = 0.99]. @raise Invalid_argument if [n < 1]. *)
let create ~theta n =
  if n < 1 then invalid_arg "Zipf.create: need at least one item";
  let zetan = zeta_range ~theta ~lo:1 ~hi:n 0.0 in
  let zeta2 = zeta_range ~theta ~lo:1 ~hi:2 0.0 in
  let t =
    { theta; n; zetan; zeta2; alpha = 1.0 /. (1.0 -. theta); eta = 0.0 }
  in
  recompute_eta t;
  t

(** [extend t n] grows the item count to [n] (a no-op if [n <= t.n]),
    extending the zeta constant incrementally. *)
let extend t n =
  if n > t.n then begin
    t.zetan <- zeta_range ~theta:t.theta ~lo:(t.n + 1) ~hi:n t.zetan;
    t.n <- n;
    recompute_eta t
  end

let cardinality t = t.n

(* The incremental-growth invariant tests pin: extending must land on the
   exact constants a from-scratch [create] computes (same summation
   order, so bitwise-equal floats). *)
let zetan t = t.zetan
let eta t = t.eta

(** [sample rng t] draws an item in [\[0, n)]; item 0 is the most popular. *)
let sample rng t =
  let u = Rng.float rng in
  let uz = u *. t.zetan in
  if uz < 1.0 then 0
  else if uz < 1.0 +. Float.pow 0.5 t.theta then 1
  else
    let v =
      Float.of_int t.n
      *. Float.pow ((t.eta *. u) -. t.eta +. 1.0) t.alpha
    in
    let v = int_of_float v in
    if v >= t.n then t.n - 1 else if v < 0 then 0 else v

(** [sample_latest rng t] draws with popularity skewed toward the *largest*
    item ids, modelling "recently ingested keys are updated more
    frequently" (the paper's Zipf upsert workload). *)
let sample_latest rng t = t.n - 1 - sample rng t
