(** Zipfian sampling (YCSB-style, rejection-free), with incremental growth
    of the item count — upsert workloads extend the set of updatable keys
    as ingestion proceeds. *)

type t

val create : theta:float -> int -> t
(** [create ~theta n] prepares a sampler over [[0, n)]; YCSB uses
    [theta = 0.99]. @raise Invalid_argument if [n < 1]. *)

val extend : t -> int -> unit
(** [extend t n] grows the item count (no-op if [n <= cardinality t]),
    extending the zeta normalization incrementally. *)

val cardinality : t -> int

val zetan : t -> float
(** The zeta normalization constant — exposed so tests can pin the
    incremental-growth invariant: [extend] from [n] to [m] lands on
    exactly the constant [create ~theta m] computes. *)

val eta : t -> float

val sample : Rng.t -> t -> int
(** [sample rng t] draws an item in [[0, n)]; item 0 is most popular. *)

val sample_latest : Rng.t -> t -> int
(** [sample_latest rng t] skews popularity toward the *largest* ids,
    modelling "recently ingested keys are updated more frequently". *)
