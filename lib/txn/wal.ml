(** Write-ahead logging for mutable bitmaps (Sec. 5.2).

    The paper unifies bitmap recovery with the LSM no-steal/no-force
    scheme: each delete/upsert log record carries an *update bit* saying
    whether the operation flipped a validity bit in a disk component.  On
    abort, a record with the update bit performs a primary-key-index
    lookup to unset the bit; on crash recovery, committed transactions
    after the last checkpoint are replayed onto the bitmaps (only records
    with the update bit matter to bitmaps). *)

type op_kind = Upsert | Delete

type record = {
  lsn : int;
  txn : int;
  kind : op_kind;
  pk : int;
  update_bit : bool;
      (** the operation invalidated an entry in a disk component *)
  comp_seq : int;  (** which component (its [seq]); -1 if none *)
  pos : int;  (** which bit; -1 if none *)
}

type txn_state = Active | Committed | Aborted

type t = {
  mutable records : record list;  (** newest first *)
  mutable next_lsn : int;
  mutable checkpoint_lsn : int;
  txns : (int, txn_state) Hashtbl.t;
  mutable next_txn : int;
  mutable torn_lsn : int option;
      (** LSN of a trailing record whose append a crash interrupted; the
          record exists in [records] but must be treated as never written *)
  mutable tracer : Lsm_obs.Tracer.t;
      (** span tracer for append/checkpoint; disabled by default.  The
          caller that owns the storage environment attaches the
          environment's tracer so WAL spans share the simulated clock. *)
}

let create () =
  {
    records = [];
    next_lsn = 1;
    checkpoint_lsn = 0;
    txns = Hashtbl.create 64;
    next_txn = 1;
    torn_lsn = None;
    tracer = Lsm_obs.Tracer.disabled;
  }

(** [set_tracer t tr] attaches a span tracer (see {!type:t}). *)
let set_tracer t tr = t.tracer <- tr

(** [begin_txn t] opens a transaction and returns its id. *)
let begin_txn t =
  let id = t.next_txn in
  t.next_txn <- id + 1;
  Hashtbl.replace t.txns id Active;
  id

(** [log t ~txn ~kind ~pk ~update] appends a record; [update] carries the
    (component seq, position) whose bit the operation set, if any. *)
let log t ~txn ~kind ~pk ~update =
  Lsm_obs.Tracer.with_span t.tracer ~cat:"wal" "wal.append" @@ fun () ->
  let lsn = t.next_lsn in
  t.next_lsn <- lsn + 1;
  let update_bit, comp_seq, pos =
    match update with Some (c, p) -> (true, c, p) | None -> (false, -1, -1)
  in
  t.records <- { lsn; txn; kind; pk; update_bit; comp_seq; pos } :: t.records;
  lsn

let commit t ~txn = Hashtbl.replace t.txns txn Committed
let abort t ~txn = Hashtbl.replace t.txns txn Aborted
let txn_state t ~txn = Hashtbl.find_opt t.txns txn

(** [tear_tail t] simulates a crash in the middle of appending the newest
    record: the record occupies log space but is incomplete (on real media,
    its trailing checksum would not verify).  Recovery must ignore it —
    see {!discard_torn_tail}.  No-op on an empty log. *)
let tear_tail t =
  match t.records with [] -> () | r :: _ -> t.torn_lsn <- Some r.lsn

(** [torn_tail t] is the LSN of the torn trailing record, if any. *)
let torn_tail t = t.torn_lsn

(** [discard_torn_tail t] drops the torn trailing record, as a real log
    scan would on a checksum mismatch (truncate-at-first-bad-record).
    Returns the discarded record.  A torn record implies its transaction
    never wrote a commit record after it, so the caller must treat that
    transaction as uncommitted. *)
let discard_torn_tail t =
  match t.torn_lsn with
  | None -> None
  | Some lsn ->
      t.torn_lsn <- None;
      (match t.records with
      | r :: rest when r.lsn = lsn ->
          t.records <- rest;
          Some r
      | _ -> None)

(** [checkpoint t] records that all bitmap pages dirtied by records up to
    this point have been flushed (regular checkpointing, Sec. 5.2). *)
let checkpoint t =
  Lsm_obs.Tracer.with_span t.tracer ~cat:"wal" "wal.checkpoint" @@ fun () ->
  t.checkpoint_lsn <- t.next_lsn - 1

let checkpoint_lsn t = t.checkpoint_lsn

(** [records_after t ~lsn] returns records with LSN > [lsn], oldest
    first — the replay stream. *)
let records_after t ~lsn =
  List.rev (List.filter (fun r -> r.lsn > lsn) t.records)

(** [records_of_txn t ~txn] newest-first — the undo stream for aborts. *)
let records_of_txn t ~txn = List.filter (fun r -> r.txn = txn) t.records

let length t = List.length t.records
