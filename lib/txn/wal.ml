(** Write-ahead logging for mutable bitmaps (Sec. 5.2).

    The paper unifies bitmap recovery with the LSM no-steal/no-force
    scheme: each delete/upsert log record carries an *update bit* saying
    whether the operation flipped a validity bit in a disk component.  On
    abort, a record with the update bit performs a primary-key-index
    lookup to unset the bit; on crash recovery, committed transactions
    after the last checkpoint are replayed onto the bitmaps (only records
    with the update bit matter to bitmaps). *)

type op_kind = Upsert | Delete

type record = {
  lsn : int;
  txn : int;
  kind : op_kind;
  pk : int;
  update_bit : bool;
      (** the operation invalidated an entry in a disk component *)
  comp_seq : int;  (** which component (its [seq]); -1 if none *)
  pos : int;  (** which bit; -1 if none *)
}

type txn_state = Active | Committed | Aborted

type sync_stats = {
  mutable fsyncs : int;  (** simulated log fsyncs issued *)
  mutable fsync_time_us : float;  (** total simulated time inside them *)
  mutable groups_sealed : int;  (** commit groups made durable together *)
  mutable durable_commits : int;  (** commits whose record reached media *)
}

type t = {
  mutable records : record list;  (** newest first *)
  mutable next_lsn : int;
  mutable checkpoint_lsn : int;
  txns : (int, txn_state) Hashtbl.t;
  mutable next_txn : int;
  mutable torn_lsn : int option;
      (** LSN of a trailing record whose append a crash interrupted; the
          record exists in [records] but must be treated as never written *)
  mutable tracer : Lsm_obs.Tracer.t;
      (** span tracer for append/checkpoint; disabled by default.  The
          caller that owns the storage environment attaches the
          environment's tracer so WAL spans share the simulated clock. *)
  mutable group_size : int;
      (** commits per group-commit batch; <= 1 = serial (fsync per commit) *)
  mutable group : int list;
      (** open group: transactions whose commit records are written but not
          yet fsynced (logically committed, not durable), newest first *)
  durable : (int, unit) Hashtbl.t;
      (** transactions whose commit record has been fsynced to media *)
  mutable fsync_us : float;  (** simulated cost of one log fsync *)
  mutable charge : float -> unit;
      (** clock hook: charges fsync time to the owning environment *)
  mutable fault : string -> unit;
      (** fault-point hook: announces the group-commit crash windows
          ([wal.group.seal] / [wal.group.fsync] / [wal.group.ack]) to the
          owning environment's fault-injection machinery *)
  sync_stats : sync_stats;
}

let create () =
  {
    records = [];
    next_lsn = 1;
    checkpoint_lsn = 0;
    txns = Hashtbl.create 64;
    next_txn = 1;
    torn_lsn = None;
    tracer = Lsm_obs.Tracer.disabled;
    group_size = 1;
    group = [];
    durable = Hashtbl.create 64;
    fsync_us = 0.0;
    charge = (fun _ -> ());
    fault = (fun _ -> ());
    sync_stats =
      { fsyncs = 0; fsync_time_us = 0.0; groups_sealed = 0; durable_commits = 0 };
  }

(** [set_tracer t tr] attaches a span tracer (see {!type:t}). *)
let set_tracer t tr = t.tracer <- tr

(** [set_sync_hooks t ~fsync_us ~charge ~fault] attaches the owning
    environment's cost model and fault-injection machinery: [charge]
    advances the simulated clock by the time of each log fsync
    ([fsync_us]), and [fault] announces the group-commit crash windows. *)
let set_sync_hooks t ~fsync_us ~charge ~fault =
  t.fsync_us <- fsync_us;
  t.charge <- charge;
  t.fault <- fault

let sync_stats t = t.sync_stats

(** [begin_txn t] opens a transaction and returns its id. *)
let begin_txn t =
  let id = t.next_txn in
  t.next_txn <- id + 1;
  Hashtbl.replace t.txns id Active;
  id

(** [log t ~txn ~kind ~pk ~update] appends a record; [update] carries the
    (component seq, position) whose bit the operation set, if any. *)
let log t ~txn ~kind ~pk ~update =
  Lsm_obs.Tracer.with_span t.tracer ~cat:"wal" "wal.append" @@ fun () ->
  let lsn = t.next_lsn in
  t.next_lsn <- lsn + 1;
  let update_bit, comp_seq, pos =
    match update with Some (c, p) -> (true, c, p) | None -> (false, -1, -1)
  in
  t.records <- { lsn; txn; kind; pk; update_bit; comp_seq; pos } :: t.records;
  lsn

let charge_fsync t =
  t.charge t.fsync_us;
  t.sync_stats.fsyncs <- t.sync_stats.fsyncs + 1;
  t.sync_stats.fsync_time_us <- t.sync_stats.fsync_time_us +. t.fsync_us

let mark_durable t txn =
  Hashtbl.replace t.durable txn ();
  t.sync_stats.durable_commits <- t.sync_stats.durable_commits + 1

(* Make the open group durable with ONE fsync — the amortization group
   commit exists for.  Three crash windows, announced in order:
   - [wal.group.seal]: the group is sealed (no further commits join it)
     but nothing has reached media — a crash here tears the whole group;
   - [wal.group.fsync]: the fsync was issued (and its time charged) but
     the durable frontier has not advanced — recovery still treats the
     group's commit records as a torn tail;
   - [wal.group.ack]: the group is durable but its committers were never
     acknowledged — recovery MUST surface these transactions as
     committed even though no client heard back. *)
let fsync_group t =
  match t.group with
  | [] -> ()
  | g ->
      t.fault "wal.group.seal";
      charge_fsync t;
      t.fault "wal.group.fsync";
      List.iter (fun txn -> mark_durable t txn) (List.rev g);
      t.sync_stats.groups_sealed <- t.sync_stats.groups_sealed + 1;
      t.group <- [];
      t.fault "wal.group.ack"

(** [sync t] is the group-commit barrier: seal and fsync the open group,
    if any.  Callers must issue it before any action that assumes the log
    is durable — flushing memory components (WAL-before-data) or
    anchoring a checkpoint. *)
let sync t = fsync_group t

(** [set_group_commit t ~batch] switches commit durability to batched
    group commit ([batch] >= 2) or back to serial ([batch] <= 1; the
    default).  Any open group is synced first, so the switch never
    strands enqueued commits. *)
let set_group_commit t ~batch =
  fsync_group t;
  t.group_size <- max 1 batch

let group_commit_batch t = t.group_size
let pending_group t = List.rev t.group

let commit t ~txn =
  Hashtbl.replace t.txns txn Committed;
  if t.group_size <= 1 then begin
    (* Serial: every commit record pays its own fsync. *)
    charge_fsync t;
    mark_durable t txn
  end
  else begin
    t.group <- txn :: t.group;
    if List.length t.group >= t.group_size then fsync_group t
  end

let abort t ~txn = Hashtbl.replace t.txns txn Aborted
let txn_state t ~txn = Hashtbl.find_opt t.txns txn

(** [txn_durable t ~txn]: the transaction committed AND its commit record
    reached media.  Under group commit the two are distinct — a logically
    committed transaction in the open group is not durable, and a crash
    demotes it (see {!crash}).  This is the authority recovery and the
    crash checker consult. *)
let txn_durable t ~txn =
  Hashtbl.find_opt t.txns txn = Some Committed && Hashtbl.mem t.durable txn

(** [crash t] applies a crash's effect to commit durability: every
    transaction in the open (never-fsynced) group is a torn group tail —
    its commit record never reached media — and is demoted to aborted.
    Returns the demoted transaction ids, oldest first. *)
let crash t =
  let demoted = List.rev t.group in
  List.iter (fun txn -> Hashtbl.replace t.txns txn Aborted) demoted;
  t.group <- [];
  demoted

(** [tear_tail t] simulates a crash in the middle of appending the newest
    record: the record occupies log space but is incomplete (on real media,
    its trailing checksum would not verify).  Recovery must ignore it —
    see {!discard_torn_tail}.  No-op on an empty log. *)
let tear_tail t =
  match t.records with [] -> () | r :: _ -> t.torn_lsn <- Some r.lsn

(** [torn_tail t] is the LSN of the torn trailing record, if any. *)
let torn_tail t = t.torn_lsn

(** [discard_torn_tail t] drops the torn trailing record, as a real log
    scan would on a checksum mismatch (truncate-at-first-bad-record).
    Returns the discarded record.  A torn record implies its transaction
    never wrote a commit record after it, so the caller must treat that
    transaction as uncommitted. *)
let discard_torn_tail t =
  match t.torn_lsn with
  | None -> None
  | Some lsn ->
      t.torn_lsn <- None;
      (match t.records with
      | r :: rest when r.lsn = lsn ->
          t.records <- rest;
          Some r
      | _ -> None)

(** [checkpoint t] records that all bitmap pages dirtied by records up to
    this point have been flushed (regular checkpointing, Sec. 5.2). *)
let checkpoint t =
  Lsm_obs.Tracer.with_span t.tracer ~cat:"wal" "wal.checkpoint" @@ fun () ->
  t.checkpoint_lsn <- t.next_lsn - 1

let checkpoint_lsn t = t.checkpoint_lsn

(** [records_after t ~lsn] returns records with LSN > [lsn], oldest
    first — the replay stream. *)
let records_after t ~lsn =
  List.rev (List.filter (fun r -> r.lsn > lsn) t.records)

(** [records_of_txn t ~txn] newest-first — the undo stream for aborts. *)
let records_of_txn t ~txn = List.filter (fun r -> r.txn = txn) t.records

let length t = List.length t.records
