(** A store of per-component validity bitmaps with checkpoint / crash /
    recovery semantics (Sec. 5.2).

    This models the buffer-managed side of mutable bitmaps: bits are
    flipped in memory; a checkpoint durably flushes the current state; a
    crash discards everything after the last checkpoint; recovery replays
    committed log records (those with the update bit set) to bring the
    bitmaps forward again.  Aborts unset bits ("internally change bits
    from 1 to 0"). *)

type t = {
  live : (int, Lsm_util.Bitset.t) Hashtbl.t;  (** component seq -> bitmap *)
  registered : (int, int) Hashtbl.t;
      (** component seq -> size; component creation (flush/merge) is
          durable — only bit flips since the last checkpoint are volatile *)
  mutable checkpointed : (int * Lsm_util.Bitset.t) list;
      (** durable snapshot as of the last checkpoint *)
}

let create () =
  { live = Hashtbl.create 16; registered = Hashtbl.create 16; checkpointed = [] }

(** [register t ~comp_seq ~size] adds an all-valid bitmap for a new
    component (created by flush or merge). *)
let register t ~comp_seq ~size =
  Hashtbl.replace t.registered comp_seq size;
  Hashtbl.replace t.live comp_seq (Lsm_util.Bitset.create size)

let find t ~comp_seq = Hashtbl.find_opt t.live comp_seq

let set t ~comp_seq ~pos =
  match find t ~comp_seq with
  | Some b -> Lsm_util.Bitset.set b pos
  | None -> invalid_arg "Bitmap_store.set: unknown component"

let unset t ~comp_seq ~pos =
  match find t ~comp_seq with
  | Some b -> Lsm_util.Bitset.clear b pos
  | None -> invalid_arg "Bitmap_store.unset: unknown component"

let get t ~comp_seq ~pos =
  match find t ~comp_seq with
  | Some b -> Lsm_util.Bitset.get b pos
  | None -> invalid_arg "Bitmap_store.get: unknown component"

(** [checkpoint t] durably snapshots every bitmap. *)
let checkpoint t =
  t.checkpointed <-
    Hashtbl.fold
      (fun seq b acc -> (seq, Lsm_util.Bitset.copy b) :: acc)
      t.live []

(** [crash t] throws away all volatile state: every registered component
    comes back with an all-valid bitmap (its durable, as-created state),
    overlaid with whatever the last checkpoint flushed (no-steal means
    nothing uncommitted was ever flushed). *)
let crash t =
  Hashtbl.reset t.live;
  Hashtbl.iter
    (fun seq size -> Hashtbl.replace t.live seq (Lsm_util.Bitset.create size))
    t.registered;
  List.iter
    (fun (seq, b) -> Hashtbl.replace t.live seq (Lsm_util.Bitset.copy b))
    t.checkpointed

(** [snapshot t] captures current live state (for test comparison). *)
let snapshot t =
  Hashtbl.fold (fun seq b acc -> (seq, Lsm_util.Bitset.copy b) :: acc) t.live []
  (* Sort by the (unique) component seq only: a typed int comparison, not
     a polymorphic compare that would descend into the bitset payloads. *)
  |> List.sort (fun (s1, _) (s2, _) -> Int.compare s1 s2)

let equal_state a b =
  let norm t = snapshot t in
  let la = norm a and lb = norm b in
  List.length la = List.length lb
  && List.for_all2
       (fun (s1, b1) (s2, b2) ->
         s1 = s2
         && Lsm_util.Bitset.length b1 = Lsm_util.Bitset.length b2
         &&
         let ok = ref true in
         for i = 0 to Lsm_util.Bitset.length b1 - 1 do
           if Lsm_util.Bitset.get b1 i <> Lsm_util.Bitset.get b2 i then ok := false
         done;
         !ok)
       la lb
