(** Crash recovery and abort for mutable bitmaps (Sec. 5.2).

    No-steal / no-force: disk components only ever contain committed data;
    bitmap pages dirtied by a transaction are pinned until it terminates
    and flushed by checkpoints.  Hence:

    - {b abort}: for each of the transaction's log records with the update
      bit set, unset the bit (1 -> 0) — the only situation in which a bit
      is ever cleared;
    - {b recovery}: restore the checkpointed bitmaps, then replay the
      post-checkpoint records of *committed* transactions whose update bit
      is set.  No undo is needed. *)

(** [abort_txn wal store ~txn] undoes [txn]'s bitmap changes and marks it
    aborted. *)
let abort_txn (wal : Wal.t) (store : Bitmap_store.t) ~txn =
  Lsm_obs.Tracer.with_span wal.Wal.tracer ~cat:"wal" "txn.abort" @@ fun () ->
  List.iter
    (fun (r : Wal.record) ->
      if r.Wal.update_bit then
        Bitmap_store.unset store ~comp_seq:r.Wal.comp_seq ~pos:r.Wal.pos)
    (Wal.records_of_txn wal ~txn);
  Wal.abort wal ~txn

(** [recover wal store] runs crash recovery: revert to the checkpoint and
    replay committed post-checkpoint records. *)
let recover (wal : Wal.t) (store : Bitmap_store.t) =
  Lsm_obs.Tracer.with_span wal.Wal.tracer ~cat:"wal" "recovery.replay"
  @@ fun () ->
  (* A crash can tear the newest record mid-append; the log scan stops at
     the first bad checksum, i.e. the record is discarded.  Its transaction
     cannot have committed (its commit record would have to follow the torn
     record), so force it to Aborted before consulting states below. *)
  (match Wal.discard_torn_tail wal with
  | Some r when Wal.txn_state wal ~txn:r.Wal.txn = Some Wal.Active ->
      Wal.abort wal ~txn:r.Wal.txn
  | _ -> ());
  Bitmap_store.crash store;
  List.iter
    (fun (r : Wal.record) ->
      match Wal.txn_state wal ~txn:r.Wal.txn with
      | Some Wal.Committed when r.Wal.update_bit ->
          Bitmap_store.set store ~comp_seq:r.Wal.comp_seq ~pos:r.Wal.pos
      | _ -> ())
    (Wal.records_after wal ~lsn:(Wal.checkpoint_lsn wal))
