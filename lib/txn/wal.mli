(** Write-ahead logging for mutable bitmaps (Sec. 5.2): each delete/upsert
    record carries an *update bit* saying whether the operation flipped a
    validity bit in a disk component (and which one).  Aborts consult a
    transaction's records to unset bits; recovery replays committed
    post-checkpoint records. *)

type op_kind = Upsert | Delete

type record = {
  lsn : int;
  txn : int;
  kind : op_kind;
  pk : int;
  update_bit : bool;
  comp_seq : int;  (** which component's bit was set; -1 if none *)
  pos : int;  (** which bit; -1 if none *)
}

type txn_state = Active | Committed | Aborted

type t = {
  mutable records : record list;  (** newest first *)
  mutable next_lsn : int;
  mutable checkpoint_lsn : int;
  txns : (int, txn_state) Hashtbl.t;
  mutable next_txn : int;
  mutable torn_lsn : int option;
      (** LSN of a trailing record whose append a crash interrupted *)
  mutable tracer : Lsm_obs.Tracer.t;
      (** span tracer for append/checkpoint spans; disabled by default *)
}

val create : unit -> t

val set_tracer : t -> Lsm_obs.Tracer.t -> unit
(** Attach the storage environment's tracer so WAL spans share the
    simulated clock. *)

val begin_txn : t -> int
(** Open a transaction; returns its id. *)

val log : t -> txn:int -> kind:op_kind -> pk:int -> update:(int * int) option -> int
(** Append a record; [update] is the (component seq, position) whose bit
    the operation set, if any.  Returns the LSN. *)

val commit : t -> txn:int -> unit
val abort : t -> txn:int -> unit
val txn_state : t -> txn:int -> txn_state option

(** {1 Torn tails}

    A crash can interrupt the append of the newest record, leaving a
    partial record on media whose checksum would not verify.  {!tear_tail}
    simulates that; {!Recovery.recover} discards the torn record
    (truncate-at-first-bad-record) before replaying. *)

val tear_tail : t -> unit
(** Mark the newest record as torn (no-op on an empty log). *)

val torn_tail : t -> int option
(** LSN of the torn trailing record, if any. *)

val discard_torn_tail : t -> record option
(** Drop the torn trailing record and return it.  A torn record implies
    its transaction never wrote a commit record after it, so callers must
    treat that transaction as uncommitted. *)

val checkpoint : t -> unit
(** Record that all bitmap pages dirtied so far have been flushed. *)

val checkpoint_lsn : t -> int

val records_after : t -> lsn:int -> record list
(** Records with LSN > [lsn], oldest first — the replay stream. *)

val records_of_txn : t -> txn:int -> record list
(** A transaction's records, newest first — the undo stream. *)

val length : t -> int
