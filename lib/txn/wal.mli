(** Write-ahead logging for mutable bitmaps (Sec. 5.2): each delete/upsert
    record carries an *update bit* saying whether the operation flipped a
    validity bit in a disk component (and which one).  Aborts consult a
    transaction's records to unset bits; recovery replays committed
    post-checkpoint records. *)

type op_kind = Upsert | Delete

type record = {
  lsn : int;
  txn : int;
  kind : op_kind;
  pk : int;
  update_bit : bool;
  comp_seq : int;  (** which component's bit was set; -1 if none *)
  pos : int;  (** which bit; -1 if none *)
}

type txn_state = Active | Committed | Aborted

type sync_stats = {
  mutable fsyncs : int;  (** simulated log fsyncs issued *)
  mutable fsync_time_us : float;  (** total simulated time inside them *)
  mutable groups_sealed : int;  (** commit groups made durable together *)
  mutable durable_commits : int;  (** commits whose record reached media *)
}

type t = {
  mutable records : record list;  (** newest first *)
  mutable next_lsn : int;
  mutable checkpoint_lsn : int;
  txns : (int, txn_state) Hashtbl.t;
  mutable next_txn : int;
  mutable torn_lsn : int option;
      (** LSN of a trailing record whose append a crash interrupted *)
  mutable tracer : Lsm_obs.Tracer.t;
      (** span tracer for append/checkpoint spans; disabled by default *)
  mutable group_size : int;
      (** commits per group-commit batch; <= 1 = serial *)
  mutable group : int list;
      (** open group: committed but not yet durable, newest first *)
  durable : (int, unit) Hashtbl.t;
      (** transactions whose commit record has been fsynced *)
  mutable fsync_us : float;
  mutable charge : float -> unit;
  mutable fault : string -> unit;
  sync_stats : sync_stats;
}

val create : unit -> t

val set_tracer : t -> Lsm_obs.Tracer.t -> unit
(** Attach the storage environment's tracer so WAL spans share the
    simulated clock. *)

val set_sync_hooks :
  t -> fsync_us:float -> charge:(float -> unit) -> fault:(string -> unit) -> unit
(** Attach the owning environment's cost model and fault machinery:
    [charge] advances the simulated clock by [fsync_us] per log fsync,
    and [fault] announces the [wal.group.*] crash windows. *)

val sync_stats : t -> sync_stats

val begin_txn : t -> int
(** Open a transaction; returns its id. *)

val log : t -> txn:int -> kind:op_kind -> pk:int -> update:(int * int) option -> int
(** Append a record; [update] is the (component seq, position) whose bit
    the operation set, if any.  Returns the LSN. *)

val commit : t -> txn:int -> unit
(** Mark the transaction committed.  Serial mode ([group_size <= 1])
    fsyncs the commit record immediately; group-commit mode enqueues it
    into the open group, sealing and fsyncing the group — ONE simulated
    fsync for the whole batch — when it reaches [group_size]. *)

val abort : t -> txn:int -> unit
val txn_state : t -> txn:int -> txn_state option

(** {1 Group commit (batched durability)}

    Commits enqueue into a group; one simulated fsync per group makes
    every member durable at once, amortizing the log-force cost across
    the batch.  The durable frontier advances per group: a transaction
    can be logically committed yet not durable, and a crash demotes such
    transactions (torn group tail).  Three fault points —
    [wal.group.seal], [wal.group.fsync], [wal.group.ack] — bracket the
    durability transition so the crash checker can enumerate every torn
    and half-acknowledged group state. *)

val set_group_commit : t -> batch:int -> unit
(** Switch to batched group commit ([batch] >= 2) or back to serial
    ([batch] <= 1).  Syncs any open group first. *)

val group_commit_batch : t -> int

val sync : t -> unit
(** Group-commit barrier: seal and fsync the open group.  Must run
    before anything that assumes the log is durable (component flushes,
    checkpoint anchoring). *)

val pending_group : t -> int list
(** Transactions committed but not yet durable, oldest first. *)

val txn_durable : t -> txn:int -> bool
(** Committed AND the commit record reached media — the authority that
    recovery and the crash checker consult. *)

val crash : t -> int list
(** Apply a crash to commit durability: demote the open group's
    transactions (commit records never fsynced — a torn group tail) to
    aborted.  Returns the demoted ids, oldest first. *)

(** {1 Torn tails}

    A crash can interrupt the append of the newest record, leaving a
    partial record on media whose checksum would not verify.  {!tear_tail}
    simulates that; {!Recovery.recover} discards the torn record
    (truncate-at-first-bad-record) before replaying. *)

val tear_tail : t -> unit
(** Mark the newest record as torn (no-op on an empty log). *)

val torn_tail : t -> int option
(** LSN of the torn trailing record, if any. *)

val discard_torn_tail : t -> record option
(** Drop the torn trailing record and return it.  A torn record implies
    its transaction never wrote a commit record after it, so callers must
    treat that transaction as uncommitted. *)

val checkpoint : t -> unit
(** Record that all bitmap pages dirtied so far have been flushed. *)

val checkpoint_lsn : t -> int

val records_after : t -> lsn:int -> record list
(** Records with LSN > [lsn], oldest first — the replay stream. *)

val records_of_txn : t -> txn:int -> record list
(** A transaction's records, newest first — the undo stream. *)

val length : t -> int
