(** Hash-partitioned datasets — the shared-nothing architecture of
    Sec. 2.2: "records of a dataset are hash-partitioned based on their
    primary keys across multiple nodes"; every partition has its own full
    set of local LSM indexes, "secondary index lookups are routed to all
    dataset partitions", and primary-key operations to exactly one.

    Each partition runs against its own storage environment (its own
    simulated node: device, cache, clock), so the simulated wall-clock of
    the whole system is the *maximum* over partition clocks — ingestion
    and queries are partition-parallel, which is why the paper evaluates a
    single partition and notes that "the overall performance of multiple
    partitions generally achieves near-linear speedup" (Sec. 6.1).  The
    scale-out ablation bench checks exactly that claim. *)

module Make (R : Record.S) = struct
  module D = Dataset.Make (R)

  type t = {
    parts : D.t array;
    envs : Lsm_sim.Env.t array;
  }

  (** [create ~mk_env ~partitions cfg] builds [partitions] local datasets;
      [mk_env i] supplies partition [i]'s storage environment ("node"). *)
  let create ?filter_key ?(secondaries = []) ~mk_env ~partitions cfg =
    if partitions < 1 then invalid_arg "Partitioned.create: partitions >= 1";
    let envs = Array.init partitions mk_env in
    let parts =
      Array.map (fun env -> D.create ?filter_key ~secondaries env cfg) envs
    in
    { parts; envs }

  let partitions t = Array.length t.parts
  let partition t i = t.parts.(i)
  let env t i = t.envs.(i)

  let route t pk =
    Lsm_bloom.Hashing.mix64 pk land max_int mod Array.length t.parts

  (* ------------------------------------------------------------------ *)
  (* Ingestion: routed to one partition. *)

  let insert t r = D.insert t.parts.(route t (R.primary_key r)) r
  let upsert t r = D.upsert t.parts.(route t (R.primary_key r)) r
  let delete t ~pk = D.delete t.parts.(route t pk) ~pk

  (* ------------------------------------------------------------------ *)
  (* Queries *)

  (** [point_query t pk] touches exactly the owning partition. *)
  let point_query t pk = D.point_query t.parts.(route t pk) pk

  (** [point_query_batch_part t i pks ~emit] resolves the point queries
      of one partition's key group: sorted locally (comparisons charged
      to that node) and resolved with one [lookup_batch] against the
      partition's primary index.  Every key must be owned by [i].  A
      degraded front door uses this to answer a multi-get partition by
      partition, so one failed node costs only its own slots. *)
  let point_query_batch_part ?lookup t i pks ~emit =
    if pks <> [] then begin
      let d = t.parts.(i) in
      let arr = Array.of_list pks in
      let cmps = ref 0 in
      Lsm_util.Sorter.sort ~cmp:(fun a b -> compare (a : int) b) ~cost:cmps arr;
      Lsm_sim.Env.charge_comparisons t.envs.(i) !cmps;
      let lookup =
        match lookup with Some l -> l | None -> D.Prim.default_lookup_opts
      in
      D.Prim.lookup_batch (D.primary d) lookup (D.Prim.plain_keys arr)
        ~emit:(fun pk row ->
          emit pk
            (match row with
            | Some { D.Prim.value = Lsm_tree.Entry.Put r; _ } -> Some r
            | _ -> None))
    end

  (** [point_query_batch t pks ~emit] resolves many primary-key point
      queries through the batched-lookup machinery of Sec. 3.2, fanned
      out across partitions: keys are grouped by owner, each group
      sorted locally, and resolved with one [lookup_batch] against the
      owning partition's primary index.  [emit] fires exactly once per
      input key, in per-partition fetch order. *)
  let point_query_batch ?lookup t pks ~emit =
    let n = Array.length t.parts in
    let groups = Array.make n [] in
    Array.iter (fun pk -> let i = route t pk in groups.(i) <- pk :: groups.(i)) pks;
    Array.iteri (fun i ks -> point_query_batch_part ?lookup t i ks ~emit) groups

  (** [query_secondary_part t i ...] is one partition's share of a
      secondary fan-out — the unit a degraded front door can still
      answer when other partitions are down. *)
  let query_secondary_part t i ~sec ~lo ~hi ~mode ?lookup () =
    D.query_secondary t.parts.(i) ~sec ~lo ~hi ~mode ?lookup ()

  (** [query_secondary t ...] fans out to all partitions and concatenates
      (the paper: "returned primary keys are then sorted locally before
      retrieving the records in the local partitions"). *)
  let query_secondary t ~sec ~lo ~hi ~mode ?lookup () =
    List.init (Array.length t.parts) Fun.id
    |> List.concat_map (fun i -> query_secondary_part t i ~sec ~lo ~hi ~mode ?lookup ())

  let query_secondary_keys t ~sec ~lo ~hi ~mode () =
    Array.to_list t.parts
    |> List.concat_map (fun d -> D.query_secondary_keys d ~sec ~lo ~hi ~mode ())

  let query_time_range_part t i ~tlo ~thi ~f =
    D.query_time_range t.parts.(i) ~tlo ~thi ~f

  let query_time_range t ~tlo ~thi ~f =
    Array.fold_left (fun acc d -> acc + D.query_time_range d ~tlo ~thi ~f) 0 t.parts

  let full_scan t ~f =
    Array.fold_left (fun acc d -> acc + D.full_scan d ~f) 0 t.parts

  (* ------------------------------------------------------------------ *)
  (* Timing under partition parallelism *)

  (** [sim_time_s t] is the system's simulated wall clock: partitions run
      in parallel, so completion time is the slowest partition's clock. *)
  let sim_time_s t =
    Array.fold_left (fun acc env -> max acc (Lsm_sim.Env.now_s env)) 0.0 t.envs

  (** [sim_time_total_s t] is the aggregate machine time (for efficiency
      accounting). *)
  let sim_time_total_s t =
    Array.fold_left (fun acc env -> acc +. Lsm_sim.Env.now_s env) 0.0 t.envs

  let flush_now t = Array.iter D.flush_now t.parts

  let total_disk_bytes t =
    Array.fold_left (fun acc d -> acc + D.total_disk_bytes d) 0 t.parts

  (* ------------------------------------------------------------------ *)
  (* Shared memory budget hooks (Sec. 2.3).  By default every partition's
     dataset budgets independently through its own [maybe_flush]; a
     global coordinator (Lsm_serve.Budget) instead disables per-partition
     auto-maintenance and uses these to watch aggregate memory and evict
     the largest memtable across the cluster. *)

  (** [set_auto_maintenance t on] toggles every partition's own
      budget-triggered flush/merge. *)
  let set_auto_maintenance t on =
    Array.iter (fun d -> D.set_auto_maintenance d on) t.parts

  (** [set_maint_workers t n] sets every partition's modeled
      maintenance-worker count (overlapping merges when [n > 1]). *)
  let set_maint_workers t n =
    Array.iter (fun d -> D.set_maint_workers d n) t.parts

  let mem_bytes_of t i = D.total_mem_bytes t.parts.(i)

  (** [total_mem_bytes t] is the aggregate memory-component footprint
      across all partitions. *)
  let total_mem_bytes t =
    Array.fold_left (fun acc d -> acc + D.total_mem_bytes d) 0 t.parts

  (** [largest_mem_partition t] is the index of the partition currently
      holding the most memory-component bytes (ties break low). *)
  let largest_mem_partition t =
    let best = ref 0 and best_bytes = ref min_int in
    Array.iteri
      (fun i d ->
        let b = D.total_mem_bytes d in
        if b > !best_bytes then begin
          best := i;
          best_bytes := b
        end)
      t.parts;
    !best

  (** [flush_partition t i] flushes partition [i]'s memory components and
      runs its merge scheduler (the coordinator's eviction primitive). *)
  let flush_partition t i = D.flush_now t.parts.(i)

  (** [mem_shards t] is the per-tree memory shard count (uniform across
      partitions — they share one dataset config). *)
  let mem_shards t = D.mem_shards t.parts.(0)

  (** [shard_bytes_of t i s] is partition [i]'s aggregate bytes in memory
      shard [s] — the coordinator's eviction unit when sharded. *)
  let shard_bytes_of t i s = D.mem_shard_bytes t.parts.(i) s

  (** [flush_partition_shard t i s] flushes only shard [s] of partition
      [i]'s memory components (and runs its merge scheduler): the
      finer-grained eviction primitive that avoids dumping a whole
      partition's memtables when the global budget trips. *)
  let flush_partition_shard t i s = D.flush_shard_now t.parts.(i) s
end
