(** Adaptive strategy selection — the paper's future-work item
    ("no strategy was found to work best for all workloads, we plan to
    develop auto-tuning techniques so that the system could dynamically
    adopt the optimal maintenance strategies", Sec. 7), implemented for
    the Eager / Validation pair it mainly contrasts.

    The controller watches a sliding window of operations and switches:

    - to {b Validation} when the workload is write-dominated — updates are
      plentiful relative to secondary-index queries, so paying a point
      lookup per upsert (Eager) is the wrong side of the trade;
    - to {b Eager} when it is query-dominated — the validation overhead on
      every query outweighs the occasional ingestion lookups.

    Switching Eager -> Validation is free: Eager-maintained indexes are
    already clean, and the engine simply stops doing ingestion-time
    lookups.  Switching Validation -> Eager must first run a full
    standalone repair so every obsolete entry is invalidated; from then on
    the eager invariant (indexes always current) holds again, and queries
    may drop their validation step.

    Correctness does not depend on the controller's taste: whatever the
    mode history, queries answer exactly like the reference model (see
    [test_adaptive.ml]'s property). *)

module Make (R : Record.S) (D : module type of Dataset.Make (R)) = struct
  type mode = Eager_mode | Validation_mode

  type config = {
    window : int;  (** operations per decision window *)
    write_heavy : float;
        (** switch to Validation when updates-per-query exceeds this *)
    query_heavy : float;
        (** switch to Eager when updates-per-query drops below this *)
  }

  let default_config = { window = 2_000; write_heavy = 20.0; query_heavy = 2.0 }

  type t = {
    d : D.t;
    cfg : config;
    mutable mode : mode;
    mutable w_updates : int;  (** updates/deletes in the current window *)
    mutable w_queries : int;  (** secondary queries in the current window *)
    mutable w_ops : int;
    mutable switches : int;
    mutable repairs_on_switch : int;
  }

  (** [create ?config d] wraps [d].  The dataset must use the Validation
      strategy (the controller toggles the *behavioural* mode; validation
      is the safe resting state). *)
  let create ?(config = default_config) d =
    (match D.strategy d with
    | Strategy.Validation _ -> ()
    | _ -> invalid_arg "Adaptive.create: dataset must use Validation");
    {
      d;
      cfg = config;
      mode = Validation_mode;
      w_updates = 0;
      w_queries = 0;
      w_ops = 0;
      switches = 0;
      repairs_on_switch = 0;
    }

  let dataset t = t.d
  let mode t = t.mode
  let switches t = t.switches

  let switch_to t target =
    if t.mode <> target then begin
      (match target with
      | Eager_mode ->
          (* Clean the lazily-maintained indexes before asserting the
             eager invariant. *)
          D.standalone_repair t.d;
          t.repairs_on_switch <- t.repairs_on_switch + 1
      | Validation_mode -> ());
      t.mode <- target;
      t.switches <- t.switches + 1;
      Log.info (fun m ->
          m "adaptive: switched to %s after %d updates / %d queries"
            (match target with
            | Eager_mode -> "eager"
            | Validation_mode -> "validation")
            t.w_updates t.w_queries)
    end

  let decide t =
    let upq =
      Float.of_int t.w_updates /. Float.of_int (max 1 t.w_queries)
    in
    if t.w_queries = 0 || upq > t.cfg.write_heavy then
      switch_to t Validation_mode
    else if upq < t.cfg.query_heavy then switch_to t Eager_mode;
    t.w_updates <- 0;
    t.w_queries <- 0;
    t.w_ops <- 0

  let tick t =
    t.w_ops <- t.w_ops + 1;
    if t.w_ops >= t.cfg.window then decide t

  (* ------------------------------------------------------------------ *)
  (* Operations: eager mode performs the Eager strategy's maintenance by
     hand (the underlying dataset is configured as Validation). *)

  let eager_cleanup t r_new ~pk ~ts =
    match D.Prim.lookup_one (D.primary t.d) pk with
    | Some { D.Prim.value = Dataset.Entry.Put old_r; _ } ->
        Array.iter
          (fun s ->
            let new_keys =
              match r_new with None -> [] | Some r -> s.D.extract_all r
            in
            List.iter
              (fun sko ->
                if not (List.mem sko new_keys) then
                  D.Sec.write s.D.tree ~key:(sko, pk) ~ts Dataset.Entry.Del)
              (s.D.extract_all old_r))
          (D.secondaries t.d);
        (match D.filter_key_fn t.d with
        | Some fk -> D.Prim.widen_filter (D.primary t.d) pk (fk old_r)
        | None -> ());
        true
    | _ -> false

  let upsert t r =
    t.w_updates <- t.w_updates + 1;
    (match t.mode with
    | Validation_mode -> D.upsert t.d r
    | Eager_mode ->
        (* The dataset's Validation upsert plus an eager-style cleanup
           pass, so indexes stay current.  The anti-matter shares the
           timestamp the upsert is about to consume. *)
        let pk = R.primary_key r in
        let ts = D.now_ts t.d + 1 in
        ignore (eager_cleanup t (Some r) ~pk ~ts);
        D.upsert t.d r);
    tick t

  let delete t ~pk =
    t.w_updates <- t.w_updates + 1;
    (match t.mode with
    | Validation_mode -> D.delete t.d ~pk
    | Eager_mode ->
        let ts = D.now_ts t.d + 1 in
        ignore (eager_cleanup t None ~pk ~ts);
        D.delete t.d ~pk);
    tick t

  let insert t r =
    t.w_updates <- t.w_updates + 1;
    let res = D.insert t.d r in
    tick t;
    res

  (** [query_secondary t ...] uses the cheap plan the current mode
      allows: no validation under the eager invariant, Timestamp
      validation otherwise. *)
  let query_secondary t ~sec ~lo ~hi () =
    t.w_queries <- t.w_queries + 1;
    let mode : D.validation_mode =
      match t.mode with
      | Eager_mode -> `Assume_valid
      | Validation_mode -> `Timestamp
    in
    let r = D.query_secondary t.d ~sec ~lo ~hi ~mode () in
    tick t;
    r

  let point_query t pk = D.point_query t.d pk
end
