(** Hash-partitioned datasets — the shared-nothing architecture of
    Sec. 2.2.  Each partition has its own full set of local LSM indexes
    and its own storage environment ("node"); primary-key operations route
    to one partition, secondary queries fan out to all.  System wall-clock
    under partition parallelism is the slowest partition's clock. *)

module Make (R : Record.S) : sig
  module D : module type of Dataset.Make (R)

  type t

  val create :
    ?filter_key:(R.t -> int) ->
    ?secondaries:R.t Record.secondary list ->
    mk_env:(int -> Lsm_sim.Env.t) ->
    partitions:int ->
    D.config ->
    t

  val partitions : t -> int
  val partition : t -> int -> D.t
  val env : t -> int -> Lsm_sim.Env.t
  val route : t -> int -> int

  (** {1 Ingestion (routed)} *)

  val insert : t -> R.t -> [ `Inserted | `Duplicate ]
  val upsert : t -> R.t -> unit
  val delete : t -> pk:int -> unit

  (** {1 Queries} *)

  val point_query : t -> int -> R.t option
  (** Touches exactly the owning partition. *)

  val point_query_batch :
    ?lookup:D.Prim.lookup_opts ->
    t ->
    int array ->
    emit:(int -> R.t option -> unit) ->
    unit
  (** Batched cross-partition multi-get: keys grouped by owning
      partition, sorted locally, resolved through the batched
      point-lookup machinery of Sec. 3.2.  [emit] fires exactly once per
      input key, in per-partition fetch order. *)

  val point_query_batch_part :
    ?lookup:D.Prim.lookup_opts ->
    t ->
    int ->
    int list ->
    emit:(int -> R.t option -> unit) ->
    unit
  (** One partition's share of a multi-get: every key must be owned by
      the given partition.  A degraded front door answers a multi-get
      partition by partition through this, so a failed node costs only
      its own key slots. *)

  val query_secondary_part :
    t ->
    int ->
    sec:string ->
    lo:int ->
    hi:int ->
    mode:D.validation_mode ->
    ?lookup:D.Prim.lookup_opts ->
    unit ->
    R.t list
  (** One partition's share of a secondary fan-out. *)

  val query_secondary :
    t ->
    sec:string ->
    lo:int ->
    hi:int ->
    mode:D.validation_mode ->
    ?lookup:D.Prim.lookup_opts ->
    unit ->
    R.t list
  (** Fan-out to all partitions, concatenated. *)

  val query_secondary_keys :
    t ->
    sec:string ->
    lo:int ->
    hi:int ->
    mode:[ `Assume_valid | `Timestamp ] ->
    unit ->
    (int * int) list

  val query_time_range : t -> tlo:int -> thi:int -> f:(R.t -> unit) -> int

  val query_time_range_part :
    t -> int -> tlo:int -> thi:int -> f:(R.t -> unit) -> int
  (** One partition's share of a time-range fan-out. *)

  val full_scan : t -> f:(R.t -> unit) -> int

  (** {1 Timing and maintenance} *)

  val sim_time_s : t -> float
  (** Parallel completion time: the slowest partition's clock. *)

  val sim_time_total_s : t -> float
  (** Aggregate machine time across partitions. *)

  val flush_now : t -> unit
  val total_disk_bytes : t -> int

  (** {1 Shared memory budget hooks (Sec. 2.3)}

      By default each partition's dataset budgets its own memory; a
      global flush coordinator ([Lsm_serve.Budget]) disables that and
      drives evictions across the cluster through these. *)

  val set_auto_maintenance : t -> bool -> unit
  (** Toggle every partition's own budget-triggered flush/merge. *)

  val set_maint_workers : t -> int -> unit
  (** Set every partition's modeled maintenance-worker count; [> 1]
      overlaps independent merges deterministically (Sec. 2.3). *)

  val mem_bytes_of : t -> int -> int
  val total_mem_bytes : t -> int

  val largest_mem_partition : t -> int
  (** Index of the partition holding the most memory-component bytes. *)

  val flush_partition : t -> int -> unit
  (** Flush one partition's memory components and run its merges — the
      coordinator's eviction primitive. *)

  val mem_shards : t -> int
  (** Per-tree memory shard count (uniform across partitions). *)

  val shard_bytes_of : t -> int -> int -> int
  (** [shard_bytes_of t i s]: partition [i]'s aggregate bytes in memory
      shard [s] — the coordinator's eviction unit when sharded. *)

  val flush_partition_shard : t -> int -> int -> unit
  (** [flush_partition_shard t i s] flushes only shard [s] of partition
      [i]'s memory components (and runs its merges): the finer-grained
      eviction primitive that avoids dumping whole partition memtables
      when the global budget trips. *)
end
