(** The LSM storage architecture of Sec. 3 (Fig. 1): per dataset, a primary
    index, an optional primary key index, and a set of secondary indexes —
    all LSM-trees sharing one memory budget, flushed together, with
    Bloom filters on primary/primary-key components and an optional range
    filter on the primary index.

    Ingestion ([insert] / [delete] / [upsert]) follows the configured
    {!Strategy.t}; queries live in the [Query] section below; background
    index repair in the [Repair] section. *)

module Entry = Lsm_tree.Entry

(** Counters for the overlapping-maintenance scheduler (Sec. 2.3): how
    many rounds ran, how many merge jobs they dispatched, the widest
    observed overlap, the serial sum of job busy times versus the modeled
    W-worker makespan actually charged to the clock, and how often two
    runnable jobs claimed the same tree (must stay zero — jobs are
    constructed over disjoint trees). *)
type maint_stats = {
  mutable maint_rounds : int;
  mutable maint_jobs : int;
  mutable maint_max_overlap : int;
  mutable maint_shared_claims : int;
  mutable maint_serial_us : float;
  mutable maint_makespan_us : float;
}

module Make (R : Record.S) = struct
  module Rv = struct
    type t = R.t

    let byte_size = R.byte_size
    let pp = R.pp
  end

  module Prim = Lsm_tree.Make (Lsm_util.Keys.Int_key) (Rv)
  module Pk = Lsm_tree.Make (Lsm_util.Keys.Int_key) (Lsm_util.Keys.Unit_value)
  module Sec = Lsm_tree.Make (Lsm_util.Keys.Int_pair_key) (Lsm_util.Keys.Unit_value)

  type sec_index = {
    sec_name : string;
    extract_all : R.t -> int list;  (** all secondary keys of a record *)
    tree : Sec.t;
    del_tree : Pk.t option;
        (** deleted-key structure (Deleted_key_btree strategy only) *)
  }

  type config = {
    strategy : Strategy.t;
    mem_budget : int;  (** shared across all the dataset's memory components *)
    merge_policy : Lsm_tree.Merge_policy.t;
    use_pk_index : bool;  (** Fig. 13 evaluates inserts without one *)
    bloom : Lsm_tree.Config.bloom option;
        (** Bloom settings for primary / primary-key / deleted-key
            components (secondary indexes are range-scanned, no filter) *)
    maint_workers : int;
        (** modeled maintenance workers; > 1 overlaps independent merges *)
    mem_shards : int;
        (** memory shards per tree (Sec. 2.3 flush granularity): > 1
            lets the budget evict one shard at a time while its siblings
            keep absorbing writes; 1 = classic whole-memtable flushes *)
  }

  let default_config =
    {
      strategy = Strategy.eager;
      mem_budget = 4 * 1024 * 1024;
      merge_policy = Lsm_tree.Merge_policy.tiering ~size_ratio:1.2 ();
      use_pk_index = true;
      bloom = Some Lsm_tree.Config.default_bloom;
      maint_workers = 1;
      mem_shards = 1;
    }

  type stats = {
    mutable n_inserts : int;
    mutable n_upserts : int;
    mutable n_deletes : int;
    mutable n_duplicates : int;  (** inserts rejected by the uniqueness check *)
    mutable n_flushes : int;
    mutable n_merges : int;
    mutable n_repairs : int;  (** component repair operations *)
    mutable flush_us : float;  (** simulated time inside flushes *)
    mutable merge_us : float;
        (** simulated time inside the merge scheduler (includes any merge
            repairs, which {!repair_us} also counts separately) *)
    mutable repair_us : float;  (** simulated time inside repair operations *)
  }

  type t = {
    env : Lsm_sim.Env.t;
    cfg : config;
    filter_key : (R.t -> int) option;
    primary : Prim.t;
    pk_index : Pk.t option;
    secondaries : sec_index array;
    mutable clock : int;  (** logical ingestion timestamp (Sec. 4.1) *)
    stats : stats;
    maint : maint_stats;
    mutable maint_workers : int;
        (** > 1: the merge scheduler overlaps independent jobs *)
    mutable auto_maintenance : bool;
        (** flush/merge when the budget fills; disable to drive manually *)
  }

  let total_mem_bytes t =
    Prim.mem_bytes t.primary
    + (match t.pk_index with Some pk -> Pk.mem_bytes pk | None -> 0)
    + Array.fold_left
        (fun acc s ->
          acc + Sec.mem_bytes s.tree
          + (match s.del_tree with Some d -> Pk.mem_bytes d | None -> 0))
        0 t.secondaries

  let create ?filter_key ?(secondaries = []) env cfg =
    let bitmap = Strategy.uses_primary_bitmap cfg.strategy in
    let shards = max 1 cfg.mem_shards in
    let primary =
      Prim.create ?filter_of:filter_key env
        (Lsm_tree.Config.make ~bloom:cfg.bloom ~validity_bitmap:bitmap ~shards
           "primary")
    in
    let pk_index =
      if cfg.use_pk_index then
        Some
          (Pk.create env
             (Lsm_tree.Config.make ~bloom:cfg.bloom ~validity_bitmap:bitmap
                ~shards "pk-index"))
      else None
    in
    let mk_sec (s : R.t Record.secondary) =
      {
        sec_name = s.Record.sec_name;
        extract_all = s.Record.extract_all;
        tree =
          Sec.create env
            (Lsm_tree.Config.make ~bloom:None ~validity_bitmap:false ~shards
               ("sec:" ^ s.Record.sec_name));
        del_tree =
          (match cfg.strategy with
          | Strategy.Deleted_key_btree ->
              Some
                (Pk.create env
                   (Lsm_tree.Config.make ~bloom:cfg.bloom ~validity_bitmap:false
                      ~shards
                      ("del:" ^ s.Record.sec_name)))
          | _ -> None);
      }
    in
    let t =
      {
        env;
        cfg;
        filter_key;
        primary;
        pk_index;
        secondaries = Array.of_list (List.map mk_sec secondaries);
        clock = 0;
        stats =
          {
            n_inserts = 0;
            n_upserts = 0;
            n_deletes = 0;
            n_duplicates = 0;
            n_flushes = 0;
            n_merges = 0;
            n_repairs = 0;
            flush_us = 0.0;
            merge_us = 0.0;
            repair_us = 0.0;
          };
        maint =
          {
            maint_rounds = 0;
            maint_jobs = 0;
            maint_max_overlap = 0;
            maint_shared_claims = 0;
            maint_serial_us = 0.0;
            maint_makespan_us = 0.0;
          };
        maint_workers = max 1 cfg.maint_workers;
        auto_maintenance = true;
      }
    in
    (* Make the environment aware of this dataset's in-memory footprint,
       so a cross-partition coordinator can budget memory globally
       (Sec. 2.3) without reaching into engine internals. *)
    Lsm_sim.Env.register_mem_probe env (fun () -> total_mem_bytes t);
    t

  let env t = t.env
  let stats t = t.stats
  let strategy t = t.cfg.strategy
  let config t = t.cfg
  let maint_stats t = t.maint
  let maint_workers t = t.maint_workers
  let set_maint_workers t n = t.maint_workers <- max 1 n
  let secondary t name =
    match Array.find_opt (fun s -> s.sec_name = name) t.secondaries with
    | Some s -> s
    | None -> invalid_arg ("Dataset: no secondary index named " ^ name)

  let next_ts t =
    t.clock <- t.clock + 1;
    t.clock

  let now_ts t = t.clock

  (** [next_timestamp t] hands out a fresh ingestion timestamp — for
      machinery (like the concurrent-merge writers of Sec. 5.3) that
      bypasses the regular ingestion entry points. *)
  let next_timestamp = next_ts

  (* ------------------------------------------------------------------ *)
  (* Shared flush and merge scheduling *)

  (* Unify the newest primary / primary-key components' bitmaps so that a
     bit set through either index is seen by both (their entries align
     positionally: same keys, same order; Sec. 5.1). *)
  let unify_newest_bitmaps t =
    match t.pk_index with
    | Some pk when Strategy.uses_primary_bitmap t.cfg.strategy ->
        let pcs = Prim.components t.primary and kcs = Pk.components pk in
        if Array.length pcs > 0 && Array.length kcs > 0 then
          kcs.(0).Pk.bitmap <- pcs.(0).Prim.bitmap
    | _ -> ()

  let flush_all t =
    Lsm_sim.Env.span t.env ~cat:"dataset" "dataset.flush" @@ fun () ->
    let t0 = Lsm_sim.Env.now_us t.env in
    let flushed = Prim.mem_count t.primary > 0 in
    if flushed then Lsm_sim.Env.fault_point t.env "dataset.flush.begin";
    Prim.flush t.primary;
    (* The most delicate crash window: the primary's flush is durable but
       the primary-key index's is not yet (recovery rolls the primary back
       to the aligned cut; see Txn_dataset.recover). *)
    if flushed then Lsm_sim.Env.fault_point t.env "dataset.flush.pair";
    (match t.pk_index with Some pk -> Pk.flush pk | None -> ());
    Array.iter
      (fun s ->
        Sec.flush s.tree;
        match s.del_tree with Some d -> Pk.flush d | None -> ())
      t.secondaries;
    (* Unconditional (idempotent, cheap): a supervised retry after a
       partial flush — primary flushed, pk-index flush died — re-enters
       with an empty primary memory, and the newest pair must still end
       up sharing one bitmap object. *)
    unify_newest_bitmaps t;
    if flushed then begin
      t.stats.n_flushes <- t.stats.n_flushes + 1;
      Log.debug (fun m ->
          m "flush #%d: %d primary components, %d disk bytes"
            t.stats.n_flushes
            (Prim.component_count t.primary)
            (Prim.disk_size_bytes t.primary))
    end;
    t.stats.flush_us <- t.stats.flush_us +. (Lsm_sim.Env.now_us t.env -. t0)

  (* Flush memory shard [s] of every tree (the Sec. 2.3 flush-granularity
     refinement): one full shard reaches disk while its siblings keep
     absorbing writes.  The primary pair is Int-keyed identically on both
     sides, so its two shard-[s] cuts hold the same keys in the same
     order and the newest bitmaps still unify; secondary / deleted-key
     trees route by their own keys, so their shard [s] is a different key
     slice — fine, since no correctness property ever related *which*
     entries flush together across tree families (the tombstone barrier
     covers the one exception; see [update_tombstone_barrier]). *)
  let flush_shard_trees t s =
    Lsm_sim.Env.span t.env ~cat:"dataset" "dataset.flush" @@ fun () ->
    let t0 = Lsm_sim.Env.now_us t.env in
    let flushed = Prim.mem_shard_bytes t.primary s > 0 in
    if flushed then Lsm_sim.Env.fault_point t.env "dataset.flush.shard.begin";
    Prim.flush ~shard:s t.primary;
    (* Same crash window as the whole-memory flush: the primary's shard is
       durable but the primary-key index's is not yet. *)
    if flushed then Lsm_sim.Env.fault_point t.env "dataset.flush.shard.pair";
    (match t.pk_index with Some pk -> Pk.flush ~shard:s pk | None -> ());
    Array.iter
      (fun sx ->
        Sec.flush ~shard:s sx.tree;
        match sx.del_tree with Some d -> Pk.flush ~shard:s d | None -> ())
      t.secondaries;
    unify_newest_bitmaps t;
    if flushed then begin
      t.stats.n_flushes <- t.stats.n_flushes + 1;
      Log.debug (fun m ->
          m "flush #%d (shard %d): %d primary components, %d disk bytes"
            t.stats.n_flushes s
            (Prim.component_count t.primary)
            (Prim.disk_size_bytes t.primary))
    end;
    t.stats.flush_us <- t.stats.flush_us +. (Lsm_sim.Env.now_us t.env -. t0)

  (* Forward declaration: repair of a secondary component (defined below,
     needs validation machinery). *)
  let repair_hook :
      (t -> sec_index -> Sec.disk_component -> piggyback:bool -> unit) ref =
    ref (fun _ _ _ ~piggyback:_ -> ())

  (* Merge the components of [tree] whose IDs fall inside [lo, hi]
     (a contiguous run, by the disjointness of component IDs). *)
  let merge_id_range (type dc) ~(components : unit -> dc array)
      ~(id : dc -> int * int) ~(merge : first:int -> last:int -> dc) ~lo ~hi =
    let comps = components () in
    let first = ref (-1) and last = ref (-1) in
    Array.iteri
      (fun i c ->
        let cmin, cmax = id c in
        if cmin >= lo && cmax <= hi then begin
          if !first < 0 then first := i;
          last := i
        end)
      comps;
    if !first >= 0 && !last > !first then Some (merge ~first:!first ~last:!last)
    else None

  (* Merge the lockstep counterpart of a merged component: find the
     contiguous run of [components] whose concatenated flush provenance
     equals [prov].  Per-shard flushes produce components whose ID ranges
     overlap across shards, so ts-range nesting no longer identifies a
     merge's inputs (a range can nest a sibling shard's component that
     was never an input); flush provenance does — the primary pair
     flushes the same shard cuts in lockstep, so the counterpart side
     always holds a run with exactly the same origin sequence.  Returns
     [None] when the counterpart is a single already-aligned component
     (nothing to merge) or when no run matches (counterpart not flushed
     yet — recovery redoes it). *)
  let merge_prov_range (type dc) ~(components : unit -> dc array)
      ~(prov_of : dc -> Lsm_tree.flush_origin list)
      ~(merge : first:int -> last:int -> dc) ~prov =
    match prov with
    | [] -> None
    | _ ->
        let comps = components () in
        let n = Array.length comps in
        (* [eat p rem] strips [p] off the front of [rem]. *)
        let rec eat p rem =
          match (p, rem) with
          | [], rest -> Some rest
          | ph :: pt, rh :: rt when Lsm_tree.flush_origin_equal ph rh ->
              eat pt rt
          | _ -> None
        in
        (* [run_at j rem] = Some last if comps.(j..last) concatenate to
           exactly [rem]. *)
        let rec run_at j rem =
          match rem with
          | [] -> Some (j - 1)
          | _ when j >= n -> None
          | _ -> (
              match prov_of comps.(j) with
              | [] -> None
              | p -> (
                  match eat p rem with
                  | Some rest -> run_at (j + 1) rest
                  | None -> None))
        in
        let found = ref None in
        let i = ref 0 in
        while Option.is_none !found && !i < n do
          (match run_at !i prov with
          | Some last -> found := Some (!i, last)
          | None -> ());
          incr i
        done;
        (match !found with
        | Some (first, last) when last > first -> Some (merge ~first ~last)
        | _ -> None)

  (* Secondary entries validate lazily against the primary key index, so a
     pk-index bottom merge must not drop a delete tombstone until every
     secondary component's repairedTS has passed it — otherwise an obsolete
     secondary entry for the deleted key would validate as live.  Memory
     components need no barrier: they always flush together with the
     tombstones that concern them. *)
  let update_tombstone_barrier t =
    match t.pk_index with
    | None -> ()
    | Some pkt -> (
        match t.cfg.strategy with
        | Strategy.Validation _ | Strategy.Mutable_bitmap _ ->
            let barrier = ref max_int in
            Array.iter
              (fun s ->
                Array.iter
                  (fun c -> barrier := min !barrier c.Sec.repaired_ts)
                  (Sec.components s.tree);
                (* Per-shard flushes can persist a pk-index tombstone
                   while the secondary entries it concerns still sit in a
                   differently-routed secondary memory shard (the trees
                   shard-route by different keys); keep tombstones until
                   those entries have flushed too.  No-op when the
                   secondary memory is empty — in particular, always a
                   no-op for unsharded whole-memory flushes. *)
                if t.cfg.mem_shards > 1 then begin
                  let mlo, _ = Sec.mem_id s.tree in
                  if mlo <> max_int then barrier := min !barrier (mlo - 1)
                end)
              t.secondaries;
            Pk.set_tombstone_drop_ts pkt !barrier;
            (* Under Mutable-bitmap, primary and pk-index components share
               validity bitmaps and must keep identical row sequences, so
               the primary observes the same barrier. *)
            if Strategy.uses_primary_bitmap t.cfg.strategy then
              Prim.set_tombstone_drop_ts t.primary !barrier
        | Strategy.Eager | Strategy.Deleted_key_btree ->
            (* Eager secondaries are always valid; the deleted-key strategy
               validates against its own per-index structures (whose merges
               only ever keep the newest deletion record per key). *)
            ())

  (* Catch-up realignment shared by both merge schedulers: a supervised
     retry (or recovery) may re-enter after a primary merge completed but
     its lockstep pk-index merge died.  Complete any pending catch-up
     first; the old pk components' bitmaps are still the ones the primary
     merge dropped rows against, so the catch-up merge reproduces the same
     survivor sequence; then re-share the fresh bitmap. *)
  let realign_pk_to_primary t =
    match t.pk_index with
    | Some pk when Strategy.correlates_primary_pair t.cfg.strategy ->
        Array.iter
          (fun pc ->
            match
              merge_prov_range
                ~components:(fun () -> Pk.components pk)
                ~prov_of:(fun c -> c.Pk.prov)
                ~merge:(fun ~first ~last -> Pk.merge pk ~first ~last)
                ~prov:pc.Prim.prov
            with
            | Some kc ->
                if Strategy.uses_primary_bitmap t.cfg.strategy then
                  kc.Pk.bitmap <- pc.Prim.bitmap
            | None -> ())
          (Prim.components t.primary)
    | _ -> ()

  let repair_after_merge t s sc =
    match t.cfg.strategy with
    | Strategy.Validation { repair_on_merge = true; _ }
    | Strategy.Mutable_bitmap { secondary_repair = true }
    | Strategy.Deleted_key_btree ->
        !repair_hook t s sc ~piggyback:true
    | _ -> ()

  (** Run the merge scheduler to a fixpoint, one merge at a time.
      Depending on the strategy, the primary pair (and possibly the
      secondaries) merge under a correlated policy — same component ID
      ranges everywhere — while the rest merge independently (Sec. 4.4,
      Sec. 5.1). *)
  let run_merges_serial t =
    Lsm_sim.Env.span t.env ~cat:"dataset" "dataset.merge" @@ fun () ->
    let t0 = Lsm_sim.Env.now_us t.env in
    let policy = t.cfg.merge_policy in
    realign_pk_to_primary t;
    let progress = ref true in
    while !progress do
      progress := false;
      update_tombstone_barrier t;
      let bump () =
        progress := true;
        t.stats.n_merges <- t.stats.n_merges + 1
      in
      (* Primary index: merges independently, except under Mutable-bitmap
         where the primary key index must follow in lockstep to keep the
         shared bitmaps positionally aligned (Sec. 5.1). *)
      (match Prim.maybe_merge t.primary policy with
      | Some pc -> (
          bump ();
          match t.pk_index with
          | Some pk when Strategy.correlates_primary_pair t.cfg.strategy -> (
              (* Crash here leaves the merged primary without its lockstep
                 pk-index merge; recovery redoes the pk side. *)
              Lsm_sim.Env.fault_point t.env "dataset.merge.pair";
              match
                merge_prov_range
                  ~components:(fun () -> Pk.components pk)
                  ~prov_of:(fun c -> c.Pk.prov)
                  ~merge:(fun ~first ~last -> Pk.merge pk ~first ~last)
                  ~prov:pc.Prim.prov
              with
              | Some kc ->
                  if Strategy.uses_primary_bitmap t.cfg.strategy then
                    kc.Pk.bitmap <- pc.Prim.bitmap
              | None -> ())
          | _ -> ())
      | None -> ());
      (* Primary key index: under the Bloom-opt validation strategy its
         merges drive every secondary (Sec. 4.4); under Mutable-bitmap it
         is slaved to the primary above; otherwise independent. *)
      (match t.pk_index with
      | Some pk when not (Strategy.correlates_primary_pair t.cfg.strategy) ->
          if Strategy.correlates_secondaries t.cfg.strategy then begin
            (* Decide the merge on the primary key index, but *repair
               first, merge after*: the merge repair must validate against
               the pre-merge pk components — once they merge, the combined
               Bloom filter answers positive for every key of the merged
               range and the strictly-newer pruning is lost (Sec. 4.4's
               motivating example, Fig. 1). *)
            let comps = Pk.components pk in
            let n = Array.length comps in
            let sizes =
              Array.init n (fun i -> Pk.component_size_bytes pk comps.(n - 1 - i))
            in
            match Lsm_tree.Merge_policy.pick policy ~sizes with
            | Some (f_old, l_old) ->
                bump ();
                let first = n - 1 - l_old and last = n - 1 - f_old in
                let lo = fst (Pk.component_id comps.(last)) in
                let hi = snd (Pk.component_id comps.(first)) in
                Array.iter
                  (fun s ->
                    match
                      merge_id_range
                        ~components:(fun () -> Sec.components s.tree)
                        ~id:Sec.component_id
                        ~merge:(fun ~first ~last -> Sec.merge s.tree ~first ~last)
                        ~lo ~hi
                    with
                    | Some sc -> !repair_hook t s sc ~piggyback:true
                    | None -> ())
                  t.secondaries;
                ignore (Pk.merge pk ~first ~last)
            | None -> ()
          end
          else begin
            match Pk.maybe_merge pk policy with
            | Some _ -> bump ()
            | None -> ()
          end
      | _ -> ());
      (* Secondaries (and deleted-key trees) merge independently unless
         the Bloom-opt strategy correlated them above. *)
      if not (Strategy.correlates_secondaries t.cfg.strategy) then
        Array.iter
          (fun s ->
            (match Sec.maybe_merge s.tree policy with
            | Some sc ->
                bump ();
                repair_after_merge t s sc
            | None -> ());
            match s.del_tree with
            | Some d -> (
                match Pk.maybe_merge d policy with
                | Some _ -> bump ()
                | None -> ())
            | None -> ())
          t.secondaries
    done;
    t.stats.merge_us <- t.stats.merge_us +. (Lsm_sim.Env.now_us t.env -. t0)

  (* ------------------------------------------------------------------ *)
  (* Overlapping maintenance (Sec. 2.3): with [maint_workers > 1] the
     scheduler picks one runnable merge job per tree family each round —
     the same picks, in the same order, that the serial fixpoint would
     make, since picks on distinct trees are independent — and interleaves
     their step phases deterministically on the simulated clock
     (round-robin quanta, the [concurrent_merge] interleaver pattern).
     Install/finish phases run strictly in pick order, so every structural
     mutation, repair, and file-id allocation happens in exactly the
     serial order and the resulting trees are byte-for-byte identical to
     serial maintenance.  Each job's busy time is measured from clock
     deltas; at round end the jobs are list-scheduled onto W modeled
     workers and the clock is rewound from the serial sum to the modeled
     makespan, so wall-clock consumers observe pipeline cost. *)

  type maint_job = {
    job_label : string;
    job_trees : string list;
        (** tree names the job mutates; the scheduler never runs two jobs
            claiming a tree in the same round *)
    job_step : rows:int -> bool;  (** [false] once inputs are exhausted *)
    job_finish : unit -> unit;  (** install + correlated post-steps *)
  }

  (* The policy decision [maybe_merge] would take, without merging:
     newest-first range [Some (first, last)] or [None]. *)
  let pick_component_range ~n ~size policy =
    if n < 2 then None
    else begin
      (* Policy works oldest-first. *)
      let sizes = Array.init n (fun i -> size (n - 1 - i)) in
      match Lsm_tree.Merge_policy.pick policy ~sizes with
      | None -> None
      | Some (f_old, l_old) -> Some (n - 1 - l_old, n - 1 - f_old)
    end

  (* One scheduler round's runnable jobs, in the serial scheduler's
     order: primary (with its lockstep pk-index under Mutable-bitmap),
     then the pk index (driving every secondary under Bloom-opt
     validation), then each secondary and deleted-key tree. *)
  let pick_round_jobs t policy bump =
    let jobs = ref [] in
    let claimed : (string, unit) Hashtbl.t = Hashtbl.create 8 in
    let add_job ~label ~trees make =
      if List.exists (Hashtbl.mem claimed) trees then
        t.maint.maint_shared_claims <- t.maint.maint_shared_claims + 1
      else begin
        List.iter (fun n -> Hashtbl.replace claimed n ()) trees;
        jobs := make ~label ~trees :: !jobs
      end
    in
    (* Primary index; under Mutable-bitmap the pk index follows in
       lockstep inside the finish phase (Sec. 5.1), so the job claims
       both trees. *)
    (let comps = Prim.components t.primary in
     match
       pick_component_range ~n:(Array.length comps)
         ~size:(fun i -> Prim.component_size_bytes t.primary comps.(i))
         policy
     with
     | Some (first, last) ->
         let pair =
           t.pk_index <> None
           && Strategy.correlates_primary_pair t.cfg.strategy
         in
         let trees = if pair then [ "primary"; "pk-index" ] else [ "primary" ] in
         add_job ~label:(if pair then "primary+pk" else "primary") ~trees
           (fun ~label ~trees ->
             let mj = Prim.merge_start t.primary ~first ~last in
             {
               job_label = label;
               job_trees = trees;
               job_step = (fun ~rows -> Prim.merge_step t.primary mj ~rows);
               job_finish =
                 (fun () ->
                   let pc = Prim.merge_finish t.primary mj in
                   bump ();
                   match t.pk_index with
                   | Some pk when pair -> (
                       Lsm_sim.Env.fault_point t.env "dataset.merge.pair";
                       match
                         merge_prov_range
                           ~components:(fun () -> Pk.components pk)
                           ~prov_of:(fun c -> c.Pk.prov)
                           ~merge:(fun ~first ~last -> Pk.merge pk ~first ~last)
                           ~prov:pc.Prim.prov
                       with
                       | Some kc ->
                           if Strategy.uses_primary_bitmap t.cfg.strategy then
                             kc.Pk.bitmap <- pc.Prim.bitmap
                       | None -> ())
                   | _ -> ());
             })
     | None -> ());
    (* Primary key index (when not slaved to the primary above). *)
    (match t.pk_index with
    | Some pk when not (Strategy.correlates_primary_pair t.cfg.strategy) -> (
        let comps = Pk.components pk in
        match
          pick_component_range ~n:(Array.length comps)
            ~size:(fun i -> Pk.component_size_bytes pk comps.(i))
            policy
        with
        | Some (first, last) ->
            if Strategy.correlates_secondaries t.cfg.strategy then begin
              (* Bloom-opt validation: this pk merge drives every
                 secondary (Sec. 4.4), so the job claims them all.  The
                 finish phase repairs and merges the secondaries *before*
                 installing the pk merge — the repair must validate
                 against the pre-merge pk components. *)
              let lo = fst (Pk.component_id comps.(last)) in
              let hi = snd (Pk.component_id comps.(first)) in
              let trees =
                "pk-index"
                :: Array.to_list
                     (Array.map (fun s -> "sec:" ^ s.sec_name) t.secondaries)
              in
              add_job ~label:"pk+secondaries" ~trees (fun ~label ~trees ->
                  let mj = Pk.merge_start pk ~first ~last in
                  {
                    job_label = label;
                    job_trees = trees;
                    job_step = (fun ~rows -> Pk.merge_step pk mj ~rows);
                    job_finish =
                      (fun () ->
                        bump ();
                        Array.iter
                          (fun s ->
                            match
                              merge_id_range
                                ~components:(fun () -> Sec.components s.tree)
                                ~id:Sec.component_id
                                ~merge:(fun ~first ~last ->
                                  Sec.merge s.tree ~first ~last)
                                ~lo ~hi
                            with
                            | Some sc -> !repair_hook t s sc ~piggyback:true
                            | None -> ())
                          t.secondaries;
                        ignore (Pk.merge_finish pk mj));
                  })
            end
            else
              add_job ~label:"pk-index" ~trees:[ "pk-index" ]
                (fun ~label ~trees ->
                  let mj = Pk.merge_start pk ~first ~last in
                  {
                    job_label = label;
                    job_trees = trees;
                    job_step = (fun ~rows -> Pk.merge_step pk mj ~rows);
                    job_finish =
                      (fun () ->
                        ignore (Pk.merge_finish pk mj);
                        bump ());
                  })
        | None -> ())
    | _ -> ());
    (* Secondaries and deleted-key trees (when not correlated above). *)
    if not (Strategy.correlates_secondaries t.cfg.strategy) then
      Array.iter
        (fun s ->
          (let comps = Sec.components s.tree in
           match
             pick_component_range ~n:(Array.length comps)
               ~size:(fun i -> Sec.component_size_bytes s.tree comps.(i))
               policy
           with
           | Some (first, last) ->
               add_job ~label:("sec:" ^ s.sec_name)
                 ~trees:[ "sec:" ^ s.sec_name ] (fun ~label ~trees ->
                   let mj = Sec.merge_start s.tree ~first ~last in
                   {
                     job_label = label;
                     job_trees = trees;
                     job_step = (fun ~rows -> Sec.merge_step s.tree mj ~rows);
                     job_finish =
                       (fun () ->
                         let sc = Sec.merge_finish s.tree mj in
                         bump ();
                         repair_after_merge t s sc);
                   })
           | None -> ());
          match s.del_tree with
          | Some d -> (
              let comps = Pk.components d in
              match
                pick_component_range ~n:(Array.length comps)
                  ~size:(fun i -> Pk.component_size_bytes d comps.(i))
                  policy
              with
              | Some (first, last) ->
                  add_job ~label:("del:" ^ s.sec_name)
                    ~trees:[ "del:" ^ s.sec_name ] (fun ~label ~trees ->
                      let mj = Pk.merge_start d ~first ~last in
                      {
                        job_label = label;
                        job_trees = trees;
                        job_step = (fun ~rows -> Pk.merge_step d mj ~rows);
                        job_finish =
                          (fun () ->
                            ignore (Pk.merge_finish d mj);
                            bump ());
                      })
              | None -> ())
          | None -> ())
        t.secondaries;
    List.rev !jobs

  (* Interleave one round's jobs: admit up to W in pick order, step each
     active job a quantum per tick, finish strictly in pick order as
     leaders complete.  Returns (serial busy sum, modeled makespan);
     charges the clock with the serial sum during execution, then rewinds
     to the makespan and emits one modeled [maint.job] span per job. *)
  let step_quantum = 32

  let execute_round t jobs =
    let n = Array.length jobs in
    let w = max 1 (min t.maint_workers n) in
    let busy = Array.make n 0.0 in
    let steps_done = Array.make n false in
    let next = ref 0 in
    let active = ref [] in
    let finished = ref 0 in
    let round_base = Lsm_sim.Env.now_us t.env in
    while !finished < n do
      while !next < n && List.length !active < w do
        Lsm_sim.Env.fault_point t.env "maint.job.start";
        active := !active @ [ !next ];
        incr next;
        let overlap = List.length !active in
        if overlap > t.maint.maint_max_overlap then
          t.maint.maint_max_overlap <- overlap
      done;
      List.iter
        (fun i ->
          if not steps_done.(i) then begin
            let s0 = Lsm_sim.Env.now_us t.env in
            let more = jobs.(i).job_step ~rows:step_quantum in
            busy.(i) <- busy.(i) +. (Lsm_sim.Env.now_us t.env -. s0);
            if not more then steps_done.(i) <- true
          end)
        !active;
      (* Finish the leader(s): installs stay in pick (= serial) order. *)
      let rec drain () =
        match !active with
        | i :: rest when steps_done.(i) ->
            let s0 = Lsm_sim.Env.now_us t.env in
            jobs.(i).job_finish ();
            busy.(i) <- busy.(i) +. (Lsm_sim.Env.now_us t.env -. s0);
            Lsm_sim.Env.fault_point t.env "maint.job.install";
            active := rest;
            incr finished;
            drain ()
        | _ -> ()
      in
      drain ()
    done;
    (* Model W workers: list-schedule busy times in admission order. *)
    let free = Array.make w 0.0 in
    let starts = Array.make n 0.0 in
    Array.iteri
      (fun i b ->
        let k = ref 0 in
        Array.iteri (fun j f -> if f < free.(!k) then k := j) free;
        starts.(i) <- free.(!k);
        free.(!k) <- free.(!k) +. b)
      busy;
    let serial = Array.fold_left ( +. ) 0.0 busy in
    let makespan = Array.fold_left Float.max 0.0 free in
    Lsm_sim.Env.rewind t.env (serial -. makespan);
    Array.iteri
      (fun i b ->
        Lsm_sim.Env.emit_span t.env ~cat:jobs.(i).job_label "maint.job"
          ~start_us:(round_base +. starts.(i)) ~dur_us:b)
      busy;
    (serial, makespan)

  let publish_maint_gauges t =
    let o = Lsm_sim.Env.obs t.env in
    if o.Lsm_obs.Obs.enabled then begin
      let m = Lsm_sim.Env.metrics t.env in
      let set name v = Lsm_obs.Metrics.set (Lsm_obs.Metrics.gauge m name) v in
      set "maint.workers" (float_of_int t.maint_workers);
      set "maint.rounds" (float_of_int t.maint.maint_rounds);
      set "maint.jobs" (float_of_int t.maint.maint_jobs);
      set "maint.max_overlap" (float_of_int t.maint.maint_max_overlap);
      set "maint.shared_claims" (float_of_int t.maint.maint_shared_claims);
      set "maint.serial_us" t.maint.maint_serial_us;
      set "maint.makespan_us" t.maint.maint_makespan_us
    end

  let run_merges_overlapped ?flush_shard t =
    Lsm_sim.Env.span t.env ~cat:"dataset" "dataset.merge" @@ fun () ->
    let t0 = Lsm_sim.Env.now_us t.env in
    let policy = t.cfg.merge_policy in
    realign_pk_to_primary t;
    let pending_flush = ref flush_shard in
    let progress = ref true in
    while !progress do
      progress := false;
      update_tombstone_barrier t;
      let bump () =
        progress := true;
        t.stats.n_merges <- t.stats.n_merges + 1
      in
      let jobs = pick_round_jobs t policy bump in
      (* A per-shard flush rides the first round as one more job, so the
         flush overlaps whatever merges are already runnable (Sec. 2.3:
         flushes and merges pipeline on the modeled workers).  It claims
         no trees — merge installs tolerate the concurrent prepend by
         locating their inputs physically. *)
      let jobs =
        match !pending_flush with
        | Some s ->
            pending_flush := None;
            jobs
            @ [
                {
                  job_label = "flush";
                  job_trees = [];
                  job_step = (fun ~rows:_ -> false);
                  job_finish =
                    (fun () ->
                      flush_shard_trees t s;
                      progress := true);
                };
              ]
        | None -> jobs
      in
      match jobs with
      | [] -> ()
      | jobs ->
          t.maint.maint_rounds <- t.maint.maint_rounds + 1;
          t.maint.maint_jobs <- t.maint.maint_jobs + List.length jobs;
          let serial, makespan = execute_round t (Array.of_list jobs) in
          t.maint.maint_serial_us <- t.maint.maint_serial_us +. serial;
          t.maint.maint_makespan_us <- t.maint.maint_makespan_us +. makespan
    done;
    publish_maint_gauges t;
    t.stats.merge_us <- t.stats.merge_us +. (Lsm_sim.Env.now_us t.env -. t0)

  let run_merges t =
    if t.maint_workers <= 1 then run_merges_serial t
    else run_merges_overlapped t

  (* ------------------------------------------------------------------ *)
  (* Maintenance supervisor (resilience) *)

  let resil t = Lsm_sim.Env.resil t.env

  (* A maintenance pass (flush, merge sweep, heal) whose I/O retries were
     exhausted is rescheduled after a backoff instead of failing the
     engine: the partial component was already discarded (Dbt.build
     deletes its file when the append dies), the inputs are intact, and a
     transient fault that has cleared lets the rerun complete.  Bounded
     by the same policy as the I/O sites; a fault that persists through
     every reschedule propagates as Unrecoverable (fail-stop). *)
  let supervised t f =
    let p = Lsm_sim.Env.retry_policy t.env in
    let rec go attempt =
      try f ()
      with Lsm_sim.Resilience.Unrecoverable _
      when attempt < p.Lsm_sim.Resilience.max_retries
      ->
        let r = resil t in
        r.Lsm_sim.Env.reschedules <- r.Lsm_sim.Env.reschedules + 1;
        Lsm_sim.Env.advance t.env (Lsm_sim.Resilience.backoff p ~attempt);
        go (attempt + 1)
    in
    go 0

  (* Self-healing needs the repair machinery defined further down. *)
  let heal_hook : (t -> unit) ref = ref (fun _ -> ())

  (** [flush_now t] forces a flush of all memory components and runs the
      merge scheduler, both under the maintenance supervisor; if any
      corruption has been detected, a healing sweep follows. *)
  let flush_now t =
    supervised t (fun () -> flush_all t);
    supervised t (fun () -> run_merges t);
    if Lsm_sim.Env.corrupt_page_count t.env > 0 then
      supervised t (fun () -> !heal_hook t)

  (** [flush_memory t] flushes without merging (experiments that need a
      specific component layout drive merges themselves). *)
  let flush_memory t = flush_all t

  (** [flush_shard_now t s] flushes memory shard [s] of every tree and
      runs the merge scheduler, both supervised; with [maint_workers > 1]
      the flush itself is scheduled as a job so it overlaps runnable
      merges on the modeled workers. *)
  let flush_shard_now t s =
    if t.maint_workers <= 1 then begin
      supervised t (fun () -> flush_shard_trees t s);
      supervised t (fun () -> run_merges_serial t)
    end
    else supervised t (fun () -> run_merges_overlapped ~flush_shard:s t);
    if Lsm_sim.Env.corrupt_page_count t.env > 0 then
      supervised t (fun () -> !heal_hook t)

  let mem_shards t = max 1 t.cfg.mem_shards

  (** Aggregate bytes of memory shard [s] across every tree of the
      dataset — the budget's eviction unit when sharded. *)
  let mem_shard_bytes t s =
    Prim.mem_shard_bytes t.primary s
    + (match t.pk_index with Some pk -> Pk.mem_shard_bytes pk s | None -> 0)
    + Array.fold_left
        (fun acc sx ->
          acc + Sec.mem_shard_bytes sx.tree s
          + (match sx.del_tree with
            | Some d -> Pk.mem_shard_bytes d s
            | None -> 0))
        0 t.secondaries

  (** [(shard, bytes)] of the fullest memory shard. *)
  let largest_mem_shard t =
    let best = ref 0 and best_bytes = ref (-1) in
    for s = 0 to mem_shards t - 1 do
      let b = mem_shard_bytes t s in
      if b > !best_bytes then begin
        best := s;
        best_bytes := b
      end
    done;
    (!best, !best_bytes)

  let maybe_flush t =
    if t.auto_maintenance && total_mem_bytes t >= t.cfg.mem_budget then
      if mem_shards t <= 1 then flush_now t
      else begin
        (* Evict fullest shards until back under budget: each eviction
           writes one full shard while the others keep absorbing writes,
           instead of dumping the whole memory (Budget.enforce's
           overshoot problem, at dataset scope). *)
        let guard = ref (2 * mem_shards t) in
        while total_mem_bytes t >= t.cfg.mem_budget && !guard > 0 do
          decr guard;
          let s, b = largest_mem_shard t in
          if b <= 0 then guard := 0 else flush_shard_now t s
        done
      end

  (* ------------------------------------------------------------------ *)
  (* Ingestion (Secs. 3.1, 4.2, 5.2) *)

  (* Anti-matter the old record's secondary entries, skipping indexes whose
     key did not change (the Eager upsert optimization of Sec. 3.1; also
     used by the memory-component optimization of Sec. 4.2). *)
  let cleanup_secondaries t ~old_r ~new_r ~ts =
    Array.iter
      (fun s ->
        let new_keys =
          match new_r with None -> [] | Some r -> s.extract_all r
        in
        (* Anti-matter only the keys the record no longer has: keys that
           persist are superseded by the new same-composite-key entry. *)
        List.iter
          (fun sko ->
            if not (List.mem sko new_keys) then
              Sec.write s.tree ~key:(sko, R.primary_key old_r) ~ts Entry.Del)
          (s.extract_all old_r))
      t.secondaries

  let write_new_record t r ~ts =
    let pk = R.primary_key r in
    Prim.write t.primary ~key:pk ~ts (Entry.Put r);
    (match t.pk_index with
    | Some pkt -> Pk.write pkt ~key:pk ~ts (Entry.Put ())
    | None -> ());
    Array.iter
      (fun s ->
        List.iter
          (fun sk -> Sec.write s.tree ~key:(sk, pk) ~ts (Entry.Put ()))
          (s.extract_all r))
      t.secondaries

  (* The memory-component optimization (Sec. 4.2): deleting/upserting must
     search the primary memory component anyway to place the new entry; if
     the old record happens to live there, clean up secondaries for free. *)
  let mem_cleanup_opportunity t pk ~new_r ~ts =
    match Prim.mem_find t.primary pk with
    | Some { Prim.value = Entry.Put old_r; _ } ->
        cleanup_secondaries t ~old_r ~new_r ~ts
    | _ -> ()

  (* Mutable-bitmap strategy: mark the old version of [pk] (if on disk)
     deleted by flipping its validity bit, located via the primary key
     index (Sec. 5.2). *)
  let mark_old_deleted t pk =
    match t.pk_index with
    | None -> invalid_arg "Mutable-bitmap strategy requires the primary key index"
    | Some pkt -> (
        match Pk.mem_find pkt pk with
        | Some _ ->
            (* Newest version is in memory: the same-key write replaces it;
               no bitmap involved. *)
            ()
        | None -> (
            match Pk.disk_find pkt pk with
            | Some (c, pos, row)
              when Entry.is_put row.Pk.value && Pk.component_row_valid c pos ->
                (* The shared bitmap makes the primary component see it. *)
                Pk.invalidate c pos
            | _ -> ()))

  (** [key_exists t pk] is the insert-time uniqueness check, against the
      primary key index when available (the optimization Fig. 13
      measures), else the primary index. *)
  let key_exists t pk =
    match t.pk_index with
    | Some pkt -> (
        match Pk.lookup_one pkt pk with
        | Some row -> Entry.is_put row.Pk.value
        | None -> false)
    | None -> (
        match Prim.lookup_one t.primary pk with
        | Some row -> Entry.is_put row.Prim.value
        | None -> false)

  (** [insert t r] ingests a new record; duplicates (by primary key) are
      rejected.  All strategies insert identically (Sec. 4.2). *)
  let insert t r =
    Lsm_sim.Env.span t.env ~cat:"dataset" "ingest.insert" @@ fun () ->
    let pk = R.primary_key r in
    if key_exists t pk then begin
      t.stats.n_duplicates <- t.stats.n_duplicates + 1;
      maybe_flush t;
      `Duplicate
    end
    else begin
      let ts = next_ts t in
      write_new_record t r ~ts;
      t.stats.n_inserts <- t.stats.n_inserts + 1;
      maybe_flush t;
      `Inserted
    end

  (** [upsert t r] inserts [r], superseding any existing record with the
      same primary key.  This is where the strategies differ (Fig. 14). *)
  let upsert t r =
    Lsm_sim.Env.span t.env ~cat:"dataset" "ingest.upsert" @@ fun () ->
    let pk = R.primary_key r in
    let ts = next_ts t in
    (match t.cfg.strategy with
    | Strategy.Eager -> (
        (* Point lookup for the old record; anti-matter its secondary
           entries; widen memory filters to cover its filter key. *)
        match Prim.lookup_one t.primary pk with
        | Some { Prim.value = Entry.Put old_r; _ } ->
            cleanup_secondaries t ~old_r ~new_r:(Some r) ~ts;
            Option.iter
              (fun fk -> Prim.widen_filter t.primary pk (fk old_r))
              t.filter_key
        | _ -> ())
    | Strategy.Validation _ -> mem_cleanup_opportunity t pk ~new_r:(Some r) ~ts
    | Strategy.Deleted_key_btree ->
        mem_cleanup_opportunity t pk ~new_r:(Some r) ~ts;
        (* Record "pk superseded as of ts" in every secondary's deleted-key
           structure. *)
        Array.iter
          (fun s ->
            match s.del_tree with
            | Some d -> Pk.write d ~key:pk ~ts (Entry.Put ())
            | None -> ())
          t.secondaries
    | Strategy.Mutable_bitmap _ ->
        mark_old_deleted t pk;
        mem_cleanup_opportunity t pk ~new_r:(Some r) ~ts);
    write_new_record t r ~ts;
    t.stats.n_upserts <- t.stats.n_upserts + 1;
    maybe_flush t

  (** [delete t ~pk] removes the record with key [pk] (a no-op for the
      Eager strategy if it does not exist; blind for the others). *)
  let delete t ~pk =
    Lsm_sim.Env.span t.env ~cat:"dataset" "ingest.delete" @@ fun () ->
    let ts = next_ts t in
    (match t.cfg.strategy with
    | Strategy.Eager -> (
        match Prim.lookup_one t.primary pk with
        | Some { Prim.value = Entry.Put old_r; _ } ->
            cleanup_secondaries t ~old_r ~new_r:None ~ts;
            Option.iter
              (fun fk -> Prim.widen_filter t.primary pk (fk old_r))
              t.filter_key;
            Prim.write t.primary ~key:pk ~ts Entry.Del;
            (match t.pk_index with
            | Some pkt -> Pk.write pkt ~key:pk ~ts Entry.Del
            | None -> ());
            t.stats.n_deletes <- t.stats.n_deletes + 1
        | _ -> () (* nonexistent key: ignored *))
    | Strategy.Validation _ | Strategy.Deleted_key_btree ->
        mem_cleanup_opportunity t pk ~new_r:None ~ts;
        (match t.cfg.strategy with
        | Strategy.Deleted_key_btree ->
            Array.iter
              (fun s ->
                match s.del_tree with
                | Some d -> Pk.write d ~key:pk ~ts (Entry.Put ())
                | None -> ())
              t.secondaries
        | _ -> ());
        Prim.write t.primary ~key:pk ~ts Entry.Del;
        (match t.pk_index with
        | Some pkt -> Pk.write pkt ~key:pk ~ts Entry.Del
        | None -> ());
        t.stats.n_deletes <- t.stats.n_deletes + 1
    | Strategy.Mutable_bitmap _ ->
        mark_old_deleted t pk;
        mem_cleanup_opportunity t pk ~new_r:None ~ts;
        (* The anti-matter key is still added: bitmaps are an auxiliary
           structure that must not change LSM semantics (Sec. 5.2). *)
        Prim.write t.primary ~key:pk ~ts Entry.Del;
        (match t.pk_index with
        | Some pkt -> Pk.write pkt ~key:pk ~ts Entry.Del
        | None -> ());
        t.stats.n_deletes <- t.stats.n_deletes + 1);
    maybe_flush t

  (* ------------------------------------------------------------------ *)
  (* Validation machinery (Secs. 4.3, 4.4) *)

  (* Is a (pk, ts) pair still current according to validation index [vt]
     (the primary key index, or a deleted-key tree)?  Components with
     maxTS <= threshold are pruned; [threshold] is at least the entry's own
     timestamp and its source component's repairedTS. *)
  let entry_is_valid (vt : Pk.t) ?cursors ~pk ~ts ~threshold () =
    match Pk.mem_find vt pk with
    | Some row -> row.Pk.ts <= ts
    | None ->
        let comps = Pk.components vt in
        let rec go i =
          if i >= Array.length comps then true
          else begin
            let c = comps.(i) in
            if c.Pk.cmax_ts <= threshold then true
            else if Pk.probe_bloom vt c pk then begin
              let hit =
                match cursors with
                | Some cs -> Pk.Dbt.Cursor.find (Pk.env vt) cs.(i) pk
                | None -> Pk.Dbt.find (Pk.env vt) c.Pk.tree pk
              in
              match hit with
              | Some (_, row) -> row.Pk.ts <= ts
              | None ->
                  Pk.note_bloom_fp vt c;
                  go (i + 1)
            end
            else go (i + 1)
          end
        in
        go 0

  (* The validation index for a secondary: its own deleted-key tree under
     the Deleted-key strategy, else the dataset's primary key index. *)
  let validation_index t sec =
    match sec.del_tree with
    | Some d -> Some d
    | None -> t.pk_index

  (* ------------------------------------------------------------------ *)
  (* Index repair (Sec. 4.4) *)

  (* One (pk, ts, position) item streamed to the repair sorter (Fig. 7).
     [?bloom_opt] overrides the strategy's setting (ablation benches
     compare repair with and without it on identical datasets). *)
  let repair_component ?bloom_opt t sec (comp : Sec.disk_component) ~piggyback =
    match validation_index t sec with
    | None -> ()
    | Some vt ->
        Lsm_sim.Env.span t.env ~cat:sec.sec_name
          (if piggyback then "repair.merge" else "repair.standalone")
        @@ fun () ->
        let t0 = Lsm_sim.Env.now_us t.env in
        let bloom_opt =
          match bloom_opt with
          | Some b -> b
          | None -> (
              match t.cfg.strategy with
              | Strategy.Validation { bloom_opt; _ } -> bloom_opt
              | _ -> false)
        in
        let threshold = comp.Sec.repaired_ts in
        if not piggyback then Sec.charge_component_scan sec.tree comp;
        let rows = Sec.rows_of comp in
        (* Gather still-valid entries as (pk, ts, position). *)
        let items = ref [] in
        let n_items = ref 0 in
        Array.iteri
          (fun pos (r : Sec.row) ->
            if Sec.component_row_valid comp pos then begin
              let _, pk = r.Sec.key in
              items := (pk, r.Sec.ts, pos) :: !items;
              incr n_items
            end)
          rows;
        let items = Array.of_list !items in
        Lsm_sim.Env.explain_count t.env "repair_items" !n_items;
        let invalidate pos =
          Lsm_sim.Env.explain_count t.env "entries_invalidated" 1;
          Sec.invalidate comp pos
        in
        (* Bloom-filter optimization: a key whose probes on all unpruned
           primary-key components are negative (and which misses the pk
           memory component) cannot have been superseded — exclude it from
           sorting and validation entirely (Sec. 4.4). *)
        (* Under the Bloom-opt strategy's regime — correlated merges with
           repair at every merge, plus the memory-cleanup optimization of
           Sec. 4.2 — a component whose ID range *contains* an entry's
           timestamp cannot hold its superseding entry (same-era staleness
           never reaches disk; cross-era staleness was repaired when the
           eras merged).  So only components *strictly newer* than the
           entry need probing, which is the paper's "the unpruned primary
           key index components are always strictly newer than the keys in
           the repairing component".  Outside that regime (the ablation
           override), the conservative overlap rule applies.  Sharded
           memory breaks the regime's era-disjointness premise — a
           cross-shard merge can combine eras — so strict pruning also
           requires unsharded memory. *)
        let strict_regime =
          match t.cfg.strategy with
          | Strategy.Validation { bloom_opt = true; _ } -> t.cfg.mem_shards <= 1
          | _ -> false
        in
        let could_supersede c ts =
          if strict_regime then c.Pk.cmin_ts > max threshold ts
          else c.Pk.cmax_ts > max threshold ts
        in
        (* Sort grant (Fig. 7 line 9): key volumes beyond a quarter of the
           dataset memory budget spill through scratch storage — I/O that
           the Bloom-filter optimization avoids by excluding never-updated
           keys from the sort (Sec. 6.5). *)
        let spill_grant =
          Lsm_sim.Spill_sort.grant ~memory_bytes:(t.cfg.mem_budget / 4)
            ~row_bytes:24
        in
        let relevant_comps =
          List.filter
            (fun c -> c.Pk.cmax_ts > threshold)
            (Array.to_list (Pk.components vt))
        in
        (if bloom_opt then begin
           (* Streaming skip pass: an item whose probes on every component
              that could supersede it are negative (and which misses the
              pk memory component) is valid and never sorted or validated.
              Survivors remember their first positive component so the
              validation pass does not re-probe it. *)
           let comps = Pk.components vt in
           let cands = ref [] in
           Array.iter
             (fun (pk, ts, pos) ->
               match Pk.mem_find vt pk with
               | Some row ->
                   if row.Pk.ts > ts then cands := (pk, ts, pos, -1) :: !cands
               | None ->
                   let fp = ref (-2) in
                   Array.iteri
                     (fun i c ->
                       if !fp = -2 && could_supersede c ts && Pk.probe_bloom vt c pk
                       then fp := i)
                     comps;
                   if !fp >= 0 then cands := (pk, ts, pos, !fp) :: !cands)
             items;
           let cands = Array.of_list !cands in
           Lsm_sim.Env.explain_count t.env "repair_candidates"
             (Array.length cands);
           Lsm_sim.Spill_sort.sort t.env spill_grant
             ~cmp:(fun (a, _, _, _) (b, _, _, _) -> compare (a : int) b)
             cands;
           let cursors =
             Array.map (fun c -> Pk.Dbt.Cursor.create c.Pk.tree) comps
           in
           Array.iter
             (fun (pk, ts, pos, fp) ->
               let stale =
                 if fp < 0 then true (* memory entry, strictly newer *)
                 else begin
                   (* Search newest-first from the memoized component; the
                      first hit is the newest entry and decides. *)
                   let rec go i =
                     if i >= Array.length comps then false
                     else begin
                       let c = comps.(i) in
                       if not (could_supersede c ts) then false
                       else if
                         (i = fp || Pk.probe_bloom vt c pk)
                       then
                         match Pk.Dbt.Cursor.find (Pk.env vt) cursors.(i) pk with
                         | Some (_, row) -> row.Pk.ts > ts
                         | None -> go (i + 1)
                       else go (i + 1)
                     end
                   in
                   go fp
                 end
               in
               if stale then invalidate pos)
             cands
         end
         else begin
           (* Baseline Fig. 7: sort everything, then validate.  If more
              keys than recently-ingested primary-key entries, merge-scan
              the primary key index instead of point lookups (the
              optimization below Fig. 7). *)
           Lsm_sim.Spill_sort.sort t.env spill_grant
             ~cmp:(fun (a, _, _) (b, _, _) -> compare (a : int) b)
             items;
           let recent_rows =
             Pk.mem_count vt
             + List.fold_left (fun a c -> a + Pk.component_rows c) 0 relevant_comps
           in
           if Array.length items > recent_rows then begin
             (* Merge-scan join: both sides sorted by pk. *)
             let newest : (int, int) Hashtbl.t = Hashtbl.create 1024 in
             Pk.scan vt
               { Pk.full_scan_spec with only = Some relevant_comps; emit_del = true }
               ~f:(fun row ~src_repaired:_ ->
                 match Hashtbl.find_opt newest row.Pk.key with
                 | Some ts0 when ts0 >= row.Pk.ts -> ()
                 | _ -> Hashtbl.replace newest row.Pk.key row.Pk.ts);
             Array.iter
               (fun (pk, ts, pos) ->
                 match Hashtbl.find_opt newest pk with
                 | Some ts' when ts' > ts -> invalidate pos
                 | _ -> ())
               items
           end
           else begin
             let cursors =
               Array.map (fun c -> Pk.Dbt.Cursor.create c.Pk.tree)
                 (Pk.components vt)
             in
             (* The pruning bound is the component-level repairedTS,
                exactly as Sec. 4.4 describes — not each entry's own
                timestamp (a refinement that would erase the effect the
                Bloom-filter optimization exists to provide). *)
             Array.iter
               (fun (pk, ts, pos) ->
                 if not (entry_is_valid vt ~cursors ~pk ~ts ~threshold ()) then
                   invalidate pos)
               items
           end
         end);
        (* Advance the repaired timestamp to the newest *disk* component
           boundary consulted — never into the memory component's range.
           Memory entries were validated against, but crediting them would
           place repairedTS mid-era: when that memory later flushes, its
           component's ID range straddles the threshold, and the strict
           "strictly newer" pruning (cmin > repairedTS) would skip the very
           component holding superseding entries.  Keeping repairedTS on
           era boundaries keeps component ranges cleanly on one side or the
           other.  (Found by the mid-stream interleaving property.) *)
        let new_repaired =
          List.fold_left
            (fun acc c -> max acc c.Pk.cmax_ts)
            threshold relevant_comps
        in
        Sec.set_repaired_ts comp new_repaired;
        Log.debug (fun m ->
            m "repaired %s component (%d, %d): repairedTS %d -> %d%s"
              sec.sec_name (fst (Sec.component_id comp))
              (snd (Sec.component_id comp))
              threshold new_repaired
              (if bloom_opt then " [bf]" else ""));
        t.stats.n_repairs <- t.stats.n_repairs + 1;
        t.stats.repair_us <- t.stats.repair_us +. (Lsm_sim.Env.now_us t.env -. t0)

  let () =
    repair_hook := fun t s c ~piggyback -> repair_component t s c ~piggyback

  (** [standalone_repair t] repairs every disk component of every
      secondary index in place (new bitmaps only, no merging). *)
  let standalone_repair ?bloom_opt t =
    Array.iter
      (fun s ->
        Array.iter
          (fun comp -> repair_component ?bloom_opt t s comp ~piggyback:false)
          (Sec.components s.tree))
      t.secondaries

  (* ------------------------------------------------------------------ *)
  (* Self-healing (resilience): quarantine scan + rebuild/scrub.  The
     detection side lives in lib/sim (per-page checksums) and lib/lsm_tree
     (degraded reads); this is the repair side the maintenance supervisor
     drives. *)

  let quarantined_count t =
    let count comps quarantined =
      Array.fold_left (fun a c -> if quarantined c then a + 1 else a) 0 comps
    in
    count (Prim.components t.primary) Prim.quarantined
    + (match t.pk_index with
      | Some pk -> count (Pk.components pk) Pk.quarantined
      | None -> 0)
    + Array.fold_left
        (fun acc s ->
          acc
          + count (Sec.components s.tree) Sec.quarantined
          + match s.del_tree with
            | Some d -> count (Pk.components d) Pk.quarantined
            | None -> 0)
        0 t.secondaries

  (* Quarantine every component whose backing file holds a page that
     failed its checksum. *)
  let quarantine_corrupt t =
    let env = t.env in
    let scan comps ~file ~quarantined ~quarantine =
      Array.iter
        (fun c ->
          if (not (quarantined c)) && Lsm_sim.Env.file_corrupt env ~file:(file c)
          then quarantine c)
        comps
    in
    scan (Prim.components t.primary) ~file:Prim.component_file
      ~quarantined:Prim.quarantined ~quarantine:(Prim.quarantine t.primary);
    (match t.pk_index with
    | Some pk ->
        scan (Pk.components pk) ~file:Pk.component_file
          ~quarantined:Pk.quarantined ~quarantine:(Pk.quarantine pk)
    | None -> ());
    Array.iter
      (fun s ->
        scan (Sec.components s.tree) ~file:Sec.component_file
          ~quarantined:Sec.quarantined ~quarantine:(Sec.quarantine s.tree);
        match s.del_tree with
        | Some d ->
            scan (Pk.components d) ~file:Pk.component_file
              ~quarantined:Pk.quarantined ~quarantine:(Pk.quarantine d)
        | None -> ())
      t.secondaries

  (* Rebuild one quarantined secondary component from the primary key
     index, reusing the Sec. 4 standalone-repair path: re-validate its
     entries against the pk index (fresh bitmap, advanced repairedTS),
     then rewrite the survivors into a brand-new component with clean
     pages and, where configured, a fresh Bloom filter.  The component
     keeps its ID range and repairedTS, so disjointness and the
     tombstone barrier are untouched; the old file's corruption leaves
     the system when [replace_range] deletes it. *)
  let rebuild_secondary t s ~at (comp : Sec.disk_component) =
    Lsm_sim.Env.span t.env ~cat:s.sec_name "resilience.rebuild" @@ fun () ->
    repair_component t s comp ~piggyback:false;
    let rows = Sec.rows_of comp in
    let live = ref [] in
    Array.iteri
      (fun pos r -> if Sec.component_row_valid comp pos then live := r :: !live)
      rows;
    let live = Array.of_list (List.rev !live) in
    Lsm_sim.Env.charge_entry_visits t.env (Array.length live);
    let c' =
      Sec.build_component s.tree live ~prov:comp.Sec.prov
        ~cmin_ts:comp.Sec.cmin_ts ~cmax_ts:comp.Sec.cmax_ts
        ~range_filter:comp.Sec.range_filter ~repaired_ts:comp.Sec.repaired_ts
    in
    Sec.replace_range s.tree ~first:at ~last:at c';
    let r = resil t in
    r.Lsm_sim.Env.rebuilds <- r.Lsm_sim.Env.rebuilds + 1

  (* A quarantined primary-family component is scrubbed: a
     single-component merge rewrites it onto clean pages (and, like any
     merge, physically applies its bitmap).  Under Mutable-bitmap the
     primary and pk-index components share validity bitmaps and must keep
     identical row sequences, so the pair scrubs in lockstep and the
     fresh bitmap is re-shared, mirroring run_merges. *)
  let scrub_primary_pair t =
    let correlated = Strategy.correlates_primary_pair t.cfg.strategy in
    let rec pass () =
      let pcs = Prim.components t.primary in
      let kcs =
        match t.pk_index with Some pk -> Pk.components pk | None -> [||]
      in
      let doomed = ref (-1) in
      Array.iteri
        (fun i c -> if !doomed < 0 && Prim.quarantined c then doomed := i)
        pcs;
      if correlated && !doomed < 0 then
        Array.iteri
          (fun i c -> if !doomed < 0 && Pk.quarantined c then doomed := i)
          kcs;
      if !doomed >= 0 then begin
        let i = !doomed in
        update_tombstone_barrier t;
        let pc = Prim.merge t.primary ~first:i ~last:i in
        (match t.pk_index with
        | Some pk when correlated && i < Array.length kcs ->
            let kc = Pk.merge pk ~first:i ~last:i in
            if Strategy.uses_primary_bitmap t.cfg.strategy then
              kc.Pk.bitmap <- pc.Prim.bitmap
        | _ -> ());
        let r = resil t in
        r.Lsm_sim.Env.rebuilds <- r.Lsm_sim.Env.rebuilds + 1;
        pass ()
      end
    in
    pass ()

  (* Scrub quarantined components of an uncorrelated pk-typed tree (the
     validation-strategy pk index, deleted-key trees). *)
  let scrub_solo_pk t tree =
    let rec pass () =
      let comps = Pk.components tree in
      let doomed = ref (-1) in
      Array.iteri
        (fun i c -> if !doomed < 0 && Pk.quarantined c then doomed := i)
        comps;
      if !doomed >= 0 then begin
        update_tombstone_barrier t;
        ignore (Pk.merge tree ~first:!doomed ~last:!doomed);
        let r = resil t in
        r.Lsm_sim.Env.rebuilds <- r.Lsm_sim.Env.rebuilds + 1;
        pass ()
      end
    in
    pass ()

  (** [heal t] is the self-healing sweep: quarantine every component
      whose backing file holds a checksum-failed page, scrub quarantined
      primary / primary-key / deleted-key components through
      single-component merges (lockstep for the shared-bitmap pair), and
      rebuild quarantined secondary components from the primary key index
      — Sec. 4's standalone repair reused as the corruption-recovery
      path.  Rebuilding clears the quarantine (the replacement component
      is born clean) and deletes the corrupt file.  Idempotent; a no-op
      when nothing is quarantined and no corruption is recorded. *)
  let heal t =
    quarantine_corrupt t;
    if quarantined_count t > 0 then begin
      Lsm_sim.Env.span t.env ~cat:"dataset" "resilience.heal" @@ fun () ->
      (* Primary family first, so secondary rebuilds validate against a
         clean (fully trusted) primary key index. *)
      scrub_primary_pair t;
      (match t.pk_index with
      | Some pk when not (Strategy.correlates_primary_pair t.cfg.strategy) ->
          scrub_solo_pk t pk
      | _ -> ());
      Array.iter
        (fun s ->
          (match s.del_tree with Some d -> scrub_solo_pk t d | None -> ());
          let rec pass () =
            let comps = Sec.components s.tree in
            let doomed = ref (-1) in
            Array.iteri
              (fun i c -> if !doomed < 0 && Sec.quarantined c then doomed := i)
              comps;
            if !doomed >= 0 then begin
              rebuild_secondary t s ~at:!doomed comps.(!doomed);
              pass ()
            end
          in
          pass ())
        t.secondaries
    end

  let () = heal_hook := heal

  (** [primary_repair t ~with_merge] is the DELI baseline (Tang et al.):
      repair secondary indexes by scanning the *primary index* components,
      detecting superseded record versions, and inserting anti-matter for
      them — full records are read, which is exactly the cost our
      secondary repair avoids.  [with_merge] additionally merges the
      primary components (DELI's merge-repair flavour). *)
  let primary_repair t ~with_merge =
    Lsm_sim.Env.span t.env ~cat:"dataset" "repair.primary" @@ fun () ->
    let comps = Prim.components t.primary in
    if Array.length comps > 0 then begin
      (* K-way scan over all disk components, newest-first priority. *)
      let scans =
        Array.map (fun c -> Prim.Dbt.Scan.seek t.env c.Prim.tree None) comps
      in
      let cmp (k1, p1, _) (k2, p2, _) =
        Lsm_sim.Env.charge_comparisons t.env 1;
        let c = compare (k1 : int) k2 in
        if c <> 0 then c else compare (p1 : int) p2
      in
      let heap = Lsm_util.Heap.create cmp in
      let push p =
        match Prim.Dbt.Scan.next t.env scans.(p) with
        | Some (_, row) -> Lsm_util.Heap.push heap (row.Prim.key, p, row)
        | None -> ()
      in
      Array.iteri (fun p _ -> push p) comps;
      (* Group same-pk versions; the newest of a group is current unless
         the memory component holds an even newer one. *)
      let process_group pk (versions : Prim.row list) =
        let newest_mem = Prim.mem_find t.primary pk in
        let current =
          match (newest_mem, versions) with
          | Some m, _ -> m
          | None, v :: _ -> v
          | None, [] -> assert false
        in
        let obsolete =
          match newest_mem with Some _ -> versions | None -> List.tl versions
        in
        List.iter
          (fun (v : Prim.row) ->
            match v.Prim.value with
            | Entry.Put old_r ->
                Array.iter
                  (fun s ->
                    let cur_keys =
                      match current.Prim.value with
                      | Entry.Put cur_r -> s.extract_all cur_r
                      | Entry.Del -> []
                    in
                    List.iter
                      (fun sko ->
                        if not (List.mem sko cur_keys) then
                          Sec.write s.tree ~key:(sko, pk) ~ts:(next_ts t)
                            Entry.Del)
                      (s.extract_all old_r))
                  t.secondaries
            | Entry.Del -> ())
          obsolete
      in
      let cur_pk = ref min_int in
      let group = ref [] in
      let flush_group () =
        if !group <> [] then process_group !cur_pk (List.rev !group)
      in
      while not (Lsm_util.Heap.is_empty heap) do
        let pk, p, row = Lsm_util.Heap.pop heap in
        push p;
        if pk <> !cur_pk then begin
          flush_group ();
          cur_pk := pk;
          group := [ row ]
        end
        else group := row :: !group
      done;
      flush_group ();
      if with_merge && Array.length comps >= 2 then begin
        ignore (Prim.merge t.primary ~first:0 ~last:(Array.length comps - 1));
        t.stats.n_merges <- t.stats.n_merges + 1
      end;
      t.stats.n_repairs <- t.stats.n_repairs + 1
    end

  (* ------------------------------------------------------------------ *)
  (* Query processing (Secs. 3.2, 4.3, 6.2, 6.4) *)

  (** One secondary-index search result before validation. *)
  type sec_entry = {
    e_sk : int;
    e_pk : int;
    e_ts : int;
    e_src_repaired : int;  (** repairedTS of the source component *)
  }

  (** How a secondary-index query deals with possibly-obsolete entries:
      [`Assume_valid] (Eager datasets), [`Direct] validation (fetch then
      re-check, Fig. 5a), or [`Timestamp] validation via the primary key
      index (Fig. 5b). *)
  type validation_mode = [ `Assume_valid | `Direct | `Timestamp ]

  (** [search_secondary t sec ~lo ~hi] runs the index search itself,
      returning matching entries (reconciled, bitmap-respected). *)
  let search_secondary t sec ~lo ~hi =
    Lsm_sim.Env.span t.env ~cat:sec.sec_name "search.secondary" @@ fun () ->
    let out = ref [] in
    let n = ref 0 in
    Sec.scan sec.tree
      {
        Sec.full_scan_spec with
        lo = Some (lo, min_int);
        hi = Some (hi, max_int);
      }
      ~f:(fun row ~src_repaired ->
        let sk, pk = row.Sec.key in
        incr n;
        out := { e_sk = sk; e_pk = pk; e_ts = row.Sec.ts; e_src_repaired = src_repaired } :: !out);
    Lsm_sim.Env.explain_count t.env "entries_matched" !n;
    List.rev !out

  let sort_entries_by_pk t entries =
    let arr = Array.of_list entries in
    let cmps = ref 0 in
    Lsm_util.Sorter.sort ~cmp:(fun a b -> compare a.e_pk b.e_pk) ~cost:cmps arr;
    Lsm_sim.Env.charge_comparisons t.env !cmps;
    arr

  (* Timestamp validation (Fig. 5b): filter out entries superseded in the
     primary key index (or deleted-key tree). *)
  let timestamp_validate t sec entries_sorted =
    match validation_index t sec with
    | None -> Array.to_list entries_sorted
    | Some vt ->
        Lsm_sim.Env.span t.env ~cat:sec.sec_name "validate.timestamp"
        @@ fun () ->
        let cursors =
          Array.map (fun c -> Pk.Dbt.Cursor.create c.Pk.tree) (Pk.components vt)
        in
        let valid =
          List.filter
            (fun e ->
              entry_is_valid vt ~cursors ~pk:e.e_pk ~ts:e.e_ts
                ~threshold:(max e.e_src_repaired e.e_ts) ())
            (Array.to_list entries_sorted)
        in
        Lsm_sim.Env.explain_count t.env "entries_validated" (List.length valid);
        Lsm_sim.Env.explain_count t.env "entries_discarded"
          (Array.length entries_sorted - List.length valid);
        valid

  (* Fetch records for (already sorted) query keys via batched point
     lookups; emission order is fetch order. *)
  let fetch_records t ?(lookup = Prim.default_lookup_opts) qkeys =
    let out = ref [] in
    Prim.lookup_batch t.primary lookup qkeys ~emit:(fun _ row ->
        match row with
        | Some { Prim.value = Entry.Put r; _ } -> out := r :: !out
        | _ -> ());
    List.rev !out

  (** [query_secondary t ~sec ~lo ~hi ~mode ?lookup ()] returns the records
      whose secondary key (index [sec]) lies in [lo, hi] — the
      non-index-only query of Fig. 16. *)
  let query_secondary t ~sec ~lo ~hi ~(mode : validation_mode)
      ?(lookup = Prim.default_lookup_opts) () =
    Lsm_sim.Env.span t.env ~cat:sec "query.secondary" @@ fun () ->
    Lsm_sim.Env.explain_annotate t.env
      [
        ("sec", sec);
        ( "mode",
          match mode with
          | `Assume_valid -> "assume_valid"
          | `Direct -> "direct"
          | `Timestamp -> "timestamp" );
      ];
    let s = secondary t sec in
    let entries = search_secondary t s ~lo ~hi in
    match mode with
    | `Assume_valid ->
        let sorted = sort_entries_by_pk t entries in
        let qkeys =
          Array.map
            (fun e ->
              { Prim.qkey = e.e_pk; hint_ts = (if lookup.Prim.use_hints then e.e_ts else 0) })
            sorted
        in
        fetch_records t ~lookup qkeys
    | `Direct ->
        (* Sort-distinct, fetch, re-check the predicate (Fig. 5a). *)
        Lsm_sim.Env.span t.env ~cat:sec "validate.direct" @@ fun () ->
        let sorted = sort_entries_by_pk t entries in
        let pks =
          Lsm_util.Sorter.dedup_sorted
            ~eq:(fun a b -> a.e_pk = b.e_pk)
            sorted
        in
        let qkeys =
          Array.map
            (fun e ->
              { Prim.qkey = e.e_pk; hint_ts = 0 })
            pks
        in
        let records = fetch_records t ~lookup qkeys in
        let live =
          List.filter
            (fun r ->
              List.exists (fun sk -> sk >= lo && sk <= hi) (s.extract_all r))
            records
        in
        Lsm_sim.Env.explain_count t.env "entries_validated" (List.length live);
        Lsm_sim.Env.explain_count t.env "entries_discarded"
          (List.length records - List.length live);
        live
    | `Timestamp ->
        let sorted = sort_entries_by_pk t entries in
        let valid = timestamp_validate t s sorted in
        let qkeys =
          Array.map
            (fun e ->
              { Prim.qkey = e.e_pk; hint_ts = (if lookup.Prim.use_hints then e.e_ts else 0) })
            (Array.of_list valid)
        in
        fetch_records t ~lookup qkeys

  (** [query_secondary_keys t ~sec ~lo ~hi ~mode ()] is the index-only
      variant (Fig. 17): returns (secondary key, primary key) pairs without
      touching the primary index records.  [`Direct] is not offered — it
      must fetch records, which defeats index-only processing (Sec. 4.3). *)
  let query_secondary_keys t ~sec ~lo ~hi
      ~(mode : [ `Assume_valid | `Timestamp ]) () =
    Lsm_sim.Env.span t.env ~cat:sec "query.secondary_keys" @@ fun () ->
    let s = secondary t sec in
    let entries = search_secondary t s ~lo ~hi in
    match mode with
    | `Assume_valid -> List.map (fun e -> (e.e_sk, e.e_pk)) entries
    | `Timestamp ->
        let sorted = sort_entries_by_pk t entries in
        let valid = timestamp_validate t s sorted in
        List.map (fun e -> (e.e_sk, e.e_pk)) valid

  (** [full_scan t ~f] streams every live record (reconciled); returns the
      record count.  The fallback plan secondary indexes compete against
      (Fig. 12b). *)
  let full_scan t ~f =
    Lsm_sim.Env.span t.env ~cat:"dataset" "query.scan" @@ fun () ->
    let n = ref 0 in
    Prim.scan t.primary Prim.full_scan_spec ~f:(fun row ~src_repaired:_ ->
        match row.Prim.value with
        | Entry.Put r ->
            incr n;
            f r
        | Entry.Del -> ());
    Lsm_sim.Env.explain_count t.env "rows_emitted" !n;
    !n

  (** [query_time_range t ~tlo ~thi ~f] scans the primary index with
      component-level range-filter pruning (Sec. 6.4.2), applying [f] to
      records whose filter key lies in [tlo, thi]; returns the match count.
      Pruning power depends on the strategy:
      - Eager: prune any component whose (old-value-widened) filter is
        disjoint from the query;
      - Validation: all components newer than the oldest overlapping one
        must also be read;
      - Mutable-bitmap: prune freely and skip reconciliation — bitmaps
        already removed superseded versions. *)
  let query_time_range t ~tlo ~thi ~f =
    Lsm_sim.Env.span t.env ~cat:"dataset" "query.time_range" @@ fun () ->
    let fk =
      match t.filter_key with
      | Some fk -> fk
      | None -> invalid_arg "query_time_range: dataset has no filter key"
    in
    let comps = Array.to_list (Prim.components t.primary) in
    let overlaps c =
      match c.Prim.range_filter with
      | None -> true
      | Some (a, b) -> not (b < tlo || a > thi)
    in
    (* The memory filter bounds cover every Put value (plus, under Eager,
       the old values of deleted/updated records, via widening); an empty
       or disjoint memory component is prunable. *)
    let mem_overlaps =
      match Prim.mem_filter t.primary with
      | None -> false
      | Some (a, b) -> not (b < tlo || a > thi)
    in
    let n = ref 0 in
    let visit r =
      let v = fk r in
      if v >= tlo && v <= thi then begin
        incr n;
        f r
      end
    in
    let note_pruning only =
      Lsm_sim.Env.explain_count t.env "components_scanned" (List.length only);
      Lsm_sim.Env.explain_count t.env "components_pruned"
        (List.length comps - List.length only)
    in
    (match t.cfg.strategy with
    | Strategy.Mutable_bitmap _ ->
        let only = List.filter overlaps comps in
        note_pruning only;
        Prim.scan t.primary
          {
            Prim.full_scan_spec with
            reconcile = false;
            include_mem = mem_overlaps;
            only = Some only;
          }
          ~f:(fun row ~src_repaired:_ ->
            match row.Prim.value with Entry.Put r -> visit r | Entry.Del -> ())
    | Strategy.Eager ->
        let only = List.filter overlaps comps in
        note_pruning only;
        Prim.scan t.primary
          { Prim.full_scan_spec with include_mem = mem_overlaps; only = Some only }
          ~f:(fun row ~src_repaired:_ ->
            match row.Prim.value with Entry.Put r -> visit r | Entry.Del -> ())
    | Strategy.Validation _ | Strategy.Deleted_key_btree ->
        (* Find the oldest overlapping component; everything newer must be
           read too, to not miss overriding updates (Sec. 4.2). *)
        let arr = Array.of_list comps in
        let oldest = ref (-1) in
        Array.iteri (fun i c -> if overlaps c then oldest := i) arr;
        let only =
          if !oldest < 0 then []
          else Array.to_list (Array.sub arr 0 (!oldest + 1))
        in
        let include_mem = mem_overlaps || !oldest >= 0 in
        note_pruning only;
        Prim.scan t.primary
          { Prim.full_scan_spec with include_mem; only = Some only }
          ~f:(fun row ~src_repaired:_ ->
            match row.Prim.value with Entry.Put r -> visit r | Entry.Del -> ()));
    !n

  (** [point_query t pk] is a primary-key point query. *)
  let point_query t pk =
    Lsm_sim.Env.span t.env ~cat:"dataset" "query.point" @@ fun () ->
    match Prim.lookup_one t.primary pk with
    | Some { Prim.value = Entry.Put r; _ } -> Some r
    | _ -> None

  (* ------------------------------------------------------------------ *)
  (* Introspection for tests and benches *)

  let primary t = t.primary
  let pk_index t = t.pk_index
  let secondaries t = t.secondaries

  (** [set_sorted_views t on] toggles REMIX-style sorted-view scans on
      every index of the dataset (primary, primary-key, secondary and
      deleted-key trees).  On by default; the heap merge is the fallback
      and the differential-test oracle. *)
  let set_sorted_views t on =
    Prim.set_sorted_views t.primary on;
    (match t.pk_index with Some pk -> Pk.set_sorted_views pk on | None -> ());
    Array.iter
      (fun s ->
        Sec.set_sorted_views s.tree on;
        match s.del_tree with
        | Some d -> Pk.set_sorted_views d on
        | None -> ())
      t.secondaries
  let filter_key_fn t = t.filter_key

  let set_auto_maintenance t v = t.auto_maintenance <- v

  let total_disk_bytes t =
    Prim.disk_size_bytes t.primary
    + (match t.pk_index with Some pk -> Pk.disk_size_bytes pk | None -> 0)
    + Array.fold_left
        (fun acc s ->
          acc + Sec.disk_size_bytes s.tree
          + (match s.del_tree with Some d -> Pk.disk_size_bytes d | None -> 0))
        0 t.secondaries
end
