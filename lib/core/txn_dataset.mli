(** Record-level transactions with write-ahead logging, aborts,
    checkpoints, and crash recovery — Sec. 5.2's protocol end to end over
    real components.  See the implementation header for the redo/undo
    rules; flushes, checkpoints, and merges require transaction
    quiescence. *)

module Make (R : Record.S) (D : module type of Dataset.Make (R)) : sig
  type t
  type txn

  val create : D.t -> t
  (** Wrap a dataset (Mutable-bitmap or Validation strategy; Eager's
      read-modify-write path would need old-record logging).
      Auto-maintenance is disabled — use {!flush}. *)

  val dataset : t -> D.t

  val wal : t -> Lsm_txn.Wal.t
  (** The write-ahead log — after a {!crash}, the durable commit record
      is the authority on whether an in-flight transaction committed. *)

  val set_group_commit : t -> batch:int -> unit
  (** Batched group commit: commits enqueue into a group and one
      simulated fsync makes the whole group durable, amortizing the
      log-force cost ([batch] >= 2; <= 1 restores serial durability).
      {!flush} and {!checkpoint} force the open group out first
      (WAL-before-data), and {!crash} demotes a never-fsynced group's
      commits (torn group tail). *)

  val group_commit_batch : t -> int

  (** {1 Transactions} *)

  val begin_txn : t -> txn

  val txn_id : txn -> int
  (** WAL transaction id — crash checkers use it to ask the recovered WAL
      whether an in-flight transaction's commit record became durable. *)

  val upsert : t -> txn -> R.t -> unit
  val delete : t -> txn -> pk:int -> unit
  val commit : t -> txn -> unit

  val abort : t -> txn -> unit
  (** Apply inverse operations in reverse order: restore memory bindings,
      unset validity bits (the only time bits flip back). *)

  val with_txn : t -> (txn -> 'a) -> 'a
  (** Run in a fresh transaction and commit. *)

  val upsert_auto : t -> R.t -> unit
  val delete_auto : t -> pk:int -> unit

  (** {1 Durability} *)

  val flush : t -> unit
  (** Make memory components durable (and merge); advances each tree's
      durable frontier — the paper's "maximum component LSN", per index —
      and re-anchors the bitmap checkpoint (components are durable via
      shadowing). *)

  val flush_shard : t -> int -> unit
  (** Make one memory shard of every tree durable (and merge) while the
      sibling shards keep their contents; recovery gates redo on
      per-(tree, shard) durable frontiers, derived from component flush
      provenance.  Same WAL-before-data and re-anchor discipline as
      {!flush}.  Requires quiescence. *)

  val checkpoint : t -> unit
  (** Durably flush bitmap pages ("regular checkpointing", Sec. 5.2). *)

  val crash : t -> unit
  (** Simulate failure: memory components vanish; bitmaps revert to the
      last checkpoint. *)

  val recover : t -> unit
  (** Replay committed work: bitmap redo past the checkpoint LSN, then
      structural realignment of the correlated primary pair (redo an
      interrupted lockstep pk-index merge; roll an orphaned primary flush
      back to the aligned cut), then memory redo past each (tree, shard)'s
      own durable frontier.  Discards a torn trailing WAL record first.
      No undo is ever needed. *)
end
