(** Record-level transactions over a Mutable-bitmap dataset, with
    write-ahead logging, aborts, checkpoints, and crash recovery —
    Sec. 5.2's protocol, end to end:

    - every delete/upsert log record carries an *update bit* saying whether
      the operation flipped a validity bit in a disk component (and which
      one);
    - {b abort} applies inverse operations: memory-component writes are
      rolled back logically, and if the update bit is set, a primary-key
      index lookup locates the bit to unset (1 -> 0 — the only time bits
      are cleared);
    - no-steal / no-force: disk components hold only committed data;
      bitmap pages dirtied by live transactions are held back until
      {!checkpoint} flushes them;
    - {b crash} loses memory components and post-checkpoint bitmap flips;
      {b recover} replays committed transactions — memory redo from each
      tree's maximum component timestamp (the paper's "maximum component
      LSN", per index), bitmap redo from the checkpoint LSN.  No undo is
      ever needed.

    Crashes need not land between operations: a crash may interrupt a
    multi-tree flush or a correlated merge halfway (see [lib/faultsim]).
    Recovery therefore (1) replays bitmap updates onto the surviving
    pre-crash components, (2) realigns the correlated primary /
    primary-key pair — redoing an interrupted lockstep pk-index merge, or
    rolling an orphaned primary flush back to the aligned cut (its
    entries are still in the WAL) — and (3) redoes memory per tree, gated
    on that tree's own durable frontier.

    Restrictions (documented, asserted): flushes and merges must happen at
    transaction-quiescent points, and recovery applies to the component
    layout as of the crash (components are durable via shadowing). *)

module Entry = Lsm_tree.Entry
module Wal = Lsm_txn.Wal

module Make (R : Record.S) (D : module type of Dataset.Make (R)) = struct
  type op = Op_upsert of R.t | Op_delete of int

  (* One logged operation with everything needed for redo and undo. *)
  type log_op = {
    lsn : int;
    txn_id : int;
    op : op;
    ts : int;  (** ingestion timestamp consumed by the operation *)
    update : (int * int) option;  (** (component seq, position) bit set *)
    prior_prim : (int * R.t Entry.t) option;  (** replaced memory bindings *)
    prior_pk : (int * unit Entry.t) option;
    prior_sec : (string * int * (int * unit Entry.t) option) list;
        (** per secondary: (name, secondary key, replaced binding) *)
  }

  type txn = { id : int; mutable ops : log_op list (* newest first *) }

  type t = {
    d : D.t;
    wal : Wal.t;
    mutable redo : log_op list;  (** all logged ops, newest first *)
    mutable checkpoint_lsn : int;  (** bitmap pages durable up to here *)
    mutable checkpoint_bitmaps : (int * Lsm_util.Bitset.t) list;
        (** durable copies, keyed by pk-index component seq *)
    mutable live_txns : int;
  }

  let create d =
    (match D.strategy d with
    | Strategy.Mutable_bitmap _ | Strategy.Validation _ -> ()
    | _ ->
        invalid_arg
          "Txn_dataset.create: requires the Mutable-bitmap or Validation \
           strategy (Eager's read-modify-write path needs old-record \
           logging this layer does not provide)");
    D.set_auto_maintenance d false;
    let wal = Wal.create () in
    (* WAL spans share the dataset environment's simulated clock. *)
    let env = D.env d in
    Wal.set_tracer wal (Lsm_sim.Env.tracer env);
    (* Forcing the log is one positioning plus one page write on the
       dataset's device; group commit exists to amortize exactly this. *)
    let dev = Lsm_sim.Env.device env in
    Wal.set_sync_hooks wal
      ~fsync_us:
        (dev.Lsm_sim.Device.seek_us +. dev.Lsm_sim.Device.write_us_per_page)
      ~charge:(fun us -> Lsm_sim.Env.advance env us)
      ~fault:(fun p -> Lsm_sim.Env.fault_point env p);
    {
      d;
      wal;
      redo = [];
      checkpoint_lsn = 0;
      checkpoint_bitmaps = [];
      live_txns = 0;
    }

  let dataset t = t.d
  let wal t = t.wal

  (** [set_group_commit t ~batch] turns on batched group commit in the
      WAL: commits enqueue into a group and one simulated fsync makes the
      whole group durable (Sec. 2.3-style write-path batching).  [batch]
      <= 1 restores serial commit durability. *)
  let set_group_commit t ~batch = Wal.set_group_commit t.wal ~batch

  let group_commit_batch t = Wal.group_commit_batch t.wal

  let pk_index t = Option.get (D.pk_index t.d)

  (* ------------------------------------------------------------------ *)
  (* The write path (Mutable-bitmap ingestion, Sec. 5.2) with capture of
     everything an abort needs. *)

  let capture_prim t pk =
    match D.Prim.mem_find (D.primary t.d) pk with
    | Some r -> Some (r.D.Prim.ts, r.D.Prim.value)
    | None -> None

  let capture_pk t pk =
    match D.Pk.mem_find (pk_index t) pk with
    | Some r -> Some (r.D.Pk.ts, r.D.Pk.value)
    | None -> None

  let capture_sec t pk r_opt =
    match r_opt with
    | None -> []
    | Some r ->
        List.concat_map
          (fun s ->
            List.map
              (fun sk ->
                let prior =
                  match D.Sec.mem_find s.D.tree (sk, pk) with
                  | Some row -> Some (row.D.Sec.ts, row.D.Sec.value)
                  | None -> None
                in
                (s.D.sec_name, sk, prior))
              (s.D.extract_all r))
          (Array.to_list (D.secondaries t.d))

  (* Flip the old version's bit, reporting which bit was flipped. *)
  let mark_old t pk =
    let pkt = pk_index t in
    match D.Pk.mem_find pkt pk with
    | Some _ -> None
    | None -> (
        match D.Pk.disk_find pkt pk with
        | Some (c, pos, row)
          when Entry.is_put row.D.Pk.value && D.Pk.component_row_valid c pos ->
            D.Pk.invalidate c pos;
            Some (c.D.Pk.seq, pos)
        | _ -> None)

  let apply t txn op =
    let d = t.d in
    (* Crash here: nothing logged, nothing written — the op vanishes. *)
    Lsm_sim.Env.fault_point (D.env d) "txn.op.begin";
    let pkt = pk_index t in
    let pk, r_opt =
      match op with
      | Op_upsert r -> (R.primary_key r, Some r)
      | Op_delete pk -> (pk, None)
    in
    let prior_prim = capture_prim t pk in
    let prior_pk = capture_pk t pk in
    let prior_sec = capture_sec t pk r_opt in
    let ts = D.next_timestamp d in
    (* Only the Mutable-bitmap strategy flips validity bits at write time;
       Validation datasets write new entries only (Sec. 4.2). *)
    let update =
      if Strategy.uses_primary_bitmap (D.strategy t.d) then mark_old t pk
      else None
    in
    (match r_opt with
    | Some r ->
        D.Prim.write (D.primary d) ~key:pk ~ts (Entry.Put r);
        D.Pk.write pkt ~key:pk ~ts (Entry.Put ());
        Array.iter
          (fun s ->
            List.iter
              (fun sk -> D.Sec.write s.D.tree ~key:(sk, pk) ~ts (Entry.Put ()))
              (s.D.extract_all r))
          (D.secondaries d)
    | None ->
        D.Prim.write (D.primary d) ~key:pk ~ts Entry.Del;
        D.Pk.write pkt ~key:pk ~ts Entry.Del);
    let lsn =
      Wal.log t.wal ~txn:txn.id
        ~kind:(match op with Op_upsert _ -> Wal.Upsert | Op_delete _ -> Wal.Delete)
        ~pk ~update
    in
    let lop =
      { lsn; txn_id = txn.id; op; ts; update; prior_prim; prior_pk; prior_sec }
    in
    txn.ops <- lop :: txn.ops;
    t.redo <- lop :: t.redo;
    (* Crash here: the op's WAL record exists but its transaction has not
       committed — recovery must make the op invisible. *)
    Lsm_sim.Env.fault_point (D.env d) "txn.op.logged"

  (* ------------------------------------------------------------------ *)
  (* Transactions *)

  let begin_txn t =
    t.live_txns <- t.live_txns + 1;
    { id = Wal.begin_txn t.wal; ops = [] }

  let txn_id (txn : txn) = txn.id

  let upsert t txn r = apply t txn (Op_upsert r)
  let delete t txn ~pk = apply t txn (Op_delete pk)

  let commit t txn =
    (* Crash before the commit record is durable: the transaction aborts. *)
    Lsm_sim.Env.fault_point (D.env t.d) "txn.commit.pre";
    Wal.commit t.wal ~txn:txn.id;
    t.live_txns <- t.live_txns - 1;
    (* Crash after: the transaction is committed and must survive even
       though [commit] never returned to the caller. *)
    Lsm_sim.Env.fault_point (D.env t.d) "txn.commit.durable"

  (** [abort t txn] applies inverse operations in reverse order: restore
      memory bindings, unset update bits. *)
  let abort t txn =
    Lsm_sim.Env.span (D.env t.d) ~cat:"txn" "txn.abort" @@ fun () ->
    let d = t.d in
    let pkt = pk_index t in
    List.iter
      (fun lop ->
        let pk =
          match lop.op with Op_upsert r -> R.primary_key r | Op_delete pk -> pk
        in
        D.Prim.mem_rollback (D.primary d) ~key:pk ~prior:lop.prior_prim;
        D.Pk.mem_rollback pkt ~key:pk ~prior:lop.prior_pk;
        List.iter
          (fun (name, sk, prior) ->
            let s = D.secondary d name in
            D.Sec.mem_rollback s.D.tree ~key:(sk, pk) ~prior)
          lop.prior_sec;
        (match lop.update with
        | Some (comp_seq, pos) ->
            (* "perform a primary key index lookup (without bitmaps) to
               unset the bit": locate the component by its id. *)
            Array.iter
              (fun c ->
                if c.D.Pk.seq = comp_seq then D.Pk.revalidate c pos)
              (D.Pk.components pkt)
        | None -> ()))
      txn.ops (* newest first = reverse chronological *);
    Wal.abort t.wal ~txn:txn.id;
    t.live_txns <- t.live_txns - 1

  (** [with_txn t f] runs [f] in a fresh transaction and commits. *)
  let with_txn t f =
    let txn = begin_txn t in
    let r = f txn in
    commit t txn;
    r

  (* Convenience auto-commit single-op entry points. *)
  let upsert_auto t r = with_txn t (fun txn -> upsert t txn r)
  let delete_auto t ~pk = with_txn t (fun txn -> delete t txn ~pk)

  (* ------------------------------------------------------------------ *)
  (* Durability: flush, checkpoint, crash, recovery *)

  let assert_quiescent t what =
    if t.live_txns > 0 then
      invalid_arg (Printf.sprintf "Txn_dataset.%s: live transactions" what)

  let snapshot_bitmaps t =
    Array.to_list
      (Array.map
         (fun c ->
           ( c.D.Pk.seq,
             match c.D.Pk.bitmap with
             | Some b -> Lsm_util.Bitset.copy b
             | None -> Lsm_util.Bitset.create (D.Pk.component_rows c) ))
         (D.Pk.components (pk_index t)))

  (* A checkpoint has two durable effects: the bitmap-page snapshot and
     the checkpoint LSN.  The snapshot must become durable *first*: a
     crash in between then leaves (new snapshot, old LSN), and replaying
     from the old LSN merely re-sets bits the snapshot already has —
     idempotent.  The opposite order loses every bit flipped between the
     two LSNs: restore yields the old snapshot, but replay starts after
     the new LSN.  The [txn.ckpt.mid] fault point exists to keep this
     ordering honest. *)
  let anchor_checkpoint t =
    Lsm_sim.Env.fault_point (D.env t.d) "txn.ckpt.begin";
    t.checkpoint_bitmaps <- snapshot_bitmaps t;
    Lsm_sim.Env.fault_point (D.env t.d) "txn.ckpt.mid";
    t.checkpoint_lsn <- t.wal.Wal.next_lsn - 1;
    Lsm_sim.Env.fault_point (D.env t.d) "txn.ckpt.end"

  (** [flush t] makes all memory components durable (and runs merges);
      redo for operations up to this point is no longer needed.  Requires
      quiescence. *)
  let flush t =
    assert_quiescent t "flush";
    (* WAL-before-data: an open commit group must reach media before any
       memory component does.  Otherwise a flush could advance a tree's
       durable frontier past operations whose commit record is still
       volatile — after a crash the data would be durable but the commit
       undecided, and recovery would surface uncommitted writes. *)
    Wal.sync t.wal;
    D.flush_now t.d;
    (* Flushes/merges rewrite components; the checkpointed bitmap state is
       superseded (components are durable via shadowing), so checkpoint
       now to re-anchor.  A crash before the re-anchor is safe: restore
       gives unknown (post-merge) components all-valid bitmaps — correct,
       because the merge physically applied their bits — and replayed
       update records that target merged-away seqs are no-ops. *)
    Lsm_sim.Env.fault_point (D.env t.d) "txn.flush.anchor";
    anchor_checkpoint t

  (** [flush_shard t s] makes memory shard [s] of every tree durable (and
      runs merges) while the sibling shards keep their contents; redo for
      operations routed to shard [s] up to this point is no longer needed
      (recovery gates redo on per-shard durable frontiers).  Same
      WAL-before-data and re-anchor discipline as {!flush}.  Requires
      quiescence. *)
  let flush_shard t s =
    assert_quiescent t "flush_shard";
    Wal.sync t.wal;
    D.flush_shard_now t.d s;
    Lsm_sim.Env.fault_point (D.env t.d) "txn.flush.anchor";
    anchor_checkpoint t

  (** [checkpoint t] durably flushes the bitmap pages (Sec. 5.2: "regular
      checkpointing can be performed to flush dirty pages of bitmaps").
      Requires quiescence (pinned pages of live transactions may not be
      flushed under no-steal). *)
  let checkpoint t =
    Lsm_sim.Env.span (D.env t.d) ~cat:"txn" "txn.checkpoint" @@ fun () ->
    assert_quiescent t "checkpoint";
    (* The checkpoint LSN asserts every record below it is settled; an
       open commit group would violate that, so force it out first. *)
    Wal.sync t.wal;
    anchor_checkpoint t

  (** [crash t] simulates failure: memory components vanish; bitmaps
      revert to the last checkpoint.  (Disk components are durable.) *)
  let crash t =
    (* Torn group tail: commits enqueued in the WAL's open group never
       reached media — the crash demotes them to aborted, so recovery's
       committed-transaction predicate (and the crash checker's durable
       authority) exclude them. *)
    ignore (Wal.crash t.wal);
    D.Prim.reset_memory (D.primary t.d);
    D.Pk.reset_memory (pk_index t);
    Array.iter (fun s -> D.Sec.reset_memory s.D.tree) (D.secondaries t.d);
    (* Validity bitmaps exist only under the Mutable-bitmap strategy;
       a Validation pair is not lockstep-aligned, so sharing a pk-index
       bitmap onto a primary component there would mismatch its rows. *)
    if Strategy.uses_primary_bitmap (D.strategy t.d) then begin
      let pkt = pk_index t in
      Array.iter
        (fun c ->
          match List.assoc_opt c.D.Pk.seq t.checkpoint_bitmaps with
          | Some snap -> c.D.Pk.bitmap <- Some (Lsm_util.Bitset.copy snap)
          | None ->
              c.D.Pk.bitmap <-
                Some (Lsm_util.Bitset.create (D.Pk.component_rows c)))
        (D.Pk.components pkt);
      (* Re-share bitmaps with the primary components (aligned layouts). *)
      let pcs = D.Prim.components (D.primary t.d) in
      let kcs = D.Pk.components pkt in
      if Array.length pcs = Array.length kcs then
        Array.iteri (fun i p -> p.D.Prim.bitmap <- kcs.(i).D.Pk.bitmap) pcs
    end;
    t.live_txns <- 0

  (* The durable frontier of one tree, per memory shard: the maximum
     entry timestamp the surviving disk components cover *for that
     shard's key slice*.  Timestamps are handed out monotonically at
     write time and a key always routes to the same shard, so every
     committed write at or below its shard's frontier was in that shard's
     memory at — and therefore included in — some flush; everything above
     it needs memory redo.  Unlike a single dataset-wide LSN (or even a
     single per-tree frontier), this survives a crash that interrupted a
     multi-tree or per-shard flush halfway: each (tree, shard) reports
     exactly what it managed to make durable.  Coverage comes from flush
     provenance: a whole-memory origin ([fo_shard = -1]) covers every
     shard, a per-shard origin covers its shard (under the same shard
     count; origins from a different sharding cover nothing — redo is
     conservative there), and a component with no provenance falls back
     to covering every shard up to its ID range. *)
  let shard_frontiers (type dc) ~nshards ~(prov_of : dc -> Lsm_tree.flush_origin list)
      ~(id_of : dc -> int * int) (comps : dc array) =
    let f = Array.make nshards 0 in
    let cover_all hi =
      for s = 0 to nshards - 1 do
        f.(s) <- max f.(s) hi
      done
    in
    Array.iter
      (fun c ->
        match prov_of c with
        | [] -> cover_all (snd (id_of c))
        | prov ->
            List.iter
              (fun (o : Lsm_tree.flush_origin) ->
                if o.Lsm_tree.fo_shard < 0 then cover_all o.Lsm_tree.fo_max_ts
                else if o.Lsm_tree.fo_shards = nshards then
                  f.(o.Lsm_tree.fo_shard) <-
                    max f.(o.Lsm_tree.fo_shard) o.Lsm_tree.fo_max_ts)
              prov)
      comps;
    f

  let prim_frontiers t ~nshards =
    shard_frontiers ~nshards ~prov_of:(fun c -> c.D.Prim.prov)
      ~id_of:D.Prim.component_id
      (D.Prim.components (D.primary t.d))

  let pk_frontiers t ~nshards =
    shard_frontiers ~nshards ~prov_of:(fun c -> c.D.Pk.prov)
      ~id_of:D.Pk.component_id
      (D.Pk.components (pk_index t))

  let sec_frontiers s ~nshards =
    shard_frontiers ~nshards ~prov_of:(fun c -> c.D.Sec.prov)
      ~id_of:D.Sec.component_id (D.Sec.components s.D.tree)

  (* Restore the structural invariant of the correlated primary pair
     (Mutable-bitmap only): identical component layouts with positionally
     aligned rows and shared bitmaps.  A crash can break it in exactly two
     ways, both one step deep because maintenance is sequential:

     - an interrupted lockstep merge: the primary merged but the pk index
       did not.  Redo the pk side — merge the pk components whose IDs nest
       inside one primary component.  This runs *after* bitmap redo, so
       the re-merge drops exactly the rows the original (crashed) merge
       dropped: merges happen at quiescent points, hence every bit present
       at merge time was committed and is reproduced by checkpoint
       restore + replay.

     - an interrupted flush: the primary flushed a component the pk index
       has no counterpart for.  Roll the primary back to the aligned cut
       by dropping the orphan — its entries are still in the WAL and the
       per-tree frontier (computed after the drop) sends them back through
       memory redo on both trees.

     Finally re-share bitmap objects pairwise so a bit set through either
     index is seen by both. *)
  let prov_eq a b =
    List.length a = List.length b
    && List.for_all2 Lsm_tree.flush_origin_equal a b

  let realign_primary_pair t =
    if Strategy.uses_primary_bitmap (D.strategy t.d) then begin
      let prim = D.primary t.d in
      let pkt = pk_index t in
      (* Catch-up pk-index merges, matched by flush provenance (per-shard
         flushes make component ID ranges overlap across shards, so
         ts-range nesting no longer identifies the merge's inputs). *)
      Array.iter
        (fun pc ->
          ignore
            (D.merge_prov_range
               ~components:(fun () -> D.Pk.components pkt)
               ~prov_of:(fun c -> c.D.Pk.prov)
               ~merge:(fun ~first ~last -> D.Pk.merge pkt ~first ~last)
               ~prov:pc.D.Prim.prov))
        (D.Prim.components prim);
      (* Drop orphaned primary components (no pk counterpart).  The pair
         writes identical key/ts sets, so lockstep counterparts carry
         identical provenance. *)
      let has_pk_counterpart pc =
        Array.exists
          (fun kc ->
            if pc.D.Prim.prov = [] || kc.D.Pk.prov = [] then
              D.Pk.component_id kc = D.Prim.component_id pc
            else prov_eq kc.D.Pk.prov pc.D.Prim.prov)
          (D.Pk.components pkt)
      in
      let orphans = ref [] in
      Array.iteri
        (fun i pc -> if not (has_pk_counterpart pc) then orphans := i :: !orphans)
        (D.Prim.components prim);
      (* Newest-first indices, removed in descending order to stay valid. *)
      List.iter (fun i -> D.Prim.remove_component prim ~at:i) !orphans;
      (* Re-share bitmap objects (pk side is authoritative: it went
         through checkpoint restore + WAL replay). *)
      let pcs = D.Prim.components prim and kcs = D.Pk.components pkt in
      if Array.length pcs = Array.length kcs then
        Array.iteri (fun i pc -> pc.D.Prim.bitmap <- kcs.(i).D.Pk.bitmap) pcs
    end

  (** [recover t] replays committed work: bitmap redo past the checkpoint
      LSN, then structural realignment of the correlated primary pair,
      then memory redo past each tree's own durable frontier. *)
  let recover t =
    Lsm_sim.Env.span (D.env t.d) ~cat:"txn" "recovery.replay" @@ fun () ->
    (* A crash can tear the newest WAL record mid-append; drop it, and
       treat its transaction as uncommitted (its commit record could only
       have followed the torn record). *)
    (match Wal.discard_torn_tail t.wal with
    | Some r when Wal.txn_state t.wal ~txn:r.Wal.txn = Some Wal.Active ->
        Wal.abort t.wal ~txn:r.Wal.txn
    | _ -> ());
    (* Durably committed only: under group commit a logically committed
       transaction whose group never fsynced must not be replayed (its
       demotion happened in {!crash}; the durability check also guards a
       recover driven without the crash entry point). *)
    let committed txn_id = Wal.txn_durable t.wal ~txn:txn_id in
    (* Oldest-first replay.  (A discarded torn record's op needs no
       explicit filtering: its transaction is not committed.) *)
    let ops = List.rev t.redo in
    (* 1. Bitmap redo: "a log record is replayed on the bitmaps only when
       its update bit is 1".  Runs first, onto the surviving pre-crash
       components, so a redone merge below sees fully recovered bits. *)
    List.iter
      (fun lop ->
        if committed lop.txn_id && lop.lsn > t.checkpoint_lsn then
          match lop.update with
          | Some (comp_seq, pos) ->
              Array.iter
                (fun c -> if c.D.Pk.seq = comp_seq then D.Pk.invalidate c pos)
                (D.Pk.components (pk_index t))
          | None -> ())
      ops;
    (* 2. Structural realignment of the correlated primary pair. *)
    realign_primary_pair t;
    (* 3. Memory redo, per (tree, shard).  Frontiers are computed after
       the realignment (a dropped orphan lowers the primary's frontier,
       which is exactly what routes its entries back through redo); each
       write is gated on the frontier of the shard its key routes to. *)
    let d = t.d in
    let pkt = pk_index t in
    let nshards = D.mem_shards d in
    let prim_f = prim_frontiers t ~nshards in
    let pk_f = pk_frontiers t ~nshards in
    let sec_f =
      Array.map (fun s -> (s, sec_frontiers s ~nshards)) (D.secondaries d)
    in
    List.iter
      (fun lop ->
        if committed lop.txn_id then begin
          match lop.op with
          | Op_upsert r ->
              let pk = R.primary_key r in
              if lop.ts > prim_f.(D.Prim.shard_of (D.primary d) pk) then
                D.Prim.write (D.primary d) ~key:pk ~ts:lop.ts (Entry.Put r);
              if lop.ts > pk_f.(D.Pk.shard_of pkt pk) then
                D.Pk.write pkt ~key:pk ~ts:lop.ts (Entry.Put ());
              Array.iter
                (fun (s, f) ->
                  List.iter
                    (fun sk ->
                      if lop.ts > f.(D.Sec.shard_of s.D.tree (sk, pk)) then
                        D.Sec.write s.D.tree ~key:(sk, pk) ~ts:lop.ts
                          (Entry.Put ()))
                    (s.D.extract_all r))
                sec_f
          | Op_delete pk ->
              if lop.ts > prim_f.(D.Prim.shard_of (D.primary d) pk) then
                D.Prim.write (D.primary d) ~key:pk ~ts:lop.ts Entry.Del;
              if lop.ts > pk_f.(D.Pk.shard_of pkt pk) then
                D.Pk.write pkt ~key:pk ~ts:lop.ts Entry.Del
        end)
      ops
end
