(** The LSM storage architecture of Sec. 3 (Fig. 1): per dataset, a
    primary index, an optional primary key index, and a set of secondary
    indexes — all LSM-trees sharing one memory budget, flushed together,
    with Bloom filters on primary / primary-key components and an optional
    range filter on the primary index.

    Ingestion follows the configured {!Strategy.t}; query plans implement
    Secs. 3.2 and 4.3; background index repair implements Sec. 4.4. *)

module Entry = Lsm_tree.Entry

(** Counters for the overlapping-maintenance scheduler (Sec. 2.3). *)
type maint_stats = {
  mutable maint_rounds : int;  (** scheduler rounds that dispatched jobs *)
  mutable maint_jobs : int;  (** merge jobs executed *)
  mutable maint_max_overlap : int;  (** widest observed concurrency *)
  mutable maint_shared_claims : int;
      (** runnable jobs skipped because a tree was already claimed in the
          round — must stay zero: jobs are constructed over disjoint
          trees *)
  mutable maint_serial_us : float;  (** sum of per-job busy times *)
  mutable maint_makespan_us : float;
      (** modeled W-worker makespan actually charged to the clock *)
}

module Make (R : Record.S) : sig
  (** The record type as an LSM value. *)
  module Rv : sig
    type t = R.t

    val byte_size : t -> int
    val pp : Format.formatter -> t -> unit
  end

  (** The three index families (Fig. 1): records by primary key, primary
      keys alone, and (secondary key, primary key) composites. *)
  module Prim : module type of Lsm_tree.Make (Lsm_util.Keys.Int_key) (Rv)

  module Pk :
      module type of Lsm_tree.Make (Lsm_util.Keys.Int_key)
                       (Lsm_util.Keys.Unit_value)

  module Sec :
      module type of Lsm_tree.Make (Lsm_util.Keys.Int_pair_key)
                       (Lsm_util.Keys.Unit_value)

  type sec_index = {
    sec_name : string;
    extract_all : R.t -> int list;  (** all secondary keys of a record *)
    tree : Sec.t;
    del_tree : Pk.t option;
        (** deleted-key structure (Deleted_key_btree strategy only) *)
  }

  type config = {
    strategy : Strategy.t;
    mem_budget : int;  (** shared across all the dataset's memory components *)
    merge_policy : Lsm_tree.Merge_policy.t;
    use_pk_index : bool;  (** Fig. 13 evaluates inserts without one *)
    bloom : Lsm_tree.Config.bloom option;
        (** Bloom settings for primary / primary-key / deleted-key
            components *)
    maint_workers : int;
        (** modeled maintenance workers (default 1 = serial); with more,
            the merge scheduler overlaps independent merge jobs
            deterministically and charges the clock their modeled
            makespan instead of the serial sum (Sec. 2.3) *)
    mem_shards : int;
        (** memory shards per tree (default 1): with more, writes
            hash-route across sub-memtables and the budget can flush one
            full shard while its siblings keep absorbing writes
            (Sec. 2.3 flush granularity) *)
  }

  val default_config : config

  type stats = {
    mutable n_inserts : int;
    mutable n_upserts : int;
    mutable n_deletes : int;
    mutable n_duplicates : int;
    mutable n_flushes : int;
    mutable n_merges : int;
    mutable n_repairs : int;
    mutable flush_us : float;
    mutable merge_us : float;
    mutable repair_us : float;
  }

  type t

  val create :
    ?filter_key:(R.t -> int) ->
    ?secondaries:R.t Record.secondary list ->
    Lsm_sim.Env.t ->
    config ->
    t

  val env : t -> Lsm_sim.Env.t
  val stats : t -> stats
  val strategy : t -> Strategy.t
  val config : t -> config

  val secondary : t -> string -> sec_index
  (** @raise Invalid_argument for unknown index names. *)

  val now_ts : t -> int

  val next_timestamp : t -> int
  (** Fresh ingestion timestamp, for machinery that bypasses the regular
      ingestion entry points (e.g. concurrent-merge writers). *)

  (** {1 Ingestion (Secs. 3.1, 4.2, 5.2)} *)

  val insert : t -> R.t -> [ `Inserted | `Duplicate ]
  (** Rejects duplicates by primary key (via the primary key index when
      present — the Fig. 13 optimization). *)

  val upsert : t -> R.t -> unit
  (** Insert, superseding any record with the same key — where the
      strategies differ (Fig. 14). *)

  val delete : t -> pk:int -> unit

  val key_exists : t -> int -> bool

  (** {1 Maintenance} *)

  val total_mem_bytes : t -> int

  val flush_now : t -> unit
  (** Flush all memory components and run the merge scheduler, both under
      the maintenance supervisor: a pass whose I/O retries were exhausted
      is rescheduled with backoff (the partial component's file is
      already discarded) before the failure propagates as
      [Lsm_sim.Resilience.Unrecoverable].  If corruption has been
      detected, {!heal} follows. *)

  val flush_memory : t -> unit
  (** Flush without merging. *)

  val flush_shard_now : t -> int -> unit
  (** [flush_shard_now t s] flushes memory shard [s] of every tree and
      runs the merge scheduler, both supervised; with [maint_workers > 1]
      the flush is scheduled as one more job so it overlaps runnable
      merges on the modeled workers.  Fault points
      [dataset.flush.shard.begin] / [dataset.flush.shard.pair] mirror the
      whole-memory flush's crash windows. *)

  val mem_shards : t -> int
  (** Configured memory shards (>= 1). *)

  val mem_shard_bytes : t -> int -> int
  (** Aggregate bytes of one memory shard across every tree of the
      dataset — the budget's eviction unit when sharded. *)

  val largest_mem_shard : t -> int * int
  (** [(shard, bytes)] of the fullest memory shard. *)

  val merge_prov_range :
    components:(unit -> 'dc array) ->
    prov_of:('dc -> Lsm_tree.flush_origin list) ->
    merge:(first:int -> last:int -> 'dc) ->
    prov:Lsm_tree.flush_origin list ->
    'dc option
  (** Merge the lockstep counterpart of a merged component: find the
      contiguous run of [components] whose concatenated flush provenance
      equals [prov] and merge it.  Per-shard flushes produce components
      whose ID ranges overlap across shards, so ts-range nesting no
      longer identifies a merge's inputs; provenance does.  [None] when
      the counterpart is a single already-aligned component or no run
      matches (recovery redoes it). *)

  val set_auto_maintenance : t -> bool -> unit
  (** Default [true]: flush/merge when the shared budget fills. *)

  val set_maint_workers : t -> int -> unit
  (** Override the modeled worker count at runtime (clamped to >= 1).
      [1] restores the serial scheduler; the two schedulers produce
      byte-for-byte identical trees, so switching mid-run is safe. *)

  val maint_workers : t -> int

  val maint_stats : t -> maint_stats
  (** Live counters of the overlapping scheduler (zeros while serial);
      published as [maint.*] gauges after each overlapped merge sweep
      when observability is enabled. *)

  val standalone_repair : ?bloom_opt:bool -> t -> unit
  (** Repair every disk component of every secondary index in place
      (Sec. 4.4; [bloom_opt] overrides the strategy's setting). *)

  val primary_repair : t -> with_merge:bool -> unit
  (** The DELI baseline: repair secondaries by scanning primary
      components and anti-mattering superseded versions — reading full
      records, the cost secondary repair avoids. *)

  val heal : t -> unit
  (** Self-healing sweep: quarantine every component whose backing file
      holds a checksum-failed page, scrub quarantined primary-family
      components through single-component merges (lockstep for the
      Mutable-bitmap pair), and rebuild quarantined secondary components
      from the primary key index via the Sec. 4 standalone-repair path.
      Afterwards nothing is quarantined and the corruption is physically
      gone.  Idempotent; cheap when there is nothing to do. *)

  val quarantined_count : t -> int
  (** Number of disk components currently quarantined (degraded), across
      all indexes. *)

  (** {1 Query processing (Secs. 3.2, 4.3)} *)

  type sec_entry = {
    e_sk : int;
    e_pk : int;
    e_ts : int;
    e_src_repaired : int;
  }

  type validation_mode = [ `Assume_valid | `Direct | `Timestamp ]
  (** [`Assume_valid] for Eager-maintained indexes; [`Direct] fetches then
      re-checks (Fig. 5a); [`Timestamp] validates against the primary key
      index (Fig. 5b). *)

  val search_secondary : t -> sec_index -> lo:int -> hi:int -> sec_entry list

  val query_secondary :
    t ->
    sec:string ->
    lo:int ->
    hi:int ->
    mode:validation_mode ->
    ?lookup:Prim.lookup_opts ->
    unit ->
    R.t list
  (** Records whose secondary key lies in [lo, hi] (Fig. 16's
      non-index-only query). *)

  val query_secondary_keys :
    t ->
    sec:string ->
    lo:int ->
    hi:int ->
    mode:[ `Assume_valid | `Timestamp ] ->
    unit ->
    (int * int) list
  (** Index-only variant (Fig. 17): (secondary key, primary key) pairs,
      never touching records.  [`Direct] is not offered — it must fetch
      records (Sec. 4.3). *)

  val full_scan : t -> f:(R.t -> unit) -> int
  (** Every live record (reconciled); returns the count. *)

  val query_time_range : t -> tlo:int -> thi:int -> f:(R.t -> unit) -> int
  (** Primary scan with component-level range-filter pruning
      (Sec. 6.4.2); pruning power depends on the strategy.
      @raise Invalid_argument if the dataset has no filter key. *)

  val point_query : t -> int -> R.t option

  (** {1 Introspection} *)

  val primary : t -> Prim.t
  val pk_index : t -> Pk.t option
  val secondaries : t -> sec_index array

  (** [set_sorted_views t on] toggles REMIX-style sorted-view scans on
      every index of the dataset; on by default; the heap merge remains
      the fallback. *)
  val set_sorted_views : t -> bool -> unit

  val filter_key_fn : t -> (R.t -> int) option
  val total_disk_bytes : t -> int
end
