(** Metrics registry: named counters, gauges, and log-scale latency
    histograms, optionally labeled.  Handles are bare mutable cells —
    cache them at the call site; updating one is a single store. *)

type t

type labels = (string * string) list

type counter
type gauge

val create : unit -> t

val counter : t -> ?labels:labels -> string -> counter
(** Find-or-register.  Same name + same labels (order-insensitive) is the
    same cell.  Raises [Invalid_argument] if the name is already
    registered as a different metric kind. *)

val gauge : t -> ?labels:labels -> string -> gauge
val histogram : t -> ?labels:labels -> string -> Histogram.t

val add : counter -> int -> unit
val incr : counter -> unit
val value : counter -> int

val set : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : Histogram.t -> float -> unit

val iter :
  t ->
  (string ->
  labels ->
  [ `Counter of counter | `Gauge of gauge | `Histogram of Histogram.t ] ->
  unit) ->
  unit
(** Visit every metric in registration order. *)

val to_lines : t -> string list
(** Aligned one-line-per-metric dump, sorted by name then labels;
    histograms render as [n=… mean=… p50=… p95=… p99=… max=…]. *)
