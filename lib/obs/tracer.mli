(** Nested-span tracer stamped with the simulated clock.

    Completed spans land in a bounded ring buffer (for Chrome
    [trace_event] export); exact per-name aggregates and top-level totals
    are folded in at completion and survive ring wraparound.  The
    disabled tracer reduces {!with_span} to one branch. *)

type t

type event = {
  ev_name : string;
  ev_cat : string;
  ev_start_us : float;
  ev_dur_us : float;
  ev_depth : int;  (** 0 = top-level *)
  ev_args : (string * int) list;  (** e.g. I/O counter deltas *)
}

type agg = {
  mutable a_count : int;
  mutable a_total_us : float;
  mutable a_self_us : float;  (** total minus time in direct children *)
  mutable a_max_us : float;
}

val create : ?capacity:int -> clock:(unit -> float) -> unit -> t
(** [capacity] bounds the ring buffer (default 65536 completed spans). *)

val disabled : t
val enabled : t -> bool

val with_span :
  t ->
  ?cat:string ->
  ?args_of:(unit -> (string * int) list) ->
  string ->
  (unit -> 'a) ->
  'a
(** Run a thunk inside a span.  [args_of] is evaluated at completion
    (even on exceptions) — used to attach I/O counter deltas. *)

val recorded : t -> int
(** Completed spans ever (including any no longer in the ring). *)

val dropped : t -> int
(** [recorded - capacity] when positive: spans evicted from the ring. *)

val events : t -> event array
(** Ring contents, oldest first. *)

val top_level_us : t -> float
(** Sum of top-level (depth 0) span durations — the covered time. *)

val top_level_args : t -> (string * int) list
(** Top-level span argument totals, summed per key and sorted — e.g. the
    I/O counters attributed to named spans, for reconciliation against
    {!Lsm_sim.Io_stats.diff}. *)

val aggregates : t -> (string * agg) list
(** Per-name aggregates, largest total first. *)

val add_chrome_events : Buffer.t -> ?pid:int -> first:bool -> t -> bool
(** Append the ring's events as Chrome [trace_event] objects
    (comma-separated; [first] controls the leading comma).  Returns
    whether anything was emitted.  Timestamps are microseconds — exactly
    Chrome's unit. *)

val to_chrome_json : t -> string
(** A standalone loadable [chrome://tracing] / Perfetto document. *)

val profile : ?total_us:float -> t -> string
(** Aligned text table (count / total / self / max / %run per span name)
    plus a coverage line.  [total_us] is the run's elapsed simulated
    time; defaults to the covered time itself. *)
