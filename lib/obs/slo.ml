(** SLO burn-rate monitoring and maintenance-interference attribution
    over a {!Timeseries}.

    An objective declares a latency target for one histogram series —
    "point latency p99 < 1500µs".  The quantile implies an error
    budget: p99 tolerates 1% of requests over the threshold.  The
    *burn rate* of a stretch of windows is how fast that budget is
    being consumed: [violating / (total * budget)]; burn 1.0 exactly
    spends the budget, burn 10 spends it ten times too fast.

    Alerting follows the multi-window pattern: a window W alerts when
    BOTH the fast aggregate (the last [fast_windows] windows ending at
    W, default 5) burns at ≥ [fast_burn] (default 10) AND the slow
    aggregate (last [slow_windows], default 30) burns at ≥ [slow_burn]
    (default 2).  The fast window gives quick detection and recovery;
    the slow window suppresses one-off blips that never endanger the
    budget.  Burn is computed from aggregate violation counts over the
    whole stretch, not a mean of per-window ratios, so empty windows
    (a stalled partition) don't dilute the signal.

    Attribution joins each alert window against the flight-recorder
    ring: every maintenance event overlapping the window is scored by
    microseconds of overlap and ranked, turning "p99 spiked in window
    17" into "p99 spiked in window 17 on partition 2 while a 41ms
    budget eviction ran there". *)

type objective = {
  series : string;  (** histogram series in the timeseries, e.g. ["point"] *)
  quantile : float;  (** e.g. 0.99 *)
  threshold_us : float;
}

type config = {
  fast_windows : int;
  slow_windows : int;
  fast_burn : float;
  slow_burn : float;
}

let default_config =
  { fast_windows = 5; slow_windows = 30; fast_burn = 10.0; slow_burn = 2.0 }

(** Error budget implied by the quantile: p99 → 1% of requests may
    exceed the threshold. *)
let budget_frac o = 1.0 -. o.quantile

let pp_objective fmt o =
  Fmt.pf fmt "%s:p%g<%gus" o.series (o.quantile *. 100.0) o.threshold_us

(** [objective_of_string "point:p99<1500us"].  Quantile is given as a
    percentile (p50..p99.9); duration accepts [us], [ms], [s] suffixes
    (bare numbers are microseconds). *)
let objective_of_string s =
  let fail () =
    Error
      (Printf.sprintf
         "bad SLO spec %S (want SERIES:pQ<DUR, e.g. point:p99<1500us)" s)
  in
  match String.index_opt s ':' with
  | None -> fail ()
  | Some ci -> (
      let series = String.sub s 0 ci in
      let rest = String.sub s (ci + 1) (String.length s - ci - 1) in
      match String.index_opt rest '<' with
      | None -> fail ()
      | Some li ->
          let q = String.sub rest 0 li in
          let dur = String.sub rest (li + 1) (String.length rest - li - 1) in
          if series = "" || String.length q < 2 || q.[0] <> 'p' then fail ()
          else
            let pct = float_of_string_opt (String.sub q 1 (String.length q - 1)) in
            let num, unit =
              let n = String.length dur in
              if n > 2 && String.sub dur (n - 2) 2 = "us" then
                (String.sub dur 0 (n - 2), 1.0)
              else if n > 2 && String.sub dur (n - 2) 2 = "ms" then
                (String.sub dur 0 (n - 2), 1e3)
              else if n > 1 && dur.[n - 1] = 's' then
                (String.sub dur 0 (n - 1), 1e6)
              else (dur, 1.0)
            in
            let v = float_of_string_opt num in
            (match (pct, v) with
            | Some pct, Some v when pct > 0.0 && pct < 100.0 && v > 0.0 ->
                Ok
                  {
                    series;
                    quantile = pct /. 100.0;
                    threshold_us = v *. unit;
                  }
            | _ -> fail ()))

(* ------------------------------------------------------------------ *)
(* Burn-rate evaluation *)

type alert = {
  a_window : int;  (** index of the window whose close fired the alert *)
  a_objective : objective;
  a_fast_burn : float;
  a_slow_burn : float;
  a_bad : int;  (** violations in the fast stretch *)
  a_total : int;  (** observations in the fast stretch *)
}

(* Violations / totals for windows [lo, hi] of the objective's series. *)
let stretch ts o ~lo ~hi =
  let bad = ref 0 and total = ref 0 in
  for i = max 0 lo to hi do
    match Timeseries.hist ts ~i o.series with
    | None -> ()
    | Some h ->
        bad := !bad + Histogram.count_above h o.threshold_us;
        total := !total + Histogram.count h
  done;
  (!bad, !total)

let burn o ~bad ~total =
  if total = 0 then 0.0
  else float_of_int bad /. (float_of_int total *. budget_frac o)

(** [evaluate ?config ts o] slides both burn windows across the whole
    run and returns every alerting window, in index order. *)
let evaluate ?(config = default_config) ts o =
  let alerts = ref [] in
  for w = 0 to Timeseries.n_windows ts - 1 do
    let fb, ft = stretch ts o ~lo:(w - config.fast_windows + 1) ~hi:w in
    let fast = burn o ~bad:fb ~total:ft in
    if fast >= config.fast_burn then begin
      let sb, st = stretch ts o ~lo:(w - config.slow_windows + 1) ~hi:w in
      let slow = burn o ~bad:sb ~total:st in
      if slow >= config.slow_burn then
        alerts :=
          {
            a_window = w;
            a_objective = o;
            a_fast_burn = fast;
            a_slow_burn = slow;
            a_bad = fb;
            a_total = ft;
          }
          :: !alerts
    end
  done;
  List.rev !alerts

(* ------------------------------------------------------------------ *)
(* Interference attribution *)

type finding = {
  f_alert : alert;
  f_event : Timeseries.event;
  f_overlap_us : float;  (** microseconds the event overlapped the window *)
}

(** [attribute ts alerts] joins each alert window against the
    flight-recorder ring: every maintenance event overlapping the
    window, ranked by overlap duration (ties broken by start time, so
    the ranking is deterministic). *)
let attribute ts alerts =
  List.concat_map
    (fun a ->
      let w0 = Timeseries.window_start ts a.a_window in
      let w1 = w0 +. Timeseries.window_us ts in
      Timeseries.events_between ts ~from_us:w0 ~until_us:w1
      |> List.map (fun (e : Timeseries.event) ->
             let overlap =
               Float.min w1 (e.e_start_us +. e.e_dur_us)
               -. Float.max w0 e.e_start_us
             in
             { f_alert = a; f_event = e; f_overlap_us = Float.max 0.0 overlap })
      |> List.sort (fun x y ->
             match Float.compare y.f_overlap_us x.f_overlap_us with
             | 0 -> Float.compare x.f_event.e_start_us y.f_event.e_start_us
             | c -> c))
    alerts

(** [flight_record ?around ts alert] dumps the event ring around the
    alert window: every event overlapping [a_window ± around] windows
    (default 2) — the "what was the system doing just then" view. *)
let flight_record ?(around = 2) ts a =
  let w0 = Timeseries.window_start ts (max 0 (a.a_window - around)) in
  let w1 =
    Timeseries.window_start ts (a.a_window + around) +. Timeseries.window_us ts
  in
  Timeseries.events_between ts ~from_us:w0 ~until_us:w1

(* ------------------------------------------------------------------ *)
(* Export *)

let objective_json o =
  Json.Obj
    [
      ("series", Json.Str o.series);
      ("quantile", Json.Float o.quantile);
      ("threshold_us", Json.Float o.threshold_us);
      ("budget_frac", Json.Float (budget_frac o));
    ]

let alert_json a =
  Json.Obj
    [
      ("window", Json.Int a.a_window);
      ("objective", objective_json a.a_objective);
      ("fast_burn", Json.Float a.a_fast_burn);
      ("slow_burn", Json.Float a.a_slow_burn);
      ("bad", Json.Int a.a_bad);
      ("total", Json.Int a.a_total);
    ]

let finding_json f =
  Json.Obj
    [
      ("window", Json.Int f.f_alert.a_window);
      ("series", Json.Str f.f_alert.a_objective.series);
      ("event", Timeseries.event_json f.f_event);
      ("overlap_us", Json.Float f.f_overlap_us);
    ]

(** Full monitoring document: objectives, config, alerts, ranked
    findings, and a flight-recorder dump per alert. *)
let to_json ?(config = default_config) ts objectives =
  let alerts = List.concat_map (fun o -> evaluate ~config ts o) objectives in
  let findings = attribute ts alerts in
  Json.Obj
    [
      ("objectives", Json.List (List.map objective_json objectives));
      ( "config",
        Json.Obj
          [
            ("fast_windows", Json.Int config.fast_windows);
            ("slow_windows", Json.Int config.slow_windows);
            ("fast_burn", Json.Float config.fast_burn);
            ("slow_burn", Json.Float config.slow_burn);
          ] );
      ("alerts", Json.List (List.map alert_json alerts));
      ("findings", Json.List (List.map finding_json findings));
      ( "flight_records",
        Json.List
          (List.map
             (fun a ->
               Json.Obj
                 [
                   ("window", Json.Int a.a_window);
                   ("series", Json.Str a.a_objective.series);
                   ( "events",
                     Json.List
                       (List.map Timeseries.event_json (flight_record ts a)) );
                 ])
             alerts) );
    ]
