(** The metrics registry: named counters, gauges, and latency histograms,
    each optionally labeled (e.g. [("index", "sec:user_id")]).

    Lookup is amortized by call sites caching the returned handle; the
    handles themselves are bare mutable cells, so the hot-path cost of an
    [incr] is one store.  The registry is only ever consulted when
    observability is enabled — the disabled engine path never touches
    it. *)

type labels = (string * string) list

type counter = { mutable c : int }
type gauge = { mutable g : float }

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of Histogram.t

type t = {
  tbl : (string * labels, metric) Hashtbl.t;
  mutable order : (string * labels) list;  (** registration order, newest first *)
}

let create () = { tbl = Hashtbl.create 64; order = [] }

let canon labels = List.sort compare labels

let register t name labels mk =
  let key = (name, canon labels) in
  match Hashtbl.find_opt t.tbl key with
  | Some m -> m
  | None ->
      let m = mk () in
      Hashtbl.replace t.tbl key m;
      t.order <- key :: t.order;
      m

let counter t ?(labels = []) name =
  match register t name labels (fun () -> Counter { c = 0 }) with
  | Counter c -> c
  | _ -> invalid_arg ("Metrics.counter: " ^ name ^ " is not a counter")

let gauge t ?(labels = []) name =
  match register t name labels (fun () -> Gauge { g = 0.0 }) with
  | Gauge g -> g
  | _ -> invalid_arg ("Metrics.gauge: " ^ name ^ " is not a gauge")

let histogram t ?(labels = []) name =
  match register t name labels (fun () -> Histogram (Histogram.create ())) with
  | Histogram h -> h
  | _ -> invalid_arg ("Metrics.histogram: " ^ name ^ " is not a histogram")

let add c n = c.c <- c.c + n
let incr c = add c 1
let value c = c.c
let set g v = g.g <- v
let gauge_value g = g.g
let observe h v = Histogram.observe h v

let iter t f =
  List.iter
    (fun (name, labels) ->
      let m =
        match Hashtbl.find t.tbl (name, labels) with
        | Counter c -> `Counter c
        | Gauge g -> `Gauge g
        | Histogram h -> `Histogram h
      in
      f name labels m)
    (List.rev t.order)

let pp_labels fmt = function
  | [] -> ()
  | ls ->
      Fmt.pf fmt "{%a}"
        (Fmt.list ~sep:(Fmt.any ",") (fun fmt (k, v) -> Fmt.pf fmt "%s=%s" k v))
        ls

(** [to_lines t] renders every metric as one aligned line, sorted by name
    then labels — the text dump used by report appendices and the CLI. *)
let to_lines t =
  let rows = ref [] in
  iter t (fun name labels m ->
      let id = Fmt.str "%s%a" name pp_labels labels in
      let v =
        match m with
        | `Counter c -> string_of_int c.c
        | `Gauge g -> Fmt.str "%.6g" g.g
        | `Histogram h -> Fmt.str "%a" Histogram.pp_summary h
      in
      rows := (id, v) :: !rows);
  let rows = List.sort compare !rows in
  let w = List.fold_left (fun acc (id, _) -> max acc (String.length id)) 0 rows in
  List.map
    (fun (id, v) -> id ^ String.make (w - String.length id + 2) ' ' ^ v)
    rows
