(** Shared sample statistics: the one nan-safe percentile used by bench
    snapshots and the serving layer alike. *)

val percentile : float array -> float -> float
(** [percentile samples p] is the nearest-rank [p]-th percentile (0–100)
    of the finite values of [samples].  Nan samples are dropped; nan is
    returned only when no finite sample remains. *)

val p50 : float array -> float
val p95 : float array -> float
val p99 : float array -> float
