(** Shared sample statistics.

    One nan-safe percentile for every consumer ([Bench_json] snapshots,
    the serving driver's SLO tables) — the two used to carry separate
    copies, which is exactly how the PR 5 [Float.compare]/nan bug
    happened once and could happen again. *)

(** Nearest-rank percentile over the finite values of [samples]; nan
    samples are dropped first (a timer glitch must not poison the
    statistic), and the result is nan only when no finite sample
    remains.  Sorting uses [Float.compare] — polymorphic [compare] on
    floats boxes every element and gives nan an arbitrary order. *)
let percentile samples p =
  let s =
    Array.of_seq
      (Seq.filter (fun v -> not (Float.is_nan v)) (Array.to_seq samples))
  in
  let n = Array.length s in
  if n = 0 then Float.nan
  else begin
    Array.sort Float.compare s;
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    s.(max 0 (min (n - 1) (rank - 1)))
  end

let p50 samples = percentile samples 50.0
let p95 samples = percentile samples 95.0
let p99 samples = percentile samples 99.0
