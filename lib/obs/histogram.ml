(** Log-scale latency histogram.

    Values (simulated microseconds, but any non-negative float works) land
    in geometric buckets: [sub] buckets per octave over the range
    [2^lo_oct, 2^hi_oct), clamped at both ends.  With the default 8
    sub-buckets per octave the relative error of a reported quantile is
    bounded by [2^(1/8) - 1 ~= 9%], which is plenty for p50/p95/p99
    summaries while keeping the structure a flat int array — observation
    is an [log2 + array increment], no allocation. *)

(* Octave range: 2^-10 us (~1ns) .. 2^30 us (~18 min of simulated time per
   single span).  Out-of-range values clamp into the edge buckets; the
   exact max is tracked separately so p100 never suffers clamping. *)
let lo_oct = -10
let hi_oct = 30
let sub = 8
let n_buckets = (hi_oct - lo_oct) * sub

type t = {
  buckets : int array;
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create () =
  {
    buckets = Array.make n_buckets 0;
    count = 0;
    sum = 0.0;
    min_v = infinity;
    max_v = neg_infinity;
  }

let bucket_of v =
  if v <= 0.0 then 0
  else begin
    let oct = Float.log2 v in
    let i = int_of_float (Float.floor ((oct -. float_of_int lo_oct) *. float_of_int sub)) in
    if i < 0 then 0 else if i >= n_buckets then n_buckets - 1 else i
  end

(* Upper bound of bucket [i] — the value a quantile falling in [i] reports.
   Quantiles are thus conservative (never under-reported) within the
   bucket's ~9% resolution. *)
let bucket_upper i =
  Float.exp2 (float_of_int lo_oct +. (float_of_int (i + 1) /. float_of_int sub))

let observe t v =
  t.buckets.(bucket_of v) <- t.buckets.(bucket_of v) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let count t = t.count
let sum t = t.sum
let max_value t = if t.count = 0 then 0.0 else t.max_v
let min_value t = if t.count = 0 then 0.0 else t.min_v
let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count

(** [quantile t q] for [q] in [0, 1]; 0 on an empty histogram.  Reported
    as the upper bound of the bucket holding the rank-[ceil (q * count)]
    observation, capped at the exact maximum. *)
let quantile t q =
  if t.count = 0 then 0.0
  else begin
    let rank =
      let r = int_of_float (Float.ceil (q *. float_of_int t.count)) in
      if r < 1 then 1 else if r > t.count then t.count else r
    in
    let rec go i cum =
      if i >= n_buckets then t.max_v
      else begin
        let cum = cum + t.buckets.(i) in
        if cum >= rank then
          (* The top bucket absorbs clamped out-of-range values, whose
             true magnitude only the tracked max knows. *)
          if i = n_buckets - 1 then t.max_v
          else Float.min (bucket_upper i) t.max_v
        else go (i + 1) cum
      end
    in
    go 0 0
  end

(** [count_above t v] is the number of observations that certainly exceed
    [v]: the total population of every bucket strictly above the one
    containing [v] (plus the exact max when it alone exceeds [v]).
    Observations sharing [v]'s bucket count as not-above — the estimate
    is conservative within the histogram's ~9% bucket resolution, which
    keeps SLO burn rates from firing on quantization noise. *)
let count_above t v =
  if t.count = 0 then 0
  else begin
    let b = bucket_of v in
    let n = ref 0 in
    for i = b + 1 to n_buckets - 1 do
      n := !n + t.buckets.(i)
    done;
    (* All mass sits at or below v's bucket, but the tracked exact max
       may still exceed v (values inside one bucket are ~9% apart). *)
    if !n = 0 && t.max_v > v then 1 else !n
  end

let reset t =
  Array.fill t.buckets 0 n_buckets 0;
  t.count <- 0;
  t.sum <- 0.0;
  t.min_v <- infinity;
  t.max_v <- neg_infinity

(** One-line summary: count, mean, p50/p95/p99, max — the shape used by
    the metrics dump and report appendices. *)
let pp_summary fmt t =
  Fmt.pf fmt "n=%d mean=%.3g p50=%.3g p95=%.3g p99=%.3g max=%.3g" t.count
    (mean t) (quantile t 0.5) (quantile t 0.95) (quantile t 0.99)
    (max_value t)
