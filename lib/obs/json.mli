(** Minimal JSON values: emit, parse, poke.

    The observability layer ships several machine-readable documents
    (explain plans, amplification reports, bench snapshots). This module
    is their common representation — small enough to hand-verify, with a
    real parser so the test suite can round-trip everything we emit. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
(** Render [t]. [indent] > 0 pretty-prints with that many spaces per
    nesting level; the default (0) is compact. Floats print as valid
    JSON numbers; NaN/infinity degrade to [null]. *)

val of_string : string -> (t, string) result
(** Parse one complete JSON document (trailing whitespace allowed,
    trailing garbage is an error). *)

val member : string -> t -> t option
(** [member k (Obj _)] is the value bound to [k], if any. [None] on
    non-objects. *)

val to_int : t -> int option
val to_float : t -> float option
(** [to_float] accepts both [Float] and [Int]. *)

val to_string_opt : t -> string option
val to_list : t -> t list option

val write : path:string -> t -> unit
(** Write pretty-printed with a trailing newline. *)

val read : path:string -> (t, string) result
