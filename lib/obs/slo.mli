(** SLO burn-rate monitoring and maintenance-interference attribution
    over a {!Timeseries}.

    An objective like "point latency p99 < 1500µs" implies an error
    budget (p99 → 1% of requests may exceed the threshold); the burn
    rate of a stretch of windows is how fast the budget is consumed.
    A window alerts when both a fast (default 5-window) and a slow
    (default 30-window) aggregate burn exceed their thresholds — quick
    detection without firing on one-off blips.  Attribution joins alert
    windows against the flight-recorder event ring, ranking overlapping
    maintenance events (budget evictions, flushes, merges) by overlap
    duration. *)

type objective = {
  series : string;  (** histogram series in the timeseries, e.g. ["point"] *)
  quantile : float;  (** e.g. 0.99 *)
  threshold_us : float;
}

type config = {
  fast_windows : int;
  slow_windows : int;
  fast_burn : float;
  slow_burn : float;
}

val default_config : config
(** 5 fast windows at burn ≥ 10, 30 slow windows at burn ≥ 2. *)

val budget_frac : objective -> float
(** [1 - quantile]: fraction of requests allowed over the threshold. *)

val objective_of_string : string -> (objective, string) result
(** Parse ["SERIES:pQ<DUR"], e.g. ["point:p99<1500us"]; duration
    accepts [us]/[ms]/[s] suffixes (bare numbers are µs). *)

val pp_objective : Format.formatter -> objective -> unit

type alert = {
  a_window : int;  (** index of the window whose close fired the alert *)
  a_objective : objective;
  a_fast_burn : float;
  a_slow_burn : float;
  a_bad : int;  (** violations in the fast stretch *)
  a_total : int;  (** observations in the fast stretch *)
}

val evaluate : ?config:config -> Timeseries.t -> objective -> alert list
(** Slide both burn windows across the run; alerting windows in index
    order. *)

type finding = {
  f_alert : alert;
  f_event : Timeseries.event;
  f_overlap_us : float;  (** microseconds the event overlapped the window *)
}

val attribute : Timeseries.t -> alert list -> finding list
(** Per alert: every ring event overlapping the alert window, ranked by
    overlap (ties by start time — deterministic). *)

val flight_record :
  ?around:int -> Timeseries.t -> alert -> Timeseries.event list
(** Ring dump around the alert: events overlapping [a_window ± around]
    windows (default 2). *)

val objective_json : objective -> Json.t
val alert_json : alert -> Json.t
val finding_json : finding -> Json.t

val to_json : ?config:config -> Timeseries.t -> objective list -> Json.t
(** Full monitoring document: objectives, config, alerts, ranked
    findings, flight records. *)
