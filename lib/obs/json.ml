(** A minimal JSON value type with a printer and a recursive-descent
    parser.  The observability layer emits several machine-readable
    documents (explain plans, bench snapshots, inspect reports); this
    module keeps them honest — everything emitted must round-trip through
    {!of_string} in the test suite — without pulling in an external JSON
    dependency the container may not have. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let float_repr f =
  if Float.is_nan f || Float.abs f = Float.infinity then
    "null" (* JSON has no NaN/inf; these only arise from broken inputs *)
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec add b ~indent ~level v =
  let nl pad =
    if indent > 0 then begin
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make (indent * pad) ' ')
    end
  in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (if x then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_repr f)
  | Str s ->
      Buffer.add_char b '"';
      escape b s;
      Buffer.add_char b '"'
  | List [] -> Buffer.add_string b "[]"
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          nl (level + 1);
          add b ~indent ~level:(level + 1) x)
        xs;
      nl level;
      Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char b ',';
          nl (level + 1);
          Buffer.add_char b '"';
          escape b k;
          Buffer.add_string b "\":";
          if indent > 0 then Buffer.add_char b ' ';
          add b ~indent ~level:(level + 1) x)
        kvs;
      nl level;
      Buffer.add_char b '}'

(** [to_string ?indent v] renders [v]; [indent] > 0 pretty-prints with
    that many spaces per level (default 0 = compact). *)
let to_string ?(indent = 0) v =
  let b = Buffer.create 256 in
  add b ~indent ~level:0 v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing *)

exception Parse_error of string

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let m = String.length word in
    if !pos + m <= n && String.sub s !pos m = word then begin
      pos := !pos + m;
      v
    end
    else fail ("bad literal (wanted " ^ word ^ ")")
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents b
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' | '\\' | '/' ->
              Buffer.add_char b e;
              go ()
          | 'n' ->
              Buffer.add_char b '\n';
              go ()
          | 't' ->
              Buffer.add_char b '\t';
              go ()
          | 'r' ->
              Buffer.add_char b '\r';
              go ()
          | 'b' ->
              Buffer.add_char b '\b';
              go ()
          | 'f' ->
              Buffer.add_char b '\012';
              go ()
          | 'u' ->
              if !pos + 4 > n then fail "short \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              (* Encode the code point as UTF-8 (surrogates land as-is —
                 our own emitter never produces them). *)
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char b (Char.chr (0xc0 lor (code lsr 6)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
              end
              else begin
                Buffer.add_char b (Char.chr (0xe0 lor (code lsr 12)));
                Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
              end;
              go ()
          | _ -> fail "bad escape")
      | c -> Buffer.add_char b c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail ("bad number " ^ tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec go () =
            items := parse_value () :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                go ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          go ();
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let items = ref [] in
          let rec go () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            items := (k, v) :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                go ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          go ();
          Obj (List.rev !items)
        end
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(** [of_string s] parses one JSON document. *)
let of_string s =
  match parse_exn s with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (Float.of_int i)
  | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None
let to_list = function List xs -> Some xs | _ -> None

(** [write ~path v] writes [v] pretty-printed, with a trailing newline. *)
let write ~path v =
  let oc = open_out path in
  output_string oc (to_string ~indent:2 v);
  output_char oc '\n';
  close_out oc

(** [read ~path] parses the file at [path]. *)
let read ~path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      of_string s
