(** Windowed time-series telemetry on the simulated clock.

    Observations land in fixed-width windows (index = ⌊t / window⌋);
    each window holds named latency histograms, counters, float
    accumulators, running maxima, and last-value gauges.  A bounded
    flight-recorder ring keeps discrete maintenance events (budget
    evictions, flushes, merges) with full timestamps so {!Slo} can join
    alert windows back against the maintenance activity that overlapped
    them.  All timestamps are caller-supplied simulated time, so a
    deterministic run exports byte-identical JSON/CSV. *)

type t

type event = {
  e_start_us : float;
  e_dur_us : float;
  e_kind : string;  (** e.g. ["eviction"], ["dataset.flush"], ["lsm.merge"] *)
  e_part : int;  (** partition the event ran on; [-1] = global *)
  e_detail : (string * int) list;  (** e.g. bytes evicted, amp deltas *)
}

val create : ?events_capacity:int -> window_us:float -> unit -> t
(** [create ~window_us ()] with [window_us] > 0; the event ring holds
    the last [events_capacity] (default 4096) events. *)

val window_us : t -> float
val index : t -> at_us:float -> int
val n_windows : t -> int
(** Highest touched window index + 1 (0 when nothing was observed). *)

val window_start : t -> int -> float

(** {2 Writers} — all take the observation's simulated timestamp. *)

val observe : t -> at_us:float -> string -> float -> unit
(** Feed a latency sample into [series]'s histogram. *)

val count : t -> at_us:float -> string -> int -> unit
val add : t -> at_us:float -> string -> float -> unit
val set_max : t -> at_us:float -> string -> float -> unit
val set_last : t -> at_us:float -> string -> float -> unit
(** Sampled gauge; the last sample in the window wins. *)

(** {2 Per-window readers} *)

val hist : t -> i:int -> string -> Histogram.t option
val count_of : t -> i:int -> string -> int
val sum_of : t -> i:int -> string -> float
val max_of : t -> i:int -> string -> float option
val last_of : t -> i:int -> string -> float option

val hist_names : t -> string list
val count_names : t -> string list
val sum_names : t -> string list
val max_names : t -> string list
val gauge_names : t -> string list
(** Sorted unions of series names over all windows. *)

(** {2 Flight-recorder events} *)

val event :
  t ->
  start_us:float ->
  dur_us:float ->
  kind:string ->
  part:int ->
  (string * int) list ->
  unit

val events : t -> event array
(** Ring contents, oldest first. *)

val events_between : t -> from_us:float -> until_us:float -> event list
(** Events whose [start, start+dur] span intersects [[from_us,
    until_us)], oldest first. *)

val events_of_kind : t -> string -> event list
(** Events of one kind, oldest first.  Beyond the maintenance kinds
    (["eviction"], ["dataset.flush"], ["lsm.merge"], ...), the serving
    chaos layer records ["chaos.crash"], ["chaos.recover"],
    ["chaos.io"], ["chaos.slow"], ["chaos.corrupt"], ["chaos.heal"],
    ["breaker.open"], ["breaker.half_open"], ["breaker.close"], and
    ["shed"]. *)

val events_recorded : t -> int
val events_dropped : t -> int

(** {2 Exports} *)

val to_json : t -> Json.t
(** Dense windows 0 .. max index plus the event ring; deterministic
    ordering (sorted series names, index-ordered windows). *)

val to_csv : t -> string
(** Plot-ready table: one row per window; count/p50/p95/p99 columns per
    histogram series, one column per counter/sum/max/gauge. *)

val event_json : event -> Json.t
